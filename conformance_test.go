package psi

import (
	"fmt"
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

// allIndexNames is the full ByName surface the conformance suite sweeps.
var allIndexNames = []string{
	"P-Orth", "Zd-Tree", "SPaC-H", "SPaC-Z", "CPAM-H", "CPAM-Z",
	"Boost-R", "Pkd-Tree", "Log-Tree", "BHL-Tree", "BruteForce",
}

// TestDstAppendContract pins the query-buffer ownership rules every
// index must honor (ARCHITECTURE.md "Buffer ownership"): KNN and
// RangeList append to the caller's dst — preserving its prefix and
// reusing its backing array when capacity suffices — and the returned
// slice is the caller's to keep: the index retains no alias, so
// mutating the result must not perturb later queries. The serving
// layers' scratch reuse (pooled heaps, retained per-shard buffers,
// recycled flush batches) is only sound on top of these rules.
func TestDstAppendContract(t *testing.T) {
	const n = 400
	const k = 10
	side := int64(1 << 20)
	universe := Universe2D(side)
	pts := workload.Generate(workload.Uniform, n, 2, side, 99)
	q := Pt2(side/2, side/2)
	box := BoxOf(Pt2(side/4, side/4), Pt2(3*side/4, 3*side/4))
	sentinel := []Point{Pt2(-111, -1), Pt2(-222, -2), Pt2(-333, -3)}

	for _, name := range allIndexNames {
		t.Run(name, func(t *testing.T) {
			idx := ByName(name, 2, universe)
			if idx == nil {
				t.Fatalf("ByName(%q) = nil", name)
			}
			idx.Build(pts)

			for _, op := range []struct {
				label string
				query func(dst []Point) []Point
			}{
				{"KNN", func(dst []Point) []Point { return idx.KNN(q, k, dst) }},
				{"RangeList", func(dst []Point) []Point { return idx.RangeList(box, dst) }},
			} {
				t.Run(op.label, func(t *testing.T) {
					// Reference answer with a nil dst.
					ref := op.query(nil)
					if len(ref) == 0 {
						t.Fatalf("%s returned no points on built index", op.label)
					}

					// (1) Append semantics: the caller's prefix survives and
					// the result lands after it.
					dst := make([]Point, len(sentinel), len(sentinel)+len(ref)+8)
					copy(dst, sentinel)
					got := op.query(dst)
					if len(got) != len(sentinel)+len(ref) {
						t.Fatalf("%s: appended %d points, want %d", op.label, len(got)-len(sentinel), len(ref))
					}
					for i, want := range sentinel {
						if got[i] != want {
							t.Fatalf("%s: dst prefix clobbered at %d: %v", op.label, i, got[i])
						}
					}

					// (2) No reallocation when capacity suffices: the result
					// shares dst's backing array.
					if &got[0] != &dst[:1][0] {
						t.Fatalf("%s: result does not share dst's backing array despite sufficient capacity", op.label)
					}

					// (3) No aliasing into index internals: corrupting the
					// returned buffer must not change what the index stores
					// or answers.
					for i := range got {
						got[i] = Pt2(-9999999, -9999999)
					}
					again := op.query(nil)
					if err := pointsEqualAsMultiset(again, ref); err != nil {
						t.Fatalf("%s: query result changed after mutating the returned dst (index aliased the caller's buffer): %v",
							op.label, err)
					}
				})
			}
			if got := idx.Size(); got != n {
				t.Fatalf("size changed to %d after query-buffer mutations", got)
			}
		})
	}
}

// pointsEqualAsMultiset compares two query answers ignoring order (ties
// and RangeList ordering are unspecified).
func pointsEqualAsMultiset(got, want []Point) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d points, want %d", len(got), len(want))
	}
	count := make(map[geom.Point]int, len(want))
	for _, p := range want {
		count[p]++
	}
	for _, p := range got {
		if count[p] == 0 {
			return fmt.Errorf("unexpected point %v", p)
		}
		count[p]--
	}
	return nil
}
