// Benchmarks regenerating the paper's tables and figures as testing.B
// targets — one bench family per figure (see the experiment mapping
// table in README.md, and cmd/psibench for the full-protocol table
// runner).
//
// Scale: benchmarks default to n = 50k points so the full suite runs in
// minutes on a laptop; the shapes (who wins, by what factor) are the
// reproduction target, not absolute times. Run the harness at 1e6+ for
// table-quality numbers.
package psi_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"

	psi "repro"
)

const benchN = 50_000

// benchIndexes is the paper's table order; sequential Boost-R is included
// only where the paper includes it (queries).
var benchIndexes = []string{
	"P-Orth", "Zd-Tree", "SPaC-H", "SPaC-Z", "CPAM-H", "CPAM-Z", "Pkd-Tree",
}

type benchEnv struct {
	dist    workload.Dist
	dims    int
	side    int64
	pts     []psi.Point
	ind     []psi.Point
	ood     []psi.Point
	boxes   []psi.Box
	queries int
}

func newEnv(dist workload.Dist, dims, n int) benchEnv {
	side := dist.Side(dims)
	return benchEnv{
		dist:    dist,
		dims:    dims,
		side:    side,
		pts:     workload.Generate(dist, n, dims, side, 42),
		ind:     workload.InDQueries(dist, 500, dims, side, 43),
		ood:     workload.OODQueries(dist, 500, dims, side, 43),
		boxes:   workload.RangeQueries(50, dims, side, 1e-3, 44),
		queries: 500,
	}
}

func (e benchEnv) mk(name string) psi.Index {
	u := psi.Universe2D(e.side)
	if e.dims == 3 {
		u = psi.Universe3D(e.side)
	}
	return psi.ByName(name, e.dims, u)
}

// Fig. 3, build column: bulk construction per index per distribution.
func BenchmarkFig3Build(b *testing.B) {
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		env := newEnv(dist, 2, benchN)
		for _, name := range benchIndexes {
			b.Run(fmt.Sprintf("%s/%s", dist, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					idx := env.mk(name)
					idx.Build(env.pts)
				}
			})
		}
	}
}

// Fig. 3, incremental insert columns (1% batches).
func BenchmarkFig3IncInsert(b *testing.B) {
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		env := newEnv(dist, 2, benchN)
		batch := benchN / 100
		for _, name := range benchIndexes {
			b.Run(fmt.Sprintf("%s/%s", dist, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					idx := env.mk(name)
					for lo := 0; lo+batch <= len(env.pts); lo += batch {
						idx.BatchInsert(env.pts[lo : lo+batch])
					}
				}
			})
		}
	}
}

// Fig. 3, incremental delete columns (1% batches).
func BenchmarkFig3IncDelete(b *testing.B) {
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		env := newEnv(dist, 2, benchN)
		batch := benchN / 100
		for _, name := range benchIndexes {
			b.Run(fmt.Sprintf("%s/%s", dist, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					idx := env.mk(name)
					idx.Build(env.pts)
					b.StartTimer()
					for lo := 0; lo+batch <= len(env.pts); lo += batch {
						idx.BatchDelete(env.pts[lo : lo+batch])
					}
				}
			})
		}
	}
}

// Fig. 3, query columns after build (10-NN InD/OOD, range count/list).
// Boost-R included, as in the paper.
func BenchmarkFig3Query(b *testing.B) {
	env := newEnv(workload.Uniform, 2, benchN)
	for _, name := range append(append([]string{}, benchIndexes...), "Boost-R") {
		idx := env.mk(name)
		idx.Build(env.pts)
		b.Run("10NN-InD/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParallelKNN(idx, env.ind, 10)
			}
		})
		b.Run("10NN-OOD/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParallelKNN(idx, env.ood, 10)
			}
		})
		b.Run("RangeCount/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParallelRangeCount(idx, env.boxes)
			}
		})
		b.Run("RangeList/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ParallelRangeList(idx, env.boxes)
			}
		})
	}
}

// Fig. 4: kNN cost vs k ∈ {1, 10, 100}.
func BenchmarkFig4KNN(b *testing.B) {
	env := newEnv(workload.Varden, 2, benchN)
	for _, name := range []string{"P-Orth", "Zd-Tree", "SPaC-H", "SPaC-Z", "Pkd-Tree"} {
		idx := env.mk(name)
		idx.Build(env.pts)
		for _, k := range []int{1, 10, 100} {
			b.Run(fmt.Sprintf("k%d/%s", k, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.ParallelKNN(idx, env.ind, k)
				}
			})
		}
	}
}

// Fig. 5: range-list cost vs output size (box volume fraction).
func BenchmarkFig5Range(b *testing.B) {
	env := newEnv(workload.Uniform, 2, benchN)
	for _, name := range []string{"P-Orth", "SPaC-H", "Pkd-Tree"} {
		idx := env.mk(name)
		idx.Build(env.pts)
		for _, frac := range []float64{1e-4, 1e-3, 1e-2} {
			boxes := workload.RangeQueries(50, 2, env.side, frac, 44)
			b.Run(fmt.Sprintf("out%.0e/%s", frac*benchN, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.ParallelRangeList(idx, boxes)
				}
			})
		}
	}
}

// Fig. 6: real-world stand-ins (build + 10NN).
func BenchmarkFig6Real(b *testing.B) {
	for _, setup := range []struct {
		dist workload.Dist
		dims int
	}{{workload.Cosmo, 3}, {workload.OSM, 2}} {
		env := newEnv(setup.dist, setup.dims, benchN)
		for _, name := range []string{"P-Orth", "Zd-Tree", "SPaC-H", "Pkd-Tree"} {
			b.Run(fmt.Sprintf("%s/build/%s", setup.dist, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					idx := env.mk(name)
					idx.Build(env.pts)
				}
			})
			idx := env.mk(name)
			idx.Build(env.pts)
			b.Run(fmt.Sprintf("%s/10NN/%s", setup.dist, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.ParallelKNN(idx, env.ind, 10)
				}
			})
		}
	}
}

// Fig. 7: scalability — build at 1 thread vs all threads. (The full sweep
// with normalized speedups is `psibench -exp fig7`.)
func BenchmarkFig7Scalability(b *testing.B) {
	env := newEnv(workload.Uniform, 2, benchN)
	for _, p := range []int{1, runtime.NumCPU()} {
		for _, name := range []string{"P-Orth", "SPaC-H", "Pkd-Tree"} {
			b.Run(fmt.Sprintf("p%d/%s", p, name), func(b *testing.B) {
				old := runtime.GOMAXPROCS(p)
				defer runtime.GOMAXPROCS(old)
				for i := 0; i < b.N; i++ {
					idx := env.mk(name)
					idx.Build(env.pts)
				}
			})
		}
	}
}

// Fig. 9: 3D synthetic (build + incremental insert), reduced index set.
func BenchmarkFig9_3D(b *testing.B) {
	for _, dist := range []workload.Dist{workload.Uniform, workload.Varden} {
		env := newEnv(dist, 3, benchN)
		batch := benchN / 100
		for _, name := range []string{"P-Orth", "SPaC-H", "Pkd-Tree"} {
			b.Run(fmt.Sprintf("%s/build/%s", dist, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					idx := env.mk(name)
					idx.Build(env.pts)
				}
			})
			b.Run(fmt.Sprintf("%s/incIns/%s", dist, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					idx := env.mk(name)
					for lo := 0; lo+batch <= len(env.pts); lo += batch {
						idx.BatchInsert(env.pts[lo : lo+batch])
					}
				}
			})
		}
	}
}

// Fig. 10: single batch insert into a full tree, across batch sizes. The
// tree is built once; each iteration inserts the batch and then deletes
// it untimed, restoring the working set without a per-iteration rebuild
// (exact restoration for the history-independent trees, same size and
// near-identical shape for the rest).
func BenchmarkFig10Batch(b *testing.B) {
	env := newEnv(workload.Uniform, 2, benchN)
	extraAll := workload.Generate(workload.Uniform, benchN, 2, env.side, 99)
	for _, ratio := range []float64{0.001, 0.01, 0.1, 1.0} {
		size := int(float64(benchN) * ratio)
		extra := extraAll[:size]
		for _, name := range []string{"P-Orth", "Zd-Tree", "SPaC-H", "SPaC-Z", "Pkd-Tree"} {
			b.Run(fmt.Sprintf("ratio%g/%s", ratio, name), func(b *testing.B) {
				idx := env.mk(name)
				idx.Build(env.pts)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					idx.BatchInsert(extra)
					b.StopTimer()
					idx.BatchDelete(extra)
					b.StartTimer()
				}
			})
		}
	}
}

// Ablation (a): P-Orth skeleton depth λ.
func BenchmarkAblationLambda(b *testing.B) {
	env := newEnv(workload.Uniform, 2, benchN)
	for lam := 1; lam <= 4; lam++ {
		b.Run(fmt.Sprintf("lambda%d", lam), func(b *testing.B) {
			opts := psi.DefaultOptions(2, psi.Universe2D(env.side))
			opts.SkeletonLevels = lam
			for i := 0; i < b.N; i++ {
				idx := psi.NewPOrthOpts(opts)
				idx.Build(env.pts)
			}
		})
	}
}

// Ablation (c): the partial-order relaxation under small batches —
// SPaC-H vs CPAM-H incremental insertion, identical otherwise.
func BenchmarkAblationLeafOrder(b *testing.B) {
	env := newEnv(workload.Uniform, 2, benchN)
	batch := benchN / 1000
	for _, name := range []string{"SPaC-H", "CPAM-H"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx := env.mk(name)
				for lo := 0; lo+batch <= len(env.pts); lo += batch {
					idx.BatchInsert(env.pts[lo : lo+batch])
				}
			}
		})
	}
}

// Ablation (d): HybridSort vs plain construction (SPaC vs CPAM build).
func BenchmarkAblationHybridSort(b *testing.B) {
	env := newEnv(workload.Uniform, 2, benchN)
	for _, name := range []string{"SPaC-H", "CPAM-H"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx := env.mk(name)
				idx.Build(env.pts)
			}
		})
	}
}
