// Sharded: scaling updates across indexes instead of inside one.
//
// The universe is partitioned into S Hilbert-compact regions, each owning
// an independent SPaC-H tree behind its own lock. One big "move" batch
// (delete old positions, insert new ones) is partitioned by region in
// parallel and every shard applies its sub-batch concurrently; range
// queries visit only the shards whose region overlaps the box, and kNN
// expands shards best-first by region distance. The demo contrasts an
// unsharded SPaC-H with the sharded fan-out on the same workload, prints
// the shard load balance on clustered data, and finishes with the
// serving composition: a batch-coalescing Store in front of the Sharded
// for fully concurrent single-point ingest.
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/examples/internal/demo"

	psi "repro"
)

const (
	side   = int64(1_000_000_000)
	shards = 8
)

var (
	n     = demo.Scale(400_000)
	batch = n / 10
)

func main() {
	universe := psi.Universe2D(side)
	pts := psi.Generate(psi.Varden, n, 2, side, 1) // clustered: the hard case
	fresh := psi.Generate(psi.Varden, batch, 2, side, 2)

	// Baseline: one SPaC-H tree, the paper's fastest batch updater.
	single := psi.NewSPaCH(2, universe)
	single.Build(pts)
	t0 := time.Now()
	single.BatchDiff(fresh, pts[:batch])
	singleDiff := time.Since(t0)

	// Sharded: S regions, each its own SPaC-H. Build rebalances the
	// region boundaries so the clusters spread across shards.
	s := psi.NewSharded(psi.NewSPaCH, 2, universe, shards)
	s.Build(pts)
	t0 = time.Now()
	s.BatchDiff(fresh, pts[:batch])
	shardedDiff := time.Since(t0)

	fmt.Printf("%s on %d cores\n", s.Name(), runtime.NumCPU())
	fmt.Printf("10%% move batch: single %.1fms, sharded %.1fms (sub-batches for different regions apply concurrently; the gap widens with cores)\n",
		singleDiff.Seconds()*1e3, shardedDiff.Seconds()*1e3)
	sizes := s.ShardSizes(nil)
	fmt.Printf("shard loads after equi-depth rebalance (ideal %d): %v\n", s.Size()/shards, sizes)

	// Queries prune to the shards that can contribute. (Query around a
	// freshly inserted point — the pts[:batch] prefix just left.)
	q := fresh[0]
	nn := s.KNN(q, 10, nil)
	lo := psi.Pt2(q[0]-10_000_000, q[1]-10_000_000)
	hi := psi.Pt2(q[0]+10_000_000, q[1]+10_000_000)
	fmt.Printf("10NN of %v found %d; box count near it: %d\n", q, len(nn), s.RangeCount(psi.BoxOf(lo, hi)))

	// Serving composition: Store coalesces concurrent single-point
	// mutations into batches; each flush then fans out across shards.
	st := psi.NewStore(s, psi.StoreOptions{MaxBatch: 4096})
	defer st.Close()
	var wg sync.WaitGroup
	t0 = time.Now()
	writers := 4
	moves := psi.Generate(psi.Varden, n/4, 2, side, 3)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(moves); i += writers {
				st.Delete(fresh[i%len(fresh)])
				st.Insert(moves[i])
			}
		}(w)
	}
	wg.Wait()
	st.Flush()
	el := time.Since(t0).Seconds()
	fmt.Printf("Store-over-Sharded: %d concurrent moves in %.2fs (%.0f ops/s), final size %d\n",
		len(moves), el, float64(2*len(moves))/el, st.Size())
}
