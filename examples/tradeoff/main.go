// Tradeoff: a miniature of the paper's Fig. 8 — every index is driven
// through the same build / batch-update / query workload and placed on
// the update-vs-query map, so you can pick an index for your workload the
// way §5.4 recommends.
//
//	go run ./examples/tradeoff [-n 200000]
package main

import (
	"flag"
	"fmt"
	"math"
	"time"

	"repro/examples/internal/demo"
	"repro/internal/core"

	psi "repro"
)

func main() {
	n := flag.Int("n", demo.Scale(200_000), "points")
	flag.Parse()
	side := int64(1_000_000_000)
	universe := psi.Universe2D(side)

	pts := psi.Generate(psi.Varden, *n, 2, side, 5)
	queries := psi.Generate(psi.Uniform, *n/100, 2, side, 6)
	boxes := psi.RangeQueries(50, 2, side, 1e-3, 7)
	batch := *n / 100

	type result struct {
		name          string
		update, query float64
	}
	var results []result
	for _, idx := range psi.All(2, universe) {
		if idx.Name() == "Boost-R" {
			continue // sequential; no batch updates to measure
		}
		// Update score: build + 10 insert batches + 10 delete batches.
		start := time.Now()
		idx.Build(pts)
		for i := 0; i < 10; i++ {
			idx.BatchInsert(pts[i*batch : (i+1)*batch])
		}
		for i := 0; i < 10; i++ {
			idx.BatchDelete(pts[i*batch : (i+1)*batch])
		}
		update := time.Since(start).Seconds()
		// Query score: parallel 10-NN + range sweeps.
		start = time.Now()
		core.ParallelKNN(idx, queries, 10)
		core.ParallelRangeList(idx, boxes)
		query := time.Since(start).Seconds()
		results = append(results, result{idx.Name(), update, query})
	}

	bestU, bestQ := math.Inf(1), math.Inf(1)
	for _, r := range results {
		bestU = math.Min(bestU, r.update)
		bestQ = math.Min(bestQ, r.query)
	}
	fmt.Printf("update/query tradeoff on varden 2D, n=%d (1.00 = best)\n\n", *n)
	fmt.Printf("%-10s %14s %14s   %s\n", "index", "update(rel)", "query(rel)", "profile")
	for _, r := range results {
		ur, qr := bestU/r.update, bestQ/r.query
		profile := "balanced"
		switch {
		case ur > 2*qr:
			profile = "update-leaning"
		case qr > 2*ur:
			profile = "query-leaning"
		}
		fmt.Printf("%-10s %14.2f %14.2f   %s\n", r.name, ur, qr, profile)
	}
	fmt.Println("\nreading the map (paper §5.4): P-Orth for balanced workloads on")
	fmt.Println("even data; SPaC-H when update throughput dominates; Pkd-Tree when")
	fmt.Println("in-distribution queries dominate and updates are rare.")
}
