// Package demo holds the one knob shared by every example binary: a
// scale factor read from the environment, so CI can smoke-run the demos
// end to end in seconds while `go run ./examples/...` keeps its
// full-size defaults for humans.
package demo

import (
	"os"
	"strconv"
)

// Scale returns def, or the value of PSI_EXAMPLE_N when it is set to a
// positive integer. Examples size their primary dataset with it and
// derive secondary sizes (batches, moves, probes) by integer division,
// so requests are clamped to a floor of 100 — below that the derived
// sizes degenerate to zero (empty slices, divides by zero).
func Scale(def int) int {
	if s := os.Getenv("PSI_EXAMPLE_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			if v < 100 {
				v = 100
			}
			return v
		}
	}
	return def
}
