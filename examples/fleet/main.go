// Fleet: tracking identified moving objects with psi.Collection.
//
// The paper's indexes store anonymous point multisets; a fleet tracker
// needs identity — "vehicle X moved from p0 to p1". Collection adds that
// layer over any index stack: Set(id, p) nets to one delete+insert
// BatchDiff at the next flush, and geometric queries resolve hits back
// to IDs through a reverse multimap that advances with the index under
// the same flush boundary. The demo runs the recommended high-churn
// stack (Collection over a Sharded SPaC-H), streams concurrent position
// updates from several movers, and answers dispatcher queries — nearest
// vehicles to an incident, vehicles inside a zone — while the churn is
// in flight.
//
//	go run ./examples/fleet            # full size
//	PSI_EXAMPLE_N=2000 go run ./examples/fleet   # smoke scale
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/examples/internal/demo"

	psi "repro"
)

const side = int64(1_000_000_000) // universe [0, 1e9]^2

func main() {
	vehicles := demo.Scale(200_000)
	movesPerWriter := vehicles / 2
	const movers = 4

	// Collection over Sharded SPaC-H: each flush nets the pending moves
	// to one BatchDiff and fans it out across the shards in parallel.
	fleet := psi.NewCollection[string](
		psi.NewSharded(psi.NewSPaCH, 2, psi.Universe2D(side), 0),
		psi.CollectionOptions{MaxBatch: 4096, FlushInterval: 2 * time.Millisecond},
	)
	defer fleet.Close()

	// Register the fleet at its starting positions.
	start := psi.Generate(psi.Uniform, vehicles, 2, side, 1)
	id := func(i int) string { return fmt.Sprintf("veh-%06d", i) }
	for i, p := range start {
		fleet.Set(id(i), p)
	}
	fleet.Flush()
	fmt.Printf("%s tracking %d vehicles\n", fleet.Name(), fleet.Len())

	// Movers: each owns a slice of the fleet and streams bounded hops.
	// Get is read-your-writes, so a mover can read back its own latest
	// position before the flush makes it visible to queries.
	var wg sync.WaitGroup
	begin := time.Now()
	for m := 0; m < movers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(m)))
			step := side / 1000
			for i := 0; i < movesPerWriter; i++ {
				v := m + movers*(i%(vehicles/movers))
				p, _ := fleet.Get(id(v))
				for d := 0; d < 2; d++ {
					c := p[d] + rng.Int63n(2*step+1) - step
					if c < 0 {
						c = 0
					} else if c > side {
						c = side
					}
					p[d] = c
				}
				fleet.Set(id(v), p)
			}
		}(m)
	}

	// Dispatcher: nearest vehicles to an incident, vehicles in a zone —
	// answered live while the movers churn.
	incident := psi.Pt2(side/2, side/2)
	zone := psi.BoxOf(psi.Pt2(side/4, side/4), psi.Pt2(side/4+side/20, side/4+side/20))
	nearby := fleet.NearbyIDs(incident, 3)
	inZone := fleet.WithinIDs(zone)
	fmt.Printf("nearest to incident %v:\n", incident)
	for _, e := range nearby {
		fmt.Printf("  %s at %v\n", e.ID, e.Point)
	}
	fmt.Printf("%d vehicles inside the zone\n", len(inZone))

	wg.Wait()
	fleet.Flush()
	el := time.Since(begin).Seconds()
	st := fleet.Stats()
	fmt.Printf("%d moves in %.2fs (%.0f moves/s) across %d flushes\n",
		movers*movesPerWriter, el, float64(movers*movesPerWriter)/el, st.Flushes)
	fmt.Printf("netting: %d applied as relocations, %d superseded in-window\n", st.Moved, st.Cancelled)

	// Retire a vehicle: Remove deletes its point at the next flush.
	fleet.Remove(id(0))
	fmt.Printf("after retiring %s: tracking %d vehicles\n", id(0), fleet.Len())
}
