// Quickstart: build a spatial index, query it, and apply batch updates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/examples/internal/demo"

	psi "repro"
)

func main() {
	n := demo.Scale(1_000_000)
	// Points live in the universe [0, 1e9]^2 (the paper's coordinate
	// range). The universe fixes the split hierarchy for the
	// space-partitioning trees and must cover every point ever inserted.
	universe := psi.Universe2D(1_000_000_000)

	// The SPaC-H-tree is the paper's recommended default for dynamic
	// workloads; swap in NewPOrth for the best query/update balance on
	// evenly distributed data.
	idx := psi.NewSPaCH(2, universe)

	// Bulk-build from a million uniformly random points (parallel).
	pts := psi.Generate(psi.Uniform, n, 2, 1_000_000_000, 1)
	idx.Build(pts)
	fmt.Printf("built %s with %d points\n", idx.Name(), idx.Size())

	// k-nearest-neighbor query.
	q := psi.Pt2(500_000_000, 500_000_000)
	nn := idx.KNN(q, 5, nil)
	fmt.Printf("5 nearest neighbors of %v:\n", q)
	for i, p := range nn {
		fmt.Printf("  %d: %v\n", i+1, p)
	}

	// Range queries: count and report points in a box.
	box := psi.BoxOf(psi.Pt2(0, 0), psi.Pt2(10_000_000, 10_000_000))
	fmt.Printf("points in %v: %d\n", box, idx.RangeCount(box))

	// Batch updates: insert fresh points, delete an old slice.
	fresh := psi.Generate(psi.Uniform, n/20, 2, 1_000_000_000, 2)
	idx.BatchInsert(fresh)
	idx.BatchDelete(pts[:n/20])
	fmt.Printf("after one update cycle: %d points\n", idx.Size())
}
