// 3D game tick loop: the paper's latency-sensitive motivation (§1 — "in
// 3D games, moving objects must be reflected quickly to affect lighting
// and collision detection"). Each frame, every moving object's old
// position is batch-deleted and its new position batch-inserted; then the
// engine asks for k-nearest neighbors around a subset of objects as
// collision/lighting candidates.
//
//	go run ./examples/game3d
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/examples/internal/demo"

	psi "repro"
)

const (
	side   = int64(1_000_000) // 3D world, 21-bit SFC precision (§E)
	frames = 30
)

var (
	objects = demo.Scale(200_000)
	movers  = objects / 10  // objects that move per frame
	probes  = objects / 100 // collision probes per frame
)

func main() {
	universe := psi.Universe3D(side)
	// History independence makes the P-Orth tree's frame times drift-free
	// over long sessions (§5.4); swap NewSPaCH in for higher churn rates.
	idx := psi.NewPOrth(3, universe)

	world := psi.Generate(psi.Varden, objects, 3, side, 3) // clustered scene
	idx.Build(world)
	rng := rand.New(rand.NewSource(11))

	var update, query time.Duration
	for frame := 0; frame < frames; frame++ {
		// Pick distinct movers and jitter their positions (bounded
		// steps). Indices must be distinct so each delete pairs with the
		// position actually stored in the index.
		perm := rng.Perm(len(world))[:movers]
		oldPos := make([]psi.Point, movers)
		newPos := make([]psi.Point, movers)
		for i, j := range perm {
			oldPos[i] = world[j]
			p := world[j]
			for d := 0; d < 3; d++ {
				c := p[d] + rng.Int63n(2001) - 1000
				if c < 0 {
					c = 0
				}
				if c > side {
					c = side
				}
				p[d] = c
			}
			newPos[i] = p
			world[j] = p
		}
		t0 := time.Now()
		idx.BatchDelete(oldPos)
		idx.BatchInsert(newPos)
		t1 := time.Now()
		// Collision candidates: 8 nearest objects around each probe.
		buf := make([]psi.Point, 0, 8)
		candidates := 0
		for i := 0; i < probes; i++ {
			buf = idx.KNN(world[rng.Intn(len(world))], 8, buf[:0])
			candidates += len(buf)
		}
		t2 := time.Now()
		update += t1.Sub(t0)
		query += t2.Sub(t1)
		if frame%10 == 9 {
			fmt.Printf("frame %2d: %d objects, %d collision candidates\n",
				frame+1, idx.Size(), candidates)
		}
	}
	fmt.Printf("\n%s over %d frames (%d movers, %d probes per frame):\n",
		idx.Name(), frames, movers, probes)
	fmt.Printf("  position updates %8.3f ms/frame\n", 1e3*update.Seconds()/frames)
	fmt.Printf("  collision probes %8.3f ms/frame\n", 1e3*query.Seconds()/frames)
	fmt.Printf("  frame budget use %8.1f%% of 16.7ms (60 fps)\n",
		100*(update.Seconds()+query.Seconds())/float64(frames)/0.0167)
}
