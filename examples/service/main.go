// Service: serving the spatial stack over a socket with psid.
//
// Every other example calls the library in process; this one puts the
// full stack — Collection over Sharded SPaC-H — behind the psid network
// protocol and talks to it like a remote client would: newline-delimited
// JSON commands over TCP (docs/protocol.md), with HTTP probe endpoints
// on the side. The demo starts an in-process server on a loopback port,
// streams vehicle positions from several connections in parallel, and
// answers dispatcher queries over the wire, then shuts down gracefully
// (drain + final flush).
//
//	go run ./examples/service            # full size
//	PSI_EXAMPLE_N=2000 go run ./examples/service   # smoke scale
//
// For a standalone server use cmd/psid, and cmd/psiload to benchmark it.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/examples/internal/demo"

	psi "repro"
)

const side = int64(1_000_000_000) // universe [0, 1e9]^2

func main() {
	vehicles := demo.Scale(100_000)
	const writers = 4

	// The server owns the serving stack; ":0" picks free loopback ports.
	srv := psi.NewServer(
		psi.NewSharded(psi.NewSPaCH, 2, psi.Universe2D(side), 0),
		psi.ServerOptions{MaxBatch: 4096},
	)
	if err := srv.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	addr := srv.Addr().String()
	fmt.Printf("psid serving on %s (http %s)\n", addr, srv.HTTPAddr())

	// Writers: one connection each (connections are the unit of serving
	// concurrency — the server runs one goroutine per connection).
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := psi.DialService(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := w; i < vehicles; i += writers {
				id := fmt.Sprintf("veh-%06d", i)
				if err := c.Set(id, []int64{rng.Int63n(side + 1), rng.Int63n(side + 1)}); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()

	// A dispatcher connection: barrier-flush, then query over the wire.
	c, err := psi.DialService(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d vehicles over %d connections in %.2fs\n",
		vehicles, writers, time.Since(begin).Seconds())

	incident := []int64{side / 2, side / 2}
	nearby, err := c.Nearby(incident, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest to incident (%d,%d):\n", incident[0], incident[1])
	for _, h := range nearby {
		fmt.Printf("  %s at (%d,%d)\n", h.ID, h.P[0], h.P[1])
	}
	zone := [2][]int64{{side / 4, side / 4}, {side/4 + side/20, side/4 + side/20}}
	inZone, err := c.Within(zone[0], zone[1])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d vehicles inside the zone\n", len(inZone))

	// Read-your-writes over the wire: a GET sees the caller's latest SET
	// even before a flush makes it visible to geometric queries.
	if err := c.Set("veh-000000", []int64{1, 2}); err != nil {
		log.Fatal(err)
	}
	p, found, err := c.Get("veh-000000")
	if err != nil || !found {
		log.Fatal("lost veh-000000")
	}
	fmt.Printf("veh-000000 moved to (%d,%d) — visible to GET pre-flush\n", p[0], p[1])

	// The probe endpoints a deployment would scrape.
	resp, err := http.Get("http://" + srv.HTTPAddr().String() + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("GET /healthz -> %s", body)
	st, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server: %d objects, %d flushes, %d SETs served (p99 %.0fus), %d in-window supersedes\n",
		st.Objects, st.Flushes, st.Ops["SET"].Count, st.Ops["SET"].P99Us, st.Cancelled)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("graceful shutdown: drained, final flush applied")
}
