// Server: concurrent serving through the batch-coalescing psi.Store.
//
// A fleet of vehicles streams position updates from N writer goroutines
// while M reader goroutines answer "nearest vehicles" and "vehicles in
// area" queries — the tile38-style geo-serving scenario. The raw indexes
// are batch-synchronous (not safe for concurrent mutation); Store
// coalesces the concurrent single-point updates into batches, applies
// them through the index's parallel batch machinery, and serves every
// query a consistent view.
//
//	go run ./examples/server
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/examples/internal/demo"

	psi "repro"
)

const (
	side     = int64(1_000_000_000) // universe [0, 1e9]^2
	writers  = 4
	readers  = 4
	duration = 2 * time.Second
)

var (
	vehicles = demo.Scale(200_000)
	moves    = vehicles / 4 // position updates per writer
)

func main() {
	// SPaC-H has the fastest batch updates — the right engine under a
	// write-heavy stream. Store makes it safe to share.
	st := psi.NewStore(psi.NewSPaCH(2, psi.Universe2D(side)), psi.StoreOptions{
		MaxBatch:      4096,
		FlushInterval: 2 * time.Millisecond, // readers lag writers by at most ~2ms
	})
	defer st.Close()

	pos := psi.Generate(psi.Uniform, vehicles, 2, side, 1)
	st.Build(pos)
	fmt.Printf("serving %d vehicles through %s: %d writers, %d readers\n",
		st.Size(), st.Name(), writers, readers)

	var wgW, wgQ sync.WaitGroup
	var served atomic.Int64
	stop := make(chan struct{})
	start := time.Now()

	// Writers: each owns a shard of the fleet and streams moves. A move is
	// delete-old + insert-new; Store batches both sides and BatchDiff
	// applies them as one step.
	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			shard := pos[w*vehicles/writers : (w+1)*vehicles/writers]
			for i := 0; i < moves; i++ {
				v := rng.Intn(len(shard))
				old := shard[v]
				next := psi.Pt2(
					jitter(rng, old[0]),
					jitter(rng, old[1]),
				)
				st.Delete(old)
				st.Insert(next)
				shard[v] = next
			}
		}(w)
	}

	// Readers: random riders asking for the 5 nearest vehicles, dispatch
	// zones counting coverage.
	for r := 0; r < readers; r++ {
		wgQ.Add(1)
		go func(r int) {
			defer wgQ.Done()
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := psi.Pt2(rng.Int63n(side), rng.Int63n(side))
				if r%2 == 0 {
					st.KNN(q, 5, nil)
				} else {
					lo := psi.Pt2(max0(q[0]-5_000_000), max0(q[1]-5_000_000))
					hi := psi.Pt2(q[0]+5_000_000, q[1]+5_000_000)
					st.RangeCount(psi.BoxOf(lo, hi))
				}
				served.Add(1)
			}
		}(r)
	}

	wgW.Wait()
	if left := time.Until(start.Add(duration)); left > 0 {
		time.Sleep(left) // let readers run against the settled fleet too
	}
	close(stop)
	wgQ.Wait()
	st.Flush()
	elapsed := time.Since(start).Seconds()

	stats := st.Stats()
	ops := stats.Inserted + stats.Deleted + 2*stats.Cancelled
	fmt.Printf("in %.2fs: %d moves (%d mutation ops, %.0f ops/s) in %d coalesced batches (avg %.0f ops/batch, %d in-window pairs netted out)\n",
		elapsed, ops/2, ops, float64(ops)/elapsed,
		stats.Flushes, float64(ops)/float64(stats.Flushes), stats.Cancelled)
	fmt.Printf("         %d queries served (%.0f/s), fleet size still %d\n",
		served.Load(), float64(served.Load())/elapsed, st.Size())
}

// jitter moves one coordinate a small random step, clamped to the universe.
func jitter(rng *rand.Rand, c int64) int64 {
	c += rng.Int63n(2_000_001) - 1_000_000
	if c < 0 {
		c = 0
	}
	if c > side {
		c = side
	}
	return c
}

func max0(c int64) int64 {
	if c < 0 {
		return 0
	}
	return c
}
