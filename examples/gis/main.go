// GIS ingestion: the paper's motivating throughput scenario (§1 — "GIS
// applications often ingest high-volume sensor streams where total update
// throughput is critical"). A stream of OSM-like position reports arrives
// in batches; each tick the index ingests a batch, expires the oldest
// batch, and serves region analytics (range counts over hot zones).
//
//	go run ./examples/gis
package main

import (
	"fmt"
	"time"

	"repro/examples/internal/demo"

	psi "repro"
)

const (
	side   = int64(1_000_000_000)
	window = 25 // batches kept live (sliding window)
	ticks  = 40
)

var batchSize = demo.Scale(20_000)

func main() {
	universe := psi.Universe2D(side)
	idx := psi.NewSPaCH(2, universe) // throughput-oriented choice (§5.4)

	// The "sensor stream": road-network-shaped points arriving in
	// arrival order, pre-generated here so the loop only measures the
	// index.
	stream := psi.Generate(psi.OSM, batchSize*(ticks+window), 2, side, 7)
	batchAt := func(i int) []psi.Point { return stream[i*batchSize : (i+1)*batchSize] }

	// Warm the window.
	for i := 0; i < window; i++ {
		idx.BatchInsert(batchAt(i))
	}

	// Hot zones: fixed dashboards counting activity in city-sized boxes.
	zones := psi.RangeQueries(16, 2, side, 0.001, 99)

	var ingest, expire, analytics time.Duration
	for tick := 0; tick < ticks; tick++ {
		t0 := time.Now()
		idx.BatchInsert(batchAt(window + tick))
		t1 := time.Now()
		idx.BatchDelete(batchAt(tick)) // expire the oldest batch
		t2 := time.Now()
		total := 0
		for _, z := range zones {
			total += idx.RangeCount(z)
		}
		t3 := time.Now()
		ingest += t1.Sub(t0)
		expire += t2.Sub(t1)
		analytics += t3.Sub(t2)
		if tick%10 == 9 {
			fmt.Printf("tick %2d: live=%d, hot-zone points=%d\n", tick+1, idx.Size(), total)
		}
	}
	perTick := float64(ticks)
	fmt.Printf("\n%s over %d ticks of %d-point batches (window %d batches):\n",
		idx.Name(), ticks, batchSize, window)
	fmt.Printf("  ingest    %8.3f ms/tick (%.1f Mpts/s sustained)\n",
		1e3*ingest.Seconds()/perTick, float64(ticks*batchSize)/ingest.Seconds()/1e6)
	fmt.Printf("  expire    %8.3f ms/tick\n", 1e3*expire.Seconds()/perTick)
	fmt.Printf("  analytics %8.3f ms/tick (%d zones)\n", 1e3*analytics.Seconds()/perTick, len(zones))
}
