package psi_test

import (
	"fmt"
	"sync"

	psi "repro"
)

// A Store makes any index safe for concurrent mutation: writers enqueue
// from any number of goroutines, batches apply through the index's
// parallel batch update, and a Flush is a visibility barrier.
func ExampleNewStore() {
	universe := psi.Universe2D(1000)
	st := psi.NewStore(psi.NewSPaCH(2, universe), psi.StoreOptions{MaxBatch: 1024})
	defer st.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int64) {
			defer wg.Done()
			st.Insert(psi.Pt2(i, i)) // concurrent writers are safe
		}(int64(i))
	}
	wg.Wait()
	st.Flush() // barrier: all prior enqueues are now visible to queries

	box := psi.BoxOf(psi.Pt2(0, 0), psi.Pt2(1, 1))
	fmt.Println(st.Size(), st.RangeCount(box))
	// Output: 4 2
}

// A Sharded index partitions the universe into regions that update in
// parallel and prune queries to the overlapping shards.
func ExampleNewSharded() {
	universe := psi.Universe2D(1000)
	s := psi.NewSharded(psi.NewSPaCH, 2, universe, 4) // 4 Hilbert-range shards

	s.Build([]psi.Point{psi.Pt2(1, 1), psi.Pt2(2, 2), psi.Pt2(900, 900)})
	s.BatchDiff([]psi.Point{psi.Pt2(3, 3)}, []psi.Point{psi.Pt2(900, 900)})

	nn := s.KNN(psi.Pt2(0, 0), 2, nil) // nearest first
	fmt.Println(s.Size(), nn[0], nn[1])
	// Output: 3 (1,1,0) (2,2,0)
}

// A Collection tracks one point per ID over any index stack: Set moves
// net to minimal batch diffs, and geometric queries resolve back to IDs.
func ExampleNewCollection() {
	universe := psi.Universe2D(1000)
	fleet := psi.NewCollection[string](psi.NewSPaCH(2, universe), psi.CollectionOptions{})
	defer fleet.Close()

	fleet.Set("a", psi.Pt2(1, 1))
	fleet.Set("b", psi.Pt2(5, 5))
	fleet.Set("a", psi.Pt2(2, 2)) // move: nets to one delete+insert at flush

	p, ok := fleet.Get("a") // read-your-writes, visible pre-flush
	fleet.Flush()
	near := fleet.NearbyIDs(psi.Pt2(0, 0), 1)
	fmt.Println(p, ok, near[0].ID, fleet.Len())
	// Output: (2,2,0) true a 2
}
