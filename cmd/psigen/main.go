// Command psigen generates synthetic datasets to disk in the PSI binary
// format (the paper ships an equivalent generator with its artifact,
// §F.4). Datasets written once can be replayed across experiments via
// workload.LoadFile.
//
// Usage:
//
//	psigen -dist varden -n 1000000 -dims 2 -out varden_1m.psi
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/workload"
)

func main() {
	dist := flag.String("dist", "uniform", "distribution: uniform|sweepline|varden|cosmo|osm")
	n := flag.Int("n", 1_000_000, "number of points")
	dims := flag.Int("dims", 2, "dimensions (2 or 3)")
	seed := flag.Int64("seed", 42, "generator seed")
	side := flag.Int64("side", 0, "coordinate range [0,side] (0 = paper default: 1e9 in 2D, 1e6 in 3D)")
	out := flag.String("out", "", "output file (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "psigen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	d := workload.Dist(*dist)
	s := *side
	if s == 0 {
		s = d.Side(*dims)
	}
	start := time.Now()
	pts := workload.Generate(d, *n, *dims, s, *seed)
	genT := time.Since(start)
	if err := workload.SaveFile(*out, pts, *dims); err != nil {
		fmt.Fprintf(os.Stderr, "psigen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("psigen: wrote %d %dD %s points (side %d) to %s (generated in %.2fs)\n",
		*n, *dims, d, s, *out, genT.Seconds())
}
