package main

// Replication chaos oracles: real psid processes (the crash_test re-exec
// harness) wired into leader/follower topologies, then killed and
// partitioned without ceremony. The convergence oracle is exact because
// writers record every acknowledged op: after quiesce, a follower must
// hold byte-for-byte the acknowledged state — same IDs, same positions —
// and must get there without re-bootstrapping or re-applying a window
// when its resume point survives (kill -9, torn TCP streams). A leader
// wipe is the one legitimate re-bootstrap, and the oracle flips to
// asserting exactly that.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"regexp"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/service"
)

var replLeaderRE = regexp.MustCompile(`^psid: replication leader on (127\.0\.0\.1:\d+)`)

// startLeaderPsid re-execs a psid leader with a replication listener,
// returning the process, the command address, and the bound replication
// address. replAddr "127.0.0.1:0" picks an ephemeral port.
func startLeaderPsid(t *testing.T, walDir, replAddr string, extra ...string) (*exec.Cmd, string, string) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0", "-http", "",
		"-wal", walDir, "-fsync", "always",
		"-maxbatch", "64", "-drain", "10s",
		"-repl", replAddr,
	}, extra...)
	enc, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelperProcess$")
	cmd.Env = append(os.Environ(), "PSID_CRASH_HELPER=1", "PSID_CRASH_ARGS="+string(enc))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	deadline := time.After(15 * time.Second)
	lineCh := make(chan string, 16)
	go func() {
		defer close(lineCh)
		for sc.Scan() {
			lineCh <- sc.Text()
		}
	}()
	var addr, repl string
	for addr == "" || repl == "" {
		select {
		case line, ok := <-lineCh:
			if !ok {
				cmd.Process.Kill()
				t.Fatal("psid leader exited before its serving lines")
			}
			if m := servingRE.FindStringSubmatch(line); m != nil {
				addr = m[1]
			}
			if m := replLeaderRE.FindStringSubmatch(line); m != nil {
				repl = m[1]
			}
		case <-deadline:
			cmd.Process.Kill()
			t.Fatal("timed out waiting for the psid leader serving lines")
		}
	}
	go func() { // keep draining so the child never blocks on a full pipe
		for range lineCh {
		}
	}()
	return cmd, addr, repl
}

// startFollowerPsid re-execs a psid follower of the given replication
// address (crash_test's startPsid with the replica flags).
func startFollowerPsid(t *testing.T, walDir, leaderRepl, id string) (*exec.Cmd, string) {
	t.Helper()
	cmd, addr, _ := startPsid(t, walDir, "-replica-of", leaderRepl, "-repl-id", id)
	return cmd, addr
}

func sigtermWait(cmd *exec.Cmd) {
	cmd.Process.Signal(syscall.SIGTERM)
	cmd.Wait()
}

// replStats fetches the replication block over the wire, failing the
// test if the server does not report one.
func replStats(t *testing.T, c *service.Client) *service.ReplPayload {
	t.Helper()
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("STATS: %v", err)
	}
	if st.Repl == nil {
		t.Fatal("server reports no replication block")
	}
	return st.Repl
}

// waitFollowerAt polls the follower's STATS until its applied sequence
// reaches want with zero lag.
func waitFollowerAt(t *testing.T, fc *service.Client, want uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		fs := replStats(t, fc).Follower
		if fs != nil && fs.AppliedSeq == want && fs.LagWindows == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached seq %d: %+v", want, fs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// leaderSeq reads the leader's replication head over the wire.
func leaderSeq(t *testing.T, lc *service.Client) uint64 {
	t.Helper()
	ls := replStats(t, lc).Leader
	if ls == nil {
		t.Fatal("leader reports no leader block")
	}
	return ls.LastSeq
}

// oracleChurn drives writers of SET/DEL churn against the leader on
// disjoint ID ranges for dur, recording every acknowledged op, and
// returns the exact acknowledged end state. Every ack under
// fsync=always is a committed, journaled window, so the merged map IS
// the replicated truth.
func oracleChurn(t *testing.T, addr string, writers, idsPerWriter int, dur time.Duration) map[string]geom.Point {
	t.Helper()
	return oracleChurnIDs(t, addr, "w", writers, idsPerWriter, dur)
}

// oracleChurnIDs is oracleChurn over a caller-chosen ID prefix, so
// churn phases on different timelines write disjoint namespaces and
// their oracles merge exactly (a map union cannot represent "phase 2
// deleted a phase-1 ID", so the phases must not share IDs).
func oracleChurnIDs(t *testing.T, addr, prefix string, writers, idsPerWriter int, dur time.Duration) map[string]geom.Point {
	t.Helper()
	type wlog struct {
		state map[string]geom.Point
	}
	logs := make([]wlog, writers)
	var wg sync.WaitGroup
	stopAt := time.Now().Add(dur)
	for w := range writers {
		logs[w].state = make(map[string]geom.Point)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := service.Dial(addr)
			if err != nil {
				t.Errorf("writer %d: dial: %v", w, err)
				return
			}
			defer c.Close()
			st := logs[w].state
			for i := 0; time.Now().Before(stopAt); i++ {
				id := fmt.Sprintf("%s%d-%d", prefix, w, i%idsPerWriter)
				if i%7 == 3 { // mix deletes through the churn
					if err := c.Del(id); err != nil {
						t.Errorf("writer %d: DEL %s: %v", w, id, err)
						return
					}
					delete(st, id)
					continue
				}
				p := geom.Pt2(int64(w*10_000+i), int64(i%997))
				if err := c.Set(id, []int64{p[0], p[1]}); err != nil {
					t.Errorf("writer %d: SET %s: %v", w, id, err)
					return
				}
				st[id] = p
			}
		}()
	}
	wg.Wait()
	oracle := make(map[string]geom.Point)
	for _, l := range logs {
		for id, p := range l.state {
			oracle[id] = p
		}
	}
	if len(oracle) == 0 {
		t.Fatal("churn acknowledged nothing; oracle proved nothing")
	}
	return oracle
}

// fullState reads a server's entire object set through one WITHIN over
// the universe.
func fullState(t *testing.T, c *service.Client) map[string]geom.Point {
	t.Helper()
	hits, err := c.Within([]int64{0, 0}, []int64{1_000_000_000, 1_000_000_000})
	if err != nil {
		t.Fatalf("WITHIN: %v", err)
	}
	out := make(map[string]geom.Point, len(hits))
	for _, h := range hits {
		out[h.ID] = geom.Pt2(h.P[0], h.P[1])
	}
	return out
}

// assertState requires the server's full state and per-ID GETs to match
// the oracle exactly.
func assertState(t *testing.T, c *service.Client, oracle map[string]geom.Point, who string) {
	t.Helper()
	got := fullState(t, c)
	if len(got) != len(oracle) {
		t.Errorf("%s: %d objects, oracle has %d", who, len(got), len(oracle))
	}
	for id, want := range oracle {
		if got[id] != want {
			t.Errorf("%s: WITHIN %s = %v, want %v", who, id, got[id], want)
		}
		p, found, err := c.Get(id)
		if err != nil {
			t.Fatalf("%s: GET %s: %v", who, id, err)
		}
		if !found || geom.Pt2(p[0], p[1]) != want {
			t.Errorf("%s: GET %s = %v (found=%t), want %v", who, id, p, found, want)
		}
	}
	for id := range got {
		if _, ok := oracle[id]; !ok {
			t.Errorf("%s: extra object %s (deleted on the leader or never acknowledged)", who, id)
		}
	}
}

// TestFollowerConvergenceOracle is the tentpole proof: multi-writer
// churn (SETs and DELs) on a real leader process, two real follower
// processes streaming it live; after quiesce both followers' full state
// and per-ID reads exactly match the acknowledged-write oracle.
func TestFollowerConvergenceOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	leader, addr, repl := startLeaderPsid(t, t.TempDir(), "127.0.0.1:0")
	defer sigtermWait(leader)
	f1, f1addr := startFollowerPsid(t, t.TempDir(), repl, "oracle-f1")
	defer sigtermWait(f1)
	f2, f2addr := startFollowerPsid(t, t.TempDir(), repl, "oracle-f2")
	defer sigtermWait(f2)

	oracle := oracleChurn(t, addr, 4, 50, 700*time.Millisecond)

	lc, err := service.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	head := leaderSeq(t, lc)
	for i, faddr := range []string{f1addr, f2addr} {
		fc, err := service.Dial(faddr)
		if err != nil {
			t.Fatal(err)
		}
		waitFollowerAt(t, fc, head, 15*time.Second)
		assertState(t, fc, oracle, fmt.Sprintf("follower %d", i+1))
		fc.Close()
	}
	// The leader itself must equal the oracle too — otherwise matching
	// followers would only prove shared wrongness.
	assertState(t, lc, oracle, "leader")
}

// TestChaosFollowerKill SIGKILLs a follower mid-stream. Restarted over
// its own WAL directory it must resume from its recovered sequence —
// zero re-bootstraps, zero duplicate windows — and converge exactly.
func TestChaosFollowerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	leader, addr, repl := startLeaderPsid(t, t.TempDir(), "127.0.0.1:0")
	defer sigtermWait(leader)
	fdir := t.TempDir()
	follower, _ := startFollowerPsid(t, fdir, repl, "chaos-kill")

	done := make(chan map[string]geom.Point, 1)
	go func() { done <- oracleChurn(t, addr, 4, 50, 900*time.Millisecond) }()

	// Kill the follower while windows are in flight.
	time.Sleep(300 * time.Millisecond)
	if err := follower.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	follower.Wait()
	oracle := <-done

	follower2, faddr := startFollowerPsid(t, fdir, repl, "chaos-kill")
	defer sigtermWait(follower2)
	lc, err := service.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fc, err := service.Dial(faddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	waitFollowerAt(t, fc, leaderSeq(t, lc), 15*time.Second)

	fs := replStats(t, fc).Follower
	if fs.Bootstraps != 0 {
		t.Errorf("killed follower re-bootstrapped %d times; its WAL should have resumed the stream", fs.Bootstraps)
	}
	if fs.Duplicates != 0 {
		t.Errorf("killed follower skipped %d duplicate windows; resume must be exact", fs.Duplicates)
	}
	assertState(t, fc, oracle, "restarted follower")
}

// TestChaosPartition drops the replication TCP stream mid-record via a
// byte-limited proxy. The follower must notice, redial, resume from its
// applied sequence, and converge without applying anything twice.
func TestChaosPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	leader, addr, repl := startLeaderPsid(t, t.TempDir(), "127.0.0.1:0")
	defer sigtermWait(leader)

	// The proxy forwards follower<->leader; the first session's
	// leader->follower direction is cut after 200 bytes — enough for the
	// handshake plus a few windows, then a tear mid-frame.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var firstConn atomic.Bool
	firstConn.Store(true)
	go func() {
		for {
			down, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", repl)
			if err != nil {
				down.Close()
				continue
			}
			limit := int64(-1)
			if firstConn.CompareAndSwap(true, false) {
				limit = 200
			}
			go func() {
				go func() { io.Copy(up, down); up.Close() }() // acks upstream
				if limit < 0 {
					io.Copy(down, up)
				} else {
					io.CopyN(down, up, limit)
				}
				down.Close()
				up.Close()
			}()
		}
	}()

	fdir := t.TempDir()
	follower, faddr := startFollowerPsid(t, fdir, ln.Addr().String(), "chaos-part")
	defer sigtermWait(follower)

	oracle := oracleChurn(t, addr, 4, 50, 700*time.Millisecond)

	lc, err := service.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer lc.Close()
	fc, err := service.Dial(faddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	waitFollowerAt(t, fc, leaderSeq(t, lc), 15*time.Second)

	fs := replStats(t, fc).Follower
	if fs.Reconnects < 1 {
		t.Errorf("severed stream produced %d reconnects, want at least 1", fs.Reconnects)
	}
	if fs.Duplicates != 0 {
		t.Errorf("re-sync skipped %d duplicate windows; the resume handshake must be exact", fs.Duplicates)
	}
	if fs.Bootstraps != 0 {
		t.Errorf("re-sync bootstrapped %d times; the retained tail should have covered the gap", fs.Bootstraps)
	}
	assertState(t, fc, oracle, "partitioned follower")
}

// TestChaosLeaderKill SIGKILLs the leader. The follower must keep
// serving reads of its replicated state while disconnected, refuse
// writes, and — after the leader comes back WIPED on the same port —
// re-bootstrap from the new incarnation's snapshot and converge on the
// new state, discarding the old.
func TestChaosLeaderKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	// Reserve a fixed replication port so the restarted leader binds
	// where the follower keeps redialing.
	rsv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	replAddr := rsv.Addr().String()
	rsv.Close()

	ldir := t.TempDir()
	leader, addr, _ := startLeaderPsid(t, ldir, replAddr)
	follower, faddr := startFollowerPsid(t, t.TempDir(), replAddr, "chaos-lead")
	defer sigtermWait(follower)

	oracle := oracleChurn(t, addr, 2, 40, 400*time.Millisecond)
	lc, err := service.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := service.Dial(faddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	waitFollowerAt(t, fc, leaderSeq(t, lc), 15*time.Second)
	lc.Close()

	if err := leader.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	leader.Wait()

	// Leaderless: reads still serve the replicated state, writes are
	// still refused, the process stays healthy.
	assertState(t, fc, oracle, "leaderless follower")
	if resp, err := fc.Do(service.Request{Op: service.OpSet, ID: "x", P: []int64{1, 1}}); err != nil {
		t.Fatal(err)
	} else if resp.OK || resp.Code != service.CodeReadonly {
		t.Fatalf("leaderless follower accepted a write: %+v", resp)
	}

	// The leader returns WIPED (rm -rf its WAL) on the same port: the
	// follower is now ahead of an empty history and must re-bootstrap.
	if err := os.RemoveAll(ldir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(ldir, 0o755); err != nil {
		t.Fatal(err)
	}
	leader2, addr2, _ := startLeaderPsid(t, ldir, replAddr)
	defer sigtermWait(leader2)
	lc2, err := service.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer lc2.Close()
	oracle2 := oracleChurn(t, addr2, 2, 30, 300*time.Millisecond)

	deadline := time.Now().Add(20 * time.Second)
	for {
		fs := replStats(t, fc).Follower
		if fs.Bootstraps >= 1 && fs.AppliedSeq == leaderSeq(t, lc2) && fs.LagWindows == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never re-bootstrapped onto the wiped leader: %+v", fs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	assertState(t, fc, oracle2, "re-bootstrapped follower")
}

// TestChaosPromote is the failover convergence oracle across real
// processes and two write timelines: churn against leader L (term 0),
// quiesce, SIGKILL L, PROMOTE standby A in place (term 1), re-point
// follower B, churn against A — then bring L back over its own WAL as
// a stale term-0 leader, let a higher-term follower fence it, and fold
// it into the new timeline. Every write acknowledged by either
// timeline's leader must survive, byte for byte, on every node of the
// final topology. The one deliberate exception is pinned explicitly: a
// write acknowledged by the resurrected stale leader AFTER the new
// timeline exists is on a dead branch — fencing exists to slam that
// window shut, and the rejoin bootstrap discards it.
func TestChaosPromote(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	// Reserve the standby's promotion port: PROMOTE binds the -repl
	// address the standby was started with, and B must know it to
	// re-point.
	rsv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	aRepl := rsv.Addr().String()
	rsv.Close()

	ldir := t.TempDir()
	leader, addr, replL := startLeaderPsid(t, ldir, "127.0.0.1:0")
	// A is a hot standby: a follower that also carries the listen
	// address its promotion will bind.
	a, aAddr, _ := startPsid(t, t.TempDir(), "-replica-of", replL, "-repl-id", "promo-a", "-repl", aRepl)
	defer sigtermWait(a)
	b, bAddr := startFollowerPsid(t, t.TempDir(), replL, "promo-b")
	defer sigtermWait(b)

	// Timeline 0: churn, then quiesce and confirm both followers hold
	// the full acked frontier. Promoting a caught-up follower is the
	// no-lost-acks precondition (docs/replication.md, "Failover").
	oracle0 := oracleChurnIDs(t, addr, "t0w", 3, 40, 500*time.Millisecond)
	lc, err := service.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	head0 := leaderSeq(t, lc)
	lc.Close()
	ac, err := service.Dial(aAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	bc, err := service.Dial(bAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	waitFollowerAt(t, ac, head0, 15*time.Second)
	waitFollowerAt(t, bc, head0, 15*time.Second)

	// Kill -9 the leader and promote A in place — no restart: the same
	// process flips roles, seeds its repl listener from its recovered
	// WAL, and accepts writes.
	if err := leader.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	leader.Wait()
	if err := ac.Promote(""); err != nil {
		t.Fatalf("PROMOTE: %v", err)
	}
	if rs := replStats(t, ac); rs.Role != "leader" || rs.Term != 1 {
		t.Fatalf("promoted standby reports %s/term %d, want leader/term 1", rs.Role, rs.Term)
	}
	if err := bc.Follow(aRepl); err != nil {
		t.Fatalf("FOLLOW b -> a: %v", err)
	}

	// Timeline 1: churn against the promoted leader on a disjoint ID
	// namespace; the union of both oracles is the exact final truth.
	oracle1 := oracleChurnIDs(t, aAddr, "t1w", 3, 40, 500*time.Millisecond)
	merged := make(map[string]geom.Point, len(oracle0)+len(oracle1))
	for id, p := range oracle0 {
		merged[id] = p
	}
	for id, p := range oracle1 {
		merged[id] = p
	}

	// The old leader comes back over its own WAL, on its old port,
	// still believing it leads at term 0 — and still accepting writes.
	// This is the split-brain hazard PROMOTE cannot prevent on its own.
	leader2, addr2, _ := startLeaderPsid(t, ldir, replL)
	defer sigtermWait(leader2)
	lc2, err := service.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer lc2.Close()
	if err := lc2.Set("split-brain", []int64{13, 13}); err != nil {
		t.Fatalf("stale leader refused a write before fencing: %v", err)
	}

	// Fencing: the first higher-term follower that dials the stale
	// leader deposes it. B (term 1) does; L must flip read-only with
	// the fenced error code, without a restart.
	if err := bc.Follow(replL); err != nil {
		t.Fatalf("FOLLOW b -> stale leader: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := lc2.Do(service.Request{Op: service.OpSet, ID: "post-fence", P: []int64{1, 1}})
		if err != nil {
			t.Fatalf("SET on the stale leader: %v", err)
		}
		if !resp.OK && resp.Code == service.CodeFenced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale leader never fenced itself: last response %+v", resp)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rs := replStats(t, lc2); rs.Role != "fenced" {
		t.Fatalf("deposed leader reports role %q, want fenced", rs.Role)
	}

	// Fold everything onto timeline 1: B back to A, and the fenced
	// ex-leader rejoins as a follower (its stale term and the dead
	// split-brain branch force a clean bootstrap).
	if err := bc.Follow(aRepl); err != nil {
		t.Fatalf("FOLLOW b -> a (repair): %v", err)
	}
	if err := lc2.Follow(aRepl); err != nil {
		t.Fatalf("FOLLOW ex-leader -> a: %v", err)
	}
	head1 := leaderSeq(t, ac)
	waitFollowerAt(t, bc, head1, 15*time.Second)
	waitFollowerAt(t, lc2, head1, 15*time.Second)

	// The oracle: every write acknowledged by either timeline's leader
	// is present on every node of the final topology, and nothing else
	// — in particular the stale write acked after the promotion is
	// gone, discarded with its dead timeline.
	assertState(t, ac, merged, "promoted leader")
	assertState(t, bc, merged, "re-pointed follower")
	assertState(t, lc2, merged, "rejoined ex-leader")
	if _, found, _ := lc2.Get("split-brain"); found {
		t.Error("the stale timeline's post-promotion write leaked into the rejoined ex-leader")
	}
	for who, c := range map[string]*service.Client{"b": bc, "ex-leader": lc2} {
		rs := replStats(t, c)
		if rs.Role != "follower" || rs.Term != 1 {
			t.Errorf("%s reports %s/term %d on the final topology, want follower/term 1", who, rs.Role, rs.Term)
		}
	}
}
