package main

// The kill-and-restart oracle: the test the WAL exists to pass. A real
// psid process (this test binary re-execed into run(), the standard
// helper-process pattern) serves with -wal and -fsync always while
// writer clients churn SETs, recording the last acknowledged position
// per ID. The process is SIGKILLed mid-churn — no drain, no final
// flush, exactly a crash — restarted over the same directory, and every
// acknowledged write must come back. A write whose connection died
// before the ack is the one allowed ambiguity: it may have committed or
// not, so either its value or the previous acked one is accepted.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/service"
)

// TestCrashHelperProcess is not a test: it is psid. When the oracle
// re-execs the test binary with PSID_CRASH_HELPER=1, this function
// rebuilds os.Args from the marshalled arg list and hands control to
// run(), so the child is byte-for-byte the production main path —
// including the graceful-shutdown wiring the oracle bypasses with
// SIGKILL.
func TestCrashHelperProcess(t *testing.T) {
	if os.Getenv("PSID_CRASH_HELPER") != "1" {
		t.Skip("helper process for the crash oracle; not a standalone test")
	}
	var args []string
	if err := json.Unmarshal([]byte(os.Getenv("PSID_CRASH_ARGS")), &args); err != nil {
		fmt.Fprintf(os.Stderr, "helper: bad PSID_CRASH_ARGS: %v\n", err)
		os.Exit(2)
	}
	os.Args = append([]string{"psid"}, args...)
	// Fresh flag set: the test binary's CommandLine is full of -test.*
	// definitions that are not on the rewritten command line.
	flag.CommandLine = flag.NewFlagSet("psid", flag.ExitOnError)
	os.Exit(run())
}

var servingRE = regexp.MustCompile(`^psid: serving .* on (127\.0\.0\.1:\d+)`)

// startPsid re-execs this test binary as a psid serving on an ephemeral
// port with the given WAL directory, and returns the process and its
// bound address (parsed from the serving line, which also carries the
// recovery summary).
func startPsid(t *testing.T, walDir string, extra ...string) (*exec.Cmd, string, string) {
	t.Helper()
	args := append([]string{
		"-addr", "127.0.0.1:0", "-http", "",
		"-wal", walDir, "-fsync", "always",
		"-maxbatch", "64", "-drain", "10s",
	}, extra...)
	enc, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelperProcess$")
	cmd.Env = append(os.Environ(), "PSID_CRASH_HELPER=1", "PSID_CRASH_ARGS="+string(enc))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	deadline := time.After(15 * time.Second)
	lineCh := make(chan string, 16)
	go func() {
		defer close(lineCh)
		for sc.Scan() {
			lineCh <- sc.Text()
		}
	}()
	for {
		select {
		case line, ok := <-lineCh:
			if !ok {
				cmd.Process.Kill()
				t.Fatal("psid exited before its serving line")
			}
			if m := servingRE.FindStringSubmatch(line); m != nil {
				// Keep draining stdout so the child never blocks on a
				// full pipe.
				go func() {
					for range lineCh {
					}
				}()
				return cmd, m[1], line
			}
		case <-deadline:
			cmd.Process.Kill()
			t.Fatal("timed out waiting for the psid serving line")
		}
	}
}

// ackLog is one writer's view of what the server owes it: the last
// acknowledged position per ID, plus the single write whose ack never
// arrived (connection died mid-round-trip — the only op allowed to land
// on either side of the crash).
type ackLog struct {
	acked    map[string]geom.Point
	inFlight map[string]geom.Point
}

func TestKillRecoveryOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	dir := t.TempDir()
	cmd, addr, _ := startPsid(t, dir)

	// Churn: 4 writers on disjoint ID ranges, each cycling 50 IDs
	// through moving positions, recording every ack.
	const writers = 4
	logs := make([]*ackLog, writers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := range writers {
		logs[w] = &ackLog{acked: make(map[string]geom.Point), inFlight: make(map[string]geom.Point)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := service.Dial(addr)
			if err != nil {
				t.Errorf("writer %d: dial: %v", w, err)
				return
			}
			defer c.Close()
			al := logs[w]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("w%d-%d", w, i%50)
				p := geom.Pt2(int64(w*1000+i), int64(i%997))
				if err := c.Set(id, []int64{p[0], p[1]}); err != nil {
					// The kill raced this round trip: the op may or may
					// not have committed before the process died.
					al.inFlight[id] = p
					return
				}
				al.acked[id] = p
			}
		}()
	}

	// Let the churn build real state, then kill without ceremony.
	time.Sleep(700 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	close(stop)
	wg.Wait()

	var total int
	for _, al := range logs {
		total += len(al.acked)
	}
	if total == 0 {
		t.Fatal("no writes were acknowledged before the kill; oracle proved nothing")
	}

	// Restart over the same directory: recovery must replay every
	// acknowledged write (fsync=always: ack means on disk).
	cmd2, addr2, serving := startPsid(t, dir)
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	t.Logf("restart: %s", serving)
	c, err := service.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for w, al := range logs {
		for id, want := range al.acked {
			got, found, err := c.Get(id)
			if err != nil {
				t.Fatalf("GET %s: %v", id, err)
			}
			if amb, ok := al.inFlight[id]; ok {
				// The unacknowledged overwrite may have won instead.
				if found && (geom.Pt2(got[0], got[1]) == want || geom.Pt2(got[0], got[1]) == amb) {
					continue
				}
				t.Errorf("writer %d: %s = %v (found=%t), want %v or in-flight %v", w, id, got, found, want, amb)
				continue
			}
			if !found || geom.Pt2(got[0], got[1]) != want {
				t.Errorf("writer %d: acknowledged write lost: %s = %v (found=%t), want %v", w, id, got, found, want)
			}
		}
		// An ID whose only write was in flight may exist or not, but if
		// it exists it must hold the in-flight value.
		for id, amb := range al.inFlight {
			if _, wasAcked := al.acked[id]; wasAcked {
				continue
			}
			got, found, err := c.Get(id)
			if err != nil {
				t.Fatalf("GET %s: %v", id, err)
			}
			if found && geom.Pt2(got[0], got[1]) != amb {
				t.Errorf("writer %d: %s = %v, want absent or in-flight %v", w, id, got, amb)
			}
		}
	}
}
