// Command psid is the Ψ-Lib geospatial server: it serves the
// psi.Collection moving-object API — SET / DEL / GET / NEARBY / WITHIN /
// STATS / FLUSH / SLOWLOG, plus the PROMOTE / DEMOTE / FOLLOW failover
// admin commands — over a newline-delimited JSON protocol on
// TCP, with HTTP probe endpoints on the -http listener:
//
//	/healthz          liveness probe (200 "ok"; 503 while draining or after a WAL failure)
//	/stats            STATS payload as JSON
//	/metrics          Prometheus text exposition (docs/observability.md)
//	/debug/flushtrace recent flush-pipeline spans as JSON
//	/debug/slowlog    retained slow queries as JSON (with -slowlog)
//	/debug/pprof/     Go profiles (with -pprof)
//
// The wire protocol is documented in docs/protocol.md; drive it with nc
// for a quickstart:
//
//	psid -addr :7501 -http :7502 &
//	printf '%s\n' '{"op":"SET","id":"veh-1","p":[3,4]}' '{"op":"FLUSH"}' \
//	              '{"op":"NEARBY","p":[0,0],"k":1}' | nc 127.0.0.1 7501
//	curl -s http://127.0.0.1:7502/metrics
//
// The serving stack is chosen by flags: -index picks the per-shard index
// family (any psibench table name), -shards wraps it in the sharded
// fan-out layer so every coalesced flush applies across shards in
// parallel. -pprof mounts net/http/pprof under /debug/pprof/ on the
// -http listener and adds GC counters to /stats, so allocation and CPU
// profiles can be captured from a live server (README "Performance").
//
// -wal DIR makes acknowledged writes survive restarts: every committed
// flush window is journaled to DIR before it is applied, a periodic full
// snapshot truncates the log, and startup recovers snapshot + log —
// including after a crash that tore the final record. -fsync picks the
// durability policy (always | never | a sync interval like 100ms; see
// docs/durability.md for what each promises), -snapshot-interval the
// snapshot cadence. Without -wal the server is memory-only.
//
// -repl ADDR (requires -wal) adds a replication listener: every
// committed WAL window streams to any psid started with
// -replica-of ADDR, which serves the same state read-only —
// GET/NEARBY/WITHIN work, SET/DEL/FLUSH are refused with the readonly
// error code — bootstrapping from a full snapshot when it is too far
// behind and resuming from its own WAL sequence after a restart. Lag is
// visible on both sides (/stats, /healthz, psi_repl_* metrics);
// docs/replication.md has the protocol and consistency contract.
//
// Failover is first-class: the PROMOTE command flips a running follower
// into the leader in place (bumping and journaling the leader term),
// FOLLOW re-points a follower — or a deposed ex-leader — at a new
// leader's address at runtime, and DEMOTE fences a leader by hand. A
// leader that learns of a higher term refuses writes with the fenced
// error code rather than forking history. Start a follower with both
// -replica-of and -repl to make it a hot standby whose PROMOTE listener
// address is pre-assigned; -max-lag turns /healthz into a 503-on-stale
// readiness gate. docs/replication.md ("Failover") has the contract.
//
// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, drain
// in-flight commands, apply a final flush so every acknowledged write is
// committed (and, with -wal, snapshotted), and print the serving
// counters. Every exit path after startup runs the same shutdown — a
// fatal serving error (say, a dead WAL disk) drains and closes the log
// too, rather than aborting mid-flush.
//
// Benchmark a running psid with cmd/psiload.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/service"
	"repro/internal/wal"

	psi "repro"
)

// main is a thin os.Exit shell around run: deferred cleanups (and the
// graceful-shutdown path) must not be skipped by a direct os.Exit in the
// middle of serving logic.
func main() { os.Exit(run()) }

func run() int {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"psid — Ψ-Lib geospatial server (protocol reference: docs/protocol.md)\n\nUsage: psid [flags]\n\n")
		flag.PrintDefaults()
	}
	addr := flag.String("addr", ":7501", "TCP command listener address")
	httpAddr := flag.String("http", ":7502", "HTTP probe listener address (/healthz, /stats, /metrics, /debug/flushtrace, /debug/slowlog); empty disables")
	index := flag.String("index", "SPaC-H", "index family (a psibench table name, e.g. SPaC-H, P-Orth, Pkd-Tree)")
	shards := flag.Int("shards", -1, "shard count: -1 = one per core, 0 = unsharded, N = N shards")
	dims := flag.Int("dims", 2, "point dimensionality (2 or 3)")
	side := flag.Int64("side", 1_000_000_000, "coordinate universe [0, side]^dims")
	maxBatch := flag.Int("maxbatch", 4096, "coalescing threshold: pending ops that trigger a synchronous flush")
	flushEvery := flag.Duration("flush-interval", service.DefaultFlushInterval, "background flush cadence bounding query staleness")
	maxLine := flag.Int("maxline", service.DefaultMaxLineBytes, "reject request lines longer than this many bytes")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -http listener and add GC counters to /stats")
	lockedReads := flag.Bool("locked-reads", false, "disable epoch-pinned snapshot reads: queries take the read lock and can wait behind a flush (A/B baseline)")
	slowlog := flag.Duration("slowlog", 0, "slow-query threshold: commands slower than this are retained in the slow-query log (SLOWLOG command, /debug/slowlog); 0 disables")
	slowlogSize := flag.Int("slowlog-size", service.DefaultSlowLogSize, "slow-query log ring capacity")
	walDir := flag.String("wal", "", "write-ahead log directory: journal committed flush windows and recover them on restart (docs/durability.md); empty serves memory-only")
	fsync := flag.String("fsync", "always", "WAL fsync policy: always (ack = on disk), never, or a sync interval like 100ms (bounded loss window)")
	snapEvery := flag.Duration("snapshot-interval", service.DefaultWALSnapshotInterval, "WAL snapshot-and-truncate cadence bounding restart replay time")
	replListen := flag.String("repl", "", "replication listener address: stream committed WAL windows to followers (docs/replication.md); requires -wal")
	replRetain := flag.Int("repl-retain", 0, "committed windows retained in memory for follower catch-up; a follower further behind re-bootstraps from a snapshot (0 = default)")
	replicaOf := flag.String("replica-of", "", "run as a read-only follower of the leader's -repl listener at host:port; requires -wal (combine with -repl for a hot standby: PROMOTE binds that address)")
	replID := flag.String("repl-id", "", "stable follower identity reported to the leader (defaults to the connection's remote address)")
	maxLag := flag.Int("max-lag", 0, "follower readiness gate: /healthz serves 503 when the replication lag exceeds this many windows (or the leader is unreachable); 0 keeps /healthz always-200")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	flag.Parse()

	if *dims != 2 && *dims != 3 {
		fmt.Fprintf(os.Stderr, "psid: -dims must be 2 or 3, got %d\n", *dims)
		return 2
	}
	universe := geom.UniverseBox(*dims, *side)
	mk := func(dims int, u geom.Box) core.Index { return psi.ByName(*index, dims, u) }
	if mk(*dims, universe) == nil {
		fmt.Fprintf(os.Stderr, "psid: unknown index %q (see psibench table names)\n", *index)
		return 2
	}
	fsyncPolicy, fsyncInterval, err := wal.ParseFsync(*fsync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psid: %v\n", err)
		return 2
	}
	reg := psi.NewMetrics()
	var idx core.Index
	stack := *index
	if *shards != 0 {
		// Handing the registry to the shard layer adds per-shard load
		// accounting (psi_shard_ops_total and friends) to /metrics.
		idx = psi.NewShardedOpts(psi.ShardedOptions{
			Dims:     *dims,
			Universe: universe,
			Shards:   *shards,
			Strategy: psi.ShardHilbert,
			New:      mk,
			Obs:      reg,
		})
		stack = fmt.Sprintf("Sharded(%s)", *index)
	} else {
		idx = mk(*dims, universe)
	}

	if *pprofOn && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "psid: -pprof requires the -http listener")
		return 2
	}
	s, err := service.NewDurable(idx, service.Options{
		MaxBatch:            *maxBatch,
		FlushInterval:       *flushEvery,
		MaxLineBytes:        *maxLine,
		EnablePprof:         *pprofOn,
		DisableSnapshot:     *lockedReads,
		Obs:                 reg,
		SlowLog:             *slowlog,
		SlowLogSize:         *slowlogSize,
		WALDir:              *walDir,
		WALFsync:            fsyncPolicy,
		WALFsyncInterval:    fsyncInterval,
		WALSnapshotInterval: *snapEvery,
		ReplListen:          *replListen,
		ReplRetainWindows:   *replRetain,
		ReplicaOf:           *replicaOf,
		ReplID:              *replID,
		MaxLagWindows:       *maxLag,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "psid: %v\n", err)
		return 1
	}
	// From here on every exit goes through shutdown: the final flush
	// (and WAL snapshot + close) must run on fatal errors too, or the
	// durability the -wal flag promises ends at the first panic-free
	// error path that calls os.Exit.
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		return s.Shutdown(ctx)
	}
	if err := s.Start(*addr, *httpAddr); err != nil {
		fmt.Fprintf(os.Stderr, "psid: %v\n", err)
		shutdown() // closes the collection and the WAL cleanly
		return 1
	}
	reads := "snapshot"
	if *lockedReads {
		reads = "locked"
	}
	fmt.Printf("psid: serving %s (%s reads) on %s", stack, reads, s.Addr())
	if h := s.HTTPAddr(); h != nil {
		fmt.Printf(" (http %s)", h)
	}
	fmt.Printf(", %d cores", runtime.NumCPU())
	if *walDir != "" {
		rec := s.WALRecovered()
		fmt.Printf(", wal %s (fsync %s, recovered %d objects from %d records",
			*walDir, fsyncPolicy, rec.Objects, rec.Records)
		if rec.TruncatedBytes > 0 {
			fmt.Printf(", truncated %d-byte torn tail", rec.TruncatedBytes)
		}
		fmt.Printf(")")
	}
	fmt.Println()
	// The replication role gets its own line: subprocess tests and ops
	// scripts parse the bound -repl address (":0" in tests) from it. A
	// hot standby (-replica-of plus -repl) starts as a replica; PROMOTE
	// binds the -repl address later.
	if a := s.ReplAddr(); a != nil {
		fmt.Printf("psid: replication leader on %s\n", a)
	} else if *replicaOf != "" {
		fmt.Printf("psid: read-only replica of %s\n", *replicaOf)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	code := 0
	select {
	case got := <-sig:
		fmt.Printf("psid: %s — draining (timeout %s)\n", got, *drain)
	case err := <-s.Fatal():
		// The WAL failed mid-serve: durable acks are already being
		// refused; drain, flush, and exit non-zero so the supervisor
		// restarts onto (or replaces) the bad disk.
		fmt.Fprintf(os.Stderr, "psid: fatal: %v — draining (timeout %s)\n", err, *drain)
		code = 1
	}
	shutdownErr := shutdown()
	st := s.Stats()
	var served, errs uint64
	for _, op := range st.Ops {
		served += op.Count
		errs += op.Errors
	}
	fmt.Printf("psid: stopped — %d commands served (%d errors, %d bad lines), %d objects across %d flushes\n",
		served, errs, st.BadLines, st.Objects, st.Flushes)
	if shutdownErr != nil {
		// The drain timed out and connections were force-closed: the
		// final flush still ran, but exit non-zero so supervisors (and
		// the CI smoke) can tell a forced stop from a graceful one.
		fmt.Fprintf(os.Stderr, "psid: forced shutdown after drain timeout: %v\n", shutdownErr)
		return 1
	}
	return code
}
