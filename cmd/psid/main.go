// Command psid is the Ψ-Lib geospatial server: it serves the
// psi.Collection moving-object API — SET / DEL / GET / NEARBY / WITHIN /
// STATS / FLUSH / SLOWLOG — over a newline-delimited JSON protocol on
// TCP, with HTTP probe endpoints on the -http listener:
//
//	/healthz          liveness probe (200 "ok")
//	/stats            STATS payload as JSON
//	/metrics          Prometheus text exposition (docs/observability.md)
//	/debug/flushtrace recent flush-pipeline spans as JSON
//	/debug/slowlog    retained slow queries as JSON (with -slowlog)
//	/debug/pprof/     Go profiles (with -pprof)
//
// The wire protocol is documented in docs/protocol.md; drive it with nc
// for a quickstart:
//
//	psid -addr :7501 -http :7502 &
//	printf '%s\n' '{"op":"SET","id":"veh-1","p":[3,4]}' '{"op":"FLUSH"}' \
//	              '{"op":"NEARBY","p":[0,0],"k":1}' | nc 127.0.0.1 7501
//	curl -s http://127.0.0.1:7502/metrics
//
// The serving stack is chosen by flags: -index picks the per-shard index
// family (any psibench table name), -shards wraps it in the sharded
// fan-out layer so every coalesced flush applies across shards in
// parallel. -pprof mounts net/http/pprof under /debug/pprof/ on the
// -http listener and adds GC counters to /stats, so allocation and CPU
// profiles can be captured from a live server (README "Performance").
// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting,
// drain in-flight commands, apply a final flush so every acknowledged
// write is committed, and print the serving counters.
//
// Benchmark a running psid with cmd/psiload.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/service"

	psi "repro"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"psid — Ψ-Lib geospatial server (protocol reference: docs/protocol.md)\n\nUsage: psid [flags]\n\n")
		flag.PrintDefaults()
	}
	addr := flag.String("addr", ":7501", "TCP command listener address")
	httpAddr := flag.String("http", ":7502", "HTTP probe listener address (/healthz, /stats, /metrics, /debug/flushtrace, /debug/slowlog); empty disables")
	index := flag.String("index", "SPaC-H", "index family (a psibench table name, e.g. SPaC-H, P-Orth, Pkd-Tree)")
	shards := flag.Int("shards", -1, "shard count: -1 = one per core, 0 = unsharded, N = N shards")
	dims := flag.Int("dims", 2, "point dimensionality (2 or 3)")
	side := flag.Int64("side", 1_000_000_000, "coordinate universe [0, side]^dims")
	maxBatch := flag.Int("maxbatch", 4096, "coalescing threshold: pending ops that trigger a synchronous flush")
	flushEvery := flag.Duration("flush-interval", service.DefaultFlushInterval, "background flush cadence bounding query staleness")
	maxLine := flag.Int("maxline", service.DefaultMaxLineBytes, "reject request lines longer than this many bytes")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ on the -http listener and add GC counters to /stats")
	lockedReads := flag.Bool("locked-reads", false, "disable epoch-pinned snapshot reads: queries take the read lock and can wait behind a flush (A/B baseline)")
	slowlog := flag.Duration("slowlog", 0, "slow-query threshold: commands slower than this are retained in the slow-query log (SLOWLOG command, /debug/slowlog); 0 disables")
	slowlogSize := flag.Int("slowlog-size", service.DefaultSlowLogSize, "slow-query log ring capacity")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	flag.Parse()

	if *dims != 2 && *dims != 3 {
		fmt.Fprintf(os.Stderr, "psid: -dims must be 2 or 3, got %d\n", *dims)
		os.Exit(2)
	}
	universe := geom.UniverseBox(*dims, *side)
	mk := func(dims int, u geom.Box) core.Index { return psi.ByName(*index, dims, u) }
	if mk(*dims, universe) == nil {
		fmt.Fprintf(os.Stderr, "psid: unknown index %q (see psibench table names)\n", *index)
		os.Exit(2)
	}
	reg := psi.NewMetrics()
	var idx core.Index
	stack := *index
	if *shards != 0 {
		// Handing the registry to the shard layer adds per-shard load
		// accounting (psi_shard_ops_total and friends) to /metrics.
		idx = psi.NewShardedOpts(psi.ShardedOptions{
			Dims:     *dims,
			Universe: universe,
			Shards:   *shards,
			Strategy: psi.ShardHilbert,
			New:      mk,
			Obs:      reg,
		})
		stack = fmt.Sprintf("Sharded(%s)", *index)
	} else {
		idx = mk(*dims, universe)
	}

	if *pprofOn && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "psid: -pprof requires the -http listener")
		os.Exit(2)
	}
	s := service.New(idx, service.Options{
		MaxBatch:        *maxBatch,
		FlushInterval:   *flushEvery,
		MaxLineBytes:    *maxLine,
		EnablePprof:     *pprofOn,
		DisableSnapshot: *lockedReads,
		Obs:             reg,
		SlowLog:         *slowlog,
		SlowLogSize:     *slowlogSize,
	})
	if err := s.Start(*addr, *httpAddr); err != nil {
		fmt.Fprintf(os.Stderr, "psid: %v\n", err)
		os.Exit(1)
	}
	reads := "snapshot"
	if *lockedReads {
		reads = "locked"
	}
	fmt.Printf("psid: serving %s (%s reads) on %s", stack, reads, s.Addr())
	if h := s.HTTPAddr(); h != nil {
		fmt.Printf(" (http %s)", h)
	}
	fmt.Printf(", %d cores\n", runtime.NumCPU())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("psid: %s — draining (timeout %s)\n", got, *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := s.Shutdown(ctx)
	st := s.Stats()
	var served, errs uint64
	for _, op := range st.Ops {
		served += op.Count
		errs += op.Errors
	}
	fmt.Printf("psid: stopped — %d commands served (%d errors, %d bad lines), %d objects across %d flushes\n",
		served, errs, st.BadLines, st.Objects, st.Flushes)
	if shutdownErr != nil {
		// The drain timed out and connections were force-closed: the
		// final flush still ran, but exit non-zero so supervisors (and
		// the CI smoke) can tell a forced stop from a graceful one.
		fmt.Fprintf(os.Stderr, "psid: forced shutdown after drain timeout: %v\n", shutdownErr)
		os.Exit(1)
	}
}
