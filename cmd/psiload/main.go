// Command psiload benchmarks a running psid server: it opens N
// concurrent client connections, drives a SET/NEARBY/WITHIN mover/query
// mix through them (each connection owns a disjoint slice of the object
// IDs and hops them around, like the in-process fleet benchmark), and
// reports client-observed throughput and p50/p99 latency per command —
// to stdout and, with -csv, as machine-readable rows that join the
// psibench measurement logs.
//
//	psid -addr :7501 &
//	psiload -addr 127.0.0.1:7501 -conns 16 -dur 10s -csv load.csv
//
// With -scrape pointed at the server's /metrics endpoint, psiload also
// scrapes before and after the run and appends the server-side deltas
// (flush windows, coalescing ratio, per-shard op spread) to the report
// and the CSV — pairing what clients observed with what the server did.
//
// psiload exits non-zero on transport failures or when any request
// returned a protocol error, so it doubles as a CI smoke check.
//
// The -final / -verify pair is the durability oracle for psid -wal:
// -final FILE records every object's last acknowledged position to FILE
// after the run; -verify FILE (instead of a run) GETs each recorded
// object and exits non-zero if any acknowledged write is missing or
// moved. Kill -9 the server between the two and the pair proves the WAL
// holds (docs/durability.md; the CI crash smoke is exactly this
// sequence).
//
// -mix failover is the failover chaos harness: psiload spawns its own
// psid cluster (-psid gives the binary; a leader plus hot standbys),
// churns writes and reads against it, and performs -handovers violent
// handovers — kill -9 the leader mid-churn, PROMOTE the next standby
// in place, FOLLOW-re-point the survivors, restart the victim as a
// standby of the new timeline. It reports the write- and
// read-unavailability windows (first error to first success, p50/p99
// across the handovers) and exits non-zero unless every acknowledged
// write survives on the final leader at the expected term
// (docs/replication.md, "Failover"):
//
//	go build -o /tmp/psid ./cmd/psid
//	psiload -mix failover -psid /tmp/psid -handovers 5 -csv failover.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/service"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"psiload — load generator for psid (protocol reference: docs/protocol.md)\n\nUsage: psiload [flags]\n\n")
		flag.PrintDefaults()
	}
	addr := flag.String("addr", "127.0.0.1:7501", "psid command address")
	conns := flag.Int("conns", 8, "concurrent client connections")
	objects := flag.Int("objects", 10_000, "tracked object ID space, split across connections")
	dur := flag.Duration("dur", 5*time.Second, "run duration (ignored when -ops > 0)")
	ops := flag.Int("ops", 0, "stop after this many total requests instead of -dur")
	dims := flag.Int("dims", 2, "point dimensionality (must match the server)")
	side := flag.Int64("side", 1_000_000_000, "coordinate universe [0, side]^dims")
	setFrac := flag.Float64("set", 0.6, "fraction of requests that are SET moves")
	nearbyFrac := flag.Float64("nearby", 0.3, "fraction that are NEARBY (the rest are WITHIN)")
	hop := flag.Float64("hop", 0.01, "SET move distance as a fraction of side")
	boxFrac := flag.Float64("box", 0.005, "WITHIN box half-extent as a fraction of side")
	k := flag.Int("k", 10, "NEARBY k")
	seed := flag.Int64("seed", 42, "workload seed")
	csvPath := flag.String("csv", "", "also write the per-op report to this CSV file")
	scrape := flag.String("scrape", "", "psid /metrics URL (e.g. http://127.0.0.1:7502/metrics); scraped before and after the run to report server-side deltas (flushes, netting ratio, per-shard op spread)")
	mix := flag.String("mix", "", "workload preset: 'churn' = flush-heavy mover mix (90% SET, long hops) that keeps the server's index under continuous batch churn — the workload psibench -exp churn measures in-process (explicitly set flags override preset values); 'failover' = self-contained failover chaos run (needs -psid; ignores -addr, spawns its own cluster, -dur is the churn time per handover)")
	psidBin := flag.String("psid", "", "path to the psid binary the failover mix spawns (required for -mix failover)")
	handovers := flag.Int("handovers", 5, "failover mix: number of kill-and-promote rounds")
	nodes := flag.Int("nodes", 3, "failover mix: cluster size (leader + standbys)")
	followers := flag.String("followers", "", "comma-separated follower addresses (psid -replica-of): NEARBY/WITHIN queries round-robin across them while SETs stay on -addr (the leader) — the replicated read-scaling mix")
	finalPath := flag.String("final", "", "after the run, write every object's last acknowledged position to this JSON file (the durability oracle's write side)")
	verifyPath := flag.String("verify", "", "skip the load run; GET every object recorded in this JSON file (written by -final) and exit non-zero on any lost or moved acknowledged write")
	flag.Parse()

	if *verifyPath != "" {
		raw, err := os.ReadFile(*verifyPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psiload: %v\n", err)
			os.Exit(1)
		}
		var final map[string][]int64
		if err := json.Unmarshal(raw, &final); err != nil {
			fmt.Fprintf(os.Stderr, "psiload: parsing %s: %v\n", *verifyPath, err)
			os.Exit(1)
		}
		if err := service.VerifyFinal(*addr, final); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(1)
		}
		fmt.Printf("psiload: verified %d acknowledged writes against %s\n", len(final), *addr)
		return
	}

	if *mix != "" {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		switch *mix {
		case "failover":
			// Each handover needs its own churn slice; the default -dur
			// (5s) is a run length, not a round length, so the failover
			// mix defaults to 1s rounds unless -dur was set explicitly.
			roundDur := time.Duration(0)
			if set["dur"] {
				roundDur = *dur
			}
			os.Exit(failoverMix(*psidBin, *nodes, *handovers, roundDur, *csvPath))
		case "churn":
			if !set["set"] {
				*setFrac = 0.9
			}
			if !set["nearby"] {
				*nearbyFrac = 0.05
			}
			if !set["hop"] {
				*hop = 0.25
			}
		default:
			fmt.Fprintf(os.Stderr, "psiload: unknown -mix %q (supported: churn)\n", *mix)
			os.Exit(2)
		}
	}

	var before map[string]float64
	if *scrape != "" {
		var err error
		before, err = service.ScrapeMetrics(*scrape)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psiload: scraping %s: %v\n", *scrape, err)
			os.Exit(1)
		}
	}

	rep, err := service.RunLoad(service.LoadOptions{
		Addr:       *addr,
		Conns:      *conns,
		Objects:    *objects,
		Dims:       *dims,
		Side:       *side,
		Duration:   *dur,
		TotalOps:   *ops,
		SetFrac:    *setFrac,
		NearbyFrac: *nearbyFrac,
		HopFrac:    *hop,
		BoxFrac:    *boxFrac,
		K:          *k,
		Seed:       *seed,
		TrackFinal: *finalPath != "",
		Followers:  splitAddrs(*followers),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "psiload: %v\n", err)
		os.Exit(1)
	}
	if *scrape != "" {
		after, err := service.ScrapeMetrics(*scrape)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psiload: scraping %s: %v\n", *scrape, err)
			os.Exit(1)
		}
		rep.Server = service.MetricsDelta(before, after)
	}
	rep.Format(os.Stdout)
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psiload: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "psiload: writing CSV: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "psiload: closing CSV: %v\n", err)
			os.Exit(1)
		}
	}
	if *finalPath != "" {
		b, err := json.Marshal(rep.Final)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psiload: encoding final state: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*finalPath, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "psiload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("psiload: recorded %d final positions to %s\n", len(rep.Final), *finalPath)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "psiload: %d requests returned errors\n", rep.Errors)
		os.Exit(1)
	}
}

// failoverMix runs the self-contained failover chaos harness and
// returns the process exit code. The orchestration narrates to stderr;
// the report goes to stdout (and csvPath, when set).
func failoverMix(psidBin string, nodes, handovers int, roundDur time.Duration, csvPath string) int {
	if psidBin == "" {
		fmt.Fprintln(os.Stderr, "psiload: -mix failover needs -psid (path to the psid binary)")
		return 2
	}
	base, err := os.MkdirTemp("", "psiload-failover-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "psiload: %v\n", err)
		return 1
	}
	defer os.RemoveAll(base)
	rep, err := service.RunFailover(service.FailoverOptions{
		PsidBin:   psidBin,
		BaseDir:   base,
		Nodes:     nodes,
		Handovers: handovers,
		RoundDur:  roundDur,
		ServerOut: os.Stderr,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "psiload: "+format+"\n", args...)
		},
	})
	if rep != nil {
		rep.Format(os.Stdout)
		if csvPath != "" {
			f, cerr := os.Create(csvPath)
			if cerr == nil {
				cerr = rep.WriteCSV(f)
				if closeErr := f.Close(); cerr == nil {
					cerr = closeErr
				}
			}
			if cerr != nil {
				fmt.Fprintf(os.Stderr, "psiload: writing CSV: %v\n", cerr)
				return 1
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "psiload: %v\n", err)
		return 1
	}
	return 0
}

// splitAddrs parses the -followers list, tolerating empty segments and
// surrounding whitespace.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
