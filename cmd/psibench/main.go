// Command psibench regenerates the paper's tables and figures at a
// configurable scale. Each experiment prints timing tables to stdout;
// the mapping from experiment id to paper figure is in the "Experiments"
// section of README.md.
//
// Usage:
//
//	psibench -exp fig3 -n 1000000
//	psibench -exp all -n 100000 -reps 3
//
// The default n is 10^6 (the paper uses 10^9 on a 112-core machine; the
// comparison shapes are scale-stable — every experiment takes its sizes
// from the single -n flag).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "fig3", "experiment: fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|ablation|concurrent|shard|fleet|service|alloc|churn|obs|wal|all")
	n := flag.Int("n", 1_000_000, "dataset size (paper: 1e9)")
	knnq := flag.Int("knnq", 0, "number of kNN queries (default n/100)")
	rangeq := flag.Int("rangeq", 200, "number of range queries")
	reps := flag.Int("reps", 1, "timed repetitions after warm-up (paper: 3)")
	seed := flag.Int64("seed", 42, "workload seed")
	threads := flag.Int("threads", 0, "GOMAXPROCS (0 = all cores)")
	csvPath := flag.String("csv", "", "also write measurements to this CSV file")
	jsonPath := flag.String("json", "", "also write a machine-readable results document (psibench/v1) to this JSON file")
	flag.Parse()

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psibench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.SetCSV(f); err != nil {
			fmt.Fprintf(os.Stderr, "psibench: %v\n", err)
			os.Exit(1)
		}
		csvFile = f
	}

	cfg := bench.Config{
		N:       *n,
		KNNQ:    *knnq,
		RangeQ:  *rangeq,
		Reps:    *reps,
		Seed:    *seed,
		Threads: *threads,
		Out:     os.Stdout,
	}
	fmt.Printf("psibench: exp=%s n=%d reps=%d threads=%d/%d\n",
		*exp, *n, *reps, *threads, runtime.NumCPU())
	start := time.Now()
	run := map[string]func(bench.Config){
		"fig3":       bench.Fig3,
		"fig4":       bench.Fig4,
		"fig5":       bench.Fig5,
		"fig6":       bench.Fig6,
		"fig7":       bench.Fig7,
		"fig8":       bench.Fig8,
		"fig9":       bench.Fig9,
		"fig10":      bench.Fig10,
		"ablation":   bench.Ablations,
		"concurrent": bench.Concurrent,
		"shard":      bench.Shard,
		"fleet":      bench.Fleet,
		"service":    bench.Service,
		"alloc":      bench.Alloc,
		"churn":      bench.Churn,
		"obs":        bench.Obs,
		"wal":        bench.WAL,
	}
	if *jsonPath != "" {
		bench.StartJSON(*exp, cfg)
	}
	if *exp == "all" {
		for _, name := range []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "ablation", "concurrent", "shard", "fleet", "service", "alloc", "churn", "obs", "wal"} {
			run[name](cfg)
		}
	} else if f, ok := run[*exp]; ok {
		f(cfg)
	} else {
		fmt.Fprintf(os.Stderr, "psibench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psibench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "psibench: writing JSON: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "psibench: closing JSON: %v\n", err)
			os.Exit(1)
		}
	}
	// The CSV writer buffers; surface flush/close failures as a non-zero
	// exit instead of silently truncating the measurement log.
	if csvFile != nil {
		if err := bench.FlushCSV(); err != nil {
			fmt.Fprintf(os.Stderr, "psibench: writing CSV: %v\n", err)
			os.Exit(1)
		}
		if err := csvFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "psibench: closing CSV: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("\npsibench: done in %.1fs\n", time.Since(start).Seconds())
}
