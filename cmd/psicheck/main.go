// Command psicheck cross-validates every index against the brute-force
// oracle on randomized dynamic workloads — the executable form of the
// paper's correctness methodology ("verified through extensive unit tests
// using a hand-crafted framework", §F.2). It is the tool to run after any
// modification to a tree's internals.
//
// Usage:
//
//	psicheck -n 20000 -rounds 10 -seed 7
//
// Exit status 0 means every index agreed with the oracle on every query
// after every mutation round.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"

	psi "repro"
)

func main() {
	n := flag.Int("n", 20_000, "working-set size per round")
	rounds := flag.Int("rounds", 8, "mutation rounds per distribution")
	seed := flag.Int64("seed", time.Now().UnixNano()%1e9, "randomization seed")
	dims := flag.Int("dims", 2, "dimensions (2 or 3)")
	flag.Parse()

	failures := 0
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		failures += checkDist(dist, *dims, *n, *rounds, *seed)
	}
	if failures > 0 {
		fmt.Printf("psicheck: FAILED with %d discrepancies\n", failures)
		os.Exit(1)
	}
	fmt.Println("psicheck: all indexes agree with the brute-force oracle")
}

func checkDist(dist workload.Dist, dims, n, rounds int, seed int64) int {
	side := dist.Side(dims)
	universe := geom.UniverseBox(dims, side)
	pool := workload.Generate(dist, n*(rounds+1), dims, side, seed)
	rng := rand.New(rand.NewSource(seed ^ 0xabc))

	ref := core.NewBruteForce(dims)
	indexes := psi.All(dims, universe)
	ref.Build(pool[:n])
	for _, idx := range indexes {
		idx.Build(pool[:n])
	}
	used := n
	failures := 0
	for round := 0; round < rounds; round++ {
		// Mutate: alternate insert and (multiset) delete batches.
		if round%2 == 0 {
			batch := pool[used : used+n/4]
			used += n / 4
			ref.BatchInsert(batch)
			for _, idx := range indexes {
				idx.BatchInsert(batch)
			}
		} else {
			cur := ref.Points()
			batch := make([]geom.Point, n/5)
			for i := range batch {
				batch[i] = cur[rng.Intn(len(cur))]
			}
			ref.BatchDelete(batch)
			for _, idx := range indexes {
				idx.BatchDelete(batch)
			}
		}
		queries := workload.InDQueries(dist, 20, dims, side, seed+int64(round))
		boxes := workload.RangeQueries(8, dims, side, 0.01, seed+int64(round))
		for _, idx := range indexes {
			if err := core.VerifyQueries(idx, ref, queries, []int{1, 10}, boxes); err != nil {
				fmt.Printf("psicheck: %s on %s round %d: %v\n", idx.Name(), dist, round, err)
				failures++
			}
		}
	}
	fmt.Printf("psicheck: %s/%dD ok (%d rounds, final size %d)\n", dist, dims, rounds, ref.Size())
	return failures
}
