package psi

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// FuzzIndexOracle is the library-wide differential fuzzer: the input
// bytes are decoded into an operation tape (Build / BatchInsert /
// BatchDelete / BatchDiff) that is applied identically to all 11 ByName
// indexes and to a BruteForce oracle, cross-checking sizes after every
// op and the full query suite (KNN at several k, RangeCount, RangeList)
// at checkpoints and at the end of the tape. Deletions are biased toward
// stored points so multiset-delete paths are actually exercised, and the
// coordinate domain is kept tiny so duplicate points and same-cell
// collisions are routine. Seed corpus lives in
// testdata/fuzz/FuzzIndexOracle; CI smoke-runs the target for 10s and
// the Testing section of README.md documents longer local runs.
func FuzzIndexOracle(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		runIndexOracleTape(t, data)
	})
}

// fuzzSeeds are the in-code seed corpus: arbitrary byte strings chosen
// to open with each opcode and mix batch shapes. The committed files
// under testdata/fuzz add deeper tapes.
var fuzzSeeds = []string{
	"",
	"0",
	"build then query 0123456789",
	"aAbBcCdDeEfFgGhH 0123 9876 zyxw",
	"PPoPP 2026 parallel dynamic spatial indexes",
	"\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09",
	"kkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkk",
	"~}|{zyxwvutsrqponmlkjihgfedcba`_^]\\[ZYXWVUTSRQPONMLKJIHGFEDCBA@?",
}

// fuzzSide bounds the fuzz coordinate domain: byte-derived coordinates
// scaled into [0, 4080], far inside SFC precision for both 2D and 3D.
const fuzzSide = int64(4096)

// fuzzTape is a cursor over the fuzz input; decoding stops cleanly when
// the bytes run out.
type fuzzTape struct {
	data []byte
	i    int
}

func (tp *fuzzTape) next() (byte, bool) {
	if tp.i >= len(tp.data) {
		return 0, false
	}
	b := tp.data[tp.i]
	tp.i++
	return b, true
}

func (tp *fuzzTape) point(dims int) (geom.Point, bool) {
	var p geom.Point
	for d := 0; d < dims; d++ {
		b, ok := tp.next()
		if !ok {
			return p, false
		}
		p[d] = int64(b) * 16
	}
	return p, true
}

// batch decodes 1 + (count byte % max) points; it returns what it could
// decode before the tape ran out.
func (tp *fuzzTape) batch(dims, max int) []geom.Point {
	b, ok := tp.next()
	if !ok {
		return nil
	}
	n := 1 + int(b)%max
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		p, ok := tp.point(dims)
		if !ok {
			break
		}
		pts = append(pts, p)
	}
	return pts
}

// deleteBatch decodes delete targets, biased ~3:1 toward points the
// oracle currently stores (so deletes mostly hit) with the rest decoded
// fresh (usually missing — the ignored-request path).
func (tp *fuzzTape) deleteBatch(oracle *core.BruteForce, dims, max int) []geom.Point {
	b, ok := tp.next()
	if !ok {
		return nil
	}
	live := append([]geom.Point(nil), oracle.Points()...)
	n := 1 + int(b)%max
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		sel, ok := tp.next()
		if !ok {
			break
		}
		if len(live) > 0 && sel%4 != 0 {
			pts = append(pts, live[int(sel)*7%len(live)])
			continue
		}
		p, ok := tp.point(dims)
		if !ok {
			break
		}
		pts = append(pts, p)
	}
	return pts
}

// verifyAll cross-checks every index against the oracle on the standard
// query suite; query points and boxes are part of the decoded tape so
// the fuzzer can steer them toward discrepancies.
func verifyAll(t *testing.T, idxs []core.Index, oracle *core.BruteForce, tp *fuzzTape, dims int) {
	t.Helper()
	queries := []geom.Point{{}, geom.UniverseBox(dims, fuzzSide).Hi}
	for i := 0; i < 3; i++ {
		if q, ok := tp.point(dims); ok {
			queries = append(queries, q)
		}
	}
	if pts := oracle.Points(); len(pts) > 0 {
		queries = append(queries, pts[len(pts)/2])
	}
	boxes := []geom.Box{geom.UniverseBox(dims, fuzzSide)}
	for i := 0; i < 2; i++ {
		lo, ok1 := tp.point(dims)
		hi, ok2 := tp.point(dims)
		if !ok1 || !ok2 {
			break
		}
		for d := 0; d < dims; d++ {
			if lo[d] > hi[d] {
				lo[d], hi[d] = hi[d], lo[d]
			}
		}
		boxes = append(boxes, geom.BoxOf(lo, hi))
	}
	for _, idx := range idxs {
		if err := core.VerifyQueries(idx, oracle, queries, []int{1, 3, 10}, boxes); err != nil {
			t.Fatal(err)
		}
	}
}

func runIndexOracleTape(t *testing.T, data []byte) {
	tp := &fuzzTape{data: data}
	sel, ok := tp.next()
	if !ok {
		return
	}
	dims := 2 + int(sel)%2
	universe := geom.UniverseBox(dims, fuzzSide)
	names := []string{
		"P-Orth", "Zd-Tree", "SPaC-H", "SPaC-Z", "CPAM-H", "CPAM-Z",
		"Boost-R", "Pkd-Tree", "Log-Tree", "BHL-Tree", "BruteForce",
	}
	idxs := make([]core.Index, len(names))
	for i, name := range names {
		idxs[i] = ByName(name, dims, universe)
		if idxs[i] == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
	}
	oracle := core.NewBruteForce(dims)

	apply := func(op func(core.Index)) {
		op(oracle)
		for _, idx := range idxs {
			op(idx)
		}
	}
	// Bounded tape: enough ops to stack interesting histories, small
	// enough that driving 11 indexes stays fast per exec.
	for opCount := 0; opCount < 12; opCount++ {
		b, ok := tp.next()
		if !ok {
			break
		}
		switch b % 5 {
		case 0:
			pts := tp.batch(dims, 128)
			apply(func(idx core.Index) { idx.Build(pts) })
		case 1:
			pts := tp.batch(dims, 32)
			if len(pts) > 0 {
				apply(func(idx core.Index) { idx.BatchInsert(pts) })
			}
		case 2:
			pts := tp.deleteBatch(oracle, dims, 32)
			if len(pts) > 0 {
				apply(func(idx core.Index) { idx.BatchDelete(pts) })
			}
		case 3:
			ins := tp.batch(dims, 16)
			del := tp.deleteBatch(oracle, dims, 16)
			if len(ins) > 0 || len(del) > 0 {
				apply(func(idx core.Index) { idx.BatchDiff(ins, del) })
			}
		case 4:
			verifyAll(t, idxs, oracle, tp, dims)
		}
		for i, idx := range idxs {
			if idx.Size() != oracle.Size() {
				t.Fatalf("%s: size %d after op %d, oracle %d", names[i], idx.Size(), opCount, oracle.Size())
			}
		}
	}
	verifyAll(t, idxs, oracle, tp, dims)
}

// TestIndexOracleSeeds replays the in-code seed corpus as a plain test,
// so `go test` exercises the differential harness even when fuzzing is
// not invoked.
func TestIndexOracleSeeds(t *testing.T) {
	for _, s := range fuzzSeeds {
		runIndexOracleTape(t, []byte(s))
	}
}
