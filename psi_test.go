package psi

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// The root tests are the library's integration suite: every index is
// driven through the same build/insert/delete sequences and must agree
// with the brute-force oracle (and therefore with each other) on the full
// query suite.

const itSide = int64(1 << 20)

func TestAllIndexesAgreeOnStaticData(t *testing.T) {
	for _, dist := range []Dist{Uniform, Varden} {
		pts := Generate(dist, 8000, 2, itSide, 5)
		ref := core.NewBruteForce(2)
		ref.Build(pts)
		queries := workload.InDQueries(dist, 25, 2, itSide, 7)
		boxes := RangeQueries(10, 2, itSide, 0.01, 9)
		for _, idx := range All(2, Universe2D(itSide)) {
			idx.Build(pts)
			if err := core.VerifyQueries(idx, ref, queries, []int{1, 5, 20}, boxes); err != nil {
				t.Errorf("%s on %s: %v", idx.Name(), dist, err)
			}
		}
	}
}

func TestAllIndexesAgreeUnderDynamicWorkload(t *testing.T) {
	// The paper's incremental setting in miniature: build 50%, then
	// alternate insert/delete batches; all indexes must track the oracle.
	pts := Generate(Varden, 16000, 2, itSide, 11)
	ref := core.NewBruteForce(2)
	indexes := All(2, Universe2D(itSide))
	ref.Build(pts[:8000])
	for _, idx := range indexes {
		idx.Build(pts[:8000])
	}
	rng := rand.New(rand.NewSource(13))
	next := 8000
	for round := 0; round < 6; round++ {
		if round%2 == 0 {
			batch := pts[next : next+1300]
			next += 1300
			ref.BatchInsert(batch)
			for _, idx := range indexes {
				idx.BatchInsert(batch)
			}
		} else {
			cur := ref.Points()
			batch := make([]Point, 900)
			for i := range batch {
				batch[i] = cur[rng.Intn(len(cur))]
			}
			ref.BatchDelete(batch)
			for _, idx := range indexes {
				idx.BatchDelete(batch)
			}
		}
	}
	queries := workload.GenUniform(20, 2, itSide, 17)
	boxes := RangeQueries(8, 2, itSide, 0.02, 19)
	for _, idx := range indexes {
		if idx.Size() != ref.Size() {
			t.Errorf("%s: size %d, oracle %d", idx.Name(), idx.Size(), ref.Size())
			continue
		}
		if err := core.VerifyQueries(idx, ref, queries, []int{1, 10}, boxes); err != nil {
			t.Errorf("%s: %v", idx.Name(), err)
		}
	}
}

func TestAllIndexes3D(t *testing.T) {
	side := workload.DefaultSide3D
	pts := Generate(Cosmo, 6000, 3, side, 23)
	ref := core.NewBruteForce(3)
	ref.Build(pts)
	queries := workload.GenUniform(15, 3, side, 29)
	boxes := RangeQueries(8, 3, side, 0.03, 31)
	for _, idx := range All(3, Universe3D(side)) {
		idx.Build(pts)
		if err := core.VerifyQueries(idx, ref, queries, []int{1, 10}, boxes); err != nil {
			t.Errorf("%s 3D: %v", idx.Name(), err)
		}
	}
}

func TestByName(t *testing.T) {
	u := Universe2D(itSide)
	// Every name the ByName doc comment lists must resolve, round-trip
	// through Name(), and unknown names must return nil.
	cases := []struct {
		name string
		ok   bool
	}{
		{"P-Orth", true},
		{"Zd-Tree", true},
		{"SPaC-H", true},
		{"SPaC-Z", true},
		{"CPAM-H", true},
		{"CPAM-Z", true},
		{"Boost-R", true},
		{"Pkd-Tree", true},
		{"Log-Tree", true},
		{"BHL-Tree", true},
		{"BruteForce", true},
		{"", false},
		{"nope", false},
		{"spac-h", false}, // names are case-sensitive
	}
	for _, tc := range cases {
		idx := ByName(tc.name, 2, u)
		if !tc.ok {
			if idx != nil {
				t.Errorf("ByName(%q) = %v, want nil", tc.name, idx.Name())
			}
			continue
		}
		if idx == nil {
			t.Errorf("ByName(%q) = nil", tc.name)
			continue
		}
		if idx.Name() != tc.name {
			t.Errorf("ByName(%q).Name() = %q", tc.name, idx.Name())
		}
	}
}

func TestPublicAPISurface(t *testing.T) {
	u := Universe2D(100)
	idx := NewPOrth(2, u)
	idx.Build([]Point{Pt2(1, 1), Pt2(2, 2), Pt2(3, 3)})
	idx.BatchInsert([]Point{Pt2(4, 4)})
	idx.BatchDelete([]Point{Pt2(1, 1)})
	if idx.Size() != 3 {
		t.Fatalf("size %d", idx.Size())
	}
	if got := idx.KNN(Pt2(0, 0), 1, nil); len(got) != 1 || got[0] != Pt2(2, 2) {
		t.Fatalf("KNN = %v", got)
	}
	if idx.RangeCount(BoxOf(Pt2(2, 2), Pt2(4, 4))) != 3 {
		t.Fatal("RangeCount")
	}
	if DefaultOptions(2, u).LeafWrap != 32 {
		t.Fatal("DefaultOptions")
	}
	if Universe3D(5).Hi != Pt3(5, 5, 5) {
		t.Fatal("Universe3D")
	}
}

func TestBatchDiffMoveSemantics(t *testing.T) {
	// A "move" diff — delete old positions, insert new ones — must leave
	// the size unchanged and relocate the points, on every index.
	old := Generate(Uniform, 3000, 2, itSide, 41)
	moved := make([]Point, len(old))
	for i, p := range old {
		moved[i] = Pt2((p[0]+1000)%(itSide+1), p[1])
	}
	for _, idx := range All(2, Universe2D(itSide)) {
		idx.Build(old)
		idx.BatchDiff(moved, old)
		if idx.Size() != len(old) {
			t.Errorf("%s: size %d after move diff, want %d", idx.Name(), idx.Size(), len(old))
			continue
		}
		// The new position must now be present, the old one gone (probe a
		// sample to keep the test fast).
		for i := 0; i < 50; i++ {
			if got := idx.RangeCount(BoxOf(moved[i], moved[i])); got < 1 {
				t.Errorf("%s: moved point %v missing", idx.Name(), moved[i])
				break
			}
		}
	}
}

func TestStoreWrapsEveryIndex(t *testing.T) {
	// The Store front-end makes concurrent mutation safe on every index in
	// the library: four writers race single-point updates, then the result
	// must match the oracle exactly.
	pts := Generate(Uniform, 4000, 2, itSide, 59)
	fresh := Generate(Uniform, 1000, 2, itSide, 61)
	queries := workload.GenUniform(15, 2, itSide, 67)
	boxes := RangeQueries(6, 2, itSide, 0.02, 71)
	for _, idx := range All(2, Universe2D(itSide)) {
		st := NewStore(idx, StoreOptions{MaxBatch: 128})
		st.Build(pts)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(fresh); i += 4 {
					st.Insert(fresh[i])
				}
				for i := w; i < 1000; i += 4 {
					st.Delete(pts[i])
				}
			}(w)
		}
		wg.Wait()
		st.Close()
		ref := core.NewBruteForce(2)
		ref.Build(pts[1000:])
		ref.BatchInsert(fresh)
		if err := core.VerifyQueries(st, ref, queries, []int{1, 10}, boxes); err != nil {
			t.Errorf("Store over %s: %v", idx.Name(), err)
		}
	}
}

func TestShardedWrapsEveryIndex(t *testing.T) {
	// The sharding fan-out must preserve every index family's semantics:
	// drive a Sharded over each constructor through a mixed batch
	// sequence and verify the full query suite against the oracle.
	u := Universe2D(itSide)
	pts := Generate(Varden, 6000, 2, itSide, 73)
	fresh := Generate(Varden, 1500, 2, itSide, 79)
	queries := workload.InDQueries(Varden, 15, 2, itSide, 83)
	boxes := RangeQueries(8, 2, itSide, 0.02, 89)
	factories := map[string]func(dims int, universe Box) Index{
		"SPaC-H": NewSPaCH,
		"P-Orth": NewPOrth,
		"Zd":     NewZd,
	}
	for name, factory := range factories {
		s := NewSharded(factory, 2, u, 6)
		s.Build(pts)
		s.BatchInsert(fresh)
		s.BatchDiff(nil, pts[:1000])
		if err := s.Validate(); err != nil {
			t.Errorf("Sharded over %s: %v", name, err)
			continue
		}
		ref := core.NewBruteForce(2)
		ref.Build(pts[1000:])
		ref.BatchInsert(fresh)
		if err := core.VerifyQueries(s, ref, queries, []int{1, 10, 30}, boxes); err != nil {
			t.Errorf("Sharded over %s: %v", name, err)
		}
	}
}

func TestConcurrentQueriesAreSafe(t *testing.T) {
	// Queries are documented safe for concurrent use. Run a mixed query
	// storm on every index; the -race run makes this a real detector.
	pts := Generate(Varden, 10000, 2, itSide, 43)
	queries := Generate(Uniform, 64, 2, itSide, 47)
	boxes := RangeQueries(16, 2, itSide, 0.01, 53)
	for _, idx := range All(2, Universe2D(itSide)) {
		idx.Build(pts)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					switch (w + i) % 3 {
					case 0:
						idx.KNN(queries[i%len(queries)], 10, nil)
					case 1:
						idx.RangeCount(boxes[i%len(boxes)])
					case 2:
						idx.RangeList(boxes[i%len(boxes)], nil)
					}
				}
			}(w)
		}
		wg.Wait()
	}
}
