package zdtree

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
)

// Property: randomized operation scripts keep the Zd-tree's invariants
// (code order, prefix consistency, leaf wrap) and agree with the oracle.
func TestQuickOpScripts(t *testing.T) {
	f := func(seed int64, dense bool, threeD bool) bool {
		dims := 2
		if threeD {
			dims = 3
		}
		side := int64(1 << 16)
		if dense {
			side = 40
		}
		tr := NewDefault(dims, geom.UniverseBox(dims, side))
		script := core.OpScript{
			Dims: dims, Side: side, Steps: 12, Seed: seed, MaxBatch: 300,
			Validate: tr.Validate,
		}
		if err := script.Run(tr); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Boundary: points at the Morton precision limit.
func TestPrecisionBoundaryPoints(t *testing.T) {
	maxc := int64(1<<31 - 1)
	u := geom.BoxOf(geom.Pt2(0, 0), geom.Pt2(maxc, maxc))
	tr := NewDefault(2, u)
	pts := []geom.Point{
		geom.Pt2(0, 0), geom.Pt2(maxc, maxc), geom.Pt2(maxc, 0),
		geom.Pt2(0, maxc), geom.Pt2(maxc/2, maxc/2+1),
	}
	tr.Build(pts)
	validateOrFail(t, tr)
	for _, p := range pts {
		nn := tr.KNN(p, 1, nil)
		if len(nn) != 1 || nn[0] != p {
			t.Fatalf("boundary point %v lost (got %v)", p, nn)
		}
	}
	tr.BatchDelete(pts)
	if tr.Size() != 0 {
		t.Fatal("boundary points not deleted")
	}
}
