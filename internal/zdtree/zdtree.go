// Package zdtree implements the Zd-tree baseline of Blelloch & Dobson [16]
// as described by the paper (§2.3, §5 "Baselines"): a parallel orth-tree
// built over Morton codes. Construction computes the Morton code of every
// point, comparison-sorts the ⟨code, point⟩ pairs, and builds the quadtree
// recursively by splitting the sorted array at code-prefix boundaries
// (binary search). Batch updates sort the batch and merge it into the tree
// by the same prefix routing.
//
// The paper re-implemented the Zd-tree for the same reason we do — the
// original artifact's updates are buggy — and notes its construction cost
// is dominated by the Morton sort. Keeping the sort comparison-based (as
// the paper's implementation does) is what gives the P-Orth tree its edge:
// the sieve avoids computing, storing and comparing codes entirely.
//
// Like the P-Orth tree, the Zd-tree is history-independent: its hierarchy
// is the fixed power-of-two Morton grid.
package zdtree

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/sfc"
)

// Entry pairs a point with its Morton code. Leaves store entries sorted by
// code so batch merges stay linear.
type Entry struct {
	Code uint64
	P    geom.Point
}

// Tree is a Zd-tree.
type Tree struct {
	opts     core.Options
	nway     int
	topShift int // bit position of the root's quadrant digit
	root     *node
}

var _ core.Index = (*Tree)(nil)

// node: interior (kids != nil, len 2^dims) or leaf (ents sorted by code).
type node struct {
	size int
	bbox geom.Box
	kids []*node
	ents []Entry
}

func (nd *node) isLeaf() bool { return nd.kids == nil }

// New returns an empty Zd-tree. The universe must fit Morton precision
// (32 bits per dimension in 2D, 21 in 3D) and must not contain negative
// coordinates.
func New(opts core.Options) *Tree {
	opts.Validate()
	maxc := sfc.MaxCoord(sfc.Morton, opts.Dims)
	u := opts.Universe
	for d := 0; d < opts.Dims; d++ {
		if u.Lo[d] < 0 || u.Hi[d] > maxc {
			panic("zdtree: universe exceeds Morton precision")
		}
	}
	dims := opts.Dims
	bitsPerDim := 32
	if dims == 3 {
		bitsPerDim = 21
	}
	return &Tree{
		opts:     opts,
		nway:     1 << dims,
		topShift: (bitsPerDim - 1) * dims,
	}
}

// NewDefault returns a Zd-tree with the paper's parameters.
func NewDefault(dims int, universe geom.Box) *Tree {
	return New(core.DefaultOptions(dims, universe))
}

// Name implements core.Index.
func (t *Tree) Name() string { return "Zd-Tree" }

// Dims implements core.Index.
func (t *Tree) Dims() int { return t.opts.Dims }

// Size implements core.Index.
func (t *Tree) Size() int {
	if t.root == nil {
		return 0
	}
	return t.root.size
}

// encodeAll computes ⟨code, point⟩ pairs in parallel — the preprocessing
// pass the P-Orth tree avoids.
func (t *Tree) encodeAll(pts []geom.Point) []Entry {
	dims := t.opts.Dims
	ents := make([]Entry, len(pts))
	parallel.For(len(pts), 4096, func(i int) {
		ents[i] = Entry{Code: sfc.Encode(sfc.Morton, pts[i], dims), P: pts[i]}
	})
	return ents
}

func sortEntries(ents []Entry) {
	parallel.Sort(ents, func(a, b Entry) int {
		switch {
		case a.Code < b.Code:
			return -1
		case a.Code > b.Code:
			return 1
		}
		return 0
	})
}

// Build implements core.Index: encode, sort, recursive prefix-split build.
func (t *Tree) Build(pts []geom.Point) {
	ents := t.encodeAll(pts)
	sortEntries(ents)
	t.root = t.build(ents, t.topShift)
}

// BatchInsert implements core.Index.
func (t *Tree) BatchInsert(pts []geom.Point) {
	if len(pts) == 0 {
		return
	}
	ents := t.encodeAll(pts)
	sortEntries(ents)
	t.root = t.insert(t.root, ents, t.topShift)
}

// BatchDelete implements core.Index (multiset semantics).
func (t *Tree) BatchDelete(pts []geom.Point) {
	if len(pts) == 0 || t.root == nil {
		return
	}
	ents := t.encodeAll(pts)
	sortEntries(ents)
	t.root = t.delete(t.root, ents, t.topShift)
}

// seqCutoff matches the other trees' fork grain.
const seqCutoff = 2048

// digit extracts the quadrant index at the given shift. Bit d of the
// result corresponds to dimension d, matching the orth-tree child order.
func (t *Tree) digit(code uint64, shift int) int {
	return int(code >> uint(shift) & uint64(t.nway-1))
}

// splitBounds locates the child segment boundaries of a code-sorted slice:
// bounds[q] is the first index whose digit at shift is >= q.
func (t *Tree) splitBounds(ents []Entry, shift int) []int {
	bounds := make([]int, t.nway+1)
	for q := 1; q < t.nway; q++ {
		target := q
		bounds[q] = parallel.SearchInts(len(ents), func(i int) bool {
			return t.digit(ents[i].Code, shift) >= target
		})
	}
	bounds[t.nway] = len(ents)
	return bounds
}

// build recursively constructs a subtree from code-sorted entries. shift
// is the bit position of this level's quadrant digit; shift < 0 means the
// code space is exhausted (duplicate coordinates) and the entries become
// an oversized leaf, mirroring the P-Orth tree's degenerate-region rule.
func (t *Tree) build(ents []Entry, shift int) *node {
	n := len(ents)
	if n == 0 {
		return nil
	}
	if n <= t.opts.LeafWrap || shift < 0 {
		return t.newLeaf(ents)
	}
	bounds := t.splitBounds(ents, shift)
	kids := make([]*node, t.nway)
	rec := func(q int) {
		lo, hi := bounds[q], bounds[q+1]
		if lo < hi {
			kids[q] = t.build(ents[lo:hi], shift-t.opts.Dims)
		}
	}
	if n >= seqCutoff {
		parallel.ForEach(t.nway, 1, rec)
	} else {
		for q := 0; q < t.nway; q++ {
			rec(q)
		}
	}
	return t.makeInterior(kids)
}

// newLeaf copies code-sorted entries into an owned leaf.
func (t *Tree) newLeaf(ents []Entry) *node {
	own := make([]Entry, len(ents))
	copy(own, ents)
	bbox := geom.EmptyBox(t.opts.Dims)
	for _, e := range own {
		bbox = bbox.Extend(e.P, t.opts.Dims)
	}
	return &node{size: len(own), bbox: bbox, ents: own}
}

func (t *Tree) makeInterior(kids []*node) *node {
	size := 0
	bbox := geom.EmptyBox(t.opts.Dims)
	for _, c := range kids {
		if c != nil {
			size += c.size
			bbox = bbox.Union(c.bbox, t.opts.Dims)
		}
	}
	if size == 0 {
		return nil
	}
	nd := &node{size: size, bbox: bbox, kids: kids}
	if size <= t.opts.LeafWrap {
		return t.flatten(nd)
	}
	return nd
}

// flatten collapses a subtree into one leaf; concatenating children in
// quadrant order preserves code order, so the result stays sorted.
func (t *Tree) flatten(nd *node) *node {
	ents := make([]Entry, 0, nd.size)
	ents = collectEntries(nd, ents)
	return &node{size: len(ents), bbox: nd.bbox, ents: ents}
}

func collectEntries(nd *node, dst []Entry) []Entry {
	if nd == nil {
		return dst
	}
	if nd.isLeaf() {
		return append(dst, nd.ents...)
	}
	for _, c := range nd.kids {
		dst = collectEntries(c, dst)
	}
	return dst
}

// BatchDiff implements core.Index: deletions apply before insertions.
func (t *Tree) BatchDiff(ins, del []geom.Point) {
	t.BatchDelete(del)
	t.BatchInsert(ins)
}
