package zdtree

import (
	"repro/internal/geom"
	"repro/internal/parallel"
)

// insert merges a code-sorted batch into a subtree.
func (t *Tree) insert(nd *node, batch []Entry, shift int) *node {
	if len(batch) == 0 {
		return nd
	}
	if nd == nil {
		return t.build(batch, shift)
	}
	if nd.isLeaf() {
		merged := mergeSorted(nd.ents, batch)
		if len(merged) <= t.opts.LeafWrap || shift < 0 {
			bbox := nd.bbox
			for _, e := range batch {
				bbox = bbox.Extend(e.P, t.opts.Dims)
			}
			return &node{size: len(merged), bbox: bbox, ents: merged}
		}
		return t.build(merged, shift)
	}
	bounds := t.splitBounds(batch, shift)
	rec := func(q int) {
		lo, hi := bounds[q], bounds[q+1]
		if lo < hi {
			nd.kids[q] = t.insert(nd.kids[q], batch[lo:hi], shift-t.opts.Dims)
		}
	}
	if len(batch) >= seqCutoff {
		parallel.ForEach(t.nway, 1, rec)
	} else {
		for q := 0; q < t.nway; q++ {
			rec(q)
		}
	}
	t.refresh(nd)
	return nd
}

// delete removes one occurrence per batch entry.
func (t *Tree) delete(nd *node, batch []Entry, shift int) *node {
	if nd == nil || len(batch) == 0 {
		return nd
	}
	if nd.isLeaf() {
		removeFromLeaf(nd, batch, t.opts.Dims)
		if nd.size == 0 {
			return nil
		}
		return nd
	}
	bounds := t.splitBounds(batch, shift)
	rec := func(q int) {
		lo, hi := bounds[q], bounds[q+1]
		if lo < hi {
			nd.kids[q] = t.delete(nd.kids[q], batch[lo:hi], shift-t.opts.Dims)
		}
	}
	if len(batch) >= seqCutoff {
		parallel.ForEach(t.nway, 1, rec)
	} else {
		for q := 0; q < t.nway; q++ {
			rec(q)
		}
	}
	return t.makeInterior(nd.kids)
}

// refresh recomputes an interior node's size and bbox after inserts.
func (t *Tree) refresh(nd *node) {
	size := 0
	bbox := geom.EmptyBox(t.opts.Dims)
	for _, c := range nd.kids {
		if c != nil {
			size += c.size
			bbox = bbox.Union(c.bbox, t.opts.Dims)
		}
	}
	nd.size = size
	nd.bbox = bbox
}

// mergeSorted merges two code-sorted entry slices into a new slice.
func mergeSorted(a, b []Entry) []Entry {
	out := make([]Entry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].Code <= b[j].Code {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// removeFromLeaf removes one occurrence per batch entry (both slices are
// code-sorted, so a linear merge finds matches). The leaf stays sorted.
func removeFromLeaf(nd *node, batch []Entry, dims int) {
	kept := nd.ents[:0]
	i := 0
	used := make([]bool, len(batch))
	for _, e := range nd.ents {
		for i < len(batch) && batch[i].Code < e.Code {
			i++
		}
		matched := false
		for j := i; j < len(batch) && batch[j].Code == e.Code; j++ {
			if !used[j] && batch[j].P == e.P {
				used[j] = true
				matched = true
				break
			}
		}
		if !matched {
			kept = append(kept, e)
		}
	}
	nd.ents = kept
	nd.size = len(kept)
	bbox := geom.EmptyBox(dims)
	for _, e := range kept {
		bbox = bbox.Extend(e.P, dims)
	}
	nd.bbox = bbox
}
