package zdtree

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

const testSide = int64(1 << 20)

func universe() geom.Box { return geom.UniverseBox(2, testSide) }

func newTest2D() *Tree { return NewDefault(2, universe()) }

func validateOrFail(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := newTest2D()
	if tr.Size() != 0 || len(tr.KNN(geom.Pt2(1, 1), 3, nil)) != 0 || tr.RangeCount(universe()) != 0 {
		t.Fatal("empty tree misbehaves")
	}
	tr.BatchDelete([]geom.Point{geom.Pt2(1, 1)})
	validateOrFail(t, tr)
}

func TestBuildMatchesBruteForce(t *testing.T) {
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		for _, n := range []int{1, 33, 1000, 20000} {
			pts := workload.Generate(dist, n, 2, testSide, 7)
			tr := newTest2D()
			tr.Build(pts)
			validateOrFail(t, tr)
			ref := core.NewBruteForce(2)
			ref.Build(pts)
			queries := workload.GenUniform(30, 2, testSide, 9)
			boxes := workload.RangeQueries(15, 2, testSide, 0.01, 11)
			boxes = append(boxes, universe())
			if err := core.VerifyQueries(tr, ref, queries, []int{1, 3, 10}, boxes); err != nil {
				t.Fatalf("%s n=%d: %v", dist, n, err)
			}
		}
	}
}

func TestBuild3D(t *testing.T) {
	side := workload.DefaultSide3D
	tr := NewDefault(3, geom.UniverseBox(3, side))
	pts := workload.GenVarden(8000, 3, side, 3)
	tr.Build(pts)
	validateOrFail(t, tr)
	ref := core.NewBruteForce(3)
	ref.Build(pts)
	if err := core.VerifyQueries(tr, ref,
		workload.GenUniform(20, 3, side, 5), []int{1, 10},
		workload.RangeQueries(10, 3, side, 0.05, 6)); err != nil {
		t.Fatal(err)
	}
}

func TestUniversePrecisionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: 3D universe exceeding 21-bit Morton range")
		}
	}()
	New(core.DefaultOptions(3, geom.UniverseBox(3, 1<<22)))
}

func TestInsertDeleteMatchesBruteForce(t *testing.T) {
	pts := workload.GenVarden(20000, 2, testSide, 13)
	tr := newTest2D()
	ref := core.NewBruteForce(2)
	tr.Build(pts[:5000])
	ref.Build(pts[:5000])
	for lo := 5000; lo < 20000; lo += 5000 {
		tr.BatchInsert(pts[lo : lo+5000])
		ref.BatchInsert(pts[lo : lo+5000])
		validateOrFail(t, tr)
	}
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 3; round++ {
		cur := ref.Points()
		batch := make([]geom.Point, 3000)
		for i := range batch {
			batch[i] = cur[rng.Intn(len(cur))]
		}
		tr.BatchDelete(batch)
		ref.BatchDelete(batch)
		validateOrFail(t, tr)
		if tr.Size() != ref.Size() {
			t.Fatalf("round %d: size %d want %d", round, tr.Size(), ref.Size())
		}
	}
	queries := workload.GenUniform(30, 2, testSide, 19)
	boxes := workload.RangeQueries(10, 2, testSide, 0.02, 23)
	if err := core.VerifyQueries(tr, ref, queries, []int{1, 10}, boxes); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryIndependence(t *testing.T) {
	all := workload.GenVarden(12000, 2, testSide, 29)
	a := newTest2D()
	a.Build(all[:6000])
	a.BatchInsert(all[6000:])
	b := newTest2D()
	b.Build(all)
	if !StructuralEqual(a, b) {
		t.Fatal("insert-built Zd-tree differs from scratch build")
	}
	a.BatchDelete(all[6000:])
	c := newTest2D()
	c.Build(all[:6000])
	if !StructuralEqual(a, c) {
		t.Fatal("delete-built Zd-tree differs from scratch build")
	}
}

func TestDuplicates(t *testing.T) {
	p := geom.Pt2(4242, 1717)
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = p
	}
	tr := newTest2D()
	tr.Build(pts)
	validateOrFail(t, tr)
	tr.BatchDelete(pts[:100])
	if tr.Size() != 200 {
		t.Fatalf("size %d", tr.Size())
	}
	validateOrFail(t, tr)
	nn := tr.KNN(geom.Pt2(0, 0), 5, nil)
	if len(nn) != 5 || nn[0] != p {
		t.Fatalf("kNN over duplicates: %v", nn)
	}
}

func TestFullDeleteEmptiesTree(t *testing.T) {
	pts := workload.GenUniform(5000, 2, testSide, 31)
	tr := newTest2D()
	tr.Build(pts)
	tr.BatchDelete(pts)
	if tr.Size() != 0 {
		t.Fatalf("size %d after deleting all", tr.Size())
	}
	validateOrFail(t, tr)
}

func TestMortonOrderInvariantAfterUpdates(t *testing.T) {
	// Directed regression: interleave inserts and deletes, then check the
	// global Morton order of a full collection.
	tr := newTest2D()
	pool := workload.GenUniform(10000, 2, testSide, 37)
	tr.Build(pool[:4000])
	tr.BatchInsert(pool[4000:8000])
	tr.BatchDelete(pool[1000:3000])
	tr.BatchInsert(pool[8000:])
	validateOrFail(t, tr)
	ents := collectEntries(tr.root, nil)
	for i := 1; i < len(ents); i++ {
		if ents[i].Code < ents[i-1].Code {
			t.Fatal("global Morton order broken")
		}
	}
	if len(ents) != tr.Size() {
		t.Fatal("size mismatch with collected entries")
	}
}
