package zdtree

import (
	"fmt"

	"repro/internal/geom"
)

// KNN implements core.Index with the same bbox-ordered DFS as the P-Orth
// tree (the Zd-tree is an orth-tree; only construction differs).
func (t *Tree) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	if t.root == nil || k <= 0 {
		return dst
	}
	h := geom.GetKNNHeap(k)
	t.knn(t.root, q, h)
	dst = h.Append(dst)
	geom.PutKNNHeap(h)
	return dst
}

func (t *Tree) knn(nd *node, q geom.Point, h *geom.KNNHeap) {
	dims := t.opts.Dims
	if nd.isLeaf() {
		for _, e := range nd.ents {
			h.Push(e.P, geom.Dist2(e.P, q, dims))
		}
		return
	}
	type cand struct {
		d int64
		c *node
	}
	var arr [8]cand
	m := 0
	for _, c := range nd.kids {
		if c == nil {
			continue
		}
		d := c.bbox.Dist2(q, dims)
		j := m
		for j > 0 && arr[j-1].d > d {
			arr[j] = arr[j-1]
			j--
		}
		arr[j] = cand{d: d, c: c}
		m++
	}
	for i := 0; i < m; i++ {
		if h.Full() && arr[i].d >= h.Bound() {
			return
		}
		t.knn(arr[i].c, q, h)
	}
}

// RangeCount implements core.Index.
func (t *Tree) RangeCount(box geom.Box) int { return t.count(t.root, box) }

func (t *Tree) count(nd *node, box geom.Box) int {
	if nd == nil {
		return 0
	}
	dims := t.opts.Dims
	if !box.Intersects(nd.bbox, dims) {
		return 0
	}
	if box.ContainsBox(nd.bbox, dims) {
		return nd.size
	}
	if nd.isLeaf() {
		n := 0
		for _, e := range nd.ents {
			if box.Contains(e.P, dims) {
				n++
			}
		}
		return n
	}
	n := 0
	for _, c := range nd.kids {
		n += t.count(c, box)
	}
	return n
}

// RangeList implements core.Index.
func (t *Tree) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	return t.list(t.root, box, dst)
}

func (t *Tree) list(nd *node, box geom.Box, dst []geom.Point) []geom.Point {
	if nd == nil {
		return dst
	}
	dims := t.opts.Dims
	if !box.Intersects(nd.bbox, dims) {
		return dst
	}
	if box.ContainsBox(nd.bbox, dims) {
		return appendAll(nd, dst)
	}
	if nd.isLeaf() {
		for _, e := range nd.ents {
			if box.Contains(e.P, dims) {
				dst = append(dst, e.P)
			}
		}
		return dst
	}
	for _, c := range nd.kids {
		dst = t.list(c, box, dst)
	}
	return dst
}

func appendAll(nd *node, dst []geom.Point) []geom.Point {
	if nd == nil {
		return dst
	}
	if nd.isLeaf() {
		for _, e := range nd.ents {
			dst = append(dst, e.P)
		}
		return dst
	}
	for _, c := range nd.kids {
		dst = appendAll(c, dst)
	}
	return dst
}

// Validate checks the Zd-tree invariants: leaf code order, code-prefix
// consistency per quadrant, size/bbox consistency, and the canonical leaf
// wrap (interior iff size > wrap and codes not exhausted).
func (t *Tree) Validate() error {
	_, err := t.validate(t.root, 0, t.topShift)
	return err
}

func (t *Tree) validate(nd *node, prefix uint64, shift int) (int, error) {
	if nd == nil {
		return 0, nil
	}
	dims := t.opts.Dims
	// Every code below this node must agree with prefix on all digits
	// above shift.
	mask := ^uint64(0)
	if shift+dims < 64 {
		mask <<= uint(shift + dims)
	} else {
		mask = 0
	}
	if nd.isLeaf() {
		if len(nd.ents) != nd.size || nd.size == 0 {
			return 0, fmt.Errorf("leaf size %d with %d entries", nd.size, len(nd.ents))
		}
		if nd.size > t.opts.LeafWrap && shift >= 0 {
			return 0, fmt.Errorf("oversized leaf (%d) with codes remaining", nd.size)
		}
		bbox := geom.EmptyBox(dims)
		var prev uint64
		for i, e := range nd.ents {
			if i > 0 && e.Code < prev {
				return 0, fmt.Errorf("leaf entries out of code order")
			}
			prev = e.Code
			if e.Code&mask != prefix&mask {
				return 0, fmt.Errorf("leaf code %x violates prefix %x at shift %d", e.Code, prefix, shift)
			}
			bbox = bbox.Extend(e.P, dims)
		}
		if bbox != nd.bbox {
			return 0, fmt.Errorf("leaf bbox stale")
		}
		return nd.size, nil
	}
	if nd.size <= t.opts.LeafWrap {
		return 0, fmt.Errorf("interior of size %d should be a leaf", nd.size)
	}
	total := 0
	bbox := geom.EmptyBox(dims)
	for q, c := range nd.kids {
		sz, err := t.validate(c, prefix|uint64(q)<<uint(shift), shift-dims)
		if err != nil {
			return 0, err
		}
		total += sz
		if c != nil {
			bbox = bbox.Union(c.bbox, dims)
		}
	}
	if total != nd.size || bbox != nd.bbox {
		return 0, fmt.Errorf("interior size/bbox stale: size %d sum %d", nd.size, total)
	}
	return total, nil
}

// StructuralEqual reports whether two Zd-trees are identical (entry order
// within leaves included — Morton order is canonical).
func StructuralEqual(a, b *Tree) bool {
	return zdEqual(a.root, b.root)
}

func zdEqual(x, y *node) bool {
	if x == nil || y == nil {
		return x == y
	}
	if x.size != y.size || x.bbox != y.bbox || x.isLeaf() != y.isLeaf() {
		return false
	}
	if x.isLeaf() {
		for i := range x.ents {
			if x.ents[i] != y.ents[i] {
				return false
			}
		}
		return true
	}
	for q := range x.kids {
		if !zdEqual(x.kids[q], y.kids[q]) {
			return false
		}
	}
	return true
}
