package orthtree

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// Property: any randomized operation sequence leaves the tree agreeing
// with the brute-force oracle and satisfying every structural invariant,
// across seeds, dimensionalities and coordinate densities (tiny sides
// force heavy duplication).
func TestQuickOpScripts(t *testing.T) {
	f := func(seed int64, dense bool, threeD bool) bool {
		dims := 2
		if threeD {
			dims = 3
		}
		side := int64(1 << 16)
		if dense {
			side = 40 // heavy duplicate pressure
		}
		tr := NewDefault(dims, geom.UniverseBox(dims, side))
		script := core.OpScript{
			Dims: dims, Side: side, Steps: 12, Seed: seed, MaxBatch: 300,
			Validate: tr.Validate,
		}
		if err := script.Run(tr); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: kNN distances are non-decreasing and within-bound, for any
// query point and k.
func TestQuickKNNSortedness(t *testing.T) {
	tr := NewDefault(2, universe())
	tr.Build(workload.GenVarden(5000, 2, testSide, 3))
	f := func(qx, qy uint32, kk uint8) bool {
		q := geom.Pt2(int64(qx)%(testSide+1), int64(qy)%(testSide+1))
		k := int(kk)%64 + 1
		nn := tr.KNN(q, k, nil)
		if len(nn) != min(k, tr.Size()) {
			return false
		}
		prev := int64(-1)
		for _, p := range nn {
			d := geom.Dist2(p, q, 2)
			if d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: RangeCount equals len(RangeList) for arbitrary boxes,
// including inverted (empty) ones.
func TestQuickRangeCountMatchesList(t *testing.T) {
	tr := NewDefault(2, universe())
	tr.Build(workload.GenUniform(8000, 2, testSide, 5))
	f := func(ax, ay, bx, by uint32) bool {
		a := geom.Pt2(int64(ax)%(testSide+1), int64(ay)%(testSide+1))
		b := geom.Pt2(int64(bx)%(testSide+1), int64(by)%(testSide+1))
		box := geom.BoxOf(a, b) // possibly inverted -> empty
		return tr.RangeCount(box) == len(tr.RangeList(box, nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Boundary coordinates: points exactly on the universe corners and edges
// must build, route, and delete correctly.
func TestUniverseBoundaryPoints(t *testing.T) {
	u := universe()
	corners := []geom.Point{
		geom.Pt2(0, 0), geom.Pt2(testSide, 0), geom.Pt2(0, testSide),
		geom.Pt2(testSide, testSide),
		geom.Pt2(testSide/2, testSide/2),
		geom.Pt2(testSide/2+1, testSide/2+1), // just past the first split
	}
	pts := append([]geom.Point{}, corners...)
	pts = append(pts, workload.GenUniform(2000, 2, testSide, 7)...)
	tr := NewDefault(2, u)
	tr.Build(pts)
	validateOrFail(t, tr)
	for _, c := range corners {
		if got := tr.KNN(c, 1, nil); len(got) != 1 || geom.Dist2(got[0], c, 2) != 0 {
			t.Fatalf("corner %v not its own nearest neighbor", c)
		}
	}
	tr.BatchDelete(corners)
	if tr.Size() != 2000 {
		t.Fatalf("size %d after corner delete", tr.Size())
	}
	validateOrFail(t, tr)
}

// RangeList must append to an existing buffer, not clobber it.
func TestRangeListAppendSemantics(t *testing.T) {
	tr := NewDefault(2, universe())
	tr.Build([]geom.Point{geom.Pt2(1, 1)})
	sentinel := geom.Pt2(-7, -7)
	out := tr.RangeList(universe(), []geom.Point{sentinel})
	if len(out) != 2 || out[0] != sentinel {
		t.Fatalf("append semantics broken: %v", out)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
