package orthtree

import (
	"repro/internal/geom"
)

// KNN implements core.Index: depth-first search visiting children in
// increasing order of bounding-box distance, pruning subtrees whose tight
// bbox is farther than the current k-th neighbor (§C: "A single k-NN query
// traverses subtrees in increasing order of their minimum distance").
func (t *Tree) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	if t.root == nil || k <= 0 {
		return dst
	}
	h := geom.GetKNNHeap(k)
	t.knn(t.root, q, h)
	dst = h.Append(dst)
	geom.PutKNNHeap(h)
	return dst
}

func (t *Tree) knn(nd *node, q geom.Point, h *geom.KNNHeap) {
	dims := t.opts.Dims
	if nd.isLeaf() {
		for _, p := range nd.pts {
			h.Push(p, geom.Dist2(p, q, dims))
		}
		return
	}
	// Order the (at most 8) children by bbox distance with an insertion
	// sort; the 1-out-of-2^D selectivity is the orth-tree's query edge
	// over binary trees (§5.1.3).
	type cand struct {
		d int64
		c *node
	}
	var arr [8]cand
	m := 0
	for _, c := range nd.kids {
		if c == nil {
			continue
		}
		d := c.bbox.Dist2(q, dims)
		j := m
		for j > 0 && arr[j-1].d > d {
			arr[j] = arr[j-1]
			j--
		}
		arr[j] = cand{d: d, c: c}
		m++
	}
	for i := 0; i < m; i++ {
		if h.Full() && arr[i].d >= h.Bound() {
			return // children are sorted: the rest are at least as far
		}
		t.knn(arr[i].c, q, h)
	}
}

// RangeCount implements core.Index: subtrees fully inside the query box
// contribute their size without traversal.
func (t *Tree) RangeCount(box geom.Box) int {
	return t.count(t.root, box)
}

func (t *Tree) count(nd *node, box geom.Box) int {
	if nd == nil {
		return 0
	}
	dims := t.opts.Dims
	if !box.Intersects(nd.bbox, dims) {
		return 0
	}
	if box.ContainsBox(nd.bbox, dims) {
		return nd.size
	}
	if nd.isLeaf() {
		n := 0
		for _, p := range nd.pts {
			if box.Contains(p, dims) {
				n++
			}
		}
		return n
	}
	n := 0
	for _, c := range nd.kids {
		n += t.count(c, box)
	}
	return n
}

// RangeList implements core.Index.
func (t *Tree) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	return t.list(t.root, box, dst)
}

func (t *Tree) list(nd *node, box geom.Box, dst []geom.Point) []geom.Point {
	if nd == nil {
		return dst
	}
	dims := t.opts.Dims
	if !box.Intersects(nd.bbox, dims) {
		return dst
	}
	if box.ContainsBox(nd.bbox, dims) {
		return collect(nd, dst)
	}
	if nd.isLeaf() {
		for _, p := range nd.pts {
			if box.Contains(p, dims) {
				dst = append(dst, p)
			}
		}
		return dst
	}
	for _, c := range nd.kids {
		dst = t.list(c, box, dst)
	}
	return dst
}

// Height returns the tree height (leaves have height 1). The paper's
// O(log Δ) bound (§3.3) is exercised by tests and the ablation benches.
func (t *Tree) Height() int {
	return height(t.root)
}

func height(nd *node) int {
	if nd == nil {
		return 0
	}
	if nd.isLeaf() {
		return 1
	}
	h := 0
	for _, c := range nd.kids {
		if ch := height(c); ch > h {
			h = ch
		}
	}
	return h + 1
}

// Stats summarizes the tree for benchmarks and debugging.
type Stats struct {
	Nodes, Leaves, MaxLeaf, Height int
}

// TreeStats walks the tree collecting structure statistics.
func (t *Tree) TreeStats() Stats {
	var s Stats
	s.Height = t.Height()
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		s.Nodes++
		if nd.isLeaf() {
			s.Leaves++
			if len(nd.pts) > s.MaxLeaf {
				s.MaxLeaf = len(nd.pts)
			}
			return
		}
		for _, c := range nd.kids {
			walk(c)
		}
	}
	walk(t.root)
	return s
}
