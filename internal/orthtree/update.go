package orthtree

import (
	"repro/internal/geom"
	"repro/internal/parallel"
)

// Batch updates (Alg. 2) come in two flavors keyed on batch size:
//
//   - Large batches sieve through a λ-level skeleton of the existing tree
//     (the paper's I/O-efficient path: one round of data movement covers
//     λ levels).
//   - Small batches — which dominate the recursion once a large batch has
//     fanned out, and entire workloads at small batch ratios — take an
//     allocation-free single-level partition: the skeleton of depth 1 is
//     just the node's children, so materializing it would be pure
//     overhead.
//
// Both paths produce the same canonical tree (§3's structure is
// determined by the point multiset alone), which the history-independence
// tests verify.

// smallBatch is the cutoff below which updates use the inline
// single-level partition.
const smallBatch = 128

// skeleton is the top-λ-levels view of an existing subtree used by large
// batch updates (Alg. 2 line 5). nodes/regions hold the existing interior
// nodes in preorder; slots are the skeleton's external positions; table is
// the flat dispatch (stride nway): entry >= 1 names the next internal
// node, entry < 0 encodes ^slotIndex.
type skeleton struct {
	nodes   []skelNode
	regions []geom.Box
	slots   []slot
	table   []int32
	nway    int
}

type skelNode struct {
	tn         *node
	parentSkel int32 // index into nodes; -1 for the skeleton root
	childIdx   int32 // position of this node in its parent's kids
}

type slot struct {
	parent   *node // interior node owning this child pointer
	childIdx int
	child    *node // may be nil (empty orthant) or a subtree root
	region   geom.Box
}

// retrieve builds the skeleton of interior node nd down to depth lam,
// preallocating for the worst-case fan-out so enumeration never regrows.
func (t *Tree) retrieve(nd *node, region geom.Box, lam int) *skeleton {
	maxSlots := 1
	for i := 0; i < lam; i++ {
		maxSlots *= t.nway
	}
	maxNodes := (maxSlots - 1) / (t.nway - 1)
	sk := &skeleton{
		nodes:   make([]skelNode, 0, maxNodes),
		regions: make([]geom.Box, 0, maxNodes),
		slots:   make([]slot, 0, maxSlots),
		table:   make([]int32, 0, maxNodes*t.nway),
		nway:    t.nway,
	}
	sk.enumerate(t, nd, region, 0, lam, -1, 0)
	return sk
}

func (sk *skeleton) enumerate(t *Tree, nd *node, region geom.Box, level, lam int, parentSkel, childIdx int32) int32 {
	idx := int32(len(sk.nodes))
	sk.nodes = append(sk.nodes, skelNode{tn: nd, parentSkel: parentSkel, childIdx: childIdx})
	sk.regions = append(sk.regions, region)
	row := len(sk.table)
	sk.table = append(sk.table, make([]int32, sk.nway)...)
	dims := t.opts.Dims
	for q := 0; q < t.nway; q++ {
		child := nd.kids[q]
		cregion := region.Child(q, dims)
		if level+1 == lam || child == nil || child.isLeaf() {
			sk.table[row+q] = int32(^len(sk.slots))
			sk.slots = append(sk.slots, slot{parent: nd, childIdx: q, child: child, region: cregion})
		} else {
			sk.table[row+q] = sk.enumerate(t, child, cregion, level+1, lam, idx, int32(q))
		}
	}
	return idx
}

// route walks a point to its slot. Regions are stored per skeleton node,
// so each level costs one Quadrant evaluation and a table lookup.
func (sk *skeleton) route(dims int, p geom.Point) int {
	i := int32(0)
	for {
		q := sk.regions[i].Quadrant(p, dims)
		next := sk.table[int(i)*sk.nway+q]
		if next < 0 {
			return int(^next)
		}
		i = next
	}
}

// insert implements BatchInsertOrth (Alg. 2). pts/buf are scratch slices
// holding the batch; the returned node replaces nd.
func (t *Tree) insert(nd *node, pts, buf []geom.Point, region geom.Box) *node {
	if len(pts) == 0 {
		return nd
	}
	if nd == nil {
		return t.build(pts, buf, region)
	}
	dims := t.opts.Dims
	if nd.isLeaf() {
		// Alg. 2 lines 3-4: a leaf either absorbs the batch or is rebuilt
		// together with it.
		if nd.size+len(pts) <= t.opts.LeafWrap || !region.Splittable(dims) {
			for _, p := range pts {
				nd.bbox = nd.bbox.Extend(p, dims)
			}
			nd.pts = append(nd.pts, pts...)
			nd.size = len(nd.pts)
			return nd
		}
		combined := make([]geom.Point, 0, nd.size+len(pts))
		combined = append(combined, nd.pts...)
		combined = append(combined, pts...)
		cbuf := make([]geom.Point, len(combined))
		return t.build(combined, cbuf, region)
	}
	if len(pts) < smallBatch {
		return t.insertSmall(nd, pts, buf, region)
	}

	// Lines 5-7: retrieve the skeleton and sieve the batch through it.
	sk := t.skeletonFor(nd, region, len(pts))
	offsets := parallel.Sieve(pts, buf, len(sk.slots), func(p geom.Point) int {
		return sk.route(dims, p)
	})

	// Lines 8-10: recurse into every external slot in parallel. Distinct
	// slots write distinct child pointers, so the writes do not race.
	rec := func(i int) {
		lo, hi := offsets[i], offsets[i+1]
		if lo == hi {
			return
		}
		s := &sk.slots[i]
		s.parent.kids[s.childIdx] = t.insert(s.child, buf[lo:hi], pts[lo:hi], s.region)
	}
	if len(pts) >= seqCutoff {
		parallel.ForEach(len(sk.slots), 1, rec)
	} else {
		for i := range sk.slots {
			rec(i)
		}
	}

	// Line 11: refresh sizes and bounding boxes of the skeleton's
	// interior nodes, children before parents (reverse preorder).
	for j := len(sk.nodes) - 1; j >= 0; j-- {
		recompute(sk.nodes[j].tn, dims)
	}
	return nd
}

// insertSmall is the depth-1 fast path: partition the batch across the
// node's children with stack-allocated counters and recurse.
func (t *Tree) insertSmall(nd *node, pts, buf []geom.Point, region geom.Box) *node {
	dims := t.opts.Dims
	var qb [smallBatch]uint8
	var counts [8]int
	for i, p := range pts {
		q := region.Quadrant(p, dims)
		qb[i] = uint8(q)
		counts[q]++
	}
	var offs [9]int
	for q := 0; q < t.nway; q++ {
		offs[q+1] = offs[q] + counts[q]
	}
	pos := offs
	for i, p := range pts {
		q := qb[i]
		buf[pos[q]] = p
		pos[q]++
	}
	for q := 0; q < t.nway; q++ {
		lo, hi := offs[q], offs[q+1]
		if lo < hi {
			nd.kids[q] = t.insert(nd.kids[q], buf[lo:hi], pts[lo:hi], region.Child(q, dims))
		}
	}
	recompute(nd, dims)
	return nd
}

// delete is the symmetric batch deletion (§3.2): route the batch through
// the skeleton, remove matches in leaves, then collapse undersized
// subtrees into leaves on the way back up.
func (t *Tree) delete(nd *node, pts, buf []geom.Point, region geom.Box) *node {
	if nd == nil || len(pts) == 0 {
		return nd
	}
	dims := t.opts.Dims
	if nd.isLeaf() {
		removeFromLeaf(nd, pts, dims)
		if nd.size == 0 {
			return nil
		}
		return nd
	}
	if len(pts) < smallBatch {
		return t.deleteSmall(nd, pts, buf, region)
	}
	sk := t.skeletonFor(nd, region, len(pts))
	offsets := parallel.Sieve(pts, buf, len(sk.slots), func(p geom.Point) int {
		return sk.route(dims, p)
	})
	rec := func(i int) {
		lo, hi := offsets[i], offsets[i+1]
		if lo == hi {
			return
		}
		s := &sk.slots[i]
		s.parent.kids[s.childIdx] = t.delete(s.child, buf[lo:hi], pts[lo:hi], s.region)
	}
	if len(pts) >= seqCutoff {
		parallel.ForEach(len(sk.slots), 1, rec)
	} else {
		for i := range sk.slots {
			rec(i)
		}
	}

	// Collapse pass: recompute each skeleton node bottom-up; nodes that
	// fell to zero become nil, nodes at or below the leaf wrap flatten
	// into leaves (the "additional step" of §3.2). Replacements propagate
	// into the parent's child slot; a replaced skeleton root is returned.
	root := nd
	for j := len(sk.nodes) - 1; j >= 0; j-- {
		sn := &sk.nodes[j]
		recompute(sn.tn, dims)
		var repl *node
		switch {
		case sn.tn.size == 0:
			repl = nil
		case sn.tn.size <= t.opts.LeafWrap:
			repl = t.flatten(sn.tn)
		default:
			continue
		}
		if sn.parentSkel >= 0 {
			sk.nodes[sn.parentSkel].tn.kids[sn.childIdx] = repl
		} else {
			root = repl
		}
	}
	return root
}

// deleteSmall mirrors insertSmall with the §3.2 collapse step.
func (t *Tree) deleteSmall(nd *node, pts, buf []geom.Point, region geom.Box) *node {
	dims := t.opts.Dims
	var qb [smallBatch]uint8
	var counts [8]int
	for i, p := range pts {
		q := region.Quadrant(p, dims)
		qb[i] = uint8(q)
		counts[q]++
	}
	var offs [9]int
	for q := 0; q < t.nway; q++ {
		offs[q+1] = offs[q] + counts[q]
	}
	pos := offs
	for i, p := range pts {
		q := qb[i]
		buf[pos[q]] = p
		pos[q]++
	}
	for q := 0; q < t.nway; q++ {
		lo, hi := offs[q], offs[q+1]
		if lo < hi {
			nd.kids[q] = t.delete(nd.kids[q], buf[lo:hi], pts[lo:hi], region.Child(q, dims))
		}
	}
	recompute(nd, dims)
	switch {
	case nd.size == 0:
		return nil
	case nd.size <= t.opts.LeafWrap:
		return t.flatten(nd)
	}
	return nd
}

// skeletonFor retrieves the update skeleton with a depth adapted to the
// batch size (same canonicalization argument as effLambda: depth choice
// affects only the fan-out of one sieve round, never the final structure).
func (t *Tree) skeletonFor(nd *node, region geom.Box, batch int) *skeleton {
	lam := t.opts.SkeletonLevels
	for lam > 1 && 1<<(lam*t.opts.Dims) > batch {
		lam--
	}
	return t.retrieve(nd, region, lam)
}

// recompute refreshes an interior node's size and bbox from its children.
func recompute(nd *node, dims int) {
	size := 0
	bbox := geom.EmptyBox(dims)
	for _, c := range nd.kids {
		if c != nil {
			size += c.size
			bbox = bbox.Union(c.bbox, dims)
		}
	}
	nd.size = size
	nd.bbox = bbox
}

// removeFromLeaf removes one occurrence per requested point (multiset
// semantics) and refreshes the leaf's bbox.
func removeFromLeaf(nd *node, pts []geom.Point, dims int) {
	if len(pts) > 8 && len(nd.pts) > 8 {
		want := make(map[geom.Point]int, len(pts))
		for _, p := range pts {
			want[p]++
		}
		out := nd.pts[:0]
		for _, p := range nd.pts {
			if c := want[p]; c > 0 {
				want[p] = c - 1
				continue
			}
			out = append(out, p)
		}
		nd.pts = out
	} else {
		for _, p := range pts {
			for i, q := range nd.pts {
				if q == p {
					nd.pts[i] = nd.pts[len(nd.pts)-1]
					nd.pts = nd.pts[:len(nd.pts)-1]
					break
				}
			}
		}
	}
	nd.size = len(nd.pts)
	nd.bbox = geom.BoundingBox(nd.pts, dims)
}
