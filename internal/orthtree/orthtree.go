// Package orthtree implements the P-Orth tree, the parallel orth-tree
// (quadtree in 2D, octree in 3D) contributed by the paper (§3).
//
// The tree partitions space at spatial medians into 2^D children per node.
// Unlike every prior parallel orth-tree, construction and batch updates use
// no space-filling curves: λ levels of the tree are built per round by
// sieving the points into the 2^(λD) buckets of an implicit tree skeleton
// (Alg. 1), which is conceptually an integer sort of Morton prefixes that
// never computes, stores or compares a code. Batch insertion (Alg. 2)
// sieves the update batch through the skeleton of the *existing* tree, and
// batch deletion is symmetric with subtree collapse.
//
// Structural invariant (canonical form): a node is interior iff its subtree
// holds more than LeafWrap points AND its region can still be split;
// otherwise it is a leaf. Degenerate regions (heavy duplicates) become
// oversized leaves, which bounds the height by O(log Δ) for aspect ratio Δ
// (§3.3). Because the invariant depends only on (universe, point multiset),
// the tree is history-independent modulo the order of points inside leaves
// — the property behind the paper's "quality does not degrade under
// updates" findings (§5.1.3).
package orthtree

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/parallel"
)

// Tree is a P-Orth tree. Not safe for concurrent mutation; queries are
// read-only and may run concurrently with each other.
type Tree struct {
	opts core.Options
	nway int // 2^dims children per interior node
	root *node
}

var _ core.Index = (*Tree)(nil)

// node is either a leaf (kids == nil, points in pts) or an interior node
// (kids has length 2^dims; empty children are nil). bbox is the tight
// bounding box of the subtree's points — queries prune on it, while the
// *region* (the orthant assigned by the split hierarchy) is recomputed on
// the way down during structural operations and never stored.
type node struct {
	size int
	bbox geom.Box
	kids []*node
	pts  []geom.Point
}

func (nd *node) isLeaf() bool { return nd.kids == nil }

// New returns an empty P-Orth tree over the given options. The universe
// box fixes the split hierarchy; all points ever inserted must lie inside
// it.
func New(opts core.Options) *Tree {
	opts.Validate()
	if opts.Universe.IsEmpty() {
		panic("orthtree: Universe box required")
	}
	return &Tree{opts: opts, nway: 1 << opts.Dims}
}

// NewDefault returns a P-Orth tree with the paper's parameters for the
// given universe.
func NewDefault(dims int, universe geom.Box) *Tree {
	return New(core.DefaultOptions(dims, universe))
}

// Name implements core.Index.
func (t *Tree) Name() string { return "P-Orth" }

// Dims implements core.Index.
func (t *Tree) Dims() int { return t.opts.Dims }

// Size implements core.Index.
func (t *Tree) Size() int {
	if t.root == nil {
		return 0
	}
	return t.root.size
}

// Options returns the tree's configuration.
func (t *Tree) Options() core.Options { return t.opts }

// Build implements core.Index (Alg. 1). The input slice is not modified.
func (t *Tree) Build(pts []geom.Point) {
	t.checkInside(pts)
	work := make([]geom.Point, len(pts))
	copy(work, pts)
	buf := make([]geom.Point, len(pts))
	t.root = t.build(work, buf, t.opts.Universe)
}

// BatchInsert implements core.Index (Alg. 2). The input slice is not
// modified.
func (t *Tree) BatchInsert(pts []geom.Point) {
	if len(pts) == 0 {
		return
	}
	t.checkInside(pts)
	work := make([]geom.Point, len(pts))
	copy(work, pts)
	buf := make([]geom.Point, len(pts))
	t.root = t.insert(t.root, work, buf, t.opts.Universe)
}

// BatchDelete implements core.Index (the symmetric deletion of §3.2):
// each requested point removes one matching occurrence.
func (t *Tree) BatchDelete(pts []geom.Point) {
	if len(pts) == 0 || t.root == nil {
		return
	}
	work := make([]geom.Point, len(pts))
	copy(work, pts)
	buf := make([]geom.Point, len(pts))
	t.root = t.delete(t.root, work, buf, t.opts.Universe)
}

// checkInside validates batch points against the universe. Points outside
// the universe would silently corrupt the split hierarchy, so this is a
// hard error.
func (t *Tree) checkInside(pts []geom.Point) {
	u := t.opts.Universe
	bad := parallel.Reduce(len(pts), 4096, false,
		func(i int) bool { return !u.Contains(pts[i], t.opts.Dims) },
		func(a, b bool) bool { return a || b })
	if bad {
		panic("orthtree: point outside universe box")
	}
}

// seqCutoff is the subtree size below which recursion stops forking.
const seqCutoff = 2048

// BatchDiff implements core.Index: deletions apply before insertions, so
// a point that moves within one diff (same coordinates in both batches)
// nets out correctly. History independence makes the two-pass form
// canonical — the result is identical to any fused application.
func (t *Tree) BatchDiff(ins, del []geom.Point) {
	t.BatchDelete(del)
	t.BatchInsert(ins)
}
