package orthtree

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

const testSide = int64(1 << 20)

func universe() geom.Box { return geom.UniverseBox(2, testSide) }

func newTest2D() *Tree { return NewDefault(2, universe()) }

func validateOrFail(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := newTest2D()
	if tr.Size() != 0 {
		t.Fatal("empty size")
	}
	if got := tr.KNN(geom.Pt2(1, 1), 5, nil); len(got) != 0 {
		t.Fatal("KNN on empty tree")
	}
	if tr.RangeCount(universe()) != 0 {
		t.Fatal("RangeCount on empty")
	}
	if got := tr.RangeList(universe(), nil); len(got) != 0 {
		t.Fatal("RangeList on empty")
	}
	tr.BatchDelete([]geom.Point{geom.Pt2(1, 1)}) // no-op, no panic
	validateOrFail(t, tr)
}

func TestBuildSmall(t *testing.T) {
	tr := newTest2D()
	pts := []geom.Point{geom.Pt2(1, 2), geom.Pt2(3, 4), geom.Pt2(5, 6)}
	tr.Build(pts)
	if tr.Size() != 3 {
		t.Fatalf("size %d", tr.Size())
	}
	validateOrFail(t, tr)
	nn := tr.KNN(geom.Pt2(0, 0), 1, nil)
	if len(nn) != 1 || nn[0] != geom.Pt2(1, 2) {
		t.Fatalf("KNN = %v", nn)
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	pts := workload.GenUniform(5000, 2, testSide, 1)
	snapshot := append([]geom.Point(nil), pts...)
	tr := newTest2D()
	tr.Build(pts)
	for i := range pts {
		if pts[i] != snapshot[i] {
			t.Fatal("Build reordered the caller's slice")
		}
	}
}

func TestBuildMatchesBruteForce(t *testing.T) {
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		for _, n := range []int{0, 1, 31, 32, 33, 1000, 20000} {
			pts := workload.Generate(dist, n, 2, testSide, 7)
			tr := newTest2D()
			tr.Build(pts)
			validateOrFail(t, tr)
			ref := core.NewBruteForce(2)
			ref.Build(pts)
			queries := workload.GenUniform(30, 2, testSide, 9)
			boxes := workload.RangeQueries(15, 2, testSide, 0.01, 11)
			boxes = append(boxes, universe(), geom.BoxOf(geom.Pt2(5, 5), geom.Pt2(5, 5)))
			if err := core.VerifyQueries(tr, ref, queries, []int{1, 3, 10}, boxes); err != nil {
				t.Fatalf("%s n=%d: %v", dist, n, err)
			}
		}
	}
}

func TestBuild3D(t *testing.T) {
	u := geom.UniverseBox(3, testSide)
	tr := NewDefault(3, u)
	pts := workload.GenVarden(8000, 3, testSide, 3)
	tr.Build(pts)
	validateOrFail(t, tr)
	ref := core.NewBruteForce(3)
	ref.Build(pts)
	queries := workload.GenUniform(20, 3, testSide, 5)
	boxes := workload.RangeQueries(10, 3, testSide, 0.05, 6)
	if err := core.VerifyQueries(tr, ref, queries, []int{1, 10}, boxes); err != nil {
		t.Fatal(err)
	}
}

func TestInsertMatchesBruteForce(t *testing.T) {
	pts := workload.GenVarden(20000, 2, testSide, 13)
	tr := newTest2D()
	ref := core.NewBruteForce(2)
	tr.Build(pts[:5000])
	ref.Build(pts[:5000])
	for lo := 5000; lo < 20000; lo += 3000 {
		hi := lo + 3000
		tr.BatchInsert(pts[lo:hi])
		ref.BatchInsert(pts[lo:hi])
		validateOrFail(t, tr)
	}
	queries := workload.GenUniform(30, 2, testSide, 17)
	boxes := workload.RangeQueries(10, 2, testSide, 0.02, 19)
	if err := core.VerifyQueries(tr, ref, queries, []int{1, 10}, boxes); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMatchesBruteForce(t *testing.T) {
	pts := workload.GenUniform(20000, 2, testSide, 23)
	tr := newTest2D()
	ref := core.NewBruteForce(2)
	tr.Build(pts)
	ref.Build(pts)
	rng := rand.New(rand.NewSource(29))
	perm := rng.Perm(len(pts))
	for round := 0; round < 4; round++ {
		batch := make([]geom.Point, 0, 4000)
		for _, i := range perm[round*4000 : (round+1)*4000] {
			batch = append(batch, pts[i])
		}
		tr.BatchDelete(batch)
		ref.BatchDelete(batch)
		validateOrFail(t, tr)
		if tr.Size() != ref.Size() {
			t.Fatalf("round %d: size %d, want %d", round, tr.Size(), ref.Size())
		}
	}
	queries := workload.GenUniform(30, 2, testSide, 31)
	boxes := workload.RangeQueries(10, 2, testSide, 0.02, 37)
	if err := core.VerifyQueries(tr, ref, queries, []int{1, 10}, boxes); err != nil {
		t.Fatal(err)
	}
	// Delete everything.
	tr.BatchDelete(ref.Points())
	if tr.Size() != 0 {
		t.Fatalf("size after full delete: %d", tr.Size())
	}
	validateOrFail(t, tr)
}

func TestHistoryIndependenceInsert(t *testing.T) {
	// build(P); insert(Q) must equal build(P ∪ Q) structurally — the
	// property the paper credits for stable query performance under
	// updates (§5.1.3).
	all := workload.GenVarden(12000, 2, testSide, 41)
	for _, cut := range []int{0, 1, 6000, 11999} {
		a := newTest2D()
		a.Build(all[:cut])
		a.BatchInsert(all[cut:])
		b := newTest2D()
		b.Build(all)
		if !StructuralEqual(a, b) {
			t.Fatalf("cut=%d: incremental tree differs from scratch build", cut)
		}
	}
	// Many small batches.
	c := newTest2D()
	for lo := 0; lo < len(all); lo += 500 {
		hi := lo + 500
		if hi > len(all) {
			hi = len(all)
		}
		c.BatchInsert(all[lo:hi])
		validateOrFail(t, c)
	}
	b := newTest2D()
	b.Build(all)
	if !StructuralEqual(c, b) {
		t.Fatal("500-point batches diverge from scratch build")
	}
}

func TestHistoryIndependenceDelete(t *testing.T) {
	all := workload.GenUniform(10000, 2, testSide, 43)
	tr := newTest2D()
	tr.Build(all)
	tr.BatchDelete(all[7000:])
	want := newTest2D()
	want.Build(all[:7000])
	if !StructuralEqual(tr, want) {
		t.Fatal("delete-built tree differs from scratch build")
	}
}

func TestDuplicatePoints(t *testing.T) {
	// A degenerate region (all duplicates) must become one oversized
	// leaf, not an infinite recursion.
	p := geom.Pt2(77, 88)
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = p
	}
	tr := newTest2D()
	tr.Build(pts)
	validateOrFail(t, tr)
	if tr.Size() != 500 {
		t.Fatalf("size %d", tr.Size())
	}
	if got := tr.RangeCount(geom.BoxOf(p, p)); got != 500 {
		t.Fatalf("RangeCount at duplicate = %d", got)
	}
	// Multiset delete removes exactly the requested count.
	tr.BatchDelete(pts[:123])
	if tr.Size() != 377 {
		t.Fatalf("size after partial delete %d", tr.Size())
	}
	validateOrFail(t, tr)
	// kNN on duplicates returns k copies.
	nn := tr.KNN(p, 10, nil)
	if len(nn) != 10 {
		t.Fatalf("kNN over duplicates returned %d", len(nn))
	}
	for _, q := range nn {
		if q != p {
			t.Fatal("kNN returned wrong duplicate")
		}
	}
}

func TestMixedDuplicatesAndSpread(t *testing.T) {
	pts := workload.GenUniform(5000, 2, testSide, 47)
	dup := geom.Pt2(1000, 1000)
	for i := 0; i < 200; i++ {
		pts = append(pts, dup)
	}
	tr := newTest2D()
	tr.Build(pts)
	validateOrFail(t, tr)
	ref := core.NewBruteForce(2)
	ref.Build(pts)
	if err := core.VerifyQueries(tr, ref,
		[]geom.Point{dup, geom.Pt2(0, 0)}, []int{1, 50, 250},
		[]geom.Box{geom.BoxOf(dup, dup)}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteNonexistent(t *testing.T) {
	pts := workload.GenUniform(1000, 2, testSide, 53)
	tr := newTest2D()
	tr.Build(pts)
	tr.BatchDelete(workload.GenUniform(500, 2, testSide, 59)) // almost surely disjoint
	if tr.Size() < 990 {
		t.Fatalf("deleting nonexistent points removed too much: %d", tr.Size())
	}
	validateOrFail(t, tr)
}

func TestInsertIntoLeafRegion(t *testing.T) {
	// Insert a batch that all lands in one tiny region, forcing deep
	// subdivision under an existing shallow leaf.
	tr := newTest2D()
	tr.Build(workload.GenUniform(100, 2, testSide, 61))
	cluster := make([]geom.Point, 2000)
	rng := rand.New(rand.NewSource(67))
	for i := range cluster {
		cluster[i] = geom.Pt2(500+rng.Int63n(32), 500+rng.Int63n(32))
	}
	tr.BatchInsert(cluster)
	validateOrFail(t, tr)
	if tr.Size() != 2100 {
		t.Fatalf("size %d", tr.Size())
	}
	got := tr.RangeCount(geom.BoxOf(geom.Pt2(500, 500), geom.Pt2(531, 531)))
	if got < 2000 {
		t.Fatalf("cluster count %d", got)
	}
}

func TestUniversePanics(t *testing.T) {
	tr := newTest2D()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-universe point")
		}
	}()
	tr.Build([]geom.Point{geom.Pt2(-1, 5)})
}

func TestKNNMoreThanSize(t *testing.T) {
	tr := newTest2D()
	tr.Build(workload.GenUniform(5, 2, testSide, 71))
	nn := tr.KNN(geom.Pt2(0, 0), 50, nil)
	if len(nn) != 5 {
		t.Fatalf("kNN k>n returned %d", len(nn))
	}
}

func TestHeightLogarithmicOnUniform(t *testing.T) {
	tr := newTest2D()
	tr.Build(workload.GenUniform(100000, 2, testSide, 73))
	// Uniform data in a 2^20 universe: height is O(log4 n) + leaf; far
	// below the 20-level degenerate bound.
	if h := tr.Height(); h > 14 {
		t.Fatalf("height %d too large for uniform data", h)
	}
	st := tr.TreeStats()
	if st.MaxLeaf > tr.opts.LeafWrap {
		t.Fatalf("leaf of %d exceeds wrap", st.MaxLeaf)
	}
}

func TestStatsAndName(t *testing.T) {
	tr := newTest2D()
	if tr.Name() != "P-Orth" || tr.Dims() != 2 {
		t.Fatal("identity")
	}
	tr.Build(workload.GenUniform(1000, 2, testSide, 79))
	st := tr.TreeStats()
	if st.Leaves == 0 || st.Nodes < st.Leaves || st.Height < 2 {
		t.Fatalf("implausible stats %+v", st)
	}
}

func TestRandomizedOperationSequence(t *testing.T) {
	// Fuzz-style: random interleavings of build/insert/delete, validated
	// against brute force and the structural invariants at every step.
	rng := rand.New(rand.NewSource(83))
	tr := newTest2D()
	ref := core.NewBruteForce(2)
	pool := workload.GenVarden(30000, 2, testSide, 89)
	live := 0
	for step := 0; step < 30; step++ {
		switch rng.Intn(3) {
		case 0: // insert
			n := rng.Intn(2000)
			batch := pool[live : live+n]
			live += n
			tr.BatchInsert(batch)
			ref.BatchInsert(batch)
		case 1: // delete a random sample of live points
			cur := ref.Points()
			if len(cur) == 0 {
				continue
			}
			n := rng.Intn(len(cur)/2 + 1)
			batch := make([]geom.Point, n)
			for i := range batch {
				batch[i] = cur[rng.Intn(len(cur))] // may repeat: multiset delete
			}
			tr.BatchDelete(batch)
			ref.BatchDelete(batch)
		case 2: // point queries only
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if tr.Size() != ref.Size() {
			t.Fatalf("step %d: size %d, want %d", step, tr.Size(), ref.Size())
		}
	}
	queries := workload.GenUniform(20, 2, testSide, 97)
	boxes := workload.RangeQueries(10, 2, testSide, 0.01, 101)
	if err := core.VerifyQueries(tr, ref, queries, []int{1, 10}, boxes); err != nil {
		t.Fatal(err)
	}
}
