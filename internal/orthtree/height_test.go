package orthtree

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// The P-Orth tree's height is O(log Δ) for aspect ratio Δ (Thm. 3.1): the
// split hierarchy halves the region side each level, so depth never
// exceeds log2(side/minPairDistance) + O(1) regardless of how many points
// pile up. Exercise the bound with clusters at controlled separations.
func TestHeightBoundAspectRatio(t *testing.T) {
	side := int64(1 << 20)
	u := geom.UniverseBox(2, side)
	for _, minSep := range []int64{1 << 4, 1 << 10, 1 << 16} {
		// Points on a lattice with spacing minSep: Δ = side/minSep (up to
		// the diagonal constant), so height ≤ log2(Δ) + O(1).
		var pts []geom.Point
		for x := int64(0); x <= side; x += minSep {
			for y := int64(0); y <= side; y += minSep {
				pts = append(pts, geom.Pt2(x, y))
				if len(pts) >= 60000 {
					break
				}
			}
			if len(pts) >= 60000 {
				break
			}
		}
		tr := NewDefault(2, u)
		tr.Build(pts)
		delta := float64(side) / float64(minSep)
		bound := int(math.Log2(delta)) + 3
		if h := tr.Height(); h > bound {
			t.Fatalf("minSep=%d: height %d exceeds log2(Δ)+3 = %d", minSep, h, bound)
		}
		validateOrFail(t, tr)
	}
}

// Duplicate floods cannot deepen the tree beyond the degenerate-leaf
// cutoff: a point repeated a million times is one oversized leaf at the
// bottom of a chain bounded by the coordinate bit width.
func TestHeightBoundDuplicateFlood(t *testing.T) {
	side := int64(1 << 20)
	tr := NewDefault(2, geom.UniverseBox(2, side))
	p := geom.Pt2(777777, 333333)
	pts := make([]geom.Point, 100000)
	for i := range pts {
		pts[i] = p
	}
	tr.Build(pts)
	if h := tr.Height(); h > 22 { // log2(2^20) + wiggle
		t.Fatalf("duplicate flood height %d", h)
	}
	validateOrFail(t, tr)
}
