package orthtree

import (
	"repro/internal/geom"
	"repro/internal/parallel"
)

// build implements BuildOrth (Alg. 1): construct a subtree over pts, whose
// assigned region is region. pts and buf are same-length scratch slices
// that the sieve ping-pongs between; leaves copy their points out, so both
// scratch slices are dead once build returns.
func (t *Tree) build(pts, buf []geom.Point, region geom.Box) *node {
	n := len(pts)
	if n == 0 {
		return nil
	}
	dims := t.opts.Dims
	// Alg. 1 line 2, extended with the degenerate-region rule that bounds
	// the height by O(log Δ): an unsplittable region (all duplicates)
	// becomes an oversized leaf.
	if n <= t.opts.LeafWrap || !region.Splittable(dims) {
		return t.newLeaf(pts)
	}

	// Lines 4-5: "build" the λ-level skeleton. The skeleton is implicit —
	// a bucket is identified by the λ·D quadrant bits of the walk from
	// region, and bucket sub-regions are enumerated recursively.
	lam := t.effLambda(n)
	nb := 1 << (lam * dims)
	regions := make([]geom.Box, nb)
	fillRegions(regions, region, lam, dims)

	// Line 6: sieve the points into the buckets. This one pass of data
	// movement is the paper's whole trick: it replaces the per-level
	// distribution of naive orth-tree construction (and the code
	// computation + sort of SFC-based construction).
	offsets := parallel.Sieve(pts, buf, nb, func(p geom.Point) int {
		b := 0
		box := region
		for l := 0; l < lam; l++ {
			q := box.Quadrant(p, dims)
			box = box.Child(q, dims)
			b = b<<dims | q
		}
		return b
	})

	// Lines 7-9: recurse on every non-empty bucket in parallel.
	subs := make([]*node, nb)
	rec := func(i int) {
		lo, hi := offsets[i], offsets[i+1]
		if lo < hi {
			subs[i] = t.build(buf[lo:hi], pts[lo:hi], regions[i])
		}
	}
	if n >= seqCutoff {
		parallel.ForEach(nb, 1, rec)
	} else {
		for i := 0; i < nb; i++ {
			rec(i)
		}
	}

	// Line 10: materialize the skeleton's interior nodes bottom-up,
	// computing bounding boxes and merging undersized subtrees into
	// leaves (canonical form).
	return t.assemble(subs, 0, 0, lam, region)
}

// effLambda shrinks the skeleton height for small inputs so the bucket
// count never dwarfs the point count. The final structure is unchanged
// (assemble canonicalizes); only the sieve fan-out varies.
func (t *Tree) effLambda(n int) int {
	lam := t.opts.SkeletonLevels
	for lam > 1 && 1<<(lam*t.opts.Dims) > n {
		lam--
	}
	return lam
}

// fillRegions enumerates the sub-regions of all 2^(λD) skeleton buckets in
// bucket-index order (level-major quadrant bits).
func fillRegions(out []geom.Box, region geom.Box, lam, dims int) {
	if lam == 0 {
		out[0] = region
		return
	}
	step := len(out) >> dims
	for q := 0; q < 1<<dims; q++ {
		fillRegions(out[q*step:(q+1)*step], region.Child(q, dims), lam-1, dims)
	}
}

// assemble turns the per-bucket subtrees back into λ levels of interior
// nodes. prefix identifies the skeleton node at the given level; buckets
// below it occupy subs[prefix<<((lam-level)·D) : ...]. Skeleton nodes whose
// subtree is small (or whose region is degenerate) are flattened into
// leaves, which keeps the structure canonical and history-independent.
func (t *Tree) assemble(subs []*node, level, prefix, lam int, region geom.Box) *node {
	if level == lam {
		return subs[prefix]
	}
	dims := t.opts.Dims
	kids := make([]*node, t.nway)
	size := 0
	bbox := geom.EmptyBox(dims)
	nonNil := 0
	for q := 0; q < t.nway; q++ {
		c := t.assemble(subs, level+1, prefix<<dims|q, lam, region.Child(q, dims))
		kids[q] = c
		if c != nil {
			size += c.size
			bbox = bbox.Union(c.bbox, dims)
			nonNil++
		}
	}
	if size == 0 {
		return nil
	}
	nd := &node{size: size, bbox: bbox, kids: kids}
	if size <= t.opts.LeafWrap || !region.Splittable(dims) {
		return t.flatten(nd)
	}
	return nd
}

// newLeaf copies pts into an owned leaf node.
func (t *Tree) newLeaf(pts []geom.Point) *node {
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	return &node{
		size: len(own),
		bbox: geom.BoundingBox(own, t.opts.Dims),
		pts:  own,
	}
}

// flatten collapses a subtree into a single leaf holding all its points.
func (t *Tree) flatten(nd *node) *node {
	pts := make([]geom.Point, 0, nd.size)
	pts = collect(nd, pts)
	return &node{size: len(pts), bbox: nd.bbox, pts: pts}
}

// collect appends every point of the subtree to dst.
func collect(nd *node, dst []geom.Point) []geom.Point {
	if nd == nil {
		return dst
	}
	if nd.isLeaf() {
		return append(dst, nd.pts...)
	}
	for _, c := range nd.kids {
		dst = collect(c, dst)
	}
	return dst
}
