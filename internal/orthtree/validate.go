package orthtree

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Validate checks every structural invariant of the P-Orth tree and
// returns the first violation. Tests run it after every mutation:
//
//  1. sizes are consistent with subtree contents;
//  2. bbox is the exact tight bounding box;
//  3. every point lies inside its node's region (the split hierarchy is
//     respected);
//  4. canonical form: a node is interior iff size > LeafWrap and its
//     region is splittable — this is what makes the tree
//     history-independent;
//  5. interior nodes have exactly 2^D child slots and at least one child.
func (t *Tree) Validate() error {
	_, err := t.validate(t.root, t.opts.Universe, true)
	return err
}

func (t *Tree) validate(nd *node, region geom.Box, isRoot bool) (int, error) {
	if nd == nil {
		return 0, nil
	}
	dims := t.opts.Dims
	if nd.isLeaf() {
		if len(nd.pts) != nd.size {
			return 0, fmt.Errorf("leaf size %d != len(pts) %d", nd.size, len(nd.pts))
		}
		if nd.size == 0 {
			return 0, fmt.Errorf("empty leaf node present")
		}
		if nd.size > t.opts.LeafWrap && region.Splittable(dims) {
			return 0, fmt.Errorf("leaf of size %d exceeds wrap %d in splittable region %v",
				nd.size, t.opts.LeafWrap, region)
		}
		bb := geom.BoundingBox(nd.pts, dims)
		if bb != nd.bbox {
			return 0, fmt.Errorf("leaf bbox %v, recomputed %v", nd.bbox, bb)
		}
		for _, p := range nd.pts {
			if !region.Contains(p, dims) {
				return 0, fmt.Errorf("leaf point %v outside region %v", p, region)
			}
		}
		return nd.size, nil
	}
	if len(nd.kids) != t.nway {
		return 0, fmt.Errorf("interior node with %d child slots, want %d", len(nd.kids), t.nway)
	}
	if nd.size <= t.opts.LeafWrap {
		return 0, fmt.Errorf("interior node of size %d should have been flattened (wrap %d)",
			nd.size, t.opts.LeafWrap)
	}
	if !region.Splittable(dims) {
		return 0, fmt.Errorf("interior node over unsplittable region %v", region)
	}
	total := 0
	bbox := geom.EmptyBox(dims)
	for q, c := range nd.kids {
		sz, err := t.validate(c, region.Child(q, dims), false)
		if err != nil {
			return 0, err
		}
		total += sz
		if c != nil {
			bbox = bbox.Union(c.bbox, dims)
		}
	}
	if total != nd.size {
		return 0, fmt.Errorf("interior size %d, children sum %d", nd.size, total)
	}
	if bbox != nd.bbox {
		return 0, fmt.Errorf("interior bbox %v, recomputed %v", nd.bbox, bbox)
	}
	return total, nil
}

// StructuralEqual reports whether two trees have identical structure and
// identical point multisets per leaf (leaf-internal order is the one
// degree of freedom history independence permits, §5.1.3). Tests use it to
// verify that update-built trees match scratch-built ones.
func StructuralEqual(a, b *Tree) bool {
	if a.opts.Dims != b.opts.Dims || a.opts.Universe != b.opts.Universe {
		return false
	}
	return nodesEqual(a.root, b.root, a.opts.Dims)
}

func nodesEqual(x, y *node, dims int) bool {
	if x == nil || y == nil {
		return x == y
	}
	if x.size != y.size || x.bbox != y.bbox || x.isLeaf() != y.isLeaf() {
		return false
	}
	if x.isLeaf() {
		xs := append([]geom.Point(nil), x.pts...)
		ys := append([]geom.Point(nil), y.pts...)
		sortPts(xs, dims)
		sortPts(ys, dims)
		for i := range xs {
			if xs[i] != ys[i] {
				return false
			}
		}
		return true
	}
	for q := range x.kids {
		if !nodesEqual(x.kids[q], y.kids[q], dims) {
			return false
		}
	}
	return true
}

func sortPts(pts []geom.Point, dims int) {
	sort.Slice(pts, func(i, j int) bool { return geom.Less(pts[i], pts[j], dims) })
}
