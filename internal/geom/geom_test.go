package geom

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDist2(t *testing.T) {
	p, q := Pt2(0, 0), Pt2(3, 4)
	if d := Dist2(p, q, 2); d != 25 {
		t.Fatalf("Dist2 = %d, want 25", d)
	}
	if d := Dist2(Pt3(1, 2, 3), Pt3(4, 6, 3), 3); d != 25 {
		t.Fatalf("3D Dist2 = %d, want 25", d)
	}
	// 2D distance must ignore the Z slot.
	if d := Dist2(Pt3(0, 0, 100), Pt3(0, 0, -100), 2); d != 0 {
		t.Fatalf("2D Dist2 with Z noise = %d, want 0", d)
	}
}

func TestDist2NoOverflow(t *testing.T) {
	// Paper coordinates are in [0, 1e9]; the extreme corner pair must not
	// overflow int64.
	p, q := Pt3(0, 0, 0), Pt3(1e9, 1e9, 1e9)
	want := int64(3e18)
	if d := Dist2(p, q, 3); d != want {
		t.Fatalf("Dist2 = %d, want %d", d, want)
	}
}

func TestLessEqual(t *testing.T) {
	if !Less(Pt2(1, 9), Pt2(2, 0), 2) {
		t.Fatal("lexicographic Less failed on first dim")
	}
	if !Less(Pt2(1, 1), Pt2(1, 2), 2) {
		t.Fatal("lexicographic Less failed on second dim")
	}
	if Less(Pt2(1, 1), Pt2(1, 1), 2) {
		t.Fatal("Less on equal points")
	}
	if !Equal(Pt2(1, 1), Pt2(1, 1), 2) || Equal(Pt2(1, 1), Pt2(1, 2), 2) {
		t.Fatal("Equal wrong")
	}
}

func TestEmptyBoxIdentity(t *testing.T) {
	e := EmptyBox(2)
	if !e.IsEmpty() {
		t.Fatal("EmptyBox not empty")
	}
	b := BoxOf(Pt2(1, 2), Pt2(3, 4))
	if got := e.Union(b, 2); got != b {
		t.Fatalf("EmptyBox union = %v, want %v", got, b)
	}
	if got := b.Union(e, 2); got != b {
		t.Fatalf("union with empty = %v, want %v", got, b)
	}
	if e.Contains(Pt2(0, 0), 2) {
		t.Fatal("EmptyBox contains a point")
	}
}

func TestBoxContainsIntersects(t *testing.T) {
	b := BoxOf(Pt2(0, 0), Pt2(10, 10))
	if !b.Contains(Pt2(0, 0), 2) || !b.Contains(Pt2(10, 10), 2) {
		t.Fatal("box must be closed (inclusive corners)")
	}
	if b.Contains(Pt2(11, 5), 2) || b.Contains(Pt2(5, -1), 2) {
		t.Fatal("contains point outside")
	}
	cases := []struct {
		o    Box
		want bool
	}{
		{BoxOf(Pt2(10, 10), Pt2(20, 20)), true}, // corner touch counts
		{BoxOf(Pt2(11, 0), Pt2(20, 10)), false}, // separated in x
		{BoxOf(Pt2(-5, -5), Pt2(15, 15)), true}, // superset
		{BoxOf(Pt2(3, 3), Pt2(4, 4)), true},     // subset
		{BoxOf(Pt2(0, 11), Pt2(10, 12)), false}, // separated in y
	}
	for i, c := range cases {
		if got := b.Intersects(c.o, 2); got != c.want {
			t.Errorf("case %d: Intersects(%v) = %v, want %v", i, c.o, got, c.want)
		}
		if got := c.o.Intersects(b, 2); got != c.want {
			t.Errorf("case %d: Intersects not symmetric", i)
		}
	}
	if !b.ContainsBox(BoxOf(Pt2(1, 1), Pt2(9, 9)), 2) {
		t.Fatal("ContainsBox subset")
	}
	if b.ContainsBox(BoxOf(Pt2(1, 1), Pt2(11, 9)), 2) {
		t.Fatal("ContainsBox overhang")
	}
}

func TestBoundingBox(t *testing.T) {
	pts := []Point{Pt2(5, 1), Pt2(-3, 7), Pt2(0, 0)}
	b := BoundingBox(pts, 2)
	want := BoxOf(Pt2(-3, 0), Pt2(5, 7))
	if b != want {
		t.Fatalf("BoundingBox = %v, want %v", b, want)
	}
	if !BoundingBox(nil, 2).IsEmpty() {
		t.Fatal("BoundingBox(nil) must be empty")
	}
}

func TestBoxDist2(t *testing.T) {
	b := BoxOf(Pt2(0, 0), Pt2(10, 10))
	if d := b.Dist2(Pt2(5, 5), 2); d != 0 {
		t.Fatalf("inside dist = %d", d)
	}
	if d := b.Dist2(Pt2(13, 14), 2); d != 3*3+4*4 {
		t.Fatalf("corner dist = %d, want 25", d)
	}
	if d := b.Dist2(Pt2(-2, 5), 2); d != 4 {
		t.Fatalf("face dist = %d, want 4", d)
	}
}

func TestQuadrantChildPartition(t *testing.T) {
	// Child(i) for i in [0, 2^dims) must partition the box, and Quadrant
	// must route each point to the child that contains it.
	for _, dims := range []int{2, 3} {
		b := BoxOf(Pt3(0, 0, 0), Pt3(7, 9, 5))
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 2000; trial++ {
			var p Point
			for d := 0; d < dims; d++ {
				p[d] = rng.Int63n(b.Hi[d] + 1)
			}
			q := b.Quadrant(p, dims)
			if !b.Child(q, dims).Contains(p, dims) {
				t.Fatalf("dims=%d: child %d of %v does not contain %v", dims, q, b, p)
			}
			// No other child contains it (disjointness).
			for i := 0; i < 1<<dims; i++ {
				if i != q && b.Child(i, dims).Contains(p, dims) {
					t.Fatalf("dims=%d: point %v in two children (%d and %d)", dims, p, q, i)
				}
			}
		}
	}
}

func TestChildDegenerate(t *testing.T) {
	// A single-cell box is not splittable; a 1-wide box is.
	b := BoxOf(Pt2(5, 5), Pt2(5, 5))
	if b.Splittable(2) {
		t.Fatal("point box must not be splittable")
	}
	b2 := BoxOf(Pt2(5, 5), Pt2(6, 5))
	if !b2.Splittable(2) {
		t.Fatal("1-wide box must be splittable")
	}
	// Splitting b2 must separate the two cells.
	c0, c1 := b2.Child(0, 2), b2.Child(1, 2)
	if !c0.Contains(Pt2(5, 5), 2) || !c1.Contains(Pt2(6, 5), 2) {
		t.Fatalf("degenerate split wrong: %v %v", c0, c1)
	}
}

func TestWidestDim(t *testing.T) {
	b := BoxOf(Pt3(0, 0, 0), Pt3(5, 20, 10))
	if d := b.WidestDim(3); d != 1 {
		t.Fatalf("WidestDim = %d, want 1", d)
	}
	if d := b.WidestDim(2); d != 1 {
		t.Fatalf("WidestDim 2D = %d, want 1", d)
	}
}

func TestBoxDist2IsLowerBound(t *testing.T) {
	// Property: for any point q and any point p inside box b,
	// b.Dist2(q) <= Dist2(p, q).
	f := func(qx, qy, ax, ay, bx, by int16) bool {
		q := Pt2(int64(qx), int64(qy))
		lo := Pt2(min64(int64(ax), int64(bx)), min64(int64(ay), int64(by)))
		hi := Pt2(max64(int64(ax), int64(bx)), max64(int64(ay), int64(by)))
		b := BoxOf(lo, hi)
		// Sample a few points inside the box.
		rng := rand.New(rand.NewSource(int64(qx)<<16 ^ int64(qy)))
		for i := 0; i < 8; i++ {
			p := Pt2(lo[0]+rng.Int63n(b.Side(0)+1), lo[1]+rng.Int63n(b.Side(1)+1))
			if b.Dist2(q, 2) > Dist2(p, q, 2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKNNHeapBasic(t *testing.T) {
	h := NewKNNHeap(3)
	pts := []Point{Pt2(0, 9), Pt2(0, 2), Pt2(0, 7), Pt2(0, 1), Pt2(0, 5)}
	q := Pt2(0, 0)
	for _, p := range pts {
		h.Push(p, Dist2(p, q, 2))
	}
	if !h.Full() {
		t.Fatal("heap should be full")
	}
	if h.Bound() != 25 {
		t.Fatalf("Bound = %d, want 25", h.Bound())
	}
	out := h.Append(nil)
	want := []int64{1, 4, 25}
	for i, p := range out {
		if d := Dist2(p, q, 2); d != want[i] {
			t.Fatalf("result %d: dist %d, want %d", i, d, want[i])
		}
	}
	if h.Len() != 0 {
		t.Fatal("Append must consume the heap")
	}
}

func TestKNNHeapUnderfull(t *testing.T) {
	h := NewKNNHeap(10)
	h.Push(Pt2(1, 0), 1)
	h.Push(Pt2(2, 0), 4)
	if h.Full() {
		t.Fatal("should not be full")
	}
	if h.Bound() != int64(1<<63-1) {
		t.Fatal("underfull bound must be +inf")
	}
	out := h.Append(nil)
	if len(out) != 2 || out[0] != Pt2(1, 0) {
		t.Fatalf("underfull append = %v", out)
	}
}

func TestKNNHeapMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		q := Pt2(rng.Int63n(1000), rng.Int63n(1000))
		pts := make([]Point, n)
		dists := make([]int64, n)
		h := NewKNNHeap(k)
		for i := range pts {
			pts[i] = Pt2(rng.Int63n(1000), rng.Int63n(1000))
			dists[i] = Dist2(pts[i], q, 2)
			h.Push(pts[i], dists[i])
		}
		sort.Slice(dists, func(i, j int) bool { return dists[i] < dists[j] })
		out := h.Append(nil)
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(out) != wantLen {
			t.Fatalf("len = %d, want %d", len(out), wantLen)
		}
		for i, p := range out {
			if d := Dist2(p, q, 2); d != dists[i] {
				t.Fatalf("trial %d: result %d dist %d, want %d", trial, i, d, dists[i])
			}
		}
	}
}

func TestKNNHeapReset(t *testing.T) {
	h := NewKNNHeap(2)
	h.Push(Pt2(1, 1), 2)
	h.Reset()
	if h.Len() != 0 || h.Full() {
		t.Fatal("Reset failed")
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestKNNHeapPoolReuse(t *testing.T) {
	// A pooled heap re-armed for a different k must behave like a fresh
	// heap: grow when k exceeds capacity, truncate cleanly when smaller.
	h := GetKNNHeap(2)
	h.Push(Pt2(0, 0), 4)
	h.Push(Pt2(1, 0), 1)
	h.Push(Pt2(2, 0), 9) // rejected: worse than bound with heap full
	if got := h.Append(nil); len(got) != 2 || got[0] != Pt2(1, 0) {
		t.Fatalf("pooled heap k=2: got %v", got)
	}
	PutKNNHeap(h)

	h = GetKNNHeap(5)
	if h.Len() != 0 || h.Full() {
		t.Fatal("reused heap not reset")
	}
	for i := 0; i < 7; i++ {
		h.Push(Pt2(int64(i), 0), int64(10-i))
	}
	if got := h.Append(nil); len(got) != 5 {
		t.Fatalf("re-armed heap k=5 returned %d", len(got))
	} else if got[0] != Pt2(6, 0) {
		t.Fatalf("nearest after re-arm: %v", got[0])
	}
	PutKNNHeap(h)

	// ResetK down then up again reuses capacity.
	h = NewKNNHeap(8)
	h.ResetK(3)
	h.Push(Pt2(1, 1), 1)
	if h.Bound() != int64(1<<63-1) {
		t.Fatal("bound should be unbounded below k candidates")
	}
	h.ResetK(8)
	if h.Len() != 0 {
		t.Fatal("ResetK did not clear")
	}
}
