package geom

import "fmt"

// Box is a closed axis-aligned box [Lo, Hi] (both corners inclusive).
// Every index in the library stores one Box per tree node: either the tight
// bounding box of the points below it (for pruning) or, for the
// space-partitioning trees, the region assigned to the subtree.
type Box struct {
	Lo, Hi Point
}

// EmptyBox returns the canonical empty box for the given dimensionality:
// Lo > Hi in every used dimension (so Extend/Union treat it as the identity
// element) and zero in unused slots (so 2D boxes compare with ==).
func EmptyBox(dims int) Box {
	const big = int64(1) << 62
	var b Box
	for d := 0; d < dims; d++ {
		b.Lo[d], b.Hi[d] = big, -big
	}
	return b
}

// UniverseBox returns the box [0, side]^dims with zero extent in unused
// dimensions, the conventional root region for the paper's workloads.
func UniverseBox(dims int, side Coord) Box {
	b := Box{}
	for d := 0; d < dims; d++ {
		b.Hi[d] = side
	}
	return b
}

// BoxOf returns the box with the two corners lo and hi.
func BoxOf(lo, hi Point) Box { return Box{Lo: lo, Hi: hi} }

// String renders the box for debugging.
func (b Box) String() string { return fmt.Sprintf("[%v..%v]", b.Lo, b.Hi) }

// IsEmpty reports whether the box contains no point (Lo > Hi somewhere).
func (b Box) IsEmpty() bool {
	for d := 0; d < MaxDims; d++ {
		if b.Lo[d] > b.Hi[d] {
			return true
		}
	}
	return false
}

// Contains reports whether p lies inside b (first dims dimensions).
func (b Box) Contains(p Point, dims int) bool {
	for d := 0; d < dims; d++ {
		if p[d] < b.Lo[d] || p[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o is entirely inside b.
func (b Box) ContainsBox(o Box, dims int) bool {
	for d := 0; d < dims; d++ {
		if o.Lo[d] < b.Lo[d] || o.Hi[d] > b.Hi[d] {
			return false
		}
	}
	return true
}

// Intersects reports whether b and o share at least one point.
func (b Box) Intersects(o Box, dims int) bool {
	for d := 0; d < dims; d++ {
		if b.Lo[d] > o.Hi[d] || b.Hi[d] < o.Lo[d] {
			return false
		}
	}
	return true
}

// Extend grows b to include p and returns the result.
func (b Box) Extend(p Point, dims int) Box {
	for d := 0; d < dims; d++ {
		if p[d] < b.Lo[d] {
			b.Lo[d] = p[d]
		}
		if p[d] > b.Hi[d] {
			b.Hi[d] = p[d]
		}
	}
	return b
}

// Union returns the smallest box enclosing both b and o. Empty boxes are
// identity elements.
func (b Box) Union(o Box, dims int) Box {
	for d := 0; d < dims; d++ {
		if o.Lo[d] < b.Lo[d] {
			b.Lo[d] = o.Lo[d]
		}
		if o.Hi[d] > b.Hi[d] {
			b.Hi[d] = o.Hi[d]
		}
	}
	return b
}

// BoundingBox returns the tight bounding box of pts.
func BoundingBox(pts []Point, dims int) Box {
	b := EmptyBox(dims)
	for _, p := range pts {
		b = b.Extend(p, dims)
	}
	return b
}

// Dist2 returns the exact squared distance from p to the box (0 if inside).
// This is the pruning bound used by every kNN search in the library.
func (b Box) Dist2(p Point, dims int) int64 {
	var s int64
	for d := 0; d < dims; d++ {
		var dx int64
		if p[d] < b.Lo[d] {
			dx = b.Lo[d] - p[d]
		} else if p[d] > b.Hi[d] {
			dx = p[d] - b.Hi[d]
		}
		s += dx * dx
	}
	return s
}

// Mid returns the midpoint of the box along dimension d, rounded toward Lo.
// Orth-trees split at this spatial median.
func (b Box) Mid(d int) Coord {
	// Average without overflow: coordinates may be near +/-2^62 for the
	// canonical empty box, so use the classic overflow-free midpoint.
	lo, hi := b.Lo[d], b.Hi[d]
	return lo + (hi-lo)/2
}

// Side returns the extent of the box along dimension d.
func (b Box) Side(d int) Coord { return b.Hi[d] - b.Lo[d] }

// WidestDim returns the dimension with the largest extent (first dims
// dimensions considered). kd-trees split along this dimension.
func (b Box) WidestDim(dims int) int {
	best, bestSide := 0, Coord(-1)
	for d := 0; d < dims; d++ {
		if s := b.Side(d); s > bestSide {
			best, bestSide = d, s
		}
	}
	return best
}

// Splittable reports whether the box can still be halved along some
// dimension, i.e. some side has extent >= 1. Orth-trees stop splitting
// degenerate regions (duplicate-heavy inputs) to bound the tree height by
// O(log Delta), Delta the aspect ratio (paper §3.3).
func (b Box) Splittable(dims int) bool {
	for d := 0; d < dims; d++ {
		if b.Side(d) >= 1 {
			return true
		}
	}
	return false
}

// Quadrant returns the orthant index of p relative to the midpoints of b:
// bit d is set iff p[d] > mid_d. This fixes the child ordering of every
// orth-tree node (2^dims children).
func (b Box) Quadrant(p Point, dims int) int {
	idx := 0
	for d := 0; d < dims; d++ {
		if p[d] > b.Mid(d) {
			idx |= 1 << d
		}
	}
	return idx
}

// Child returns the sub-box of b for orthant idx (inverse of Quadrant):
// dimension d spans [Lo, mid] when bit d is clear and (mid, Hi] — stored as
// [mid+1, Hi] — when set. Children therefore partition b exactly.
func (b Box) Child(idx int, dims int) Box {
	c := b
	for d := 0; d < dims; d++ {
		mid := b.Mid(d)
		if idx&(1<<d) != 0 {
			c.Lo[d] = mid + 1
		} else {
			c.Hi[d] = mid
		}
	}
	return c
}
