package geom

import "sync"

// KNNHeap is a bounded max-heap of the k best (smallest squared distance)
// candidates seen so far during a k-nearest-neighbor search. Every index in
// the library threads one KNNHeap through its traversal; the current worst
// distance (Bound) is the pruning radius.
//
// The zero value is not usable; call NewKNNHeap — or, on a query hot path,
// borrow one from the shared pool with GetKNNHeap/PutKNNHeap so that warm
// steady-state queries allocate nothing. The heap is intentionally
// allocation-free after construction so that query benchmarks measure tree
// traversal, not GC.
type KNNHeap struct {
	k    int
	n    int
	dist []int64
	pts  []Point
}

// NewKNNHeap returns a heap that retains the k closest candidates.
func NewKNNHeap(k int) *KNNHeap {
	return &KNNHeap{k: k, dist: make([]int64, k), pts: make([]Point, k)}
}

// Reset clears the heap for reuse with the same k.
func (h *KNNHeap) Reset() { h.n = 0 }

// ResetK clears the heap and re-arms it for a (possibly different) k,
// growing the candidate arrays only when k exceeds their capacity.
func (h *KNNHeap) ResetK(k int) {
	h.n = 0
	h.k = k
	if cap(h.dist) < k {
		h.dist = make([]int64, k)
		h.pts = make([]Point, k)
	}
	h.dist = h.dist[:k]
	h.pts = h.pts[:k]
}

// knnHeapPool recycles heaps across queries. Heaps hold only value slices
// (no pointers into any index), so recycling one can never pin tree data.
var knnHeapPool = sync.Pool{New: func() any { return new(KNNHeap) }}

// heapPooling can be switched off so benchmarks can measure the
// pre-pooling allocation behavior (see SetHeapPooling).
var heapPooling = true

// SetHeapPooling enables or disables the shared heap pool. It exists for
// the allocation benchmarks (-exp alloc measures the before/after of
// query-path scratch reuse) and is not safe to flip while queries are in
// flight; production code never calls it.
func SetHeapPooling(on bool) { heapPooling = on }

// GetKNNHeap returns an empty heap armed for k, reusing a pooled one when
// available. Pair with PutKNNHeap once the result has been consumed
// (typically right after Append). In the steady state this allocates
// nothing.
func GetKNNHeap(k int) *KNNHeap {
	if !heapPooling {
		return NewKNNHeap(k)
	}
	h := knnHeapPool.Get().(*KNNHeap)
	h.ResetK(k)
	return h
}

// PutKNNHeap returns a heap to the pool. The caller must not use h after
// the call.
func PutKNNHeap(h *KNNHeap) {
	if heapPooling && h != nil {
		knnHeapPool.Put(h)
	}
}

// pointBufPool recycles []Point scratch buffers for query paths that need
// a temporary candidate list (the log-tree's multi-level KNN merge; the
// sharded fan-out keeps its own per-query scratch instead).
var pointBufPool = sync.Pool{New: func() any { return new([]Point) }}

// GetPointBuf returns an empty point buffer from the shared pool.
func GetPointBuf() *[]Point {
	b := pointBufPool.Get().(*[]Point)
	*b = (*b)[:0]
	return b
}

// PutPointBuf returns a buffer to the pool (the caller keeps no alias).
func PutPointBuf(b *[]Point) { pointBufPool.Put(b) }

// Len returns the number of candidates currently held.
func (h *KNNHeap) Len() int { return h.n }

// Full reports whether k candidates have been collected; until then Bound
// is unbounded and no pruning applies.
func (h *KNNHeap) Full() bool { return h.n == h.k }

// Bound returns the current pruning radius: the k-th best squared distance,
// or MaxInt64 while fewer than k candidates are known.
func (h *KNNHeap) Bound() int64 {
	if h.n < h.k {
		return int64(1<<63 - 1)
	}
	return h.dist[0]
}

// Push offers a candidate. It is a no-op when d2 is not better than Bound.
func (h *KNNHeap) Push(p Point, d2 int64) {
	if h.n < h.k {
		i := h.n
		h.dist[i], h.pts[i] = d2, p
		h.n++
		// Sift up.
		for i > 0 {
			parent := (i - 1) / 2
			if h.dist[parent] >= h.dist[i] {
				break
			}
			h.dist[parent], h.dist[i] = h.dist[i], h.dist[parent]
			h.pts[parent], h.pts[i] = h.pts[i], h.pts[parent]
			i = parent
		}
		return
	}
	if d2 >= h.dist[0] {
		return
	}
	// Replace the root (current worst) and sift down.
	h.dist[0], h.pts[0] = d2, p
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < h.n && h.dist[l] > h.dist[big] {
			big = l
		}
		if r < h.n && h.dist[r] > h.dist[big] {
			big = r
		}
		if big == i {
			return
		}
		h.dist[big], h.dist[i] = h.dist[i], h.dist[big]
		h.pts[big], h.pts[i] = h.pts[i], h.pts[big]
		i = big
	}
}

// Append copies the collected neighbors into dst ordered from nearest to
// farthest and returns the extended slice. The heap is consumed (emptied).
func (h *KNNHeap) Append(dst []Point) []Point {
	// Heap-sort in place: repeatedly extract the current maximum to the
	// back so the front ends up nearest-first.
	n := h.n
	base := len(dst)
	dst = append(dst, h.pts[:n]...)
	out := dst[base:]
	dists := h.dist[:n]
	for m := n; m > 1; m-- {
		// Move max (index 0) to position m-1.
		dists[0], dists[m-1] = dists[m-1], dists[0]
		out[0], out[m-1] = out[m-1], out[0]
		// Sift down within [0, m-1).
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < m-1 && dists[l] > dists[big] {
				big = l
			}
			if r < m-1 && dists[r] > dists[big] {
				big = r
			}
			if big == i {
				break
			}
			dists[big], dists[i] = dists[i], dists[big]
			out[big], out[i] = out[i], out[big]
			i = big
		}
	}
	h.n = 0
	return dst
}

// Dists returns the current squared distances in heap order. Test helper.
func (h *KNNHeap) Dists() []int64 { return h.dist[:h.n] }
