package geom

// KNNHeap is a bounded max-heap of the k best (smallest squared distance)
// candidates seen so far during a k-nearest-neighbor search. Every index in
// the library threads one KNNHeap through its traversal; the current worst
// distance (Bound) is the pruning radius.
//
// The zero value is not usable; call NewKNNHeap. The heap is intentionally
// allocation-free after construction so that query benchmarks measure tree
// traversal, not GC.
type KNNHeap struct {
	k    int
	n    int
	dist []int64
	pts  []Point
}

// NewKNNHeap returns a heap that retains the k closest candidates.
func NewKNNHeap(k int) *KNNHeap {
	return &KNNHeap{k: k, dist: make([]int64, k), pts: make([]Point, k)}
}

// Reset clears the heap for reuse with the same k.
func (h *KNNHeap) Reset() { h.n = 0 }

// Len returns the number of candidates currently held.
func (h *KNNHeap) Len() int { return h.n }

// Full reports whether k candidates have been collected; until then Bound
// is unbounded and no pruning applies.
func (h *KNNHeap) Full() bool { return h.n == h.k }

// Bound returns the current pruning radius: the k-th best squared distance,
// or MaxInt64 while fewer than k candidates are known.
func (h *KNNHeap) Bound() int64 {
	if h.n < h.k {
		return int64(1<<63 - 1)
	}
	return h.dist[0]
}

// Push offers a candidate. It is a no-op when d2 is not better than Bound.
func (h *KNNHeap) Push(p Point, d2 int64) {
	if h.n < h.k {
		i := h.n
		h.dist[i], h.pts[i] = d2, p
		h.n++
		// Sift up.
		for i > 0 {
			parent := (i - 1) / 2
			if h.dist[parent] >= h.dist[i] {
				break
			}
			h.dist[parent], h.dist[i] = h.dist[i], h.dist[parent]
			h.pts[parent], h.pts[i] = h.pts[i], h.pts[parent]
			i = parent
		}
		return
	}
	if d2 >= h.dist[0] {
		return
	}
	// Replace the root (current worst) and sift down.
	h.dist[0], h.pts[0] = d2, p
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < h.n && h.dist[l] > h.dist[big] {
			big = l
		}
		if r < h.n && h.dist[r] > h.dist[big] {
			big = r
		}
		if big == i {
			return
		}
		h.dist[big], h.dist[i] = h.dist[i], h.dist[big]
		h.pts[big], h.pts[i] = h.pts[i], h.pts[big]
		i = big
	}
}

// Append copies the collected neighbors into dst ordered from nearest to
// farthest and returns the extended slice. The heap is consumed (emptied).
func (h *KNNHeap) Append(dst []Point) []Point {
	// Heap-sort in place: repeatedly extract the current maximum to the
	// back so the front ends up nearest-first.
	n := h.n
	base := len(dst)
	dst = append(dst, h.pts[:n]...)
	out := dst[base:]
	dists := h.dist[:n]
	for m := n; m > 1; m-- {
		// Move max (index 0) to position m-1.
		dists[0], dists[m-1] = dists[m-1], dists[0]
		out[0], out[m-1] = out[m-1], out[0]
		// Sift down within [0, m-1).
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < m-1 && dists[l] > dists[big] {
				big = l
			}
			if r < m-1 && dists[r] > dists[big] {
				big = r
			}
			if big == i {
				break
			}
			dists[big], dists[i] = dists[i], dists[big]
			out[big], out[i] = out[i], out[big]
			i = big
		}
	}
	h.n = 0
	return dst
}

// Dists returns the current squared distances in heap order. Test helper.
func (h *KNNHeap) Dists() []int64 { return h.dist[:h.n] }
