// Package geom provides the geometric primitives shared by every spatial
// index in Ψ-Lib/Go: points with integer coordinates in 2 or 3 dimensions,
// axis-aligned bounding boxes, exact squared Euclidean distances, and a
// bounded max-heap used by k-nearest-neighbor searches.
//
// Coordinates are int64, matching the paper's evaluation setup (64-bit
// integers in [0, 1e9]). All distance arithmetic is exact: with |coord| <=
// 2^30, squared distances fit comfortably in int64 (3 * (2^30)^2 < 2^63).
package geom

import "fmt"

// Coord is a point coordinate. The paper evaluates on 64-bit integer
// coordinates; float inputs should be scaled and rounded by the caller.
type Coord = int64

// MaxDims is the largest supported dimensionality. The paper studies D = 2
// and D = 3; the array is fixed-size so Point is a flat value type with no
// indirection (critical for the cache behaviour the paper optimizes for).
const MaxDims = 3

// Point is a point in 2- or 3-dimensional space. For 2D data the Z slot
// (index 2) must be zero so that point equality is plain value equality.
type Point [MaxDims]Coord

// Pt2 returns a 2D point.
func Pt2(x, y Coord) Point { return Point{x, y, 0} }

// Pt3 returns a 3D point.
func Pt3(x, y, z Coord) Point { return Point{x, y, z} }

// String renders the point for debugging.
func (p Point) String() string {
	return fmt.Sprintf("(%d,%d,%d)", p[0], p[1], p[2])
}

// Dist2 returns the exact squared Euclidean distance between p and q over
// the first dims dimensions.
func Dist2(p, q Point, dims int) int64 {
	var s int64
	for d := 0; d < dims; d++ {
		dx := p[d] - q[d]
		s += dx * dx
	}
	return s
}

// Less orders points lexicographically over the first dims dimensions.
// It is used by tests and by deterministic tie-breaking, not by any index
// invariant.
func Less(p, q Point, dims int) bool {
	for d := 0; d < dims; d++ {
		if p[d] != q[d] {
			return p[d] < q[d]
		}
	}
	return false
}

// Equal reports whether p and q agree on the first dims dimensions.
func Equal(p, q Point, dims int) bool {
	for d := 0; d < dims; d++ {
		if p[d] != q[d] {
			return false
		}
	}
	return true
}
