package geom

import (
	"testing"
	"testing/quick"
)

// Property: the 2^dims children of any box partition it exactly — every
// cell of the parent lies in exactly one child, and child volumes sum to
// the parent volume. This is the invariant the whole orth-tree hierarchy
// rests on.
func TestQuickChildVolumesPartition(t *testing.T) {
	vol := func(b Box, dims int) int64 {
		v := int64(1)
		for d := 0; d < dims; d++ {
			v *= b.Side(d) + 1 // closed box: side+1 cells
		}
		return v
	}
	f := func(ax, ay, az, bx, by, bz uint16, threeD bool) bool {
		dims := 2
		if threeD {
			dims = 3
		}
		lo := Pt3(int64(min16(ax, bx)), int64(min16(ay, by)), int64(min16(az, bz)))
		hi := Pt3(int64(max16(ax, bx)), int64(max16(ay, by)), int64(max16(az, bz)))
		if dims == 2 {
			lo[2], hi[2] = 0, 0
		}
		b := BoxOf(lo, hi)
		if !b.Splittable(dims) {
			return true
		}
		var sum int64
		for q := 0; q < 1<<dims; q++ {
			c := b.Child(q, dims)
			if !c.IsEmpty() {
				if !b.ContainsBox(c, dims) {
					return false
				}
				sum += vol(c, dims)
			}
		}
		return sum == vol(b, dims)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Union is commutative, associative and idempotent on the boxes
// the trees build (monoid with EmptyBox as identity).
func TestQuickUnionMonoid(t *testing.T) {
	mk := func(ax, ay, bx, by uint16) Box {
		return BoxOf(
			Pt2(int64(min16(ax, bx)), int64(min16(ay, by))),
			Pt2(int64(max16(ax, bx)), int64(max16(ay, by))),
		)
	}
	f := func(a1, a2, a3, a4, b1, b2, b3, b4, c1, c2, c3, c4 uint16) bool {
		a, b, c := mk(a1, a2, a3, a4), mk(b1, b2, b3, b4), mk(c1, c2, c3, c4)
		if a.Union(b, 2) != b.Union(a, 2) {
			return false
		}
		if a.Union(b, 2).Union(c, 2) != a.Union(b.Union(c, 2), 2) {
			return false
		}
		if a.Union(a, 2) != a {
			return false
		}
		u := a.Union(b, 2)
		return u.ContainsBox(a, 2) && u.ContainsBox(b, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Extend(p) is equivalent to Union with the degenerate box at p.
func TestQuickExtendIsUnion(t *testing.T) {
	f := func(ax, ay, bx, by, px, py uint16) bool {
		b := BoxOf(
			Pt2(int64(min16(ax, bx)), int64(min16(ay, by))),
			Pt2(int64(max16(ax, bx)), int64(max16(ay, by))),
		)
		p := Pt2(int64(px), int64(py))
		return b.Extend(p, 2) == b.Union(BoxOf(p, p), 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}
