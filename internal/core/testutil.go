package core

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
)

// This file hosts the shared randomized-property driver used by every
// tree package's quick tests (and by cmd/psicheck). It lives in the
// library (not a _test file) so all packages can import it.

// OpScript is a reproducible randomized operation sequence over an index
// and the brute-force oracle. Steps alternate between batch inserts of
// fresh points, multiset deletes of (possibly repeated) live points, and
// query checkpoints.
type OpScript struct {
	Dims  int
	Side  int64
	Steps int
	Seed  int64
	// MaxBatch bounds the points per mutation step.
	MaxBatch int
	// Validate, when non-nil, is called after every mutation so packages
	// can check their structural invariants mid-sequence.
	Validate func() error
}

// Run drives idx through the script against a fresh oracle and returns
// the first discrepancy. Determinism: the same script always produces the
// same operation sequence.
func (s OpScript) Run(idx Index) error {
	rng := rand.New(rand.NewSource(s.Seed))
	ref := NewBruteForce(s.Dims)
	fresh := func(n int) []geom.Point {
		pts := make([]geom.Point, n)
		for i := range pts {
			for d := 0; d < s.Dims; d++ {
				pts[i][d] = rng.Int63n(s.Side + 1)
			}
			// Occasionally duplicate an earlier point to stress multiset
			// paths.
			if i > 0 && rng.Intn(8) == 0 {
				pts[i] = pts[rng.Intn(i)]
			}
		}
		return pts
	}
	check := func(step int) error {
		queries := fresh(6)
		boxes := []geom.Box{
			geom.BoxOf(queries[0], queries[0]),
			boxAround(queries[1], s.Side/16),
			boxAround(queries[2], s.Side/3),
			geom.UniverseBox(s.Dims, s.Side),
		}
		if err := VerifyQueries(idx, ref, queries, []int{1, 3, 17}, boxes); err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
		return nil
	}
	sampleLive := func(n int) []geom.Point {
		cur := ref.Points()
		batch := make([]geom.Point, 0, n)
		for i := 0; i < n; i++ {
			if len(cur) > 0 && rng.Intn(5) != 0 {
				batch = append(batch, cur[rng.Intn(len(cur))])
			} else {
				batch = append(batch, fresh(1)[0]) // likely a miss
			}
		}
		return batch
	}
	for step := 0; step < s.Steps; step++ {
		switch rng.Intn(5) {
		case 0, 1: // insert
			batch := fresh(rng.Intn(s.MaxBatch + 1))
			idx.BatchInsert(batch)
			ref.BatchInsert(batch)
		case 2: // delete a sample of live points (with repeats) + misses
			batch := sampleLive(rng.Intn(s.MaxBatch + 1))
			idx.BatchDelete(batch)
			ref.BatchDelete(batch)
		case 3: // rebuild from the live set (exercises Build after use)
			idx.Build(ref.Points())
		case 4: // mixed diff (the artifact's BatchDiff, §F.2)
			ins := fresh(rng.Intn(s.MaxBatch/2 + 1))
			del := sampleLive(rng.Intn(s.MaxBatch/2 + 1))
			idx.BatchDiff(ins, del)
			ref.BatchDiff(ins, del)
		}
		if s.Validate != nil {
			if err := s.Validate(); err != nil {
				return fmt.Errorf("step %d: invariant: %w", step, err)
			}
		}
		if idx.Size() != ref.Size() {
			return fmt.Errorf("step %d: size %d, oracle %d", step, idx.Size(), ref.Size())
		}
	}
	return check(s.Steps)
}

func boxAround(p geom.Point, radius int64) geom.Box {
	var lo, hi geom.Point
	for d := 0; d < geom.MaxDims; d++ {
		lo[d] = p[d] - radius
		hi[d] = p[d] + radius
		if lo[d] < 0 {
			lo[d] = 0
		}
	}
	return geom.BoxOf(lo, hi)
}
