package core

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// This file provides the cross-validation machinery shared by every tree
// package's tests and by cmd/psicheck — the Go analogue of the paper's
// "hand-crafted framework" of extensive unit tests (§F.2). An index is
// verified against BruteForce on the full query suite; kNN answers are
// compared as squared-distance sequences so that ties at the k-th neighbor
// do not cause false mismatches.

// VerifyQueries checks idx against the reference on the given kNN queries
// (with each k in ks) and range boxes. It returns the first discrepancy as
// an error, nil if all agree.
func VerifyQueries(idx Index, ref Index, queries []geom.Point, ks []int, boxes []geom.Box) error {
	if idx.Size() != ref.Size() {
		return fmt.Errorf("%s: size %d, reference %d", idx.Name(), idx.Size(), ref.Size())
	}
	dims := idx.Dims()
	for qi, q := range queries {
		for _, k := range ks {
			got := idx.KNN(q, k, nil)
			want := ref.KNN(q, k, nil)
			if len(got) != len(want) {
				return fmt.Errorf("%s: query %d k=%d returned %d points, want %d",
					idx.Name(), qi, k, len(got), len(want))
			}
			for i := range got {
				gd := geom.Dist2(got[i], q, dims)
				wd := geom.Dist2(want[i], q, dims)
				if gd != wd {
					return fmt.Errorf("%s: query %d k=%d neighbor %d dist2 %d, want %d",
						idx.Name(), qi, k, i, gd, wd)
				}
			}
		}
	}
	for bi, b := range boxes {
		gotN := idx.RangeCount(b)
		wantN := ref.RangeCount(b)
		if gotN != wantN {
			return fmt.Errorf("%s: box %d RangeCount %d, want %d", idx.Name(), bi, gotN, wantN)
		}
		got := idx.RangeList(b, nil)
		want := ref.RangeList(b, nil)
		if len(got) != wantN {
			return fmt.Errorf("%s: box %d RangeList returned %d points, RangeCount %d",
				idx.Name(), bi, len(got), wantN)
		}
		sortPoints(got, dims)
		sortPoints(want, dims)
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("%s: box %d RangeList element %d = %v, want %v",
					idx.Name(), bi, i, got[i], want[i])
			}
		}
	}
	return nil
}

func sortPoints(pts []geom.Point, dims int) {
	sort.Slice(pts, func(i, j int) bool { return geom.Less(pts[i], pts[j], dims) })
}

// ParallelKNN runs one kNN query per element of queries concurrently
// (the paper runs query sets in parallel, §5.1) and returns the total
// number of neighbors found (a cheap checksum that keeps the compiler from
// eliding the work in benchmarks).
func ParallelKNN(idx Index, queries []geom.Point, k int) int {
	return parallel.Reduce(len(queries), 64, 0,
		func(i int) int { return len(idx.KNN(queries[i], k, nil)) },
		func(a, b int) int { return a + b })
}

// ParallelRangeCount runs the count queries concurrently and returns the
// summed counts.
func ParallelRangeCount(idx Index, boxes []geom.Box) int {
	return parallel.Reduce(len(boxes), 8, 0,
		func(i int) int { return idx.RangeCount(boxes[i]) },
		func(a, b int) int { return a + b })
}

// ParallelRangeList runs the report queries concurrently and returns the
// total number of reported points.
func ParallelRangeList(idx Index, boxes []geom.Box) int {
	return parallel.Reduce(len(boxes), 8, 0,
		func(i int) int { return len(idx.RangeList(boxes[i], nil)) },
		func(a, b int) int { return a + b })
}
