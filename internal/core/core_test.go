package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/workload"
)

func TestBruteForceBasics(t *testing.T) {
	b := NewBruteForce(2)
	if b.Name() != "BruteForce" || b.Dims() != 2 || b.Size() != 0 {
		t.Fatal("fresh BruteForce wrong")
	}
	b.Build([]geom.Point{geom.Pt2(1, 1), geom.Pt2(2, 2)})
	b.BatchInsert([]geom.Point{geom.Pt2(3, 3)})
	if b.Size() != 3 {
		t.Fatalf("size %d", b.Size())
	}
	nn := b.KNN(geom.Pt2(0, 0), 2, nil)
	if len(nn) != 2 || nn[0] != geom.Pt2(1, 1) || nn[1] != geom.Pt2(2, 2) {
		t.Fatalf("KNN = %v", nn)
	}
	if c := b.RangeCount(geom.BoxOf(geom.Pt2(0, 0), geom.Pt2(2, 2))); c != 2 {
		t.Fatalf("RangeCount = %d", c)
	}
	got := b.RangeList(geom.BoxOf(geom.Pt2(2, 2), geom.Pt2(9, 9)), nil)
	if len(got) != 2 {
		t.Fatalf("RangeList = %v", got)
	}
}

func TestBruteForceMultisetDelete(t *testing.T) {
	b := NewBruteForce(2)
	p := geom.Pt2(5, 5)
	b.Build([]geom.Point{p, p, p, geom.Pt2(1, 1)})
	// Deleting the point twice removes exactly two of the three copies.
	b.BatchDelete([]geom.Point{p, p})
	if b.Size() != 2 {
		t.Fatalf("size after delete %d, want 2", b.Size())
	}
	if c := b.RangeCount(geom.BoxOf(p, p)); c != 1 {
		t.Fatalf("remaining copies %d, want 1", c)
	}
	// Deleting a missing point is a no-op.
	b.BatchDelete([]geom.Point{geom.Pt2(9, 9)})
	if b.Size() != 2 {
		t.Fatal("delete of missing point changed size")
	}
}

func TestVerifyQueriesAgreesWithItself(t *testing.T) {
	pts := workload.GenVarden(2000, 2, 1<<20, 1)
	a := NewBruteForce(2)
	b := NewBruteForce(2)
	a.Build(pts)
	b.Build(pts)
	queries := workload.GenUniform(50, 2, 1<<20, 2)
	boxes := workload.RangeQueries(20, 2, 1<<20, 0.01, 3)
	if err := VerifyQueries(a, b, queries, []int{1, 5}, boxes); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyQueriesDetectsMismatch(t *testing.T) {
	pts := workload.GenUniform(500, 2, 1<<20, 1)
	a := NewBruteForce(2)
	b := NewBruteForce(2)
	a.Build(pts)
	b.Build(pts[:499]) // drop one point
	queries := workload.GenUniform(20, 2, 1<<20, 2)
	if err := VerifyQueries(a, b, queries, []int{3}, nil); err == nil {
		t.Fatal("expected size mismatch error")
	}
	// Same size, different content.
	c := NewBruteForce(2)
	mut := append([]geom.Point(nil), pts...)
	mut[0] = geom.Pt2(mut[0][0]+1<<19, mut[0][1])
	c.Build(mut)
	if err := VerifyQueries(a, c, queries, []int{500}, nil); err == nil {
		t.Fatal("expected KNN mismatch error")
	}
}

func TestParallelQueryHelpers(t *testing.T) {
	pts := workload.GenUniform(3000, 2, 1<<20, 1)
	b := NewBruteForce(2)
	b.Build(pts)
	queries := workload.GenUniform(100, 2, 1<<20, 2)
	if got := ParallelKNN(b, queries, 5); got != 500 {
		t.Fatalf("ParallelKNN checksum %d, want 500", got)
	}
	boxes := workload.RangeQueries(10, 2, 1<<20, 1.0, 3) // whole universe
	if got := ParallelRangeCount(b, boxes); got != 10*3000 {
		t.Fatalf("ParallelRangeCount %d", got)
	}
	if got := ParallelRangeList(b, boxes); got != 10*3000 {
		t.Fatalf("ParallelRangeList %d", got)
	}
}

func TestOptionsValidate(t *testing.T) {
	opt := DefaultOptions(2, geom.UniverseBox(2, 100))
	opt.Validate() // must not panic
	if opt.SkeletonLevels != 3 {
		t.Fatal("2D lambda should be 3")
	}
	if DefaultOptions(3, geom.UniverseBox(3, 100)).SkeletonLevels != 2 {
		t.Fatal("3D lambda should be 2")
	}
	for _, bad := range []Options{
		{Dims: 4, LeafWrap: 32, Alpha: 0.2, SkeletonLevels: 3},
		{Dims: 2, LeafWrap: 0, Alpha: 0.2, SkeletonLevels: 3},
		{Dims: 2, LeafWrap: 32, Alpha: 0, SkeletonLevels: 3},
		{Dims: 2, LeafWrap: 32, Alpha: 0.2, SkeletonLevels: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Validate(%+v) did not panic", bad)
				}
			}()
			bad.Validate()
		}()
	}
}
