package core

import (
	"repro/internal/geom"
)

// BruteForce is the reference Index: a flat point list with linear-scan
// queries. Every tree package's tests cross-validate against it, and
// cmd/psicheck uses it as the oracle in randomized operation sequences.
// It is exact and obvious, not fast.
type BruteForce struct {
	dims int
	pts  []geom.Point
}

var _ Index = (*BruteForce)(nil)
var _ Replicator = (*BruteForce)(nil)

// NewReplica implements Replicator: the reference index is trivially
// replicable, which lets oracle tests exercise the snapshot-read path.
func (b *BruteForce) NewReplica() Index { return NewBruteForce(b.dims) }

// NewBruteForce returns an empty reference index.
func NewBruteForce(dims int) *BruteForce {
	if dims != 2 && dims != 3 {
		panic("core: BruteForce dims must be 2 or 3")
	}
	return &BruteForce{dims: dims}
}

// Name implements Index.
func (b *BruteForce) Name() string { return "BruteForce" }

// Dims implements Index.
func (b *BruteForce) Dims() int { return b.dims }

// Size implements Index.
func (b *BruteForce) Size() int { return len(b.pts) }

// Build implements Index.
func (b *BruteForce) Build(pts []geom.Point) {
	b.pts = append(b.pts[:0], pts...)
}

// BatchInsert implements Index.
func (b *BruteForce) BatchInsert(pts []geom.Point) {
	b.pts = append(b.pts, pts...)
}

// BatchDelete implements Index: removes one occurrence per requested point.
func (b *BruteForce) BatchDelete(pts []geom.Point) {
	// Count requested deletions per point, then sweep once.
	want := make(map[geom.Point]int, len(pts))
	for _, p := range pts {
		want[p]++
	}
	out := b.pts[:0]
	for _, p := range b.pts {
		if c := want[p]; c > 0 {
			want[p] = c - 1
			continue
		}
		out = append(out, p)
	}
	b.pts = out
}

// KNN implements Index.
func (b *BruteForce) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	h := geom.GetKNNHeap(k)
	for _, p := range b.pts {
		h.Push(p, geom.Dist2(p, q, b.dims))
	}
	dst = h.Append(dst)
	geom.PutKNNHeap(h)
	return dst
}

// RangeCount implements Index.
func (b *BruteForce) RangeCount(box geom.Box) int {
	n := 0
	for _, p := range b.pts {
		if box.Contains(p, b.dims) {
			n++
		}
	}
	return n
}

// RangeList implements Index.
func (b *BruteForce) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	for _, p := range b.pts {
		if box.Contains(p, b.dims) {
			dst = append(dst, p)
		}
	}
	return dst
}

// Points returns the stored points (test helper; do not mutate).
func (b *BruteForce) Points() []geom.Point { return b.pts }

// BatchDiff implements Index.
func (b *BruteForce) BatchDiff(ins, del []geom.Point) {
	b.BatchDelete(del)
	b.BatchInsert(ins)
}
