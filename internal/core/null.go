package core

import "repro/internal/geom"

// NullIndex is a zero-cost Index: batch operations only track the stored
// count and queries return nothing. Wrapping it isolates a serving
// layer's own behavior — the allocation-regression guards and the -exp
// alloc benchmark use it to measure the Store/Collection/Sharded
// machinery without any real tree's update cost.
type NullIndex struct {
	dims int
	n    int
}

var _ Index = (*NullIndex)(nil)
var _ Replicator = (*NullIndex)(nil)

// NewNull returns an empty NullIndex reporting the given dimensionality.
func NewNull(dims int) *NullIndex { return &NullIndex{dims: dims} }

// NewReplica implements Replicator, so the snapshot-mode allocation
// guards can isolate the serving layers over a zero-cost inner index.
func (x *NullIndex) NewReplica() Index { return NewNull(x.dims) }

func (x *NullIndex) Name() string                    { return "Null" }
func (x *NullIndex) Dims() int                       { return x.dims }
func (x *NullIndex) Build(pts []geom.Point)          { x.n = len(pts) }
func (x *NullIndex) BatchInsert(pts []geom.Point)    { x.n += len(pts) }
func (x *NullIndex) BatchDelete(pts []geom.Point)    { x.n -= len(pts) }
func (x *NullIndex) BatchDiff(ins, del []geom.Point) { x.n += len(ins) - len(del) }
func (x *NullIndex) Size() int                       { return x.n }
func (x *NullIndex) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	return dst
}
func (x *NullIndex) RangeCount(box geom.Box) int { return 0 }
func (x *NullIndex) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	return dst
}
