// Package core defines the common contract shared by every spatial index
// in Ψ-Lib/Go (the paper's psi::BaseTree, §F.2): the Index interface with
// batch construction/updates and the standard query suite (k-NN, range
// count, range report), the tuning options of the paper's implementations
// (§C), and a brute-force reference index used as ground truth by the test
// suites of every tree package.
package core

import (
	"fmt"

	"repro/internal/geom"
)

// Index is the uniform interface over all spatial indexes: the P-Orth tree
// and SPaC-trees (this paper), and the Pkd-tree, Zd-tree, CPAM and R-tree
// baselines. All batch operations may run in parallel internally; an Index
// is NOT safe for concurrent mutation, matching the paper's model of
// batch-synchronous updates. Queries never mutate and the Parallel*
// helpers in this package run them concurrently.
//
// Buffer ownership (normative; ARCHITECTURE.md "Buffer ownership" has the
// full rules): an implementation must NOT retain the slices passed to
// Build/BatchInsert/BatchDelete/BatchDiff after the call returns — the
// caller may reuse them immediately, which is what lets the Store,
// Collection and Sharded layers recycle their flush scratch. Symmetrically,
// KNN and RangeList append to the caller's dst (preserving its prefix,
// reusing its backing array when capacity suffices) and must not keep any
// alias to it after returning; the result is the caller's to keep or
// mutate. TestDstAppendContract enforces this for every index.
type Index interface {
	// Name returns the display name used in the experiment tables.
	Name() string
	// Dims returns the dimensionality (2 or 3).
	Dims() int
	// Build replaces the contents with pts (bulk construction).
	Build(pts []geom.Point)
	// BatchInsert adds a batch of points.
	BatchInsert(pts []geom.Point)
	// BatchDelete removes one occurrence per requested point (multiset
	// semantics). Requests with no matching point are ignored.
	BatchDelete(pts []geom.Point)
	// BatchDiff applies a mixed update — the del points leave, the ins
	// points enter — as one logical step (the artifact's BatchDiff(),
	// §F.2). Implementations may fuse the two passes.
	BatchDiff(ins, del []geom.Point)
	// Size returns the number of stored points.
	Size() int
	// KNN appends the k nearest neighbors of q (nearest first) to dst
	// and returns it. Ties at the k-th distance are broken arbitrarily.
	KNN(q geom.Point, k int, dst []geom.Point) []geom.Point
	// RangeCount returns the number of stored points inside box.
	RangeCount(box geom.Box) int
	// RangeList appends the stored points inside box to dst (order
	// unspecified) and returns it.
	RangeList(box geom.Box, dst []geom.Point) []geom.Point
}

// Replicator is the optional capability behind the library's snapshot
// reads (ARCHITECTURE.md "Epochs & snapshot reads"). An index that can
// construct a fresh, empty twin of itself — same dimensionality, same
// universe, same tuning — lets the Store/Collection layers double-buffer
// it: each commit window's BatchDiff is applied to an off-line replica,
// the replica is published through an atomic epoch pointer, and queries
// pin the published version instead of taking a read lock, so a reader
// never waits on a flush.
//
// Snapshot-read contract (normative):
//
//   - NewReplica returns a NEW index holding no points, configured so
//     that replaying the same Build/BatchDiff history on both twins
//     yields the same query answers. It must not share mutable state
//     with the receiver.
//   - The published version is immutable between epochs: a layer only
//     mutates a version after the epoch manager reports it drained, so
//     queries against a pinned version run concurrently with a flush
//     writing the other version without synchronization. This composes
//     with the buffer-ownership rules unchanged — batch slices handed to
//     either twin are still reusable the moment BatchDiff returns.
//   - Every window is applied to both twins (once on commit, once as
//     catch-up at the next flush), so Replicator is worth implementing
//     exactly when diff-apply is cheap — the paper's batch-dynamic
//     property.
//
// Raw trees opt in via WithReplica at construction (psi.go does this for
// every tree constructor); composite indexes like shard.Sharded implement
// the method directly.
type Replicator interface {
	// NewReplica returns a fresh, empty index configured identically to
	// the receiver (the receiver's current contents are NOT copied).
	NewReplica() Index
}

// WithReplica wraps idx so it satisfies Replicator using mk, a
// constructor producing fresh, identically configured instances. The
// wrapper forwards every Index method to idx; replicas made from it are
// themselves wrapped, so a replica can replicate.
func WithReplica(idx Index, mk func() Index) Index {
	return &replicated{Index: idx, mk: mk}
}

type replicated struct {
	Index
	mk func() Index
}

func (r *replicated) NewReplica() Index { return WithReplica(r.mk(), r.mk) }

// Options carries the tuning parameters of §C. The zero value is invalid;
// start from DefaultOptions.
type Options struct {
	// Dims is the dimensionality, 2 or 3.
	Dims int
	// LeafWrap is phi, the leaf size upper bound: 40 for SPaC/CPAM, 32
	// for the others (§C "Parameter Choosing").
	LeafWrap int
	// Alpha is the weight-balance parameter of SPaC/CPAM trees (§C uses
	// 0.2; we default to 0.25, inside the provably joinable BB[alpha]
	// range) or the imbalance ratio of the Pkd-tree (§C: 0.3).
	Alpha float64
	// SkeletonLevels is lambda, the number of tree levels built per
	// sieve round: 3 for 2D and 2 for 3D orth-trees (§C); the Pkd-tree
	// uses 2^lambda-way rounds with lambda 3.
	SkeletonLevels int
	// Universe is the root region for space-partitioning trees. Required
	// for P-Orth/Zd trees (it fixes history independence); ignored by
	// object-partitioning trees.
	Universe geom.Box
}

// DefaultOptions returns the paper's parameter choices for a given
// dimensionality and universe.
func DefaultOptions(dims int, universe geom.Box) Options {
	lambda := 3
	if dims == 3 {
		lambda = 2
	}
	return Options{
		Dims:           dims,
		LeafWrap:       32,
		Alpha:          0.25,
		SkeletonLevels: lambda,
		Universe:       universe,
	}
}

// Validate checks option sanity; constructors call it and panic on
// programmer error (indexes are built from code, not user input).
func (o Options) Validate() {
	if o.Dims != 2 && o.Dims != 3 {
		panic(fmt.Sprintf("core: unsupported Dims %d", o.Dims))
	}
	if o.LeafWrap < 1 {
		panic("core: LeafWrap must be >= 1")
	}
	if o.SkeletonLevels < 1 {
		panic("core: SkeletonLevels must be >= 1")
	}
	if o.Alpha <= 0 || o.Alpha > 0.5 {
		panic("core: Alpha must be in (0, 0.5]")
	}
}
