package core

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestOpScriptSelfConsistent(t *testing.T) {
	// The driver run against a second brute-force oracle must never
	// disagree with itself, across densities and dims.
	for _, side := range []int64{1 << 16, 40} {
		for _, dims := range []int{2, 3} {
			idx := NewBruteForce(dims)
			script := OpScript{Dims: dims, Side: side, Steps: 15, Seed: 7, MaxBatch: 200}
			if err := script.Run(idx); err != nil {
				t.Fatalf("side=%d dims=%d: %v", side, dims, err)
			}
		}
	}
}

// faultyIndex wraps BruteForce and injects one specific defect; the
// driver must catch each class of bug (failure-injection test of the test
// machinery itself).
type faultyIndex struct {
	*BruteForce
	fault string
}

func (f *faultyIndex) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	out := f.BruteForce.KNN(q, k, dst)
	if f.fault == "knn-drop" && len(out) > 0 {
		out = out[:len(out)-1]
	}
	if f.fault == "knn-wrong" && len(out) > 1 {
		out[0] = geom.Pt2(out[0][0]+1<<20, out[0][1])
	}
	return out
}

func (f *faultyIndex) RangeCount(b geom.Box) int {
	n := f.BruteForce.RangeCount(b)
	if f.fault == "count-off" {
		n++
	}
	return n
}

func (f *faultyIndex) RangeList(b geom.Box, dst []geom.Point) []geom.Point {
	out := f.BruteForce.RangeList(b, dst)
	if f.fault == "list-drop" && len(out) > 0 {
		out = out[:len(out)-1]
	}
	if f.fault == "list-swap" && len(out) > 0 {
		out[0] = geom.Pt2(out[0][0]+1, out[0][1])
	}
	return out
}

func (f *faultyIndex) BatchInsert(pts []geom.Point) {
	if f.fault == "size-drift" && len(pts) > 0 {
		pts = pts[1:]
	}
	f.BruteForce.BatchInsert(pts)
}

func TestOpScriptDetectsInjectedFaults(t *testing.T) {
	faults := map[string]string{
		"knn-drop":   "returned",
		"knn-wrong":  "dist2",
		"count-off":  "RangeCount",
		"list-drop":  "RangeList",
		"list-swap":  "RangeList element",
		"size-drift": "size",
	}
	for fault, wantMsg := range faults {
		idx := &faultyIndex{BruteForce: NewBruteForce(2), fault: fault}
		script := OpScript{Dims: 2, Side: 1 << 16, Steps: 12, Seed: 3, MaxBatch: 150}
		err := script.Run(idx)
		if err == nil {
			t.Errorf("fault %q not detected", fault)
			continue
		}
		if !strings.Contains(err.Error(), wantMsg) {
			t.Errorf("fault %q: error %q does not mention %q", fault, err, wantMsg)
		}
	}
}

func TestOpScriptValidateHook(t *testing.T) {
	calls := 0
	idx := NewBruteForce(2)
	script := OpScript{
		Dims: 2, Side: 1 << 10, Steps: 5, Seed: 1, MaxBatch: 50,
		Validate: func() error { calls++; return nil },
	}
	if err := script.Run(idx); err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Fatalf("Validate called %d times, want 5", calls)
	}
}
