package store

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sfc"
	"repro/internal/spactree"
	"repro/internal/workload"
)

const side = int64(1 << 20)

func universe() geom.Box { return geom.UniverseBox(2, side) }

// newTestIndex returns the index the stress tests wrap: a SPaC-H tree, the
// paper's recommended default for dynamic workloads.
func newTestIndex() core.Index { return spactree.NewSPaC(sfc.Hilbert, 2, universe()) }

// uniquePoints returns n distinct points drawn from the given seed's
// uniform stream. Distinctness lets the stress tests compute the final
// multiset independently of operation interleaving.
func uniquePoints(n int, seed int64) []geom.Point {
	seen := make(map[geom.Point]bool, n)
	out := make([]geom.Point, 0, n)
	for chunk := int64(0); len(out) < n; chunk++ {
		for _, p := range workload.GenUniform(2*n, 2, side, seed+chunk) {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
				if len(out) == n {
					break
				}
			}
		}
	}
	return out
}

func TestVisibilityAtFlush(t *testing.T) {
	s := New(core.NewBruteForce(2), Options{MaxBatch: 1 << 20})
	defer s.Close()
	p := geom.Pt2(7, 7)
	s.Insert(p)
	if got := s.RangeCount(geom.BoxOf(p, p)); got != 0 {
		t.Fatalf("pending insert visible before flush: count %d", got)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	if n := s.Flush(); n != 1 {
		t.Fatalf("Flush applied %d, want 1", n)
	}
	if got := s.RangeCount(geom.BoxOf(p, p)); got != 1 {
		t.Fatalf("flushed insert invisible: count %d", got)
	}
	// A flush behaves like sequential execution of the window: inserting
	// and then deleting an absent point nets to nothing...
	q := geom.Pt2(9, 9)
	s.Insert(q)
	s.Delete(q)
	s.Flush()
	if got := s.RangeCount(geom.BoxOf(q, q)); got != 0 {
		t.Fatalf("insert then delete of same point in one window: count %d, want 0", got)
	}
	// ...while the reverse order leaves the point stored: the no-op delete
	// of an absent point must not consume the insert enqueued after it.
	s.Delete(q)
	s.Insert(q)
	s.Flush()
	if got := s.RangeCount(geom.BoxOf(q, q)); got != 1 {
		t.Fatalf("delete then insert of same point in one window: count %d, want 1", got)
	}
}

// TestMoveChainInOneWindow is the serving regression that motivated
// pair cancellation: a vehicle moved twice before a flush (delete p0,
// insert p1, delete p1, insert p2) must net to one relocation. Raw
// delete-before-insert application would miss the delete of p1 (not yet
// stored when the batch's deletes run) and grow the index.
func TestMoveChainInOneWindow(t *testing.T) {
	s := New(core.NewBruteForce(2), Options{MaxBatch: 1 << 20})
	defer s.Close()
	p0, p1, p2 := geom.Pt2(1, 1), geom.Pt2(2, 2), geom.Pt2(3, 3)
	s.Build([]geom.Point{p0})
	s.Delete(p0)
	s.Insert(p1)
	s.Delete(p1)
	s.Insert(p2)
	s.Flush()
	if got := s.Size(); got != 1 {
		t.Fatalf("size after in-window move chain: %d, want 1", got)
	}
	if got := s.RangeCount(geom.BoxOf(p2, p2)); got != 1 {
		t.Fatalf("final position missing: count %d", got)
	}
	for _, gone := range []geom.Point{p0, p1} {
		if got := s.RangeCount(geom.BoxOf(gone, gone)); got != 0 {
			t.Fatalf("stale position %v still stored", gone)
		}
	}
	if st := s.Stats(); st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1 (the p1 pair)", st.Cancelled)
	}
}

func TestMaxBatchTriggersFlush(t *testing.T) {
	s := New(core.NewBruteForce(2), Options{MaxBatch: 8})
	defer s.Close()
	pts := uniquePoints(8, 1)
	for _, p := range pts {
		s.Insert(p)
	}
	if st := s.Stats(); st.Flushes != 1 || st.Inserted != 8 || st.Pending != 0 {
		t.Fatalf("after filling one batch: %+v", st)
	}
}

func TestBackgroundFlusher(t *testing.T) {
	s := New(core.NewBruteForce(2), Options{MaxBatch: 1 << 20, FlushInterval: time.Millisecond})
	defer s.Close()
	p := geom.Pt2(3, 4)
	s.Insert(p)
	deadline := time.Now().Add(5 * time.Second)
	for s.RangeCount(geom.BoxOf(p, p)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never applied the pending insert")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBuildDiscardsPending(t *testing.T) {
	s := New(core.NewBruteForce(2), Options{MaxBatch: 1 << 20})
	defer s.Close()
	s.Insert(geom.Pt2(1, 1))
	pts := uniquePoints(100, 2)
	s.Build(pts)
	if s.Pending() != 0 {
		t.Fatalf("Build left %d pending mutations", s.Pending())
	}
	if got := s.Size(); got != len(pts) {
		t.Fatalf("Size = %d, want %d", got, len(pts))
	}
	if got := s.RangeCount(geom.BoxOf(geom.Pt2(1, 1), geom.Pt2(1, 1))); got != 0 {
		t.Fatal("pre-Build pending insert survived the rebuild")
	}
}

// TestFlushExactlyOnce hammers one Store with concurrent inserts of
// duplicate points, explicit flushes, and threshold flushes racing each
// other; every enqueued insert must be applied by exactly one flush.
func TestFlushExactlyOnce(t *testing.T) {
	const (
		writers = 8
		perG    = 400
	)
	p := geom.Pt2(123, 456)
	s := New(core.NewBruteForce(2), Options{MaxBatch: 64})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Insert(p)
				if i%97 == 0 {
					s.Flush()
				}
			}
		}()
	}
	wg.Wait()
	s.Close()
	want := writers * perG
	if got := s.RangeCount(geom.BoxOf(p, p)); got != want {
		t.Fatalf("duplicate point applied %d times, want exactly %d", got, want)
	}
	if st := s.Stats(); st.Inserted != uint64(want) || st.Pending != 0 {
		t.Fatalf("stats after close: %+v", st)
	}
}

// TestConcurrentStressAgainstOracle is the headline race/correctness test:
// concurrent mutators and queriers drive a Store over a SPaC-H tree.
// Deletions target a reserved slice of the base data that is never
// reinserted and insertions add fresh distinct points, so the final
// multiset is interleaving-independent and a BruteForce oracle can verify
// the full query suite exactly.
func TestConcurrentStressAgainstOracle(t *testing.T) {
	const (
		nBase    = 8000
		writers  = 4
		queriers = 4
		perG     = 1000 // inserts and deletes per writer
	)
	all := uniquePoints(nBase+writers*perG, 3)
	base := all[:nBase]
	fresh := all[nBase:]          // inserted during the storm
	doomed := base[:writers*perG] // deleted during the storm
	idx := newTestIndex()
	idx.Build(base)
	s := New(idx, Options{MaxBatch: 256, FlushInterval: 500 * time.Microsecond})

	queries := workload.GenUniform(32, 2, side, 101)
	boxes := workload.RangeQueries(12, 2, side, 0.01, 103)
	var wgW, wgQ sync.WaitGroup
	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			ins := fresh[w*perG : (w+1)*perG]
			del := doomed[w*perG : (w+1)*perG]
			for i := 0; i < perG; i++ {
				s.Insert(ins[i])
				s.Delete(del[i])
				if i%250 == 0 {
					s.Flush()
				}
			}
		}(w)
	}
	stopQ := make(chan struct{})
	for q := 0; q < queriers; q++ {
		wgQ.Add(1)
		go func(q int) {
			defer wgQ.Done()
			for i := 0; ; i++ {
				select {
				case <-stopQ:
					return
				default:
				}
				switch (q + i) % 3 {
				case 0:
					if got := s.KNN(queries[i%len(queries)], 10, nil); len(got) != 10 {
						t.Errorf("KNN returned %d of 10 neighbors", len(got))
						return
					}
				case 1:
					// The live size never exceeds base + all inserts.
					if got := s.RangeCount(universe()); got > nBase+writers*perG {
						t.Errorf("RangeCount(universe) = %d, exceeds upper bound %d",
							got, nBase+writers*perG)
						return
					}
				case 2:
					s.RangeList(boxes[i%len(boxes)], nil)
				}
			}
		}(q)
	}
	wgW.Wait()
	close(stopQ)
	wgQ.Wait()
	s.Close()

	oracle := core.NewBruteForce(2)
	oracle.Build(base[writers*perG:]) // survivors of the base set
	oracle.BatchInsert(fresh)
	if err := core.VerifyQueries(s, oracle, queries, []int{1, 10, 50}, boxes); err != nil {
		t.Fatal(err)
	}
}

// TestOracleAgreementAfterEveryFlush drives one mutator through rounds of
// mixed batches with an explicit flush per round, applying the identical
// batch to a BruteForce oracle, and verifies the full query suite after
// every flush — all while a pool of queriers keeps reading.
func TestOracleAgreementAfterEveryFlush(t *testing.T) {
	const rounds = 12
	all := uniquePoints(6000+rounds*400, 5)
	base := all[:6000]
	fresh := all[6000:]
	idx := newTestIndex()
	idx.Build(base)
	s := New(idx, Options{MaxBatch: 1 << 20})
	defer s.Close()
	oracle := core.NewBruteForce(2)
	oracle.Build(base)

	queries := workload.GenUniform(20, 2, side, 201)
	boxes := workload.RangeQueries(10, 2, side, 0.02, 203)
	stopQ := make(chan struct{})
	var wg sync.WaitGroup
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopQ:
					return
				default:
					s.KNN(queries[i%len(queries)], 5, nil)
					s.RangeCount(boxes[i%len(boxes)])
				}
			}
		}()
	}
	del := base
	for r := 0; r < rounds; r++ {
		ins := fresh[r*400 : (r+1)*400]
		d := del[r*300 : r*300+300]
		s.BatchInsert(ins)
		s.BatchDelete(d)
		s.Flush()
		oracle.BatchDiff(ins, d)
		if err := core.VerifyQueries(s, oracle, queries, []int{1, 10}, boxes); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	close(stopQ)
	wg.Wait()
}

// TestSequentialEquivalence pins the flush contract: any single-goroutine
// op sequence, flushed at arbitrary points, must leave the Store identical
// to executing the ops one at a time. A 4x4 point domain makes same-point
// insert/delete collisions (the netting edge cases) constant occurrences.
func TestSequentialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	domain := make([]geom.Point, 0, 16)
	for x := int64(0); x < 4; x++ {
		for y := int64(0); y < 4; y++ {
			domain = append(domain, geom.Pt2(x, y))
		}
	}
	for trial := 0; trial < 50; trial++ {
		s := New(core.NewBruteForce(2), Options{MaxBatch: 1 << 20})
		oracle := core.NewBruteForce(2)
		for i := 0; i < 200; i++ {
			p := domain[rng.Intn(len(domain))]
			if rng.Intn(2) == 0 {
				s.Insert(p)
				oracle.BatchInsert([]geom.Point{p})
			} else {
				s.Delete(p)
				oracle.BatchDelete([]geom.Point{p})
			}
			if rng.Intn(10) == 0 {
				s.Flush()
			}
		}
		s.Close()
		for _, p := range domain {
			box := geom.BoxOf(p, p)
			if got, want := s.RangeCount(box), oracle.RangeCount(box); got != want {
				t.Fatalf("trial %d: point %v stored %d times, sequential execution gives %d",
					trial, p, got, want)
			}
		}
	}
}

func TestStoreImplementsIndex(t *testing.T) {
	s := New(core.NewBruteForce(2), Options{})
	defer s.Close()
	var i core.Index = s
	if i.Name() != "Store(BruteForce)" {
		t.Fatalf("Name = %q", i.Name())
	}
	if i.Dims() != 2 {
		t.Fatalf("Dims = %d", i.Dims())
	}
	i.BatchDiff([]geom.Point{geom.Pt2(5, 5)}, nil)
	if i.Size() != 1 {
		t.Fatalf("Size = %d", i.Size())
	}
}

// TestFlushZeroAllocWarm is the allocation-regression guard for the
// tentpole scratch-reuse work: a warm Store flushes with zero
// steady-state allocations of its own — the op log double-buffers, the
// netting buffers and maps are recycled. The inner index is a null stub
// so only the Store layer is measured (real trees allocate during their
// own batch updates, which is out of scope here).
func TestFlushZeroAllocWarm(t *testing.T) {
	pts := uniquePoints(512, 7)
	t.Run("single-kind windows", func(t *testing.T) {
		s := New(core.NewNull(2), Options{MaxBatch: 1 << 20, Obs: obs.New()})
		window := func() {
			s.BatchInsert(pts)
			s.Flush()
			s.BatchDelete(pts)
			s.Flush()
		}
		window() // warm up: buffers grow to the high-water mark
		if allocs := testing.AllocsPerRun(50, window); allocs != 0 {
			t.Fatalf("warm single-kind flush allocates %.2f/op, want 0", allocs)
		}
	})
	t.Run("netted mixed window", func(t *testing.T) {
		s := New(core.NewNull(2), Options{MaxBatch: 1 << 20, Obs: obs.New()})
		window := func() {
			for _, p := range pts {
				s.Insert(p)
				s.Delete(p)
			}
			s.Flush()
		}
		window()
		if allocs := testing.AllocsPerRun(50, window); allocs != 0 {
			t.Fatalf("warm netted flush allocates %.2f/op, want 0", allocs)
		}
	})
}

// TestDefaultMaxBatchMatchesGrain pins the documented linkage: the
// DefaultMaxBatch doc promises it matches parallel.DefaultGrain (the
// size below which the indexes' batch operations stop forking), so a
// change to either constant must revisit the other.
func TestDefaultMaxBatchMatchesGrain(t *testing.T) {
	if DefaultMaxBatch != parallel.DefaultGrain {
		t.Fatalf("DefaultMaxBatch (%d) no longer matches parallel.DefaultGrain (%d); update the constant or its comment",
			DefaultMaxBatch, parallel.DefaultGrain)
	}
}
