package store

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

// The snapshot-read (epoch-pinned) variant of the Store test suite: same
// visibility contract as locked mode, readers never wait behind a flush,
// zero steady-state allocations, and epoch counters that track the flush
// history.

func snapOptions() Options {
	return Options{MaxBatch: 1 << 20, Snapshot: func() core.Index { return core.NewBruteForce(2) }}
}

// TestSnapshotSequentialEquivalence re-runs the flush-contract
// differential with snapshot reads enabled: arbitrary op sequences with
// arbitrary flush points must be observationally identical to one-at-a-
// time execution, epoch pointer and twin catch-up notwithstanding.
func TestSnapshotSequentialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	domain := make([]geom.Point, 0, 16)
	for x := int64(0); x < 4; x++ {
		for y := int64(0); y < 4; y++ {
			domain = append(domain, geom.Pt2(x, y))
		}
	}
	for trial := 0; trial < 50; trial++ {
		s := New(core.NewBruteForce(2), snapOptions())
		oracle := core.NewBruteForce(2)
		for i := 0; i < 200; i++ {
			p := domain[rng.Intn(len(domain))]
			if rng.Intn(2) == 0 {
				s.Insert(p)
				oracle.BatchInsert([]geom.Point{p})
			} else {
				s.Delete(p)
				oracle.BatchDelete([]geom.Point{p})
			}
			if rng.Intn(10) == 0 {
				s.Flush()
			}
		}
		s.Close()
		for _, p := range domain {
			box := geom.BoxOf(p, p)
			if got, want := s.RangeCount(box), oracle.RangeCount(box); got != want {
				t.Fatalf("trial %d: point %v stored %d times, sequential execution gives %d",
					trial, p, got, want)
			}
		}
	}
}

// gate blocks BatchDiff on an index until released, so tests can hold a
// flush open mid-apply and probe what readers can still do.
type gate struct {
	core.Index
	armed   chan struct{}
	entered chan struct{}
	release chan struct{}
}

func newGate(inner core.Index) *gate {
	return &gate{
		Index:   inner,
		armed:   make(chan struct{}),
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
}

func (g *gate) BatchDiff(ins, del []geom.Point) {
	select {
	case <-g.armed:
		select {
		case g.entered <- struct{}{}:
		default:
		}
		<-g.release
	default:
	}
	g.Index.BatchDiff(ins, del)
}

// TestSnapshotReadDuringFlushDoesNotStall holds a flush open inside the
// standby twin's BatchDiff and requires KNN, RangeCount, RangeList, and
// Stats to complete against the still-published previous epoch.
func TestSnapshotReadDuringFlushDoesNotStall(t *testing.T) {
	g := newGate(core.NewBruteForce(2))
	s := New(g, Options{
		MaxBatch: 1 << 20,
		Snapshot: func() core.Index { return newGate(core.NewBruteForce(2)) },
	})
	defer s.Close()
	p0 := geom.Pt2(10, 10)
	s.Insert(p0)
	s.Flush()

	close(g.armed) // g is the standby after the first flush; its next BatchDiff blocks
	flushed := make(chan struct{})
	go func() {
		s.Insert(geom.Pt2(20, 20))
		s.Flush()
		close(flushed)
	}()
	<-g.entered

	done := make(chan struct{})
	go func() {
		defer close(done)
		if got := s.KNN(p0, 1, nil); len(got) != 1 || got[0] != p0 {
			t.Errorf("KNN during flush = %v, want [%v]", got, p0)
		}
		if got := s.RangeCount(universe()); got != 1 {
			t.Errorf("RangeCount during flush = %d, want 1 (previous epoch)", got)
		}
		if got := s.RangeList(universe(), nil); len(got) != 1 {
			t.Errorf("RangeList during flush = %v, want one point", got)
		}
		if st := s.Stats(); st.Epoch != 1 {
			t.Errorf("Stats during flush = %+v, want published epoch 1", st)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("reads stalled behind the held-open flush")
	}
	close(g.release)
	select {
	case <-flushed:
	case <-time.After(10 * time.Second):
		t.Fatal("flush never completed after release")
	}
	if got := s.RangeCount(universe()); got != 2 {
		t.Fatalf("RangeCount after flush = %d, want 2", got)
	}
}

// TestSnapshotFlushZeroAllocWarm extends the zero-alloc flush guard to
// snapshot mode: warm windows — catch-up, apply, window save, publish,
// drain — allocate nothing; the two Versions and the saved-window
// buffers are permanent.
func TestSnapshotFlushZeroAllocWarm(t *testing.T) {
	pts := uniquePoints(512, 7)
	s := New(core.NewNull(2), Options{
		MaxBatch: 1 << 20,
		Snapshot: func() core.Index { return core.NewNull(2) },
		Obs:      obs.New(),
	})
	window := func() {
		s.BatchInsert(pts)
		s.Flush()
		s.BatchDelete(pts)
		s.Flush()
	}
	window()
	window() // both twins warmed through one full publish cycle each
	if allocs := testing.AllocsPerRun(50, window); allocs != 0 {
		t.Fatalf("warm snapshot flush allocates %.2f/op, want 0", allocs)
	}
}

// TestSnapshotQueryZeroAllocWarm pins the epoch-pinned query path at
// zero steady-state allocations with reused result buffers.
func TestSnapshotQueryZeroAllocWarm(t *testing.T) {
	pts := uniquePoints(256, 9)
	s := New(core.NewBruteForce(2), snapOptions())
	defer s.Close()
	s.BatchInsert(pts)
	s.Flush()
	q := geom.Pt2(side/2, side/2)
	box := geom.BoxOf(geom.Pt2(0, 0), geom.Pt2(side/4, side/4))
	var dst []geom.Point
	warm := func() {
		dst = s.KNN(q, 10, dst[:0])
		s.RangeCount(box)
		dst = s.RangeList(box, dst[:0])
	}
	warm()
	if allocs := testing.AllocsPerRun(100, warm); allocs != 0 {
		t.Fatalf("epoch-pinned query path allocates %.2f/op, want 0", allocs)
	}
}

// TestSnapshotBuildAndEpochCounters checks Build's whole-epoch swap and
// the Stats counter contract in snapshot mode.
func TestSnapshotBuildAndEpochCounters(t *testing.T) {
	s := New(core.NewBruteForce(2), snapOptions())
	defer s.Close()
	st := s.Stats()
	if st.Epoch != 0 || st.Versions != 2 || st.RetireLag != 0 {
		t.Fatalf("initial stats: %+v, want epoch 0, 2 versions, lag 0", st)
	}
	pts := uniquePoints(100, 3)
	s.Build(pts)
	if got := s.Size(); got != len(pts) {
		t.Fatalf("Size after Build = %d, want %d", got, len(pts))
	}
	if st := s.Stats(); st.Epoch != 1 {
		t.Fatalf("Build published epoch %d, want 1", st.Epoch)
	}
	s.Insert(geom.Pt2(1, 2))
	s.Flush()
	if st := s.Stats(); st.Epoch != 2 || st.RetireLag != 0 {
		t.Fatalf("stats after flush: %+v, want epoch 2, lag 0", st)
	}
	// Build after incremental updates starts the next epoch from the new
	// contents on both twins: flush a further window and re-check.
	s.Build(pts[:10])
	s.Insert(geom.Pt2(3, 4))
	s.Flush()
	if got := s.Size(); got != 11 {
		t.Fatalf("Size after rebuild+insert = %d, want 11", got)
	}
}

// TestSnapshotRequiresEmptyIndexes documents the construction contract:
// snapshot mode panics when either twin starts non-empty.
func TestSnapshotRequiresEmptyIndexes(t *testing.T) {
	nonEmpty := func() core.Index {
		idx := core.NewBruteForce(2)
		idx.Build([]geom.Point{geom.Pt2(1, 1)})
		return idx
	}
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic, got none", name)
			}
		}()
		f()
	}
	assertPanics("non-empty inner", func() {
		New(nonEmpty(), Options{Snapshot: func() core.Index { return core.NewBruteForce(2) }})
	})
	assertPanics("non-empty twin", func() {
		New(core.NewBruteForce(2), Options{Snapshot: nonEmpty})
	})
}
