package store

import (
	"repro/internal/obs"
)

// storeMetrics is the Store's observability hook set, created once in
// New when Options.Obs is given. The exposed counters read the Store's
// own atomics through CounterFuncs, so flush accounting costs nothing
// extra; span is the persistent flush-span scratch (guarded by flushMu)
// that keeps span recording allocation-free.
type storeMetrics struct {
	trace    *obs.FlushTrace
	flushDur *obs.Hist
	span     obs.FlushSpan
}

func newStoreMetrics(r *obs.Registry, s *Store) *storeMetrics {
	layer := obs.Label{Key: "layer", Value: "store"}
	r.CounterFunc("psi_flush_total",
		"Flush windows applied to the index.",
		s.flushes.Load, layer)
	r.CounterFunc("psi_flush_ops_raw_total",
		"Mutations entering flush windows before netting.",
		s.rawOps.Load, layer)
	r.CounterFunc("psi_flush_ops_netted_total",
		"Index mutations surviving netting (applied inserts plus deletes).",
		func() uint64 { return s.inserted.Load() + s.deleted.Load() }, layer)
	r.CounterFunc("psi_flush_ops_cancelled_total",
		"Insert/delete pairs netted out before reaching the index.",
		s.cancelled.Load, layer)
	r.GaugeFunc("psi_epoch",
		"Published snapshot epoch (0 in locked mode).",
		func() float64 { return float64(s.snap.mgr.Epoch()) }, layer)
	r.GaugeFunc("psi_epoch_retire_lag",
		"Published epochs whose displaced version has not drained.",
		func() float64 { return float64(s.snap.mgr.RetireLag()) }, layer)
	return &storeMetrics{
		trace: r.FlushTrace(),
		flushDur: r.Histogram("psi_flush_duration_ns",
			"Flush wall time in nanoseconds, summed over pipeline stages.",
			layer),
	}
}
