// Package store implements psi.Store, a concurrent batch-coalescing
// front-end over any core.Index. The paper's indexes are batch-synchronous:
// batch updates parallelize internally but the caller must serialize
// mutation (core.Index: "NOT safe for concurrent mutation"). Store removes
// that caveat at the API boundary. Many goroutines enqueue Insert/Delete
// requests concurrently; Store coalesces them into batches and applies each
// batch with a single BatchDiff under a write lock, so the paper's parallel
// batch-update machinery is amortized across callers instead of being
// driven one mutation at a time. Queries always observe a consistent
// view: either all of a flushed batch or none of it, never a half-applied
// update. In the default locked mode they share a read lock with the
// flush writer; with Options.Snapshot set the Store double-buffers the
// index through an epoch manager instead (internal/epoch), and queries
// pin the published version — wait-free against even the largest commit
// window (ARCHITECTURE.md "Epochs & snapshot reads").
//
// Visibility contract: a mutation becomes visible to queries atomically at
// the flush that applies it — on the enqueue that fills the batch to
// MaxBatch, at the next FlushInterval tick, or at an explicit Flush. A
// flush has the same net effect as executing the window's mutations
// sequentially in enqueue order: pending mutations are kept in one
// ordered log, and at flush each delete cancels against one *preceding*
// unmatched pending insert of the same point when one exists — otherwise
// it passes through to the index's delete batch, which applies before the
// surviving inserts. This order-aware netting is what makes coalescing
// transparent: a move chain (delete p0, insert p1, delete p1, insert p2)
// nets to {delete p0, insert p2} even when the whole chain lands in one
// window, and a delete enqueued before any insert of its point never
// consumes that later insert. Enqueue order is the order appends take the
// pending lock, which is consistent with every goroutine's program order.
//
// Scaling composition: a Store's flush throughput is bounded by one
// index's batch speed. Wrapping a shard.Sharded (Store over Sharded)
// keeps this package's coalescing and whole-batch visibility while each
// flush fans out across the shards in parallel — the recommended
// high-volume serving stack (README "Scaling out").
package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/geom"
	"repro/internal/obs"
)

// DefaultMaxBatch is the coalescing threshold used when Options.MaxBatch
// is unset: the pending-mutation count at which the enqueuing goroutine
// flushes synchronously. The default matches parallel.DefaultGrain, the
// size below which the indexes' batch operations stop forking.
const DefaultMaxBatch = 1024

// Options tunes a Store. The zero value is usable: DefaultMaxBatch
// coalescing, no background flusher.
type Options struct {
	// MaxBatch is the pending-mutation count that triggers a synchronous
	// flush by the enqueuing goroutine (built-in backpressure: the caller
	// that fills the batch pays for applying it). <= 0 selects
	// DefaultMaxBatch.
	MaxBatch int
	// FlushInterval, when positive, starts a background goroutine that
	// flushes pending mutations every interval, bounding the staleness of
	// the queried view under light write traffic. Stop it with Close.
	FlushInterval time.Duration
	// DisableScratch turns off the flush-path buffer recycling, so every
	// flush allocates a fresh op log and netting buffers (the pre-reuse
	// behavior). It exists so -exp alloc can measure the before/after of
	// scratch reuse; production configurations leave it false.
	DisableScratch bool
	// Snapshot, when set, switches the Store to epoch-pinned snapshot
	// reads: it must return a fresh, EMPTY index configured identically
	// to the wrapped one (core.Replicator semantics — most callers pass
	// the same constructor they built idx with). The Store then keeps two
	// versions of the index, applies every committed window to both (the
	// off-line one first), publishes through an atomic epoch pointer, and
	// queries pin the published version instead of taking the read lock —
	// a reader never waits on a flush, no matter how large the window.
	// The wrapped index must be empty at New. Leave nil for the classic
	// single-copy RWMutex mode.
	Snapshot func() core.Index
	// Obs, when set, registers the Store's metrics (flush counters, flush
	// duration histogram, epoch gauges, all labeled layer="store") and
	// records a flush-pipeline span per flush into the registry's trace
	// ring. Recording is atomics into preallocated storage — the
	// zero-alloc flush guarantee holds with a live registry. Leave nil to
	// pay nothing.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	return o
}

// Stats is a snapshot of a Store's lifetime counters. It is assembled
// from atomics and the pending lock only — never the writer lock — so
// sampling it during a large flush does not block.
type Stats struct {
	Flushes   uint64 // batches applied to the index
	Inserted  uint64 // insert requests applied by those batches
	Deleted   uint64 // delete requests applied by those batches
	Cancelled uint64 // insert/delete pairs netted out before applying
	Pending   int    // mutations enqueued but not yet flushed
	Epoch     uint64 // published snapshot epoch (0 in locked mode)
	Versions  int    // live index versions: 2 in snapshot mode, 1 locked
	RetireLag uint64 // published epochs whose displaced version has not drained
}

// Store wraps a core.Index for safe concurrent use. Create one with New;
// the zero value is not usable. Store itself implements core.Index, so it
// is a drop-in replacement anywhere an index is consumed — with the added
// guarantee that every method may be called from any number of goroutines.
type Store struct {
	opts Options
	idx  core.Index

	// pend guards the coalescing log. It is held only for appends and
	// swaps — never while a batch is applied — so enqueueing stays cheap
	// under contention. The log is ordered: netting at flush time needs to
	// know whether a delete preceded or followed an insert of its point.
	pend struct {
		sync.Mutex
		ops []pendOp
	}

	// flushMu serializes flushes: batches are swapped out and applied in a
	// single order, so the index always reflects a prefix of the enqueue
	// history. rw guards the wrapped index: queries share read locks,
	// batch application takes the write lock.
	flushMu sync.Mutex
	rw      sync.RWMutex

	// scratch is the flush-path buffer set, guarded by flushMu. The op
	// log double-buffers through spare: each flush swaps the live log out
	// and hands the previous window's (emptied) buffer back to the
	// enqueuers, so a warm Store flushes with zero allocations.
	scratch flushScratch

	// snap is the snapshot-read state, active when Options.Snapshot is
	// set: the epoch manager publishing the current version, the standby
	// twin the next flush writes, and a copy of the previously committed
	// window (guarded by flushMu) replayed on the standby as catch-up
	// before the new window applies — both twins see the same history,
	// one window apart. The two Version structs and the saved buffers
	// live for the Store's lifetime, preserving the zero-alloc flush.
	snap struct {
		enabled            bool
		mgr                epoch.Manager[core.Index]
		standby            *epoch.Version[core.Index]
		savedIns, savedDel []geom.Point
	}

	flushes   atomic.Uint64
	inserted  atomic.Uint64
	deleted   atomic.Uint64
	cancelled atomic.Uint64
	rawOps    atomic.Uint64

	// met is the observability hook set, nil unless Options.Obs was
	// given. met.span is the persistent flush-span scratch, guarded by
	// flushMu like the rest of the flush state, so recording a span never
	// allocates.
	met *storeMetrics

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// pendOp is one logged mutation request.
type pendOp struct {
	p   geom.Point
	del bool
}

var _ core.Index = (*Store)(nil)

// New wraps idx in a Store. The Store takes ownership: the caller must not
// touch idx directly afterwards. If opts.FlushInterval is positive the
// background flusher starts immediately; pair New with Close to stop it.
func New(idx core.Index, opts Options) *Store {
	s := &Store{opts: opts.withDefaults(), idx: idx, stop: make(chan struct{})}
	if s.opts.Snapshot != nil {
		if idx.Size() != 0 {
			panic("store: Options.Snapshot requires an initially empty index")
		}
		mirror := s.opts.Snapshot()
		if mirror == nil || mirror.Size() != 0 {
			panic("store: Options.Snapshot must return a fresh, empty index")
		}
		s.snap.enabled = true
		s.snap.mgr.Init(epoch.NewVersion(idx))
		s.snap.standby = epoch.NewVersion(mirror)
	}
	if s.opts.Obs != nil {
		s.met = newStoreMetrics(s.opts.Obs, s)
	}
	if s.opts.FlushInterval > 0 {
		s.wg.Add(1)
		go s.flushLoop()
	}
	return s
}

func (s *Store) flushLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Flush()
		case <-s.stop:
			return
		}
	}
}

// Close stops the background flusher (if any) and applies all pending
// mutations. The Store remains usable after Close — only the periodic
// flushing ends. Close is idempotent.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.wg.Wait()
	})
	s.Flush()
}

// Name implements core.Index.
func (s *Store) Name() string { return fmt.Sprintf("Store(%s)", s.idx.Name()) }

// Dims implements core.Index.
func (s *Store) Dims() int { return s.idx.Dims() }

// Insert enqueues one point for insertion.
func (s *Store) Insert(p geom.Point) { s.enqueue(p, false) }

// Delete enqueues the removal of one occurrence of p. As with
// core.Index.BatchDelete, a request matching no stored point is ignored
// when its batch applies.
func (s *Store) Delete(p geom.Point) { s.enqueue(p, true) }

func (s *Store) enqueue(p geom.Point, del bool) {
	s.pend.Lock()
	s.pend.ops = append(s.pend.ops, pendOp{p: p, del: del})
	full := len(s.pend.ops) >= s.opts.MaxBatch
	s.pend.Unlock()
	if full {
		s.Flush()
	}
}

// BatchInsert implements core.Index: the whole batch is enqueued as a unit
// and will be applied by a single flush.
func (s *Store) BatchInsert(pts []geom.Point) { s.enqueueBatch(pts, nil) }

// BatchDelete implements core.Index.
func (s *Store) BatchDelete(pts []geom.Point) { s.enqueueBatch(nil, pts) }

// BatchDiff implements core.Index.
func (s *Store) BatchDiff(ins, del []geom.Point) { s.enqueueBatch(ins, del) }

// enqueueBatch logs the deletes before the inserts, matching the
// core.Index BatchDiff contract ("the del points leave, the ins points
// enter") for a same-call overlap.
func (s *Store) enqueueBatch(ins, del []geom.Point) {
	if len(ins) == 0 && len(del) == 0 {
		return
	}
	s.pend.Lock()
	for _, p := range del {
		s.pend.ops = append(s.pend.ops, pendOp{p: p, del: true})
	}
	for _, p := range ins {
		s.pend.ops = append(s.pend.ops, pendOp{p: p})
	}
	full := len(s.pend.ops) >= s.opts.MaxBatch
	s.pend.Unlock()
	if full {
		s.Flush()
	}
}

// Flush applies every pending mutation as one batch and returns the number
// applied. Each enqueued mutation is applied by exactly one flush: the
// buffers are swapped out under the pending lock, so concurrent flushes
// and enqueues never double-apply or drop a request. Flush is a
// synchronization barrier — on return, every mutation enqueued before the
// call is visible to queries.
func (s *Store) Flush() int {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	sc := &s.scratch
	if s.opts.DisableScratch {
		sc = new(flushScratch)
	}
	s.pend.Lock()
	if len(s.pend.ops) == 0 {
		s.pend.Unlock()
		return 0
	}
	ops := s.pend.ops
	// Hand the previous window's emptied buffer to the enqueuers: the op
	// log double-buffers instead of re-growing from nil every window.
	s.pend.ops = sc.spare
	sc.spare = nil
	s.pend.Unlock()
	m := s.met
	var clk time.Time
	if m != nil {
		clk = time.Now()
		m.span = obs.FlushSpan{Layer: "store", Start: clk.UnixNano()}
	}
	ins, del, cancelled := sc.net(ops)
	if m != nil {
		clk = m.span.Stamp(obs.StageNet, clk)
	}
	if s.snap.enabled {
		s.commitSnapshot(ins, del, clk)
	} else {
		s.rw.Lock()
		s.idx.BatchDiff(ins, del)
		s.rw.Unlock()
		if m != nil {
			m.span.Stamp(obs.StageApply, clk)
		}
	}
	// ins/del alias sc buffers; the index must not have retained them
	// (the core.Index batch contract), so they are reusable next flush —
	// as is the swapped-out op log.
	sc.spare = ops[:0]
	s.flushes.Add(1)
	s.cancelled.Add(uint64(cancelled))
	s.inserted.Add(uint64(len(ins)))
	s.deleted.Add(uint64(len(del)))
	s.rawOps.Add(uint64(len(ops)))
	if m != nil {
		m.span.RawOps = len(ops)
		m.span.NettedOps = len(ins) + len(del)
		m.span.Cancelled = cancelled
		if s.snap.enabled {
			m.span.Epoch = s.snap.mgr.Epoch()
		}
		m.flushDur.Record(m.span.Dur())
		m.trace.Record(m.span)
	}
	return len(ins) + len(del)
}

// commitSnapshot applies one netted window in snapshot mode (callers
// hold flushMu): catch the standby up with the previously committed
// window (the published twin already holds it), apply the new window,
// publish, and wait out readers of the displaced version, which becomes
// the next standby. Readers running concurrently pin whichever version
// is current and never block. ins/del alias the netting scratch, so the
// window is copied into the saved buffers before the scratch is reused.
// clk is the flush-span clock (only read when metrics are attached).
func (s *Store) commitSnapshot(ins, del []geom.Point, clk time.Time) {
	m := s.met
	st := s.snap.standby
	st.Data.BatchDiff(s.snap.savedIns, s.snap.savedDel)
	if m != nil {
		clk = m.span.Stamp(obs.StageReplay, clk)
	}
	st.Data.BatchDiff(ins, del)
	s.snap.savedIns = append(s.snap.savedIns[:0], ins...)
	s.snap.savedDel = append(s.snap.savedDel[:0], del...)
	if m != nil {
		clk = m.span.Stamp(obs.StageApply, clk)
	}
	prev := s.snap.mgr.Publish(st)
	if m != nil {
		clk = m.span.Stamp(obs.StagePublish, clk)
	}
	s.snap.mgr.WaitDrained(prev)
	if m != nil {
		m.span.Stamp(obs.StageDrain, clk)
	}
	s.snap.standby = prev
}

// flushScratch is the per-Store flush buffer set (guarded by flushMu):
// the recycled op log plus the netting buffers. Everything grows to the
// window high-water mark and is then reused verbatim.
type flushScratch struct {
	spare       []pendOp
	ins, del    []geom.Point
	avail, skip map[geom.Point]int
}

// net reduces one flush window's ordered op log to the (ins, del)
// batches whose BatchDiff application has the same net effect as running
// the log sequentially. Each delete cancels one preceding unmatched
// pending insert of its point when one exists; otherwise it is a real
// delete targeting points stored before the window, so applying all real
// deletes before all surviving inserts (the BatchDiff order) reproduces
// sequential execution exactly. A delete enqueued before any insert of
// its point therefore never consumes that later insert. The common
// single-kind windows skip the matching pass entirely.
//
// The returned slices alias the scratch: they are valid until the next
// net call, and callers hand them to BatchDiff, which must not retain
// them (the core.Index batch contract).
func (sc *flushScratch) net(ops []pendOp) (ins, del []geom.Point, cancelled int) {
	nDel := 0
	for _, op := range ops {
		if op.del {
			nDel++
		}
	}
	if nDel == 0 || nDel == len(ops) {
		out := sc.ins[:0]
		for _, op := range ops {
			out = append(out, op.p)
		}
		sc.ins = out
		if nDel == 0 {
			return out, nil, 0
		}
		return nil, out, 0
	}
	// Pass 1, in order: count unmatched preceding inserts per point; a
	// delete with one available consumes it, the rest are real deletes.
	if sc.avail == nil {
		sc.avail = make(map[geom.Point]int)
		sc.skip = make(map[geom.Point]int)
	}
	avail, skip := sc.avail, sc.skip // skip: insert occurrences to drop per point
	clear(avail)
	clear(skip)
	del = sc.del[:0]
	for _, op := range ops {
		switch {
		case !op.del:
			avail[op.p]++
		case avail[op.p] > 0:
			avail[op.p]--
			skip[op.p]++
			cancelled++
		default:
			del = append(del, op.p)
		}
	}
	// Pass 2: collect the surviving inserts. Which occurrence of a point
	// is dropped is irrelevant under multiset semantics, so skip the
	// earliest ones.
	ins = sc.ins[:0]
	for _, op := range ops {
		if op.del {
			continue
		}
		if skip[op.p] > 0 {
			skip[op.p]--
			continue
		}
		ins = append(ins, op.p)
	}
	sc.ins, sc.del = ins, del
	return ins, del, cancelled
}

// Build implements core.Index: it atomically replaces the contents with
// pts. Mutations enqueued before Build and not yet flushed are discarded —
// Build defines a new epoch, matching the bulk-construction contract.
func (s *Store) Build(pts []geom.Point) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	s.pend.Lock()
	s.pend.ops = nil
	s.pend.Unlock()
	if s.snap.enabled {
		// Build both twins and clear the saved window — the new epoch
		// starts from identical contents on both sides.
		st := s.snap.standby
		st.Data.Build(pts)
		prev := s.snap.mgr.Publish(st)
		s.snap.mgr.WaitDrained(prev)
		prev.Data.Build(pts)
		s.snap.standby = prev
		s.snap.savedIns = s.snap.savedIns[:0]
		s.snap.savedDel = s.snap.savedDel[:0]
		return
	}
	s.rw.Lock()
	s.idx.Build(pts)
	s.rw.Unlock()
}

// Size implements core.Index. It first flushes pending mutations so the
// answer reflects every enqueue that happened before the call.
func (s *Store) Size() int {
	s.Flush()
	if s.snap.enabled {
		v := s.snap.mgr.Pin()
		defer s.snap.mgr.Unpin(v)
		return v.Data.Size()
	}
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.idx.Size()
}

// KNN implements core.Index. Queries always observe a whole number of
// flushed batches, never a half-applied one: in snapshot mode they pin
// the published epoch's version (wait-free against flushes — the Unpin is
// deferred so a panicking inner index never wedges the writer's drain);
// in locked mode they share the read lock.
func (s *Store) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	if s.snap.enabled {
		v := s.snap.mgr.Pin()
		defer s.snap.mgr.Unpin(v)
		return v.Data.KNN(q, k, dst)
	}
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.idx.KNN(q, k, dst)
}

// RangeCount implements core.Index.
func (s *Store) RangeCount(box geom.Box) int {
	if s.snap.enabled {
		v := s.snap.mgr.Pin()
		defer s.snap.mgr.Unpin(v)
		return v.Data.RangeCount(box)
	}
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.idx.RangeCount(box)
}

// RangeList implements core.Index.
func (s *Store) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	if s.snap.enabled {
		v := s.snap.mgr.Pin()
		defer s.snap.mgr.Unpin(v)
		return v.Data.RangeList(box, dst)
	}
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.idx.RangeList(box, dst)
}

// Pending returns the number of enqueued, not-yet-flushed mutations.
func (s *Store) Pending() int {
	s.pend.Lock()
	defer s.pend.Unlock()
	return len(s.pend.ops)
}

// Stats returns a snapshot of the Store's counters. The counters are
// updated after each flush, so a snapshot taken concurrently with a flush
// may lag by that one batch. Stats never takes the writer lock, so it
// does not block behind an in-flight flush.
func (s *Store) Stats() Stats {
	st := Stats{
		Flushes:   s.flushes.Load(),
		Inserted:  s.inserted.Load(),
		Deleted:   s.deleted.Load(),
		Cancelled: s.cancelled.Load(),
		Pending:   s.Pending(),
		Versions:  1,
	}
	if s.snap.enabled {
		st.Epoch = s.snap.mgr.Epoch()
		st.Versions = 2
		st.RetireLag = s.snap.mgr.RetireLag()
	}
	return st
}
