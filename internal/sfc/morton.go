// Package sfc implements the space-filling curves used by the SPaC-tree
// family, the Zd-tree and the CPAM baselines: the Morton (Z-) curve and the
// Hilbert curve, in two and three dimensions (paper §2.2, Fig. 1).
//
// Precision follows the paper's discussion (§3, "Applicability"): codes are
// 64-bit, which allows 32 bits per dimension in 2D and 21 bits per
// dimension in 3D. Callers with wider coordinates must scale first (the
// paper scales 3D real-world data to [0, 1e6] for exactly this reason).
package sfc

// Morton2 interleaves the low 32 bits of x and y into a 64-bit Z-curve
// code: bit i of x lands at bit 2i, bit i of y at bit 2i+1.
func Morton2(x, y uint32) uint64 {
	return spread2(uint64(x)) | spread2(uint64(y))<<1
}

// spread2 spaces the low 32 bits of v one position apart using the classic
// magic-mask sequence.
func spread2(v uint64) uint64 {
	v &= 0xffffffff
	v = (v | v<<16) & 0x0000ffff0000ffff
	v = (v | v<<8) & 0x00ff00ff00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f0f0f0f0f
	v = (v | v<<2) & 0x3333333333333333
	v = (v | v<<1) & 0x5555555555555555
	return v
}

// compact2 inverts spread2.
func compact2(v uint64) uint64 {
	v &= 0x5555555555555555
	v = (v | v>>1) & 0x3333333333333333
	v = (v | v>>2) & 0x0f0f0f0f0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff00ff00ff
	v = (v | v>>8) & 0x0000ffff0000ffff
	v = (v | v>>16) & 0x00000000ffffffff
	return v
}

// MortonDecode2 inverts Morton2.
func MortonDecode2(code uint64) (x, y uint32) {
	return uint32(compact2(code)), uint32(compact2(code >> 1))
}

// Morton3 interleaves the low 21 bits of x, y and z into a 63-bit Z-curve
// code: bit i of x lands at bit 3i, y at 3i+1, z at 3i+2.
func Morton3(x, y, z uint32) uint64 {
	return spread3(uint64(x)) | spread3(uint64(y))<<1 | spread3(uint64(z))<<2
}

// spread3 spaces the low 21 bits of v two positions apart.
func spread3(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// compact3 inverts spread3.
func compact3(v uint64) uint64 {
	v &= 0x1249249249249249
	v = (v | v>>2) & 0x10c30c30c30c30c3
	v = (v | v>>4) & 0x100f00f00f00f00f
	v = (v | v>>8) & 0x1f0000ff0000ff
	v = (v | v>>16) & 0x1f00000000ffff
	v = (v | v>>32) & 0x1fffff
	return v
}

// MortonDecode3 inverts Morton3.
func MortonDecode3(code uint64) (x, y, z uint32) {
	return uint32(compact3(code)), uint32(compact3(code >> 1)), uint32(compact3(code >> 2))
}
