package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestMorton2Known(t *testing.T) {
	// Interleaving basics.
	cases := []struct {
		x, y uint32
		want uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
		{0xffffffff, 0xffffffff, 0xffffffffffffffff},
	}
	for _, c := range cases {
		if got := Morton2(c.x, c.y); got != c.want {
			t.Errorf("Morton2(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestMorton2RoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		gx, gy := MortonDecode2(Morton2(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMorton3RoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 1<<21 - 1
		y &= 1<<21 - 1
		z &= 1<<21 - 1
		gx, gy, gz := MortonDecode3(Morton3(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMorton3Known(t *testing.T) {
	if got := Morton3(1, 0, 0); got != 1 {
		t.Fatalf("Morton3(1,0,0) = %d", got)
	}
	if got := Morton3(0, 1, 0); got != 2 {
		t.Fatalf("Morton3(0,1,0) = %d", got)
	}
	if got := Morton3(0, 0, 1); got != 4 {
		t.Fatalf("Morton3(0,0,1) = %d", got)
	}
	if got := Morton3(1<<21-1, 1<<21-1, 1<<21-1); got != 1<<63-1 {
		t.Fatalf("Morton3 max = %d", got)
	}
}

func TestHilbert2RoundTrip(t *testing.T) {
	f := func(x, y uint32) bool {
		x &= 1<<Hilbert2Bits - 1
		y &= 1<<Hilbert2Bits - 1
		gx, gy := HilbertDecode2(Hilbert2(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbert3RoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 1<<Hilbert3Bits - 1
		y &= 1<<Hilbert3Bits - 1
		z &= 1<<Hilbert3Bits - 1
		gx, gy, gz := HilbertDecode3(Hilbert3(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbert2Bijective(t *testing.T) {
	// On a small grid the Hilbert index must be a bijection onto
	// [0, side^2).
	const order = 4 // 16x16 grid needs indices scaled to order bits
	// Use the full-precision curve but verify bijectivity over the grid
	// by decoding every index of the embedded sub-curve is overkill;
	// instead verify injectivity + range over all grid points.
	const side = 64
	seen := make(map[uint64]bool, side*side)
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			c := Hilbert2(x, y)
			if seen[c] {
				t.Fatalf("duplicate Hilbert code %d at (%d,%d)", c, x, y)
			}
			seen[c] = true
		}
	}
}

func TestHilbert2AdjacencyOnGrid(t *testing.T) {
	// The defining property of the Hilbert curve: consecutive indices
	// decode to geometrically adjacent cells (Manhattan distance exactly
	// 1). Check a dense prefix of the full-precision curve plus random
	// positions across the whole index range.
	check := func(idx uint64) {
		x0, y0 := HilbertDecode2(idx)
		x1, y1 := HilbertDecode2(idx + 1)
		dx := int64(x1) - int64(x0)
		dy := int64(y1) - int64(y0)
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			t.Fatalf("indices %d->%d jump from (%d,%d) to (%d,%d)", idx, idx+1, x0, y0, x1, y1)
		}
	}
	for idx := uint64(0); idx < 1<<12; idx++ {
		check(idx)
	}
	rng := rand.New(rand.NewSource(9))
	maxIdx := uint64(1)<<(2*Hilbert2Bits) - 2
	for i := 0; i < 20000; i++ {
		check(rng.Uint64() % maxIdx)
	}
}

func TestHilbert3AdjacencyOnGrid(t *testing.T) {
	const bits = 3 // 8x8x8
	var prev [3]uint32
	for idx := uint64(0); idx < 1<<(3*bits); idx++ {
		var axes [3]uint32
		deinterleaveTransposed(idx, axes[:], bits)
		transposeToAxes(axes[:], bits)
		if idx > 0 {
			var manhattan int64
			for d := 0; d < 3; d++ {
				dd := int64(axes[d]) - int64(prev[d])
				if dd < 0 {
					dd = -dd
				}
				manhattan += dd
			}
			if manhattan != 1 {
				t.Fatalf("3D indices %d->%d not adjacent: %v -> %v", idx-1, idx, prev, axes)
			}
		}
		prev = axes
	}
}

func TestHilbertLocalityBeatsMorton(t *testing.T) {
	// Statistical version of the paper's locality claim (§5.1.3): over
	// random consecutive-in-space point pairs, the average |code delta|
	// of Hilbert should be no worse than Morton's on a coarse statistic:
	// here we check average geometric distance of code-adjacent samples.
	rng := rand.New(rand.NewSource(3))
	const trials = 4000
	var mortonJump, hilbertJump float64
	for i := 0; i < trials; i++ {
		x := rng.Uint32() & (1<<16 - 1)
		y := rng.Uint32() & (1<<16 - 1)
		mc, hc := Morton2(x, y), Hilbert2(x, y)
		mx, my := MortonDecode2(mc + 1)
		hx, hy := HilbertDecode2(hc + 1)
		md := float64(geom.Dist2(geom.Pt2(int64(mx), int64(my)), geom.Pt2(int64(x), int64(y)), 2))
		hd := float64(geom.Dist2(geom.Pt2(int64(hx), int64(hy)), geom.Pt2(int64(x), int64(y)), 2))
		mortonJump += md
		hilbertJump += hd
	}
	if hilbertJump > mortonJump {
		t.Fatalf("Hilbert locality (%.1f) worse than Morton (%.1f)", hilbertJump/trials, mortonJump/trials)
	}
}

func TestEncodeDispatch(t *testing.T) {
	p := geom.Pt3(5, 9, 2)
	if Encode(Morton, p, 2) != Morton2(5, 9) {
		t.Fatal("2D Morton dispatch")
	}
	if Encode(Hilbert, p, 2) != Hilbert2(5, 9) {
		t.Fatal("2D Hilbert dispatch")
	}
	if Encode(Morton, p, 3) != Morton3(5, 9, 2) {
		t.Fatal("3D Morton dispatch")
	}
	if Encode(Hilbert, p, 3) != Hilbert3(5, 9, 2) {
		t.Fatal("3D Hilbert dispatch")
	}
}

func TestMortonOrderMatchesQuadrants(t *testing.T) {
	// All codes in quadrant q of the top-level split are contiguous and
	// ordered by q = (yBit<<1 | xBit): this is what lets the Zd-tree
	// split sorted code ranges by binary search.
	const half = uint32(1) << 31
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		x, y := rng.Uint32(), rng.Uint32()
		code := Morton2(x, y)
		quad := code >> 62
		wantQuad := uint64(0)
		if x >= half {
			wantQuad |= 1
		}
		if y >= half {
			wantQuad |= 2
		}
		if quad != wantQuad {
			t.Fatalf("Morton2(%d,%d): top bits %d, want %d", x, y, quad, wantQuad)
		}
	}
}

func TestMaxCoord(t *testing.T) {
	if MaxCoord(Morton, 2) != 1<<31-1 {
		t.Fatal("Morton 2D MaxCoord")
	}
	if MaxCoord(Hilbert, 2) != 1<<31-1 {
		t.Fatal("Hilbert 2D MaxCoord")
	}
	// Distance safety at the bound: the farthest 2D pair must not
	// overflow exact int64 squared distance.
	m := MaxCoord(Morton, 2)
	d := geom.Dist2(geom.Pt2(0, 0), geom.Pt2(m, m), 2)
	if d <= 0 {
		t.Fatal("corner distance overflowed int64")
	}
	if MaxCoord(Morton, 3) != 1<<21-1 || MaxCoord(Hilbert, 3) != 1<<21-1 {
		t.Fatal("3D MaxCoord")
	}
	if Morton.String() != "Z" || Hilbert.String() != "H" {
		t.Fatal("curve names")
	}
}
