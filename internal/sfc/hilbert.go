package sfc

// Hilbert curves via Skilling's transpose algorithm ("Programming the
// Hilbert curve", AIP 2004): axes are converted in place to the transposed
// Hilbert index, whose bits are then interleaved into a single code.
//
// Precision: 31 bits per dimension in 2D (code < 2^62) and 21 bits per
// dimension in 3D (code < 2^63), enough for the paper's coordinate ranges
// ([0,1e9] in 2D, [0,1e6] in 3D after scaling).

// Hilbert2Bits and Hilbert3Bits are the per-dimension precisions.
const (
	Hilbert2Bits = 31
	Hilbert3Bits = 21
)

// Hilbert2 returns the Hilbert index of (x, y); only the low Hilbert2Bits
// of each coordinate are used. 2D uses the classic rotate-and-flip
// iteration (Hilbert codes are computed once per point per batch, so this
// is on the update hot path — the same reason the paper finds SPaC-H
// updates only slightly behind SPaC-Z, §5.1.1).
func Hilbert2(x, y uint32) uint64 {
	const n = uint32(1) << Hilbert2Bits
	x &= n - 1
	y &= n - 1
	var d uint64
	for s := n >> 1; s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = n - 1 - x
				y = n - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// HilbertDecode2 inverts Hilbert2.
func HilbertDecode2(code uint64) (x, y uint32) {
	const n = uint32(1) << Hilbert2Bits
	t := code
	for s := uint32(1); s < n; s <<= 1 {
		rx := uint32(1 & (t >> 1))
		ry := uint32(1 & (t ^ uint64(rx)))
		// Rotate back within the current sub-square of side s.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t >>= 2
	}
	return x, y
}

// Hilbert3 returns the Hilbert index of (x, y, z); only the low
// Hilbert3Bits of each coordinate are used.
func Hilbert3(x, y, z uint32) uint64 {
	var axes [3]uint32
	axes[0] = x & (1<<Hilbert3Bits - 1)
	axes[1] = y & (1<<Hilbert3Bits - 1)
	axes[2] = z & (1<<Hilbert3Bits - 1)
	axesToTranspose(axes[:], Hilbert3Bits)
	return interleaveTransposed(axes[:], Hilbert3Bits)
}

// HilbertDecode3 inverts Hilbert3.
func HilbertDecode3(code uint64) (x, y, z uint32) {
	var axes [3]uint32
	deinterleaveTransposed(code, axes[:], Hilbert3Bits)
	transposeToAxes(axes[:], Hilbert3Bits)
	return axes[0], axes[1], axes[2]
}

// axesToTranspose converts coordinates to the transposed Hilbert index
// (Skilling's AxestoTranspose, verbatim structure).
func axesToTranspose(x []uint32, bits uint) {
	m := uint32(1) << (bits - 1)
	n := len(x)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	t := uint32(0)
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes inverts axesToTranspose (Skilling's TransposetoAxes).
func transposeToAxes(x []uint32, bits uint) {
	n := len(x)
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != uint32(1)<<bits; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				tt := (x[0] ^ x[i]) & p
				x[0] ^= tt
				x[i] ^= tt
			}
		}
	}
}

// interleaveTransposed packs the transposed index into one uint64, MSB
// first: bit (bits-1-j) of axis 0, then axis 1, ... for j = 0.. bits-1.
func interleaveTransposed(x []uint32, bits uint) uint64 {
	var code uint64
	for j := int(bits) - 1; j >= 0; j-- {
		for d := 0; d < len(x); d++ {
			code = code<<1 | uint64(x[d]>>uint(j)&1)
		}
	}
	return code
}

// deinterleaveTransposed inverts interleaveTransposed.
func deinterleaveTransposed(code uint64, x []uint32, bits uint) {
	for d := range x {
		x[d] = 0
	}
	shift := int(bits)*len(x) - 1
	for j := int(bits) - 1; j >= 0; j-- {
		for d := 0; d < len(x); d++ {
			bit := uint32(code >> uint(shift) & 1)
			x[d] |= bit << uint(j)
			shift--
		}
	}
}
