package sfc

import "repro/internal/geom"

// Curve selects a space-filling curve. The SPaC-tree family and the CPAM
// baselines are parameterized by it (SPaC-Z vs SPaC-H, CPAM-Z vs CPAM-H);
// the Zd-tree always uses Morton.
type Curve int

const (
	// Morton is the Z-order curve: cheapest to compute, weaker locality.
	Morton Curve = iota
	// Hilbert has stronger locality (adjacent codes are geometrically
	// adjacent), at a higher per-code cost — exactly the trade-off the
	// paper measures between SPaC-Z and SPaC-H (§5.1.3).
	Hilbert
)

// String names the curve the way the paper's tables do.
func (c Curve) String() string {
	if c == Hilbert {
		return "H"
	}
	return "Z"
}

// Encode maps a point with non-negative coordinates to its curve code.
// Precondition (checked by the callers' constructors, not here, to keep
// the hot path branch-free): coordinates fit the per-dimension precision —
// 32/31 bits in 2D (Morton/Hilbert), 21 bits in 3D.
func Encode(c Curve, p geom.Point, dims int) uint64 {
	if dims == 2 {
		if c == Hilbert {
			return Hilbert2(uint32(p[0]), uint32(p[1]))
		}
		return Morton2(uint32(p[0]), uint32(p[1]))
	}
	if c == Hilbert {
		return Hilbert3(uint32(p[0]), uint32(p[1]), uint32(p[2]))
	}
	return Morton3(uint32(p[0]), uint32(p[1]), uint32(p[2]))
}

// MaxCoord returns the largest supported coordinate for the curve and
// dimensionality. Constructors validate universe boxes against it. The 2D
// bound is 2^31-1 for both curves: Morton could encode 32 bits, but
// 2*(2^31)^2 is exactly where exact int64 squared distances would
// overflow, so the library-wide safe bound is the binding one.
func MaxCoord(c Curve, dims int) int64 {
	if dims == 2 {
		return 1<<31 - 1
	}
	return 1<<Hilbert3Bits - 1 // 21 bits for both curves in 3D
}
