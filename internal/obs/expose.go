package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE lines per family, then one
// line per series, with histograms expanded into cumulative _bucket
// series plus _sum and _count. Families and series appear in
// registration order, so the output is deterministic — the golden test
// pins it. Exposition reads the atomics directly; series recorded
// concurrently may be mutually torn by at most the in-flight updates,
// which is the usual Prometheus scrape semantics.

// histLe holds the precomputed le label values: bucket i of a Hist
// counts v with 2^i <= v < 2^(i+1), so its inclusive upper bound is
// 2^(i+1)-1; the last bucket is unbounded and folds into +Inf.
var histLe = func() [histBuckets - 1]string {
	var out [histBuckets - 1]string
	for i := range out {
		out[i] = strconv.FormatUint(uint64(1)<<(i+1)-1, 10)
	}
	return out
}()

// WritePrometheus writes the full exposition to w (the /metrics
// endpoint). The nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriterSize(w, 16<<10)
	r.mu.Lock()
	fams := r.fams
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind.String())
		for _, s := range f.series {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, f *family, s *series) {
	switch f.kind {
	case kindCounter:
		v := s.counter.Load()
		if s.counterFn != nil {
			v = s.counterFn()
		}
		writeName(bw, f.name, s.labels, "")
		fmt.Fprintf(bw, " %d\n", v)
	case kindGauge:
		writeName(bw, f.name, s.labels, "")
		fmt.Fprintf(bw, " %s\n", strconv.FormatFloat(s.gaugeFn(), 'g', -1, 64))
	case kindHist:
		var cum uint64
		for i := range histLe {
			cum += s.hist.buckets[i].Load()
			writeName(bw, f.name+"_bucket", s.labels, histLe[i])
			fmt.Fprintf(bw, " %d\n", cum)
		}
		cum += s.hist.buckets[histBuckets-1].Load()
		writeName(bw, f.name+"_bucket", s.labels, "+Inf")
		fmt.Fprintf(bw, " %d\n", cum)
		writeName(bw, f.name+"_sum", s.labels, "")
		fmt.Fprintf(bw, " %d\n", s.hist.sum.Load())
		writeName(bw, f.name+"_count", s.labels, "")
		fmt.Fprintf(bw, " %d\n", s.hist.count.Load())
	}
}

// writeName writes `name{labels,le="le"}`, omitting the braces when both
// labels and le are empty.
func writeName(bw *bufio.Writer, name, labels, le string) {
	bw.WriteString(name)
	if labels == "" && le == "" {
		return
	}
	bw.WriteByte('{')
	bw.WriteString(labels)
	if le != "" {
		if labels != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// renderLabels pre-renders a label set as `k1="v1",k2="v2"` with values
// escaped per the exposition format (backslash, double quote, newline).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	var b strings.Builder
	for i := 0; i < len(h); i++ {
		switch h[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(h[i])
		}
	}
	return b.String()
}

// ParseText parses a Prometheus text exposition into a flat map from
// series key — `name` or `name{labels}` exactly as exposed — to value.
// It understands the subset WritePrometheus emits (no timestamps,
// values parseable by strconv.ParseFloat) plus comment and blank lines,
// which is all psiload -scrape needs to diff two scrapes of a psid.
// Label values containing a space before the final value separator are
// not supported.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("obs: unparseable exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad value in line %q: %v", line, err)
		}
		out[strings.TrimSpace(line[:i])] = v
	}
	return out, sc.Err()
}
