package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistSemantics(t *testing.T) {
	var h Hist
	for _, d := range []time.Duration{time.Microsecond, 2 * time.Microsecond, 100 * time.Microsecond} {
		h.Record(d)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.5); p50 < time.Microsecond || p50 > 8*time.Microsecond {
		t.Fatalf("p50 = %v, want on the order of the small observations", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 100*time.Microsecond {
		t.Fatalf("p99 = %v, want >= the largest observation's bucket", p99)
	}
	if m := h.Mean(); m < 30*time.Microsecond || m > 40*time.Microsecond {
		t.Fatalf("mean = %v, want ~34us", m)
	}
	var empty Hist
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	// Clamping: zero and negative observations land in the first bucket.
	var clamp Hist
	clamp.Observe(0)
	clamp.Observe(-5)
	if clamp.Count() != 2 || clamp.Sum() != 2 {
		t.Fatalf("clamped count=%d sum=%d, want 2 and 2", clamp.Count(), clamp.Sum())
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Observe(10)
	b.Observe(1000)
	b.Observe(2000)
	a.Merge(&b)
	if a.Count() != 3 || a.Sum() != 3010 {
		t.Fatalf("merged count=%d sum=%d, want 3 and 3010", a.Count(), a.Sum())
	}
}

// TestGoldenExposition pins the full text exposition for a registry with
// every family kind: names, HELP/TYPE lines, label rendering, histogram
// bucket expansion, and registration-order determinism.
func TestGoldenExposition(t *testing.T) {
	r := New()
	c := r.Counter("psi_test_total", "A test counter.", Label{Key: "layer", Value: "store"})
	c.Add(7)
	r.CounterFunc("psi_fn_total", "A function counter.", func() uint64 { return 42 })
	r.GaugeFunc("psi_gauge", "A gauge.", func() float64 { return 1.5 })
	h := r.Histogram("psi_lat_ns", "A latency histogram.", Label{Key: "op", Value: "SET"})
	h.Observe(1) // bucket 0
	h.Observe(5) // bucket 2 (4 <= 5 < 8)

	var want strings.Builder
	want.WriteString("# HELP psi_test_total A test counter.\n")
	want.WriteString("# TYPE psi_test_total counter\n")
	want.WriteString("psi_test_total{layer=\"store\"} 7\n")
	want.WriteString("# HELP psi_fn_total A function counter.\n")
	want.WriteString("# TYPE psi_fn_total counter\n")
	want.WriteString("psi_fn_total 42\n")
	want.WriteString("# HELP psi_gauge A gauge.\n")
	want.WriteString("# TYPE psi_gauge gauge\n")
	want.WriteString("psi_gauge 1.5\n")
	want.WriteString("# HELP psi_lat_ns A latency histogram.\n")
	want.WriteString("# TYPE psi_lat_ns histogram\n")
	cum := 0
	for i := 0; i < histBuckets-1; i++ {
		switch i {
		case 0, 2:
			cum++
		}
		fmt.Fprintf(&want, "psi_lat_ns_bucket{op=\"SET\",le=\"%d\"} %d\n", uint64(1)<<(i+1)-1, cum)
	}
	want.WriteString("psi_lat_ns_bucket{op=\"SET\",le=\"+Inf\"} 2\n")
	want.WriteString("psi_lat_ns_sum{op=\"SET\"} 6\n")
	want.WriteString("psi_lat_ns_count{op=\"SET\"} 2\n")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want.String() {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want.String())
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := New()
	r.Counter("psi_esc_total", "help with \\ and\nnewline",
		Label{Key: "v", Value: "a\"b\\c\nd"})
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP psi_esc_total help with \\ and\nnewline`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `psi_esc_total{v="a\"b\\c\nd"} 0`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		fn()
	}
	r := New()
	r.Counter("psi_dup_total", "x", Label{Key: "a", Value: "1"})
	mustPanic("duplicate series", func() {
		r.Counter("psi_dup_total", "x", Label{Key: "a", Value: "1"})
	})
	mustPanic("kind mismatch", func() {
		r.Histogram("psi_dup_total", "x")
	})
	mustPanic("bad metric name", func() { r.Counter("9bad", "x") })
	mustPanic("bad label name", func() {
		r.Counter("psi_ok_total", "x", Label{Key: "bad-key", Value: "v"})
	})
}

func TestParseTextRoundTrip(t *testing.T) {
	r := New()
	r.Counter("psi_a_total", "a", Label{Key: "layer", Value: "store"}).Add(3)
	r.GaugeFunc("psi_b", "b", func() float64 { return 2.25 })
	r.Histogram("psi_c_ns", "c").Observe(100)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m[`psi_a_total{layer="store"}`] != 3 {
		t.Fatalf("counter = %v", m[`psi_a_total{layer="store"}`])
	}
	if m["psi_b"] != 2.25 {
		t.Fatalf("gauge = %v", m["psi_b"])
	}
	if m["psi_c_ns_count"] != 1 || m["psi_c_ns_sum"] != 100 {
		t.Fatalf("hist count=%v sum=%v", m["psi_c_ns_count"], m["psi_c_ns_sum"])
	}
	if m[`psi_c_ns_bucket{le="+Inf"}`] != 1 {
		t.Fatalf("hist +Inf bucket = %v", m[`psi_c_ns_bucket{le="+Inf"}`])
	}
}

func TestFlushTraceRing(t *testing.T) {
	tr := NewFlushTrace(4)
	for i := 0; i < 6; i++ {
		tr.Record(FlushSpan{Layer: "store", RawOps: i})
	}
	if tr.Total() != 6 {
		t.Fatalf("total = %d", tr.Total())
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	for i, sp := range spans {
		if sp.Seq != uint64(3+i) { // oldest surviving is seq 3
			t.Fatalf("span %d has seq %d, want %d (oldest first)", i, sp.Seq, 3+i)
		}
		if sp.RawOps != 2+i {
			t.Fatalf("span %d RawOps = %d, want %d", i, sp.RawOps, 2+i)
		}
	}
}

func TestFlushSpanStamp(t *testing.T) {
	var sp FlushSpan
	clk := time.Now()
	time.Sleep(time.Millisecond)
	clk = sp.Stamp(StageApply, clk)
	if sp.Stages[StageApply] < int64(time.Millisecond/2) {
		t.Fatalf("apply stage = %dns, want >= ~1ms", sp.Stages[StageApply])
	}
	if sp.Dur() != time.Duration(sp.Stages[StageApply]) {
		t.Fatalf("Dur = %v, want just the apply stage", sp.Dur())
	}
	_ = clk
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3)
	long := bytes.Repeat([]byte("x"), SlowArgsCap+10)
	l.Record("NEARBY", []byte(`{"op":"NEARBY"}`), 5*time.Millisecond,
		QueryCost{Shards: 4, Candidates: 123, Epoch: 9})
	l.Record("WITHIN", long, time.Millisecond, QueryCost{})
	for i := 0; i < 3; i++ {
		l.Record("SET", []byte("s"), time.Millisecond, QueryCost{})
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d", l.Total())
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	// Newest first.
	for i := range got {
		if got[i].Seq != uint64(5-i) {
			t.Fatalf("entry %d seq = %d, want %d", i, got[i].Seq, 5-i)
		}
		if got[i].Cmd != "SET" {
			t.Fatalf("entry %d cmd = %q", i, got[i].Cmd)
		}
	}
	// Truncation (overwritten here, so re-test on a fresh ring).
	l2 := NewSlowLog(2)
	l2.Record("WITHIN", long, time.Millisecond, QueryCost{Shards: 1, Candidates: 2, Epoch: 3})
	e := l2.Snapshot()[0]
	if !e.Truncated || len(e.Args) != SlowArgsCap {
		t.Fatalf("truncated=%v len(args)=%d, want true and %d", e.Truncated, len(e.Args), SlowArgsCap)
	}
	if e.Shards != 1 || e.Candidates != 2 || e.Epoch != 3 {
		t.Fatalf("cost = %+v", e)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("psi_nil_total", "x")
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatal("nil counter should load 0")
	}
	h := r.Histogram("psi_nil_ns", "x")
	h.Record(time.Second)
	h.Observe(5)
	r.CounterFunc("psi_nil_fn", "x", func() uint64 { return 1 })
	r.GaugeFunc("psi_nil_g", "x", func() float64 { return 1 })
	r.RegisterHistogram("psi_nil_h", "x", nil)
	var tr *FlushTrace
	tr.Record(FlushSpan{})
	if tr.Total() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil trace should be empty")
	}
	var sl *SlowLog
	sl.Record("SET", nil, 0, QueryCost{})
	if sl.Total() != 0 || sl.Snapshot() != nil {
		t.Fatal("nil slowlog should be empty")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if r.FlushTrace() != nil {
		t.Fatal("nil registry should have nil trace")
	}
}

// TestRecordAllocFree pins design rule 1: every record-side operation is
// atomics into preallocated storage, zero allocations.
func TestRecordAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("psi_alloc_total", "x")
	h := r.Histogram("psi_alloc_ns", "x")
	tr := r.FlushTrace()
	sl := NewSlowLog(8)
	args := []byte(`{"op":"NEARBY","p":[1,2],"k":10}`)
	span := FlushSpan{Layer: "store", RawOps: 100, NettedOps: 90, Cancelled: 10}
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Hist.Record", func() { h.Record(time.Microsecond) }},
		{"FlushTrace.Record", func() { tr.Record(span) }},
		{"SlowLog.Record", func() { sl.Record("NEARBY", args, time.Millisecond, QueryCost{Shards: 2}) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", tc.name, n)
		}
	}
}

// TestRegistryRace hammers every concurrent surface at once; run with
// -race (the CI does) to verify the lock-free recording discipline.
func TestRegistryRace(t *testing.T) {
	r := New()
	c := r.Counter("psi_race_total", "x")
	h := r.Histogram("psi_race_ns", "x")
	r.CounterFunc("psi_race_fn", "x", c.Load)
	tr := r.FlushTrace()
	sl := NewSlowLog(4)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(int64(i%1000 + 1))
				tr.Record(FlushSpan{Layer: "shard", RawOps: i})
				sl.Record("SET", []byte("x"), time.Duration(i), QueryCost{Shards: g})
			}
		}(g)
	}
	deadline := time.After(50 * time.Millisecond)
	for {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			if c.Load() == 0 || tr.Total() == 0 || sl.Total() == 0 {
				t.Fatal("hammer recorded nothing")
			}
			return
		default:
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			tr.Snapshot()
			sl.Snapshot()
			h.Quantile(0.99)
		}
	}
}
