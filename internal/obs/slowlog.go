package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
)

// Slow-query log: the serving layer records every command slower than
// its -slowlog threshold into a preallocated ring, capturing the
// command, its raw request line, the duration, and the query's cost
// (shards visited, candidate points scanned, pinned epoch). Recording
// follows the FlushTrace pattern — one atomic slot claim plus a
// per-slot mutex, arguments copied into a fixed in-slot buffer — so a
// burst of slow queries from many connections records without shared
// locking or allocation. Snapshots back /debug/slowlog and the SLOWLOG
// protocol command.

// QueryCost is the per-query work accounting threaded down the query
// path: Shards is the number of shards the query actually visited,
// Candidates the geometric candidate points the shards reported before
// ID resolution, Epoch the published epoch the query pinned (0 in
// locked mode). Implementations of CostedIndex fill Shards and
// Candidates only; the layer that pins the epoch fills Epoch.
type QueryCost struct {
	Shards     int
	Candidates int
	Epoch      uint64
}

// CostedIndex is implemented by indexes that can report per-query cost
// alongside the result. The dst-append contract matches core.Index
// (KNN/RangeList); cost may not be nil and is incremented, not reset —
// callers zero it per query. shard.Sharded implements it.
type CostedIndex interface {
	KNNCost(q geom.Point, k int, dst []geom.Point, cost *QueryCost) []geom.Point
	RangeListCost(box geom.Box, dst []geom.Point, cost *QueryCost) []geom.Point
}

// SlowArgsCap is the per-entry argument capture limit: request lines
// longer than this are truncated (and flagged) rather than allocated
// for.
const SlowArgsCap = 240

// SlowQuery is one copied-out slow-log entry (the read-side form:
// Snapshot allocates these; the in-ring storage is fixed-size).
type SlowQuery struct {
	Seq        uint64 `json:"seq"`
	UnixNano   int64  `json:"unix_nano"`
	DurNs      int64  `json:"dur_ns"`
	Cmd        string `json:"cmd"`
	Args       string `json:"args"`
	Truncated  bool   `json:"truncated,omitempty"`
	Shards     int    `json:"shards"`
	Candidates int    `json:"candidates"`
	Epoch      uint64 `json:"epoch"`
}

// SlowLog is the slow-query ring. The nil receiver is safe on Record
// and Total.
type SlowLog struct {
	seq   atomic.Uint64
	slots []slowSlot
}

type slowSlot struct {
	mu    sync.Mutex
	used  bool
	seq   uint64
	unix  int64
	durNs int64
	cmd   string
	nArgs int
	trunc bool
	args  [SlowArgsCap]byte
	cost  QueryCost
}

// NewSlowLog returns a ring retaining the last capacity entries
// (minimum 1).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{slots: make([]slowSlot, capacity)}
}

// Record stores one slow query, overwriting the oldest when the ring is
// full. cmd must be a constant (it is retained by reference); args is
// copied (truncated to SlowArgsCap bytes). Record is safe for
// concurrent use and does not allocate.
func (l *SlowLog) Record(cmd string, args []byte, d time.Duration, cost QueryCost) {
	if l == nil {
		return
	}
	seq := l.seq.Add(1)
	slot := &l.slots[(seq-1)%uint64(len(l.slots))]
	slot.mu.Lock()
	slot.used = true
	slot.seq = seq
	slot.unix = time.Now().UnixNano()
	slot.durNs = d.Nanoseconds()
	slot.cmd = cmd
	slot.trunc = len(args) > len(slot.args)
	slot.nArgs = copy(slot.args[:], args)
	slot.cost = cost
	slot.mu.Unlock()
}

// Total returns the number of slow queries ever recorded.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.seq.Load()
}

// Snapshot copies the retained entries out, newest first (the SLOWLOG
// convention).
func (l *SlowLog) Snapshot() []SlowQuery {
	if l == nil {
		return nil
	}
	out := make([]SlowQuery, 0, len(l.slots))
	for i := range l.slots {
		slot := &l.slots[i]
		slot.mu.Lock()
		if slot.used {
			out = append(out, SlowQuery{
				Seq:        slot.seq,
				UnixNano:   slot.unix,
				DurNs:      slot.durNs,
				Cmd:        slot.cmd,
				Args:       string(slot.args[:slot.nArgs]),
				Truncated:  slot.trunc,
				Shards:     slot.cost.Shards,
				Candidates: slot.cost.Candidates,
				Epoch:      slot.cost.Epoch,
			})
		}
		slot.mu.Unlock()
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq < out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
