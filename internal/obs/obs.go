// Package obs is the cross-layer observability subsystem: a zero-alloc
// metric registry (atomic counters, gauges, and the power-of-two latency
// histogram shared with the service layer) with Prometheus text
// exposition, a preallocated flush-span ring tracing the flush pipeline
// stage by stage, and a slow-query ring capturing individual outlier
// queries with their per-shard cost.
//
// Design rules, in priority order:
//
//  1. Recording is atomics into preallocated storage. Counter.Add,
//     Hist.Record, FlushTrace.Record and SlowLog.Record never allocate
//     and never take a registry-wide lock, so instrumented hot paths
//     (store/collection flushes, shard sub-batches, the serving loop)
//     keep their AllocsPerRun == 0 guarantees with a live registry
//     attached.
//  2. Everything is optional. Every layer takes an optional *Registry;
//     nil disables all recording, and the nil receiver is safe on every
//     record-side method (a nil *Counter, *Hist, *FlushTrace, *SlowLog or
//     *Registry no-ops), so library users who pass no registry pay only a
//     nil check.
//  3. Reads may allocate. Exposition (WritePrometheus), ring snapshots
//     and quantile scans run on probe endpoints, not hot paths.
//
// The registry serves /metrics on psid's HTTP listener; the rings back
// /debug/flushtrace and /debug/slowlog plus the SLOWLOG command. The
// metric catalog lives in docs/observability.md.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, e.g. {Key: "layer", Value: "store"}.
// Series with the same name but different label values coexist in one
// family and expose as Prometheus labeled series.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing atomic counter. The nil receiver
// is safe: recording on a Counter from a nil registry is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 on the nil receiver).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// histBuckets is the bucket count of Hist: power-of-two nanosecond
// buckets spanning 1ns to ~8.6s, with the last bucket absorbing the tail.
const histBuckets = 34

// Hist is a lock-free histogram with power-of-two buckets: bucket i
// counts values v with 2^i <= v < 2^(i+1) (bucket 0 also takes v <= 1,
// the last bucket takes everything beyond ~2^33). It is the generalized
// form of the service layer's latency histogram: recording is three
// atomic adds, so any number of goroutines record without contention,
// and quantiles are read off the bucket counts with power-of-two
// resolution — plenty for p50/p99 reporting. Values are nanoseconds for
// latency series, plain counts otherwise (e.g. query fan-out width).
// The nil receiver is safe on Record/Observe.
type Hist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Record adds one duration observation (clamped to >= 1ns).
func (h *Hist) Record(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Nanoseconds())
}

// Observe adds one raw observation (clamped to >= 1).
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 1 {
		v = 1
	}
	i := bits.Len64(uint64(v)) - 1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
}

// Merge folds other into h (used to combine per-connection recorders).
func (h *Hist) Merge(other *Hist) {
	for i := range h.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Hist) Sum() uint64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the q*count-th observation (nearest rank). Zero
// observations report zero. The result is a duration for latency series;
// callers tracking plain counts convert back.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total))) // nearest-rank
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			return time.Duration(uint64(1) << (i + 1))
		}
	}
	return time.Duration(uint64(1) << histBuckets)
}

// Mean returns the exact mean (zero when empty).
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// metricKind discriminates the family types for exposition and for
// catching a name registered twice with different types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHist
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHist:
		return "histogram"
	}
	return "unknown"
}

// series is one labeled instance within a family. Exactly one of the
// value fields is set, matching the family kind.
type series struct {
	labels    string // pre-rendered `k1="v1",k2="v2"` (escaped), "" when unlabeled
	counter   *Counter
	counterFn func() uint64
	gaugeFn   func() float64
	hist      *Hist
}

// family is one metric name: its HELP text, kind, and every labeled
// series, in registration order (exposition is deterministic).
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	byKey  map[string]*series
}

// Registry holds metric families and the shared flush-trace ring. Create
// one with New and hand it to every layer of one stack (each layer
// registers its series once — snapshot-mode twins share their metrics
// instead of re-registering). Registration takes a registry lock;
// recording through the returned handles never does. The nil *Registry
// is safe on every method: registration returns nil handles (whose
// record methods no-op) and exposition writes nothing.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	byNam map[string]*family
	trace *FlushTrace
}

// DefaultFlushTraceCap is the slot count of the registry's flush-span
// ring: enough history to cover several seconds of steady flushing.
const DefaultFlushTraceCap = 256

// New returns an empty registry with a DefaultFlushTraceCap-slot flush
// trace.
func New() *Registry {
	return &Registry{
		byNam: make(map[string]*family),
		trace: NewFlushTrace(DefaultFlushTraceCap),
	}
}

// FlushTrace returns the registry's shared flush-span ring (nil on the
// nil registry — FlushTrace.Record is nil-safe, so recorders need no
// guard).
func (r *Registry) FlushTrace() *FlushTrace {
	if r == nil {
		return nil
	}
	return r.trace
}

// Counter registers (or extends) a counter family and returns the series
// handle. Registering the same name+labels twice panics (programmer
// error, matching the library's validate conventions); nil registry
// returns a nil handle whose Add/Inc no-op.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(name, help, kindCounter, &series{counter: c}, labels)
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — for layers that already maintain atomic counters.
// fn must be safe for concurrent use and monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounter, &series{counterFn: fn}, labels)
}

// GaugeFunc registers a gauge series read from fn at exposition time.
// fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, &series{gaugeFn: fn}, labels)
}

// Histogram registers a histogram family and returns the series handle
// (nil on the nil registry; Record/Observe no-op on it).
func (r *Registry) Histogram(name, help string, labels ...Label) *Hist {
	if r == nil {
		return nil
	}
	h := &Hist{}
	r.register(name, help, kindHist, &series{hist: h}, labels)
	return h
}

// RegisterHistogram exposes an externally owned Hist as a series — for
// recorders that keep their histograms in fixed arrays (the service's
// per-command metrics) and only want exposition.
func (r *Registry) RegisterHistogram(name, help string, h *Hist, labels ...Label) {
	if r == nil || h == nil {
		return
	}
	r.register(name, help, kindHist, &series{hist: h}, labels)
}

func (r *Registry) register(name, help string, kind metricKind, s *series, labels []Label) {
	validateName(name)
	for _, l := range labels {
		validateName(l.Key)
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byNam[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		r.fams = append(r.fams, f)
		r.byNam[name] = f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " registered as both " + f.kind.String() + " and " + kind.String())
	}
	if _, dup := f.byKey[s.labels]; dup {
		panic("obs: duplicate series " + name + "{" + s.labels + "}")
	}
	f.byKey[s.labels] = s
	f.series = append(f.series, s)
}

// validateName panics unless name is a legal Prometheus metric or label
// name ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validateName(name string) {
	if len(name) == 0 {
		panic("obs: empty metric or label name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			panic("obs: invalid metric or label name " + name)
		}
	}
}
