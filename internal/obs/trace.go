package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Flush-pipeline tracing: each Store/Collection/Shard flush records one
// FlushSpan — per-stage wall times plus window statistics — into a
// preallocated ring. Recording claims a slot with one atomic increment
// and writes it under that slot's own mutex, so concurrent recorders
// (per-shard flushes, independent layers) never contend on shared state
// beyond the sequence counter, and recording a span allocates nothing:
// the span is passed by value into storage that exists for the ring's
// lifetime. Readers (/debug/flushtrace, psibench -exp obs) copy slots
// out under the per-slot locks and may allocate freely.

// Flush stage indices into FlushSpan.Stages. Stages a mode does not run
// stay zero: locked-mode flushes have no replay/publish/drain, the shard
// layer nets nothing (its window was already netted a layer up).
const (
	// StageNet is window netting and planning: reducing the raw op log
	// to the surviving (ins, del) batches — for the shard layer, the
	// parallel partitioning of the batch into per-shard sub-batches.
	StageNet = iota
	// StageLog is the durability commit: encoding the netted window
	// into the write-ahead log and (policy permitting) fsyncing it —
	// zero when the layer runs without a WAL.
	StageLog
	// StageReplay is the standby catch-up: re-applying the previously
	// committed window to the off-line twin (snapshot mode only).
	StageReplay
	// StageApply is the new window's index application (plus, for the
	// Collection, the forward/reverse table advance and window save).
	StageApply
	// StagePublish is the epoch publish: the atomic version swing.
	StagePublish
	// StageDrain is the wait for readers pinned to the displaced
	// version (snapshot mode only).
	StageDrain
	// NumStages is the stage count.
	NumStages
)

// StageNames maps stage indices to their short names, in order.
var StageNames = [NumStages]string{"net", "log", "replay", "apply", "publish", "drain"}

// FlushSpan is one recorded flush. Layer identifies the recorder
// ("store", "collection", "shard"); Stages holds per-stage wall time in
// nanoseconds; RawOps/NettedOps/Cancelled describe the window before and
// after netting (RawOps - Cancelled mutations survived netting as
// NettedOps index mutations); Epoch is the published epoch after the
// flush (0 in locked mode). Seq is assigned by Record.
type FlushSpan struct {
	Seq       uint64
	Layer     string
	Start     int64 // UnixNano at flush start
	Stages    [NumStages]int64
	RawOps    int
	NettedOps int
	Cancelled int
	Epoch     uint64
}

// Stamp accumulates the wall time since t into Stages[stage] and returns
// the current time, so a recorder threads one clock through consecutive
// stage boundaries.
func (sp *FlushSpan) Stamp(stage int, t time.Time) time.Time {
	now := time.Now()
	sp.Stages[stage] += now.Sub(t).Nanoseconds()
	return now
}

// Dur returns the span's total recorded stage time.
func (sp *FlushSpan) Dur() time.Duration {
	var total int64
	for _, ns := range sp.Stages {
		total += ns
	}
	return time.Duration(total)
}

// FlushTrace is the span ring. The nil receiver is safe on Record.
type FlushTrace struct {
	seq   atomic.Uint64
	slots []traceSlot
}

type traceSlot struct {
	mu   sync.Mutex
	used bool
	span FlushSpan
}

// NewFlushTrace returns a ring retaining the last capacity spans
// (minimum 1).
func NewFlushTrace(capacity int) *FlushTrace {
	if capacity < 1 {
		capacity = 1
	}
	return &FlushTrace{slots: make([]traceSlot, capacity)}
}

// Record stores one span, overwriting the oldest when the ring is full.
// It is safe for concurrent use and does not allocate.
func (t *FlushTrace) Record(span FlushSpan) {
	if t == nil {
		return
	}
	seq := t.seq.Add(1)
	span.Seq = seq
	slot := &t.slots[(seq-1)%uint64(len(t.slots))]
	slot.mu.Lock()
	slot.span = span
	slot.used = true
	slot.mu.Unlock()
}

// Total returns the number of spans ever recorded.
func (t *FlushTrace) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Snapshot copies the retained spans out, oldest first. Spans recorded
// concurrently with the copy may appear out of their final order but are
// never torn (each slot is copied under its lock); the result is sorted
// by sequence number.
func (t *FlushTrace) Snapshot() []FlushSpan {
	if t == nil {
		return nil
	}
	out := make([]FlushSpan, 0, len(t.slots))
	for i := range t.slots {
		slot := &t.slots[i]
		slot.mu.Lock()
		if slot.used {
			out = append(out, slot.span)
		}
		slot.mu.Unlock()
	}
	// Insertion sort by Seq: the ring is nearly ordered already (one
	// rotation), and snapshot sizes are ring-capacity bounded.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
