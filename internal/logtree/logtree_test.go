package logtree

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

const testSide = int64(1 << 20)

func TestBHLMatchesBruteForce(t *testing.T) {
	tr := NewBHL(2)
	ref := core.NewBruteForce(2)
	pts := workload.GenVarden(15000, 2, testSide, 3)
	tr.Build(pts[:8000])
	ref.Build(pts[:8000])
	tr.BatchInsert(pts[8000:12000])
	ref.BatchInsert(pts[8000:12000])
	tr.BatchDelete(pts[:3000])
	ref.BatchDelete(pts[:3000])
	tr.BatchDiff(pts[12000:], pts[3000:5000])
	ref.BatchDiff(pts[12000:], pts[3000:5000])
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyQueries(tr, ref,
		workload.GenUniform(25, 2, testSide, 5), []int{1, 10},
		workload.RangeQueries(10, 2, testSide, 0.01, 7)); err != nil {
		t.Fatal(err)
	}
}

func TestLogTreeMatchesBruteForce(t *testing.T) {
	tr := NewLog(2)
	ref := core.NewBruteForce(2)
	pts := workload.GenUniform(20000, 2, testSide, 11)
	tr.Build(pts[:5000])
	ref.Build(pts[:5000])
	// Many small batches to force carry chains across levels.
	for lo := 5000; lo < 20000; lo += 500 {
		tr.BatchInsert(pts[lo : lo+500])
		ref.BatchInsert(pts[lo : lo+500])
		if err := tr.Validate(); err != nil {
			t.Fatalf("after insert at %d: %v", lo, err)
		}
	}
	if tr.Levels() < 2 {
		t.Fatalf("expected a multi-level forest, got %d levels", tr.Levels())
	}
	if err := core.VerifyQueries(tr, ref,
		workload.GenUniform(25, 2, testSide, 13), []int{1, 10},
		workload.RangeQueries(10, 2, testSide, 0.01, 17)); err != nil {
		t.Fatal(err)
	}
}

func TestLogTreeDeleteAcrossLevels(t *testing.T) {
	tr := NewLog(2)
	ref := core.NewBruteForce(2)
	pts := workload.GenUniform(12000, 2, testSide, 19)
	// Stage points so copies of duplicates land in different levels.
	dup := geom.Pt2(4242, 4242)
	first := append(append([]geom.Point{}, pts[:6000]...), dup, dup)
	second := append(append([]geom.Point{}, pts[6000:]...), dup, dup, dup)
	tr.Build(first)
	ref.Build(first)
	tr.BatchInsert(second)
	ref.BatchInsert(second)
	// Delete four of the five copies: exactly one must remain.
	req := []geom.Point{dup, dup, dup, dup}
	tr.BatchDelete(req)
	ref.BatchDelete(req)
	if got := tr.RangeCount(geom.BoxOf(dup, dup)); got != 1 {
		t.Fatalf("duplicate copies left: %d, want 1", got)
	}
	if tr.Size() != ref.Size() {
		t.Fatalf("size %d, want %d", tr.Size(), ref.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLogTreeCompaction(t *testing.T) {
	tr := NewLog(2)
	pts := workload.GenUniform(20000, 2, testSide, 23)
	tr.Build(pts)
	// Drain well past half: the forest must compact and stay consistent.
	tr.BatchDelete(pts[:15000])
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 5000 {
		t.Fatalf("size %d", tr.Size())
	}
	ref := core.NewBruteForce(2)
	ref.Build(pts[15000:])
	if err := core.VerifyQueries(tr, ref,
		workload.GenUniform(20, 2, testSide, 29), []int{1, 10},
		workload.RangeQueries(8, 2, testSide, 0.02, 31)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOpScripts(t *testing.T) {
	mk := map[string]func() core.Index{
		"log": func() core.Index { return NewLog(2) },
		"bhl": func() core.Index { return NewBHL(2) },
	}
	validate := map[string]func(core.Index) error{
		"log": func(i core.Index) error { return i.(*LogTree).Validate() },
		"bhl": func(i core.Index) error { return i.(*BHLTree).Validate() },
	}
	for name, ctor := range mk {
		f := func(seed int64, dense bool) bool {
			side := int64(1 << 16)
			if dense {
				side = 40
			}
			idx := ctor()
			script := core.OpScript{
				Dims: 2, Side: side, Steps: 10, Seed: seed, MaxBatch: 250,
				Validate: func() error { return validate[name](idx) },
			}
			if err := script.Run(idx); err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestNamesAndDims(t *testing.T) {
	if NewLog(3).Name() != "Log-Tree" || NewLog(3).Dims() != 3 {
		t.Fatal("LogTree identity")
	}
	if NewBHL(2).Name() != "BHL-Tree" || NewBHL(2).Dims() != 2 {
		t.Fatal("BHLTree identity")
	}
}
