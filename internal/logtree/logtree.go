// Package logtree implements the two parallel kd-tree baselines of
// Yesantharao et al. [62] that the paper discusses (§2.3) and places on
// its Fig. 8 trade-off map using estimated numbers — here they are
// implemented and measured:
//
//   - the BHL-tree: a static parallel kd-tree that handles a batch update
//     by fully rebuilding, paying O((n+m) log(n+m)) per batch;
//   - the Log-tree: the logarithmic method — a forest of static kd-trees
//     with geometrically increasing capacities, where a batch insertion
//     cascades like binary-counter addition and every query must visit up
//     to O(log n) trees. This is precisely the query overhead that makes
//     the paper reject the logarithmic method for its own designs (§1,
//     §2.3).
//
// Both delegate single-tree operations to the Pkd-tree implementation, so
// the comparison against the paper's structures isolates the update
// strategy rather than kd-tree engineering details.
package logtree

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pkdtree"
)

// BHLTree is the full-rebuild kd-tree baseline.
type BHLTree struct {
	dims  int
	store []geom.Point
	kd    *pkdtree.Tree
}

var _ core.Index = (*BHLTree)(nil)

// NewBHL returns an empty BHL-tree.
func NewBHL(dims int) *BHLTree {
	return &BHLTree{dims: dims, kd: pkdtree.NewDefault(dims)}
}

// Name implements core.Index.
func (t *BHLTree) Name() string { return "BHL-Tree" }

// Dims implements core.Index.
func (t *BHLTree) Dims() int { return t.dims }

// Size implements core.Index.
func (t *BHLTree) Size() int { return len(t.store) }

// Build implements core.Index.
func (t *BHLTree) Build(pts []geom.Point) {
	t.store = append(t.store[:0], pts...)
	t.kd.Build(t.store)
}

// BatchInsert implements core.Index — by full rebuild, the BHL-tree's
// defining (and dooming) property.
func (t *BHLTree) BatchInsert(pts []geom.Point) {
	if len(pts) == 0 {
		return
	}
	t.store = append(t.store, pts...)
	t.kd.Build(t.store)
}

// BatchDelete implements core.Index (multiset semantics) — full rebuild.
func (t *BHLTree) BatchDelete(pts []geom.Point) {
	if len(pts) == 0 || len(t.store) == 0 {
		return
	}
	want := make(map[geom.Point]int, len(pts))
	for _, p := range pts {
		want[p]++
	}
	out := t.store[:0]
	for _, p := range t.store {
		if c := want[p]; c > 0 {
			want[p] = c - 1
			continue
		}
		out = append(out, p)
	}
	t.store = out
	t.kd.Build(t.store)
}

// BatchDiff implements core.Index with a single rebuild for both halves.
func (t *BHLTree) BatchDiff(ins, del []geom.Point) {
	if len(del) > 0 {
		want := make(map[geom.Point]int, len(del))
		for _, p := range del {
			want[p]++
		}
		out := t.store[:0]
		for _, p := range t.store {
			if c := want[p]; c > 0 {
				want[p] = c - 1
				continue
			}
			out = append(out, p)
		}
		t.store = out
	}
	t.store = append(t.store, ins...)
	t.kd.Build(t.store)
}

// KNN implements core.Index.
func (t *BHLTree) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	return t.kd.KNN(q, k, dst)
}

// RangeCount implements core.Index.
func (t *BHLTree) RangeCount(box geom.Box) int { return t.kd.RangeCount(box) }

// RangeList implements core.Index.
func (t *BHLTree) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	return t.kd.RangeList(box, dst)
}

// Validate checks the underlying kd-tree and the store/tree agreement.
func (t *BHLTree) Validate() error {
	if t.kd.Size() != len(t.store) {
		return errSizeMismatch(t.kd.Size(), len(t.store))
	}
	return t.kd.Validate()
}
