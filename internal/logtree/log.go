package logtree

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pkdtree"
)

// logBase is the capacity of level 0; level i holds at most logBase<<i
// points. A modest base keeps the forest shallow without hiding the
// logarithmic query overhead the structure exists to demonstrate.
const logBase = 1 << 10

// LogTree is the logarithmic-method kd-tree baseline: a forest of static
// kd-trees with capacities logBase·2^i. Insertions cascade like binary
// addition (a batch update touches at most O(log n) trees, each rebuilt
// from scratch at most once per carry chain); deletions remove points from
// whichever levels hold them, and a global rebuild compacts the forest
// when deletions have hollowed it out.
type LogTree struct {
	dims   int
	levels []*pkdtree.Tree // levels[i] is nil or holds <= logBase<<i points
	size   int
	// built tracks points placed since the last compaction, to decide
	// when deletions warrant a global rebuild.
	peak int
}

var _ core.Index = (*LogTree)(nil)

// NewLog returns an empty Log-tree.
func NewLog(dims int) *LogTree {
	return &LogTree{dims: dims}
}

// Name implements core.Index.
func (t *LogTree) Name() string { return "Log-Tree" }

// Dims implements core.Index.
func (t *LogTree) Dims() int { return t.dims }

// Size implements core.Index.
func (t *LogTree) Size() int { return t.size }

// Levels returns the number of occupied levels (test/bench observable:
// queries touch every one of them).
func (t *LogTree) Levels() int {
	n := 0
	for _, lv := range t.levels {
		if lv != nil {
			n++
		}
	}
	return n
}

func capOf(level int) int { return logBase << level }

// Build implements core.Index: place everything in the smallest level
// that fits (the canonical initial state of the logarithmic method).
func (t *LogTree) Build(pts []geom.Point) {
	t.levels = nil
	t.size = 0
	t.peak = 0
	t.BatchInsert(pts)
}

// BatchInsert implements core.Index: binary-counter carry — gather the
// batch plus every level that must spill, and rebuild one tree at the
// first level whose capacity holds the union.
func (t *LogTree) BatchInsert(pts []geom.Point) {
	if len(pts) == 0 {
		return
	}
	carry := len(pts)
	level := 0
	for ; ; level++ {
		if level < len(t.levels) && t.levels[level] != nil {
			carry += t.levels[level].Size()
			continue
		}
		if carry <= capOf(level) {
			break
		}
	}
	// Gather the spilled levels plus the batch and rebuild at `level`.
	all := make([]geom.Point, 0, carry)
	all = append(all, pts...)
	for i := 0; i < level && i < len(t.levels); i++ {
		if t.levels[i] != nil {
			all = t.levels[i].RangeList(allBox(t.dims), all)
			t.levels[i] = nil
		}
	}
	for len(t.levels) <= level {
		t.levels = append(t.levels, nil)
	}
	tree := pkdtree.NewDefault(t.dims)
	tree.Build(all)
	t.levels[level] = tree
	t.size += len(pts)
	if t.size > t.peak {
		t.peak = t.size
	}
}

// BatchDelete implements core.Index: each request must remove exactly one
// copy across the whole forest, so requests are apportioned to levels by
// counting availability first (a point query per distinct request per
// level — a fair rendition of why deletions are awkward under the
// logarithmic method). A global rebuild compacts the forest once half the
// peak has drained — the classic amortization.
func (t *LogTree) BatchDelete(pts []geom.Point) {
	if len(pts) == 0 || t.size == 0 {
		return
	}
	want := make(map[geom.Point]int, len(pts))
	for _, p := range pts {
		want[p]++
	}
	for li, lv := range t.levels {
		if lv == nil || len(want) == 0 {
			continue
		}
		var batch []geom.Point
		for p, w := range want {
			c := lv.RangeCount(geom.BoxOf(p, p))
			take := w
			if c < take {
				take = c
			}
			if take == 0 {
				continue
			}
			for i := 0; i < take; i++ {
				batch = append(batch, p)
			}
			if w == take {
				delete(want, p)
			} else {
				want[p] = w - take
			}
		}
		if len(batch) > 0 {
			before := lv.Size()
			lv.BatchDelete(batch)
			t.size -= before - lv.Size()
			if lv.Size() == 0 {
				t.levels[li] = nil
			}
		}
	}
	if t.size*2 < t.peak {
		t.compact()
	}
}

// BatchDiff implements core.Index.
func (t *LogTree) BatchDiff(ins, del []geom.Point) {
	t.BatchDelete(del)
	t.BatchInsert(ins)
}

// compact rebuilds the forest into canonical shape.
func (t *LogTree) compact() {
	all := make([]geom.Point, 0, t.size)
	for _, lv := range t.levels {
		if lv != nil {
			all = lv.RangeList(allBox(t.dims), all)
		}
	}
	t.levels = nil
	t.size = 0
	t.peak = 0
	t.BatchInsert(all)
	// BatchInsert(all) set size/peak as an insertion; normalize.
	t.size = len(all)
	t.peak = t.size
}

// KNN implements core.Index: every occupied level is searched and the
// results merged — the O(log n) multiplier on queries that the paper
// holds against the logarithmic method.
func (t *LogTree) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	h := geom.GetKNNHeap(k)
	bufp := geom.GetPointBuf()
	buf := *bufp
	for _, lv := range t.levels {
		if lv == nil {
			continue
		}
		buf = lv.KNN(q, k, buf[:0])
		for _, p := range buf {
			h.Push(p, geom.Dist2(p, q, t.dims))
		}
	}
	*bufp = buf
	geom.PutPointBuf(bufp)
	dst = h.Append(dst)
	geom.PutKNNHeap(h)
	return dst
}

// RangeCount implements core.Index.
func (t *LogTree) RangeCount(box geom.Box) int {
	n := 0
	for _, lv := range t.levels {
		if lv != nil {
			n += lv.RangeCount(box)
		}
	}
	return n
}

// RangeList implements core.Index.
func (t *LogTree) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	for _, lv := range t.levels {
		if lv != nil {
			dst = lv.RangeList(box, dst)
		}
	}
	return dst
}

// Validate checks per-level kd invariants, level capacities, and the size
// bookkeeping.
func (t *LogTree) Validate() error {
	total := 0
	for i, lv := range t.levels {
		if lv == nil {
			continue
		}
		if lv.Size() > capOf(i) {
			return fmt.Errorf("level %d over capacity: %d > %d", i, lv.Size(), capOf(i))
		}
		if err := lv.Validate(); err != nil {
			return fmt.Errorf("level %d: %w", i, err)
		}
		total += lv.Size()
	}
	if total != t.size {
		return errSizeMismatch(total, t.size)
	}
	return nil
}

func errSizeMismatch(got, want int) error {
	return fmt.Errorf("logtree: size bookkeeping mismatch: %d vs %d", got, want)
}

// allBox covers every representable coordinate (used to flatten levels).
func allBox(dims int) geom.Box {
	const big = int64(1) << 62
	var b geom.Box
	for d := 0; d < dims; d++ {
		b.Lo[d], b.Hi[d] = -big, big
	}
	return b
}
