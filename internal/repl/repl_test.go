package repl

import (
	"bytes"
	"fmt"
	"io"
	"maps"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/wal"
)

// modelApplier is a map-backed Applier that enforces the ordering
// contract the Follower promises: contiguous window sequences, with
// Bootstrap the only way to jump (or regress).
type modelApplier struct {
	mu         sync.Mutex
	seq        uint64
	term       uint64
	state      map[string]geom.Point
	applies    int
	bootstraps int
	violation  string
}

func newModelApplier() *modelApplier {
	return &modelApplier{state: make(map[string]geom.Point)}
}

func (m *modelApplier) AppliedSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq
}

func (m *modelApplier) Term() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.term
}

func (m *modelApplier) ApplyWindow(seq uint64, ops []wal.Op[string]) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if seq != m.seq+1 {
		m.violation = fmt.Sprintf("ApplyWindow(%d) after seq %d", seq, m.seq)
		return fmt.Errorf("model: %s", m.violation)
	}
	for _, o := range ops {
		if o.Del {
			delete(m.state, o.ID)
		} else {
			m.state[o.ID] = o.P
		}
	}
	m.seq = seq
	m.applies++
	return nil
}

func (m *modelApplier) Bootstrap(seq, term uint64, entries []wal.Op[string]) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state = make(map[string]geom.Point, len(entries))
	for _, e := range entries {
		if e.Del {
			m.violation = fmt.Sprintf("Bootstrap(%d) carried a delete", seq)
			return fmt.Errorf("model: %s", m.violation)
		}
		m.state[e.ID] = e.P
	}
	m.seq = seq
	m.term = term
	m.bootstraps++
	return nil
}

func (m *modelApplier) snapshot() (uint64, map[string]geom.Point) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq, maps.Clone(m.state)
}

func (m *modelApplier) violationStr() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.violation
}

func (m *modelApplier) counts() (applies, bootstraps int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applies, m.bootstraps
}

// leaderModel plays the Collection's role on the leader side: a state
// map whose mutations publish one window each through the hub, with the
// snapshot capture consistent with the hub head (the mutex stands in
// for the flush lock).
type leaderModel struct {
	mu    sync.Mutex
	state map[string]geom.Point
	hub   *Hub[string]
}

func newLeaderModel(retainWindows, retainBytes int) *leaderModel {
	return &leaderModel{
		state: make(map[string]geom.Point),
		hub:   NewHub[string](wal.StringCodec{}, 0, retainWindows, retainBytes),
	}
}

func (lm *leaderModel) commit(ops []wal.Op[string]) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, o := range ops {
		if o.Del {
			delete(lm.state, o.ID)
		} else {
			lm.state[o.ID] = o.P
		}
	}
	lm.hub.Publish(lm.hub.LastSeq()+1, ops)
}

func (lm *leaderModel) snapshot() (uint64, []wal.Op[string], error) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	entries := make([]wal.Op[string], 0, len(lm.state))
	for id, p := range lm.state {
		entries = append(entries, wal.Op[string]{ID: id, P: p})
	}
	return lm.hub.LastSeq(), entries, nil
}

func startTestLeader(t *testing.T, lm *leaderModel) (*Leader[string], string) {
	t.Helper()
	l := NewLeader(LeaderOptions[string]{
		Codec:        wal.StringCodec{},
		Hub:          lm.hub,
		Snapshot:     lm.snapshot,
		PingInterval: 20 * time.Millisecond,
		Logf:         t.Logf,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l.Serve(ln)
	t.Cleanup(l.Close)
	return l, ln.Addr().String()
}

func startTestFollower(t *testing.T, addr, id string, app Applier[string]) *Follower[string] {
	t.Helper()
	f := NewFollower(app, FollowerOptions[string]{
		Addr:       addr,
		ID:         id,
		Codec:      wal.StringCodec{},
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond,
		Logf:       t.Logf,
	})
	f.Start()
	t.Cleanup(f.Stop)
	return f
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func checkConverged(t *testing.T, lm *leaderModel, app *modelApplier) {
	t.Helper()
	waitFor(t, "follower convergence", func() bool {
		seq, _ := app.snapshot()
		return seq == lm.hub.LastSeq()
	})
	_, got := app.snapshot()
	lm.mu.Lock()
	want := maps.Clone(lm.state)
	lm.mu.Unlock()
	if !maps.Equal(got, want) {
		t.Fatalf("follower state %v, leader %v", got, want)
	}
	if v := app.violationStr(); v != "" {
		t.Fatalf("ordering violation: %s", v)
	}
}

// TestTailStreaming is the happy path: a follower connected from seq 0
// receives every committed window in order, with no bootstrap.
func TestTailStreaming(t *testing.T) {
	lm := newLeaderModel(0, 0)
	leader, addr := startTestLeader(t, lm)
	app := newModelApplier()
	f := startTestFollower(t, addr, "f1", app)

	waitFor(t, "session", func() bool { return f.Status().Connected })
	for i := 0; i < 50; i++ {
		lm.commit([]wal.Op[string]{
			{ID: fmt.Sprintf("obj-%d", i%10), P: geom.Pt2(int64(i), int64(-i))},
		})
	}
	lm.commit([]wal.Op[string]{{ID: "obj-3", Del: true}})
	checkConverged(t, lm, app)
	if _, boots := app.counts(); boots != 0 {
		t.Fatalf("tail-only follower bootstrapped %d times", boots)
	}
	st := f.Status()
	if st.Duplicates != 0 {
		t.Fatalf("follower skipped %d duplicates on a clean stream", st.Duplicates)
	}
	// Acks drain leader-side lag to zero.
	waitFor(t, "leader lag", func() bool {
		ls := leader.Stats()
		return len(ls.Followers) == 1 && ls.Followers[0].LagWindows == 0
	})
}

// TestSnapshotBootstrap forces the bootstrap path: the hub retains only
// 2 windows, and the follower connects after 20 commits, so its resume
// point is long evicted.
func TestSnapshotBootstrap(t *testing.T) {
	lm := newLeaderModel(2, 0)
	leader, addr := startTestLeader(t, lm)
	for i := 0; i < 20; i++ {
		lm.commit([]wal.Op[string]{{ID: fmt.Sprintf("obj-%d", i), P: geom.Pt2(int64(i), 7)}})
	}
	app := newModelApplier()
	startTestFollower(t, addr, "f1", app)
	checkConverged(t, lm, app)
	if _, boots := app.counts(); boots != 1 {
		t.Fatalf("follower bootstrapped %d times, want 1", boots)
	}
	if got := leader.Stats().SnapshotsSent; got != 1 {
		t.Fatalf("leader sent %d snapshots, want 1", got)
	}
	// Post-bootstrap commits ride the tail.
	lm.commit([]wal.Op[string]{{ID: "post", P: geom.Pt2(1, 2)}})
	checkConverged(t, lm, app)
	if _, boots := app.counts(); boots != 1 {
		t.Fatalf("post-bootstrap windows re-bootstrapped (%d)", boots)
	}
}

// TestResumeFromSeq covers the restart contract: a follower that
// vanishes and returns with its applied seq resumes from the retained
// tail — no bootstrap, no duplicate applies, no gaps.
func TestResumeFromSeq(t *testing.T) {
	lm := newLeaderModel(0, 0)
	_, addr := startTestLeader(t, lm)
	app := newModelApplier()
	f := startTestFollower(t, addr, "f1", app)
	for i := 0; i < 10; i++ {
		lm.commit([]wal.Op[string]{{ID: "a", P: geom.Pt2(int64(i), 0)}})
	}
	checkConverged(t, lm, app)
	f.Stop()

	// Windows committed while the follower is away.
	for i := 10; i < 25; i++ {
		lm.commit([]wal.Op[string]{{ID: "b", P: geom.Pt2(int64(i), 1)}})
	}
	f2 := startTestFollower(t, addr, "f1", app)
	checkConverged(t, lm, app)
	st := f2.Status()
	applies, boots := app.counts()
	if boots != 0 || st.Duplicates != 0 {
		t.Fatalf("resume took %d bootstraps, %d duplicates; want 0/0", boots, st.Duplicates)
	}
	if applies != 25 {
		t.Fatalf("follower applied %d windows, want 25", applies)
	}
}

// TestEmptyLeaderBootstrap pins the latent-gap fix the resume handshake
// needs: following an empty leader (no snapshot, empty log, head 0)
// must succeed at seq 0 without error — and a follower AHEAD of that
// empty leader must be re-bootstrapped down to zero, not left serving
// stale state.
func TestEmptyLeaderBootstrap(t *testing.T) {
	lm := newLeaderModel(0, 0)
	_, addr := startTestLeader(t, lm)
	app := newModelApplier()
	f := startTestFollower(t, addr, "empty-start", app)
	waitFor(t, "session", func() bool { return f.Status().Connected })
	if st := f.Status(); st.LeaderSeq != 0 || st.AppliedSeq != 0 || st.LagWindows != 0 {
		t.Fatalf("empty-leader status: %+v", st)
	}
	if _, boots := app.counts(); boots != 0 {
		t.Fatalf("empty leader forced %d bootstraps on an empty follower", boots)
	}
	// First commits flow as the plain tail.
	lm.commit([]wal.Op[string]{{ID: "first", P: geom.Pt2(1, 1)}})
	checkConverged(t, lm, app)
	f.Stop()

	// A follower ahead of the leader (here: a fresh empty leader while
	// the follower kept state from the old one) must regress via
	// snapshot, down to an empty state at seq 0.
	lm2 := newLeaderModel(0, 0)
	_, addr2 := startTestLeader(t, lm2)
	f2 := startTestFollower(t, addr2, "ahead", app)
	waitFor(t, "re-bootstrap", func() bool { _, boots := app.counts(); return boots == 1 })
	seq, state := app.snapshot()
	if seq != 0 || len(state) != 0 {
		t.Fatalf("after wiped-leader re-bootstrap: seq %d, %d objects; want 0, 0", seq, len(state))
	}
	if st := f2.Status(); st.LagWindows != 0 {
		t.Fatalf("lag after re-bootstrap: %+v", st)
	}
}

// TestHubTailFrom pins the snapshot-or-tail decision logic.
func TestHubTailFrom(t *testing.T) {
	h := NewHub[string](wal.StringCodec{}, 5, 3, 0)
	if _, _, gap := h.TailFrom(5, nil); gap {
		t.Fatal("caught-up follower on a fresh hub reported a gap")
	}
	if _, _, gap := h.TailFrom(3, nil); !gap {
		t.Fatal("behind-recovery follower on an empty ring must need a snapshot")
	}
	if _, _, gap := h.TailFrom(9, nil); !gap {
		t.Fatal("follower ahead of the head must need a snapshot")
	}
	for seq := uint64(6); seq <= 10; seq++ {
		h.Publish(seq, []wal.Op[string]{{ID: "x", P: geom.Pt2(int64(seq), 0)}})
	}
	// Retention 3: ring holds 8, 9, 10.
	wins, last, gap := h.TailFrom(7, nil)
	if gap || last != 10 || len(wins) != 3 {
		t.Fatalf("TailFrom(7): %d wins, last %d, gap %t", len(wins), last, gap)
	}
	seq, _, err := wal.DecodeWindowPayload(wins[0], wal.StringCodec{}, nil)
	if err != nil || seq != 8 {
		t.Fatalf("first tail window decodes to seq %d (%v), want 8", seq, err)
	}
	if _, _, gap := h.TailFrom(6, nil); !gap {
		t.Fatal("evicted resume point must report a gap")
	}
	if wins, _, gap := h.TailFrom(10, nil); gap || len(wins) != 0 {
		t.Fatalf("caught-up TailFrom: %d wins, gap %t", len(wins), gap)
	}
}

// TestHubByteRetention: the byte bound evicts like the window bound but
// always keeps the newest window.
func TestHubByteRetention(t *testing.T) {
	h := NewHub[string](wal.StringCodec{}, 0, 1<<20, 64)
	big := []wal.Op[string]{{ID: "padding-padding-padding", P: geom.Pt2(1, 2)}}
	for seq := uint64(1); seq <= 10; seq++ {
		h.Publish(seq, big)
	}
	windows, bytes, last := h.Stats()
	if last != 10 || windows == 0 || bytes > 64+len(big[0].ID)+16 {
		t.Fatalf("byte retention: %d windows, %d bytes, last %d", windows, bytes, last)
	}
	if windows >= 10 {
		t.Fatalf("byte bound evicted nothing (%d windows)", windows)
	}
}

// TestFrameRoundTrip pins the frame encoding and its rejection paths.
func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello frame")
	b := appendFrame(nil, fmWindow, payload)
	typ, got, _, err := readFrame(bytes.NewReader(b), 1<<10, nil)
	if err != nil || typ != fmWindow || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: typ %d, payload %q, err %v", typ, got, err)
	}

	for name, mut := range map[string]func([]byte) []byte{
		"zero type":     func(b []byte) []byte { b[0] = 0; return b },
		"unknown type":  func(b []byte) []byte { b[0] = fmMax; return b },
		"crc flip":      func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"torn payload":  func(b []byte) []byte { return b[:len(b)-2] },
		"torn header":   func(b []byte) []byte { return b[:4] },
		"length beyond": func(b []byte) []byte { b[1], b[2] = 0xff, 0xff; return b },
	} {
		bad := mut(append([]byte(nil), b...))
		if _, _, _, err := readFrame(bytes.NewReader(bad), 1<<10, nil); err == nil {
			t.Fatalf("%s: decoded without error", name)
		}
	}
}

// TestStreamRejectsGap: a window skipping ahead severs the session
// instead of applying out of order.
func TestStreamRejectsGap(t *testing.T) {
	app := newModelApplier()
	f := NewFollower(app, FollowerOptions[string]{Addr: "unused", Codec: wal.StringCodec{}})
	var s []byte
	s = append(s, Magic...)
	s = appendFrame(s, fmHello, seqTermPayload(nil, 3, 0))
	s = appendFrame(s, fmWindow, windowPayload(nil, 0, wal.EncodeWindowPayload(nil, wal.StringCodec{}, 1, []wal.Op[string]{{ID: "a", P: geom.Pt2(1, 1)}})))
	s = appendFrame(s, fmWindow, windowPayload(nil, 0, wal.EncodeWindowPayload(nil, wal.StringCodec{}, 3, []wal.Op[string]{{ID: "b", P: geom.Pt2(2, 2)}})))
	err := f.stream(bytes.NewReader(s), nopWriter{})
	if err == nil {
		t.Fatal("gapped stream consumed without error")
	}
	if app.applies != 1 || app.violation != "" {
		t.Fatalf("gap handling: %d applies, violation %q", app.applies, app.violation)
	}
}

// TestStreamSkipsDuplicates: a window at or below the applied seq is
// dropped and counted, never re-applied.
func TestStreamSkipsDuplicates(t *testing.T) {
	app := newModelApplier()
	f := NewFollower(app, FollowerOptions[string]{Addr: "unused", Codec: wal.StringCodec{}})
	w1 := windowPayload(nil, 0, wal.EncodeWindowPayload(nil, wal.StringCodec{}, 1, []wal.Op[string]{{ID: "a", P: geom.Pt2(1, 1)}}))
	var s []byte
	s = append(s, Magic...)
	s = appendFrame(s, fmHello, seqTermPayload(nil, 1, 0))
	s = appendFrame(s, fmWindow, w1)
	s = appendFrame(s, fmWindow, w1) // regression: same seq again
	s = appendFrame(s, fmWindow, windowPayload(nil, 0, wal.EncodeWindowPayload(nil, wal.StringCodec{}, 2, []wal.Op[string]{{ID: "b", P: geom.Pt2(2, 2)}})))
	if err := f.stream(bytes.NewReader(s), nopWriter{}); err != io.EOF {
		t.Fatalf("stream exit: %v, want EOF", err)
	}
	if app.applies != 2 || f.duplicates.Load() != 1 {
		t.Fatalf("duplicate handling: %d applies, %d duplicates", app.applies, f.duplicates.Load())
	}
	if _, state := app.snapshot(); len(state) != 2 {
		t.Fatalf("state after duplicate skip: %v", state)
	}
}

// TestStreamRejectsLowerTermWindow is the fencing contract at frame
// granularity: a WINDOW frame whose term differs from the session's
// HELLO term severs the session before anything applies.
func TestStreamRejectsLowerTermWindow(t *testing.T) {
	app := newModelApplier()
	app.term = 5 // this replica has adopted term 5
	f := NewFollower(app, FollowerOptions[string]{Addr: "unused", Codec: wal.StringCodec{}})
	var s []byte
	s = append(s, Magic...)
	s = appendFrame(s, fmHello, seqTermPayload(nil, 0, 5))
	s = appendFrame(s, fmWindow, windowPayload(nil, 3, // a stale timeline's window
		wal.EncodeWindowPayload(nil, wal.StringCodec{}, 1, []wal.Op[string]{{ID: "a", P: geom.Pt2(1, 1)}})))
	err := f.stream(bytes.NewReader(s), nopWriter{})
	if err == nil {
		t.Fatal("lower-term window consumed without error")
	}
	if app.applies != 0 {
		t.Fatalf("lower-term window applied (%d applies)", app.applies)
	}
}

// TestStreamRejectsStaleLeaderHello: a session whose HELLO carries a
// term below the replica's adopted term is refused outright.
func TestStreamRejectsStaleLeaderHello(t *testing.T) {
	app := newModelApplier()
	app.term = 5
	f := NewFollower(app, FollowerOptions[string]{Addr: "unused", Codec: wal.StringCodec{}})
	var s []byte
	s = append(s, Magic...)
	s = appendFrame(s, fmHello, seqTermPayload(nil, 9, 4))
	s = appendFrame(s, fmWindow, windowPayload(nil, 4,
		wal.EncodeWindowPayload(nil, wal.StringCodec{}, 1, []wal.Op[string]{{ID: "a", P: geom.Pt2(1, 1)}})))
	err := f.stream(bytes.NewReader(s), nopWriter{})
	if err == nil {
		t.Fatal("stale-term HELLO accepted")
	}
	if app.applies != 0 || f.connected.Load() {
		t.Fatalf("stale leader session left state: %d applies, connected %t", app.applies, f.connected.Load())
	}
}

// TestLeaderDeposedByHigherTermFollow: a FOLLOW handshake carrying a
// higher term than the leader's refuses the session and fires
// OnDeposed — the signal the service uses to fence itself.
func TestLeaderDeposedByHigherTermFollow(t *testing.T) {
	lm := newLeaderModel(0, 0)
	deposed := make(chan uint64, 1)
	l := NewLeader(LeaderOptions[string]{
		Codec:     wal.StringCodec{},
		Hub:       lm.hub,
		Snapshot:  lm.snapshot,
		Term:      func() uint64 { return 1 },
		OnDeposed: func(term uint64) { deposed <- term },
		Logf:      t.Logf,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l.Serve(ln)
	t.Cleanup(l.Close)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hs := append([]byte(nil), Magic...)
	hs = appendFrame(hs, fmFollow, followPayload(nil, 0, 2, "newer"))
	if _, err := conn.Write(hs); err != nil {
		t.Fatal(err)
	}
	select {
	case term := <-deposed:
		if term != 2 {
			t.Fatalf("OnDeposed(%d), want 2", term)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDeposed never fired")
	}
	// The refused session gets no HELLO: the conn reaches EOF without a
	// leader magic.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := conn.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("deposed leader wrote %d bytes (err %v), want bare EOF", n, err)
	}
}

// TestCrossTermResumeForcesBootstrap: a follower whose seq is resumable
// but whose term is older must be re-bootstrapped — cross-term
// incremental resume would mix timelines.
func TestCrossTermResumeForcesBootstrap(t *testing.T) {
	lm := newLeaderModel(0, 0)
	deposed := make(chan uint64, 1)
	l := NewLeader(LeaderOptions[string]{
		Codec:        wal.StringCodec{},
		Hub:          lm.hub,
		Snapshot:     lm.snapshot,
		Term:         func() uint64 { return 3 },
		OnDeposed:    func(term uint64) { deposed <- term },
		PingInterval: 20 * time.Millisecond,
		Logf:         t.Logf,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l.Serve(ln)
	t.Cleanup(l.Close)

	for i := 0; i < 5; i++ {
		lm.commit([]wal.Op[string]{{ID: fmt.Sprintf("obj-%d", i), P: geom.Pt2(int64(i), 0)}})
	}
	app := newModelApplier()
	app.seq = 3 // resumable seq, but from term 1's timeline
	app.term = 1
	startTestFollower(t, ln.Addr().String(), "old-term", app)
	waitFor(t, "cross-term bootstrap", func() bool { _, boots := app.counts(); return boots == 1 })
	checkConverged(t, lm, app)
	if got := app.Term(); got != 3 {
		t.Fatalf("follower adopted term %d, want 3", got)
	}
	select {
	case term := <-deposed:
		t.Fatalf("older-term follower deposed the leader (term %d)", term)
	default:
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
