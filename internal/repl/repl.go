// Package repl streams committed WAL windows from a leader psid to
// follower replicas. The unit of replication is exactly the unit of
// durability: the netted flush window PR 8's write-ahead log journals —
// at most one op per ID, strictly increasing sequence numbers — so a
// follower is just a Collection replaying the same committed BatchDiff
// windows the leader applied, and every layer above the window (epochs,
// snapshot reads, metrics, the follower's own local WAL) works
// unchanged.
//
// The wire protocol is deliberately close to the on-disk one. Both
// sides open with an 8-byte magic; after that everything is frames:
//
//	type byte | u32le payloadLen | u32le crc32(payload) | payload
//
// A window frame's payload is a uvarint leader term followed
// byte-for-byte by the wal.log record payload (wal.EncodeWindowPayload),
// so there is one window encoding and one fuzz surface for state that
// crosses a trust boundary. The handshake is a FOLLOW frame carrying
// the follower's last applied sequence (its WAL's recovered LastSeq —
// resume is free), the highest leader term it has adopted, and a stable
// follower identity for the leader's per-follower metric series. The
// leader answers HELLO (its head sequence and its term) and then either
// streams the retained log tail or, when the follower is behind the
// retention horizon (or ahead of a rebuilt leader, or carries an older
// term), a full snapshot (SNAP_BEGIN / SNAP_DATA* / SNAP_END) captured
// under the Collection's flush lock, followed by the tail. PING frames
// carry the leader's head sequence while idle; ACK frames flow back
// with the follower's applied sequence and feed the leader's lag
// gauges.
//
// Terms fence deposed leaders. The term is a monotonic promotion
// counter journaled in the WAL snapshot: a follower refuses a HELLO
// whose term is below its own, refuses any WINDOW frame whose term
// differs from the session's HELLO term (severing the session without
// applying), and adopts a higher term only through a snapshot bootstrap
// — which persists it. A leader that receives a FOLLOW carrying a
// higher term than its own has been deposed: it refuses the session and
// reports the term upward (LeaderOptions.OnDeposed) so the service can
// fence itself read-only.
//
// Consistency contract: followers are eventually consistent — a window
// is visible on a follower only after the leader committed (and, per
// its fsync policy, journaled) it, shipped it, and the follower's own
// flush applied it. Ordering is strict: a follower applies window seq
// n+1 only after n, never skips, and never re-applies (duplicates are
// counted and dropped). docs/replication.md has the full protocol and
// failure-mode walkthrough; internal/service wires this package into
// psid as -repl (leader) / -replica-of (follower).
package repl

import "time"

// Magic opens both directions of a replication connection, versioning
// the protocol: a follower pointed at a non-replication port (or an old
// leader speaking the term-less v1 protocol) fails loudly at byte 8
// instead of misparsing frames.
const Magic = "PSIREPL2"

// Frame types. The zero value is invalid so a zeroed header never
// passes for a frame.
const (
	fmFollow    byte = 1 + iota // f→l: uvarint lastSeq | uvarint term | uvarint idLen | id
	fmHello                     // l→f: uvarint leaderSeq | uvarint leaderTerm
	fmSnapBegin                 // l→f: uvarint snapSeq | uvarint entryCount
	fmSnapData                  // l→f: window payload at snapSeq (a chunk of entries)
	fmSnapEnd                   // l→f: uvarint entryCount (must match SNAP_BEGIN)
	fmWindow                    // l→f: uvarint term | wal window payload (uvarint seq | uvarint nOps | ops)
	fmPing                      // l→f: uvarint leaderSeq (idle heartbeat, lag source)
	fmAck                       // f→l: uvarint appliedSeq
	fmMax                       // first invalid type
)

const (
	// DefaultMaxFrameBytes caps one frame's payload. Window frames track
	// the WAL's own record bound; snapshot chunks are capped far below
	// this by DefaultSnapChunkOps. The limit exists so a corrupt or
	// hostile length prefix cannot make the decoder allocate gigabytes.
	DefaultMaxFrameBytes = 1 << 26

	// DefaultSnapChunkOps is how many snapshot entries ride in one
	// SNAP_DATA frame: big enough to amortize framing, small enough that
	// a chunk never nears the frame limit.
	DefaultSnapChunkOps = 4096

	// DefaultPingInterval is the leader's idle heartbeat cadence.
	DefaultPingInterval = 2 * time.Second

	// DefaultReadTimeout bounds a silent peer: several missed heartbeats
	// (leader side: several missed acks) before the connection is
	// declared dead. Outright closes are detected immediately; the
	// timeout only matters for links that black-hole traffic.
	DefaultReadTimeout = 15 * time.Second

	// DefaultWriteTimeout bounds one frame write to a stalled peer.
	DefaultWriteTimeout = 10 * time.Second

	// MaxFollowerIDLen caps the follower identity in the FOLLOW frame —
	// it becomes a metric label value, not a buffer to fill.
	MaxFollowerIDLen = 256
)
