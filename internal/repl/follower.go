package repl

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// Applier is the follower's state sink — internal/service implements it
// over the Collection flush commit and the follower's own WAL. The
// Follower guarantees strict ordering into it: ApplyWindow is called
// with contiguous ascending sequences (each exactly AppliedSeq()+1),
// duplicates are dropped before reaching it, and a gap is a protocol
// error that severs the connection instead of applying. Bootstrap
// replaces the full state — its sequence may regress below AppliedSeq
// (re-bootstrapping from a rebuilt leader), all the way to zero for an
// empty leader — and must persist the leader term it carries: Term()
// reports the highest term adopted so far, and the Follower refuses
// sessions from leaders below it. Slices passed in are reused by the
// Follower and must not be retained.
type Applier[ID comparable] interface {
	AppliedSeq() uint64
	Term() uint64
	ApplyWindow(seq uint64, ops []wal.Op[ID]) error
	Bootstrap(seq, term uint64, entries []wal.Op[ID]) error
}

// FollowerOptions configures a Follower. Addr, Codec and the Applier
// (passed to NewFollower) are required.
type FollowerOptions[ID comparable] struct {
	// Addr is the leader's replication listener (host:port).
	Addr string
	// ID is the stable follower identity sent in the FOLLOW handshake;
	// the leader keys its per-follower metric series by it. Empty makes
	// the leader fall back to the connection's remote address (stable
	// enough for a quick look, wrong across reconnects).
	ID string
	// Codec decodes window payloads; must match the leader's.
	Codec wal.Codec[ID]
	// MaxFrameBytes bounds one received frame; <= 0 selects
	// DefaultMaxFrameBytes.
	MaxFrameBytes int
	// DialTimeout bounds one connection attempt; <= 0 selects 5s.
	DialTimeout time.Duration
	// ReadTimeout bounds the silence between leader frames (pings arrive
	// every DefaultPingInterval while idle); <= 0 selects
	// DefaultReadTimeout.
	ReadTimeout time.Duration
	// BackoffMin/BackoffMax bound the reconnect backoff (doubling from
	// min to max; reset after a healthy session); <= 0 select 50ms / 2s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Obs, when set, registers the follower's psi_repl_* series.
	Obs *obs.Registry
	// Logf, when set, receives one line per connect, bootstrap and
	// session error.
	Logf func(format string, args ...any)
}

// FollowerStatus is the follower-side replication block of /stats (and
// the fields /healthz reports).
type FollowerStatus struct {
	Connected  bool   `json:"connected"`
	Leader     string `json:"leader"`
	LeaderSeq  uint64 `json:"leader_seq"`
	AppliedSeq uint64 `json:"applied_seq"`
	// LagWindows is the last leader head this follower heard (HELLO or
	// PING) minus its applied seq; 0 when fully caught up. While
	// disconnected it reports the lag as of the last contact.
	LagWindows uint64 `json:"lag_windows"`
	Reconnects uint64 `json:"reconnects"`
	Bootstraps uint64 `json:"bootstraps"`
	Windows    uint64 `json:"windows_applied"`
	Duplicates uint64 `json:"duplicates_skipped"`
	LastError  string `json:"last_error,omitempty"`
}

// Follower maintains one replication session against the leader,
// reconnecting with backoff forever until Stop. Create with
// NewFollower, start the loop with Start.
type Follower[ID comparable] struct {
	opts FollowerOptions[ID]
	app  Applier[ID]

	stop    chan struct{}
	closing atomic.Bool
	wg      sync.WaitGroup

	mu   sync.Mutex
	conn net.Conn // live session's conn, closed by Stop to interrupt reads
	err  string   // last session error

	connected  atomic.Bool
	leaderSeq  atomic.Uint64
	sessions   atomic.Uint64
	bootstraps atomic.Uint64
	windows    atomic.Uint64
	duplicates atomic.Uint64

	// stream-loop scratch, reused across frames (one session at a time).
	frameBuf []byte
	opsBuf   []wal.Op[ID]
	ackBuf   []byte
	seqBuf   []byte
}

// NewFollower returns a follower that has not started dialing; Start
// launches the session loop.
func NewFollower[ID comparable](app Applier[ID], opts FollowerOptions[ID]) *Follower[ID] {
	if opts.MaxFrameBytes <= 0 {
		opts.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = DefaultReadTimeout
	}
	if opts.BackoffMin <= 0 {
		opts.BackoffMin = 50 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 2 * time.Second
	}
	f := &Follower[ID]{opts: opts, app: app, stop: make(chan struct{})}
	f.registerMetrics(opts.Obs)
	return f
}

func (f *Follower[ID]) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("psi_repl_connected", "1 while the replication session to the leader is up.",
		func() float64 {
			if f.connected.Load() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("psi_repl_leader_seq", "Leader head sequence as of the last HELLO or PING.",
		func() float64 { return float64(f.leaderSeq.Load()) })
	reg.GaugeFunc("psi_repl_applied_seq", "Last leader window applied locally.",
		func() float64 { return float64(f.app.AppliedSeq()) })
	reg.GaugeFunc("psi_repl_lag_windows", "Leader head minus applied sequence.",
		func() float64 { return float64(f.lag()) })
	reg.CounterFunc("psi_repl_reconnects_total", "Sessions re-established after the first.", func() uint64 {
		if s := f.sessions.Load(); s > 0 {
			return s - 1
		}
		return 0
	})
	reg.CounterFunc("psi_repl_bootstraps_total", "Full-state snapshot bootstraps received.", f.bootstraps.Load)
	reg.CounterFunc("psi_repl_windows_applied_total", "Committed leader windows applied.", f.windows.Load)
	reg.CounterFunc("psi_repl_duplicates_skipped_total", "Already-applied windows received and dropped.", f.duplicates.Load)
}

func (f *Follower[ID]) lag() uint64 {
	head := f.leaderSeq.Load()
	if applied := f.app.AppliedSeq(); head > applied {
		return head - applied
	}
	return 0
}

// Start launches the session loop: dial, handshake, stream, reconnect
// with backoff, forever until Stop.
func (f *Follower[ID]) Start() {
	f.wg.Add(1)
	go f.run()
}

// Stop severs the session and stops reconnecting. Safe to call twice;
// returns after the loop has fully exited (no apply is in flight).
func (f *Follower[ID]) Stop() {
	if !f.closing.CompareAndSwap(false, true) {
		return
	}
	close(f.stop)
	f.mu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// SetAddr re-points the follower at a new leader address at runtime: the
// current session (if any) is severed and the reconnect loop dials the
// new address. The service's FOLLOW admin command uses it so surviving
// followers join a promoted leader without a restart.
func (f *Follower[ID]) SetAddr(addr string) {
	f.mu.Lock()
	f.opts.Addr = addr
	conn := f.conn
	f.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// addr returns the current leader address (mutable via SetAddr).
func (f *Follower[ID]) addr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opts.Addr
}

// Status snapshots the follower's replication position.
func (f *Follower[ID]) Status() FollowerStatus {
	st := FollowerStatus{
		Connected:  f.connected.Load(),
		Leader:     f.addr(),
		LeaderSeq:  f.leaderSeq.Load(),
		AppliedSeq: f.app.AppliedSeq(),
		LagWindows: f.lag(),
		Bootstraps: f.bootstraps.Load(),
		Windows:    f.windows.Load(),
		Duplicates: f.duplicates.Load(),
	}
	if s := f.sessions.Load(); s > 0 {
		st.Reconnects = s - 1
	}
	f.mu.Lock()
	st.LastError = f.err
	f.mu.Unlock()
	return st
}

func (f *Follower[ID]) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

func (f *Follower[ID]) setErr(err error) {
	f.mu.Lock()
	f.err = err.Error()
	f.mu.Unlock()
}

func (f *Follower[ID]) run() {
	defer f.wg.Done()
	backoff := f.opts.BackoffMin
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		addr := f.addr()
		conn, err := net.DialTimeout("tcp", addr, f.opts.DialTimeout)
		if err != nil {
			f.setErr(err)
			if !f.sleep(backoff) {
				return
			}
			backoff = min(backoff*2, f.opts.BackoffMax)
			continue
		}
		f.mu.Lock()
		if f.closing.Load() {
			f.mu.Unlock()
			conn.Close()
			return
		}
		f.conn = conn
		f.mu.Unlock()

		start := time.Now()
		err = f.session(conn)
		conn.Close()
		f.connected.Store(false)
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		if f.closing.Load() {
			return
		}
		if err != nil {
			f.setErr(err)
			f.logf("repl: session with %s failed: %v", addr, err)
		}
		// A session that survived a while earned a fresh backoff; a
		// handshake that dies instantly keeps doubling.
		if time.Since(start) > f.opts.BackoffMax {
			backoff = f.opts.BackoffMin
		}
		if !f.sleep(backoff) {
			return
		}
		backoff = min(backoff*2, f.opts.BackoffMax)
	}
}

func (f *Follower[ID]) sleep(d time.Duration) bool {
	select {
	case <-f.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// session performs the handshake on an established connection and
// consumes the stream until an error (including Stop closing the conn).
func (f *Follower[ID]) session(conn net.Conn) error {
	rw := deadlineRW{c: conn, rt: f.opts.ReadTimeout, wt: DefaultWriteTimeout}
	applied, term := f.app.AppliedSeq(), f.app.Term()
	hs := append([]byte(nil), Magic...)
	hs = appendFrame(hs, fmFollow, followPayload(nil, applied, term, f.opts.ID))
	if _, err := rw.Write(hs); err != nil {
		return err
	}
	f.sessions.Add(1)
	f.logf("repl: following %s from seq %d (term %d)", conn.RemoteAddr(), applied, term)
	// The bufio reader sits above the deadline wrapper, so every fill
	// rearms the read deadline.
	return f.stream(bufio.NewReaderSize(rw, 64<<10), rw)
}

// stream consumes the leader's side of the protocol — magic, HELLO,
// then snapshot/window/ping frames — applying windows in strict order
// and writing ACKs to w. It is the follower's entire untrusted-input
// surface and must never panic and never apply an invalid, duplicate or
// out-of-order window, whatever bytes arrive (FuzzReplStream drives it
// with adversarial streams; w errors are only possible on live
// connections and sever the session).
func (f *Follower[ID]) stream(r io.Reader, w io.Writer) error {
	var magic [len(Magic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("repl: reading magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return fmt.Errorf("repl: bad magic %q", magic[:])
	}
	typ, payload, buf, err := readFrame(r, f.opts.MaxFrameBytes, f.frameBuf)
	f.frameBuf = buf
	if err != nil {
		return err
	}
	if typ != fmHello {
		return fmt.Errorf("repl: expected HELLO, got frame type %#x", typ)
	}
	head, sessionTerm, err := parseSeqTerm(payload)
	if err != nil {
		return err
	}
	// Fencing, follower side: a leader below the term this replica has
	// already adopted is deposed — refusing its stream is what keeps a
	// stale timeline from ever overwriting the promoted one.
	if local := f.app.Term(); sessionTerm < local {
		return fmt.Errorf("repl: leader term %d below local term %d: refusing stale leader", sessionTerm, local)
	}
	f.leaderSeq.Store(head)
	f.connected.Store(true)

	var snap *pendingSnap[ID]
	for {
		typ, payload, buf, err := readFrame(r, f.opts.MaxFrameBytes, f.frameBuf)
		f.frameBuf = buf
		if err != nil {
			return err
		}
		switch typ {
		case fmPing:
			if snap != nil {
				return fmt.Errorf("repl: PING inside a snapshot stream")
			}
			head, err := parseSeq(payload)
			if err != nil {
				return err
			}
			f.leaderSeq.Store(head)
			if err := f.ack(w, f.app.AppliedSeq()); err != nil {
				return err
			}
		case fmSnapBegin:
			if snap != nil {
				return fmt.Errorf("repl: nested SNAP_BEGIN")
			}
			seq, count, err := parseSnapBegin(payload)
			if err != nil {
				return err
			}
			// The count is a hostile-input allocation bound: entries are
			// collected incrementally, but a stream claiming more than
			// the frame data can carry is rejected up front.
			if count > 1<<40 {
				return fmt.Errorf("repl: snapshot claims %d entries", count)
			}
			snap = &pendingSnap[ID]{seq: seq, count: count}
		case fmSnapData:
			if snap == nil {
				return fmt.Errorf("repl: SNAP_DATA outside a snapshot stream")
			}
			seq, entries, err := wal.DecodeWindowPayload(payload, f.opts.Codec, snap.entries)
			if err != nil {
				return err
			}
			if seq != snap.seq {
				return fmt.Errorf("repl: snapshot chunk at seq %d inside snapshot at %d", seq, snap.seq)
			}
			if uint64(len(entries)) > snap.count {
				return fmt.Errorf("repl: snapshot overran its declared %d entries", snap.count)
			}
			for _, e := range entries[len(snap.entries):] {
				if e.Del {
					return fmt.Errorf("repl: delete op inside a snapshot")
				}
			}
			snap.entries = entries
		case fmSnapEnd:
			if snap == nil {
				return fmt.Errorf("repl: SNAP_END outside a snapshot stream")
			}
			count, err := parseSeq(payload)
			if err != nil {
				return err
			}
			if count != snap.count || uint64(len(snap.entries)) != count {
				return fmt.Errorf("repl: snapshot tally mismatch: declared %d, ended with %d, received %d",
					snap.count, count, len(snap.entries))
			}
			if err := f.app.Bootstrap(snap.seq, sessionTerm, snap.entries); err != nil {
				return fmt.Errorf("repl: bootstrap: %w", err)
			}
			f.bootstraps.Add(1)
			f.logf("repl: bootstrapped %d objects at seq %d (term %d)", len(snap.entries), snap.seq, sessionTerm)
			if err := f.ack(w, snap.seq); err != nil {
				return err
			}
			snap = nil
		case fmWindow:
			if snap != nil {
				return fmt.Errorf("repl: window frame inside a snapshot stream")
			}
			winTerm, win, err := splitWindowTerm(payload)
			if err != nil {
				return err
			}
			// Fencing, frame granularity: every window carries the term
			// it was committed under, and a mismatch with the session's
			// HELLO term severs the connection before anything applies.
			if winTerm != sessionTerm {
				return fmt.Errorf("repl: window term %d does not match session term %d: severing", winTerm, sessionTerm)
			}
			seq, ops, err := wal.DecodeWindowPayload(win, f.opts.Codec, f.opsBuf[:0])
			f.opsBuf = ops
			if err != nil {
				return err
			}
			applied := f.app.AppliedSeq()
			if seq <= applied {
				// Defensive: the resume handshake makes duplicates
				// impossible against a correct leader, so the chaos
				// tests assert this stays zero.
				f.duplicates.Add(1)
				continue
			}
			if seq != applied+1 {
				return fmt.Errorf("repl: window gap: got seq %d, applied %d", seq, applied)
			}
			if err := f.app.ApplyWindow(seq, ops); err != nil {
				return fmt.Errorf("repl: apply window %d: %w", seq, err)
			}
			f.windows.Add(1)
			if seq > f.leaderSeq.Load() {
				f.leaderSeq.Store(seq)
			}
			if err := f.ack(w, seq); err != nil {
				return err
			}
		default:
			return fmt.Errorf("repl: unexpected frame type %#x", typ)
		}
	}
}

// pendingSnap accumulates one in-flight snapshot bootstrap.
type pendingSnap[ID comparable] struct {
	seq     uint64
	count   uint64
	entries []wal.Op[ID]
}

func (f *Follower[ID]) ack(w io.Writer, seq uint64) error {
	f.seqBuf = seqPayload(f.seqBuf, seq)
	err := writeFrame(w, &f.ackBuf, fmAck, f.seqBuf)
	if err != nil {
		return fmt.Errorf("repl: writing ack: %w", err)
	}
	return nil
}
