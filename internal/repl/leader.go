package repl

import (
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// SnapshotFunc captures the leader's full committed state for a
// follower bootstrap: the sequence the state folds (which must be
// consistent with the hub — the service captures both under the
// Collection's flush lock via Checkpoint) and one Set op per live
// object. It may be called concurrently by several bootstrapping
// followers; each call materializes its own entry slice.
type SnapshotFunc[ID comparable] func() (seq uint64, entries []wal.Op[ID], err error)

// LeaderOptions configures a Leader. Codec, Hub and Snapshot are
// required; everything else defaults sensibly.
type LeaderOptions[ID comparable] struct {
	Codec    wal.Codec[ID]
	Hub      *Hub[ID]
	Snapshot SnapshotFunc[ID]
	// MaxFrameBytes bounds one received frame (followers only send tiny
	// FOLLOW/ACK frames, so this is an abuse guard); <= 0 selects
	// DefaultMaxFrameBytes.
	MaxFrameBytes int
	// PingInterval is the idle heartbeat cadence; <= 0 selects
	// DefaultPingInterval.
	PingInterval time.Duration
	// ReadTimeout/WriteTimeout bound one frame read (acks) and one frame
	// write to a silent or stalled follower; <= 0 selects the defaults.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// Term supplies the leader's current term for handshakes and window
	// frames (the service wires it to the WAL's journaled term). Nil
	// means term 0 — a pre-failover topology where fencing never fires.
	Term func() uint64
	// OnDeposed is called (once per offending connection, possibly
	// concurrently) when a follower's FOLLOW frame carries a higher term
	// than Term(): another node has been promoted, and this leader must
	// fence itself. The callback runs on a connection goroutine and must
	// not block or call back into the Leader (in particular not Close —
	// Close waits for the very goroutine the callback runs on).
	OnDeposed func(term uint64)
	// Obs, when set, registers the leader's psi_repl_* series: aggregate
	// connect/ship counters plus per-follower acked-seq/lag/connected
	// gauges keyed by the identity each follower sends in its FOLLOW
	// frame. One Leader per registry.
	Obs *obs.Registry
	// Logf, when set, receives one line per follower connect, disconnect
	// and bootstrap (cmd/psid wires log.Printf).
	Logf func(format string, args ...any)
}

// FollowerInfo is one follower's replication position as the leader
// sees it, served in /stats.
type FollowerInfo struct {
	ID        string `json:"id"`
	Connected bool   `json:"connected"`
	AckedSeq  uint64 `json:"acked_seq"`
	// LagWindows is the hub head minus the acked seq: how many committed
	// windows this follower has not confirmed applying.
	LagWindows uint64 `json:"lag_windows"`
}

// LeaderStats is the leader-side replication block of /stats.
type LeaderStats struct {
	LastSeq         uint64         `json:"last_seq"`
	Connected       int            `json:"connected"`
	RetainedWindows int            `json:"retained_windows"`
	RetainedBytes   int            `json:"retained_bytes"`
	Connects        uint64         `json:"connects"`
	SnapshotsSent   uint64         `json:"snapshots_sent"`
	WindowsSent     uint64         `json:"windows_sent"`
	BytesSent       uint64         `json:"bytes_sent"`
	Followers       []FollowerInfo `json:"followers"`
}

// Leader accepts follower connections and streams them the committed
// window tail (or a snapshot first, when they are beyond the hub's
// retention horizon). Create one with NewLeader, bind it with Serve,
// stop it with Close.
type Leader[ID comparable] struct {
	opts LeaderOptions[ID]

	ln      net.Listener
	stop    chan struct{}
	closing atomic.Bool
	wg      sync.WaitGroup

	mu      sync.Mutex
	entries map[string]*followerEntry // by follower identity, never removed (metric series live forever)

	connects      atomic.Uint64
	snapshotsSent atomic.Uint64
	windowsSent   atomic.Uint64
	bytesSent     atomic.Uint64
}

// followerEntry is one follower identity's persistent state: it
// survives disconnects so the metric series (and the acked position
// shown in /stats) carry across a follower restart.
type followerEntry struct {
	id        string
	acked     atomic.Uint64
	connected atomic.Bool

	mu   sync.Mutex
	conn net.Conn // current connection, nil when disconnected
}

// NewLeader returns an unbound leader.
func NewLeader[ID comparable](opts LeaderOptions[ID]) *Leader[ID] {
	if opts.MaxFrameBytes <= 0 {
		opts.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if opts.PingInterval <= 0 {
		opts.PingInterval = DefaultPingInterval
	}
	if opts.ReadTimeout <= 0 {
		opts.ReadTimeout = DefaultReadTimeout
	}
	if opts.WriteTimeout <= 0 {
		opts.WriteTimeout = DefaultWriteTimeout
	}
	l := &Leader[ID]{
		opts:    opts,
		stop:    make(chan struct{}),
		entries: make(map[string]*followerEntry),
	}
	l.registerMetrics(opts.Obs)
	return l
}

func (l *Leader[ID]) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("psi_repl_followers_connected", "Follower connections currently streaming.",
		func() float64 { return float64(l.connectedCount()) })
	reg.CounterFunc("psi_repl_connects_total", "Follower connections accepted (handshake completed).",
		l.connects.Load)
	reg.CounterFunc("psi_repl_snapshots_sent_total", "Full-state bootstraps streamed to followers.",
		l.snapshotsSent.Load)
	reg.CounterFunc("psi_repl_windows_sent_total", "Committed windows shipped to followers (counted per follower).",
		l.windowsSent.Load)
	reg.CounterFunc("psi_repl_bytes_sent_total", "Window and snapshot payload bytes shipped to followers.",
		l.bytesSent.Load)
}

func (l *Leader[ID]) connectedCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.entries {
		if e.connected.Load() {
			n++
		}
	}
	return n
}

// Serve accepts followers on ln until Close. It returns immediately;
// streaming runs in per-connection goroutines.
func (l *Leader[ID]) Serve(ln net.Listener) {
	l.ln = ln
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed by Close
			}
			l.wg.Add(1)
			go l.handleConn(conn)
		}
	}()
}

// Addr returns the bound listener address (nil before Serve).
func (l *Leader[ID]) Addr() net.Addr {
	if l.ln == nil {
		return nil
	}
	return l.ln.Addr()
}

// Close stops accepting, severs every follower connection, and waits
// for the per-connection goroutines to drain. Followers reconnect and
// resume against the next leader incarnation on their own.
func (l *Leader[ID]) Close() {
	if !l.closing.CompareAndSwap(false, true) {
		return
	}
	close(l.stop)
	if l.ln != nil {
		l.ln.Close()
	}
	l.mu.Lock()
	for _, e := range l.entries {
		e.mu.Lock()
		if e.conn != nil {
			e.conn.Close()
		}
		e.mu.Unlock()
	}
	l.mu.Unlock()
	l.wg.Wait()
}

// Stats snapshots the leader-side replication counters for /stats.
func (l *Leader[ID]) Stats() LeaderStats {
	windows, bytes, last := l.opts.Hub.Stats()
	st := LeaderStats{
		LastSeq:         last,
		RetainedWindows: windows,
		RetainedBytes:   bytes,
		Connects:        l.connects.Load(),
		SnapshotsSent:   l.snapshotsSent.Load(),
		WindowsSent:     l.windowsSent.Load(),
		BytesSent:       l.bytesSent.Load(),
	}
	l.mu.Lock()
	for _, e := range l.entries {
		acked := e.acked.Load()
		info := FollowerInfo{ID: e.id, Connected: e.connected.Load(), AckedSeq: acked}
		if last > acked {
			info.LagWindows = last - acked
		}
		if info.Connected {
			st.Connected++
		}
		st.Followers = append(st.Followers, info)
	}
	l.mu.Unlock()
	sort.Slice(st.Followers, func(i, j int) bool { return st.Followers[i].ID < st.Followers[j].ID })
	return st
}

func (l *Leader[ID]) logf(format string, args ...any) {
	if l.opts.Logf != nil {
		l.opts.Logf(format, args...)
	}
}

// term returns the leader's current term (0 without a supplier).
func (l *Leader[ID]) term() uint64 {
	if l.opts.Term == nil {
		return 0
	}
	return l.opts.Term()
}

// entryFor returns (creating on first sight) the persistent entry for a
// follower identity, registering its per-follower metric series once —
// a reconnecting follower reuses its series instead of panicking the
// registry with a duplicate registration.
func (l *Leader[ID]) entryFor(id string) *followerEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.entries[id]; ok {
		return e
	}
	e := &followerEntry{id: id}
	l.entries[id] = e
	if reg := l.opts.Obs; reg != nil {
		lbl := obs.Label{Key: "follower", Value: id}
		reg.GaugeFunc("psi_repl_follower_acked_seq", "Last window sequence this follower acknowledged applying.",
			func() float64 { return float64(e.acked.Load()) }, lbl)
		reg.GaugeFunc("psi_repl_follower_lag_windows", "Committed windows this follower has not acknowledged.",
			func() float64 {
				last := l.opts.Hub.LastSeq()
				if acked := e.acked.Load(); last > acked {
					return float64(last - acked)
				}
				return 0
			}, lbl)
		reg.GaugeFunc("psi_repl_follower_connected", "1 while this follower is connected.",
			func() float64 {
				if e.connected.Load() {
					return 1
				}
				return 0
			}, lbl)
	}
	return e
}

// handleConn serves one follower: handshake, optional snapshot
// bootstrap, then the window tail until the connection dies or the
// leader closes. The ack reader runs as a second goroutine on the same
// connection; either side failing closes the conn, which unblocks the
// other.
func (l *Leader[ID]) handleConn(conn net.Conn) {
	defer l.wg.Done()
	defer conn.Close()
	rw := deadlineRW{c: conn, rt: l.opts.ReadTimeout, wt: l.opts.WriteTimeout}

	var magic [len(Magic)]byte
	if _, err := readFull(rw, magic[:]); err != nil {
		return
	}
	if string(magic[:]) != Magic {
		l.logf("repl: %s: bad magic, dropping", conn.RemoteAddr())
		return
	}
	typ, payload, _, err := readFrame(rw, l.opts.MaxFrameBytes, nil)
	if err != nil || typ != fmFollow {
		return
	}
	followerSeq, followerTerm, followerID, err := parseFollow(payload)
	if err != nil {
		l.logf("repl: %s: %v", conn.RemoteAddr(), err)
		return
	}
	if followerID == "" {
		followerID = conn.RemoteAddr().String()
	}
	leaderTerm := l.term()
	if followerTerm > leaderTerm {
		// Fencing, leader side: this follower has adopted a newer
		// leader's term — we are deposed. Refuse the session (no HELLO,
		// no stream) and report upward so the service fences writes.
		l.logf("repl: follower %s (%s) carries term %d above ours (%d): deposed",
			followerID, conn.RemoteAddr(), followerTerm, leaderTerm)
		if l.opts.OnDeposed != nil {
			l.opts.OnDeposed(followerTerm)
		}
		return
	}
	e := l.entryFor(followerID)
	// Latest connection wins a contended identity: a follower that
	// reconnects before the leader noticed the old conn die must not be
	// refused, and two live conns sharing one series would interleave.
	e.mu.Lock()
	if e.conn != nil {
		e.conn.Close()
	}
	e.conn = conn
	e.mu.Unlock()
	e.connected.Store(true)
	e.acked.Store(followerSeq)
	l.connects.Add(1)
	defer func() {
		e.mu.Lock()
		if e.conn == conn {
			e.conn = nil
			e.connected.Store(false)
		}
		e.mu.Unlock()
		l.logf("repl: follower %s (%s) disconnected", followerID, conn.RemoteAddr())
	}()

	var scratch []byte
	hubLast := l.opts.Hub.LastSeq()
	if _, err := rw.Write([]byte(Magic)); err != nil {
		return
	}
	if err := writeFrame(rw, &scratch, fmHello, seqTermPayload(nil, hubLast, leaderTerm)); err != nil {
		return
	}
	l.logf("repl: follower %s (%s) connected at seq %d term %d (leader at %d term %d)",
		followerID, conn.RemoteAddr(), followerSeq, followerTerm, hubLast, leaderTerm)

	// Ack reader: the only frames a follower sends after FOLLOW are
	// ACKs. Any read error (or protocol violation) severs the conn,
	// which the writer notices at its next write or ping tick.
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		defer conn.Close()
		var buf []byte
		for {
			typ, payload, nbuf, err := readFrame(rw, l.opts.MaxFrameBytes, buf)
			if err != nil || typ != fmAck {
				return
			}
			buf = nbuf
			seq, err := parseSeq(payload)
			if err != nil {
				return
			}
			e.acked.Store(seq)
		}
	}()

	// A follower on an older term must bootstrap even when its seq looks
	// resumable: across a term boundary the sequence spaces belong to
	// different timelines, and the snapshot is also how the follower
	// adopts (and persists) the new term.
	cursor := followerSeq
	_, _, gap := l.opts.Hub.TailFrom(cursor, nil)
	if gap || followerTerm < leaderTerm {
		cursor, err = l.sendSnapshot(rw, &scratch, followerID)
		if err != nil {
			l.logf("repl: follower %s: bootstrap failed: %v", followerID, err)
			return
		}
	}
	l.streamTail(rw, &scratch, leaderTerm, cursor, ackDone)
	conn.Close() // unblocks the ack reader before we wait on it
	<-ackDone
}

// sendSnapshot captures and streams one full-state bootstrap, returning
// the sequence the follower now stands at.
func (l *Leader[ID]) sendSnapshot(rw deadlineRW, scratch *[]byte, followerID string) (uint64, error) {
	seq, entries, err := l.opts.Snapshot()
	if err != nil {
		return 0, err
	}
	total := len(entries)
	l.logf("repl: follower %s: bootstrapping with %d objects at seq %d", followerID, total, seq)
	if err := writeFrame(rw, scratch, fmSnapBegin, snapBeginPayload(nil, seq, total)); err != nil {
		return 0, err
	}
	var payload []byte
	for len(entries) > 0 {
		chunk := entries
		if len(chunk) > DefaultSnapChunkOps {
			chunk = chunk[:DefaultSnapChunkOps]
		}
		entries = entries[len(chunk):]
		payload = wal.EncodeWindowPayload(payload[:0], l.opts.Codec, seq, chunk)
		if err := writeFrame(rw, scratch, fmSnapData, payload); err != nil {
			return 0, err
		}
		l.bytesSent.Add(uint64(len(payload)))
	}
	if err := writeFrame(rw, scratch, fmSnapEnd, seqPayload(nil, uint64(total))); err != nil {
		return 0, err
	}
	l.snapshotsSent.Add(1)
	return seq, nil
}

// streamTail ships retained windows from cursor until the connection or
// the leader dies. A retention gap (the follower stalled long enough
// for its next window to be evicted) severs the connection: the
// follower reconnects and bootstraps from a snapshot.
func (l *Leader[ID]) streamTail(rw deadlineRW, scratch *[]byte, term, cursor uint64, ackDone <-chan struct{}) {
	ping := time.NewTicker(l.opts.PingInterval)
	defer ping.Stop()
	var frames [][]byte
	var wbuf []byte // term-prefixed window payload, reused across frames
	for {
		pulse := l.opts.Hub.Pulse() // before TailFrom: no lost wakeup
		var gap bool
		frames, cursor, gap = l.opts.Hub.TailFrom(cursor, frames[:0])
		if gap {
			l.logf("repl: follower fell behind the retention horizon at seq %d; forcing re-bootstrap", cursor)
			return
		}
		for _, p := range frames {
			wbuf = windowPayload(wbuf, term, p)
			if err := writeFrame(rw, scratch, fmWindow, wbuf); err != nil {
				return
			}
			l.windowsSent.Add(1)
			l.bytesSent.Add(uint64(len(wbuf)))
		}
		select {
		case <-pulse:
		case <-ping.C:
			if err := writeFrame(rw, scratch, fmPing, seqPayload(nil, l.opts.Hub.LastSeq())); err != nil {
				return
			}
		case <-ackDone:
			return
		case <-l.stop:
			return
		}
	}
}

// deadlineRW arms a fresh read/write deadline per call, so a silent or
// stalled peer is bounded without any watchdog goroutine.
type deadlineRW struct {
	c      net.Conn
	rt, wt time.Duration
}

func (d deadlineRW) Read(p []byte) (int, error) {
	if d.rt > 0 {
		d.c.SetReadDeadline(time.Now().Add(d.rt))
	}
	return d.c.Read(p)
}

func (d deadlineRW) Write(p []byte) (int, error) {
	if d.wt > 0 {
		d.c.SetWriteDeadline(time.Now().Add(d.wt))
	}
	return d.c.Write(p)
}

// readFull is io.ReadFull without the package alias noise at call
// sites that already hold a deadlineRW.
func readFull(rw deadlineRW, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := rw.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
