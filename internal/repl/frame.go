package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// frameHdrLen is the fixed frame header: type byte, u32le payload
// length, u32le payload CRC.
const frameHdrLen = 9

// appendFrame appends one framed message to dst and returns the
// extended slice (the library-wide dst-append contract).
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// writeFrame writes one framed message through scratch (recycled across
// frames so steady streaming allocates nothing warm).
func writeFrame(w io.Writer, scratch *[]byte, typ byte, payload []byte) error {
	b := appendFrame((*scratch)[:0], typ, payload)
	*scratch = b[:0]
	_, err := w.Write(b)
	return err
}

// readFrame reads one frame, reusing buf for the payload. Every way the
// bytes can be wrong — unknown type, length beyond max, short read,
// checksum mismatch — is an error, never a panic and never a giant
// allocation: the length prefix is validated before any buffer grows.
// The returned payload aliases the returned buffer and is valid until
// the next readFrame call with it.
func readFrame(r io.Reader, maxFrame int, buf []byte) (typ byte, payload, nbuf []byte, err error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	typ = hdr[0]
	if typ == 0 || typ >= fmMax {
		return 0, nil, buf, fmt.Errorf("repl: unknown frame type %#x", typ)
	}
	ln := binary.LittleEndian.Uint32(hdr[1:5])
	if uint64(ln) > uint64(maxFrame) {
		return 0, nil, buf, fmt.Errorf("repl: %d-byte frame exceeds the %d-byte limit", ln, maxFrame)
	}
	if cap(buf) < int(ln) {
		buf = make([]byte, ln)
	}
	payload = buf[:ln]
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // a torn frame, not a clean close
		}
		return 0, nil, buf, err
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(hdr[5:9]); got != want {
		return 0, nil, buf, fmt.Errorf("repl: frame checksum mismatch (crc %#x, want %#x)", got, want)
	}
	return typ, payload, buf, nil
}

// seqPayload encodes the single-uvarint payload shared by HELLO, PING,
// SNAP_END and ACK frames.
func seqPayload(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst[:0], v)
}

// parseSeq decodes a single-uvarint payload, rejecting trailing bytes.
func parseSeq(p []byte) (uint64, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 || n != len(p) {
		return 0, fmt.Errorf("repl: malformed sequence payload (%d bytes)", len(p))
	}
	return v, nil
}

// seqTermPayload encodes the two-uvarint payload of a HELLO frame: the
// leader's head sequence and its term.
func seqTermPayload(dst []byte, seq, term uint64) []byte {
	dst = binary.AppendUvarint(dst[:0], seq)
	return binary.AppendUvarint(dst, term)
}

// parseSeqTerm decodes a two-uvarint payload, rejecting trailing bytes.
func parseSeqTerm(p []byte) (seq, term uint64, err error) {
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, fmt.Errorf("repl: truncated seq")
	}
	p = p[n:]
	term, n = binary.Uvarint(p)
	if n <= 0 || n != len(p) {
		return 0, 0, fmt.Errorf("repl: malformed term payload (%d trailing bytes)", len(p)-n)
	}
	return seq, term, nil
}

// followPayload encodes the FOLLOW handshake: the follower's last
// applied sequence, the highest leader term it has adopted, and its
// stable identity.
func followPayload(dst []byte, lastSeq, term uint64, id string) []byte {
	dst = binary.AppendUvarint(dst[:0], lastSeq)
	dst = binary.AppendUvarint(dst, term)
	dst = binary.AppendUvarint(dst, uint64(len(id)))
	return append(dst, id...)
}

// parseFollow decodes a FOLLOW payload.
func parseFollow(p []byte) (lastSeq, term uint64, id string, err error) {
	lastSeq, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, "", fmt.Errorf("repl: truncated FOLLOW seq")
	}
	p = p[n:]
	term, n = binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, "", fmt.Errorf("repl: truncated FOLLOW term")
	}
	p = p[n:]
	ln, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, "", fmt.Errorf("repl: truncated FOLLOW id length")
	}
	p = p[n:]
	if ln > MaxFollowerIDLen {
		return 0, 0, "", fmt.Errorf("repl: follower id of %d bytes exceeds the %d-byte limit", ln, MaxFollowerIDLen)
	}
	if ln != uint64(len(p)) {
		return 0, 0, "", fmt.Errorf("repl: FOLLOW id length %d does not match payload", ln)
	}
	return lastSeq, term, string(p), nil
}

// windowPayload prefixes one wal-encoded window payload with the
// leader's term — the fencing bit a follower checks before applying.
func windowPayload(dst []byte, term uint64, win []byte) []byte {
	dst = binary.AppendUvarint(dst[:0], term)
	return append(dst, win...)
}

// splitWindowTerm strips the term prefix off a WINDOW frame payload,
// returning the term and the wal window payload that follows.
func splitWindowTerm(p []byte) (term uint64, win []byte, err error) {
	term, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("repl: truncated WINDOW term")
	}
	return term, p[n:], nil
}

// snapBeginPayload encodes SNAP_BEGIN: the sequence the snapshot covers
// and the total entry count (SNAP_END repeats the count as a tally).
func snapBeginPayload(dst []byte, seq uint64, count int) []byte {
	dst = binary.AppendUvarint(dst[:0], seq)
	return binary.AppendUvarint(dst, uint64(count))
}

// parseSnapBegin decodes a SNAP_BEGIN payload.
func parseSnapBegin(p []byte) (seq uint64, count uint64, err error) {
	seq, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, fmt.Errorf("repl: truncated SNAP_BEGIN seq")
	}
	p = p[n:]
	count, n = binary.Uvarint(p)
	if n <= 0 || n != len(p) {
		return 0, 0, fmt.Errorf("repl: malformed SNAP_BEGIN count")
	}
	return seq, count, nil
}
