package repl

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/wal"
)

// fuzzSeeds builds the seed corpus: one well-formed stream per protocol
// shape plus every interesting corruption class. The same streams are
// committed under testdata/fuzz/FuzzReplStream (regenerate with
// PSID_WRITE_SEEDS=1 go test -run TestWriteReplSeeds ./internal/repl/),
// so `go test` replays them as plain tests, mirroring FuzzWALReplay.
func fuzzSeeds() map[string][]byte {
	codec := wal.StringCodec{}
	win := func(term, seq uint64, ops ...wal.Op[string]) []byte {
		return windowPayload(nil, term, wal.EncodeWindowPayload(nil, codec, seq, ops))
	}
	valid := append([]byte(nil), Magic...)
	valid = appendFrame(valid, fmHello, seqTermPayload(nil, 2, 1))
	valid = appendFrame(valid, fmWindow, win(1, 1, wal.Op[string]{ID: "a", P: geom.Pt2(10, 20)}))
	valid = appendFrame(valid, fmWindow, win(1, 2, wal.Op[string]{ID: "a", Del: true}, wal.Op[string]{ID: "b", P: geom.Pt3(-1, 1<<40, 7)}))
	valid = appendFrame(valid, fmPing, seqPayload(nil, 2))

	snap := append([]byte(nil), Magic...)
	snap = appendFrame(snap, fmHello, seqTermPayload(nil, 9, 2))
	snap = appendFrame(snap, fmSnapBegin, snapBeginPayload(nil, 9, 3))
	snap = appendFrame(snap, fmSnapData, wal.EncodeWindowPayload(nil, codec, 9, []wal.Op[string]{{ID: "x", P: geom.Pt2(1, 1)}, {ID: "y", P: geom.Pt2(2, 2)}}))
	snap = appendFrame(snap, fmSnapData, wal.EncodeWindowPayload(nil, codec, 9, []wal.Op[string]{{ID: "z", P: geom.Pt2(3, 3)}}))
	snap = appendFrame(snap, fmSnapEnd, seqPayload(nil, 3))
	snap = appendFrame(snap, fmWindow, win(2, 10, wal.Op[string]{ID: "x", P: geom.Pt2(5, 5)}))

	crcFlip := append([]byte(nil), valid...)
	crcFlip[len(crcFlip)-1] ^= 0x40 // corrupt the last frame's payload under its CRC

	hugeLen := append([]byte(nil), Magic...)
	hugeLen = append(hugeLen, fmHello, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)

	regress := append([]byte(nil), valid[:len(valid)-frameHdrLen-3]...) // valid minus the ping
	regress = appendFrame(regress, fmWindow, win(1, 1, wal.Op[string]{ID: "dup", P: geom.Pt2(9, 9)}))

	gap := append([]byte(nil), Magic...)
	gap = appendFrame(gap, fmHello, seqTermPayload(nil, 5, 0))
	gap = appendFrame(gap, fmWindow, win(0, 1, wal.Op[string]{ID: "a", P: geom.Pt2(1, 1)}))
	gap = appendFrame(gap, fmWindow, win(0, 5, wal.Op[string]{ID: "b", P: geom.Pt2(2, 2)}))

	badType := append([]byte(nil), Magic...)
	badType = appendFrame(badType, fmHello, seqTermPayload(nil, 0, 0))
	badType = appendFrame(badType, 0x7f, []byte("junk"))

	snapDel := append([]byte(nil), Magic...)
	snapDel = appendFrame(snapDel, fmHello, seqTermPayload(nil, 1, 0))
	snapDel = appendFrame(snapDel, fmSnapBegin, snapBeginPayload(nil, 1, 1))
	snapDel = appendFrame(snapDel, fmSnapData, wal.EncodeWindowPayload(nil, codec, 1, []wal.Op[string]{{ID: "gone", Del: true}}))
	snapDel = appendFrame(snapDel, fmSnapEnd, seqPayload(nil, 1))

	// A window whose term disagrees with the session's HELLO term — the
	// fencing check must sever before applying.
	termMismatch := append([]byte(nil), Magic...)
	termMismatch = appendFrame(termMismatch, fmHello, seqTermPayload(nil, 2, 5))
	termMismatch = appendFrame(termMismatch, fmWindow, win(3, 1, wal.Op[string]{ID: "a", P: geom.Pt2(1, 1)}))

	return map[string][]byte{
		"seed-empty":         {},
		"seed-bad-magic":     []byte("PSIWAL1\n"),
		"seed-magic-only":    []byte(Magic),
		"seed-valid-tail":    valid,
		"seed-snapshot":      snap,
		"seed-torn-frame":    valid[:len(valid)-3],
		"seed-torn-header":   valid[:len(Magic)+4],
		"seed-crc-flip":      crcFlip,
		"seed-huge-len":      hugeLen,
		"seed-regression":    regress,
		"seed-gap":           gap,
		"seed-bad-type":      badType,
		"seed-snap-del":      snapDel,
		"seed-term-mismatch": termMismatch,
	}
}

// FuzzReplStream throws arbitrary bytes at the follower's stream
// decoder — the one surface where a replica consumes another process's
// output. The contract under attack: stream never panics and never
// allocates unboundedly, whatever the bytes; windows reach the Applier
// only in strictly contiguous order (the modelApplier turns any gap or
// duplicate apply into a violation); and a malformed stream ends in an
// error, never a silent partial apply of a corrupt frame.
func FuzzReplStream(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		app := newModelApplier()
		fo := NewFollower(app, FollowerOptions[string]{
			Addr:          "fuzz",
			Codec:         wal.StringCodec{},
			MaxFrameBytes: 1 << 20, // keep hostile length prefixes from dominating fuzz throughput
		})
		err := fo.stream(bytes.NewReader(data), io.Discard)
		if err == nil {
			t.Fatal("stream returned nil: it can only end in EOF or a protocol error")
		}
		if app.violation != "" {
			t.Fatalf("applier contract violated: %s", app.violation)
		}
		// Whatever was applied must be reachable again: the applied seq
		// only moves via contiguous windows or an explicit bootstrap.
		applies, boots := app.applies, app.bootstraps
		if boots == 0 && uint64(applies) != app.seq {
			t.Fatalf("%d applies but applied seq %d with no bootstrap", applies, app.seq)
		}
	})
}

// TestWriteReplSeeds regenerates the committed corpus under
// testdata/fuzz/FuzzReplStream in the Go fuzz-corpus encoding. Guarded
// by PSID_WRITE_SEEDS so a plain test run never rewrites testdata.
func TestWriteReplSeeds(t *testing.T) {
	if os.Getenv("PSID_WRITE_SEEDS") == "" {
		t.Skip("set PSID_WRITE_SEEDS=1 to regenerate the committed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReplStream")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, seed := range fuzzSeeds() {
		body := []byte("go test fuzz v1\n[]byte(" + quoteCorpus(seed) + ")\n")
		if err := os.WriteFile(filepath.Join(dir, name), body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// quoteCorpus renders b as a Go double-quoted string literal the fuzz
// corpus parser accepts (strconv.Quote escapes match Go syntax).
func quoteCorpus(b []byte) string {
	out := make([]byte, 0, len(b)*4+2)
	out = append(out, '"')
	const hex = "0123456789abcdef"
	for _, c := range b {
		switch {
		case c == '"' || c == '\\':
			out = append(out, '\\', c)
		case c >= 0x20 && c < 0x7f:
			out = append(out, c)
		default:
			out = append(out, '\\', 'x', hex[c>>4], hex[c&0xf])
		}
	}
	return string(append(out, '"'))
}
