package repl

import (
	"sync"

	"repro/internal/wal"
)

// Retention defaults for the hub's in-memory window ring. The ring is
// the incremental catch-up horizon: a follower whose resume point has
// been evicted re-bootstraps from a snapshot instead, so retention
// trades leader memory against how long a follower may be gone and
// still catch up cheaply.
const (
	DefaultRetainWindows = 1 << 14
	DefaultRetainBytes   = 64 << 20
)

// Hub is the leader-side fan-out point: the Collection's journal hook
// publishes every committed window (already encoded in the wal record
// payload format) and per-follower writers read the retained tail.
// Retention is bounded by window count and total encoded bytes;
// eviction only moves the snapshot/tail decision, never correctness.
//
// Publish is called under the Collection's flush lock, which is what
// makes the hub's head sequence consistent with the committed state: a
// Checkpoint (held for snapshot capture) and the hub can never disagree
// about which windows the state contains.
type Hub[ID comparable] struct {
	codec wal.Codec[ID]

	mu      sync.Mutex
	wins    []hubWin // retained tail, ascending contiguous seqs
	bytes   int
	lastSeq uint64        // newest published (or initial recovered) seq
	pulse   chan struct{} // closed and replaced on every publish

	maxWindows int
	maxBytes   int
}

type hubWin struct {
	seq     uint64
	payload []byte // immutable once published; shared with writers lock-free
}

// NewHub returns a hub whose head starts at lastSeq — the leader WAL's
// recovered sequence, so a follower already at that point needs
// nothing. retainWindows/retainBytes <= 0 select the defaults.
func NewHub[ID comparable](codec wal.Codec[ID], lastSeq uint64, retainWindows, retainBytes int) *Hub[ID] {
	if retainWindows <= 0 {
		retainWindows = DefaultRetainWindows
	}
	if retainBytes <= 0 {
		retainBytes = DefaultRetainBytes
	}
	return &Hub[ID]{
		codec:      codec,
		lastSeq:    lastSeq,
		pulse:      make(chan struct{}),
		maxWindows: retainWindows,
		maxBytes:   retainBytes,
	}
}

// Publish appends one committed window to the ring and wakes every
// waiting writer. seq must advance by exactly one per call (the WAL
// append it mirrors enforces monotonicity; the hub's tail must stay
// contiguous for TailFrom's gap logic to be exact).
func (h *Hub[ID]) Publish(seq uint64, ops []wal.Op[ID]) {
	payload := wal.EncodeWindowPayload(nil, h.codec, seq, ops)
	h.mu.Lock()
	defer h.mu.Unlock()
	if seq != h.lastSeq+1 {
		// A journal hook bug, not a runtime condition: the WAL would have
		// rejected the append first.
		panic("repl: hub published non-contiguous window")
	}
	h.wins = append(h.wins, hubWin{seq: seq, payload: payload})
	h.bytes += len(payload)
	h.lastSeq = seq
	for len(h.wins) > h.maxWindows || (h.bytes > h.maxBytes && len(h.wins) > 1) {
		h.bytes -= len(h.wins[0].payload)
		h.wins[0] = hubWin{}
		h.wins = h.wins[1:]
	}
	close(h.pulse)
	h.pulse = make(chan struct{})
}

// LastSeq returns the newest published sequence (the recovered seq
// before any publish).
func (h *Hub[ID]) LastSeq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastSeq
}

// Pulse returns a channel closed at the next publish. Grab it BEFORE
// TailFrom: a publish between the two closes the returned channel, so
// the waiter wakes instead of sleeping through the window.
func (h *Hub[ID]) Pulse() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pulse
}

// Stats reports the ring occupancy for /stats.
func (h *Hub[ID]) Stats() (windows int, bytes int, lastSeq uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.wins), h.bytes, h.lastSeq
}

// TailFrom appends the retained windows with seq > after to dst, oldest
// first, returning the new head cursor. gap reports that the tail
// cannot be served incrementally: the resume point has been evicted, or
// after is ahead of the head (a follower ahead of a rebuilt leader) —
// either way the caller must re-bootstrap the follower from a snapshot.
// The returned payloads are immutable and safe to write without the
// hub lock.
func (h *Hub[ID]) TailFrom(after uint64, dst [][]byte) (wins [][]byte, last uint64, gap bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if after == h.lastSeq {
		return dst, after, false
	}
	if after > h.lastSeq {
		return dst, after, true
	}
	if len(h.wins) == 0 || h.wins[0].seq > after+1 {
		return dst, after, true
	}
	for _, w := range h.wins {
		if w.seq > after {
			dst = append(dst, w.payload)
		}
	}
	return dst, h.lastSeq, false
}
