package collection

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// FuzzCollectionMoves is the identity-layer differential fuzzer: the
// input bytes pick an inner index stack and decode into a Set / Remove /
// Flush tape over a small ID space, mirrored into a plain map oracle.
// Get is checked after every op (the overlay gives read-your-writes, so
// Get must equal the oracle at all times, flushed or not); at every
// Flush checkpoint and at the end of the tape the full read suite —
// Len, WithinIDs, NearbyIDs distance sequences — and the
// index/fwd/rev consistency invariant (Validate) are verified.
//
// The high bit of the second input byte additionally turns on snapshot
// reads and a concurrent epoch-pinned reader: the writer records the
// oracle contents at every published epoch, and the reader scans the
// universe, bracketing each scan with Epoch() loads — when the epoch did
// not move across the scan, epoch monotonicity guarantees the pinned
// version was that epoch, so the scan must equal the recorded oracle
// exactly. Run under -race this also hunts torn index/fwd/rev triples.
// Seed corpus lives in testdata/fuzz/FuzzCollectionMoves.
func FuzzCollectionMoves(f *testing.F) {
	for _, s := range collectionSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		runCollectionTape(t, data)
	})
}

var collectionSeeds = []string{
	"",
	"set a few ids then flush and read them back",
	"move move move the same object 0000000000",
	"\x00\x01\x02\x03\x04\x05\x06\x07remove and reinsert",
	"interleave~!@#$%^&*()_+ flushes {[]} with everything",
	"ZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZ",
	// 0x83 sets the snapshot bit on the second byte: the same tape runs
	// with epoch-pinned reads and the concurrent per-epoch reader.
	"\x01\x83snapshot tape with concurrent epoch reader 123",
	"\x02\xffsharded snapshot tape, tiny batches \x01\x01\x01\x01",
}

const fuzzIDs = 16

// fuzzStacks lists the inner stacks the first input byte selects from,
// in a fixed order so corpus entries stay reproducible.
var fuzzStacks = []func() core.Index{
	func() core.Index { return core.NewBruteForce(2) },
	newSPaCH,
	innerStacks()["Sharded(SPaC-H)"],
	innerStacks()["Store(Sharded)"],
}

func runCollectionTape(t *testing.T, data []byte) {
	if len(data) < 2 {
		return
	}
	mk := fuzzStacks[int(data[0])%len(fuzzStacks)]
	// A tiny MaxBatch derived from the input lets the fuzzer also drive
	// threshold-triggered flushes mid-tape, not only explicit ones.
	maxBatch := 1 + int(data[1])%64
	snapshot := data[1]&0x80 != 0
	opts := Options{MaxBatch: maxBatch}
	if snapshot {
		opts.Snapshot = mk
	}
	c := New[int](mk(), opts)
	defer c.Close()
	oracle := make(map[int]geom.Point)

	// In snapshot mode, record the oracle contents at every published
	// epoch and race a reader against the tape. The writer can only
	// observe an epoch step after the op that flushed returns, so a
	// reader may briefly see an epoch with no recording yet — it skips
	// those; any epoch it finds recorded is exact.
	var (
		mu      sync.Mutex
		byEpoch map[uint64]map[int]geom.Point
	)
	record := func() {
		e := c.Epoch()
		mu.Lock()
		if _, ok := byEpoch[e]; !ok {
			snap := make(map[int]geom.Point, len(oracle))
			for id, p := range oracle {
				snap[id] = p
			}
			byEpoch[e] = snap
		}
		mu.Unlock()
	}
	if snapshot {
		byEpoch = map[uint64]map[int]geom.Point{0: {}}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e0 := c.Epoch()
				got := c.WithinIDs(universe())
				if c.Epoch() != e0 {
					continue // scan straddled a publish; unattributable
				}
				mu.Lock()
				want, ok := byEpoch[e0]
				if ok {
					if len(got) != len(want) {
						t.Errorf("epoch %d: scan saw %d objects, oracle has %d", e0, len(got), len(want))
					}
					for _, en := range got {
						if p, ok := want[en.ID]; !ok || p != en.Point {
							t.Errorf("epoch %d: scan saw id %d at %v, oracle (%v, %t)", e0, en.ID, en.Point, p, ok)
						}
					}
				}
				failed := t.Failed()
				mu.Unlock()
				if failed {
					return
				}
			}
		}()
		defer func() { // runs before c.Close (LIFO)
			close(stop)
			wg.Wait()
		}()
	}

	i := 2
	next := func() (byte, bool) {
		if i >= len(data) {
			return 0, false
		}
		b := data[i]
		i++
		return b, true
	}
	for ops := 0; ops < 256; ops++ {
		b, ok := next()
		if !ok {
			break
		}
		idb, ok := next()
		if !ok {
			break
		}
		id := int(idb) % fuzzIDs
		switch b % 8 {
		case 0:
			c.Remove(id)
			delete(oracle, id)
		case 1:
			c.Flush()
			verifyAgainstOracle(t, c, oracle, fuzzIDs)
		default:
			xb, ok1 := next()
			yb, ok2 := next()
			if !ok1 || !ok2 {
				return
			}
			// Scale byte coordinates across the universe; %32 keeps the
			// domain coarse so distinct IDs routinely share a point.
			p := geom.Pt2(int64(xb%32)*(side/32), int64(yb%32)*(side/32))
			c.Set(id, p)
			oracle[id] = p
		}
		if snapshot {
			// Any op can step the epoch (MaxBatch-triggered flushes fire
			// inside Set/Remove), and the oracle mirrors the flushed state
			// whenever it does.
			record()
		}
		// Read-your-writes: Get tracks the oracle exactly, even for ops
		// still sitting in the pending log.
		gotP, gotOK := c.Get(id)
		wantP, wantOK := oracle[id]
		if gotOK != wantOK || (gotOK && gotP != wantP) {
			t.Fatalf("op %d: Get(%d) = (%v, %t), oracle (%v, %t)", ops, id, gotP, gotOK, wantP, wantOK)
		}
	}
	c.Flush()
	if snapshot {
		record()
	}
	verifyAgainstOracle(t, c, oracle, fuzzIDs)
}

// TestCollectionMovesSeeds replays the in-code seed corpus as a plain
// test, so `go test` exercises the differential harness even when
// fuzzing is not invoked.
func TestCollectionMovesSeeds(t *testing.T) {
	for _, s := range collectionSeeds {
		runCollectionTape(t, []byte(s))
	}
}
