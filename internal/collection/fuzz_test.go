package collection

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// FuzzCollectionMoves is the identity-layer differential fuzzer: the
// input bytes pick an inner index stack and decode into a Set / Remove /
// Flush tape over a small ID space, mirrored into a plain map oracle.
// Get is checked after every op (the overlay gives read-your-writes, so
// Get must equal the oracle at all times, flushed or not); at every
// Flush checkpoint and at the end of the tape the full read suite —
// Len, WithinIDs, NearbyIDs distance sequences — and the
// index/fwd/rev consistency invariant (Validate) are verified. Seed
// corpus lives in testdata/fuzz/FuzzCollectionMoves.
func FuzzCollectionMoves(f *testing.F) {
	for _, s := range collectionSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		runCollectionTape(t, data)
	})
}

var collectionSeeds = []string{
	"",
	"set a few ids then flush and read them back",
	"move move move the same object 0000000000",
	"\x00\x01\x02\x03\x04\x05\x06\x07remove and reinsert",
	"interleave~!@#$%^&*()_+ flushes {[]} with everything",
	"ZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZ",
}

const fuzzIDs = 16

// fuzzStacks lists the inner stacks the first input byte selects from,
// in a fixed order so corpus entries stay reproducible.
var fuzzStacks = []func() core.Index{
	func() core.Index { return core.NewBruteForce(2) },
	newSPaCH,
	innerStacks()["Sharded(SPaC-H)"],
	innerStacks()["Store(Sharded)"],
}

func runCollectionTape(t *testing.T, data []byte) {
	if len(data) < 2 {
		return
	}
	mk := fuzzStacks[int(data[0])%len(fuzzStacks)]
	// A tiny MaxBatch derived from the input lets the fuzzer also drive
	// threshold-triggered flushes mid-tape, not only explicit ones.
	maxBatch := 1 + int(data[1])%64
	c := New[int](mk(), Options{MaxBatch: maxBatch})
	defer c.Close()
	oracle := make(map[int]geom.Point)

	i := 2
	next := func() (byte, bool) {
		if i >= len(data) {
			return 0, false
		}
		b := data[i]
		i++
		return b, true
	}
	for ops := 0; ops < 256; ops++ {
		b, ok := next()
		if !ok {
			break
		}
		idb, ok := next()
		if !ok {
			break
		}
		id := int(idb) % fuzzIDs
		switch b % 8 {
		case 0:
			c.Remove(id)
			delete(oracle, id)
		case 1:
			c.Flush()
			verifyAgainstOracle(t, c, oracle, fuzzIDs)
		default:
			xb, ok1 := next()
			yb, ok2 := next()
			if !ok1 || !ok2 {
				return
			}
			// Scale byte coordinates across the universe; %32 keeps the
			// domain coarse so distinct IDs routinely share a point.
			p := geom.Pt2(int64(xb%32)*(side/32), int64(yb%32)*(side/32))
			c.Set(id, p)
			oracle[id] = p
		}
		// Read-your-writes: Get tracks the oracle exactly, even for ops
		// still sitting in the pending log.
		gotP, gotOK := c.Get(id)
		wantP, wantOK := oracle[id]
		if gotOK != wantOK || (gotOK && gotP != wantP) {
			t.Fatalf("op %d: Get(%d) = (%v, %t), oracle (%v, %t)", ops, id, gotP, gotOK, wantP, wantOK)
		}
	}
	c.Flush()
	verifyAgainstOracle(t, c, oracle, fuzzIDs)
}

// TestCollectionMovesSeeds replays the in-code seed corpus as a plain
// test, so `go test` exercises the differential harness even when
// fuzzing is not invoked.
func TestCollectionMovesSeeds(t *testing.T) {
	for _, s := range collectionSeeds {
		runCollectionTape(t, []byte(s))
	}
}
