// Package collection implements psi.Collection, a concurrent ID-keyed
// moving-object layer over any core.Index. The paper's indexes (and the
// Store/Sharded layers built on them) operate on anonymous point
// multisets; every serving scenario — fleet tracking, geofencing, game
// worlds — needs *identity*: "object X moved from p0 to p1", which is
// exactly the paper's BatchDiff applied per tracked object. A Collection
// owns one point per live ID and turns each Set into the minimal diff:
//
//	Set(id, p1) on an object at p0  →  BatchDiff{ins: p1, del: p0}
//
// Mutations go through an ID-keyed coalescing log (the identity analogue
// of internal/store's multiset log): Set/Remove calls from any number of
// goroutines append to an ordered tape, and a flush nets the tape by
// last-write-wins per ID — an object moved five times in one window costs
// the index one delete and one insert, and a Set followed by Remove in
// the same window costs nothing. Because identity makes netting exact,
// the tape never needs the order-aware insert/delete matching the Store
// does for anonymous points.
//
// Consistency: the geometric index, the forward table (ID → point), and
// the reverse multimap (point → IDs) all advance together at the flush
// boundary, as one versioned triple. Queries (NearbyIDs, WithinIDs) run
// the geometric query and resolve every hit through the reverse multimap
// of the same triple — they can never observe an index point without its
// owner or vice versa. In the default locked mode the triple sits behind
// a read/write lock; with Options.Snapshot set the Collection keeps two
// triples and publishes them through an epoch manager (internal/epoch),
// so queries pin the published epoch and never wait on a flush
// (ARCHITECTURE.md "Epochs & snapshot reads"). Get is the exception
// either way: it reads the caller's own pending tail (read-your-writes),
// so Get(id) after Set(id, p) returns p even before the flush makes p
// visible to geometric queries.
//
// Composition: the inner index may be a raw tree (Collection adds the
// concurrency safety), a shard.Sharded (each flush fans out across
// shards in parallel — the recommended high-churn stack), or a
// store.Store (legal; the Collection flushes it synchronously so the
// reverse multimap never runs ahead of the index, but the Store's own
// coalescing is redundant below a Collection).
package collection

import (
	"fmt"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/wal"
)

// DefaultMaxBatch is the coalescing threshold used when Options.MaxBatch
// is unset, matching store.DefaultMaxBatch: the pending-op count at which
// the enqueuing goroutine flushes synchronously.
const DefaultMaxBatch = 1024

// Options tunes a Collection. The zero value is usable: DefaultMaxBatch
// coalescing, no background flusher.
type Options struct {
	// MaxBatch is the pending-op count that triggers a synchronous flush
	// by the enqueuing goroutine (built-in backpressure). <= 0 selects
	// DefaultMaxBatch.
	MaxBatch int
	// FlushInterval, when positive, starts a background goroutine that
	// flushes every interval, bounding how far geometric queries lag
	// behind Set calls under light write traffic. Stop it with Close.
	FlushInterval time.Duration
	// DisableScratch turns off the flush- and query-path buffer recycling
	// (op tape, netting map, diff buffers, reverse-multimap freelist,
	// query scratch), so every window and query allocates fresh — the
	// pre-reuse behavior. It exists so -exp alloc can measure the
	// before/after of scratch reuse; production configurations leave it
	// false.
	DisableScratch bool
	// Snapshot, when set, switches the Collection to epoch-pinned
	// snapshot reads: it must return a fresh, EMPTY index configured
	// identically to the wrapped one (core.Replicator semantics — most
	// callers pass the same constructor they built idx with, and the
	// service layer derives this automatically from core.Replicator).
	// The Collection then versions the whole committed triple — index,
	// forward table, reverse multimap — keeping two copies, applying
	// every committed window to both (the off-line one first), and
	// publishing through an atomic epoch pointer; NearbyIDs/WithinIDs/Get
	// pin the published version instead of taking the read lock, so a
	// reader never waits on a flush. The wrapped index must be empty at
	// New. Leave nil for the classic single-copy RWMutex mode.
	Snapshot func() core.Index
	// Obs, when set, registers the Collection's metrics (flush counters,
	// flush duration histogram, live-object and epoch gauges, all labeled
	// layer="collection") and records a flush-pipeline span per flush
	// into the registry's trace ring. Recording is atomics into
	// preallocated storage — the zero-alloc flush guarantee holds with a
	// live registry. Leave nil to pay nothing.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	return o
}

// Stats is a snapshot of a Collection's lifetime counters. It is
// assembled from atomics, the pending lock, and (in snapshot mode) a
// pinned epoch — never the writer lock — so sampling it during a large
// flush does not block.
type Stats struct {
	Flushes   uint64 // batches applied to the index
	Inserted  uint64 // objects that entered the index (first Set)
	Moved     uint64 // objects relocated (Set on a live ID, position changed)
	Removed   uint64 // objects deleted from the index
	Cancelled uint64 // enqueued ops superseded in-window by a later op on the same ID
	// JournalErrors counts failed journal-hook calls (windows that
	// committed in memory but could not be confirmed durable). Zero
	// when no hook is installed; any nonzero value means durability is
	// compromised until the WAL is repaired.
	JournalErrors uint64
	Pending       int    // ops enqueued but not yet flushed
	Objects       int    // live objects in the committed (published) state
	Epoch         uint64 // published snapshot epoch (0 in locked mode)
	Versions      int    // live state versions: 2 in snapshot mode, 1 locked
	RetireLag     uint64 // published epochs whose displaced version has not drained
}

// Entry is one resolved query hit: a live object and its indexed
// position.
type Entry[ID comparable] struct {
	ID    ID
	Point geom.Point
}

// Collection tracks one point per ID over an inner core.Index. Create
// one with New; the zero value is not usable. All methods are safe for
// concurrent use by any number of goroutines.
type Collection[ID comparable] struct {
	opts Options
	idx  core.Index
	dims int

	// pend guards the ID-keyed coalescing log: the ordered op tape plus
	// an overlay holding the latest pending op per ID (what Get reads).
	// It is held only for appends, overlay lookups, and the post-commit
	// purge — never while a batch is applied.
	pend struct {
		sync.Mutex
		seq     uint64
		ops     []op[ID]
		overlay map[ID]tailOp
	}

	// flushMu serializes flushes, so the committed state always reflects
	// a prefix of the enqueue history. In locked mode rw guards the
	// committed triple live (inner index, fwd, rev): queries share read
	// locks, a flush commits under the write lock. In snapshot mode live
	// is nil and the triple is versioned through snap instead.
	flushMu sync.Mutex
	rw      sync.RWMutex
	live    *collState[ID]

	// snap is the snapshot-read state, active when Options.Snapshot is
	// set: the epoch manager publishing the current triple, the standby
	// twin the next flush writes, and the previously committed window
	// (guarded by flushMu) — its netted ops plus the planned index diff —
	// replayed on the standby as catch-up before the new window applies,
	// so both twins see the same history one window apart. The two
	// Version structs and the saved buffers live for the Collection's
	// lifetime, preserving the zero-alloc flush.
	snap struct {
		enabled            bool
		mgr                epoch.Manager[*collState[ID]]
		standby            *epoch.Version[*collState[ID]]
		savedOps           []op[ID]
		savedIns, savedDel []geom.Point
	}

	// scratch is the flush-path buffer set (guarded by flushMu): the
	// recycled op tape, the last-write-wins netting map, and the diff
	// buffers handed to BatchDiff. revFree (guarded by rw's write side)
	// recycles the reverse multimap's small per-point ID slices, so a
	// steady stream of moves churns no fresh slices. queryPool recycles
	// per-query hit-resolution scratch across concurrent readers.
	scratch   collScratch[ID]
	revFree   [][]ID
	queryPool sync.Pool

	// journal is the durability commit hook (SetJournal), called under
	// flushMu with every committed netted window before it is applied.
	// journalErrs counts hook failures (the hook itself keeps the first
	// error sticky; see wal.Log).
	journal     func(ops []wal.Op[ID]) error
	journalErrs atomic.Uint64

	flushes   atomic.Uint64
	inserted  atomic.Uint64
	moved     atomic.Uint64
	removed   atomic.Uint64
	cancelled atomic.Uint64
	rawOps    atomic.Uint64
	applied   atomic.Uint64

	// met is the observability hook set, nil unless Options.Obs was
	// given. met.span is the persistent flush-span scratch, guarded by
	// flushMu like the rest of the flush state, so recording a span never
	// allocates.
	met *collMetrics

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	// flusher tracks the background flush goroutine so it can be stopped
	// and restarted at runtime (a replication role flip turns interval
	// flushing off for a follower and back on at promotion). stop is the
	// running flusher's private stop channel, nil while no flusher runs;
	// closed latches once Close begins so a racing StartFlusher can never
	// add to wg after Close's Wait.
	flusher struct {
		sync.Mutex
		stop   chan struct{}
		closed bool
	}
}

// op is one logged mutation: Set (del=false) or Remove (del=true) of id.
// seq is the global enqueue sequence number, used to purge overlay
// entries once their window commits.
type op[ID comparable] struct {
	id  ID
	p   geom.Point
	del bool
	seq uint64
}

// tailOp is the overlay value: the latest pending op for an ID.
type tailOp struct {
	p   geom.Point
	del bool
	seq uint64
}

// collState is one committed triple: the geometric index, the forward
// table, and the reverse multimap, always advanced together. Locked mode
// has a single instance; snapshot mode ping-pongs between two.
type collState[ID comparable] struct {
	idx core.Index
	// costed is idx's cost-reporting query interface when it has one
	// (shard.Sharded does); the slow-query path uses it to attribute
	// shards visited and candidates scanned, falling back to whole-index
	// counts otherwise.
	costed obs.CostedIndex
	fwd    map[ID]geom.Point
	rev    map[geom.Point][]ID
}

func newCollState[ID comparable](idx core.Index) *collState[ID] {
	costed, _ := idx.(obs.CostedIndex)
	return &collState[ID]{
		idx:    idx,
		costed: costed,
		fwd:    make(map[ID]geom.Point),
		rev:    make(map[geom.Point][]ID),
	}
}

// collScratch is the recycled flush state. Everything grows to the window
// high-water mark and is then reused.
type collScratch[ID comparable] struct {
	spare    []op[ID]
	final    map[ID]op[ID]
	ins, del []geom.Point
	// jops is the journal hook's window buffer, rebuilt from the
	// netting map each flush so journaling allocates nothing warm.
	jops []wal.Op[ID]
}

// queryScratch is one query's resolution state: the raw geometric hits
// and the duplicate-point cursor (only touched for multi-owner points).
type queryScratch struct {
	pts    []geom.Point
	cursor map[geom.Point]int
}

// maxRevFree caps the reverse-multimap slice freelist so a collection
// that shrinks dramatically does not hold spare slices forever.
const maxRevFree = 1 << 16

// New wraps idx in a Collection. The Collection takes ownership of idx:
// the caller must not touch it directly afterwards (in particular, the
// index must start empty — every stored point must have an owning ID).
// If opts.FlushInterval is positive the background flusher starts
// immediately; pair New with Close to stop it.
func New[ID comparable](idx core.Index, opts Options) *Collection[ID] {
	c := &Collection[ID]{
		opts: opts.withDefaults(),
		idx:  idx,
		dims: idx.Dims(),
		stop: make(chan struct{}),
	}
	c.pend.overlay = make(map[ID]tailOp)
	c.queryPool.New = func() any { return new(queryScratch) }
	if c.opts.Snapshot != nil {
		if idx.Size() != 0 {
			panic("collection: Options.Snapshot requires an initially empty index")
		}
		mirror := c.opts.Snapshot()
		if mirror == nil || mirror.Size() != 0 {
			panic("collection: Options.Snapshot must return a fresh, empty index")
		}
		c.snap.enabled = true
		c.snap.mgr.Init(epoch.NewVersion(newCollState[ID](idx)))
		c.snap.standby = epoch.NewVersion(newCollState[ID](mirror))
	} else {
		c.live = newCollState[ID](idx)
	}
	if c.opts.Obs != nil {
		c.met = newCollMetrics(c.opts.Obs, c)
	}
	c.StartFlusher(c.opts.FlushInterval)
	return c
}

// StartFlusher starts the background interval flusher at cadence d, if
// none is running (d <= 0 is a no-op, matching Options.FlushInterval's
// contract). A replication follower runs without one — windows apply
// only on the leader's schedule — and promotion calls StartFlusher to
// restore normal serving behavior in place.
func (c *Collection[ID]) StartFlusher(d time.Duration) {
	if d <= 0 {
		return
	}
	c.flusher.Lock()
	defer c.flusher.Unlock()
	if c.flusher.closed || c.flusher.stop != nil {
		return
	}
	stop := make(chan struct{})
	c.flusher.stop = stop
	c.wg.Add(1)
	go c.flushLoop(d, stop)
}

// StopFlusher stops the background flusher and waits for it to exit (no
// tick-driven Flush is in flight on return). A no-op when none runs.
func (c *Collection[ID]) StopFlusher() {
	c.flusher.Lock()
	stop := c.flusher.stop
	c.flusher.stop = nil
	c.flusher.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	c.wg.Wait()
}

// SetMaxBatch changes the pending-op count that triggers a synchronous
// flush (n <= 0 restores DefaultMaxBatch). A follower effectively
// disables count-triggered flushes with a huge bound — only replicated
// windows may commit — and promotion restores the configured one.
func (c *Collection[ID]) SetMaxBatch(n int) {
	if n <= 0 {
		n = DefaultMaxBatch
	}
	c.pend.Lock()
	c.opts.MaxBatch = n
	c.pend.Unlock()
}

func (c *Collection[ID]) flushLoop(d time.Duration, stop chan struct{}) {
	defer c.wg.Done()
	t := time.NewTicker(d)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Flush()
		case <-stop:
			return
		case <-c.stop:
			return
		}
	}
}

// Close stops the background flusher (if any), applies all pending ops
// as a final flush (journaled like any other window when a hook is
// installed), and closes the inner index when it has a Close method of
// its own (a wrapped Store's background flusher, for example — the
// Collection owns idx, so nobody else can stop it). The whole sequence
// runs exactly once: the ticker goroutine is fully stopped before the
// final flush, and the inner close happens under the flush lock, so no
// flush — ticker tick, concurrent Close, or a racing Set-triggered
// flush — can apply to a half-closed index. Close is idempotent; the
// Collection remains queryable afterwards (only the periodic flushing
// ends — a wrapped Store stays usable after its own Close, per its
// contract).
func (c *Collection[ID]) Close() {
	c.closeOnce.Do(func() {
		c.flusher.Lock()
		c.flusher.closed = true // no StartFlusher can add to wg past this point
		c.flusher.Unlock()
		close(c.stop)
		// The ticker goroutine has exited before the final flush below:
		// a tick can never flush after the inner index is closed.
		c.wg.Wait()
		c.Flush()
		c.flushMu.Lock()
		defer c.flushMu.Unlock()
		if c.snap.enabled {
			// Both twins may wrap closable layers; flushMu keeps the
			// current/standby pair stable while they are closed.
			for _, st := range []*collState[ID]{c.snap.mgr.Current().Data, c.snap.standby.Data} {
				if cl, ok := st.idx.(interface{ Close() }); ok {
					cl.Close()
				}
			}
			return
		}
		if cl, ok := c.idx.(interface{ Close() }); ok {
			cl.Close()
		}
	})
}

// SetJournal installs (or, with nil, removes) the durability commit
// hook: every subsequent flush calls fn under the flush lock with the
// committed netted window — at most one op per ID — before the window
// is applied or published. wal.Log.AppendWindow is the intended hook;
// the slice is reused across flushes and must not be retained. Install
// it before the ops that need journaling are flushed — the service
// layer installs it between crash-recovery replay (whose windows are
// already on disk and must not be re-journaled) and serving. Hook
// errors are counted in Stats.JournalErrors; see Flush for why they do
// not abort the commit.
func (c *Collection[ID]) SetJournal(fn func(ops []wal.Op[ID]) error) {
	c.flushMu.Lock()
	c.journal = fn
	c.flushMu.Unlock()
}

// Checkpoint runs fn while the flush pipeline is quiescent: no window
// can commit (or be journaled) until fn returns. fn receives the
// committed object count and an iterator over the committed forward
// table — exactly the fold of every journaled window — which is what a
// WAL snapshot must capture for its seq to line up with the log
// (internal/service pairs Checkpoint with wal.Log.WriteSnapshot). fn
// must not call back into the Collection (Flush, Set-triggered
// flushes, and Close all take the same lock) and must not retain the
// iterator past its return. Pending (unflushed, unjournaled) ops are
// deliberately excluded.
func (c *Collection[ID]) Checkpoint(fn func(objects int, entries iter.Seq2[ID, geom.Point])) {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	st := c.live
	if c.snap.enabled {
		st = c.snap.mgr.Current().Data
	}
	// Only flushes write fwd and flushMu excludes them all; concurrent
	// readers share fwd without a lock in snapshot mode and under
	// RLocks (which do not exclude us) in locked mode — either way a
	// read-only walk here is race-free.
	fn(len(st.fwd), func(yield func(ID, geom.Point) bool) {
		for id, p := range st.fwd {
			if !yield(id, p) {
				return
			}
		}
	})
}

// Name labels the Collection after its inner index.
func (c *Collection[ID]) Name() string { return fmt.Sprintf("Collection(%s)", c.idx.Name()) }

// Dims returns the dimensionality of the inner index.
func (c *Collection[ID]) Dims() int { return c.dims }

// Set enqueues a move: id is (re)located to p. The relocation becomes
// visible to geometric queries at the flush that applies it, netted with
// any other pending ops on the same ID; Get(id) sees it immediately.
func (c *Collection[ID]) Set(id ID, p geom.Point) { c.enqueue(id, p, false) }

// Remove enqueues the removal of id. Removing an absent ID is a no-op
// when its window flushes.
func (c *Collection[ID]) Remove(id ID) { c.enqueue(id, geom.Point{}, true) }

func (c *Collection[ID]) enqueue(id ID, p geom.Point, del bool) {
	c.pend.Lock()
	c.pend.seq++
	c.pend.ops = append(c.pend.ops, op[ID]{id: id, p: p, del: del, seq: c.pend.seq})
	c.pend.overlay[id] = tailOp{p: p, del: del, seq: c.pend.seq}
	full := len(c.pend.ops) >= c.opts.MaxBatch
	c.pend.Unlock()
	if full {
		c.Flush()
	}
}

// Get returns id's position. It observes the caller's latest enqueued op
// for id even before a flush (read-your-writes): the pending overlay is
// consulted first, the committed table second. The overlay is purged
// only after its window commits (under the writer lock in locked mode,
// after publish in snapshot mode), so a Get that misses the overlay is
// guaranteed to see a committed state at least as new as every purged op.
func (c *Collection[ID]) Get(id ID) (geom.Point, bool) {
	c.pend.Lock()
	tail, ok := c.pend.overlay[id]
	c.pend.Unlock()
	if ok {
		if tail.del {
			return geom.Point{}, false
		}
		return tail.p, true
	}
	if c.snap.enabled {
		v := c.snap.mgr.Pin()
		p, live := v.Data.fwd[id]
		c.snap.mgr.Unpin(v)
		return p, live
	}
	c.rw.RLock()
	p, live := c.live.fwd[id]
	c.rw.RUnlock()
	return p, live
}

// Len flushes pending ops and returns the number of live objects, so the
// answer reflects every enqueue that happened before the call.
func (c *Collection[ID]) Len() int {
	c.Flush()
	if c.snap.enabled {
		v := c.snap.mgr.Pin()
		defer c.snap.mgr.Unpin(v)
		return len(v.Data.fwd)
	}
	c.rw.RLock()
	defer c.rw.RUnlock()
	return len(c.live.fwd)
}

// Epoch returns the snapshot epoch of the currently published version —
// it advances by exactly one per committed window — or 0 in locked mode.
// The fuzz harness uses it to correlate concurrent pinned reads with the
// flush history.
func (c *Collection[ID]) Epoch() uint64 { return c.snap.mgr.Epoch() }

// Flush nets every pending op by last-write-wins per ID, applies the
// resulting diff to the index as one BatchDiff, and advances the
// forward/reverse tables under the same writer lock. It returns the
// number of index mutations applied (inserts + deletes). Flush is a
// synchronization barrier: on return, every op enqueued before the call
// is visible to geometric queries.
func (c *Collection[ID]) Flush() int {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	sc := &c.scratch
	if c.opts.DisableScratch {
		sc = new(collScratch[ID])
	}
	c.pend.Lock()
	if len(c.pend.ops) == 0 {
		c.pend.Unlock()
		return 0
	}
	ops := c.pend.ops
	// Hand the previous window's emptied tape to the enqueuers: the op
	// log double-buffers instead of re-growing from nil every window.
	c.pend.ops = sc.spare
	sc.spare = nil
	c.pend.Unlock()

	m := c.met
	var clk time.Time
	if m != nil {
		clk = time.Now()
		m.span = obs.FlushSpan{Layer: "collection", Start: clk.UnixNano()}
	}

	// Net the window: the last op per ID wins, every earlier op on that
	// ID is superseded. Identity makes this exact — no order-aware
	// matching needed.
	// sc.final is empty here: every completed flush clears it on the way
	// out (so retained capacity never pins ID values while idle).
	if sc.final == nil {
		sc.final = make(map[ID]op[ID], len(ops))
	}
	final := sc.final
	for _, o := range ops {
		final[o.id] = o
	}
	cancelled := len(ops) - len(final)
	c.cancelled.Add(uint64(cancelled))
	if m != nil {
		clk = m.span.Stamp(obs.StageNet, clk)
	}

	// Journal the committed window before applying it (write-ahead):
	// under the always-fsync policy a caller's Flush returns — and the
	// service acknowledges — only after the window is on disk. A hook
	// failure is counted, not fatal here: the in-memory commit proceeds
	// so the triple stays consistent, and the durable-ack layer above
	// decides whether to keep acknowledging (it does not; see
	// internal/service).
	if c.journal != nil {
		jops := sc.jops[:0]
		for _, o := range final {
			jops = append(jops, wal.Op[ID]{ID: o.id, P: o.p, Del: o.del})
		}
		if err := c.journal(jops); err != nil {
			c.journalErrs.Add(1)
		}
		clear(jops) // drop ID values so recycled capacity pins nothing
		sc.jops = jops[:0]
		if m != nil {
			clk = m.span.Stamp(obs.StageLog, clk)
		}
	}

	var applied int
	var nIns, nMove, nDel uint64
	if c.snap.enabled {
		applied, nIns, nMove, nDel = c.commitSnapshot(sc, final, clk)
	} else {
		applied, nIns, nMove, nDel = c.commitLocked(sc, final, clk)
	}

	// The netted tape and the ins/del buffers are dead: the index must
	// not have retained the batch slices (the core.Index contract), so
	// everything is reusable next window. Clear the tape and the netting
	// map before retiring them so recycled capacity never pins the
	// window's ID values (strings, typically) while the collection idles.
	clear(ops)
	clear(final)
	sc.spare = ops[:0]

	c.flushes.Add(1)
	c.inserted.Add(nIns)
	c.moved.Add(nMove)
	c.removed.Add(nDel)
	c.rawOps.Add(uint64(len(ops)))
	c.applied.Add(uint64(applied))
	if m != nil {
		m.span.RawOps = len(ops)
		m.span.NettedOps = applied
		m.span.Cancelled = cancelled
		if c.snap.enabled {
			m.span.Epoch = c.snap.mgr.Epoch()
		}
		m.flushDur.Record(m.span.Dur())
		m.trace.Record(m.span)
	}
	return applied
}

// planDiff turns one netted window into the (ins, del) index batches by
// comparing against st's forward table (callers hold flushMu; only
// flushes write fwd, so no reader lock is needed). The returned slices
// alias the scratch.
func (c *Collection[ID]) planDiff(sc *collScratch[ID], st *collState[ID], final map[ID]op[ID]) (ins, del []geom.Point, nIns, nMove, nDel uint64) {
	ins = sc.ins[:0]
	del = sc.del[:0]
	for id, o := range final {
		old, live := st.fwd[id]
		switch {
		case o.del && live:
			del = append(del, old)
			nDel++
		case o.del:
			// Remove of an absent ID: nothing to do.
		case live && old == o.p:
			// Same-position Set: the index is already right.
		case live:
			del = append(del, old)
			ins = append(ins, o.p)
			nMove++
		default:
			ins = append(ins, o.p)
			nIns++
		}
	}
	return ins, del, nIns, nMove, nDel
}

// applyDiff applies one planned window to st: the index batch (flushing
// any inner deferring layer inside the commit so the triple never
// disagrees at a read boundary) and then every netted op through the
// forward/reverse tables.
func (c *Collection[ID]) applyDiff(st *collState[ID], ins, del []geom.Point, final map[ID]op[ID]) {
	st.idx.BatchDiff(ins, del)
	if f, ok := st.idx.(interface{ Flush() int }); ok {
		f.Flush()
	}
	for _, o := range final {
		c.applyOp(st, o)
	}
}

// applyOp advances st's forward/reverse tables by one netted op.
func (c *Collection[ID]) applyOp(st *collState[ID], o op[ID]) {
	old, live := st.fwd[o.id]
	if o.del {
		if live {
			delete(st.fwd, o.id)
			c.revRemove(st, old, o.id)
		}
		return
	}
	if live {
		if old == o.p {
			return
		}
		c.revRemove(st, old, o.id)
	}
	st.fwd[o.id] = o.p
	c.revAdd(st, o.p, o.id)
}

// purgeOverlay drops overlay entries the committed window supersedes.
// Ops enqueued after the tape swap carry higher sequence numbers and
// survive.
func (c *Collection[ID]) purgeOverlay(final map[ID]op[ID]) {
	c.pend.Lock()
	for id, o := range final {
		if tail, ok := c.pend.overlay[id]; ok && tail.seq <= o.seq {
			delete(c.pend.overlay, id)
		}
	}
	c.pend.Unlock()
}

// commitLocked applies one netted window in locked mode: plan against
// the single committed triple, commit under the writer lock, and purge
// the overlay before releasing it — after a Get misses the overlay, the
// committed state it then reads must already include every purged op.
// clk is the flush-span clock (only read when metrics are attached);
// planning counts toward the net stage, the locked commit toward apply.
func (c *Collection[ID]) commitLocked(sc *collScratch[ID], final map[ID]op[ID], clk time.Time) (applied int, nIns, nMove, nDel uint64) {
	m := c.met
	st := c.live
	ins, del, nIns, nMove, nDel := c.planDiff(sc, st, final)
	if m != nil {
		clk = m.span.Stamp(obs.StageNet, clk)
	}
	c.rw.Lock()
	c.applyDiff(st, ins, del, final)
	c.purgeOverlay(final)
	c.rw.Unlock()
	if m != nil {
		m.span.Stamp(obs.StageApply, clk)
	}
	sc.ins, sc.del = ins[:0], del[:0]
	return len(ins) + len(del), nIns, nMove, nDel
}

// commitSnapshot applies one netted window in snapshot mode (callers
// hold flushMu). The standby triple is first caught up with the
// previously committed window — the saved index diff plus the saved
// netted ops, replayed in the same order the published twin saw them —
// then the new window is planned against the standby's (now current)
// forward table, applied, recorded as the next saved window, and
// published. Queries running concurrently pin whichever version is
// current and never block; the overlay purge happens after publish, so a
// Get that misses the overlay pins a version that already includes every
// purged op. The flush returns only after the displaced version drains,
// at which point it becomes the next standby.
func (c *Collection[ID]) commitSnapshot(sc *collScratch[ID], final map[ID]op[ID], clk time.Time) (applied int, nIns, nMove, nDel uint64) {
	m := c.met
	st := c.snap.standby.Data
	st.idx.BatchDiff(c.snap.savedIns, c.snap.savedDel)
	if f, ok := st.idx.(interface{ Flush() int }); ok {
		f.Flush()
	}
	for _, o := range c.snap.savedOps {
		c.applyOp(st, o)
	}
	clear(c.snap.savedOps) // do not pin the replayed window's ID values
	if m != nil {
		clk = m.span.Stamp(obs.StageReplay, clk)
	}

	ins, del, nIns, nMove, nDel := c.planDiff(sc, st, final)
	if m != nil {
		clk = m.span.Stamp(obs.StageNet, clk)
	}
	c.applyDiff(st, ins, del, final)

	// Save the window for the next catch-up: ins/del alias the netting
	// scratch and final is cleared by the caller, so both are copied
	// into buffers that persist across flushes.
	saved := c.snap.savedOps[:0]
	for _, o := range final {
		saved = append(saved, o)
	}
	c.snap.savedOps = saved
	c.snap.savedIns = append(c.snap.savedIns[:0], ins...)
	c.snap.savedDel = append(c.snap.savedDel[:0], del...)
	sc.ins, sc.del = ins[:0], del[:0]
	if m != nil {
		clk = m.span.Stamp(obs.StageApply, clk)
	}

	prev := c.snap.mgr.Publish(c.snap.standby)
	c.purgeOverlay(final)
	if m != nil {
		clk = m.span.Stamp(obs.StagePublish, clk)
	}
	c.snap.mgr.WaitDrained(prev)
	if m != nil {
		m.span.Stamp(obs.StageDrain, clk)
	}
	c.snap.standby = prev
	return len(ins) + len(del), nIns, nMove, nDel
}

// revRemove drops one occurrence of id from st's rev[p] (callers hold
// the flush mutex, plus rw's write side in locked mode). Emptied ID
// slices go to the freelist so the next revAdd of a fresh point reuses
// them instead of allocating. The freelist is shared across both
// snapshot twins — a slice lives in at most one rev map at a time, so
// recycling between them is safe.
func (c *Collection[ID]) revRemove(st *collState[ID], p geom.Point, id ID) {
	ids := st.rev[p]
	for i, got := range ids {
		if got == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(st.rev, p)
		if cap(ids) > 0 && len(c.revFree) < maxRevFree && !c.opts.DisableScratch {
			clear(ids[:cap(ids)]) // drop stale ID values so nothing is pinned
			c.revFree = append(c.revFree, ids)
		}
	} else {
		st.rev[p] = ids
	}
}

// revAdd appends id to st's rev[p] (same locking as revRemove), drawing
// the backing slice from the freelist when the point is new to the map.
func (c *Collection[ID]) revAdd(st *collState[ID], p geom.Point, id ID) {
	ids, ok := st.rev[p]
	if !ok && len(c.revFree) > 0 {
		ids = c.revFree[len(c.revFree)-1]
		c.revFree = c.revFree[:len(c.revFree)-1]
	}
	st.rev[p] = append(ids, id)
}

// NearbyIDs returns the k objects nearest q (nearest first), resolved to
// their IDs. Ties at the k-th distance — including several objects
// sharing one point — are broken arbitrarily, matching core.Index.KNN.
// Only flushed ops are visible.
func (c *Collection[ID]) NearbyIDs(q geom.Point, k int) []Entry[ID] {
	return c.NearbyIDsAppend(q, k, nil)
}

// NearbyIDsAppend is NearbyIDs with a caller-provided destination: the
// resolved entries are appended to dst and the extended slice returned,
// following the same dst-append contract as core.Index queries (the
// collection keeps no alias to dst). Serving loops reuse one dst across
// requests so warm queries allocate nothing here.
func (c *Collection[ID]) NearbyIDsAppend(q geom.Point, k int, dst []Entry[ID]) []Entry[ID] {
	return c.NearbyIDsAppendCost(q, k, dst, nil)
}

// NearbyIDsAppendCost is NearbyIDsAppend that additionally accounts the
// query's work into cost when non-nil: the pinned epoch, and — when the
// inner index reports per-query cost (shard.Sharded) — the shards
// visited and candidates scanned; otherwise the whole index counts as
// one shard and every geometric hit as a candidate. The slow-query log
// is the intended caller.
func (c *Collection[ID]) NearbyIDsAppendCost(q geom.Point, k int, dst []Entry[ID], cost *obs.QueryCost) []Entry[ID] {
	sc := c.getQueryScratch()
	var st *collState[ID]
	if c.snap.enabled {
		// Pin the published epoch: wait-free against flushes. The Unpin
		// is deferred so a panicking inner index never wedges the
		// writer's drain.
		v := c.snap.mgr.Pin()
		defer c.snap.mgr.Unpin(v)
		st = v.Data
		if cost != nil {
			cost.Epoch = v.Epoch()
		}
	} else {
		c.rw.RLock()
		defer c.rw.RUnlock() // deferred so a panicking inner index never wedges writers
		st = c.live
	}
	if cost != nil && st.costed != nil {
		sc.pts = st.costed.KNNCost(q, k, sc.pts[:0], cost)
	} else {
		sc.pts = st.idx.KNN(q, k, sc.pts[:0])
		if cost != nil {
			cost.Shards++
			cost.Candidates += len(sc.pts)
		}
	}
	dst = c.resolveAppend(st, sc, dst)
	c.putQueryScratch(sc)
	return dst
}

// WithinIDs returns every object inside box (order unspecified),
// resolved to IDs. Only flushed ops are visible.
func (c *Collection[ID]) WithinIDs(box geom.Box) []Entry[ID] {
	return c.WithinIDsAppend(box, nil)
}

// WithinIDsAppend is WithinIDs with a caller-provided destination (see
// NearbyIDsAppend for the contract).
func (c *Collection[ID]) WithinIDsAppend(box geom.Box, dst []Entry[ID]) []Entry[ID] {
	return c.WithinIDsAppendCost(box, dst, nil)
}

// WithinIDsAppendCost is WithinIDsAppend with query-cost accounting
// (see NearbyIDsAppendCost for the contract).
func (c *Collection[ID]) WithinIDsAppendCost(box geom.Box, dst []Entry[ID], cost *obs.QueryCost) []Entry[ID] {
	sc := c.getQueryScratch()
	var st *collState[ID]
	if c.snap.enabled {
		v := c.snap.mgr.Pin()
		defer c.snap.mgr.Unpin(v)
		st = v.Data
		if cost != nil {
			cost.Epoch = v.Epoch()
		}
	} else {
		c.rw.RLock()
		defer c.rw.RUnlock() // deferred so a panicking inner index never wedges writers
		st = c.live
	}
	if cost != nil && st.costed != nil {
		sc.pts = st.costed.RangeListCost(box, sc.pts[:0], cost)
	} else {
		sc.pts = st.idx.RangeList(box, sc.pts[:0])
		if cost != nil {
			cost.Shards++
			cost.Candidates += len(sc.pts)
		}
	}
	dst = c.resolveAppend(st, sc, dst)
	c.putQueryScratch(sc)
	return dst
}

func (c *Collection[ID]) getQueryScratch() *queryScratch {
	if c.opts.DisableScratch {
		return new(queryScratch)
	}
	return c.queryPool.Get().(*queryScratch)
}

func (c *Collection[ID]) putQueryScratch(sc *queryScratch) {
	if !c.opts.DisableScratch {
		c.queryPool.Put(sc)
	}
}

// resolveAppend maps the scratch's hit multiset to entries through st's
// reverse multimap, appending to dst (callers hold rw or a pin on st's
// version). A point stored once per object at it means hits and rev
// lists have equal multiplicity; for the rare points owned by several
// objects, a cursor walks the ID list so duplicate hits resolve to
// distinct objects. Single-owner points — the common case — never touch
// the cursor map.
func (c *Collection[ID]) resolveAppend(st *collState[ID], sc *queryScratch, dst []Entry[ID]) []Entry[ID] {
	cursorUsed := false
	for _, p := range sc.pts {
		ids := st.rev[p]
		switch {
		case len(ids) == 0:
			// Unreachable while the flush invariant holds (Validate
			// checks it); skip rather than fabricate an entry.
		case len(ids) == 1:
			dst = append(dst, Entry[ID]{ID: ids[0], Point: p})
		default:
			if sc.cursor == nil {
				sc.cursor = make(map[geom.Point]int)
			}
			cursorUsed = true
			i := sc.cursor[p]
			if i >= len(ids) {
				continue // see the len(ids) == 0 case
			}
			sc.cursor[p] = i + 1
			dst = append(dst, Entry[ID]{ID: ids[i], Point: p})
		}
	}
	if cursorUsed {
		clear(sc.cursor)
	}
	return dst
}

// Pending returns the number of enqueued, not-yet-flushed ops.
func (c *Collection[ID]) Pending() int {
	c.pend.Lock()
	defer c.pend.Unlock()
	return len(c.pend.ops)
}

// Stats returns a snapshot of the Collection's counters. Counters are
// updated after each flush, so a snapshot racing a flush may lag by that
// one batch. Stats never takes the writer lock, so it does not block
// behind an in-flight flush: in snapshot mode Objects is the published
// epoch's live-object count, in locked mode it is derived from the
// lifetime counters (identical at every flush boundary).
func (c *Collection[ID]) Stats() Stats {
	st := Stats{
		Flushes:       c.flushes.Load(),
		Inserted:      c.inserted.Load(),
		Moved:         c.moved.Load(),
		Removed:       c.removed.Load(),
		Cancelled:     c.cancelled.Load(),
		JournalErrors: c.journalErrs.Load(),
		Pending:       c.Pending(),
		Versions:      1,
	}
	st.Objects = int(st.Inserted) - int(st.Removed)
	if c.snap.enabled {
		v := c.snap.mgr.Pin()
		st.Objects = len(v.Data.fwd)
		c.snap.mgr.Unpin(v)
		st.Epoch = c.snap.mgr.Epoch()
		st.Versions = 2
		st.RetireLag = c.snap.mgr.RetireLag()
	}
	return st
}

// Validate flushes, then checks the transactional-consistency invariant
// between the three committed structures: the index holds exactly one
// point per live object, and the forward and reverse tables are exact
// inverses. Tests and the fuzz harness call it after every tape.
func (c *Collection[ID]) Validate() error {
	c.Flush()
	if c.snap.enabled {
		v := c.snap.mgr.Pin()
		defer c.snap.mgr.Unpin(v)
		return v.Data.validate()
	}
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.live.validate()
}

func (st *collState[ID]) validate() error {
	if got, want := st.idx.Size(), len(st.fwd); got != want {
		return fmt.Errorf("collection: index stores %d points, %d live objects", got, want)
	}
	nRev := 0
	for p, ids := range st.rev {
		if len(ids) == 0 {
			return fmt.Errorf("collection: empty reverse entry for %v", p)
		}
		nRev += len(ids)
		for _, id := range ids {
			if got, live := st.fwd[id]; !live || got != p {
				return fmt.Errorf("collection: rev[%v] lists %v but fwd says (%v, %t)", p, id, got, live)
			}
		}
	}
	if nRev != len(st.fwd) {
		return fmt.Errorf("collection: reverse multimap holds %d entries, %d live objects", nRev, len(st.fwd))
	}
	return nil
}
