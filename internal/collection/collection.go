// Package collection implements psi.Collection, a concurrent ID-keyed
// moving-object layer over any core.Index. The paper's indexes (and the
// Store/Sharded layers built on them) operate on anonymous point
// multisets; every serving scenario — fleet tracking, geofencing, game
// worlds — needs *identity*: "object X moved from p0 to p1", which is
// exactly the paper's BatchDiff applied per tracked object. A Collection
// owns one point per live ID and turns each Set into the minimal diff:
//
//	Set(id, p1) on an object at p0  →  BatchDiff{ins: p1, del: p0}
//
// Mutations go through an ID-keyed coalescing log (the identity analogue
// of internal/store's multiset log): Set/Remove calls from any number of
// goroutines append to an ordered tape, and a flush nets the tape by
// last-write-wins per ID — an object moved five times in one window costs
// the index one delete and one insert, and a Set followed by Remove in
// the same window costs nothing. Because identity makes netting exact,
// the tape never needs the order-aware insert/delete matching the Store
// does for anonymous points.
//
// Consistency: the geometric index, the forward table (ID → point), and
// the reverse multimap (point → IDs) all advance together at the flush
// boundary, under one writer lock. Queries (NearbyIDs, WithinIDs) take
// the shared read lock, run the geometric query, and resolve every hit
// through the reverse multimap — they can never observe an index point
// without its owner or vice versa. Get is the exception: it reads the
// caller's own pending tail (read-your-writes), so Get(id) after Set(id,
// p) returns p even before the flush makes p visible to geometric
// queries.
//
// Composition: the inner index may be a raw tree (Collection adds the
// concurrency safety), a shard.Sharded (each flush fans out across
// shards in parallel — the recommended high-churn stack), or a
// store.Store (legal; the Collection flushes it synchronously so the
// reverse multimap never runs ahead of the index, but the Store's own
// coalescing is redundant below a Collection).
package collection

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// DefaultMaxBatch is the coalescing threshold used when Options.MaxBatch
// is unset, matching store.DefaultMaxBatch: the pending-op count at which
// the enqueuing goroutine flushes synchronously.
const DefaultMaxBatch = 1024

// Options tunes a Collection. The zero value is usable: DefaultMaxBatch
// coalescing, no background flusher.
type Options struct {
	// MaxBatch is the pending-op count that triggers a synchronous flush
	// by the enqueuing goroutine (built-in backpressure). <= 0 selects
	// DefaultMaxBatch.
	MaxBatch int
	// FlushInterval, when positive, starts a background goroutine that
	// flushes every interval, bounding how far geometric queries lag
	// behind Set calls under light write traffic. Stop it with Close.
	FlushInterval time.Duration
	// DisableScratch turns off the flush- and query-path buffer recycling
	// (op tape, netting map, diff buffers, reverse-multimap freelist,
	// query scratch), so every window and query allocates fresh — the
	// pre-reuse behavior. It exists so -exp alloc can measure the
	// before/after of scratch reuse; production configurations leave it
	// false.
	DisableScratch bool
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	return o
}

// Stats is a snapshot of a Collection's lifetime counters.
type Stats struct {
	Flushes   uint64 // batches applied to the index
	Inserted  uint64 // objects that entered the index (first Set)
	Moved     uint64 // objects relocated (Set on a live ID, position changed)
	Removed   uint64 // objects deleted from the index
	Cancelled uint64 // enqueued ops superseded in-window by a later op on the same ID
	Pending   int    // ops enqueued but not yet flushed
}

// Entry is one resolved query hit: a live object and its indexed
// position.
type Entry[ID comparable] struct {
	ID    ID
	Point geom.Point
}

// Collection tracks one point per ID over an inner core.Index. Create
// one with New; the zero value is not usable. All methods are safe for
// concurrent use by any number of goroutines.
type Collection[ID comparable] struct {
	opts Options
	idx  core.Index
	dims int

	// pend guards the ID-keyed coalescing log: the ordered op tape plus
	// an overlay holding the latest pending op per ID (what Get reads).
	// It is held only for appends, overlay lookups, and the post-commit
	// purge — never while a batch is applied.
	pend struct {
		sync.Mutex
		seq     uint64
		ops     []op[ID]
		overlay map[ID]tailOp
	}

	// flushMu serializes flushes, so the committed state always reflects
	// a prefix of the enqueue history. rw guards the committed triple
	// (inner index, fwd, rev): queries share read locks, a flush commits
	// under the write lock.
	flushMu sync.Mutex
	rw      sync.RWMutex
	fwd     map[ID]geom.Point
	rev     map[geom.Point][]ID

	// scratch is the flush-path buffer set (guarded by flushMu): the
	// recycled op tape, the last-write-wins netting map, and the diff
	// buffers handed to BatchDiff. revFree (guarded by rw's write side)
	// recycles the reverse multimap's small per-point ID slices, so a
	// steady stream of moves churns no fresh slices. queryPool recycles
	// per-query hit-resolution scratch across concurrent readers.
	scratch   collScratch[ID]
	revFree   [][]ID
	queryPool sync.Pool

	flushes   atomic.Uint64
	inserted  atomic.Uint64
	moved     atomic.Uint64
	removed   atomic.Uint64
	cancelled atomic.Uint64

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// op is one logged mutation: Set (del=false) or Remove (del=true) of id.
// seq is the global enqueue sequence number, used to purge overlay
// entries once their window commits.
type op[ID comparable] struct {
	id  ID
	p   geom.Point
	del bool
	seq uint64
}

// tailOp is the overlay value: the latest pending op for an ID.
type tailOp struct {
	p   geom.Point
	del bool
	seq uint64
}

// collScratch is the recycled flush state. Everything grows to the window
// high-water mark and is then reused.
type collScratch[ID comparable] struct {
	spare    []op[ID]
	final    map[ID]op[ID]
	ins, del []geom.Point
}

// queryScratch is one query's resolution state: the raw geometric hits
// and the duplicate-point cursor (only touched for multi-owner points).
type queryScratch struct {
	pts    []geom.Point
	cursor map[geom.Point]int
}

// maxRevFree caps the reverse-multimap slice freelist so a collection
// that shrinks dramatically does not hold spare slices forever.
const maxRevFree = 1 << 16

// New wraps idx in a Collection. The Collection takes ownership of idx:
// the caller must not touch it directly afterwards (in particular, the
// index must start empty — every stored point must have an owning ID).
// If opts.FlushInterval is positive the background flusher starts
// immediately; pair New with Close to stop it.
func New[ID comparable](idx core.Index, opts Options) *Collection[ID] {
	c := &Collection[ID]{
		opts: opts.withDefaults(),
		idx:  idx,
		dims: idx.Dims(),
		fwd:  make(map[ID]geom.Point),
		rev:  make(map[geom.Point][]ID),
		stop: make(chan struct{}),
	}
	c.pend.overlay = make(map[ID]tailOp)
	c.queryPool.New = func() any { return new(queryScratch) }
	if c.opts.FlushInterval > 0 {
		c.wg.Add(1)
		go c.flushLoop()
	}
	return c
}

func (c *Collection[ID]) flushLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.Flush()
		case <-c.stop:
			return
		}
	}
}

// Close stops the background flusher (if any), applies all pending ops,
// and closes the inner index when it has a Close method of its own (a
// wrapped Store's background flusher, for example — the Collection owns
// idx, so nobody else can stop it). The Collection remains usable after
// Close — only the periodic flushing ends. Close is idempotent.
func (c *Collection[ID]) Close() {
	c.closeOnce.Do(func() {
		close(c.stop)
		c.wg.Wait()
	})
	c.Flush()
	if cl, ok := c.idx.(interface{ Close() }); ok {
		cl.Close()
	}
}

// Name labels the Collection after its inner index.
func (c *Collection[ID]) Name() string { return fmt.Sprintf("Collection(%s)", c.idx.Name()) }

// Dims returns the dimensionality of the inner index.
func (c *Collection[ID]) Dims() int { return c.dims }

// Set enqueues a move: id is (re)located to p. The relocation becomes
// visible to geometric queries at the flush that applies it, netted with
// any other pending ops on the same ID; Get(id) sees it immediately.
func (c *Collection[ID]) Set(id ID, p geom.Point) { c.enqueue(id, p, false) }

// Remove enqueues the removal of id. Removing an absent ID is a no-op
// when its window flushes.
func (c *Collection[ID]) Remove(id ID) { c.enqueue(id, geom.Point{}, true) }

func (c *Collection[ID]) enqueue(id ID, p geom.Point, del bool) {
	c.pend.Lock()
	c.pend.seq++
	c.pend.ops = append(c.pend.ops, op[ID]{id: id, p: p, del: del, seq: c.pend.seq})
	c.pend.overlay[id] = tailOp{p: p, del: del, seq: c.pend.seq}
	full := len(c.pend.ops) >= c.opts.MaxBatch
	c.pend.Unlock()
	if full {
		c.Flush()
	}
}

// Get returns id's position. It observes the caller's latest enqueued op
// for id even before a flush (read-your-writes): the pending overlay is
// consulted first, the committed table second. The overlay is purged
// only after its window commits (under the writer lock), so a Get that
// misses the overlay is guaranteed to see a committed state at least as
// new as every purged op.
func (c *Collection[ID]) Get(id ID) (geom.Point, bool) {
	c.pend.Lock()
	tail, ok := c.pend.overlay[id]
	c.pend.Unlock()
	if ok {
		if tail.del {
			return geom.Point{}, false
		}
		return tail.p, true
	}
	c.rw.RLock()
	p, live := c.fwd[id]
	c.rw.RUnlock()
	return p, live
}

// Len flushes pending ops and returns the number of live objects, so the
// answer reflects every enqueue that happened before the call.
func (c *Collection[ID]) Len() int {
	c.Flush()
	c.rw.RLock()
	defer c.rw.RUnlock()
	return len(c.fwd)
}

// Flush nets every pending op by last-write-wins per ID, applies the
// resulting diff to the index as one BatchDiff, and advances the
// forward/reverse tables under the same writer lock. It returns the
// number of index mutations applied (inserts + deletes). Flush is a
// synchronization barrier: on return, every op enqueued before the call
// is visible to geometric queries.
func (c *Collection[ID]) Flush() int {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	sc := &c.scratch
	if c.opts.DisableScratch {
		sc = new(collScratch[ID])
	}
	c.pend.Lock()
	if len(c.pend.ops) == 0 {
		c.pend.Unlock()
		return 0
	}
	ops := c.pend.ops
	// Hand the previous window's emptied tape to the enqueuers: the op
	// log double-buffers instead of re-growing from nil every window.
	c.pend.ops = sc.spare
	sc.spare = nil
	c.pend.Unlock()

	// Net the window: the last op per ID wins, every earlier op on that
	// ID is superseded. Identity makes this exact — no order-aware
	// matching needed.
	// sc.final is empty here: every completed flush clears it on the way
	// out (so retained capacity never pins ID values while idle).
	if sc.final == nil {
		sc.final = make(map[ID]op[ID], len(ops))
	}
	final := sc.final
	for _, o := range ops {
		final[o.id] = o
	}
	c.cancelled.Add(uint64(len(ops) - len(final)))

	// Plan the diff against the committed forward table. Reading fwd
	// without rw is safe here: only flushes write it and flushMu is held.
	ins := sc.ins[:0]
	del := sc.del[:0]
	var nIns, nMove, nDel uint64
	for id, o := range final {
		old, live := c.fwd[id]
		switch {
		case o.del && live:
			del = append(del, old)
			nDel++
		case o.del:
			// Remove of an absent ID: nothing to do.
		case live && old == o.p:
			// Same-position Set: the index is already right.
		case live:
			del = append(del, old)
			ins = append(ins, o.p)
			nMove++
		default:
			ins = append(ins, o.p)
			nIns++
		}
	}

	c.rw.Lock()
	c.idx.BatchDiff(ins, del)
	// An inner Store (or any other deferring layer) buffers BatchDiff;
	// flush it inside our commit so the index and the tables below never
	// disagree at a read-lock boundary.
	if f, ok := c.idx.(interface{ Flush() int }); ok {
		f.Flush()
	}
	for id, o := range final {
		old, live := c.fwd[id]
		if o.del {
			if live {
				delete(c.fwd, id)
				c.revRemove(old, id)
			}
			continue
		}
		if live {
			if old == o.p {
				continue
			}
			c.revRemove(old, id)
		}
		c.fwd[id] = o.p
		c.revAdd(o.p, id)
	}
	// Purge committed overlay entries while still holding the writer
	// lock: after a Get misses the overlay, the committed state it then
	// reads must already include every purged op. Ops enqueued after the
	// tape swap carry higher sequence numbers and survive.
	c.pend.Lock()
	for id, o := range final {
		if tail, ok := c.pend.overlay[id]; ok && tail.seq <= o.seq {
			delete(c.pend.overlay, id)
		}
	}
	c.pend.Unlock()
	c.rw.Unlock()

	// The netted tape and the ins/del buffers are dead: the index must
	// not have retained the batch slices (the core.Index contract), so
	// everything is reusable next window. Clear the tape and the netting
	// map before retiring them so recycled capacity never pins the
	// window's ID values (strings, typically) while the collection idles.
	clear(ops)
	clear(final)
	sc.spare = ops[:0]
	sc.ins, sc.del = ins[:0], del[:0]

	c.flushes.Add(1)
	c.inserted.Add(nIns)
	c.moved.Add(nMove)
	c.removed.Add(nDel)
	return len(ins) + len(del)
}

// revRemove drops one occurrence of id from rev[p] (callers hold rw).
// Emptied ID slices go to the freelist so the next revAdd of a fresh
// point reuses them instead of allocating.
func (c *Collection[ID]) revRemove(p geom.Point, id ID) {
	ids := c.rev[p]
	for i, got := range ids {
		if got == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(c.rev, p)
		if cap(ids) > 0 && len(c.revFree) < maxRevFree && !c.opts.DisableScratch {
			clear(ids[:cap(ids)]) // drop stale ID values so nothing is pinned
			c.revFree = append(c.revFree, ids)
		}
	} else {
		c.rev[p] = ids
	}
}

// revAdd appends id to rev[p] (callers hold rw), drawing the backing
// slice from the freelist when the point is new to the map.
func (c *Collection[ID]) revAdd(p geom.Point, id ID) {
	ids, ok := c.rev[p]
	if !ok && len(c.revFree) > 0 {
		ids = c.revFree[len(c.revFree)-1]
		c.revFree = c.revFree[:len(c.revFree)-1]
	}
	c.rev[p] = append(ids, id)
}

// NearbyIDs returns the k objects nearest q (nearest first), resolved to
// their IDs. Ties at the k-th distance — including several objects
// sharing one point — are broken arbitrarily, matching core.Index.KNN.
// Only flushed ops are visible.
func (c *Collection[ID]) NearbyIDs(q geom.Point, k int) []Entry[ID] {
	return c.NearbyIDsAppend(q, k, nil)
}

// NearbyIDsAppend is NearbyIDs with a caller-provided destination: the
// resolved entries are appended to dst and the extended slice returned,
// following the same dst-append contract as core.Index queries (the
// collection keeps no alias to dst). Serving loops reuse one dst across
// requests so warm queries allocate nothing here.
func (c *Collection[ID]) NearbyIDsAppend(q geom.Point, k int, dst []Entry[ID]) []Entry[ID] {
	sc := c.getQueryScratch()
	c.rw.RLock()
	defer c.rw.RUnlock() // deferred so a panicking inner index never wedges writers
	sc.pts = c.idx.KNN(q, k, sc.pts[:0])
	dst = c.resolveAppend(sc, dst)
	c.putQueryScratch(sc)
	return dst
}

// WithinIDs returns every object inside box (order unspecified),
// resolved to IDs. Only flushed ops are visible.
func (c *Collection[ID]) WithinIDs(box geom.Box) []Entry[ID] {
	return c.WithinIDsAppend(box, nil)
}

// WithinIDsAppend is WithinIDs with a caller-provided destination (see
// NearbyIDsAppend for the contract).
func (c *Collection[ID]) WithinIDsAppend(box geom.Box, dst []Entry[ID]) []Entry[ID] {
	sc := c.getQueryScratch()
	c.rw.RLock()
	defer c.rw.RUnlock() // deferred so a panicking inner index never wedges writers
	sc.pts = c.idx.RangeList(box, sc.pts[:0])
	dst = c.resolveAppend(sc, dst)
	c.putQueryScratch(sc)
	return dst
}

func (c *Collection[ID]) getQueryScratch() *queryScratch {
	if c.opts.DisableScratch {
		return new(queryScratch)
	}
	return c.queryPool.Get().(*queryScratch)
}

func (c *Collection[ID]) putQueryScratch(sc *queryScratch) {
	if !c.opts.DisableScratch {
		c.queryPool.Put(sc)
	}
}

// resolveAppend maps the scratch's hit multiset to entries through the
// reverse multimap, appending to dst (callers hold rw). A point stored
// once per object at it means hits and rev lists have equal multiplicity;
// for the rare points owned by several objects, a cursor walks the ID
// list so duplicate hits resolve to distinct objects. Single-owner points
// — the common case — never touch the cursor map.
func (c *Collection[ID]) resolveAppend(sc *queryScratch, dst []Entry[ID]) []Entry[ID] {
	cursorUsed := false
	for _, p := range sc.pts {
		ids := c.rev[p]
		switch {
		case len(ids) == 0:
			// Unreachable while the flush invariant holds (Validate
			// checks it); skip rather than fabricate an entry.
		case len(ids) == 1:
			dst = append(dst, Entry[ID]{ID: ids[0], Point: p})
		default:
			if sc.cursor == nil {
				sc.cursor = make(map[geom.Point]int)
			}
			cursorUsed = true
			i := sc.cursor[p]
			if i >= len(ids) {
				continue // see the len(ids) == 0 case
			}
			sc.cursor[p] = i + 1
			dst = append(dst, Entry[ID]{ID: ids[i], Point: p})
		}
	}
	if cursorUsed {
		clear(sc.cursor)
	}
	return dst
}

// Pending returns the number of enqueued, not-yet-flushed ops.
func (c *Collection[ID]) Pending() int {
	c.pend.Lock()
	defer c.pend.Unlock()
	return len(c.pend.ops)
}

// Stats returns a snapshot of the Collection's counters. Counters are
// updated after each flush, so a snapshot racing a flush may lag by that
// one batch.
func (c *Collection[ID]) Stats() Stats {
	return Stats{
		Flushes:   c.flushes.Load(),
		Inserted:  c.inserted.Load(),
		Moved:     c.moved.Load(),
		Removed:   c.removed.Load(),
		Cancelled: c.cancelled.Load(),
		Pending:   c.Pending(),
	}
}

// Validate flushes, then checks the transactional-consistency invariant
// between the three committed structures: the index holds exactly one
// point per live object, and the forward and reverse tables are exact
// inverses. Tests and the fuzz harness call it after every tape.
func (c *Collection[ID]) Validate() error {
	c.Flush()
	c.rw.RLock()
	defer c.rw.RUnlock()
	if got, want := c.idx.Size(), len(c.fwd); got != want {
		return fmt.Errorf("collection: index stores %d points, %d live objects", got, want)
	}
	nRev := 0
	for p, ids := range c.rev {
		if len(ids) == 0 {
			return fmt.Errorf("collection: empty reverse entry for %v", p)
		}
		nRev += len(ids)
		for _, id := range ids {
			if got, live := c.fwd[id]; !live || got != p {
				return fmt.Errorf("collection: rev[%v] lists %v but fwd says (%v, %t)", p, id, got, live)
			}
		}
	}
	if nRev != len(c.fwd) {
		return fmt.Errorf("collection: reverse multimap holds %d entries, %d live objects", nRev, len(c.fwd))
	}
	return nil
}
