package collection

import (
	"repro/internal/obs"
)

// collMetrics is the Collection's observability hook set, created once
// in New when Options.Obs is given. The exposed counters read the
// Collection's own atomics through CounterFuncs; span is the persistent
// flush-span scratch (guarded by flushMu) that keeps span recording
// allocation-free.
type collMetrics struct {
	trace    *obs.FlushTrace
	flushDur *obs.Hist
	span     obs.FlushSpan
}

func newCollMetrics[ID comparable](r *obs.Registry, c *Collection[ID]) *collMetrics {
	layer := obs.Label{Key: "layer", Value: "collection"}
	r.CounterFunc("psi_flush_total",
		"Flush windows applied to the index.",
		c.flushes.Load, layer)
	r.CounterFunc("psi_flush_ops_raw_total",
		"Mutations entering flush windows before netting.",
		c.rawOps.Load, layer)
	r.CounterFunc("psi_flush_ops_netted_total",
		"Index mutations surviving netting (applied inserts plus deletes).",
		c.applied.Load, layer)
	r.CounterFunc("psi_flush_ops_cancelled_total",
		"Ops superseded in-window by a later op on the same ID.",
		c.cancelled.Load, layer)
	r.GaugeFunc("psi_objects",
		"Live objects in the committed (published) state.",
		func() float64 { return float64(c.liveObjects()) }, layer)
	r.GaugeFunc("psi_epoch",
		"Published snapshot epoch (0 in locked mode).",
		func() float64 { return float64(c.snap.mgr.Epoch()) }, layer)
	r.GaugeFunc("psi_epoch_retire_lag",
		"Published epochs whose displaced version has not drained.",
		func() float64 { return float64(c.snap.mgr.RetireLag()) }, layer)
	return &collMetrics{
		trace: r.FlushTrace(),
		flushDur: r.Histogram("psi_flush_duration_ns",
			"Flush wall time in nanoseconds, summed over pipeline stages.",
			layer),
	}
}

// liveObjects counts committed objects without the writer lock: off the
// pinned published version in snapshot mode, under the read lock
// otherwise.
func (c *Collection[ID]) liveObjects() int {
	if c.snap.enabled {
		v := c.snap.mgr.Pin()
		n := len(v.Data.fwd)
		c.snap.mgr.Unpin(v)
		return n
	}
	c.rw.RLock()
	n := len(c.live.fwd)
	c.rw.RUnlock()
	return n
}
