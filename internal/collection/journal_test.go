package collection

import (
	"encoding/binary"
	"errors"
	"iter"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/wal"
)

// intCodec is a test wal.Codec for integer IDs (zigzag varint), so the
// journal alloc guard can reuse the int-keyed Collection fixtures.
type intCodec struct{}

func (intCodec) AppendID(dst []byte, id int) []byte {
	return binary.AppendVarint(dst, int64(id))
}

func (intCodec) DecodeID(src []byte) (int, int, error) {
	v, n := binary.Varint(src)
	if n <= 0 {
		return 0, 0, errors.New("intCodec: bad varint")
	}
	return int(v), n, nil
}

// TestJournalReceivesNettedWindow pins the SetJournal contract: the hook
// sees exactly the netted window — at most one op per ID, last write
// wins, removals flagged Del — before the flush applies it, and sees
// nothing for flushes with no pending ops.
func TestJournalReceivesNettedWindow(t *testing.T) {
	c := New[string](core.NewBruteForce(2), Options{MaxBatch: 1 << 20})
	defer c.Close()
	var calls int
	var got map[string]wal.Op[string]
	c.SetJournal(func(ops []wal.Op[string]) error {
		calls++
		got = make(map[string]wal.Op[string], len(ops))
		for _, o := range ops {
			if _, dup := got[o.ID]; dup {
				t.Errorf("journal window has duplicate ID %q", o.ID)
			}
			got[o.ID] = o
		}
		return nil
	})

	pa, pb := geom.Pt2(1, 2), geom.Pt2(3, 4)
	c.Set("a", geom.Pt2(9, 9)) // superseded: netting must drop it
	c.Set("a", pa)
	c.Set("b", pb)
	c.Set("gone", geom.Pt2(5, 5))
	c.Remove("gone") // set-then-remove nets to a single delete
	if n := c.Flush(); n == 0 {
		t.Fatal("Flush applied nothing")
	}
	if calls != 1 {
		t.Fatalf("journal called %d times, want 1", calls)
	}
	if len(got) != 3 {
		t.Fatalf("journal window has %d ops, want 3: %v", len(got), got)
	}
	if o := got["a"]; o.Del || o.P != pa {
		t.Fatalf("op for a = %+v, want last write %v", o, pa)
	}
	if o := got["b"]; o.Del || o.P != pb {
		t.Fatalf("op for b = %+v, want %v", o, pb)
	}
	if o := got["gone"]; !o.Del {
		t.Fatalf("op for gone = %+v, want a delete", o)
	}

	// No pending ops: the hook must not fire for an empty flush.
	if n := c.Flush(); n != 0 || calls != 1 {
		t.Fatalf("empty Flush = %d, journal calls = %d; want 0, 1", n, calls)
	}

	// Hook errors are counted, and the in-memory commit still happens.
	c.SetJournal(func([]wal.Op[string]) error { return errors.New("disk on fire") })
	c.Set("c", geom.Pt2(7, 7))
	c.Flush()
	if errs := c.Stats().JournalErrors; errs != 1 {
		t.Fatalf("JournalErrors = %d, want 1", errs)
	}
	if p, ok := c.Get("c"); !ok || p != geom.Pt2(7, 7) {
		t.Fatalf("commit aborted on journal error: Get(c) = %v, %t", p, ok)
	}
}

// TestCheckpointMatchesCommittedState pins Checkpoint: it reports the
// committed forward table (the fold of every journaled window) and
// excludes pending ops, in both locking modes.
func TestCheckpointMatchesCommittedState(t *testing.T) {
	modes := map[string]Options{
		"locked":   {MaxBatch: 1 << 20},
		"snapshot": {MaxBatch: 1 << 20, Snapshot: newSPaCH},
	}
	for name, opts := range modes {
		t.Run(name, func(t *testing.T) {
			var inner core.Index = core.NewBruteForce(2)
			if opts.Snapshot != nil {
				inner = newSPaCH()
			}
			c := New[string](inner, opts)
			defer c.Close()
			want := map[string]geom.Point{
				"a": geom.Pt2(1, 1),
				"b": geom.Pt2(2, 2),
			}
			for id, p := range want {
				c.Set(id, p)
			}
			c.Set("dead", geom.Pt2(9, 9))
			c.Remove("dead")
			c.Flush()
			c.Set("pending", geom.Pt2(3, 3)) // unflushed: must not appear

			c.Checkpoint(func(objects int, entries iter.Seq2[string, geom.Point]) {
				if objects != len(want) {
					t.Errorf("objects = %d, want %d", objects, len(want))
				}
				seen := make(map[string]geom.Point)
				for id, p := range entries {
					seen[id] = p
				}
				if len(seen) != len(want) {
					t.Errorf("entries = %v, want %v", seen, want)
				}
				for id, p := range want {
					if seen[id] != p {
						t.Errorf("entries[%q] = %v, want %v", id, seen[id], p)
					}
				}
			})
		})
	}
}

// TestJournalFlushZeroAllocWarm extends the scratch-reuse alloc guard
// across the durability hook: with a real WAL attached (FsyncNever),
// warm Set→Flush cycles must stay allocation-free — the wal.Op window
// is built in recycled scratch and the record encode buffer is reused
// inside wal.Log. Same thresholds as TestSetFlushZeroAllocWarm: exactly
// zero for same-position windows, amortized sub-one for moves (reverse
// multimap bucket churn, not the journal).
func TestJournalFlushZeroAllocWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const n = 512
	posA := make([]geom.Point, n)
	posB := make([]geom.Point, n)
	for i := range posA {
		posA[i] = geom.Pt2(int64(i)*17, int64(i)*29)
		posB[i] = geom.Pt2(int64(i)*17+5, int64(i)*29+3)
	}
	newJournaled := func(t *testing.T) *Collection[int] {
		t.Helper()
		l, _, err := wal.Open[int](t.TempDir(), intCodec{}, wal.Options{Fsync: wal.FsyncNever})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		c := New[int](core.NewNull(2), Options{MaxBatch: 1 << 20})
		c.SetJournal(l.AppendWindow)
		t.Cleanup(c.Close)
		return c
	}
	t.Run("same-position windows", func(t *testing.T) {
		c := newJournaled(t)
		window := func() {
			for i, p := range posA {
				c.Set(i, p)
			}
			c.Flush()
		}
		window()
		window()
		if allocs := testing.AllocsPerRun(50, window); allocs != 0 {
			t.Fatalf("warm journaled same-position window allocates %.2f/op, want 0", allocs)
		}
	})
	t.Run("move windows", func(t *testing.T) {
		c := newJournaled(t)
		for i, p := range posA {
			c.Set(i, p)
		}
		c.Flush()
		cur, next := posA, posB
		window := func() {
			for i, p := range next {
				c.Set(i, p)
			}
			c.Flush()
			cur, next = next, cur
		}
		window()
		window()
		if allocs := testing.AllocsPerRun(50, window); allocs >= 1 {
			t.Fatalf("warm journaled move window allocates %.2f/op, want amortized < 1", allocs)
		}
	})
}

// closeTrackIndex wraps an index, recording Close calls and flagging any
// mutation that arrives after Close — the bug TestCloseFlushRace guards
// against (a background-flusher tick racing Close used to be able to
// flush into a closed index).
type closeTrackIndex struct {
	core.Index
	closes atomic.Int32
	late   atomic.Bool
}

func (x *closeTrackIndex) Close() { x.closes.Add(1) }

func (x *closeTrackIndex) check() {
	if x.closes.Load() > 0 {
		x.late.Store(true)
	}
}

func (x *closeTrackIndex) BatchInsert(pts []geom.Point) { x.check(); x.Index.BatchInsert(pts) }
func (x *closeTrackIndex) BatchDelete(pts []geom.Point) { x.check(); x.Index.BatchDelete(pts) }
func (x *closeTrackIndex) BatchDiff(ins, del []geom.Point) {
	x.check()
	x.Index.BatchDiff(ins, del)
}

// TestCloseFlushRace hammers concurrent Close calls against live write
// traffic and a fast background flusher, asserting the Close contract:
// the ticker goroutine is fully stopped before the final flush, the
// inner index is closed exactly once, and no flush ever applies to the
// index after its Close ran. Run under -race this also checks the
// shutdown sequencing itself.
func TestCloseFlushRace(t *testing.T) {
	for range 20 {
		inner := &closeTrackIndex{Index: core.NewBruteForce(2)}
		// Large MaxBatch: only the ticker and Close itself may flush, so
		// writers can legally keep enqueueing across the Close.
		c := New[int](inner, Options{MaxBatch: 1 << 20, FlushInterval: 50 * time.Microsecond})

		stopWriters := make(chan struct{})
		var writers sync.WaitGroup
		for w := range 4 {
			writers.Add(1)
			go func() {
				defer writers.Done()
				for i := 0; ; i++ {
					select {
					case <-stopWriters:
						return
					default:
					}
					id := w*1000 + i%100
					c.Set(id, geom.Pt2(int64(i), int64(w)))
					if i%7 == 0 {
						c.Remove(id)
					}
					c.Get(id)
				}
			}()
		}

		time.Sleep(200 * time.Microsecond)
		var closers sync.WaitGroup
		for range 3 {
			closers.Add(1)
			go func() {
				defer closers.Done()
				c.Close()
			}()
		}
		closers.Wait()
		close(stopWriters)
		writers.Wait()
		c.Close() // idempotent after the concurrent trio

		if n := inner.closes.Load(); n != 1 {
			t.Fatalf("inner index closed %d times, want exactly 1", n)
		}
		if inner.late.Load() {
			t.Fatal("a flush mutated the inner index after it was closed")
		}
	}
}
