package collection

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
)

// The snapshot-read (epoch-pinned) variant of the Collection test suite:
// the same behavioural contract as locked mode, plus the properties the
// mode exists for — readers never wait behind a flush, reads are never
// torn across the index/fwd/rev triple, and the epoch counters in Stats
// track the flush history.

// TestSnapshotOracleAgreementAcrossStacks re-runs the sequential
// differential tape with Options.Snapshot enabled over every documented
// inner stack: snapshot mode must be observationally identical to locked
// mode, and the epoch must advance by exactly one per non-empty flush.
func TestSnapshotOracleAgreementAcrossStacks(t *testing.T) {
	const nIDs = 64
	for name, mk := range innerStacks() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			c := New[int](mk(), Options{MaxBatch: 1 << 20, Snapshot: mk})
			defer c.Close()
			oracle := make(map[int]geom.Point)
			for i := 0; i < 400; i++ {
				id := rng.Intn(nIDs)
				if rng.Intn(5) == 0 {
					c.Remove(id)
					delete(oracle, id)
				} else {
					p := geom.Pt2(int64(rng.Intn(64))*(side/64), int64(rng.Intn(64))*(side/64))
					c.Set(id, p)
					oracle[id] = p
				}
				if rng.Intn(25) == 0 {
					before := c.Epoch()
					pending := c.Pending() > 0
					c.Flush()
					if pending && c.Epoch() != before+1 {
						t.Fatalf("non-empty flush moved epoch %d -> %d, want +1", before, c.Epoch())
					}
					verifyAgainstOracle(t, c, oracle, nIDs)
				}
			}
			c.Flush()
			verifyAgainstOracle(t, c, oracle, nIDs)
			st := c.Stats()
			if st.Versions != 2 {
				t.Fatalf("snapshot Stats.Versions = %d, want 2", st.Versions)
			}
			if st.RetireLag != 0 {
				t.Fatalf("quiescent Stats.RetireLag = %d, want 0", st.RetireLag)
			}
			if st.Epoch != c.Epoch() {
				t.Fatalf("Stats.Epoch = %d, Epoch() = %d", st.Epoch, c.Epoch())
			}
			if st.Objects != len(oracle) {
				t.Fatalf("Stats.Objects = %d, oracle has %d", st.Objects, len(oracle))
			}
		})
	}
}

// gate blocks BatchDiff on an index until released, so tests can hold a
// flush open mid-apply and probe what readers can still do.
type gate struct {
	core.Index
	armed   chan struct{} // closed by the test to arm blocking
	entered chan struct{} // signalled when a BatchDiff is held at the gate
	release chan struct{} // closed by the test to let the apply proceed
}

func newGate(inner core.Index) *gate {
	return &gate{
		Index:   inner,
		armed:   make(chan struct{}),
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
}

func (g *gate) BatchDiff(ins, del []geom.Point) {
	select {
	case <-g.armed:
		select {
		case g.entered <- struct{}{}:
		default:
		}
		<-g.release
	default:
	}
	g.Index.BatchDiff(ins, del)
}

// TestSnapshotReadDuringFlushDoesNotStall is the stall regression the
// tentpole exists to prevent: with a flush held open inside the index
// apply, Get, NearbyIDs, WithinIDs and Stats must all complete against
// the still-published previous epoch. (In locked mode the same probe
// would deadlock — queries wait out the writer lock held across the
// apply — which is why the locked branch of this test does not exist.)
func TestSnapshotReadDuringFlushDoesNotStall(t *testing.T) {
	g := newGate(core.NewBruteForce(2))
	c := New[int](g, Options{
		MaxBatch: 1 << 20,
		Snapshot: func() core.Index { return newGate(core.NewBruteForce(2)) },
	})
	defer c.Close()
	p0 := geom.Pt2(10, 10)
	c.Set(1, p0)
	c.Flush()

	close(g.armed) // next BatchDiff on the published-then-standby twin blocks
	flushed := make(chan struct{})
	go func() {
		c.Set(2, geom.Pt2(20, 20))
		c.Flush()
		close(flushed)
	}()
	// After the preload flush the twin built from idx (the gated g) is the
	// standby, so the second flush blocks inside g's catch-up BatchDiff —
	// before it can publish. Wait until it is held at the gate.
	<-g.entered

	done := make(chan struct{})
	go func() {
		defer close(done)
		if got, ok := c.Get(1); !ok || got != p0 {
			t.Errorf("Get(1) during flush = (%v, %t), want (%v, true)", got, ok, p0)
		}
		if got := c.WithinIDs(universe()); len(got) != 1 || got[0].ID != 1 {
			t.Errorf("WithinIDs during flush = %v, want only id 1 at the previous epoch", got)
		}
		if got := c.NearbyIDs(p0, 1); len(got) != 1 || got[0].ID != 1 {
			t.Errorf("NearbyIDs during flush = %v, want id 1", got)
		}
		if st := c.Stats(); st.Epoch != 1 || st.Objects != 1 {
			t.Errorf("Stats during flush = %+v, want the published epoch 1 with 1 object", st)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("reads stalled behind the held-open flush")
	}
	close(g.release)
	select {
	case <-flushed:
	case <-time.After(10 * time.Second):
		t.Fatal("flush never completed after release")
	}
	if got := c.WithinIDs(universe()); len(got) != 2 {
		t.Fatalf("WithinIDs after flush = %v, want both objects", got)
	}
}

// TestSnapshotNeverTorn alternates the entire population between two
// position configurations, one flush per swing, while readers
// continuously scan the universe: every scan must observe exactly one
// configuration in full — N objects, all at their A positions or all at
// their B positions. A half-applied window leaking through the epoch
// pointer shows up here as a mixed or short scan (and, under -race, as a
// data race on the triple).
func TestSnapshotNeverTorn(t *testing.T) {
	const (
		nObj    = 64
		windows = 100
		readers = 4
	)
	posA := make([]geom.Point, nObj)
	posB := make([]geom.Point, nObj)
	for i := range posA {
		posA[i] = geom.Pt2(int64(i+1)*100, 1)
		posB[i] = geom.Pt2(int64(i+1)*100, 2)
	}
	c := New[int](newSPaCH(), Options{MaxBatch: 1 << 20, Snapshot: newSPaCH})
	defer c.Close()
	for i, p := range posA {
		c.Set(i, p)
	}
	c.Flush()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dst []Entry[int]
			for {
				select {
				case <-stop:
					return
				default:
				}
				dst = c.WithinIDsAppend(universe(), dst[:0])
				if len(dst) != nObj {
					t.Errorf("scan saw %d objects, want %d", len(dst), nObj)
					return
				}
				cfg := dst[0].Point[1]
				for _, e := range dst {
					if e.Point[1] != cfg {
						t.Errorf("torn scan: object %d at config %d, first was %d", e.ID, e.Point[1], cfg)
						return
					}
					if e.Point != posA[e.ID] && e.Point != posB[e.ID] {
						t.Errorf("object %d at impossible position %v", e.ID, e.Point)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < windows; w++ {
		pts := posB
		if w%2 == 1 {
			pts = posA
		}
		for i, p := range pts {
			c.Set(i, p)
		}
		c.Flush()
	}
	close(stop)
	wg.Wait()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotQueryZeroAllocWarm pins the tentpole's performance
// contract: the epoch-pinned query path allocates nothing in steady
// state — Pin/Unpin are two atomic ops on a long-lived Version, and all
// the PR-5 scratch reuse still applies.
func TestSnapshotQueryZeroAllocWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation heap-allocates the query closures")
	}
	mk := func() core.Index { return core.NewBruteForce(2) }
	c := New[int](mk(), Options{MaxBatch: 1 << 20, Snapshot: mk})
	defer c.Close()
	for i := 0; i < 128; i++ {
		c.Set(i, geom.Pt2(int64(i)*50, int64(i)*31))
	}
	c.Flush()
	q := geom.Pt2(side/2, side/2)
	box := geom.BoxOf(geom.Pt2(0, 0), geom.Pt2(side/4, side/4))
	var dst []Entry[int]
	warm := func() {
		dst = c.NearbyIDsAppend(q, 10, dst[:0])
		dst = c.WithinIDsAppend(box, dst[:0])
		c.Get(64)
	}
	warm()
	if allocs := testing.AllocsPerRun(100, warm); allocs != 0 {
		t.Fatalf("epoch-pinned query path allocates %.2f/op, want 0", allocs)
	}
}

// TestSnapshotFlushZeroAllocWarm extends the PR-5 zero-alloc guard to
// snapshot mode: warm same-position windows — catch-up replay, plan,
// apply, window save, publish, drain — run with zero steady-state
// allocations; the two Version structs and the saved-window buffers are
// permanent.
func TestSnapshotFlushZeroAllocWarm(t *testing.T) {
	const n = 512
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Pt2(int64(i)*17, int64(i)*29)
	}
	mk := func() core.Index { return core.NewNull(2) }
	c := New[int](mk(), Options{MaxBatch: 1 << 20, Snapshot: mk, Obs: obs.New()})
	for i, p := range pos {
		c.Set(i, p)
	}
	c.Flush()
	window := func() {
		for i, p := range pos {
			c.Set(i, p)
		}
		c.Flush()
	}
	window()
	window() // both twins warmed through one full publish cycle each
	if allocs := testing.AllocsPerRun(50, window); allocs != 0 {
		t.Fatalf("warm snapshot same-position window allocates %.2f/op, want 0", allocs)
	}
}

// TestSnapshotRequiresEmptyIndexes documents the construction contract:
// snapshot mode panics when the inner index or the factory's twin starts
// non-empty, since the twins could then never agree.
func TestSnapshotRequiresEmptyIndexes(t *testing.T) {
	nonEmpty := func() core.Index {
		idx := core.NewBruteForce(2)
		idx.Build([]geom.Point{geom.Pt2(1, 1)})
		return idx
	}
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic, got none", name)
			}
		}()
		f()
	}
	assertPanics("non-empty inner", func() {
		New[int](nonEmpty(), Options{Snapshot: func() core.Index { return core.NewBruteForce(2) }})
	})
	assertPanics("non-empty twin", func() {
		New[int](core.NewBruteForce(2), Options{Snapshot: nonEmpty})
	})
}
