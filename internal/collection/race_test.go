//go:build race

package collection

// raceEnabled reports whether the race detector is compiled in; alloc
// guards skip under it because instrumentation defeats the closure
// inlining the zero-alloc query path depends on.
const raceEnabled = true
