package collection

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/sfc"
	"repro/internal/shard"
	"repro/internal/spactree"
	"repro/internal/store"
)

const side = int64(1 << 20)

func universe() geom.Box { return geom.UniverseBox(2, side) }

func newSPaCH() core.Index { return spactree.NewSPaC(sfc.Hilbert, 2, universe()) }

// innerStacks enumerates the index stacks a Collection is documented to
// compose over: a raw tree, the brute-force oracle, a Sharded fan-out,
// a Store front-end, and the full Store-over-Sharded serving stack.
func innerStacks() map[string]func() core.Index {
	mkSharded := func() core.Index {
		return shard.New(shard.Options{
			Dims:     2,
			Universe: universe(),
			Shards:   4,
			Strategy: shard.HilbertRange,
			New: func(dims int, u geom.Box) core.Index {
				return spactree.NewSPaC(sfc.Hilbert, dims, u)
			},
		})
	}
	return map[string]func() core.Index{
		"BruteForce":      func() core.Index { return core.NewBruteForce(2) },
		"SPaC-H":          newSPaCH,
		"Sharded(SPaC-H)": mkSharded,
		"Store(SPaC-H)":   func() core.Index { return store.New(newSPaCH(), store.Options{}) },
		"Store(Sharded)":  func() core.Index { return store.New(mkSharded(), store.Options{}) },
	}
}

func TestGetReadsOwnWritesBeforeFlush(t *testing.T) {
	c := New[string](core.NewBruteForce(2), Options{MaxBatch: 1 << 20})
	defer c.Close()
	p0, p1 := geom.Pt2(10, 10), geom.Pt2(20, 20)
	c.Set("a", p0)
	if got, ok := c.Get("a"); !ok || got != p0 {
		t.Fatalf("Get before flush = (%v, %t), want (%v, true)", got, ok, p0)
	}
	// Geometric queries see only flushed state.
	if got := c.WithinIDs(universe()); len(got) != 0 {
		t.Fatalf("pending Set visible to WithinIDs before flush: %v", got)
	}
	c.Set("a", p1)
	if got, _ := c.Get("a"); got != p1 {
		t.Fatalf("Get after second pending Set = %v, want %v", got, p1)
	}
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get after pending Remove still live")
	}
	c.Flush()
	if _, ok := c.Get("a"); ok {
		t.Fatal("Get after flushed Remove still live")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveChainNetsToOneDiff(t *testing.T) {
	c := New[int](core.NewBruteForce(2), Options{MaxBatch: 1 << 20})
	defer c.Close()
	c.Set(1, geom.Pt2(1, 1))
	c.Flush()
	// Five moves in one window must cost the index one delete + one
	// insert and leave no stale position behind.
	for i := int64(2); i <= 6; i++ {
		c.Set(1, geom.Pt2(i, i))
	}
	if applied := c.Flush(); applied != 2 {
		t.Fatalf("flush applied %d index mutations, want 2 (one del + one ins)", applied)
	}
	st := c.Stats()
	if st.Moved != 1 || st.Cancelled != 4 {
		t.Fatalf("stats after netted chain: %+v, want Moved=1 Cancelled=4", st)
	}
	if got := c.WithinIDs(geom.BoxOf(geom.Pt2(6, 6), geom.Pt2(6, 6))); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("final position lookup = %v", got)
	}
	for i := int64(1); i <= 5; i++ {
		if got := c.WithinIDs(geom.BoxOf(geom.Pt2(i, i), geom.Pt2(i, i))); len(got) != 0 {
			t.Fatalf("stale position (%d,%d) still indexed: %v", i, i, got)
		}
	}
	// Set then Remove of a fresh ID in one window nets to nothing.
	c.Set(2, geom.Pt2(9, 9))
	c.Remove(2)
	if applied := c.Flush(); applied != 0 {
		t.Fatalf("set+remove window applied %d mutations, want 0", applied)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedPointResolvesDistinctIDs(t *testing.T) {
	c := New[string](newSPaCH(), Options{})
	defer c.Close()
	p := geom.Pt2(100, 100)
	c.Set("a", p)
	c.Set("b", p)
	c.Flush()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	got := c.NearbyIDs(p, 2)
	if len(got) != 2 {
		t.Fatalf("NearbyIDs returned %d entries, want 2", len(got))
	}
	if got[0].ID == got[1].ID {
		t.Fatalf("duplicate hit resolved to the same ID twice: %v", got)
	}
	within := c.WithinIDs(geom.BoxOf(p, p))
	if len(within) != 2 || within[0].ID == within[1].ID {
		t.Fatalf("WithinIDs on shared point = %v", within)
	}
}

// verifyAgainstOracle checks the full Collection read suite against a
// plain map: Get and Len exactly, WithinIDs as (ID, point) sets, and
// NearbyIDs as a squared-distance sequence (ties arbitrary, as for KNN).
func verifyAgainstOracle(t *testing.T, c *Collection[int], oracle map[int]geom.Point, nIDs int) {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != len(oracle) {
		t.Fatalf("Len = %d, oracle has %d", got, len(oracle))
	}
	for id := 0; id < nIDs; id++ {
		gotP, gotOK := c.Get(id)
		wantP, wantOK := oracle[id]
		if gotOK != wantOK || (gotOK && gotP != wantP) {
			t.Fatalf("Get(%d) = (%v, %t), oracle (%v, %t)", id, gotP, gotOK, wantP, wantOK)
		}
	}
	got := c.WithinIDs(universe())
	if len(got) != len(oracle) {
		t.Fatalf("WithinIDs(universe) returned %d, oracle has %d", len(got), len(oracle))
	}
	for _, e := range got {
		if oracle[e.ID] != e.Point {
			t.Fatalf("WithinIDs entry %v, oracle has %v", e, oracle[e.ID])
		}
	}
	// NearbyIDs: compare the distance sequence against brute force over
	// the oracle, and require each entry to be a live (ID, point) pair.
	for _, q := range []geom.Point{geom.Pt2(0, 0), geom.Pt2(side/2, side/2), geom.Pt2(side, 1)} {
		for _, k := range []int{1, 3, 17} {
			nn := c.NearbyIDs(q, k)
			dists := make([]int64, 0, len(oracle))
			for _, p := range oracle {
				dists = append(dists, geom.Dist2(p, q, 2))
			}
			sort.Slice(dists, func(i, j int) bool { return dists[i] < dists[j] })
			wantLen := k
			if len(dists) < k {
				wantLen = len(dists)
			}
			if len(nn) != wantLen {
				t.Fatalf("NearbyIDs(%v, %d) returned %d entries, want %d", q, k, len(nn), wantLen)
			}
			for i, e := range nn {
				if oracle[e.ID] != e.Point {
					t.Fatalf("NearbyIDs entry %v is not the oracle position %v", e, oracle[e.ID])
				}
				if got, want := geom.Dist2(e.Point, q, 2), dists[i]; got != want {
					t.Fatalf("NearbyIDs(%v, %d) neighbor %d dist2 %d, oracle %d", q, k, i, got, want)
				}
			}
		}
	}
}

// TestOracleAgreementAcrossStacks drives the same random Set/Remove tape
// through a Collection over every documented inner stack and a map
// oracle, flushing at random points, and verifies the full read suite
// after every flush. This is the sequential-differential core the fuzz
// target generalizes.
func TestOracleAgreementAcrossStacks(t *testing.T) {
	const nIDs = 64
	for name, mk := range innerStacks() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			c := New[int](mk(), Options{MaxBatch: 1 << 20})
			defer c.Close()
			oracle := make(map[int]geom.Point)
			for i := 0; i < 400; i++ {
				id := rng.Intn(nIDs)
				if rng.Intn(5) == 0 {
					c.Remove(id)
					delete(oracle, id)
				} else {
					// A small coordinate domain makes shared points and
					// same-position Sets routine.
					p := geom.Pt2(int64(rng.Intn(64))*(side/64), int64(rng.Intn(64))*(side/64))
					c.Set(id, p)
					oracle[id] = p
				}
				if rng.Intn(25) == 0 {
					c.Flush()
					verifyAgainstOracle(t, c, oracle, nIDs)
				}
			}
			c.Flush()
			verifyAgainstOracle(t, c, oracle, nIDs)
		})
	}
}

// TestConcurrentMoveChainsLastWriteWins is the identity extension of the
// Store netting test (satellite: run under -race): many goroutines issue
// interleaved Set chains on a *shared* ID space across flush windows
// (tiny MaxBatch, a background flusher, and explicit Flush calls all
// racing). Afterwards every written ID must hold some goroutine's last
// write for it — enqueue order is consistent with each goroutine's
// program order, so no intermediate position may survive — and the
// index/fwd/rev triple must validate with no stale points.
func TestConcurrentMoveChainsLastWriteWins(t *testing.T) {
	const (
		goroutines = 8
		opsPerG    = 600
		nIDs       = 32
	)
	c := New[int](newSPaCH(), Options{MaxBatch: 64, FlushInterval: 200 * time.Microsecond})
	lastWrite := make([]map[int]geom.Point, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			last := make(map[int]geom.Point, nIDs)
			for i := 0; i < opsPerG; i++ {
				id := rng.Intn(nIDs)
				// Tag the point with (goroutine, op) so every write is
				// globally unique and stale survivors are attributable.
				p := geom.Pt2(int64(g*opsPerG+i), int64(id))
				c.Set(id, p)
				last[id] = p
				if i%97 == 0 {
					c.Flush()
				}
			}
			lastWrite[g] = last
		}(g)
	}
	wg.Wait()
	c.Close()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < nIDs; id++ {
		candidates := make(map[geom.Point]bool)
		for g := 0; g < goroutines; g++ {
			if p, ok := lastWrite[g][id]; ok {
				candidates[p] = true
			}
		}
		got, ok := c.Get(id)
		if len(candidates) == 0 {
			if ok {
				t.Fatalf("never-written ID %d is live at %v", id, got)
			}
			continue
		}
		if !ok {
			t.Fatalf("written ID %d is not live", id)
		}
		if !candidates[got] {
			t.Fatalf("ID %d rests at %v, which is no goroutine's last write (an intermediate position survived)", id, got)
		}
		// The committed position must be indexed exactly once.
		if hits := c.WithinIDs(geom.BoxOf(got, got)); len(hits) != 1 || hits[0].ID != id {
			t.Fatalf("ID %d at %v resolves to %v", id, got, hits)
		}
	}
	if got := c.Len(); got > nIDs {
		t.Fatalf("Len = %d, at most %d ids were ever written", got, nIDs)
	}
}

// TestConcurrentDisjointWritersExact runs writers over disjoint ID
// ranges (so the final state is fully deterministic) with query
// goroutines hammering the read suite throughout, then checks the exact
// final state. Also exercised by CI under -race.
func TestConcurrentDisjointWritersExact(t *testing.T) {
	const (
		writers  = 4
		queriers = 3
		idsPerW  = 200
		movesPer = 5 * idsPerW
	)
	c := New[int](newSPaCH(), Options{MaxBatch: 128})
	final := make([]map[int]geom.Point, writers)
	var wgW, wgQ sync.WaitGroup
	stop := make(chan struct{})
	for q := 0; q < queriers; q++ {
		wgQ.Add(1)
		go func(q int) {
			defer wgQ.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (q + i) % 3 {
				case 0:
					c.NearbyIDs(geom.Pt2(int64(i%int(side)), 500), 5)
				case 1:
					c.WithinIDs(geom.BoxOf(geom.Pt2(0, 0), geom.Pt2(side/4, side/4)))
				case 2:
					c.Get(i % (writers * idsPerW))
				}
			}
		}(q)
	}
	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			last := make(map[int]geom.Point, idsPerW)
			for i := 0; i < movesPer; i++ {
				id := w*idsPerW + rng.Intn(idsPerW)
				if rng.Intn(10) == 0 {
					c.Remove(id)
					delete(last, id)
					continue
				}
				p := geom.Pt2(rng.Int63n(side), rng.Int63n(side))
				c.Set(id, p)
				last[id] = p
			}
			final[w] = last
		}(w)
	}
	wgW.Wait()
	close(stop)
	wgQ.Wait()
	c.Close()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for w := 0; w < writers; w++ {
		want += len(final[w])
		for id, p := range final[w] {
			if got, ok := c.Get(id); !ok || got != p {
				t.Fatalf("ID %d = (%v, %t), writer %d last wrote %v", id, got, ok, w, p)
			}
		}
	}
	if got := c.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
}

// TestCollectionOverStoreOverSharded pins the deep-stack composition the
// README recommends against: the Collection's flush must propagate
// through the Store's own coalescing log synchronously, so the reverse
// multimap never runs ahead of what geometric queries can see.
func TestCollectionOverStoreOverSharded(t *testing.T) {
	inner := shard.New(shard.Options{
		Dims:     2,
		Universe: universe(),
		Shards:   4,
		Strategy: shard.HilbertRange,
		New: func(dims int, u geom.Box) core.Index {
			return spactree.NewSPaC(sfc.Hilbert, dims, u)
		},
	})
	c := New[string](store.New(inner, store.Options{MaxBatch: 1 << 20}), Options{MaxBatch: 1 << 20})
	defer c.Close()
	rng := rand.New(rand.NewSource(23))
	oracle := make(map[string]geom.Point)
	for i := 0; i < 300; i++ {
		id := fmt.Sprintf("veh-%03d", rng.Intn(80))
		p := geom.Pt2(rng.Int63n(side), rng.Int63n(side))
		c.Set(id, p)
		oracle[id] = p
		if i%50 == 49 {
			c.Flush()
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := c.Len(); got != len(oracle) {
				t.Fatalf("after flush %d: Len = %d, oracle %d", i, got, len(oracle))
			}
		}
	}
	c.Flush()
	for id, p := range oracle {
		hits := c.WithinIDs(geom.BoxOf(p, p))
		found := false
		for _, e := range hits {
			if e.ID == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("object %s at %v not resolvable through the stack: %v", id, p, hits)
		}
	}
}

func TestLenFlushesAndStats(t *testing.T) {
	c := New[int](core.NewBruteForce(2), Options{MaxBatch: 1 << 20})
	defer c.Close()
	for i := 0; i < 10; i++ {
		c.Set(i, geom.Pt2(int64(i), int64(i)))
	}
	if c.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", c.Pending())
	}
	if got := c.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10 (Len must flush first)", got)
	}
	st := c.Stats()
	if st.Flushes != 1 || st.Inserted != 10 || st.Pending != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if c.Name() != "Collection(BruteForce)" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.Dims() != 2 {
		t.Fatalf("Dims = %d", c.Dims())
	}
}

func TestMaxBatchTriggersFlush(t *testing.T) {
	c := New[int](core.NewBruteForce(2), Options{MaxBatch: 8})
	defer c.Close()
	for i := 0; i < 8; i++ {
		c.Set(i, geom.Pt2(int64(i), 0))
	}
	if st := c.Stats(); st.Flushes != 1 || st.Inserted != 8 || st.Pending != 0 {
		t.Fatalf("after filling one batch: %+v", st)
	}
}

func TestBackgroundFlusher(t *testing.T) {
	c := New[int](core.NewBruteForce(2), Options{MaxBatch: 1 << 20, FlushInterval: time.Millisecond})
	defer c.Close()
	p := geom.Pt2(3, 4)
	c.Set(7, p)
	deadline := time.Now().Add(5 * time.Second)
	for len(c.WithinIDs(geom.BoxOf(p, p))) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never applied the pending Set")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSetFlushZeroAllocWarm is the allocation-regression guard for the
// scratch-reuse tentpole: warm Set→Flush cycles run with zero
// steady-state allocations in the Collection layer — the op tape
// double-buffers, the last-write-wins map and diff buffers are recycled,
// and the reverse multimap draws its per-point ID slices from a
// freelist. Same-position windows must be exactly zero; real moves are
// allowed a sub-one amortized residual, which is Go map bucket churn
// from cycling the reverse multimap's point keys (buckets are
// occasionally regrown by the runtime; there is no per-move allocation).
func TestSetFlushZeroAllocWarm(t *testing.T) {
	const n = 512
	posA := make([]geom.Point, n)
	posB := make([]geom.Point, n)
	for i := range posA {
		posA[i] = geom.Pt2(int64(i)*17, int64(i)*29)
		posB[i] = geom.Pt2(int64(i)*17+5, int64(i)*29+3)
	}
	t.Run("same-position windows", func(t *testing.T) {
		c := New[int](core.NewNull(2), Options{MaxBatch: 1 << 20, Obs: obs.New()})
		for i, p := range posA {
			c.Set(i, p)
		}
		c.Flush()
		window := func() {
			for i, p := range posA {
				c.Set(i, p)
			}
			c.Flush()
		}
		window()
		if allocs := testing.AllocsPerRun(50, window); allocs != 0 {
			t.Fatalf("warm same-position window allocates %.2f/op, want 0", allocs)
		}
	})
	t.Run("move windows", func(t *testing.T) {
		c := New[int](core.NewNull(2), Options{MaxBatch: 1 << 20, Obs: obs.New()})
		for i, p := range posA {
			c.Set(i, p)
		}
		c.Flush()
		cur, next := posA, posB
		window := func() {
			for i, p := range next {
				c.Set(i, p)
			}
			c.Flush()
			cur, next = next, cur
		}
		window()
		if allocs := testing.AllocsPerRun(50, window); allocs >= 1 {
			t.Fatalf("warm move window allocates %.2f/op, want amortized < 1", allocs)
		}
	})
}
