//go:build !race

package collection

const raceEnabled = false
