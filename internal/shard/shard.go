package shard

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/parallel"
)

// DefaultCellsPerShard is the partition granularity used when
// Options.CellsPerShard is unset: enough cells per shard that equi-depth
// rebalancing has room to move boundaries, few enough that the cell
// tables stay trivial.
const DefaultCellsPerShard = 16

// MaxShards bounds Options.Shards (cell ids are staged in uint16 tables
// and every shard carries a full index; thousands of shards is already
// far past the useful range).
const MaxShards = 4096

// Options configures a Sharded index. Zero fields take defaults; Dims,
// Universe and New are required.
type Options struct {
	// Dims is the dimensionality, 2 or 3.
	Dims int
	// Universe is the root region being partitioned. It must cover all
	// points, the library-wide precondition for space-partitioning
	// indexes.
	Universe geom.Box
	// Shards is the number of regions S. <= 0 selects GOMAXPROCS, one
	// shard per core.
	Shards int
	// Strategy selects the region shape: Grid slabs or Morton/Hilbert
	// SFC ranges (HilbertRange gives the most compact regions).
	Strategy Strategy
	// CellsPerShard is the partition granularity: the grid carries
	// ~max(S * CellsPerShard, 16384) cells (capped at 65536), so
	// rebalancing can split clustered data well below shard granularity.
	// <= 0 selects DefaultCellsPerShard.
	CellsPerShard int
	// Static disables the Build-time equi-depth rebalancing of region
	// boundaries. With Static set, regions carry equal cell counts no
	// matter how skewed the data — the configuration in which clustered
	// distributions pile points into few shards.
	Static bool
	// New constructs one shard's index. It is called once per shard with
	// the full universe (shard indexes may receive any in-universe point
	// after a rebalance, and space-partitioning children need the
	// universe fixed for history independence).
	New func(dims int, universe geom.Box) core.Index
	// DisableScratch turns off the batch-partitioner and query scratch
	// pools, so every BatchDiff and query allocates fresh buffers. It
	// exists so -exp alloc can measure the before/after of scratch reuse;
	// production configurations leave it false.
	DisableScratch bool
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.CellsPerShard <= 0 {
		o.CellsPerShard = DefaultCellsPerShard
	}
	return o
}

// validate panics on programmer error, matching core.Options.Validate.
func (o Options) validate() {
	if o.Dims != 2 && o.Dims != 3 {
		panic(fmt.Sprintf("shard: unsupported Dims %d", o.Dims))
	}
	if o.Universe.IsEmpty() {
		panic("shard: Universe must be non-empty")
	}
	if o.Shards > MaxShards {
		panic(fmt.Sprintf("shard: Shards %d exceeds MaxShards %d", o.Shards, MaxShards))
	}
	if o.New == nil {
		panic("shard: New (shard index constructor) is required")
	}
}

// Sharded partitions the universe into S regions, each owning an
// independent core.Index behind its own lock. It implements core.Index,
// and — unlike the raw indexes — is safe for fully concurrent use: batch
// updates lock only the shards they touch, so mutations of different
// regions never contend, and queries take per-shard read locks.
//
// Consistency is per shard: a query running concurrently with a batch
// update observes each shard either before or after its sub-batch, never
// mid-application, but may see a cross-shard batch partially applied.
// Callers that need whole-batch atomicity across shards wrap the Sharded
// in a store.Store, whose global read/write lock restores it (see the
// "Scaling out" section of the README for the composition guidance).
type Sharded struct {
	opts Options

	// epoch serializes partition swaps against everything else: Build
	// (which may rebalance region boundaries) takes the write side; all
	// other operations read-lock it and then synchronize per shard.
	epoch  sync.RWMutex
	part   *partition
	shards []shardSlot

	// diffPool and queryPool recycle the batch-partitioning and query
	// fan-out scratch across operations (concurrent callers each borrow
	// their own), so steady-state flushes and queries reuse their buffers.
	diffPool  sync.Pool
	queryPool sync.Pool
}

// shardSlot is one region's index and its lock.
type shardSlot struct {
	mu  sync.RWMutex
	idx core.Index
}

var _ core.Index = (*Sharded)(nil)

// New returns an empty Sharded index.
func New(opts Options) *Sharded {
	opts = opts.withDefaults()
	opts.validate()
	s := &Sharded{
		opts:   opts,
		part:   newPartition(opts.Dims, opts.Universe, opts.Shards, opts.Strategy, opts.CellsPerShard),
		shards: make([]shardSlot, opts.Shards),
	}
	s.diffPool.New = func() any { return new(diffScratch) }
	s.queryPool.New = func() any { return new(queryScratch) }
	for i := range s.shards {
		s.shards[i].idx = opts.New(opts.Dims, opts.Universe)
	}
	return s
}

// Name implements core.Index.
func (s *Sharded) Name() string {
	return fmt.Sprintf("Sharded[%d%s](%s)", s.opts.Shards, s.opts.Strategy, s.shards[0].idx.Name())
}

// Dims implements core.Index.
func (s *Sharded) Dims() int { return s.opts.Dims }

// Shards returns the shard count S.
func (s *Sharded) Shards() int { return s.opts.Shards }

// Size implements core.Index.
func (s *Sharded) Size() int {
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		total += sh.idx.Size()
		sh.mu.RUnlock()
	}
	return total
}

// ShardSizes appends each shard's point count to dst (load-balance
// introspection for the benchmarks and tests).
func (s *Sharded) ShardSizes(dst []int) []int {
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		dst = append(dst, sh.idx.Size())
		sh.mu.RUnlock()
	}
	return dst
}

// Build implements core.Index: it replaces the contents with pts. Unless
// Options.Static is set, Build first rebalances the region boundaries so
// every shard receives ~len(pts)/S points (equi-depth over the cell
// histogram), then builds all shard indexes in parallel. Build excludes
// every concurrent operation for the duration of the boundary swap.
func (s *Sharded) Build(pts []geom.Point) {
	s.epoch.Lock()
	defer s.epoch.Unlock()
	if !s.opts.Static {
		s.part = s.part.rebalanced(s.cellHistogram(pts))
	}
	part := s.part
	scratch := make([]geom.Point, len(pts))
	offsets := parallel.Sieve(pts, scratch, part.shards, part.shardOf)
	parallel.ForEach(part.shards, 1, func(i int) {
		s.shards[i].idx.Build(scratch[offsets[i]:offsets[i+1]])
	})
}

// cellHistogram counts pts per grid cell (row-major ids) in parallel.
// The block grain is chosen so the per-block count arrays (one int per
// cell) stay bounded no matter how large the build is.
func (s *Sharded) cellHistogram(pts []geom.Point) []int {
	part := s.part
	cells := len(part.cellShard)
	grain := parallel.DefaultGrain
	if g := (len(pts) + 63) / 64; g > grain {
		grain = g
	}
	nb := parallel.NumBlocks(len(pts), grain)
	if nb <= 1 {
		counts := make([]int, cells)
		for _, p := range pts {
			counts[part.cellOf(p)]++
		}
		return counts
	}
	partial := make([][]int, nb)
	parallel.Blocks(len(pts), grain, func(lo, hi int) {
		counts := make([]int, cells)
		for _, p := range pts[lo:hi] {
			counts[part.cellOf(p)]++
		}
		partial[lo/grain] = counts
	})
	counts := make([]int, cells)
	for _, row := range partial {
		for c, v := range row {
			counts[c] += v
		}
	}
	return counts
}

// BatchInsert implements core.Index: the batch is partitioned by shard in
// parallel and all per-shard sub-batches apply concurrently.
func (s *Sharded) BatchInsert(pts []geom.Point) { s.BatchDiff(pts, nil) }

// BatchDelete implements core.Index.
func (s *Sharded) BatchDelete(pts []geom.Point) { s.BatchDiff(nil, pts) }

// diffScratch is one BatchDiff's partitioning state: the reordered point
// buffers plus the sieve scratch for each side. Scratches are pooled per
// Sharded so a steady stream of flush-sized diffs allocates nothing; the
// per-shard sub-batches handed to the children are sub-slices of these
// buffers, which is legal because core.Index implementations must not
// retain batch slices after the call returns (see the Index contract).
type diffScratch struct {
	ins, del []geom.Point
	insSieve parallel.SieveScratch
	delSieve parallel.SieveScratch
}

func grown(buf []geom.Point, n int) []geom.Point {
	if cap(buf) < n {
		return make([]geom.Point, n)
	}
	return buf[:n]
}

// BatchDiff implements core.Index. A point's deletes and inserts land on
// the same shard (assignment is by location), so applying every shard's
// sub-diff independently preserves the BatchDiff contract exactly, and
// sub-diffs for different shards run with no contention at all.
func (s *Sharded) BatchDiff(ins, del []geom.Point) {
	if len(ins) == 0 && len(del) == 0 {
		return
	}
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	part := s.part
	sc := s.getDiffScratch()
	sc.ins = grown(sc.ins, len(ins))
	sc.del = grown(sc.del, len(del))
	var insOff, delOff []int
	parallel.DoIf(len(ins) >= 512 && len(del) >= 512,
		func() { insOff = parallel.SieveWith(&sc.insSieve, ins, sc.ins, part.shards, part.shardOf) },
		func() { delOff = parallel.SieveWith(&sc.delSieve, del, sc.del, part.shards, part.shardOf) },
	)
	parallel.ForEach(part.shards, 1, func(i int) {
		subIns := sc.ins[insOff[i]:insOff[i+1]]
		subDel := sc.del[delOff[i]:delOff[i+1]]
		if len(subIns) == 0 && len(subDel) == 0 {
			return
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.idx.BatchDiff(subIns, subDel)
		sh.mu.Unlock()
	})
	s.putDiffScratch(sc)
}

// getDiffScratch hands out a pooled scratch (BatchDiff may run from many
// goroutines at once, so the scratch cannot live unguarded on the struct).
func (s *Sharded) getDiffScratch() *diffScratch {
	if s.opts.DisableScratch {
		return new(diffScratch)
	}
	return s.diffPool.Get().(*diffScratch)
}

func (s *Sharded) putDiffScratch(sc *diffScratch) {
	if !s.opts.DisableScratch {
		s.diffPool.Put(sc)
	}
}
