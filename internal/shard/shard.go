package shard

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// DefaultCellsPerShard is the partition granularity used when
// Options.CellsPerShard is unset: enough cells per shard that equi-depth
// rebalancing has room to move boundaries, few enough that the cell
// tables stay trivial.
const DefaultCellsPerShard = 16

// MaxShards bounds Options.Shards (cell ids are staged in uint16 tables
// and every shard carries a full index; thousands of shards is already
// far past the useful range).
const MaxShards = 4096

// Options configures a Sharded index. Zero fields take defaults; Dims,
// Universe and New are required.
type Options struct {
	// Dims is the dimensionality, 2 or 3.
	Dims int
	// Universe is the root region being partitioned. It must cover all
	// points, the library-wide precondition for space-partitioning
	// indexes.
	Universe geom.Box
	// Shards is the number of regions S. <= 0 selects GOMAXPROCS, one
	// shard per core.
	Shards int
	// Strategy selects the region shape: Grid slabs or Morton/Hilbert
	// SFC ranges (HilbertRange gives the most compact regions).
	Strategy Strategy
	// CellsPerShard is the partition granularity: the grid carries
	// ~max(S * CellsPerShard, 16384) cells (capped at 65536), so
	// rebalancing can split clustered data well below shard granularity.
	// <= 0 selects DefaultCellsPerShard.
	CellsPerShard int
	// Static disables the Build-time equi-depth rebalancing of region
	// boundaries. With Static set, regions carry equal cell counts no
	// matter how skewed the data — the configuration in which clustered
	// distributions pile points into few shards.
	Static bool
	// New constructs one shard's index. It is called once per shard with
	// the full universe (shard indexes may receive any in-universe point
	// after a rebalance, and space-partitioning children need the
	// universe fixed for history independence).
	New func(dims int, universe geom.Box) core.Index
	// DisableScratch turns off the batch-partitioner and query scratch
	// pools, so every BatchDiff and query allocates fresh buffers. It
	// exists so -exp alloc can measure the before/after of scratch reuse;
	// production configurations leave it false.
	DisableScratch bool
	// Snapshot switches every shard to epoch-pinned snapshot reads: each
	// shard keeps two copies of its index (built with New), applies every
	// sub-batch to both — the off-line one first — and publishes through
	// an atomic per-shard epoch pointer; queries pin the published
	// version per shard instead of taking the shard read lock, so a
	// reader never waits behind a sub-batch. Consistency remains per
	// shard, exactly as in locked mode: each shard's snapshot is a
	// committed prefix of that shard's sub-batches. Memory for the shard
	// indexes doubles. Off by default — a Sharded serving under a
	// snapshot-mode Collection/Store is already read off a published
	// version, so shard-level snapshots are for standalone Sharded use.
	Snapshot bool
	// Obs, when set, registers per-shard load metrics (batch ops applied,
	// queries touched, KNN expansions, published epoch — all labeled
	// shard="i"), the query fan-out histogram, and records a
	// flush-pipeline span per batch into the registry's trace ring.
	// Replicas made by NewReplica share the originals' series (physical
	// applies on either twin count once); recording is atomics only, so
	// the zero-alloc batch and query guarantees hold. Leave nil to pay
	// nothing. Register at most one Sharded (plus its replicas) per
	// registry.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.CellsPerShard <= 0 {
		o.CellsPerShard = DefaultCellsPerShard
	}
	return o
}

// validate panics on programmer error, matching core.Options.Validate.
func (o Options) validate() {
	if o.Dims != 2 && o.Dims != 3 {
		panic(fmt.Sprintf("shard: unsupported Dims %d", o.Dims))
	}
	if o.Universe.IsEmpty() {
		panic("shard: Universe must be non-empty")
	}
	if o.Shards > MaxShards {
		panic(fmt.Sprintf("shard: Shards %d exceeds MaxShards %d", o.Shards, MaxShards))
	}
	if o.New == nil {
		panic("shard: New (shard index constructor) is required")
	}
}

// Sharded partitions the universe into S regions, each owning an
// independent core.Index behind its own lock. It implements core.Index,
// and — unlike the raw indexes — is safe for fully concurrent use: batch
// updates lock only the shards they touch, so mutations of different
// regions never contend, and queries take per-shard read locks.
//
// Consistency is per shard: a query running concurrently with a batch
// update observes each shard either before or after its sub-batch, never
// mid-application, but may see a cross-shard batch partially applied.
// Callers that need whole-batch atomicity across shards wrap the Sharded
// in a store.Store, whose global read/write lock restores it (see the
// "Scaling out" section of the README for the composition guidance).
// With Options.Snapshot set, queries pin per-shard published epochs
// instead of taking the shard read locks — same per-shard consistency,
// but readers never wait behind a sub-batch (ARCHITECTURE.md "Epochs &
// snapshot reads").
type Sharded struct {
	opts Options

	// epoch serializes partition swaps against everything else: Build
	// (which may rebalance region boundaries) takes the write side; all
	// other operations read-lock it and then synchronize per shard.
	epoch  sync.RWMutex
	part   *partition
	shards []shardSlot

	// diffPool and queryPool recycle the batch-partitioning and query
	// fan-out scratch across operations (concurrent callers each borrow
	// their own), so steady-state flushes and queries reuse their buffers.
	diffPool  sync.Pool
	queryPool sync.Pool

	// met is the observability hook set, nil unless Options.Obs was
	// given. Replicas share their original's met (NewReplica), so one
	// logical index registers its per-shard series exactly once.
	met *shardMetrics
}

// shardSlot is one region's index and its lock. In locked mode idx holds
// the single copy: writers take mu exclusively, readers share it. In
// snapshot mode idx is nil and the copy pair lives in mgr/standby — mu
// then only serializes writers (sub-batch appliers), readers pin the
// published version instead. savedIns/savedDel (guarded by mu) hold the
// shard's previously committed sub-batch, replayed on the standby as
// catch-up before the next sub-batch applies.
type shardSlot struct {
	mu  sync.RWMutex
	idx core.Index

	mgr                epoch.Manager[core.Index]
	standby            *epoch.Version[core.Index]
	savedIns, savedDel []geom.Point
}

var _ core.Index = (*Sharded)(nil)
var _ core.Replicator = (*Sharded)(nil)

// New returns an empty Sharded index.
func New(opts Options) *Sharded {
	opts = opts.withDefaults()
	opts.validate()
	s := newSharded(opts)
	if opts.Obs != nil {
		s.met = newShardMetrics(opts.Obs, s)
	}
	return s
}

// newSharded builds the index without touching the registry — replicas
// go through here so their series register exactly once, on the
// original. opts must already carry defaults and have been validated.
func newSharded(opts Options) *Sharded {
	s := &Sharded{
		opts:   opts,
		part:   newPartition(opts.Dims, opts.Universe, opts.Shards, opts.Strategy, opts.CellsPerShard),
		shards: make([]shardSlot, opts.Shards),
	}
	s.diffPool.New = func() any { return new(diffScratch) }
	s.queryPool.New = func() any { return new(queryScratch) }
	for i := range s.shards {
		sh := &s.shards[i]
		if opts.Snapshot {
			sh.mgr.Init(epoch.NewVersion(opts.New(opts.Dims, opts.Universe)))
			sh.standby = epoch.NewVersion(opts.New(opts.Dims, opts.Universe))
		} else {
			sh.idx = opts.New(opts.Dims, opts.Universe)
		}
	}
	return s
}

// NewReplica implements core.Replicator: a Sharded can always construct
// a fresh, empty, identically configured twin of itself, so wrapping one
// in a snapshot-mode Store/Collection/Server needs no explicit factory.
// The replica shares the original's metric series rather than
// re-registering them: per-shard op counts then aggregate physical
// applies across both twins, and query counts stay exact because only
// the published twin is queried.
func (s *Sharded) NewReplica() core.Index {
	r := newSharded(s.opts)
	r.met = s.met
	return r
}

// child returns shard i's index for metadata reads (Name): the published
// version in snapshot mode, the single copy otherwise.
func (s *Sharded) child(i int) core.Index {
	if s.opts.Snapshot {
		return s.shards[i].mgr.Current().Data
	}
	return s.shards[i].idx
}

// Name implements core.Index.
func (s *Sharded) Name() string {
	return fmt.Sprintf("Sharded[%d%s](%s)", s.opts.Shards, s.opts.Strategy, s.child(0).Name())
}

// Dims implements core.Index.
func (s *Sharded) Dims() int { return s.opts.Dims }

// Shards returns the shard count S.
func (s *Sharded) Shards() int { return s.opts.Shards }

// shardSize reads one shard's point count: from the pinned published
// version in snapshot mode (never waits behind a sub-batch), under the
// shard read lock otherwise.
func (s *Sharded) shardSize(i int) int {
	sh := &s.shards[i]
	if s.opts.Snapshot {
		v := sh.mgr.Pin()
		defer sh.mgr.Unpin(v)
		return v.Data.Size()
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.idx.Size()
}

// Size implements core.Index.
func (s *Sharded) Size() int {
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	total := 0
	for i := range s.shards {
		total += s.shardSize(i)
	}
	return total
}

// ShardSizes appends each shard's point count to dst (load-balance
// introspection for the benchmarks and tests).
func (s *Sharded) ShardSizes(dst []int) []int {
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	for i := range s.shards {
		dst = append(dst, s.shardSize(i))
	}
	return dst
}

// Stats aggregates the per-shard epoch state. In locked mode Epoch and
// RetireLag are 0 and Versions is 1; in snapshot mode Epoch is the
// highest per-shard published epoch (shards advance independently —
// a shard whose sub-batches were all empty stays behind) and RetireLag
// sums the per-shard lags.
type Stats struct {
	Shards    int    // shard count S
	Size      int    // total stored points (published view)
	Epoch     uint64 // highest per-shard published epoch (0 in locked mode)
	Versions  int    // live index versions per shard: 2 in snapshot mode, 1 locked
	RetireLag uint64 // summed per-shard undrained publishes
}

// Stats samples the epoch counters without blocking behind in-flight
// sub-batches (snapshot mode reads published versions only).
func (s *Sharded) Stats() Stats {
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	st := Stats{Shards: s.opts.Shards, Versions: 1}
	for i := range s.shards {
		st.Size += s.shardSize(i)
		if s.opts.Snapshot {
			sh := &s.shards[i]
			if e := sh.mgr.Epoch(); e > st.Epoch {
				st.Epoch = e
			}
			st.RetireLag += sh.mgr.RetireLag()
		}
	}
	if s.opts.Snapshot {
		st.Versions = 2
	}
	return st
}

// Build implements core.Index: it replaces the contents with pts. Unless
// Options.Static is set, Build first rebalances the region boundaries so
// every shard receives ~len(pts)/S points (equi-depth over the cell
// histogram), then builds all shard indexes in parallel. Build excludes
// every concurrent operation for the duration of the boundary swap.
func (s *Sharded) Build(pts []geom.Point) {
	s.epoch.Lock()
	defer s.epoch.Unlock()
	if !s.opts.Static {
		s.part = s.part.rebalanced(s.cellHistogram(pts))
	}
	part := s.part
	scratch := make([]geom.Point, len(pts))
	offsets := parallel.Sieve(pts, scratch, part.shards, part.shardOf)
	parallel.ForEach(part.shards, 1, func(i int) {
		sub := scratch[offsets[i]:offsets[i+1]]
		sh := &s.shards[i]
		if s.opts.Snapshot {
			// Rebuild both twins and clear the saved sub-batch: the new
			// epoch starts from identical contents on both sides.
			// Concurrent readers are excluded by the partition-swap lock,
			// so the drain is immediate.
			sh.standby.Data.Build(sub)
			prev := sh.mgr.Publish(sh.standby)
			sh.mgr.WaitDrained(prev)
			prev.Data.Build(sub)
			sh.standby = prev
			sh.savedIns = sh.savedIns[:0]
			sh.savedDel = sh.savedDel[:0]
			return
		}
		sh.idx.Build(sub)
	})
}

// cellHistogram counts pts per grid cell (row-major ids) in parallel.
// The block grain is chosen so the per-block count arrays (one int per
// cell) stay bounded no matter how large the build is.
func (s *Sharded) cellHistogram(pts []geom.Point) []int {
	part := s.part
	cells := len(part.cellShard)
	grain := parallel.DefaultGrain
	if g := (len(pts) + 63) / 64; g > grain {
		grain = g
	}
	nb := parallel.NumBlocks(len(pts), grain)
	if nb <= 1 {
		counts := make([]int, cells)
		for _, p := range pts {
			counts[part.cellOf(p)]++
		}
		return counts
	}
	partial := make([][]int, nb)
	parallel.Blocks(len(pts), grain, func(lo, hi int) {
		counts := make([]int, cells)
		for _, p := range pts[lo:hi] {
			counts[part.cellOf(p)]++
		}
		partial[lo/grain] = counts
	})
	counts := make([]int, cells)
	for _, row := range partial {
		for c, v := range row {
			counts[c] += v
		}
	}
	return counts
}

// BatchInsert implements core.Index: the batch is partitioned by shard in
// parallel and all per-shard sub-batches apply concurrently.
func (s *Sharded) BatchInsert(pts []geom.Point) { s.BatchDiff(pts, nil) }

// BatchDelete implements core.Index.
func (s *Sharded) BatchDelete(pts []geom.Point) { s.BatchDiff(nil, pts) }

// diffScratch is one BatchDiff's partitioning state: the reordered point
// buffers plus the sieve scratch for each side. Scratches are pooled per
// Sharded so a steady stream of flush-sized diffs allocates nothing; the
// per-shard sub-batches handed to the children are sub-slices of these
// buffers, which is legal because core.Index implementations must not
// retain batch slices after the call returns (see the Index contract).
type diffScratch struct {
	ins, del []geom.Point
	insSieve parallel.SieveScratch
	delSieve parallel.SieveScratch
}

func grown(buf []geom.Point, n int) []geom.Point {
	if cap(buf) < n {
		return make([]geom.Point, n)
	}
	return buf[:n]
}

// BatchDiff implements core.Index. A point's deletes and inserts land on
// the same shard (assignment is by location), so applying every shard's
// sub-diff independently preserves the BatchDiff contract exactly, and
// sub-diffs for different shards run with no contention at all.
func (s *Sharded) BatchDiff(ins, del []geom.Point) {
	if len(ins) == 0 && len(del) == 0 {
		return
	}
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	part := s.part
	m := s.met
	var span obs.FlushSpan
	var clk time.Time
	if m != nil {
		clk = time.Now()
		// The shard layer nets nothing — its window was already netted a
		// layer up — so raw equals netted; StageNet is the parallel
		// partitioning of the batch into per-shard sub-batches.
		span = obs.FlushSpan{
			Layer:     "shard",
			Start:     clk.UnixNano(),
			RawOps:    len(ins) + len(del),
			NettedOps: len(ins) + len(del),
		}
	}
	sc := s.getDiffScratch()
	sc.ins = grown(sc.ins, len(ins))
	sc.del = grown(sc.del, len(del))
	var insOff, delOff []int
	parallel.DoIf(len(ins) >= 512 && len(del) >= 512,
		func() { insOff = parallel.SieveWith(&sc.insSieve, ins, sc.ins, part.shards, part.shardOf) },
		func() { delOff = parallel.SieveWith(&sc.delSieve, del, sc.del, part.shards, part.shardOf) },
	)
	if m != nil {
		clk = span.Stamp(obs.StageNet, clk)
	}
	parallel.ForEach(part.shards, 1, func(i int) {
		subIns := sc.ins[insOff[i]:insOff[i+1]]
		subDel := sc.del[delOff[i]:delOff[i+1]]
		if len(subIns) == 0 && len(subDel) == 0 {
			// Snapshot mode: an untouched shard publishes nothing — its
			// published version is already current, and its saved
			// sub-batch stays pending for the next catch-up.
			return
		}
		if m != nil {
			m.ops[i].Add(uint64(len(subIns) + len(subDel)))
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		if s.opts.Snapshot {
			// Catch the standby up with the shard's previous sub-batch,
			// apply the new one, and publish. subIns/subDel alias the
			// pooled sieve scratch, so the window is copied into the
			// per-shard saved buffers before the scratch is recycled.
			st := sh.standby.Data
			st.BatchDiff(sh.savedIns, sh.savedDel)
			st.BatchDiff(subIns, subDel)
			sh.savedIns = append(sh.savedIns[:0], subIns...)
			sh.savedDel = append(sh.savedDel[:0], subDel...)
			prev := sh.mgr.Publish(sh.standby)
			sh.mgr.WaitDrained(prev)
			sh.standby = prev
		} else {
			sh.idx.BatchDiff(subIns, subDel)
		}
		sh.mu.Unlock()
	})
	if m != nil {
		span.Stamp(obs.StageApply, clk)
		m.flushes.Add(1)
		m.flushDur.Record(span.Dur())
		m.trace.Record(span)
	}
	s.putDiffScratch(sc)
}

// getDiffScratch hands out a pooled scratch (BatchDiff may run from many
// goroutines at once, so the scratch cannot live unguarded on the struct).
func (s *Sharded) getDiffScratch() *diffScratch {
	if s.opts.DisableScratch {
		return new(diffScratch)
	}
	return s.diffPool.Get().(*diffScratch)
}

func (s *Sharded) putDiffScratch(sc *diffScratch) {
	if !s.opts.DisableScratch {
		s.diffPool.Put(sc)
	}
}
