package shard

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
)

// scrapeSums reads the registry's exposition and sums every series of
// the given per-shard family, also returning how many shard series exist.
func scrapeSums(t *testing.T, reg *obs.Registry, name string) (sum float64, series int) {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range samples {
		if strings.HasPrefix(k, name+`{shard="`) {
			sum += v
			series++
		}
	}
	return sum, series
}

// TestShardMetricsAndCost pins the per-shard load accounting and the
// CostedIndex contract: batch ops count once per shard they land in,
// queries count once per shard they visit, and KNNCost/RangeListCost
// report exactly the shards expanded and candidates scanned.
func TestShardMetricsAndCost(t *testing.T) {
	const n = 64
	reg := obs.New()
	opts := testOptions(2, 4, HilbertRange, brute)
	opts.Obs = reg
	s := New(opts)
	side := opts.Universe.Hi[0]

	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt2(int64(i)*(side/n), int64(i*7%n)*(side/n))
	}
	s.BatchDiff(pts, nil)

	if sum, series := scrapeSums(t, reg, "psi_shard_ops_total"); sum != n || series != 4 {
		t.Fatalf("shard ops sum=%v over %d series, want %d over 4", sum, series, n)
	}

	// k >= n forces the KNN to expand every (non-empty) shard and scan
	// every point, so the cost is exact and checkable.
	var cost obs.QueryCost
	got := s.KNNCost(geom.Pt2(side/2, side/2), n, nil, &cost)
	if len(got) != n {
		t.Fatalf("KNNCost returned %d points, want %d", len(got), n)
	}
	if cost.Shards != 4 || cost.Candidates != n {
		t.Fatalf("KNN cost = %+v, want 4 shards and %d candidates", cost, n)
	}
	// Cost accumulates (callers zero it per query): a universe range list
	// adds all shards and all points on top.
	got = s.RangeListCost(opts.Universe, nil, &cost)
	if len(got) != n {
		t.Fatalf("RangeListCost returned %d points, want %d", len(got), n)
	}
	if cost.Shards != 8 || cost.Candidates != 2*n {
		t.Fatalf("accumulated cost = %+v, want 8 shards and %d candidates", cost, 2*n)
	}

	// Both queries visited every shard: 8 visits total across the
	// per-shard query counters, and the same 2n KNN-candidate scans are
	// not double-counted into ops.
	if sum, _ := scrapeSums(t, reg, "psi_shard_queries_total"); sum != 8 {
		t.Fatalf("shard query visits = %v, want 8", sum)
	}
	if sum, _ := scrapeSums(t, reg, "psi_shard_knn_expansions_total"); sum != 4 {
		t.Fatalf("knn expansions = %v, want 4", sum)
	}

	// The plain (cost-free) query path still records per-shard load.
	s.KNN(geom.Pt2(0, 0), 1, nil)
	if sum, _ := scrapeSums(t, reg, "psi_shard_queries_total"); sum < 9 {
		t.Fatalf("plain KNN did not record query visits (sum=%v)", sum)
	}
}

// TestReplicaSharesMetrics pins the snapshot-twin contract: NewReplica
// shares the original's metric handles instead of re-registering (a
// second registration of the same series panics), and physical applies
// on the replica count into the same per-shard counters.
func TestReplicaSharesMetrics(t *testing.T) {
	reg := obs.New()
	opts := testOptions(2, 4, HilbertRange, brute)
	opts.Obs = reg
	s := New(opts)

	pts := []geom.Point{geom.Pt2(1, 1), geom.Pt2(500, 500)}
	s.BatchDiff(pts, nil)
	r := s.NewReplica().(*Sharded)
	r.BatchDiff(pts, nil) // must not panic on duplicate registration
	if sum, _ := scrapeSums(t, reg, "psi_shard_ops_total"); sum != 4 {
		t.Fatalf("ops after twin applies = %v, want 4 (2 per twin)", sum)
	}
	if r.Size() != len(pts) || s.Size() != len(pts) {
		t.Fatalf("sizes = %d/%d, want %d", s.Size(), r.Size(), len(pts))
	}
}
