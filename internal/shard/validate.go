package shard

import (
	"fmt"

	"repro/internal/geom"
)

// Validate checks the sharding invariants and returns the first
// violation (tests run it after every mutation round):
//
//  1. run boundaries are monotone and cover every cell exactly once;
//  2. every stored point lies inside its shard's region box — the
//     soundness condition for query pruning;
//  3. every stored point maps back to the shard holding it, so future
//     deletes of that point are routed to the right sub-index.
func (s *Sharded) Validate() error {
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	part := s.part
	if part.bounds[0] != 0 || part.bounds[part.shards] != len(part.order) {
		return fmt.Errorf("shard: bounds span [%d, %d), want [0, %d)",
			part.bounds[0], part.bounds[part.shards], len(part.order))
	}
	seen := make([]bool, len(part.order))
	for i := 0; i < part.shards; i++ {
		if part.bounds[i] > part.bounds[i+1] {
			return fmt.Errorf("shard: bounds not monotone at %d: %d > %d",
				i, part.bounds[i], part.bounds[i+1])
		}
		for _, c := range part.order[part.bounds[i]:part.bounds[i+1]] {
			if seen[c] {
				return fmt.Errorf("shard: cell %d assigned twice", c)
			}
			seen[c] = true
			if got := part.cellShard[c]; got != uint16(i) {
				return fmt.Errorf("shard: cell %d table says shard %d, run says %d", c, got, i)
			}
		}
	}
	for c, ok := range seen {
		if !ok {
			return fmt.Errorf("shard: cell %d assigned to no shard", c)
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		var pts []geom.Point
		var size int
		if s.opts.Snapshot {
			v := sh.mgr.Pin()
			pts = v.Data.RangeList(s.opts.Universe, nil)
			size = v.Data.Size()
			sh.mgr.Unpin(v)
		} else {
			sh.mu.RLock()
			pts = sh.idx.RangeList(s.opts.Universe, nil)
			size = sh.idx.Size()
			sh.mu.RUnlock()
		}
		if len(pts) != size {
			return fmt.Errorf("shard %d: %d points in universe, Size() %d (point outside universe?)",
				i, len(pts), size)
		}
		for _, p := range pts {
			if !part.regions[i].Contains(p, part.dims) {
				return fmt.Errorf("shard %d: stored point %v outside region %v",
					i, p, part.regions[i])
			}
			if got := part.shardOf(p); got != i {
				return fmt.Errorf("shard %d: stored point %v routes to shard %d", i, p, got)
			}
		}
	}
	return nil
}
