package shard

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestStoreOverSharded exercises the documented scaling composition: a
// batch-coalescing Store in front of a Sharded index gives fully
// concurrent single-point ingest (Store coalesces the stream) whose
// flushes then fan out across shards in parallel. Many writers stream
// moves while readers query; the final state must match the oracle.
func TestStoreOverSharded(t *testing.T) {
	const (
		nBase   = 5000
		writers = 4
		perG    = 800
	)
	all := uniquePoints(nBase+writers*perG, 51)
	base := all[:nBase]
	fresh := all[nBase:]
	doomed := base[:writers*perG]

	sharded := New(testOptions(2, 8, HilbertRange, spacH))
	sharded.Build(base)
	st := store.New(sharded, store.Options{MaxBatch: 256})

	queries := workload.GenUniform(24, 2, workload.DefaultSide, 53)
	boxes := workload.RangeQueries(10, 2, workload.DefaultSide, 0.01, 54)
	var wgW, wgQ sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			ins := fresh[w*perG : (w+1)*perG]
			del := doomed[w*perG : (w+1)*perG]
			for i := range ins {
				st.Insert(ins[i])
				st.Delete(del[i])
			}
		}(w)
	}
	for q := 0; q < 2; q++ {
		wgQ.Add(1)
		go func() {
			defer wgQ.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					st.KNN(queries[i%len(queries)], 5, nil)
					st.RangeCount(boxes[i%len(boxes)])
				}
			}
		}()
	}
	wgW.Wait()
	close(stop)
	wgQ.Wait()
	st.Close()

	if err := sharded.Validate(); err != nil {
		t.Fatal(err)
	}
	oracle := core.NewBruteForce(2)
	oracle.Build(base[len(doomed):])
	oracle.BatchInsert(fresh)
	if err := core.VerifyQueries(st, oracle, queries, []int{1, 10, 50}, boxes); err != nil {
		t.Fatal(err)
	}
}
