package shard

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// overlapping appends the ids of shards whose region intersects box.
// Soundness of the pruning: points are assigned to shards by location, so
// every point of shard i lies inside regions[i]; a shard whose region
// misses the box cannot contribute.
func (p *partition) overlapping(box geom.Box, dst []int) []int {
	for i, r := range p.regions {
		if r.Intersects(box, p.dims) {
			dst = append(dst, i)
		}
	}
	return dst
}

// RangeCount implements core.Index: the count query fans out to the
// shards whose region overlaps the box and merges the per-shard counts.
func (s *Sharded) RangeCount(box geom.Box) int {
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	ids := s.part.overlapping(box, make([]int, 0, len(s.shards)))
	return parallel.Reduce(len(ids), 1, 0,
		func(i int) int {
			sh := &s.shards[ids[i]]
			sh.mu.RLock()
			defer sh.mu.RUnlock()
			return sh.idx.RangeCount(box)
		},
		func(a, b int) int { return a + b })
}

// RangeList implements core.Index: overlapping shards report into
// per-shard buffers in parallel (no contended append), which are then
// concatenated into dst.
func (s *Sharded) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	ids := s.part.overlapping(box, make([]int, 0, len(s.shards)))
	if len(ids) == 0 {
		return dst
	}
	if len(ids) == 1 {
		sh := &s.shards[ids[0]]
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		return sh.idx.RangeList(box, dst)
	}
	bufs := make([][]geom.Point, len(ids))
	parallel.ForEach(len(ids), 1, func(i int) {
		sh := &s.shards[ids[i]]
		sh.mu.RLock()
		bufs[i] = sh.idx.RangeList(box, nil)
		sh.mu.RUnlock()
	})
	for _, b := range bufs {
		dst = append(dst, b...)
	}
	return dst
}

// KNN implements core.Index with best-first expansion over shard regions:
// shards are visited in order of min-distance to the query, each shard's
// local k nearest merge into one bounded heap, and the search terminates
// as soon as the k-th candidate so far beats the next shard's lower
// bound — distant shards are never touched.
func (s *Sharded) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	if k <= 0 {
		return dst
	}
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	part := s.part
	dims := part.dims

	// Frontier: shard ids ordered by squared min-distance from q to the
	// region. Regions left empty by a degenerate partition are skipped
	// (they hold no points, and their sentinel corners would overflow the
	// distance arithmetic).
	type entry struct {
		id    int
		dist2 int64
	}
	frontier := make([]entry, 0, len(s.shards))
	for i, r := range part.regions {
		if r.IsEmpty() {
			continue
		}
		frontier = append(frontier, entry{id: i, dist2: r.Dist2(q, dims)})
	}
	sort.Slice(frontier, func(i, j int) bool { return frontier[i].dist2 < frontier[j].dist2 })

	h := geom.NewKNNHeap(k)
	var buf []geom.Point
	for _, e := range frontier {
		if h.Full() && e.dist2 > h.Bound() {
			break
		}
		sh := &s.shards[e.id]
		sh.mu.RLock()
		buf = sh.idx.KNN(q, k, buf[:0])
		sh.mu.RUnlock()
		for _, p := range buf {
			h.Push(p, geom.Dist2(p, q, dims))
		}
	}
	return h.Append(dst)
}
