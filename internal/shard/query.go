package shard

import (
	"slices"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Sharded reports per-query cost (shards visited, candidates scanned)
// through the obs.CostedIndex variants below; the plain core.Index
// methods delegate with a nil cost.
var _ obs.CostedIndex = (*Sharded)(nil)

// queryScratch is one query's fan-out state, recycled through
// Sharded.queryPool: the overlapping-shard id list, the KNN frontier, and
// the per-shard RangeList result buffers (retained at their high-water
// capacity, so steady-state queries allocate nothing beyond dst growth).
type queryScratch struct {
	ids      []int
	frontier []knnEntry
	buf      []geom.Point
	bufs     [][]geom.Point
}

// knnEntry is one frontier element: a shard ordered by the squared
// min-distance from the query point to its region.
type knnEntry struct {
	id    int
	dist2 int64
}

func (s *Sharded) getQueryScratch() *queryScratch {
	if s.opts.DisableScratch {
		return new(queryScratch)
	}
	return s.queryPool.Get().(*queryScratch)
}

func (s *Sharded) putQueryScratch(sc *queryScratch) {
	if !s.opts.DisableScratch {
		s.queryPool.Put(sc)
	}
}

// overlapping appends the ids of shards whose region intersects box.
// Soundness of the pruning: points are assigned to shards by location, so
// every point of shard i lies inside regions[i]; a shard whose region
// misses the box cannot contribute.
func (p *partition) overlapping(box geom.Box, dst []int) []int {
	for i, r := range p.regions {
		if r.Intersects(box, p.dims) {
			dst = append(dst, i)
		}
	}
	return dst
}

// RangeCount implements core.Index: the count query fans out to the
// shards whose region overlaps the box and merges the per-shard counts.
func (s *Sharded) RangeCount(box geom.Box) int {
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	sc := s.getQueryScratch()
	ids := s.part.overlapping(box, sc.ids[:0])
	s.met.recordQuery(ids)
	n := parallel.Reduce(len(ids), 1, 0,
		func(i int) int {
			sh := &s.shards[ids[i]]
			if s.opts.Snapshot {
				v := sh.mgr.Pin()
				defer sh.mgr.Unpin(v)
				return v.Data.RangeCount(box)
			}
			sh.mu.RLock()
			defer sh.mu.RUnlock()
			return sh.idx.RangeCount(box)
		},
		func(a, b int) int { return a + b })
	sc.ids = ids[:0]
	s.putQueryScratch(sc)
	return n
}

// RangeList implements core.Index: overlapping shards report into
// per-shard buffers in parallel (no contended append), which are then
// concatenated into dst. The buffers are recycled across queries.
func (s *Sharded) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	return s.RangeListCost(box, dst, nil)
}

// RangeListCost implements obs.CostedIndex: RangeList that additionally
// accounts the shards visited and candidate points reported into cost
// (when non-nil; counts are added, not reset).
func (s *Sharded) RangeListCost(box geom.Box, dst []geom.Point, cost *obs.QueryCost) []geom.Point {
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	sc := s.getQueryScratch()
	defer s.putQueryScratch(sc)
	ids := s.part.overlapping(box, sc.ids[:0])
	sc.ids = ids[:0]
	s.met.recordQuery(ids)
	if cost != nil {
		cost.Shards += len(ids)
	}
	if len(ids) == 0 {
		return dst
	}
	if len(ids) == 1 {
		before := len(dst)
		dst = s.shardRangeList(ids[0], box, dst)
		if cost != nil {
			cost.Candidates += len(dst) - before
		}
		return dst
	}
	for len(sc.bufs) < len(ids) {
		sc.bufs = append(sc.bufs, nil)
	}
	bufs := sc.bufs[:len(ids)]
	parallel.ForEach(len(ids), 1, func(i int) {
		bufs[i] = s.shardRangeList(ids[i], box, bufs[i][:0])
	})
	for _, b := range bufs {
		dst = append(dst, b...)
		if cost != nil {
			cost.Candidates += len(b)
		}
	}
	return dst
}

// shardRangeList runs one shard's range report: against the pinned
// published version in snapshot mode (wait-free behind sub-batches),
// under the shard read lock otherwise.
func (s *Sharded) shardRangeList(id int, box geom.Box, dst []geom.Point) []geom.Point {
	sh := &s.shards[id]
	if s.opts.Snapshot {
		v := sh.mgr.Pin()
		defer sh.mgr.Unpin(v)
		return v.Data.RangeList(box, dst)
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.idx.RangeList(box, dst)
}

// shardKNN runs one shard's local KNN (same locking as shardRangeList).
func (s *Sharded) shardKNN(id int, q geom.Point, k int, dst []geom.Point) []geom.Point {
	sh := &s.shards[id]
	if s.opts.Snapshot {
		v := sh.mgr.Pin()
		defer sh.mgr.Unpin(v)
		return v.Data.KNN(q, k, dst)
	}
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.idx.KNN(q, k, dst)
}

// KNN implements core.Index with best-first expansion over shard regions:
// shards are visited in order of min-distance to the query, each shard's
// local k nearest merge into one bounded heap, and the search terminates
// as soon as the k-th candidate so far beats the next shard's lower
// bound — distant shards are never touched.
func (s *Sharded) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	return s.KNNCost(q, k, dst, nil)
}

// KNNCost implements obs.CostedIndex: KNN that additionally accounts
// the shards expanded and candidate points merged into cost (when
// non-nil; counts are added, not reset).
func (s *Sharded) KNNCost(q geom.Point, k int, dst []geom.Point, cost *obs.QueryCost) []geom.Point {
	if k <= 0 {
		return dst
	}
	s.epoch.RLock()
	defer s.epoch.RUnlock()
	part := s.part
	dims := part.dims

	sc := s.getQueryScratch()
	defer s.putQueryScratch(sc)

	// Frontier: shard ids ordered by squared min-distance from q to the
	// region. Regions left empty by a degenerate partition are skipped
	// (they hold no points, and their sentinel corners would overflow the
	// distance arithmetic).
	frontier := sc.frontier[:0]
	for i, r := range part.regions {
		if r.IsEmpty() {
			continue
		}
		frontier = append(frontier, knnEntry{id: i, dist2: r.Dist2(q, dims)})
	}
	slices.SortFunc(frontier, func(a, b knnEntry) int {
		switch {
		case a.dist2 < b.dist2:
			return -1
		case a.dist2 > b.dist2:
			return 1
		}
		return 0
	})
	sc.frontier = frontier

	h := geom.GetKNNHeap(k)
	buf := sc.buf
	m := s.met
	expanded := 0
	for _, e := range frontier {
		if h.Full() && e.dist2 > h.Bound() {
			break
		}
		buf = s.shardKNN(e.id, q, k, buf[:0])
		expanded++
		if m != nil {
			m.queries[e.id].Inc()
			m.knnExp[e.id].Inc()
		}
		if cost != nil {
			cost.Candidates += len(buf)
		}
		for _, p := range buf {
			h.Push(p, geom.Dist2(p, q, dims))
		}
	}
	if m != nil {
		m.fanout.Observe(int64(expanded))
	}
	if cost != nil {
		cost.Shards += expanded
	}
	sc.buf = buf
	dst = h.Append(dst)
	geom.PutKNNHeap(h)
	return dst
}
