package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sfc"
	"repro/internal/spactree"
	"repro/internal/workload"
)

// brute is the shard index factory used by the exactness tests: with
// BruteForce children every discrepancy is the fan-out layer's fault.
func brute(dims int, _ geom.Box) core.Index { return core.NewBruteForce(dims) }

// spacH builds the paper's recommended dynamic-workload index.
func spacH(dims int, universe geom.Box) core.Index {
	return spactree.NewSPaC(sfc.Hilbert, dims, universe)
}

func testOptions(dims, shards int, strategy Strategy, factory func(int, geom.Box) core.Index) Options {
	side := workload.Dist("").Side(dims)
	return Options{
		Dims:     dims,
		Universe: geom.UniverseBox(dims, side),
		Shards:   shards,
		Strategy: strategy,
		New:      factory,
	}
}

// TestCrossValidation drives every (dims, strategy, distribution, shard
// count) combination through all four batch operations, checking the full
// query suite against the brute-force oracle and the sharding invariants
// after every round. k up to 40 on shard counts this high guarantees
// plenty of KNN answers straddle shard boundaries.
func TestCrossValidation(t *testing.T) {
	const n = 3000
	for _, dims := range []int{2, 3} {
		for _, strategy := range []Strategy{Grid, MortonRange, HilbertRange} {
			for _, dist := range []workload.Dist{workload.Uniform, workload.Varden} {
				for _, shards := range []int{1, 5, 16} {
					name := fmt.Sprintf("%dD/%s/%s/S=%d", dims, strategy, dist, shards)
					t.Run(name, func(t *testing.T) {
						crossValidate(t, dims, strategy, dist, shards, n)
					})
				}
			}
		}
	}
}

func crossValidate(t *testing.T, dims int, strategy Strategy, dist workload.Dist, shards, n int) {
	side := dist.Side(dims)
	seed := int64(7*shards + dims)
	pool := workload.Generate(dist, 3*n, dims, side, seed)
	rng := rand.New(rand.NewSource(seed))

	s := New(testOptions(dims, shards, strategy, brute))
	ref := core.NewBruteForce(dims)
	s.Build(pool[:n])
	ref.Build(pool[:n])

	verify := func(round string) {
		t.Helper()
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", round, err)
		}
		queries := workload.InDQueries(dist, 15, dims, side, seed+1)
		boxes := workload.RangeQueries(8, dims, side, 0.01, seed+2)
		if err := core.VerifyQueries(s, ref, queries, []int{1, 10, 40}, boxes); err != nil {
			t.Fatalf("%s: %v", round, err)
		}
	}
	verify("build")

	// sample draws points to delete from the oracle's current contents,
	// including duplicates (multiset delete semantics).
	sample := func(k int) []geom.Point {
		cur := ref.Points()
		out := make([]geom.Point, k)
		for i := range out {
			out[i] = cur[rng.Intn(len(cur))]
		}
		return out
	}

	ins := pool[n : n+n/2]
	s.BatchInsert(ins)
	ref.BatchInsert(ins)
	verify("insert")

	del := sample(n / 3)
	s.BatchDelete(del)
	ref.BatchDelete(del)
	verify("delete")

	ins, del = pool[2*n:2*n+n/4], sample(n/4)
	s.BatchDiff(ins, del)
	ref.BatchDiff(ins, del)
	verify("diff")

	// Rebuild on the survivors: Build must rebalance and replace.
	cur := append([]geom.Point(nil), ref.Points()...)
	s.Build(cur)
	ref.Build(cur)
	verify("rebuild")
}

// TestSPaCChild re-runs a cross-validation round with real SPaC-H trees
// as shard indexes, confirming the fan-out layer composes with the
// paper's indexes and not just the oracle.
func TestSPaCChild(t *testing.T) {
	const n = 5000
	dist := workload.Varden
	side := dist.Side(2)
	pool := workload.Generate(dist, 2*n, 2, side, 11)

	s := New(testOptions(2, 8, HilbertRange, spacH))
	ref := core.NewBruteForce(2)
	s.Build(pool[:n])
	ref.Build(pool[:n])
	s.BatchDiff(pool[n:n+n/4], pool[:n/4])
	ref.BatchDiff(pool[n:n+n/4], pool[:n/4])

	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	queries := workload.InDQueries(dist, 20, 2, side, 12)
	boxes := workload.RangeQueries(10, 2, side, 0.01, 13)
	if err := core.VerifyQueries(s, ref, queries, []int{1, 10, 50}, boxes); err != nil {
		t.Fatal(err)
	}
}

// TestKNNStraddlesShards pins the best-first frontier on a worst case:
// a tight ring of points centered where four static grid shards meet, so
// every correct answer needs candidates from all of them.
func TestKNNStraddlesShards(t *testing.T) {
	opts := testOptions(2, 4, Grid, brute)
	opts.Static = true // keep the grid boundaries through Build
	s := New(opts)
	ref := core.NewBruteForce(2)

	mid := opts.Universe.Mid(0)
	pts := make([]geom.Point, 0, 400)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		pts = append(pts, geom.Pt2(
			mid+rng.Int63n(20001)-10000,
			mid+rng.Int63n(20001)-10000,
		))
	}
	s.Build(pts)
	ref.Build(pts)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	center := geom.Pt2(mid, mid)
	queries := []geom.Point{center, geom.Pt2(mid+1, mid-1), geom.Pt2(mid-5000, mid+5000)}
	if err := core.VerifyQueries(s, ref, queries, []int{1, 10, 100, 400}, nil); err != nil {
		t.Fatal(err)
	}
	// The frontier must not fan out to shards that cannot contribute:
	// k=1 next to a corner of one shard terminates after that shard when
	// the nearest point is closer than the other regions.
	if got := s.KNN(center, 399, nil); len(got) != 399 {
		t.Fatalf("KNN(k=399) returned %d points", len(got))
	}
}

// TestRangePruning checks that boxes inside one region produce exact
// answers (the pruned path) and that universe-wide boxes still see every
// shard.
func TestRangePruning(t *testing.T) {
	opts := testOptions(2, 9, MortonRange, brute)
	s := New(opts)
	ref := core.NewBruteForce(2)
	pts := workload.GenUniform(4000, 2, workload.DefaultSide, 5)
	s.Build(pts)
	ref.Build(pts)

	if got, want := s.RangeCount(opts.Universe), ref.Size(); got != want {
		t.Fatalf("universe RangeCount = %d, want %d", got, want)
	}
	boxes := workload.RangeQueries(20, 2, workload.DefaultSide, 1e-4, 6)
	if err := core.VerifyQueries(s, ref, nil, nil, boxes); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveRebalance: on clustered (Varden) data the Build-time
// equi-depth split must never balance worse than the static equal-cell
// split, and must keep the hottest shard well below "everything in one
// shard".
func TestAdaptiveRebalance(t *testing.T) {
	const n, shards = 40000, 8
	pts := workload.GenVarden(n, 2, workload.DefaultSide, 21)

	maxLoad := func(static bool) int {
		opts := testOptions(2, shards, HilbertRange, brute)
		opts.Static = static
		s := New(opts)
		s.Build(pts)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		m := 0
		for _, sz := range s.ShardSizes(nil) {
			if sz > m {
				m = sz
			}
		}
		return m
	}
	adaptive, static := maxLoad(false), maxLoad(true)
	if adaptive > static {
		t.Fatalf("adaptive max shard load %d worse than static %d", adaptive, static)
	}
	if adaptive == n {
		t.Fatalf("adaptive split left all %d points in one shard", n)
	}
	t.Logf("max shard load on varden: adaptive %d, static %d (ideal %d)", adaptive, static, n/shards)
}

// TestConcurrentUpdatesAndQueries is the -race acceptance test: several
// goroutines apply shard-parallel BatchDiffs concurrently (disjoint fresh
// inserts, reserved doomed deletes) while queriers hammer all three query
// kinds. After the storm the result must match the oracle exactly.
func TestConcurrentUpdatesAndQueries(t *testing.T) {
	const (
		nBase    = 6000
		writers  = 4
		queriers = 4
		rounds   = 8
		batch    = 150
	)
	side := workload.DefaultSide
	all := uniquePoints(nBase+writers*rounds*batch, 31)
	base := all[:nBase]
	fresh := all[nBase:]
	doomed := base[:writers*rounds*batch]

	s := New(testOptions(2, 8, HilbertRange, spacH))
	s.Build(base)

	queries := workload.GenUniform(32, 2, side, 33)
	boxes := workload.RangeQueries(12, 2, side, 0.01, 34)
	var wgW, wgQ sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			for r := 0; r < rounds; r++ {
				off := (w*rounds + r) * batch
				s.BatchDiff(fresh[off:off+batch], doomed[off:off+batch])
			}
		}(w)
	}
	for q := 0; q < queriers; q++ {
		wgQ.Add(1)
		go func(q int) {
			defer wgQ.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (q + i) % 3 {
				case 0:
					if got := s.KNN(queries[i%len(queries)], 10, nil); len(got) != 10 {
						t.Errorf("KNN returned %d of 10 neighbors", len(got))
						return
					}
				case 1:
					if got := s.RangeCount(geom.UniverseBox(2, side)); got > len(all) {
						t.Errorf("RangeCount(universe) = %d exceeds %d", got, len(all))
						return
					}
				default:
					s.RangeList(boxes[i%len(boxes)], nil)
				}
			}
		}(q)
	}
	wgW.Wait()
	close(stop)
	wgQ.Wait()

	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	oracle := core.NewBruteForce(2)
	oracle.Build(base[len(doomed):])
	oracle.BatchInsert(fresh)
	if err := core.VerifyQueries(s, oracle, queries, []int{1, 10, 50}, boxes); err != nil {
		t.Fatal(err)
	}
}

// uniquePoints returns n distinct uniform points (distinctness makes the
// concurrent test's final multiset independent of interleaving).
func uniquePoints(n int, seed int64) []geom.Point {
	seen := make(map[geom.Point]bool, n)
	out := make([]geom.Point, 0, n)
	for chunk := int64(0); len(out) < n; chunk++ {
		for _, p := range workload.GenUniform(2*n, 2, workload.DefaultSide, seed+chunk) {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
				if len(out) == n {
					break
				}
			}
		}
	}
	return out
}

// TestShardedImplementsIndex pins the interface surface and defaults.
func TestShardedImplementsIndex(t *testing.T) {
	s := New(testOptions(2, 4, HilbertRange, brute))
	var idx core.Index = s
	if idx.Name() != "Sharded[4H](BruteForce)" {
		t.Fatalf("Name = %q", idx.Name())
	}
	if idx.Dims() != 2 || s.Shards() != 4 {
		t.Fatalf("Dims = %d, Shards = %d", idx.Dims(), s.Shards())
	}
	idx.BatchInsert([]geom.Point{geom.Pt2(1, 2), geom.Pt2(3, 4)})
	if idx.Size() != 2 {
		t.Fatalf("Size = %d", idx.Size())
	}
	idx.BatchDelete([]geom.Point{geom.Pt2(1, 2)})
	if idx.Size() != 1 {
		t.Fatalf("Size after delete = %d", idx.Size())
	}
	// Defaults: Shards <= 0 picks GOMAXPROCS, granularity is filled in.
	d := New(Options{Dims: 2, Universe: geom.UniverseBox(2, 100), New: brute})
	if d.Shards() < 1 {
		t.Fatalf("default Shards = %d", d.Shards())
	}
}
