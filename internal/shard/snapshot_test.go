package shard

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// The per-shard snapshot-read variant of the shard test suite: with
// Options.Snapshot every shard double-buffers its index behind a
// per-shard epoch, so queries pin published shard versions instead of
// taking shard read locks.

func snapOptions(dims, shards int, strategy Strategy) Options {
	opts := testOptions(dims, shards, strategy, brute)
	opts.Snapshot = true
	return opts
}

// TestSnapshotCrossValidation re-runs the batch-op differential with
// per-shard snapshots on: results must be identical to the locked path,
// and the sharding invariants must hold after every round.
func TestSnapshotCrossValidation(t *testing.T) {
	const n = 3000
	for _, shards := range []int{1, 5, 16} {
		dist := workload.Uniform
		side := dist.Side(2)
		seed := int64(7*shards + 2)
		pool := workload.Generate(dist, 2*n, 2, side, seed)

		s := New(snapOptions(2, shards, HilbertRange))
		ref := core.NewBruteForce(2)
		s.Build(pool[:n])
		ref.Build(pool[:n])
		verify := func(round string) {
			t.Helper()
			if err := s.Validate(); err != nil {
				t.Fatalf("S=%d %s: %v", shards, round, err)
			}
			queries := workload.InDQueries(dist, 15, 2, side, seed+1)
			boxes := workload.RangeQueries(8, 2, side, 0.01, seed+2)
			if err := core.VerifyQueries(s, ref, queries, []int{1, 10, 40}, boxes); err != nil {
				t.Fatalf("S=%d %s: %v", shards, round, err)
			}
		}
		verify("build")

		ins := pool[n : n+n/2]
		s.BatchInsert(ins)
		ref.BatchInsert(ins)
		verify("insert")

		del := pool[:n/3]
		s.BatchDelete(del)
		ref.BatchDelete(del)
		verify("delete")

		s.BatchDiff(pool[:n/4], pool[n:n+n/4])
		ref.BatchDiff(pool[:n/4], pool[n:n+n/4])
		verify("diff")
	}
}

// TestSnapshotConcurrentUpdatesAndQueries hammers a snapshot-mode
// Sharded with concurrent batch writers and readers (run under -race):
// readers must always see each shard either before or after a sub-batch,
// and the final contents must match a sequential oracle.
func TestSnapshotConcurrentUpdatesAndQueries(t *testing.T) {
	const n = 4000
	side := workload.Uniform.Side(2)
	pts := uniquePoints(n, 11)
	s := New(snapOptions(2, 8, HilbertRange))
	s.Build(pts[:n/2])

	queries := workload.GenUniform(16, 2, side, 21)
	boxes := workload.RangeQueries(8, 2, side, 0.02, 23)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []geom.Point
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.KNN(queries[i%len(queries)], 10, buf[:0])
				s.RangeCount(boxes[i%len(boxes)])
				buf = s.RangeList(boxes[i%len(boxes)], buf[:0])
			}
		}()
	}
	// One writer: the Sharded consistency contract is per shard, not
	// cross-batch, but batches from one goroutine must serialize cleanly
	// against the readers.
	for i := n / 2; i < n; i += 100 {
		end := min(i+100, n)
		s.BatchDiff(pts[i:end], pts[i-n/2:end-n/2])
	}
	close(stop)
	wg.Wait()

	ref := core.NewBruteForce(2)
	ref.Build(pts[n/2:])
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyQueries(s, ref, queries, []int{1, 10, 50}, boxes); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotStats checks the aggregated epoch counters: Epoch is the
// max per-shard epoch (it advances only for shards that received a
// sub-batch), Versions doubles, and the lag is zero when quiescent.
func TestSnapshotStats(t *testing.T) {
	s := New(snapOptions(2, 4, HilbertRange))
	st := s.Stats()
	if st.Shards != 4 || st.Epoch != 0 || st.Versions != 2 || st.RetireLag != 0 {
		t.Fatalf("initial stats: %+v, want 4 shards, epoch 0, 2 versions per shard, lag 0", st)
	}
	pts := uniquePoints(1000, 5)
	s.Build(pts)
	st = s.Stats()
	if st.Size != 1000 || st.Epoch == 0 || st.RetireLag != 0 {
		t.Fatalf("stats after Build: %+v, want size 1000, epoch > 0, lag 0", st)
	}
	prev := st.Epoch
	s.BatchInsert(uniquePoints(200, 6))
	if st = s.Stats(); st.Epoch != prev+1 {
		t.Fatalf("epoch after insert = %d, want %d", st.Epoch, prev+1)
	}
	// Locked mode reports the locked shape.
	l := New(testOptions(2, 4, HilbertRange, brute))
	if st := l.Stats(); st.Epoch != 0 || st.Versions != 1 {
		t.Fatalf("locked stats: %+v, want epoch 0, 1 version per shard", st)
	}
}

// TestSnapshotReplica checks the Replicator wiring: NewReplica returns a
// fresh empty Sharded with the same configuration, fit for the
// Collection/Store Snapshot factory.
func TestSnapshotReplica(t *testing.T) {
	s := New(snapOptions(2, 4, HilbertRange))
	s.Build(uniquePoints(100, 3))
	r, ok := core.Index(s).(core.Replicator)
	if !ok {
		t.Fatal("Sharded does not implement core.Replicator")
	}
	twin := r.NewReplica()
	if twin.Size() != 0 {
		t.Fatalf("NewReplica starts with %d points, want 0", twin.Size())
	}
	if twin.Name() != s.Name() {
		t.Fatalf("NewReplica Name = %q, original %q", twin.Name(), s.Name())
	}
}

// gatedIndex blocks BatchDiff until released (armed via channel), to
// hold a sub-batch apply open.
type gatedIndex struct {
	core.Index
	armed   chan struct{}
	entered chan struct{}
	release chan struct{}
}

func (g *gatedIndex) BatchDiff(ins, del []geom.Point) {
	select {
	case <-g.armed:
		select {
		case g.entered <- struct{}{}:
		default:
		}
		<-g.release
	default:
	}
	g.Index.BatchDiff(ins, del)
}

// TestSnapshotReadDuringSubBatchDoesNotStall holds one shard's sub-batch
// apply open and requires queries over that shard to complete against
// its still-published version. (Locked mode would block RangeCount on
// the shard's read lock here.)
func TestSnapshotReadDuringSubBatchDoesNotStall(t *testing.T) {
	armed := make(chan struct{})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	opts := testOptions(2, 1, HilbertRange, func(dims int, _ geom.Box) core.Index {
		return &gatedIndex{Index: core.NewBruteForce(dims), armed: armed, entered: entered, release: release}
	})
	opts.Snapshot = true
	s := New(opts)
	p0 := geom.Pt2(10, 10)
	s.BatchInsert([]geom.Point{p0})

	close(armed)
	applied := make(chan struct{})
	go func() {
		s.BatchInsert([]geom.Point{geom.Pt2(20, 20)})
		close(applied)
	}()
	<-entered

	done := make(chan struct{})
	go func() {
		defer close(done)
		if got := s.Size(); got != 1 {
			t.Errorf("Size during sub-batch = %d, want 1 (previous shard epoch)", got)
		}
		if got := s.KNN(p0, 1, nil); len(got) != 1 || got[0] != p0 {
			t.Errorf("KNN during sub-batch = %v, want [%v]", got, p0)
		}
		if st := s.Stats(); st.Epoch != 1 {
			t.Errorf("Stats during sub-batch = %+v, want published epoch 1", st)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("queries stalled behind the held-open sub-batch")
	}
	close(release)
	select {
	case <-applied:
	case <-time.After(10 * time.Second):
		t.Fatal("sub-batch never completed after release")
	}
	if got := s.Size(); got != 2 {
		t.Fatalf("Size after sub-batch = %d, want 2", got)
	}
}
