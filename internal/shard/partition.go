// Package shard implements Sharded, a space-partitioned fan-out layer
// over any core.Index: the universe is carved into S compact regions, each
// region owns an independent index behind its own lock, batch updates are
// partitioned by region and applied to all shards concurrently, and
// queries fan out only to the shards whose region can contribute. Where
// the paper's indexes parallelize *inside* one batch, Sharded adds the
// orthogonal axis — parallelism *across* indexes — which is what lets
// deletes and inserts for different regions proceed with no contention at
// all.
//
// The partitioning follows the two standard shapes from the literature: a
// uniform grid over the universe (the grid-of-cells organization of
// GP-Tree-style designs) and space-filling-curve ranges (the two-level
// partition-then-local-index design), both expressed as one mechanism — a
// fine cell grid whose cells are ordered row-major (Grid) or by their
// Morton/Hilbert code (MortonRange/HilbertRange) and split into S
// contiguous runs. SFC ordering keeps each run geometrically compact, so
// query pruning stays effective; Build can additionally rebalance the run
// boundaries to equalize *point* counts (equi-depth), which is what keeps
// clustered (Varden-like) data from piling into one shard.
package shard

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/sfc"
)

// Strategy selects how grid cells are ordered before being split into S
// contiguous runs, i.e. what shape the shard regions take.
type Strategy int

const (
	// Grid orders cells row-major: shards are horizontal slabs of cells,
	// the classic static uniform-grid partitioning.
	Grid Strategy = iota
	// MortonRange orders cells by their Z-curve code: shards are
	// contiguous Morton ranges, compact up to the Z-curve's jumps.
	MortonRange
	// HilbertRange orders cells by their Hilbert code: the most compact
	// regions of the three (adjacent ranges are geometrically adjacent).
	HilbertRange
)

// String names the strategy the way the experiment tables do.
func (s Strategy) String() string {
	switch s {
	case MortonRange:
		return "Z"
	case HilbertRange:
		return "H"
	}
	return "G"
}

// partition is the immutable cell-grid → shard mapping. Sharded swaps the
// whole value on Build (rebalancing), so readers need no locking beyond
// the epoch lock.
type partition struct {
	dims     int
	universe geom.Box
	shards   int

	level uint                // bits per dimension: 1<<level cells per axis
	ext1  [geom.MaxDims]int64 // universe extent + 1 per dimension

	// order lists all cell ids (row-major) in curve order; bounds[i] is
	// the start of shard i's run in order (bounds[shards] == len(order)).
	order  []int32
	bounds []int

	cellShard []uint16   // row-major cell id -> shard
	regions   []geom.Box // per shard: union box of its cells (for pruning)
}

// minCells and maxCells bound the cell grid: a floor so equi-depth
// rebalancing can split clustered data even at low shard counts (cells
// far outnumber shards), a ceiling so per-cell tables stay small
// regardless of the shard count requested.
const (
	minCells = 1 << 14
	maxCells = 1 << 16
)

// newPartition builds the cell grid for the given shard count and
// strategy with the default equal-cell-count run boundaries.
func newPartition(dims int, universe geom.Box, shards int, strategy Strategy, cellsPerShard int) *partition {
	p := &partition{dims: dims, universe: universe, shards: shards}
	for d := 0; d < dims; d++ {
		p.ext1[d] = universe.Side(d) + 1
	}
	// Pick the finest level whose total cell count stays within both the
	// table budget and ~cellsPerShard cells per shard.
	target := shards * cellsPerShard
	if target < minCells {
		target = minCells
	}
	if target > maxCells {
		target = maxCells
	}
	for (1 << ((p.level + 1) * uint(dims))) <= target {
		p.level++
	}
	cells := 1 << (p.level * uint(dims))

	p.order = make([]int32, cells)
	for c := range p.order {
		p.order[c] = int32(c)
	}
	if strategy != Grid {
		keys := make([]uint64, cells)
		for c := 0; c < cells; c++ {
			keys[c] = cellKey(strategy, p.cellCoords(c), dims)
		}
		sort.Slice(p.order, func(i, j int) bool {
			return keys[p.order[i]] < keys[p.order[j]]
		})
	}
	p.cellShard = make([]uint16, cells)
	p.regions = make([]geom.Box, shards)
	p.bounds = make([]int, shards+1)
	for i := 0; i <= shards; i++ {
		p.bounds[i] = i * cells / shards
	}
	p.applyBounds()
	return p
}

// rebalanced returns a copy of p whose run boundaries are chosen so each
// shard's run carries ~total/shards of the given per-cell point counts
// (indexed by row-major cell id) — the equi-depth split that keeps skewed
// data balanced. With an all-zero histogram the equal-cell split is kept.
func (p *partition) rebalanced(counts []int) *partition {
	total := 0
	for _, c := range counts {
		total += c
	}
	q := &partition{
		dims: p.dims, universe: p.universe, shards: p.shards,
		level: p.level, ext1: p.ext1, order: p.order,
		cellShard: make([]uint16, len(p.cellShard)),
		regions:   make([]geom.Box, p.shards),
		bounds:    make([]int, p.shards+1),
	}
	if total == 0 {
		copy(q.bounds, p.bounds)
		q.applyBounds()
		return q
	}
	// Walk cells in curve order, cutting each time the running mass
	// reaches the next shard's quota (rounded up, so a cut implies the
	// run holds at least one point when any mass remains). Every shard
	// keeps at least one cell so regions stay non-degenerate.
	cells := len(p.order)
	acc, next := 0, 1
	for i, c := range p.order {
		if next < p.shards && acc >= (next*total+p.shards-1)/p.shards && cells-i >= p.shards-next+1 {
			q.bounds[next] = i
			next++
		}
		acc += counts[c]
	}
	for ; next < p.shards; next++ {
		q.bounds[next] = cells - (p.shards - next)
	}
	q.bounds[p.shards] = cells
	q.applyBounds()
	return q
}

// applyBounds fills cellShard and regions from bounds.
func (p *partition) applyBounds() {
	for s := 0; s < p.shards; s++ {
		region := geom.EmptyBox(p.dims)
		for _, c := range p.order[p.bounds[s]:p.bounds[s+1]] {
			p.cellShard[c] = uint16(s)
			if b := p.cellBox(int(c)); !b.IsEmpty() {
				region = region.Union(b, p.dims)
			}
		}
		p.regions[s] = region
	}
}

// shardOf maps a point (which must lie inside the universe, the
// library-wide precondition for space-partitioning indexes) to its shard.
func (p *partition) shardOf(pt geom.Point) int {
	return int(p.cellShard[p.cellOf(pt)])
}

// cellOf maps a point to its row-major grid cell id. Coordinates are
// clamped to the grid so boundary arithmetic can never index out of
// range.
func (p *partition) cellOf(pt geom.Point) int {
	idx := 0
	for d := p.dims - 1; d >= 0; d-- {
		c := (pt[d] - p.universe.Lo[d]) << p.level / p.ext1[d]
		if c < 0 {
			c = 0
		} else if c >= int64(1)<<p.level {
			c = int64(1)<<p.level - 1
		}
		idx = idx<<p.level | int(c)
	}
	return idx
}

// cellCoords decomposes a row-major cell id into per-dimension cell
// coordinates.
func (p *partition) cellCoords(c int) [geom.MaxDims]uint32 {
	var out [geom.MaxDims]uint32
	mask := 1<<p.level - 1
	for d := 0; d < p.dims; d++ {
		out[d] = uint32(c & mask)
		c >>= p.level
	}
	return out
}

// cellBox returns the exact region of a cell: the per-dimension interval
// [ceil(c*ext1/n), ceil((c+1)*ext1/n)-1], which is precisely the set of
// coordinates shardOf maps to cell index c. Cells beyond a tiny universe
// extent come back empty.
func (p *partition) cellBox(c int) geom.Box {
	cc := p.cellCoords(c)
	n := int64(1) << p.level
	var b geom.Box
	for d := 0; d < p.dims; d++ {
		lo := (int64(cc[d])*p.ext1[d] + n - 1) / n
		hi := (int64(cc[d]+1)*p.ext1[d]+n-1)/n - 1
		b.Lo[d] = p.universe.Lo[d] + lo
		b.Hi[d] = p.universe.Lo[d] + hi
	}
	return b
}

// cellKey orders a cell under the given strategy.
func cellKey(strategy Strategy, cc [geom.MaxDims]uint32, dims int) uint64 {
	if dims == 2 {
		if strategy == HilbertRange {
			return sfc.Hilbert2(cc[0], cc[1])
		}
		return sfc.Morton2(cc[0], cc[1])
	}
	if strategy == HilbertRange {
		return sfc.Hilbert3(cc[0], cc[1], cc[2])
	}
	return sfc.Morton3(cc[0], cc[1], cc[2])
}
