package shard

import (
	"strconv"
	"sync/atomic"

	"repro/internal/obs"
)

// shardMetrics is the Sharded observability hook set, created once in
// New when Options.Obs is given and shared by every replica (see
// NewReplica). The per-shard series are the direct input a future
// rebalancer needs: where batch ops land, which shards queries touch,
// how wide queries fan out, and how many shards each KNN expands.
type shardMetrics struct {
	flushes  atomic.Uint64
	ops      []*obs.Counter // batch ops (inserts+deletes) applied per shard
	queries  []*obs.Counter // queries that touched each shard
	knnExp   []*obs.Counter // KNN expansions per shard
	fanout   *obs.Hist      // shards touched per query
	flushDur *obs.Hist
	trace    *obs.FlushTrace
}

func newShardMetrics(r *obs.Registry, s *Sharded) *shardMetrics {
	n := s.opts.Shards
	layer := obs.Label{Key: "layer", Value: "shard"}
	m := &shardMetrics{
		ops:     make([]*obs.Counter, n),
		queries: make([]*obs.Counter, n),
		knnExp:  make([]*obs.Counter, n),
		fanout: r.Histogram("psi_query_fanout_shards",
			"Shards touched per fan-out query (count histogram, not nanoseconds)."),
		flushDur: r.Histogram("psi_flush_duration_ns",
			"Flush wall time in nanoseconds, summed over pipeline stages.",
			layer),
		trace: r.FlushTrace(),
	}
	r.CounterFunc("psi_flush_total",
		"Flush windows applied to the index.",
		m.flushes.Load, layer)
	for i := range n {
		lbl := obs.Label{Key: "shard", Value: strconv.Itoa(i)}
		m.ops[i] = r.Counter("psi_shard_ops_total",
			"Batch mutations (inserts plus deletes) applied per shard.", lbl)
		m.queries[i] = r.Counter("psi_shard_queries_total",
			"Queries that touched each shard.", lbl)
		m.knnExp[i] = r.Counter("psi_shard_knn_expansions_total",
			"KNN best-first expansions per shard.", lbl)
		mgr := &s.shards[i].mgr
		r.GaugeFunc("psi_shard_epoch",
			"Published epoch per shard (0 in locked mode).",
			func() float64 { return float64(mgr.Epoch()) }, lbl)
	}
	return m
}

// recordQuery accounts one fan-out query that touched the given shards.
func (m *shardMetrics) recordQuery(ids []int) {
	if m == nil {
		return
	}
	m.fanout.Observe(int64(len(ids)))
	for _, id := range ids {
		m.queries[id].Inc()
	}
}
