package rtree

import "repro/internal/geom"

// delete1 removes one occurrence of p (Guttman's Delete with CondenseTree:
// underflowing nodes are dissolved and their points reinserted).
func (t *Tree) delete1(p geom.Point) bool {
	if t.root == nil {
		return false
	}
	var orphans []geom.Point
	removed := t.deleteRec(t.root, p, &orphans)
	if !removed {
		return false
	}
	// Shrink the root: an interior root with one child is replaced by it;
	// an empty root disappears.
	for t.root != nil && !t.root.isLeaf() && len(t.root.kids) == 1 {
		t.root = t.root.kids[0]
	}
	if t.root != nil && t.root.entries() == 0 {
		t.root = nil
	}
	// Reinsert points from dissolved nodes.
	for _, q := range orphans {
		t.insert1(q)
	}
	return true
}

// deleteRec finds and removes p below nd, dissolving underflowing children
// into the orphan list. Sizes and MBRs are recomputed on the way up.
func (t *Tree) deleteRec(nd *rnode, p geom.Point, orphans *[]geom.Point) bool {
	if nd.isLeaf() {
		for i, q := range nd.pts {
			if q == p {
				nd.pts[i] = nd.pts[len(nd.pts)-1]
				nd.pts = nd.pts[:len(nd.pts)-1]
				nd.size = len(nd.pts)
				nd.mbr = geom.BoundingBox(nd.pts, t.dims)
				return true
			}
		}
		return false
	}
	for ki, c := range nd.kids {
		if !c.mbr.Contains(p, t.dims) {
			continue
		}
		if !t.deleteRec(c, p, orphans) {
			continue
		}
		if c.entries() < minEntries {
			// CondenseTree: dissolve the underflowing child and queue its
			// remaining points for reinsertion.
			*orphans = collectPoints(c, *orphans)
			nd.kids[ki] = nd.kids[len(nd.kids)-1]
			nd.kids = nd.kids[:len(nd.kids)-1]
		}
		refresh(nd, t.dims)
		return true
	}
	return false
}

// collectPoints appends every point of the subtree to dst.
func collectPoints(nd *rnode, dst []geom.Point) []geom.Point {
	if nd == nil {
		return dst
	}
	if nd.isLeaf() {
		return append(dst, nd.pts...)
	}
	for _, c := range nd.kids {
		dst = collectPoints(c, dst)
	}
	return dst
}
