package rtree

import (
	"container/heap"
	"fmt"

	"repro/internal/geom"
)

// KNN implements core.Index with best-first search: a priority queue over
// nodes and points ordered by minimum distance — the standard R-tree kNN,
// which copes best with overlapping MBRs.
func (t *Tree) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	if t.root == nil || k <= 0 {
		return dst
	}
	pq := &distQueue{}
	heap.Push(pq, distEntry{d: t.root.mbr.Dist2(q, t.dims), nd: t.root})
	found := 0
	for pq.Len() > 0 && found < k {
		e := heap.Pop(pq).(distEntry)
		if e.nd == nil {
			dst = append(dst, e.pt)
			found++
			continue
		}
		if e.nd.isLeaf() {
			for _, p := range e.nd.pts {
				heap.Push(pq, distEntry{d: geom.Dist2(p, q, t.dims), pt: p})
			}
			continue
		}
		for _, c := range e.nd.kids {
			heap.Push(pq, distEntry{d: c.mbr.Dist2(q, t.dims), nd: c})
		}
	}
	return dst
}

// distEntry is a queue element: a node when nd != nil, a point otherwise.
type distEntry struct {
	d  int64
	nd *rnode
	pt geom.Point
}

type distQueue []distEntry

func (q distQueue) Len() int            { return len(q) }
func (q distQueue) Less(i, j int) bool  { return q[i].d < q[j].d }
func (q distQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *distQueue) Push(x interface{}) { *q = append(*q, x.(distEntry)) }
func (q *distQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// RangeCount implements core.Index.
func (t *Tree) RangeCount(box geom.Box) int { return t.count(t.root, box) }

func (t *Tree) count(nd *rnode, box geom.Box) int {
	if nd == nil || !box.Intersects(nd.mbr, t.dims) {
		return 0
	}
	if box.ContainsBox(nd.mbr, t.dims) {
		return nd.size
	}
	if nd.isLeaf() {
		n := 0
		for _, p := range nd.pts {
			if box.Contains(p, t.dims) {
				n++
			}
		}
		return n
	}
	n := 0
	for _, c := range nd.kids {
		n += t.count(c, box)
	}
	return n
}

// RangeList implements core.Index.
func (t *Tree) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	return t.list(t.root, box, dst)
}

func (t *Tree) list(nd *rnode, box geom.Box, dst []geom.Point) []geom.Point {
	if nd == nil || !box.Intersects(nd.mbr, t.dims) {
		return dst
	}
	if box.ContainsBox(nd.mbr, t.dims) {
		return collectPoints(nd, dst)
	}
	if nd.isLeaf() {
		for _, p := range nd.pts {
			if box.Contains(p, t.dims) {
				dst = append(dst, p)
			}
		}
		return dst
	}
	for _, c := range nd.kids {
		dst = t.list(c, box, dst)
	}
	return dst
}

// Validate checks the R-tree invariants: fan-out within [minEntries,
// maxEntries] (root exempt from the minimum), exact MBRs and sizes, and
// uniform leaf depth (R-trees are height-balanced).
func (t *Tree) Validate() error {
	if t.root == nil {
		return nil
	}
	_, _, err := t.validate(t.root, true)
	return err
}

func (t *Tree) validate(nd *rnode, isRoot bool) (size, depth int, err error) {
	if !isRoot && nd.entries() < minEntries {
		return 0, 0, fmt.Errorf("node underflow: %d entries", nd.entries())
	}
	if nd.entries() > maxEntries {
		return 0, 0, fmt.Errorf("node overflow: %d entries", nd.entries())
	}
	if nd.isLeaf() {
		if nd.size != len(nd.pts) {
			return 0, 0, fmt.Errorf("leaf size %d with %d points", nd.size, len(nd.pts))
		}
		if mbr := geom.BoundingBox(nd.pts, t.dims); mbr != nd.mbr {
			return 0, 0, fmt.Errorf("leaf MBR stale")
		}
		return nd.size, 1, nil
	}
	total := 0
	mbr := geom.EmptyBox(t.dims)
	childDepth := -1
	for _, c := range nd.kids {
		sz, d, err := t.validate(c, false)
		if err != nil {
			return 0, 0, err
		}
		if childDepth == -1 {
			childDepth = d
		} else if d != childDepth {
			return 0, 0, fmt.Errorf("leaves at unequal depths (%d vs %d)", d, childDepth)
		}
		total += sz
		mbr = mbr.Union(c.mbr, t.dims)
	}
	if total != nd.size {
		return 0, 0, fmt.Errorf("interior size %d, children sum %d", nd.size, total)
	}
	if mbr != nd.mbr {
		return 0, 0, fmt.Errorf("interior MBR stale")
	}
	return total, childDepth + 1, nil
}
