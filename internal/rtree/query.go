package rtree

import (
	"fmt"
	"sync"

	"repro/internal/geom"
)

// KNN implements core.Index with best-first search: a priority queue over
// nodes and points ordered by minimum distance — the standard R-tree kNN,
// which copes best with overlapping MBRs. The queue is a concrete min-heap
// (container/heap would box every entry in an interface, allocating per
// push) recycled across queries, so warm queries only allocate when dst
// must grow.
func (t *Tree) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	if t.root == nil || k <= 0 {
		return dst
	}
	pqp := queuePool.Get().(*distQueue)
	pq := (*pqp)[:0]
	pq = pq.push(distEntry{d: t.root.mbr.Dist2(q, t.dims), nd: t.root})
	hi := 1 // high-water length: the only entries this query dirtied
	found := 0
	for len(pq) > 0 && found < k {
		var e distEntry
		pq, e = pq.pop()
		if e.nd == nil {
			dst = append(dst, e.pt)
			found++
			continue
		}
		if e.nd.isLeaf() {
			for _, p := range e.nd.pts {
				pq = pq.push(distEntry{d: geom.Dist2(p, q, t.dims), pt: p})
			}
		} else {
			for _, c := range e.nd.kids {
				pq = pq.push(distEntry{d: c.mbr.Dist2(q, t.dims), nd: c})
			}
		}
		if len(pq) > hi {
			hi = len(pq)
		}
	}
	// Entries up to the high-water mark hold dead node pointers; clear
	// them so a pooled queue never pins a detached subtree. Slots beyond
	// hi were cleared the same way by whichever query grew the buffer.
	clear(pq[:hi])
	*pqp = pq
	queuePool.Put(pqp)
	return dst
}

// distEntry is a queue element: a node when nd != nil, a point otherwise.
type distEntry struct {
	d  int64
	nd *rnode
	pt geom.Point
}

// distQueue is a binary min-heap on d.
type distQueue []distEntry

var queuePool = sync.Pool{New: func() any { return new(distQueue) }}

func (q distQueue) push(e distEntry) distQueue {
	q = append(q, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].d <= q[i].d {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	return q
}

func (q distQueue) pop() (distQueue, distEntry) {
	e := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q[l].d < q[small].d {
			small = l
		}
		if r < n && q[r].d < q[small].d {
			small = r
		}
		if small == i {
			break
		}
		q[small], q[i] = q[i], q[small]
		i = small
	}
	return q, e
}

// RangeCount implements core.Index.
func (t *Tree) RangeCount(box geom.Box) int { return t.count(t.root, box) }

func (t *Tree) count(nd *rnode, box geom.Box) int {
	if nd == nil || !box.Intersects(nd.mbr, t.dims) {
		return 0
	}
	if box.ContainsBox(nd.mbr, t.dims) {
		return nd.size
	}
	if nd.isLeaf() {
		n := 0
		for _, p := range nd.pts {
			if box.Contains(p, t.dims) {
				n++
			}
		}
		return n
	}
	n := 0
	for _, c := range nd.kids {
		n += t.count(c, box)
	}
	return n
}

// RangeList implements core.Index.
func (t *Tree) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	return t.list(t.root, box, dst)
}

func (t *Tree) list(nd *rnode, box geom.Box, dst []geom.Point) []geom.Point {
	if nd == nil || !box.Intersects(nd.mbr, t.dims) {
		return dst
	}
	if box.ContainsBox(nd.mbr, t.dims) {
		return collectPoints(nd, dst)
	}
	if nd.isLeaf() {
		for _, p := range nd.pts {
			if box.Contains(p, t.dims) {
				dst = append(dst, p)
			}
		}
		return dst
	}
	for _, c := range nd.kids {
		dst = t.list(c, box, dst)
	}
	return dst
}

// Validate checks the R-tree invariants: fan-out within [minEntries,
// maxEntries] (root exempt from the minimum), exact MBRs and sizes, and
// uniform leaf depth (R-trees are height-balanced).
func (t *Tree) Validate() error {
	if t.root == nil {
		return nil
	}
	_, _, err := t.validate(t.root, true)
	return err
}

func (t *Tree) validate(nd *rnode, isRoot bool) (size, depth int, err error) {
	if !isRoot && nd.entries() < minEntries {
		return 0, 0, fmt.Errorf("node underflow: %d entries", nd.entries())
	}
	if nd.entries() > maxEntries {
		return 0, 0, fmt.Errorf("node overflow: %d entries", nd.entries())
	}
	if nd.isLeaf() {
		if nd.size != len(nd.pts) {
			return 0, 0, fmt.Errorf("leaf size %d with %d points", nd.size, len(nd.pts))
		}
		if mbr := geom.BoundingBox(nd.pts, t.dims); mbr != nd.mbr {
			return 0, 0, fmt.Errorf("leaf MBR stale")
		}
		return nd.size, 1, nil
	}
	total := 0
	mbr := geom.EmptyBox(t.dims)
	childDepth := -1
	for _, c := range nd.kids {
		sz, d, err := t.validate(c, false)
		if err != nil {
			return 0, 0, err
		}
		if childDepth == -1 {
			childDepth = d
		} else if d != childDepth {
			return 0, 0, fmt.Errorf("leaves at unequal depths (%d vs %d)", d, childDepth)
		}
		total += sz
		mbr = mbr.Union(c.mbr, t.dims)
	}
	if total != nd.size {
		return 0, 0, fmt.Errorf("interior size %d, children sum %d", nd.size, total)
	}
	if mbr != nd.mbr {
		return 0, 0, fmt.Errorf("interior MBR stale")
	}
	return total, childDepth + 1, nil
}
