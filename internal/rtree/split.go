package rtree

import "repro/internal/geom"

// Quadratic split (Guttman [32]): pick the two entries wasting the most
// area together as seeds, then assign the rest one at a time to the group
// whose MBR grows least, force-assigning when a group must reach the
// minimum fill.

// splitLeaf redistributes an overflowing leaf's points; nd keeps group 1,
// the returned node holds group 2.
func (t *Tree) splitLeaf(nd *rnode) *rnode {
	boxes := make([]geom.Box, len(nd.pts))
	for i, p := range nd.pts {
		boxes[i] = geom.BoxOf(p, p)
	}
	g1, g2 := t.quadraticGroups(boxes)
	pts1 := make([]geom.Point, 0, len(g1))
	pts2 := make([]geom.Point, 0, len(g2))
	for _, i := range g1 {
		pts1 = append(pts1, nd.pts[i])
	}
	for _, i := range g2 {
		pts2 = append(pts2, nd.pts[i])
	}
	nd.pts = pts1
	nd.size = len(pts1)
	nd.mbr = geom.BoundingBox(pts1, t.dims)
	return &rnode{mbr: geom.BoundingBox(pts2, t.dims), size: len(pts2), pts: pts2}
}

// splitInterior redistributes an overflowing interior node's children.
func (t *Tree) splitInterior(nd *rnode) *rnode {
	boxes := make([]geom.Box, len(nd.kids))
	for i, c := range nd.kids {
		boxes[i] = c.mbr
	}
	g1, g2 := t.quadraticGroups(boxes)
	kids1 := make([]*rnode, 0, len(g1))
	kids2 := make([]*rnode, 0, len(g2))
	for _, i := range g1 {
		kids1 = append(kids1, nd.kids[i])
	}
	for _, i := range g2 {
		kids2 = append(kids2, nd.kids[i])
	}
	nd.kids = kids1
	refresh(nd, t.dims)
	sib := &rnode{kids: kids2}
	refresh(sib, t.dims)
	return sib
}

// refresh recomputes an interior node's mbr and size from its children.
func refresh(nd *rnode, dims int) {
	mbr := geom.EmptyBox(dims)
	size := 0
	for _, c := range nd.kids {
		mbr = mbr.Union(c.mbr, dims)
		size += c.size
	}
	nd.mbr = mbr
	nd.size = size
}

// quadraticGroups partitions indexes [0, len(boxes)) into two groups.
func (t *Tree) quadraticGroups(boxes []geom.Box) (g1, g2 []int) {
	dims := t.dims
	n := len(boxes)
	// PickSeeds: maximize dead area of the pair.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := area(boxes[i].Union(boxes[j], dims), dims) - area(boxes[i], dims) - area(boxes[j], dims)
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	g1 = append(g1, s1)
	g2 = append(g2, s2)
	mbr1, mbr2 := boxes[s1], boxes[s2]
	assigned := make([]bool, n)
	assigned[s1], assigned[s2] = true, true
	remaining := n - 2
	for remaining > 0 {
		// Force-assign if one group must take all the rest to reach the
		// minimum fill.
		if len(g1)+remaining == minEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					g1 = append(g1, i)
					mbr1 = mbr1.Union(boxes[i], dims)
					assigned[i] = true
				}
			}
			return g1, g2
		}
		if len(g2)+remaining == minEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					g2 = append(g2, i)
					mbr2 = mbr2.Union(boxes[i], dims)
					assigned[i] = true
				}
			}
			return g1, g2
		}
		// PickNext: the entry with the strongest preference.
		bestIdx, bestDiff := -1, -1.0
		var bestD1, bestD2 float64
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			d1 := enlargement(mbr1, boxes[i], dims)
			d2 := enlargement(mbr2, boxes[i], dims)
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff, bestD1, bestD2 = i, diff, d1, d2
			}
		}
		i := bestIdx
		assigned[i] = true
		remaining--
		// Resolve by enlargement, then area, then count.
		toG1 := bestD1 < bestD2
		if bestD1 == bestD2 {
			a1, a2 := area(mbr1, dims), area(mbr2, dims)
			if a1 != a2 {
				toG1 = a1 < a2
			} else {
				toG1 = len(g1) <= len(g2)
			}
		}
		if toG1 {
			g1 = append(g1, i)
			mbr1 = mbr1.Union(boxes[i], dims)
		} else {
			g2 = append(g2, i)
			mbr2 = mbr2.Union(boxes[i], dims)
		}
	}
	return g1, g2
}
