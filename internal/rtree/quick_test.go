package rtree

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
)

// Property: randomized operation scripts keep the R-tree invariants
// (fan-out bounds, exact MBRs, uniform leaf depth) and agree with the
// oracle. Batches are kept small — every operation is a root-to-leaf
// walk.
func TestQuickOpScripts(t *testing.T) {
	f := func(seed int64, dense bool) bool {
		side := int64(1 << 16)
		if dense {
			side = 40
		}
		tr := New(2)
		script := core.OpScript{
			Dims: 2, Side: side, Steps: 10, Seed: seed, MaxBatch: 120,
			Validate: tr.Validate,
		}
		if err := script.Run(tr); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// R-trees are object-partitioning: negative coordinates need no universe.
func TestNegativeCoordinates(t *testing.T) {
	tr := New(2)
	ref := core.NewBruteForce(2)
	var pts []geom.Point
	for i := int64(0); i < 400; i++ {
		pts = append(pts, geom.Pt2(i*37%883-441, i*11%877-438))
	}
	tr.Build(pts)
	ref.Build(pts)
	validateOrFail(t, tr)
	if err := core.VerifyQueries(tr, ref,
		[]geom.Point{geom.Pt2(-440, -440), geom.Pt2(0, 0)}, []int{1, 10},
		[]geom.Box{geom.BoxOf(geom.Pt2(-441, -441), geom.Pt2(0, 0))}); err != nil {
		t.Fatal(err)
	}
}
