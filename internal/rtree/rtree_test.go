package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

const testSide = int64(1 << 20)

func validateOrFail(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(2)
	if tr.Size() != 0 || len(tr.KNN(geom.Pt2(0, 0), 3, nil)) != 0 || tr.RangeCount(geom.UniverseBox(2, 10)) != 0 {
		t.Fatal("empty tree misbehaves")
	}
	tr.BatchDelete([]geom.Point{geom.Pt2(1, 1)})
	validateOrFail(t, tr)
}

func TestInsertMatchesBruteForce(t *testing.T) {
	for _, dist := range []workload.Dist{workload.Uniform, workload.Varden} {
		pts := workload.Generate(dist, 5000, 2, testSide, 7)
		tr := New(2)
		tr.Build(pts)
		validateOrFail(t, tr)
		ref := core.NewBruteForce(2)
		ref.Build(pts)
		queries := workload.GenUniform(25, 2, testSide, 9)
		boxes := workload.RangeQueries(10, 2, testSide, 0.01, 11)
		if err := core.VerifyQueries(tr, ref, queries, []int{1, 3, 10}, boxes); err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
	}
}

func Test3D(t *testing.T) {
	pts := workload.GenVarden(3000, 3, testSide, 3)
	tr := New(3)
	tr.Build(pts)
	validateOrFail(t, tr)
	ref := core.NewBruteForce(3)
	ref.Build(pts)
	if err := core.VerifyQueries(tr, ref,
		workload.GenUniform(15, 3, testSide, 5), []int{1, 10},
		workload.RangeQueries(8, 3, testSide, 0.05, 6)); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMatchesBruteForce(t *testing.T) {
	pts := workload.GenUniform(4000, 2, testSide, 13)
	tr := New(2)
	tr.Build(pts)
	ref := core.NewBruteForce(2)
	ref.Build(pts)
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 5; round++ {
		cur := ref.Points()
		batch := make([]geom.Point, 600)
		for i := range batch {
			batch[i] = cur[rng.Intn(len(cur))]
		}
		tr.BatchDelete(batch)
		ref.BatchDelete(batch)
		validateOrFail(t, tr)
		if tr.Size() != ref.Size() {
			t.Fatalf("round %d: size %d want %d", round, tr.Size(), ref.Size())
		}
	}
	if err := core.VerifyQueries(tr, ref,
		workload.GenUniform(20, 2, testSide, 19), []int{1, 10},
		workload.RangeQueries(8, 2, testSide, 0.02, 23)); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMissingPoint(t *testing.T) {
	tr := New(2)
	tr.Build(workload.GenUniform(100, 2, testSide, 29))
	if tr.delete1(geom.Pt2(-5, -5)) {
		t.Fatal("deleted a point that was never inserted")
	}
	if tr.Size() != 100 {
		t.Fatal("size changed")
	}
}

func TestDuplicates(t *testing.T) {
	p := geom.Pt2(777, 777)
	tr := New(2)
	pts := make([]geom.Point, 200)
	for i := range pts {
		pts[i] = p
	}
	tr.Build(pts)
	validateOrFail(t, tr)
	if tr.Size() != 200 {
		t.Fatalf("size %d", tr.Size())
	}
	tr.BatchDelete(pts[:50])
	if tr.Size() != 150 {
		t.Fatalf("size %d after delete", tr.Size())
	}
	validateOrFail(t, tr)
	nn := tr.KNN(geom.Pt2(0, 0), 3, nil)
	if len(nn) != 3 || nn[0] != p {
		t.Fatalf("kNN = %v", nn)
	}
}

func TestFullDeleteEmpties(t *testing.T) {
	pts := workload.GenUniform(1000, 2, testSide, 31)
	tr := New(2)
	tr.Build(pts)
	tr.BatchDelete(pts)
	if tr.Size() != 0 || tr.root != nil {
		t.Fatalf("tree not empty after deleting all: size %d", tr.Size())
	}
}

func TestInterleavedOps(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	tr := New(2)
	ref := core.NewBruteForce(2)
	pool := workload.GenVarden(8000, 2, testSide, 41)
	used := 0
	for step := 0; step < 20; step++ {
		if rng.Intn(2) == 0 && used < len(pool) {
			n := rng.Intn(500)
			if used+n > len(pool) {
				n = len(pool) - used
			}
			tr.BatchInsert(pool[used : used+n])
			ref.BatchInsert(pool[used : used+n])
			used += n
		} else if ref.Size() > 0 {
			cur := ref.Points()
			n := rng.Intn(len(cur)/3 + 1)
			batch := make([]geom.Point, n)
			for i := range batch {
				batch[i] = cur[rng.Intn(len(cur))]
			}
			tr.BatchDelete(batch)
			ref.BatchDelete(batch)
		}
		validateOrFail(t, tr)
		if tr.Size() != ref.Size() {
			t.Fatalf("step %d: size %d want %d", step, tr.Size(), ref.Size())
		}
	}
	if err := core.VerifyQueries(tr, ref,
		workload.GenUniform(15, 2, testSide, 43), []int{1, 5},
		workload.RangeQueries(8, 2, testSide, 0.02, 47)); err != nil {
		t.Fatal(err)
	}
}
