// Package rtree implements the Boost R-tree baseline (§5 "Baselines"): a
// sequential Guttman R-tree [32] with the quadratic split heuristic — the
// variant the paper selects because it "gives the best tree quality in the
// dynamic setting". It supports only point-at-a-time updates (Boost has no
// batch or parallel operations), which is exactly how the paper drives it:
// incremental workloads insert/delete one point at a time and only query
// times are compared.
package rtree

import (
	"repro/internal/core"
	"repro/internal/geom"
)

// Branching factor: Guttman's M (max entries per node) and m (min fill).
const (
	maxEntries = 16
	minEntries = 6 // ~40% of M, the usual quadratic-split fill
)

// Tree is a sequential quadratic R-tree.
type Tree struct {
	dims int
	root *rnode
}

var _ core.Index = (*Tree)(nil)

// rnode is a leaf (kids nil, points in pts) or an interior node. mbr is
// the minimum bounding rectangle of the subtree; size its point count.
type rnode struct {
	mbr  geom.Box
	size int
	kids []*rnode
	pts  []geom.Point
}

func (nd *rnode) isLeaf() bool { return nd.kids == nil }

// entries returns the fan-out of the node (points or children).
func (nd *rnode) entries() int {
	if nd.isLeaf() {
		return len(nd.pts)
	}
	return len(nd.kids)
}

// New returns an empty R-tree.
func New(dims int) *Tree {
	if dims != 2 && dims != 3 {
		panic("rtree: dims must be 2 or 3")
	}
	return &Tree{dims: dims}
}

// Name implements core.Index.
func (t *Tree) Name() string { return "Boost-R" }

// Dims implements core.Index.
func (t *Tree) Dims() int { return t.dims }

// Size implements core.Index.
func (t *Tree) Size() int {
	if t.root == nil {
		return 0
	}
	return t.root.size
}

// Build implements core.Index by inserting points one at a time (the only
// construction Boost's dynamic R-tree offers).
func (t *Tree) Build(pts []geom.Point) {
	t.root = nil
	t.BatchInsert(pts)
}

// BatchInsert implements core.Index as a loop of single insertions.
func (t *Tree) BatchInsert(pts []geom.Point) {
	for _, p := range pts {
		t.insert1(p)
	}
}

// BatchDelete implements core.Index as a loop of single deletions
// (multiset semantics: each call removes at most one occurrence).
func (t *Tree) BatchDelete(pts []geom.Point) {
	for _, p := range pts {
		t.delete1(p)
	}
}

// area returns the volume of the box in float64 (3D volumes overflow
// int64 at coordinate range 1e9, so the heuristics run in float).
func area(b geom.Box, dims int) float64 {
	v := 1.0
	for d := 0; d < dims; d++ {
		v *= float64(b.Side(d))
	}
	return v
}

// enlargement returns how much b must grow to absorb o.
func enlargement(b, o geom.Box, dims int) float64 {
	return area(b.Union(o, dims), dims) - area(b, dims)
}

// insert1 adds one point (Guttman's Insert with quadratic node split).
func (t *Tree) insert1(p geom.Point) {
	pb := geom.BoxOf(p, p)
	if t.root == nil {
		t.root = &rnode{mbr: pb, size: 1, pts: []geom.Point{p}}
		return
	}
	if split := t.insertRec(t.root, p, pb); split != nil {
		old := t.root
		t.root = &rnode{
			mbr:  old.mbr.Union(split.mbr, t.dims),
			size: old.size + split.size,
			kids: []*rnode{old, split},
		}
	}
}

// insertRec descends to a leaf by least-enlargement and splits overflowing
// nodes on the way back up; the returned node (if any) is the new sibling.
func (t *Tree) insertRec(nd *rnode, p geom.Point, pb geom.Box) *rnode {
	nd.mbr = nd.mbr.Union(pb, t.dims)
	nd.size++
	if nd.isLeaf() {
		nd.pts = append(nd.pts, p)
		if len(nd.pts) > maxEntries {
			return t.splitLeaf(nd)
		}
		return nil
	}
	child := t.chooseSubtree(nd, pb)
	if split := t.insertRec(child, p, pb); split != nil {
		nd.kids = append(nd.kids, split)
		if len(nd.kids) > maxEntries {
			return t.splitInterior(nd)
		}
	}
	return nil
}

// chooseSubtree picks the child needing least enlargement (ties: smallest
// area), Guttman's ChooseLeaf step.
func (t *Tree) chooseSubtree(nd *rnode, pb geom.Box) *rnode {
	best := nd.kids[0]
	bestEnl := enlargement(best.mbr, pb, t.dims)
	bestArea := area(best.mbr, t.dims)
	for _, c := range nd.kids[1:] {
		enl := enlargement(c.mbr, pb, t.dims)
		a := area(c.mbr, t.dims)
		if enl < bestEnl || (enl == bestEnl && a < bestArea) {
			best, bestEnl, bestArea = c, enl, a
		}
	}
	return best
}

// BatchDiff implements core.Index: deletions apply before insertions.
func (t *Tree) BatchDiff(ins, del []geom.Point) {
	t.BatchDelete(del)
	t.BatchInsert(ins)
}
