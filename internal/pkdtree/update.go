package pkdtree

import (
	"repro/internal/geom"
	"repro/internal/parallel"
)

// insert routes the batch down the splitters, rebuilding any subtree whose
// weight balance would degrade past the imbalance ratio — the Pkd-tree's
// reconstruction-based rebalancing [43].
func (t *Tree) insert(nd *node, pts, buf []geom.Point) *node {
	if len(pts) == 0 {
		return nd
	}
	if nd == nil {
		return t.build(pts, buf)
	}
	dims := t.opts.Dims
	if nd.isLeaf() {
		if nd.size+len(pts) <= t.opts.LeafWrap {
			for _, p := range pts {
				nd.bbox = nd.bbox.Extend(p, dims)
			}
			nd.pts = append(nd.pts, pts...)
			nd.size = len(nd.pts)
			return nd
		}
		return t.rebuildWith(nd, pts)
	}
	// Partition the batch by this node's splitter.
	offsets := parallel.Sieve(pts, buf, 2, func(p geom.Point) int {
		if p[nd.dim] < nd.split {
			return 0
		}
		return 1
	})
	nl, nr := offsets[1], len(pts)-offsets[1]
	newL := sizeOf(nd.left) + nl
	newR := sizeOf(nd.right) + nr
	if t.imbalanced(newL, newR) {
		// Partial reconstruction: flatten the subtree, add the batch,
		// build fresh. This is the O(m log² n) amortized step.
		return t.rebuildWith(nd, pts)
	}
	parallel.DoIf(len(pts) >= seqCutoff,
		func() { nd.left = t.insert(nd.left, buf[:offsets[1]], pts[:offsets[1]]) },
		func() { nd.right = t.insert(nd.right, buf[offsets[1]:], pts[offsets[1]:]) })
	nd.size = sizeOf(nd.left) + sizeOf(nd.right)
	nd.bbox = nd.left.bbox.Union(nd.right.bbox, dims)
	return nd
}

// delete routes the batch down, removes matches in leaves, contracts
// empty children and rebuilds on imbalance.
func (t *Tree) delete(nd *node, pts, buf []geom.Point) *node {
	if nd == nil || len(pts) == 0 {
		return nd
	}
	dims := t.opts.Dims
	if nd.isLeaf() {
		removeFromLeaf(nd, pts, dims)
		if nd.size == 0 {
			return nil
		}
		return nd
	}
	offsets := parallel.Sieve(pts, buf, 2, func(p geom.Point) int {
		if p[nd.dim] < nd.split {
			return 0
		}
		return 1
	})
	parallel.DoIf(len(pts) >= seqCutoff,
		func() { nd.left = t.delete(nd.left, buf[:offsets[1]], pts[:offsets[1]]) },
		func() { nd.right = t.delete(nd.right, buf[offsets[1]:], pts[offsets[1]:]) })
	if nd.left == nil {
		return nd.right
	}
	if nd.right == nil {
		return nd.left
	}
	nd.size = nd.left.size + nd.right.size
	nd.bbox = nd.left.bbox.Union(nd.right.bbox, dims)
	if nd.size <= t.opts.LeafWrap {
		return t.flatten(nd)
	}
	if t.imbalanced(nd.left.size, nd.right.size) {
		return t.rebuildWith(nd, nil)
	}
	return nd
}

// rebuildWith flattens a subtree, appends extra points, and builds fresh.
func (t *Tree) rebuildWith(nd *node, extra []geom.Point) *node {
	all := make([]geom.Point, 0, nd.size+len(extra))
	all = collect(nd, all)
	all = append(all, extra...)
	buf := make([]geom.Point, len(all))
	return t.build(all, buf)
}

func sizeOf(nd *node) int {
	if nd == nil {
		return 0
	}
	return nd.size
}

// removeFromLeaf removes one occurrence per requested point.
func removeFromLeaf(nd *node, pts []geom.Point, dims int) {
	if len(pts) > 8 && len(nd.pts) > 8 {
		want := make(map[geom.Point]int, len(pts))
		for _, p := range pts {
			want[p]++
		}
		out := nd.pts[:0]
		for _, p := range nd.pts {
			if c := want[p]; c > 0 {
				want[p] = c - 1
				continue
			}
			out = append(out, p)
		}
		nd.pts = out
	} else {
		for _, p := range pts {
			for i, q := range nd.pts {
				if q == p {
					nd.pts[i] = nd.pts[len(nd.pts)-1]
					nd.pts = nd.pts[:len(nd.pts)-1]
					break
				}
			}
		}
	}
	nd.size = len(nd.pts)
	nd.bbox = geom.BoundingBox(nd.pts, dims)
}
