package pkdtree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

const testSide = int64(1 << 20)

func validateOrFail(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := NewDefault(2)
	if tr.Size() != 0 || len(tr.KNN(geom.Pt2(1, 1), 3, nil)) != 0 {
		t.Fatal("empty tree misbehaves")
	}
	tr.BatchDelete([]geom.Point{geom.Pt2(1, 1)})
	validateOrFail(t, tr)
}

func TestBuildMatchesBruteForce(t *testing.T) {
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		for _, n := range []int{1, 32, 33, 1000, 20000} {
			pts := workload.Generate(dist, n, 2, testSide, 7)
			tr := NewDefault(2)
			tr.Build(pts)
			validateOrFail(t, tr)
			ref := core.NewBruteForce(2)
			ref.Build(pts)
			queries := workload.GenUniform(30, 2, testSide, 9)
			boxes := workload.RangeQueries(15, 2, testSide, 0.01, 11)
			if err := core.VerifyQueries(tr, ref, queries, []int{1, 3, 10}, boxes); err != nil {
				t.Fatalf("%s n=%d: %v", dist, n, err)
			}
		}
	}
}

func TestBuild3D(t *testing.T) {
	pts := workload.GenVarden(8000, 3, testSide, 3)
	tr := NewDefault(3)
	tr.Build(pts)
	validateOrFail(t, tr)
	ref := core.NewBruteForce(3)
	ref.Build(pts)
	if err := core.VerifyQueries(tr, ref,
		workload.GenUniform(20, 3, testSide, 5), []int{1, 10},
		workload.RangeQueries(10, 3, testSide, 0.05, 6)); err != nil {
		t.Fatal(err)
	}
}

func TestBuildHeightBalanced(t *testing.T) {
	// Sample-median splits must keep the height within a small factor of
	// log2(n/φ), even on skewed data (kd-trees are comparison-based and
	// skew-resistant — the paper's Tab. 2).
	for _, dist := range []workload.Dist{workload.Uniform, workload.Varden} {
		pts := workload.Generate(dist, 100000, 2, testSide, 13)
		tr := NewDefault(2)
		tr.Build(pts)
		maxH := int(2.5*math.Log2(float64(len(pts))/32)) + 4
		if h := tr.Height(); h > maxH {
			t.Fatalf("%s: height %d exceeds %d", dist, h, maxH)
		}
	}
}

func TestInsertDeleteMatchesBruteForce(t *testing.T) {
	pts := workload.GenVarden(20000, 2, testSide, 17)
	tr := NewDefault(2)
	ref := core.NewBruteForce(2)
	tr.Build(pts[:5000])
	ref.Build(pts[:5000])
	for lo := 5000; lo < 20000; lo += 5000 {
		tr.BatchInsert(pts[lo : lo+5000])
		ref.BatchInsert(pts[lo : lo+5000])
		validateOrFail(t, tr)
	}
	rng := rand.New(rand.NewSource(19))
	for round := 0; round < 3; round++ {
		cur := ref.Points()
		batch := make([]geom.Point, 4000)
		for i := range batch {
			batch[i] = cur[rng.Intn(len(cur))]
		}
		tr.BatchDelete(batch)
		ref.BatchDelete(batch)
		validateOrFail(t, tr)
		if tr.Size() != ref.Size() {
			t.Fatalf("round %d: size %d want %d", round, tr.Size(), ref.Size())
		}
	}
	if err := core.VerifyQueries(tr, ref,
		workload.GenUniform(30, 2, testSide, 23), []int{1, 10},
		workload.RangeQueries(10, 2, testSide, 0.02, 29)); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceOnSkewedInserts(t *testing.T) {
	// Sweepline insertion is the adversarial case for kd-trees: every
	// batch lands at the right edge. The imbalance-triggered rebuilds
	// must keep the height logarithmic.
	pts := workload.GenSweepline(60000, 2, testSide, 31)
	tr := NewDefault(2)
	tr.Build(pts[:10000])
	for lo := 10000; lo < 60000; lo += 2500 {
		tr.BatchInsert(pts[lo : lo+2500])
	}
	validateOrFail(t, tr)
	maxH := int(2.5*math.Log2(float64(60000)/32)) + 4
	if h := tr.Height(); h > maxH {
		t.Fatalf("height %d after sweepline inserts exceeds %d (rebalancing broken)", h, maxH)
	}
	if tr.Size() != 60000 {
		t.Fatalf("size %d", tr.Size())
	}
}

func TestShrinkOnDeleteKeepsBalance(t *testing.T) {
	pts := workload.GenUniform(40000, 2, testSide, 37)
	tr := NewDefault(2)
	tr.Build(pts)
	// Delete everything left of the median sweep: forces contraction.
	for lo := 0; lo < 30000; lo += 3000 {
		tr.BatchDelete(pts[lo : lo+3000])
		validateOrFail(t, tr)
	}
	if tr.Size() != 10000 {
		t.Fatalf("size %d", tr.Size())
	}
	maxH := int(2.5*math.Log2(float64(10000)/32)) + 4
	if h := tr.Height(); h > maxH {
		t.Fatalf("height %d after deletes exceeds %d", h, maxH)
	}
}

func TestDuplicates(t *testing.T) {
	p := geom.Pt2(500, 500)
	pts := make([]geom.Point, 400)
	for i := range pts {
		pts[i] = p
	}
	tr := NewDefault(2)
	tr.Build(pts)
	validateOrFail(t, tr)
	if tr.Size() != 400 {
		t.Fatalf("size %d", tr.Size())
	}
	tr.BatchDelete(pts[:150])
	if tr.Size() != 250 {
		t.Fatalf("size %d after delete", tr.Size())
	}
	validateOrFail(t, tr)
}

func TestNearDuplicates(t *testing.T) {
	// Two heavy duplicate groups: exercises the exact-split fallback.
	pts := make([]geom.Point, 0, 600)
	for i := 0; i < 300; i++ {
		pts = append(pts, geom.Pt2(100, 100))
	}
	for i := 0; i < 300; i++ {
		pts = append(pts, geom.Pt2(101, 100))
	}
	tr := NewDefault(2)
	tr.Build(pts)
	validateOrFail(t, tr)
	ref := core.NewBruteForce(2)
	ref.Build(pts)
	if err := core.VerifyQueries(tr, ref,
		[]geom.Point{geom.Pt2(100, 100), geom.Pt2(102, 100)}, []int{1, 100, 350},
		[]geom.Box{geom.BoxOf(geom.Pt2(100, 100), geom.Pt2(100, 100))}); err != nil {
		t.Fatal(err)
	}
}

func TestFullDelete(t *testing.T) {
	pts := workload.GenUniform(5000, 2, testSide, 41)
	tr := NewDefault(2)
	tr.Build(pts)
	tr.BatchDelete(pts)
	if tr.Size() != 0 {
		t.Fatalf("size %d", tr.Size())
	}
	validateOrFail(t, tr)
}
