package pkdtree

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
)

// Property: randomized operation scripts keep invariants and agree with
// the oracle, including under heavy duplication.
func TestQuickOpScripts(t *testing.T) {
	f := func(seed int64, dense bool, threeD bool) bool {
		dims := 2
		if threeD {
			dims = 3
		}
		side := int64(1 << 16)
		if dense {
			side = 40
		}
		tr := NewDefault(dims)
		script := core.OpScript{
			Dims: dims, Side: side, Steps: 12, Seed: seed, MaxBatch: 300,
			Validate: tr.Validate,
		}
		if err := script.Run(tr); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// kd-trees are comparison-based: negative coordinates must work (no
// universe box required) — the one capability the SFC-based indexes lack
// (paper Tab. 2, "flexible to any coordinate types and ranges").
func TestNegativeCoordinates(t *testing.T) {
	tr := NewDefault(2)
	ref := core.NewBruteForce(2)
	pts := []geom.Point{
		geom.Pt2(-1000, -1000), geom.Pt2(-5, 3), geom.Pt2(0, 0),
		geom.Pt2(7, -2), geom.Pt2(1000, 1000), geom.Pt2(-1000, 1000),
	}
	for i := int64(0); i < 500; i++ {
		pts = append(pts, geom.Pt2(i*13%997-500, i*7%991-500))
	}
	tr.Build(pts)
	ref.Build(pts)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	queries := []geom.Point{geom.Pt2(-999, -999), geom.Pt2(0, 0), geom.Pt2(400, -400)}
	boxes := []geom.Box{geom.BoxOf(geom.Pt2(-600, -600), geom.Pt2(-1, -1))}
	if err := core.VerifyQueries(tr, ref, queries, []int{1, 10}, boxes); err != nil {
		t.Fatal(err)
	}
	tr.BatchDelete(pts[:3])
	ref.BatchDelete(pts[:3])
	if err := core.VerifyQueries(tr, ref, queries, []int{1, 10}, boxes); err != nil {
		t.Fatal(err)
	}
}
