package pkdtree

import (
	"fmt"

	"repro/internal/geom"
)

// KNN implements core.Index: binary DFS, nearer child first, pruning on
// tight bounding boxes.
func (t *Tree) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	if t.root == nil || k <= 0 {
		return dst
	}
	h := geom.GetKNNHeap(k)
	t.knn(t.root, q, h)
	dst = h.Append(dst)
	geom.PutKNNHeap(h)
	return dst
}

func (t *Tree) knn(nd *node, q geom.Point, h *geom.KNNHeap) {
	dims := t.opts.Dims
	if nd.isLeaf() {
		for _, p := range nd.pts {
			h.Push(p, geom.Dist2(p, q, dims))
		}
		return
	}
	dl := nd.left.bbox.Dist2(q, dims)
	dr := nd.right.bbox.Dist2(q, dims)
	first, second := nd.left, nd.right
	d1, d2 := dl, dr
	if dr < dl {
		first, second = nd.right, nd.left
		d1, d2 = dr, dl
	}
	if !h.Full() || d1 < h.Bound() {
		t.knn(first, q, h)
	}
	if !h.Full() || d2 < h.Bound() {
		t.knn(second, q, h)
	}
}

// RangeCount implements core.Index.
func (t *Tree) RangeCount(box geom.Box) int { return t.count(t.root, box) }

func (t *Tree) count(nd *node, box geom.Box) int {
	if nd == nil {
		return 0
	}
	dims := t.opts.Dims
	if !box.Intersects(nd.bbox, dims) {
		return 0
	}
	if box.ContainsBox(nd.bbox, dims) {
		return nd.size
	}
	if nd.isLeaf() {
		n := 0
		for _, p := range nd.pts {
			if box.Contains(p, dims) {
				n++
			}
		}
		return n
	}
	return t.count(nd.left, box) + t.count(nd.right, box)
}

// RangeList implements core.Index.
func (t *Tree) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	return t.list(t.root, box, dst)
}

func (t *Tree) list(nd *node, box geom.Box, dst []geom.Point) []geom.Point {
	if nd == nil {
		return dst
	}
	dims := t.opts.Dims
	if !box.Intersects(nd.bbox, dims) {
		return dst
	}
	if box.ContainsBox(nd.bbox, dims) {
		return collect(nd, dst)
	}
	if nd.isLeaf() {
		for _, p := range nd.pts {
			if box.Contains(p, dims) {
				dst = append(dst, p)
			}
		}
		return dst
	}
	dst = t.list(nd.left, box, dst)
	return t.list(nd.right, box, dst)
}

// Height returns the tree height (leaf = 1).
func (t *Tree) Height() int { return height(t.root) }

func height(nd *node) int {
	if nd == nil {
		return 0
	}
	if nd.isLeaf() {
		return 1
	}
	l, r := height(nd.left), height(nd.right)
	if r > l {
		l = r
	}
	return l + 1
}

// Validate checks sizes, bboxes, splitter routing (every point obeys the
// ancestors' half-space constraints) and the leaf wrap.
func (t *Tree) Validate() error {
	const big = int64(1) << 62
	all := geom.Box{}
	for d := 0; d < t.opts.Dims; d++ {
		all.Lo[d], all.Hi[d] = -big, big
	}
	_, err := t.validate(t.root, all)
	return err
}

func (t *Tree) validate(nd *node, region geom.Box) (int, error) {
	if nd == nil {
		return 0, nil
	}
	dims := t.opts.Dims
	if nd.isLeaf() {
		if len(nd.pts) != nd.size || nd.size == 0 {
			return 0, fmt.Errorf("leaf size %d with %d points", nd.size, len(nd.pts))
		}
		bb := geom.BoundingBox(nd.pts, dims)
		if bb != nd.bbox {
			return 0, fmt.Errorf("leaf bbox stale: %v vs %v", nd.bbox, bb)
		}
		for _, p := range nd.pts {
			if !region.Contains(p, dims) {
				return 0, fmt.Errorf("point %v violates splitter constraints %v", p, region)
			}
		}
		return nd.size, nil
	}
	if nd.left == nil || nd.right == nil {
		return 0, fmt.Errorf("interior with missing child")
	}
	if nd.size <= t.opts.LeafWrap {
		return 0, fmt.Errorf("interior of size %d should be flattened", nd.size)
	}
	lRegion, rRegion := region, region
	lRegion.Hi[nd.dim] = nd.split - 1
	rRegion.Lo[nd.dim] = nd.split
	ls, err := t.validate(nd.left, lRegion)
	if err != nil {
		return 0, err
	}
	rs, err := t.validate(nd.right, rRegion)
	if err != nil {
		return 0, err
	}
	if ls+rs != nd.size {
		return 0, fmt.Errorf("interior size %d, children sum %d", nd.size, ls+rs)
	}
	if got := nd.left.bbox.Union(nd.right.bbox, dims); got != nd.bbox {
		return 0, fmt.Errorf("interior bbox stale")
	}
	return nd.size, nil
}
