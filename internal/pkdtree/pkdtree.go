// Package pkdtree implements the Pkd-tree baseline [43] as the paper
// describes it (§2.3): a parallel kd-tree whose construction estimates
// object medians by sampling, builds λ levels of splitters per round, and
// partitions points with the same sieve primitive the P-Orth tree uses.
// Batch updates route the batch down the splitters and rebuild any subtree
// whose weight balance degrades past the imbalance ratio (§C: 0.3) — the
// "reconstruction-based balancing scheme" whose O(m log² n) amortized cost
// is exactly what the paper's new structures beat (§5.1.2).
package pkdtree

import (
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/parallel"
)

// Tree is a Pkd-tree.
type Tree struct {
	opts core.Options
	root *node
}

var _ core.Index = (*Tree)(nil)

// node: leaf (left == nil) stores pts; interior splits dimension dim at
// value split: points with p[dim] < split route left, others right.
type node struct {
	size        int
	bbox        geom.Box
	dim         int
	split       geom.Coord
	left, right *node
	pts         []geom.Point
}

func (nd *node) isLeaf() bool { return nd.left == nil }

// New returns an empty Pkd-tree. The universe in opts is ignored (kd-trees
// are comparison-based and need no fixed region).
func New(opts core.Options) *Tree {
	opts.Validate()
	return &Tree{opts: opts}
}

// NewDefault returns a Pkd-tree with the paper's parameters (imbalance
// ratio 0.3 per §C).
func NewDefault(dims int) *Tree {
	opts := core.DefaultOptions(dims, geom.UniverseBox(dims, 1))
	opts.Alpha = 0.3
	return New(opts)
}

// Name implements core.Index.
func (t *Tree) Name() string { return "Pkd-Tree" }

// Dims implements core.Index.
func (t *Tree) Dims() int { return t.opts.Dims }

// Size implements core.Index.
func (t *Tree) Size() int {
	if t.root == nil {
		return 0
	}
	return t.root.size
}

// Build implements core.Index. The input slice is not modified.
func (t *Tree) Build(pts []geom.Point) {
	work := make([]geom.Point, len(pts))
	copy(work, pts)
	buf := make([]geom.Point, len(pts))
	t.root = t.build(work, buf)
}

// BatchInsert implements core.Index.
func (t *Tree) BatchInsert(pts []geom.Point) {
	if len(pts) == 0 {
		return
	}
	work := make([]geom.Point, len(pts))
	copy(work, pts)
	buf := make([]geom.Point, len(pts))
	t.root = t.insert(t.root, work, buf)
}

// BatchDelete implements core.Index (multiset semantics).
func (t *Tree) BatchDelete(pts []geom.Point) {
	if len(pts) == 0 || t.root == nil {
		return
	}
	work := make([]geom.Point, len(pts))
	copy(work, pts)
	buf := make([]geom.Point, len(pts))
	t.root = t.delete(t.root, work, buf)
}

const seqCutoff = 2048

// imbalanced reports whether a (left, right) weight split violates the
// imbalance ratio ρ = opts.Alpha: the heavier side may hold at most
// (0.5 + ρ/2) of the weight. Tiny subtrees are exempt (a single leaf split
// can't be balanced finely).
func (t *Tree) imbalanced(l, r int) bool {
	tot := l + r
	if tot <= 2*t.opts.LeafWrap {
		return false
	}
	hi := l
	if r > hi {
		hi = r
	}
	return float64(hi) > (0.5+t.opts.Alpha/2)*float64(tot)
}

// tightBBox computes the bounding box of pts in parallel.
func (t *Tree) tightBBox(pts []geom.Point) geom.Box {
	dims := t.opts.Dims
	return parallel.Reduce(len(pts), 4096, geom.EmptyBox(dims),
		func(i int) geom.Box { return geom.EmptyBox(dims).Extend(pts[i], dims) },
		func(a, b geom.Box) geom.Box { return a.Union(b, dims) })
}

// --- λ-level splitter skeleton -------------------------------------------

// skelNode is one splitter in the per-round skeleton built on a sample.
// Children are skeleton indexes when >= 0 and ^slotID when negative.
type skelNode struct {
	dim         int
	split       geom.Coord
	left, right int32
}

// skeleton holds up to 2^λ - 1 sample-estimated splitters.
type skeleton struct {
	nodes []skelNode
	slots int
}

// buildSkeleton sorts/partitions the sample recursively, choosing at every
// level the widest dimension and the sample median (clamped so both sides
// of the *sample* are provably non-empty — and the sample is a subset of
// the data, so both data buckets are non-empty too).
func (t *Tree) buildSkeleton(sample []geom.Point, maxLevels int) *skeleton {
	sk := &skeleton{}
	sk.grow(t, sample, maxLevels)
	return sk
}

// grow returns the skeleton-node index (>= 0) or ^slot for an external.
func (sk *skeleton) grow(t *Tree, sample []geom.Point, levels int) int32 {
	dims := t.opts.Dims
	if levels == 0 || len(sample) < 8 {
		s := sk.slots
		sk.slots++
		return int32(^s)
	}
	bb := geom.BoundingBox(sample, dims)
	dim := bb.WidestDim(dims)
	if bb.Side(dim) == 0 {
		// Sample is a single point: no useful splitter here.
		s := sk.slots
		sk.slots++
		return int32(^s)
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i][dim] < sample[j][dim] })
	split := sample[len(sample)/2][dim]
	if split <= bb.Lo[dim] {
		split = bb.Lo[dim] + 1 // both sides stay non-empty in the sample
	}
	// Partition boundary in the sorted sample.
	cut := sort.Search(len(sample), func(i int) bool { return sample[i][dim] >= split })
	idx := int32(len(sk.nodes))
	sk.nodes = append(sk.nodes, skelNode{dim: dim, split: split})
	l := sk.grow(t, sample[:cut], levels-1)
	r := sk.grow(t, sample[cut:], levels-1)
	sk.nodes[idx].left, sk.nodes[idx].right = l, r
	return idx
}

// route walks a point to its external slot.
func (sk *skeleton) route(p geom.Point) int {
	i := int32(0)
	for {
		n := &sk.nodes[i]
		if p[n.dim] < n.split {
			i = n.left
		} else {
			i = n.right
		}
		if i < 0 {
			return int(^i)
		}
	}
}

// build constructs a subtree over pts (scratch buf of equal length).
func (t *Tree) build(pts, buf []geom.Point) *node {
	n := len(pts)
	if n == 0 {
		return nil
	}
	dims := t.opts.Dims
	bbox := t.tightBBox(pts)
	if n <= t.opts.LeafWrap || !hasExtent(bbox, dims) {
		return t.newLeaf(pts, bbox)
	}
	// Sample once per round; λ levels of splitters from it.
	lam := t.opts.SkeletonLevels
	for lam > 1 && 1<<lam > n/t.opts.LeafWrap+1 {
		lam--
	}
	sample := t.samplePoints(pts, 1<<lam*32)
	sk := t.buildSkeleton(sample, lam)
	if len(sk.nodes) == 0 {
		// Degenerate sample despite extent (rare heavy duplication):
		// fall back to an exact midpoint split on the widest dimension.
		return t.buildExactSplit(pts, buf, bbox)
	}
	offsets := parallel.Sieve(pts, buf, sk.slots, sk.route)
	subs := make([]*node, sk.slots)
	rec := func(i int) {
		lo, hi := offsets[i], offsets[i+1]
		if lo < hi {
			subs[i] = t.build(buf[lo:hi], pts[lo:hi])
		}
	}
	if n >= seqCutoff {
		parallel.ForEach(sk.slots, 1, rec)
	} else {
		for i := 0; i < sk.slots; i++ {
			rec(i)
		}
	}
	return t.assemble(sk, 0, subs)
}

// assemble materializes the skeleton's splitters as interior nodes.
func (t *Tree) assemble(sk *skeleton, idx int32, subs []*node) *node {
	if idx < 0 {
		return subs[^idx]
	}
	sn := &sk.nodes[idx]
	l := t.assemble(sk, sn.left, subs)
	r := t.assemble(sk, sn.right, subs)
	return t.makeInterior(sn.dim, sn.split, l, r)
}

// makeInterior combines children under a splitter, eliding it when a side
// is empty and flattening undersized results.
func (t *Tree) makeInterior(dim int, split geom.Coord, l, r *node) *node {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	dims := t.opts.Dims
	nd := &node{
		size:  l.size + r.size,
		bbox:  l.bbox.Union(r.bbox, dims),
		dim:   dim,
		split: split,
		left:  l,
		right: r,
	}
	if nd.size <= t.opts.LeafWrap {
		return t.flatten(nd)
	}
	return nd
}

// buildExactSplit is the duplicates fallback: split at the midpoint of the
// widest dimension (which has extent, so both sides are non-empty after at
// most log(extent) recursions — in practice one).
func (t *Tree) buildExactSplit(pts, buf []geom.Point, bbox geom.Box) *node {
	dims := t.opts.Dims
	dim := bbox.WidestDim(dims)
	split := bbox.Mid(dim) + 1 // left: coord <= mid, right: coord > mid
	offsets := parallel.Sieve(pts, buf, 2, func(p geom.Point) int {
		if p[dim] < split {
			return 0
		}
		return 1
	})
	var l, r *node
	parallel.DoIf(len(pts) >= seqCutoff,
		func() {
			if offsets[1] > 0 {
				l = t.build(buf[:offsets[1]], pts[:offsets[1]])
			}
		},
		func() {
			if offsets[2] > offsets[1] {
				r = t.build(buf[offsets[1]:], pts[offsets[1]:])
			}
		})
	return t.makeInterior(dim, split, l, r)
}

// samplePoints takes a deterministic strided sample of at most want points.
func (t *Tree) samplePoints(pts []geom.Point, want int) []geom.Point {
	if want > len(pts) {
		want = len(pts)
	}
	out := make([]geom.Point, want)
	stride := len(pts) / want
	for i := 0; i < want; i++ {
		out[i] = pts[i*stride]
	}
	return out
}

func (t *Tree) newLeaf(pts []geom.Point, bbox geom.Box) *node {
	own := make([]geom.Point, len(pts))
	copy(own, pts)
	return &node{size: len(own), bbox: bbox, pts: own}
}

// flatten collapses a subtree into one leaf.
func (t *Tree) flatten(nd *node) *node {
	pts := make([]geom.Point, 0, nd.size)
	pts = collect(nd, pts)
	return &node{size: len(pts), bbox: nd.bbox, pts: pts}
}

func collect(nd *node, dst []geom.Point) []geom.Point {
	if nd == nil {
		return dst
	}
	if nd.isLeaf() {
		return append(dst, nd.pts...)
	}
	dst = collect(nd.left, dst)
	return collect(nd.right, dst)
}

// hasExtent reports whether the box has nonzero extent in some dimension
// (false means every point is identical).
func hasExtent(b geom.Box, dims int) bool {
	for d := 0; d < dims; d++ {
		if b.Side(d) > 0 {
			return true
		}
	}
	return false
}

// BatchDiff implements core.Index: deletions apply before insertions, so
// a point moved within one diff is never double-counted.
func (t *Tree) BatchDiff(ins, del []geom.Point) {
	t.BatchDelete(del)
	t.BatchInsert(ins)
}
