package service

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/wal"
)

// startDurable runs a Server with a WAL in dir. The background flusher
// stays off so tests control flush/journal timing; fsync=always makes
// SET/DEL acks flush anyway.
func startDurable(t *testing.T, dir string, opts Options) *Server {
	t.Helper()
	opts.WALDir = dir
	if opts.FlushInterval == 0 {
		opts.FlushInterval = -1
	}
	s, err := NewDurable(newTestIndex(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func shutdownT(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWALRestartDurability is the in-process restart oracle: every
// acknowledged write before a graceful shutdown is visible after a
// restart over the same WAL directory, including deletes, and the
// shutdown snapshot leaves nothing to replay.
func TestWALRestartDurability(t *testing.T) {
	dir := t.TempDir()

	s := startDurable(t, dir, Options{WALFsync: wal.FsyncAlways})
	c := dialT(t, s)
	if err := c.Set("keep", []int64{10, 20}); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("moved", []int64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("moved", []int64{30, 40}); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("dead", []int64{5, 5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Del("dead"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WAL == nil {
		t.Fatal("stats missing wal block")
	}
	if !st.WAL.DurableAcks || st.WAL.Policy != "always" {
		t.Fatalf("wal stats = %+v, want durable acks under always", st.WAL)
	}
	if st.WAL.Seq == 0 || st.WAL.Appends == 0 || st.WAL.Fsyncs == 0 {
		t.Fatalf("wal stats show no journaling: %+v", st.WAL)
	}
	c.Close()
	shutdownT(t, s)

	s2 := startDurable(t, dir, Options{WALFsync: wal.FsyncAlways})
	rec := s2.WALRecovered()
	if rec.Objects != 2 {
		t.Fatalf("recovered %d objects, want 2 (keep, moved)", rec.Objects)
	}
	if rec.TruncatedBytes != 0 {
		t.Fatalf("clean shutdown left a torn tail: %d bytes truncated", rec.TruncatedBytes)
	}
	// The shutdown snapshot folded everything: nothing to replay.
	if rec.Records != 0 {
		t.Fatalf("clean shutdown left %d log records to replay, want 0", rec.Records)
	}
	c2 := dialT(t, s2)
	if p, ok, err := c2.Get("keep"); err != nil || !ok || p[0] != 10 || p[1] != 20 {
		t.Fatalf("Get(keep) = %v, %t, %v", p, ok, err)
	}
	if p, ok, err := c2.Get("moved"); err != nil || !ok || p[0] != 30 || p[1] != 40 {
		t.Fatalf("Get(moved) = %v, %t, %v; want last write", p, ok, err)
	}
	if _, ok, err := c2.Get("dead"); err != nil || ok {
		t.Fatalf("deleted object resurrected: found=%t err=%v", ok, err)
	}
	// Recovered state serves queries, not just GETs.
	hits, err := c2.Within([]int64{0, 0}, []int64{100, 100})
	if err != nil || len(hits) != 2 {
		t.Fatalf("Within over recovered state = %v, %v; want 2 hits", hits, err)
	}
}

// TestWALTornTailRestart corrupts the log tail between two server
// generations the way a crash mid-append would, and asserts the next
// boot truncates the tear and serves everything before it.
func TestWALTornTailRestart(t *testing.T) {
	dir := t.TempDir()

	s := startDurable(t, dir, Options{WALFsync: wal.FsyncAlways, WALSnapshotInterval: time.Hour})
	c := dialT(t, s)
	for i, id := range []string{"a", "b", "c"} {
		if err := c.Set(id, []int64{int64(i + 1), int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	// Tear off the log's final bytes without the shutdown snapshot
	// (which would truncate the log): simulate the crash by killing the
	// snapshot before it happens — drop the WAL dir's log tail directly.
	path := filepath.Join(dir, "wal.log")
	pre, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	shutdownT(t, s)

	// Rewind the log to its pre-shutdown content minus 3 bytes (a torn
	// final record) and remove the shutdown snapshot so recovery must
	// replay the log.
	if err := os.WriteFile(path, pre[:len(pre)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "wal.snap")); err != nil {
		t.Fatal(err)
	}

	s2 := startDurable(t, dir, Options{WALFsync: wal.FsyncAlways})
	rec := s2.WALRecovered()
	if rec.TruncatedBytes == 0 {
		t.Fatal("torn tail not detected")
	}
	if rec.Objects != 2 || rec.Records != 2 {
		t.Fatalf("recovered %d objects from %d records, want 2 from 2 (c torn off)", rec.Objects, rec.Records)
	}
	c2 := dialT(t, s2)
	for i, id := range []string{"a", "b"} {
		if p, ok, err := c2.Get(id); err != nil || !ok || p[0] != int64(i+1) {
			t.Fatalf("Get(%s) = %v, %t, %v", id, p, ok, err)
		}
	}
	if _, ok, _ := c2.Get("c"); ok {
		t.Fatal("write after the tear survived — replayed garbage")
	}
	// The truncated log accepts new writes and they survive the next
	// generation.
	if err := c2.Set("c", []int64{9, 9}); err != nil {
		t.Fatal(err)
	}
	shutdownT(t, s2)
	s3 := startDurable(t, dir, Options{WALFsync: wal.FsyncAlways})
	c3 := dialT(t, s3)
	if p, ok, err := c3.Get("c"); err != nil || !ok || p[0] != 9 {
		t.Fatalf("post-recovery write lost: %v, %t, %v", p, ok, err)
	}
}

// TestWALSnapshotTruncatesLog drives enough windows to grow the log,
// snapshots, and asserts the log was rotated and a restart replays the
// snapshot rather than records.
func TestWALSnapshotTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	s := startDurable(t, dir, Options{WALFsync: wal.FsyncNever, WALSnapshotInterval: time.Hour})
	c := dialT(t, s)
	for i := range 10 {
		if err := c.Set("id", []int64{int64(i), 0}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SnapshotWAL(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.WAL.Snapshots != 1 || st.WAL.SnapshotSeq != st.WAL.Seq {
		t.Fatalf("snapshot not taken or stale: %+v", st.WAL)
	}
	shutdownT(t, s)

	s2 := startDurable(t, dir, Options{WALFsync: wal.FsyncNever})
	rec := s2.WALRecovered()
	if rec.Objects != 1 || rec.Records != 0 {
		t.Fatalf("recovery = %+v, want 1 object from snapshot, 0 replayed records", rec)
	}
	c2 := dialT(t, s2)
	if p, ok, err := c2.Get("id"); err != nil || !ok || p[0] != 9 {
		t.Fatalf("Get(id) = %v, %t, %v; want last write 9", p, ok, err)
	}
}

// TestWALFailureRefusesAcks breaks the log out from under a durable
// server and asserts the contract: the first failed journal append
// flips the server unhealthy, SET acks turn into unavailable errors,
// and the Fatal channel fires.
func TestWALFailureRefusesAcks(t *testing.T) {
	dir := t.TempDir()
	s := startDurable(t, dir, Options{WALFsync: wal.FsyncAlways})
	c := dialT(t, s)
	if err := c.Set("a", []int64{1, 1}); err != nil {
		t.Fatal(err)
	}
	// Close the log behind the server's back: the next journal append
	// returns ErrClosed, exactly like a dead disk would error.
	s.wal.Close()
	err := c.Set("b", []int64{2, 2})
	if err == nil {
		t.Fatal("SET acknowledged after the WAL failed")
	}
	resp, ok := err.(*ServerError)
	if !ok || resp.Code != CodeUnavailable {
		t.Fatalf("error = %v, want code %q", err, CodeUnavailable)
	}
	select {
	case ferr := <-s.Fatal():
		if ferr == nil {
			t.Fatal("nil fatal error")
		}
	case <-time.After(time.Second):
		t.Fatal("Fatal channel never fired")
	}
	st := s.Stats()
	if !st.WAL.Failed || st.WAL.JournalErrors == 0 {
		t.Fatalf("stats do not show the failure: %+v", st.WAL)
	}
}

// TestNewDurableRejectsCorruptSnapshot pins the hard-error path: a
// snapshot that fails its checksum must fail construction loudly, not
// boot an empty server over a directory full of data.
func TestNewDurableRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := startDurable(t, dir, Options{WALFsync: wal.FsyncAlways})
	c := dialT(t, s)
	if err := c.Set("a", []int64{1, 1}); err != nil {
		t.Fatal(err)
	}
	shutdownT(t, s) // writes the shutdown snapshot

	path := filepath.Join(dir, "wal.snap")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDurable(newTestIndex(), Options{WALDir: dir, FlushInterval: -1}); err == nil {
		t.Fatal("NewDurable accepted a corrupt snapshot")
	}
}
