package service

// Failover chaos harness: RunFailover spawns a real psid cluster —
// a leader plus hot standbys, each its own OS process with its own WAL
// directory — drives write and read churn against it, and performs
// repeated violent handovers: kill -9 the leader mid-churn, PROMOTE
// the next standby in place, FOLLOW-re-point the survivors, and
// restart the victim as a standby of the new timeline. Throughout,
// every churn connection records its unavailability windows (first
// error to first success), and every acknowledged write is tracked so
// the final topology can be audited with VerifyFinal. This is the
// serving-path measurement behind docs/replication.md's failover
// contract: writes are unavailable for roughly the promote window,
// reads on survivors are not, and no write acknowledged by a live
// timeline is ever lost.
//
// The handover is deliberately sequenced the way an operator (or an
// external controller) would run it:
//
//  1. writers pause between ops, so the acked frontier is static;
//  2. the promote target is confirmed caught up to that frontier —
//     promoting a lagging follower is the one way to lose acked
//     writes under asynchronous replication, so the harness refuses
//     to measure that configuration (docs/replication.md, "What
//     PROMOTE does not do");
//  3. the leader is SIGKILLed and writers resume — against a node
//     that is still a follower, so the write-unavailability clock
//     starts honestly at the first refused write;
//  4. PROMOTE flips the standby in place, FOLLOW re-points the other
//     survivors, and the victim restarts as a standby of the new
//     leader (its stale term forces a clean bootstrap);
//  5. the first acknowledged write closes the window.
//
// Readers are never paused and are re-pointed at the next leader
// before the kill, so their windows isolate what the in-place PROMOTE
// itself costs read traffic (nothing, when it works).

import (
	"encoding/csv"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FailoverOptions configures one failover chaos run. Zero fields take
// defaults.
type FailoverOptions struct {
	PsidBin string // psid binary to spawn (required)
	BaseDir string // scratch directory for the per-node WALs (required)

	Nodes     int // cluster size, leader + standbys; default 3, min 2
	Handovers int // kill-promote rounds; default 5
	Writers   int // concurrent writer connections; default 4
	Readers   int // concurrent reader connections; default 2

	// RoundDur is the churn time between handovers; default 1s.
	RoundDur time.Duration
	// IDsPerWriter is each writer's private object-ID space; default 200.
	IDsPerWriter int

	// ServerOut receives the spawned servers' stdout/stderr; nil
	// discards it.
	ServerOut io.Writer
	// Logf, when set, narrates the orchestration (one line per
	// handover step).
	Logf func(format string, args ...any)
}

func (o FailoverOptions) withDefaults() (FailoverOptions, error) {
	if o.PsidBin == "" {
		return o, fmt.Errorf("psiload: failover needs the psid binary path")
	}
	if o.BaseDir == "" {
		return o, fmt.Errorf("psiload: failover needs a scratch directory")
	}
	if o.Nodes == 0 {
		o.Nodes = 3
	}
	if o.Nodes < 2 {
		return o, fmt.Errorf("psiload: failover needs at least 2 nodes, got %d", o.Nodes)
	}
	if o.Handovers <= 0 {
		o.Handovers = 5
	}
	if o.Writers <= 0 {
		o.Writers = 4
	}
	if o.Readers <= 0 {
		o.Readers = 2
	}
	if o.RoundDur <= 0 {
		o.RoundDur = time.Second
	}
	if o.IDsPerWriter <= 0 {
		o.IDsPerWriter = 200
	}
	return o, nil
}

// FailoverReport aggregates a failover chaos run. The window slices
// are sorted ascending.
type FailoverReport struct {
	Nodes     int
	Handovers int
	Writers   int
	Readers   int
	Elapsed   time.Duration

	// FinalTerm is the final leader's term — one PROMOTE per
	// handover, so it must equal Handovers.
	FinalTerm uint64
	// Verified counts the acknowledged writes audited (and found)
	// on the final leader.
	Verified int

	WriteOps, WriteErrs uint64 // write attempts / failed attempts (retries during windows)
	ReadOps, ReadErrs   uint64

	// WriteWindows and ReadWindows are the observed unavailability
	// windows: for each client, the span from its first failed op to
	// its next successful one.
	WriteWindows []time.Duration
	ReadWindows  []time.Duration
}

// quantileDur is the nearest-rank quantile of a sorted window slice.
func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

const ms = float64(time.Millisecond)

// Format pretty-prints the report.
func (r *FailoverReport) Format(w io.Writer) {
	fmt.Fprintf(w, "psiload failover: %d nodes, %d handovers (final term %d), %d writers + %d readers, %.2fs\n",
		r.Nodes, r.Handovers, r.FinalTerm, r.Writers, r.Readers, r.Elapsed.Seconds())
	fmt.Fprintf(w, "verified %d acknowledged writes on the final leader\n", r.Verified)
	formatWindows(w, "write", r.WriteWindows, r.WriteOps, r.WriteErrs)
	formatWindows(w, "read ", r.ReadWindows, r.ReadOps, r.ReadErrs)
}

func formatWindows(w io.Writer, kind string, windows []time.Duration, ops, errs uint64) {
	if len(windows) == 0 {
		fmt.Fprintf(w, "%s unavailability: none (%d ops, %d errors)\n", kind, ops, errs)
		return
	}
	fmt.Fprintf(w, "%s unavailability: %d windows  p50=%.1fms  p99=%.1fms  max=%.1fms  (%d ops, %d retried)\n",
		kind, len(windows),
		float64(quantileDur(windows, 0.50))/ms,
		float64(quantileDur(windows, 0.99))/ms,
		float64(windows[len(windows)-1])/ms,
		ops, errs)
}

// WriteCSV emits the report as machine-readable rows: one row per
// observed window, then the p50/p99/max summaries and run counters —
// the failover analogue of LoadReport.WriteCSV, greppable by kind.
func (r *FailoverReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "sample", "value"}); err != nil {
		return err
	}
	rows := make([][]string, 0, len(r.WriteWindows)+len(r.ReadWindows)+16)
	for i, d := range r.WriteWindows {
		rows = append(rows, []string{"write_window_ms", fmt.Sprintf("%d", i), fmt.Sprintf("%.2f", float64(d)/ms)})
	}
	for i, d := range r.ReadWindows {
		rows = append(rows, []string{"read_window_ms", fmt.Sprintf("%d", i), fmt.Sprintf("%.2f", float64(d)/ms)})
	}
	for _, s := range []struct {
		kind    string
		windows []time.Duration
	}{{"write_unavail_ms", r.WriteWindows}, {"read_unavail_ms", r.ReadWindows}} {
		rows = append(rows,
			[]string{s.kind, "count", fmt.Sprintf("%d", len(s.windows))},
			[]string{s.kind, "p50", fmt.Sprintf("%.2f", float64(quantileDur(s.windows, 0.50))/ms)},
			[]string{s.kind, "p99", fmt.Sprintf("%.2f", float64(quantileDur(s.windows, 0.99))/ms)},
		)
		if n := len(s.windows); n > 0 {
			rows = append(rows, []string{s.kind, "max", fmt.Sprintf("%.2f", float64(s.windows[n-1])/ms)})
		}
	}
	rows = append(rows,
		[]string{"write", "ops", fmt.Sprintf("%d", r.WriteOps)},
		[]string{"write", "errors", fmt.Sprintf("%d", r.WriteErrs)},
		[]string{"read", "ops", fmt.Sprintf("%d", r.ReadOps)},
		[]string{"read", "errors", fmt.Sprintf("%d", r.ReadErrs)},
		[]string{"failover", "handovers", fmt.Sprintf("%d", r.Handovers)},
		[]string{"failover", "final_term", fmt.Sprintf("%d", r.FinalTerm)},
		[]string{"failover", "verified", fmt.Sprintf("%d", r.Verified)},
	)
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// failNode is one psid process in the chaos cluster. Its command and
// replication addresses are reserved up front and survive restarts, so
// re-pointing and resurrection never need to re-discover ports.
type failNode struct {
	idx      int
	cmdAddr  string
	replAddr string
	walDir   string
	proc     *exec.Cmd
}

// spawn (re-)execs a node. replicaOf "" boots it as the leader;
// otherwise it boots as a hot standby of that replication address
// (follower now, PROMOTE target later — its -repl listener stays
// unbound until promotion).
func (n *failNode) spawn(psidBin, replicaOf string, out io.Writer) error {
	args := []string{
		"-addr", n.cmdAddr, "-http", "",
		"-wal", n.walDir, "-fsync", "always",
		"-maxbatch", "64", "-drain", "10s",
		"-repl", n.replAddr,
	}
	if replicaOf != "" {
		args = append(args, "-replica-of", replicaOf, "-repl-id", fmt.Sprintf("node-%d", n.idx))
	}
	cmd := exec.Command(psidBin, args...)
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("psiload: starting node %d: %w", n.idx, err)
	}
	n.proc = cmd
	return nil
}

// kill SIGKILLs the node — no drain, no WAL close; the crash shape
// under test.
func (n *failNode) kill() {
	if n.proc != nil {
		n.proc.Process.Kill()
		n.proc.Wait()
		n.proc = nil
	}
}

// failoverAwait polls a node's STATS until ok accepts the payload.
func failoverAwait(addr string, timeout time.Duration, what string, ok func(*StatsPayload) bool) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		c, err := Dial(addr)
		if err == nil {
			st, serr := c.Stats()
			c.Close()
			if serr == nil && ok(&st) {
				return nil
			}
			err = serr
		}
		lastErr = err
		if time.Now().After(deadline) {
			return fmt.Errorf("psiload: %s (%s) never happened: %v", what, addr, lastErr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// failoverAdmin runs one admin exchange on a fresh connection.
func failoverAdmin(addr string, fn func(*Client) error) error {
	c, err := Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	return fn(c)
}

// churnStats is one churn connection's tally. Owned by its goroutine
// until the final wg.Wait.
type churnStats struct {
	ops, errs uint64
	windows   []time.Duration
	final     map[string][]int64
}

// record folds one op outcome into the tally, opening or closing an
// unavailability window at the error/success edges.
func (st *churnStats) record(ok bool, winStart *time.Time) {
	st.ops++
	if ok {
		if !winStart.IsZero() {
			st.windows = append(st.windows, time.Since(*winStart))
			*winStart = time.Time{}
		}
		return
	}
	st.errs++
	if winStart.IsZero() {
		*winStart = time.Now()
	}
}

// RunFailover runs the failover chaos mix and returns its report. On
// an oracle failure (a lost acknowledged write, a wrong final term) it
// returns the report alongside the error so the caller can still print
// the measurements.
func RunFailover(opts FailoverOptions) (*FailoverReport, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	out := o.ServerOut
	if out == nil {
		out = io.Discard
	}
	const readyTimeout = 30 * time.Second

	// Reserve every node's command and replication port up front (all
	// listeners held at once so the kernel can't hand out duplicates),
	// then release them for the processes to bind.
	nodes := make([]*failNode, o.Nodes)
	var reserved []net.Listener
	for i := range nodes {
		walDir := filepath.Join(o.BaseDir, fmt.Sprintf("node%d", i))
		if err := os.MkdirAll(walDir, 0o755); err != nil {
			return nil, err
		}
		n := &failNode{idx: i, walDir: walDir}
		for _, slot := range []*string{&n.cmdAddr, &n.replAddr} {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			*slot = ln.Addr().String()
			reserved = append(reserved, ln)
		}
		nodes[i] = n
	}
	for _, ln := range reserved {
		ln.Close()
	}
	defer func() {
		for _, n := range nodes {
			n.kill()
		}
	}()

	// Boot: node 0 leads, everyone else is a hot standby.
	if err := nodes[0].spawn(o.PsidBin, "", out); err != nil {
		return nil, err
	}
	if err := failoverAwait(nodes[0].cmdAddr, readyTimeout, "leader boot", func(st *StatsPayload) bool {
		return st.Repl != nil && st.Repl.Role == "leader"
	}); err != nil {
		return nil, err
	}
	for _, n := range nodes[1:] {
		if err := n.spawn(o.PsidBin, nodes[0].replAddr, out); err != nil {
			return nil, err
		}
	}
	for _, n := range nodes[1:] {
		if err := failoverAwait(n.cmdAddr, readyTimeout, "standby boot", func(st *StatsPayload) bool {
			return st.Repl != nil && st.Repl.Follower != nil && st.Repl.Follower.Connected
		}); err != nil {
			return nil, err
		}
	}
	logf("cluster up: %d nodes, leader node0 on %s", o.Nodes, nodes[0].cmdAddr)

	// Shared churn state. leaderAddr is where writes go, readAddr is
	// where reads go; the gate pauses writers (only) between ops while
	// a handover captures the acked frontier.
	var leaderAddr, readAddr atomic.Value
	leaderAddr.Store(nodes[0].cmdAddr)
	readAddr.Store(nodes[1].cmdAddr)
	var gate sync.RWMutex
	var stop atomic.Bool

	wstats := make([]churnStats, o.Writers)
	rstats := make([]churnStats, o.Readers)
	var wg sync.WaitGroup
	for w := range o.Writers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := &wstats[w]
			st.final = make(map[string][]int64, o.IDsPerWriter)
			var c *Client
			var winStart time.Time
			for i := 0; !stop.Load(); i++ {
				gate.RLock()
				id := fmt.Sprintf("w%d-%d", w, i%o.IDsPerWriter)
				p := []int64{int64(w*1_000_000 + i), int64(i % 9973)}
				del := i%7 == 3
				ok := false
				if c == nil {
					c, _ = Dial(leaderAddr.Load().(string))
				}
				if c != nil {
					var resp Response
					var err error
					if del {
						resp, err = c.Do(Request{Op: OpDel, ID: id})
					} else {
						resp, err = c.Do(Request{Op: OpSet, ID: id, P: p})
					}
					switch {
					case err != nil: // transport: the conn is dead, redial next try
						c.Close()
						c = nil
					case resp.OK:
						ok = true
						if del {
							delete(st.final, id)
						} else {
							st.final[id] = p
						}
					}
					// !resp.OK without a transport error is readonly/
					// fenced: the target is not (yet) the leader. Keep
					// retrying; the window stays open.
				}
				st.record(ok, &winStart)
				if !ok {
					time.Sleep(200 * time.Microsecond)
				}
				gate.RUnlock()
			}
			if c != nil {
				c.Close()
			}
		}()
	}
	for r := range o.Readers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := &rstats[r]
			var c *Client
			var connAddr string
			var winStart time.Time
			for i := 0; !stop.Load(); i++ {
				// Readers are not gated: read availability through the
				// handover is exactly what they measure. They chase
				// readAddr, which the orchestrator moves off the victim
				// before the kill — a live switch, not an error.
				target := readAddr.Load().(string)
				if c != nil && connAddr != target {
					c.Close()
					c = nil
				}
				ok := false
				if c == nil {
					c, _ = Dial(target)
					connAddr = target
				}
				if c != nil {
					q := []int64{int64((i % 1000) * 1000), int64(r * 100)}
					resp, err := c.Do(Request{Op: OpNearby, P: q, K: 10})
					if err != nil {
						c.Close()
						c = nil
					} else {
						ok = resp.OK
					}
				}
				st.record(ok, &winStart)
				if !ok {
					time.Sleep(200 * time.Microsecond)
				}
			}
			if c != nil {
				c.Close()
			}
		}()
	}

	// The handover rounds.
	begin := time.Now()
	leaderIdx := 0
	fail := func(err error) (*FailoverReport, error) {
		stop.Store(true)
		wg.Wait()
		return nil, err
	}
	for round := 1; round <= o.Handovers; round++ {
		next := (leaderIdx + 1) % o.Nodes
		time.Sleep(o.RoundDur)

		// Move readers off the victim while it is still alive.
		readAddr.Store(nodes[next].cmdAddr)

		// Pause writers between ops: the acked frontier freezes, and
		// the promote target must reach it — the no-lost-acks
		// precondition of PROMOTE.
		gate.Lock()
		var head uint64
		err := failoverAdmin(nodes[leaderIdx].cmdAddr, func(c *Client) error {
			st, err := c.Stats()
			if err != nil {
				return err
			}
			if st.Repl == nil || st.Repl.Leader == nil {
				return fmt.Errorf("node%d reports no leader block", leaderIdx)
			}
			head = st.Repl.Leader.LastSeq
			return nil
		})
		if err != nil {
			gate.Unlock()
			return fail(err)
		}
		if err := failoverAwait(nodes[next].cmdAddr, readyTimeout, "standby catch-up", func(st *StatsPayload) bool {
			f := st.Repl.Follower
			return f != nil && f.AppliedSeq == head && f.LagWindows == 0
		}); err != nil {
			gate.Unlock()
			return fail(fmt.Errorf("handover %d: %w", round, err))
		}

		logf("handover %d: kill -9 node%d at seq %d, promoting node%d", round, leaderIdx, head, next)
		nodes[leaderIdx].kill()
		leaderAddr.Store(nodes[next].cmdAddr)
		gate.Unlock() // writers resume against a still-follower: the window opens

		if err := failoverAdmin(nodes[next].cmdAddr, func(c *Client) error {
			return c.Promote("")
		}); err != nil {
			return fail(fmt.Errorf("handover %d: PROMOTE node%d: %w", round, next, err))
		}
		for i, n := range nodes {
			if i == next || i == leaderIdx {
				continue
			}
			if err := failoverAdmin(n.cmdAddr, func(c *Client) error {
				return c.Follow(nodes[next].replAddr)
			}); err != nil {
				return fail(fmt.Errorf("handover %d: FOLLOW node%d -> node%d: %w", round, i, next, err))
			}
		}
		// Resurrect the victim as a standby of the new timeline. Its
		// WAL still carries the old term, so it bootstraps cleanly.
		if err := nodes[leaderIdx].spawn(o.PsidBin, nodes[next].replAddr, out); err != nil {
			return fail(err)
		}
		if err := failoverAwait(nodes[leaderIdx].cmdAddr, readyTimeout, "victim rejoin", func(st *StatsPayload) bool {
			return st.Repl != nil && st.Repl.Follower != nil && st.Repl.Follower.Connected
		}); err != nil {
			return fail(fmt.Errorf("handover %d: %w", round, err))
		}
		leaderIdx = next
	}

	// One more churn slice on the final topology, then quiesce.
	time.Sleep(o.RoundDur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(begin)

	rep := &FailoverReport{
		Nodes:     o.Nodes,
		Handovers: o.Handovers,
		Writers:   o.Writers,
		Readers:   o.Readers,
		Elapsed:   elapsed,
	}
	final := make(map[string][]int64)
	for i := range wstats {
		rep.WriteOps += wstats[i].ops
		rep.WriteErrs += wstats[i].errs
		rep.WriteWindows = append(rep.WriteWindows, wstats[i].windows...)
		for id, p := range wstats[i].final {
			final[id] = p
		}
	}
	for i := range rstats {
		rep.ReadOps += rstats[i].ops
		rep.ReadErrs += rstats[i].errs
		rep.ReadWindows = append(rep.ReadWindows, rstats[i].windows...)
	}
	sort.Slice(rep.WriteWindows, func(i, j int) bool { return rep.WriteWindows[i] < rep.WriteWindows[j] })
	sort.Slice(rep.ReadWindows, func(i, j int) bool { return rep.ReadWindows[i] < rep.ReadWindows[j] })
	rep.Verified = len(final)

	// The oracle: the final leader holds every acknowledged write, at
	// the exact acknowledged position, and sits at one term per
	// handover.
	finalLeader := nodes[leaderIdx]
	err = failoverAdmin(finalLeader.cmdAddr, func(c *Client) error {
		st, err := c.Stats()
		if err != nil {
			return err
		}
		if st.Repl == nil {
			return fmt.Errorf("final leader reports no replication block")
		}
		rep.FinalTerm = st.Repl.Term
		if st.Repl.Role != "leader" {
			return fmt.Errorf("final topology: node%d role %q, want leader", leaderIdx, st.Repl.Role)
		}
		if st.Repl.Term != uint64(o.Handovers) {
			return fmt.Errorf("final topology: term %d after %d handovers, want %d",
				st.Repl.Term, o.Handovers, o.Handovers)
		}
		return nil
	})
	if err != nil {
		return rep, err
	}
	if err := VerifyFinal(finalLeader.cmdAddr, final); err != nil {
		return rep, err
	}
	logf("final topology verified: node%d leads at term %d, %d acknowledged writes present",
		leaderIdx, rep.FinalTerm, rep.Verified)
	return rep, nil
}
