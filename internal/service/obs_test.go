package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/sfc"
	"repro/internal/shard"
	"repro/internal/spactree"
)

// newObsStack builds the full observable serving stack the way cmd/psid
// does: one registry threaded through the shard layer and the server.
func newObsStack(t *testing.T, opts Options) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	idx := shard.New(shard.Options{
		Dims:     2,
		Universe: testUniverse(),
		Shards:   4,
		Strategy: shard.HilbertRange,
		New:      func(dims int, u geom.Box) core.Index { return spactree.NewSPaC(sfc.Hilbert, dims, u) },
		Obs:      reg,
	})
	opts.Obs = reg
	if opts.FlushInterval == 0 {
		opts.FlushInterval = -1
	}
	s := New(idx, opts)
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, reg
}

func httpGet(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestMetricsEndpoint drives traffic through a fully observable stack
// and checks /metrics exposes the cross-layer series: per-command
// latency histograms, collection flush counters, per-shard load, epoch
// gauges — in valid, parseable Prometheus text.
func TestMetricsEndpoint(t *testing.T) {
	s, _ := newObsStack(t, Options{})
	c := dialT(t, s)
	for i, p := range []([]int64){{10, 10}, {900, 900}, {50, 800}, {800, 60}} {
		if err := c.Set(string(rune('a'+i)), p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Nearby([]int64{500, 500}, 4); err != nil {
		t.Fatal(err)
	}

	code, ctype, body := httpGet(t, "http://"+s.HTTPAddr().String()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ctype)
	}
	samples, err := obs.ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, body)
	}
	checks := map[string]float64{
		`psi_query_duration_ns_count{op="SET"}`:          4,
		`psi_query_duration_ns_count{op="NEARBY"}`:       1,
		`psi_flush_total{layer="collection"}`:            1,
		`psi_flush_ops_netted_total{layer="collection"}`: 4,
		`psi_objects{layer="collection"}`:                4,
	}
	for key, min := range checks {
		if v, ok := samples[key]; !ok || v < min {
			t.Errorf("%s = %v (present=%v), want >= %v", key, v, ok, min)
		}
	}
	// Snapshot reads: the epoch advanced past 0 and per-shard load
	// series exist for all four shards.
	if samples[`psi_epoch{layer="collection"}`] < 1 {
		t.Errorf("epoch = %v, want >= 1", samples[`psi_epoch{layer="collection"}`])
	}
	var shardSeries int
	for k := range samples {
		if strings.HasPrefix(k, `psi_shard_ops_total{shard="`) {
			shardSeries++
		}
	}
	if shardSeries != 4 {
		t.Errorf("found %d psi_shard_ops_total series, want 4", shardSeries)
	}
	if !strings.Contains(body, "# TYPE psi_query_duration_ns histogram") {
		t.Error("missing histogram TYPE line")
	}
}

// TestSlowQueryLog gates every command into the slow log (threshold
// 1ns) and checks a fanned-out NEARBY lands in the ring with its true
// cost: all four shards visited, every live object scanned as a
// candidate, and the pinned epoch.
func TestSlowQueryLog(t *testing.T) {
	s, _ := newObsStack(t, Options{SlowLog: time.Nanosecond})
	c := dialT(t, s)
	pts := []([]int64){{10, 10}, {900, 900}, {50, 800}, {800, 60}, {400, 400}, {600, 300}}
	for i, p := range pts {
		if err := c.Set(string(rune('a'+i)), p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// k >= objects: the KNN must expand every shard and scan everything.
	if _, err := c.Nearby([]int64{500, 500}, 100); err != nil {
		t.Fatal(err)
	}

	resp, err := c.Do(Request{Op: OpSlowlog})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Slow) == 0 {
		t.Fatalf("SLOWLOG = %+v, want entries", resp)
	}
	var nearby *obs.SlowQuery
	for i := range resp.Slow {
		if resp.Slow[i].Cmd == OpNearby {
			nearby = &resp.Slow[i]
			break
		}
	}
	if nearby == nil {
		t.Fatalf("no NEARBY entry in %+v", resp.Slow)
	}
	if nearby.Shards != 4 {
		t.Errorf("shards = %d, want 4 (k >= objects expands every shard)", nearby.Shards)
	}
	if nearby.Candidates != len(pts) {
		t.Errorf("candidates = %d, want %d", nearby.Candidates, len(pts))
	}
	if nearby.Epoch < 1 {
		t.Errorf("epoch = %d, want >= 1 (snapshot reads)", nearby.Epoch)
	}
	if nearby.DurNs <= 0 {
		t.Errorf("dur_ns = %d, want > 0", nearby.DurNs)
	}
	if !strings.Contains(nearby.Args, `"NEARBY"`) {
		t.Errorf("args = %q, want the raw request line", nearby.Args)
	}
	// Newest first.
	for i := 1; i < len(resp.Slow); i++ {
		if resp.Slow[i-1].Seq < resp.Slow[i].Seq {
			t.Fatalf("slow entries not newest-first: %d before %d",
				resp.Slow[i-1].Seq, resp.Slow[i].Seq)
		}
	}

	// The HTTP mirror serves the same ring.
	code, ctype, body := httpGet(t, "http://"+s.HTTPAddr().String()+"/debug/slowlog")
	if code != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("/debug/slowlog = %d %q", code, ctype)
	}
	var entries []obs.SlowQuery
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("/debug/slowlog body %s: %v", body, err)
	}
	if len(entries) == 0 {
		t.Fatal("/debug/slowlog is empty")
	}
}

// TestSlowlogDisabled pins both disabled-mode surfaces: the SLOWLOG
// command errors with bad_request, and /debug/slowlog serves an empty
// array rather than failing.
func TestSlowlogDisabled(t *testing.T) {
	s, _ := newObsStack(t, Options{})
	c := dialT(t, s)
	resp, err := c.Do(Request{Op: OpSlowlog})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeBadRequest {
		t.Fatalf("SLOWLOG on a disabled log = %+v, want bad_request", resp)
	}
	code, _, body := httpGet(t, "http://"+s.HTTPAddr().String()+"/debug/slowlog")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("/debug/slowlog = %d %q, want 200 []", code, body)
	}
}

// TestFlushTraceEndpoint checks /debug/flushtrace serves the recorded
// spans as JSON with per-stage fields, and serves [] before any flush.
func TestFlushTraceEndpoint(t *testing.T) {
	s, _ := newObsStack(t, Options{})
	base := "http://" + s.HTTPAddr().String()
	code, _, body := httpGet(t, base+"/debug/flushtrace")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("pre-flush /debug/flushtrace = %d %q, want 200 []", code, body)
	}

	c := dialT(t, s)
	if err := c.Set("a", []int64{10, 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	_, _, body = httpGet(t, base+"/debug/flushtrace")
	var spans []map[string]any
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/debug/flushtrace body %s: %v", body, err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans after a flush")
	}
	layers := map[string]bool{}
	for _, sp := range spans {
		layers[sp["layer"].(string)] = true
		for _, field := range []string{"seq", "apply_ns", "raw_ops", "netted_ops", "epoch"} {
			if _, ok := sp[field]; !ok {
				t.Fatalf("span %v missing %q", sp, field)
			}
		}
	}
	if !layers["collection"] || !layers["shard"] {
		t.Fatalf("span layers = %v, want collection and shard", layers)
	}
}
