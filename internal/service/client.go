package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
)

// Client is a minimal psid protocol client: one TCP connection, one
// request/response in flight at a time. Methods are safe for concurrent
// use (a mutex serializes the wire exchange); open several Clients for
// parallelism — the server is one goroutine per connection, so
// connections are the unit of serving concurrency. Exception: a client
// switched into buffer-reuse mode (SetReuse) must be owned by a single
// goroutine, because returned data is only valid until its next call.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	lineBuf []byte // long-line accumulation scratch, guarded by mu

	// reuse-mode state (SetReuse): the request encode buffer and the
	// response struct whose slice fields are recycled across calls.
	reuse bool
	wbuf  []byte
	resp  Response
}

// SetReuse switches the client into buffer-reuse mode: requests are
// encoded append-style into a retained buffer and responses are decoded
// into a retained Response whose Hits/P backing arrays are recycled, so
// a warm request loop allocates only the decoded strings. The trade-off:
// in reuse mode the data returned by Do (and the helpers built on it —
// Nearby/Within hit slices, Get coordinates) is valid only until the
// next call on this client; callers that retain results must copy them
// first. Off by default.
func (c *Client) SetReuse(on bool) {
	c.mu.Lock()
	c.reuse = on
	c.mu.Unlock()
}

// clientMaxLine bounds one response line client-side. WITHIN over a huge
// box returns every hit on one line, so this is generous.
const clientMaxLine = 64 << 20

// Dial connects to a psid server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("psid: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, br: bufio.NewReaderSize(conn, 64<<10)}, nil
}

// Close closes the connection. Pending server-side ops from acknowledged
// SET/DEL calls still commit at the server's next flush.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request line and reads the matching response line. It
// returns transport errors; protocol errors come back as a Response with
// OK false (convert with Response.AsError).
func (c *Client) Do(req Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var payload []byte
	if c.reuse {
		c.wbuf = appendRequest(c.wbuf[:0], &req)
		payload = c.wbuf
	} else {
		payload = marshalLine(req)
	}
	if _, err := c.conn.Write(payload); err != nil {
		return Response{}, fmt.Errorf("psid: write: %w", err)
	}
	line, tooLong, err := readLine(c.br, clientMaxLine, &c.lineBuf)
	// One huge WITHIN response must not pin its accumulation buffer for
	// the connection's lifetime: drop oversized scratch once the line has
	// been decoded (the capacity cap keeps steady-state reads recycling).
	defer func() {
		if cap(c.lineBuf) > 1<<20 {
			c.lineBuf = nil
		}
	}()
	if err != nil {
		return Response{}, fmt.Errorf("psid: read: %w", err)
	}
	if tooLong {
		return Response{}, fmt.Errorf("psid: response line exceeds %d bytes", clientMaxLine)
	}
	if c.reuse {
		// Reset scalar fields but keep the slice capacity: absent JSON
		// fields are left untouched by Unmarshal, so stale data must be
		// cleared here, while present array fields decode into the
		// recycled backing arrays.
		c.resp.OK, c.resp.Code, c.resp.Err = false, "", ""
		c.resp.Leader = ""
		c.resp.Found, c.resp.Applied, c.resp.Stats = false, 0, nil
		c.resp.P = c.resp.P[:0]
		c.resp.Hits = c.resp.Hits[:0]
		if err := json.Unmarshal(line, &c.resp); err != nil {
			return Response{}, fmt.Errorf("psid: decode response: %w", err)
		}
		return c.resp, nil
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return Response{}, fmt.Errorf("psid: decode response: %w", err)
	}
	return resp, nil
}

// do runs a request and folds protocol errors into the error return.
func (c *Client) do(req Request) (Response, error) {
	resp, err := c.Do(req)
	if err != nil {
		return resp, err
	}
	return resp, resp.AsError()
}

// Set registers or moves id to the point with the given coordinates
// (exactly the server's dims of them).
func (c *Client) Set(id string, p []int64) error {
	_, err := c.do(Request{Op: OpSet, ID: id, P: p})
	return err
}

// Del retires id (a no-op server-side if absent).
func (c *Client) Del(id string) error {
	_, err := c.do(Request{Op: OpDel, ID: id})
	return err
}

// Get returns id's position (read-your-writes through the server's
// pending log) and whether it is tracked.
func (c *Client) Get(id string) ([]int64, bool, error) {
	resp, err := c.do(Request{Op: OpGet, ID: id})
	if err != nil {
		return nil, false, err
	}
	return resp.P, resp.Found, nil
}

// Nearby returns the k tracked objects nearest p, nearest first.
func (c *Client) Nearby(p []int64, k int) ([]Hit, error) {
	resp, err := c.do(Request{Op: OpNearby, P: p, K: k})
	if err != nil {
		return nil, err
	}
	return resp.Hits, nil
}

// Within returns every tracked object inside the box [lo, hi]
// (inclusive; order unspecified).
func (c *Client) Within(lo, hi []int64) ([]Hit, error) {
	resp, err := c.do(Request{Op: OpWithin, Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	return resp.Hits, nil
}

// Stats fetches the server's serving and collection counters.
func (c *Client) Stats() (StatsPayload, error) {
	resp, err := c.do(Request{Op: OpStats})
	if err != nil {
		return StatsPayload{}, err
	}
	if resp.Stats == nil {
		return StatsPayload{}, fmt.Errorf("psid: STATS response missing stats body")
	}
	return *resp.Stats, nil
}

// Flush forces the server to commit all pending ops and returns the
// number of index mutations applied. It is a visibility barrier for
// every client: on return, all previously acknowledged SET/DEL calls —
// from any connection — are visible to Nearby/Within.
func (c *Client) Flush() (int, error) {
	resp, err := c.do(Request{Op: OpFlush})
	if err != nil {
		return 0, err
	}
	return resp.Applied, nil
}

// Promote flips a follower server into the replication leader (see
// docs/replication.md, "Failover"). addr optionally overrides the
// listen address the server was started with ("" uses its -repl flag).
// On return the server accepts writes.
func (c *Client) Promote(addr string) error {
	_, err := c.do(Request{Op: OpPromote, Addr: addr})
	return err
}

// Demote fences a leader server: it refuses writes with CodeFenced
// until re-pointed with Follow. addr, when non-empty, is recorded as
// the leader hint returned alongside fenced errors.
func (c *Client) Demote(addr string) error {
	_, err := c.do(Request{Op: OpDemote, Addr: addr})
	return err
}

// Follow re-points a follower (or fenced ex-leader) server at the
// leader's replication listener at addr.
func (c *Client) Follow(addr string) error {
	_, err := c.do(Request{Op: OpFollow, Addr: addr})
	return err
}
