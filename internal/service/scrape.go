package service

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Scraping: psiload can fetch the server's /metrics endpoint before and
// after a load run and report the *server-side* deltas next to the
// client-observed numbers — how many flush windows the load triggered,
// how much of the traffic the coalescing log netted away, and how evenly
// the per-shard load spread. This closes the loop the paper's
// experiments leave open: client latency alone cannot tell whether a
// slowdown came from fan-out skew or from flush pressure; the scrape
// columns can.

// ScrapeMetrics fetches a Prometheus text exposition (a psid /metrics
// URL) and parses it into a flat sample map keyed like obs.ParseText:
// "name" or `name{label="v",...}`.
func ScrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: %s", url, resp.Status)
	}
	return obs.ParseText(resp.Body)
}

// ServerDelta is the server's own accounting of one load run, computed
// as the difference of two /metrics scrapes (see MetricsDelta).
type ServerDelta struct {
	// Flushes / RawOps / NettedOps / Cancelled are the collection-layer
	// flush counters: windows committed, mutations entering them, index
	// mutations surviving netting, and ops cancelled by last-write-wins
	// coalescing.
	Flushes   float64
	RawOps    float64
	NettedOps float64
	Cancelled float64
	// NettedRatio is NettedOps/RawOps (1 = no coalescing win, lower is
	// more netting); 0 when no ops were flushed.
	NettedRatio float64
	// SlowQueries counts commands over the server's -slowlog threshold
	// during the run (0 when the log is disabled).
	SlowQueries float64
	// ShardOps is the per-shard batch-op spread (psi_shard_ops_total
	// deltas in shard order); Min/Max summarize the imbalance.
	ShardOps    []float64
	ShardOpsMin float64
	ShardOpsMax float64
}

// MetricsDelta computes the server-side load deltas between two scrapes
// of the same server. Counters absent from both scrapes stay zero, so a
// server without shard metrics simply reports an empty spread.
func MetricsDelta(before, after map[string]float64) *ServerDelta {
	diff := func(key string) float64 { return after[key] - before[key] }
	d := &ServerDelta{
		Flushes:     diff(`psi_flush_total{layer="collection"}`),
		RawOps:      diff(`psi_flush_ops_raw_total{layer="collection"}`),
		NettedOps:   diff(`psi_flush_ops_netted_total{layer="collection"}`),
		Cancelled:   diff(`psi_flush_ops_cancelled_total{layer="collection"}`),
		SlowQueries: diff("psi_slow_queries_total"),
	}
	if d.RawOps > 0 {
		d.NettedRatio = d.NettedOps / d.RawOps
	}
	const shardOps = `psi_shard_ops_total{shard="`
	var keys []string
	for k := range after {
		if strings.HasPrefix(k, shardOps) {
			keys = append(keys, k)
		}
	}
	// Shard labels are small integers; numeric order keeps the spread
	// aligned with shard IDs (string sort would put 10 before 2).
	sort.Slice(keys, func(i, j int) bool {
		return shardKey(keys[i]) < shardKey(keys[j])
	})
	for _, k := range keys {
		v := diff(k)
		d.ShardOps = append(d.ShardOps, v)
		if len(d.ShardOps) == 1 || v < d.ShardOpsMin {
			d.ShardOpsMin = v
		}
		if v > d.ShardOpsMax {
			d.ShardOpsMax = v
		}
	}
	return d
}

// shardKey extracts the numeric shard label from a
// `psi_shard_ops_total{shard="N"}` sample key (-1 if malformed).
func shardKey(k string) int {
	i := strings.Index(k, `shard="`)
	if i < 0 {
		return -1
	}
	n := 0
	seen := false
	for _, c := range k[i+len(`shard="`):] {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
		seen = true
	}
	if !seen {
		return -1
	}
	return n
}

// formatServer appends the server-side section to a Format report.
func (d *ServerDelta) format(w io.Writer) {
	fmt.Fprintf(w, "server:  %.0f flushes, %.0f raw ops -> %.0f applied (netted ratio %.2f, %.0f cancelled)",
		d.Flushes, d.RawOps, d.NettedOps, d.NettedRatio, d.Cancelled)
	if d.SlowQueries > 0 {
		fmt.Fprintf(w, ", %.0f slow queries", d.SlowQueries)
	}
	fmt.Fprintln(w)
	if len(d.ShardOps) > 0 {
		fmt.Fprintf(w, "shards:  %d shards, batch ops min %.0f / max %.0f\n",
			len(d.ShardOps), d.ShardOpsMin, d.ShardOpsMax)
	}
}
