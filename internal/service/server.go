package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/wal"
)

// DefaultMaxLineBytes caps one request line when Options.MaxLineBytes is
// unset. Commands are tiny (a SET is under 100 bytes), so 1 MiB is a
// pure abuse guard, not a tuning knob.
const DefaultMaxLineBytes = 1 << 20

// MaxNearbyK caps NEARBY's k: the KNN heap allocates O(k) before
// searching, so the wire value must be bounded (a dashboard wanting
// "everything near q" this badly should use WITHIN).
const MaxNearbyK = 1 << 16

// Options tunes a Server. The zero value is usable.
type Options struct {
	// MaxBatch and FlushInterval tune the underlying Collection's
	// coalescing log: MaxBatch is the pending-op count that makes the
	// enqueuing connection flush synchronously, FlushInterval bounds how
	// long a SET can stay invisible to NEARBY/WITHIN under light write
	// traffic. Defaults: collection.DefaultMaxBatch, and 2ms when zero —
	// a server with no background flusher would leave a trickle of SETs
	// invisible indefinitely, which is never what a network caller wants.
	// Set FlushInterval negative to disable the background flusher (tests
	// that want to observe pre-flush state do).
	MaxBatch      int
	FlushInterval time.Duration
	// MaxLineBytes rejects request lines longer than this with a
	// too_large error (the line is discarded, the connection survives).
	// <= 0 selects DefaultMaxLineBytes.
	MaxLineBytes int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the HTTP
	// probe listener and adds runtime GC counters to /stats, so heap and
	// allocation profiles can be captured from a live server (see the
	// README's Performance section). Off by default: the profile
	// endpoints can stall the world and do not belong on an unguarded
	// production port.
	EnablePprof bool
	// DisableScratch turns off the per-connection buffer reuse and the
	// append-style response encoder, restoring the per-line
	// json.Marshal + fresh-buffer behavior (and the inner Collection's
	// allocating paths). It exists so -exp alloc can measure the
	// before/after of the serving-path scratch reuse; production
	// configurations leave it false.
	DisableScratch bool
	// DisableSnapshot keeps the Collection on the classic locked read
	// path even when the wrapped index supports snapshot reads. By
	// default, when idx implements core.Replicator (every psi tree
	// constructor and Sharded does), the server enables epoch-pinned
	// snapshot reads: queries pin the published version and never wait
	// behind a flush — the serving configuration the churn benchmark
	// measures. Set this to benchmark the locked baseline or to halve
	// index memory on tightly constrained hosts.
	DisableSnapshot bool
	// Obs is the metric registry the server records into and serves at
	// /metrics. The same registry is handed to the Collection (and should
	// be the one the wrapped Sharded was built with) so one scrape covers
	// every layer. Leave nil and the server creates a private registry —
	// /metrics then carries the serving and collection series only.
	Obs *obs.Registry
	// SlowLog, when positive, is the slow-query threshold: any command
	// slower than this is captured — command, request line, duration,
	// shards visited, candidates scanned, pinned epoch — into a
	// preallocated ring served at /debug/slowlog and by the SLOWLOG
	// command. Zero disables the log (SLOWLOG then errors).
	SlowLog time.Duration
	// SlowLogSize is the ring capacity; <= 0 selects DefaultSlowLogSize.
	SlowLogSize int
	// WALDir, when non-empty, puts a write-ahead log under the
	// Collection: every committed flush window is journaled to
	// WALDir/wal.log before it is applied, startup recovers the logged
	// state (snapshot + log replay, truncating a torn tail), and a
	// background loop snapshots the full state every WALSnapshotInterval
	// to bound replay time. Empty (the default) serves memory-only, the
	// pre-WAL behavior. Use NewDurable to surface WAL open/recovery
	// errors instead of New's panic.
	WALDir string
	// WALFsync is the append durability policy (wal.FsyncAlways /
	// FsyncInterval / FsyncNever — cmd/psid parses -fsync into this).
	// Under FsyncAlways the server flushes after every SET/DEL before
	// acknowledging, so "acknowledged" means "on disk"; the other
	// policies acknowledge from memory and bound the loss window
	// instead (docs/durability.md has the per-policy contract).
	WALFsync wal.FsyncPolicy
	// WALFsyncInterval is the FsyncInterval cadence; <= 0 selects
	// wal.DefaultInterval. Ignored by the other policies.
	WALFsyncInterval time.Duration
	// WALSnapshotInterval is the snapshot-and-truncate cadence; <= 0
	// selects DefaultWALSnapshotInterval. Idle ticks (no appends since
	// the last snapshot) are skipped.
	WALSnapshotInterval time.Duration
	// ReplListen, when non-empty, makes this server a replication leader:
	// Start binds a second TCP listener on this address and streams every
	// committed WAL window to connected followers (docs/replication.md).
	// Requires WALDir — replication ships exactly the journaled windows.
	// Combined with ReplicaOf the server starts as a follower and
	// ReplListen is the standby address PROMOTE binds (a hot spare:
	// -replica-of for the current leader, -repl for the address it will
	// serve followers on after promotion).
	ReplListen string
	// ReplRetainWindows / ReplRetainBytes bound the leader's in-memory
	// catch-up ring: a follower whose resume point has been evicted
	// re-bootstraps from a full snapshot instead. <= 0 select
	// repl.DefaultRetainWindows / repl.DefaultRetainBytes.
	ReplRetainWindows int
	ReplRetainBytes   int
	// ReplicaOf, when non-empty, makes this server a read-only follower
	// of the leader's replication listener at this host:port: it
	// bootstraps or resumes over the wire, applies committed windows
	// through the normal flush pipeline (journaling them to its own WAL
	// under the leader's sequence numbers), and refuses client
	// SET/DEL/FLUSH with CodeReadonly. Requires WALDir.
	ReplicaOf string
	// ReplID is the follower's stable identity in the FOLLOW handshake;
	// the leader keys its per-follower /stats and metric series by it.
	// Empty falls back to the connection's remote address.
	ReplID string
	// MaxLagWindows, when positive, turns /healthz into a follower
	// readiness gate: a follower lagging more than this many committed
	// windows behind its leader (or disconnected from it) reports 503
	// with the lag in the body, so a load balancer can route reads away
	// from stale replicas. Zero (the default) keeps /healthz always-200
	// for a serving follower — staleness stays visible in lag_windows but
	// is the balancer's policy call. cmd/psid surfaces this as -max-lag.
	MaxLagWindows int
	// Logf, when set, receives replication lifecycle lines (follower
	// connects, bootstraps, session errors). cmd/psid wires log.Printf.
	Logf func(format string, args ...any)
}

// DefaultSlowLogSize is the slow-query ring capacity used when
// Options.SlowLogSize is unset.
const DefaultSlowLogSize = 128

// DefaultFlushInterval is the background flush cadence used when
// Options.FlushInterval is zero.
const DefaultFlushInterval = 2 * time.Millisecond

// DefaultWALSnapshotInterval is the WAL snapshot cadence used when
// Options.WALSnapshotInterval is unset.
const DefaultWALSnapshotInterval = time.Minute

func (o Options) withDefaults() Options {
	if o.MaxLineBytes <= 0 {
		o.MaxLineBytes = DefaultMaxLineBytes
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = DefaultFlushInterval
	} else if o.FlushInterval < 0 {
		o.FlushInterval = 0
	}
	if o.Obs == nil {
		o.Obs = obs.New()
	}
	if o.SlowLogSize <= 0 {
		o.SlowLogSize = DefaultSlowLogSize
	}
	if o.WALSnapshotInterval <= 0 {
		o.WALSnapshotInterval = DefaultWALSnapshotInterval
	}
	return o
}

// Server serves the psid protocol over TCP (and probe endpoints over
// HTTP) on top of one Collection[string]. Create one with New, bind it
// with Start, stop it with Shutdown. All exported methods are safe for
// concurrent use.
type Server struct {
	opts  Options
	coll  *collection.Collection[string]
	dims  int
	met   metrics
	reg   *obs.Registry
	slow  *obs.SlowLog // nil unless Options.SlowLog > 0
	start time.Time

	ln     net.Listener
	httpLn net.Listener
	http   *http.Server

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closing atomic.Bool
	wg      sync.WaitGroup // accept loop + one entry per live connection

	// Durability state, zero-valued when WALDir is unset (wal == nil).
	wal         *wal.Log[string]
	recovered   WALRecovery
	durableAcks bool        // fsync=always: flush (and so journal+fsync) before acking SET/DEL
	walFailed   atomic.Bool // sticky: a journal append, fsync, or snapshot failed
	fatal       chan error  // first WAL failure, for the binary's select loop
	snapStop    chan struct{}
	snapWG      sync.WaitGroup
	walOnce     sync.Once // WAL teardown (Shutdown may be called twice)

	// Replication state (internal/service/repl.go), nil/zero unless
	// ReplListen or ReplicaOf is set. role/roleChanges are atomics read
	// on the dispatch and journal paths; the pointer fields are guarded
	// by replMu because PROMOTE and FOLLOW replace them at runtime (hub
	// is the exception: the journal hook reads it locklessly, gated on
	// role == leader, which is stored only after hub is in place).
	replMu   sync.Mutex             // serializes PROMOTE/DEMOTE/FOLLOW role transitions
	hub      *repl.Hub[string]      // leader: committed-window fan-out ring
	replLead *repl.Leader[string]   // leader: follower listener
	replFoll *repl.Follower[string] // follower: session loop against the leader
	// role is the replication role (replRole); roleChanges counts its
	// transitions; leaderHint holds the last-known leader address (string)
	// returned with readonly/fenced errors.
	role        atomic.Int32
	roleChanges atomic.Uint64
	leaderHint  atomic.Value
	// replPendingSeq/replSkipJournal parameterize the follower's journal
	// hook for the flush in flight; plain fields, written only by the
	// follower session goroutine whose own Flush call runs the hook.
	replPendingSeq  uint64
	replSkipJournal bool
}

// New wraps idx (which must start empty) in a Server. Like
// collection.New, the Server takes ownership of idx — the recommended
// serving stack is a Sharded over the per-workload index choice, so each
// netted flush fans out across shards in parallel while connections keep
// enqueueing. When idx implements core.Replicator (and DisableSnapshot
// is unset), queries ride the epoch-pinned snapshot path: NEARBY/WITHIN
// never wait behind a flush, and /stats reports the epoch counters.
//
// New panics if WAL setup fails — only possible with Options.WALDir set
// (an unreadable directory, a corrupt snapshot). Durable configurations
// should call NewDurable and handle the error.
func New(idx core.Index, opts Options) *Server {
	s, err := NewDurable(idx, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Registry returns the server's metric registry (the one served at
// /metrics) for embedders that want to add their own series.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Collection exposes the underlying Collection for in-process callers: a
// binary embedding a Server can serve local traffic at function-call
// speed and remote traffic over the socket against the same state.
func (s *Server) Collection() *collection.Collection[string] { return s.coll }

// Start binds the TCP command listener on addr and, when httpAddr is
// non-empty, the HTTP probe listener (GET /healthz, GET /stats). It
// returns once both listeners are bound — use Addr/HTTPAddr to discover
// ":0" ports — and serves in background goroutines until Shutdown.
func (s *Server) Start(addr, httpAddr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("psid: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.start = time.Now()
	if httpAddr != "" {
		hln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("psid: listen http %s: %w", httpAddr, err)
		}
		s.httpLn = hln
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", s.handleHealthz)
		mux.HandleFunc("/stats", s.handleStats)
		mux.HandleFunc("/metrics", s.handleMetrics)
		mux.HandleFunc("/debug/flushtrace", s.handleFlushTrace)
		mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
		if s.opts.EnablePprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		s.http = &http.Server{Handler: mux}
		go s.http.Serve(hln)
	}
	if err := s.startRepl(s.opts.Logf); err != nil {
		ln.Close()
		if s.httpLn != nil {
			s.httpLn.Close()
		}
		return err
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound command listener address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// HTTPAddr returns the bound probe listener address (nil when disabled).
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// Listener closed by Shutdown (or fatally broken): stop.
			return
		}
		// Register under the same lock Shutdown broadcasts deadlines
		// under: either this conn is registered before the broadcast and
		// gets its deadline, or the closing flag is already visible here
		// and the conn is refused — a conn can never slip between the
		// two and park in readLine unbounded.
		s.mu.Lock()
		if s.closing.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Shutdown drains and stops the server: it stops accepting, lets every
// in-flight command finish and write its response, closes the
// connections, stops the HTTP listener, and applies a final flush so no
// acknowledged SET is lost (Collection.Close). If ctx expires before the
// drain completes, remaining connections are closed forcibly; the final
// flush still runs. Shutdown returns ctx.Err in that case, else nil.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	// Unblock every reader parked on the next request line (the mutex
	// pairs with acceptLoop's registration, so a concurrently accepted
	// conn either sees closing or gets the deadline). Handlers in the
	// middle of a command are not interrupted: the deadline only fires
	// on their next read, after the response is written.
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	if s.http != nil {
		s.http.Shutdown(ctx)
	}
	// Replication stops before the final flush: a follower's in-flight
	// apply must finish (or be severed) so no journal append races the
	// WAL's closing snapshot; a leader's streams just end, and followers
	// resume against the next incarnation.
	s.stopRepl()
	s.coll.Close() // stops the background flusher and applies the final (journaled) flush
	// With a WAL: snapshot the final state and truncate the log, so a
	// clean restart replays nothing, then close the log (which syncs —
	// even fsync=never loses nothing on a graceful exit).
	s.closeWAL()
	return err
}

// connState is one connection's reusable serving buffers: the request
// struct (slice fields keep their capacity across parses), the
// resolved-hit scratch the Collection appends into, and the response
// encode buffer (the long-line accumulation scratch stays a handleConn
// local, shared by both scratch modes). One goroutine owns each conn, so
// nothing here is locked; a warm connection serves GET/NEARBY/WITHIN
// round trips with no per-line buffer allocations at all.
type connState struct {
	req     Request
	entries []collection.Entry[string]
	out     []byte
}

// handleConn serves one client: read a line, dispatch, write the reply,
// in order, until the client disconnects or the server drains.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	var cs *connState
	if !s.opts.DisableScratch {
		cs = new(connState)
	}
	var cost *obs.QueryCost
	if s.slow != nil {
		// One cost recorder per connection (dispatch resets it per line):
		// the slow-query path never allocates per command.
		cost = new(obs.QueryCost)
	}
	var lineScratch []byte
	for {
		line, tooLong, err := readLine(br, s.opts.MaxLineBytes, &lineScratch)
		if err != nil {
			// Client disconnect, mid-line EOF, or the Shutdown read
			// deadline. A client that vanishes mid-batch leaves its
			// already-enqueued ops in the coalescing log — they commit at
			// the next flush like any acknowledged write.
			return
		}
		if s.closing.Load() {
			bw.Write(marshalLine(errResp(CodeShutdown, "server is shutting down")))
			bw.Flush()
			return
		}
		if tooLong {
			s.met.badLines.Add(1)
			bw.Write(marshalLine(errResp(CodeTooLarge, "line exceeds %d bytes", s.opts.MaxLineBytes)))
			if bw.Flush() != nil {
				return
			}
			continue
		}
		// Empty lines flow through dispatch and fail JSON parsing: the
		// protocol promises exactly one response per request line, so a
		// blank line gets its bad_request rather than silence.
		t0 := time.Now()
		op, res := s.dispatch(line, cs, cost)
		d := time.Since(t0)
		s.met.record(op, d, res.ok)
		s.recordSlow(op, line, d, cost)
		if cs != nil {
			cs.out = appendResult(cs.out[:0], &res, s.dims)
			bw.Write(cs.out)
			// One huge WITHIN must not pin its buffers for the
			// connection's lifetime (mirrors the client-side lineBuf
			// cap): steady-state responses stay far below these.
			if cap(cs.out) > maxRetainedOut {
				cs.out = nil
			}
			if cap(cs.entries) > maxRetainedEntries {
				cs.entries = nil
			}
		} else {
			bw.Write(marshalLine(res.response(s.dims)))
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// maxRetainedOut and maxRetainedEntries cap the per-connection scratch
// kept between requests: buffers grown past these by one broad query are
// dropped rather than pinned for the connection's lifetime.
const (
	maxRetainedOut     = 1 << 20
	maxRetainedEntries = 1 << 14
)

// readLine reads one \n-terminated line of at most max bytes. Oversized
// lines are discarded through their newline and reported as tooLong so
// the protocol stays line-synchronized. The trailing \n (and optional
// \r) are stripped.
//
// The returned line aliases either the bufio buffer (common case: the
// whole line fits) or *scratch, and is valid only until the next readLine
// call with the same reader — the serving loop fully consumes each line
// before reading the next, so no copy is ever needed.
func readLine(br *bufio.Reader, max int, scratch *[]byte) (line []byte, tooLong bool, err error) {
	frag, err := br.ReadSlice('\n')
	if err == nil {
		// Fast path: the whole line is in the reader's buffer.
		if len(frag) > max+1 { // +1: the newline itself is free
			return nil, true, nil
		}
		return bytes.TrimRight(frag, "\r\n"), false, nil
	}
	if err != bufio.ErrBufferFull {
		return nil, false, err
	}
	buf := (*scratch)[:0]
	for {
		buf = append(buf, frag...)
		if len(buf) > max {
			*scratch = buf[:0]
			return nil, true, discardLine(br)
		}
		frag, err = br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			*scratch = buf[:0]
			return nil, false, err
		}
		buf = append(buf, frag...)
		*scratch = buf[:0] // recycled next call; the caller is done with line by then
		if len(buf) > max+1 {
			return nil, true, nil
		}
		return bytes.TrimRight(buf, "\r\n"), false, nil
	}
}

// discardLine consumes input through the next newline.
func discardLine(br *bufio.Reader) error {
	for {
		_, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			continue
		}
		return err
	}
}

// dispatch parses and executes one command line, returning the metrics
// slot (-1 for protocol-level rejects) and the pre-wire result. With a
// connState the parse reuses the connection's Request (slice fields keep
// their capacity) and query hits land in the connection's entry scratch;
// result.entries then aliases cs.entries and is valid until the next
// dispatch on the same connection. A nil cs allocates fresh everywhere
// (the DisableScratch path). cost, when non-nil, is reset and filled
// with the query's work accounting (slow-query log connections pass a
// per-connection recorder; everything else passes nil).
func (s *Server) dispatch(line []byte, cs *connState, cost *obs.QueryCost) (int, result) {
	if cost != nil {
		*cost = obs.QueryCost{}
	}
	var req *Request
	if cs != nil {
		cs.req.Op, cs.req.ID, cs.req.K = "", "", 0
		cs.req.P = cs.req.P[:0]
		cs.req.Lo = cs.req.Lo[:0]
		cs.req.Hi = cs.req.Hi[:0]
		req = &cs.req
	} else {
		req = new(Request)
	}
	if err := json.Unmarshal(line, req); err != nil {
		return -1, errResultf(CodeBadRequest, "parse: %v", err)
	}
	op := strings.ToUpper(req.Op)
	idx := opIndex(op)
	if idx < 0 {
		return -1, errResultf(CodeBadRequest, "unknown op %q", req.Op)
	}
	switch op {
	case OpSet:
		if r := s.rejectWrite(op); r != nil {
			return idx, *r
		}
		if req.ID == "" {
			return idx, errResult(CodeBadRequest, "SET: missing id")
		}
		p, err := point(req.P, s.dims)
		if err != nil {
			return idx, errResultf(CodeBadRequest, "SET %q: %v", req.ID, err)
		}
		s.coll.Set(req.ID, p)
		if r := s.commitDurable(); r != nil {
			return idx, *r
		}
		return idx, result{ok: true}
	case OpDel:
		if r := s.rejectWrite(op); r != nil {
			return idx, *r
		}
		if req.ID == "" {
			return idx, errResult(CodeBadRequest, "DEL: missing id")
		}
		s.coll.Remove(req.ID)
		if r := s.commitDurable(); r != nil {
			return idx, *r
		}
		return idx, result{ok: true}
	case OpGet:
		if req.ID == "" {
			return idx, errResult(CodeBadRequest, "GET: missing id")
		}
		p, found := s.coll.Get(req.ID)
		res := result{ok: true, found: found}
		if found {
			res.p, res.hasP = p, true
		}
		return idx, res
	case OpNearby:
		p, err := point(req.P, s.dims)
		if err != nil {
			return idx, errResultf(CodeBadRequest, "NEARBY: %v", err)
		}
		if req.K <= 0 {
			return idx, errResultf(CodeBadRequest, "NEARBY: k must be positive, got %d", req.K)
		}
		// k comes off the wire and the KNN machinery allocates O(k)
		// up front; an uncapped value is a one-line remote OOM/panic.
		if req.K > MaxNearbyK {
			return idx, errResultf(CodeBadRequest, "NEARBY: k %d exceeds the maximum %d", req.K, MaxNearbyK)
		}
		entries := s.coll.NearbyIDsAppendCost(p, req.K, s.entryScratch(cs), cost)
		if cs != nil {
			cs.entries = entries
		}
		return idx, result{ok: true, hasHits: true, entries: entries}
	case OpWithin:
		lo, err := point(req.Lo, s.dims)
		if err != nil {
			return idx, errResultf(CodeBadRequest, "WITHIN lo: %v", err)
		}
		hi, err := point(req.Hi, s.dims)
		if err != nil {
			return idx, errResultf(CodeBadRequest, "WITHIN hi: %v", err)
		}
		for d := 0; d < s.dims; d++ {
			if lo[d] > hi[d] {
				return idx, errResultf(CodeBadRequest, "WITHIN: inverted box on dim %d (%d > %d)", d, lo[d], hi[d])
			}
		}
		entries := s.coll.WithinIDsAppendCost(geom.BoxOf(lo, hi), s.entryScratch(cs), cost)
		if cs != nil {
			cs.entries = entries
		}
		return idx, result{ok: true, hasHits: true, entries: entries}
	case OpStats:
		st := s.Stats()
		return idx, result{ok: true, stats: &st}
	case OpFlush:
		// A follower's flushes belong to the replication applier alone:
		// a client-triggered flush would journal a window under a stale
		// leader sequence.
		if r := s.rejectWrite(op); r != nil {
			return idx, *r
		}
		return idx, result{ok: true, applied: s.coll.Flush(), hasApplied: true}
	case OpSlowlog:
		if s.slow == nil {
			return idx, errResult(CodeBadRequest, "slow-query log disabled (start the server with a -slowlog threshold)")
		}
		return idx, result{ok: true, hasSlow: true, slow: s.slow.Snapshot()}
	case OpPromote:
		if err := s.Promote(req.Addr); err != nil {
			return idx, errResultf(CodeBadRequest, "PROMOTE: %v", err)
		}
		return idx, result{ok: true}
	case OpDemote:
		if err := s.Demote(req.Addr); err != nil {
			return idx, errResultf(CodeBadRequest, "DEMOTE: %v", err)
		}
		return idx, result{ok: true}
	case OpFollow:
		if req.Addr == "" {
			return idx, errResult(CodeBadRequest, "FOLLOW: missing addr")
		}
		if err := s.Follow(req.Addr); err != nil {
			return idx, errResultf(CodeBadRequest, "FOLLOW: %v", err)
		}
		return idx, result{ok: true}
	}
	return -1, errResultf(CodeBadRequest, "unknown op %q", req.Op) // unreachable
}

// recordSlow captures one served command into the slow-query ring when
// the log is enabled and the command crossed the threshold. Protocol
// rejects (op < 0) are not queries and are skipped; cost is non-nil
// whenever the log is enabled (the connection allocates one recorder).
func (s *Server) recordSlow(op int, line []byte, d time.Duration, cost *obs.QueryCost) {
	if s.slow == nil || op < 0 || d < s.opts.SlowLog {
		return
	}
	s.slow.Record(opOrder[op], line, d, *cost)
}

// entryScratch returns the connection's reusable hit buffer (nil for the
// DisableScratch path, which lets the Collection allocate fresh).
func (s *Server) entryScratch(cs *connState) []collection.Entry[string] {
	if cs == nil {
		return nil
	}
	return cs.entries[:0]
}

// Stats snapshots the serving and collection counters (the STATS command
// and HTTP /stats body). It does not flush, and it never takes the
// flush writer's lock — the counts come from the published epoch (or the
// lifetime counters in locked mode), so /stats stays responsive even
// while a huge commit window is mid-apply. Objects counts committed
// objects, Pending the enqueued tail.
func (s *Server) Stats() StatsPayload {
	cs := s.coll.Stats()
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	st := StatsPayload{
		Objects:   cs.Objects,
		Epoch:     cs.Epoch,
		Versions:  cs.Versions,
		RetireLag: cs.RetireLag,
		Pending:   cs.Pending,
		Flushes:   cs.Flushes,
		Inserted:  cs.Inserted,
		Moved:     cs.Moved,
		Removed:   cs.Removed,
		Cancelled: cs.Cancelled,
		Conns:     conns,
		UptimeS:   time.Since(s.start).Seconds(),
		BadLines:  s.met.badLines.Load(),
		Ops:       s.met.snapshot(),
	}
	if s.wal != nil {
		ws := s.wal.Stats()
		st.WAL = &WALStats{
			Policy:        ws.Policy,
			DurableAcks:   s.durableAcks,
			Failed:        s.walFailed.Load(),
			Seq:           ws.Seq,
			SnapshotSeq:   ws.SnapshotSeq,
			LogBytes:      ws.LogBytes,
			Appends:       ws.Appends,
			AppendedBytes: ws.AppendedBytes,
			Fsyncs:        ws.Fsyncs,
			Snapshots:     ws.Snapshots,
			Errors:        ws.Errors,
			JournalErrors: cs.JournalErrors,
			Recovery:      s.recovered,
		}
	}
	st.Repl = s.replStats()
	if s.opts.EnablePprof {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		st.GC = &GCStats{
			HeapAllocBytes:  m.HeapAlloc,
			TotalAllocBytes: m.TotalAlloc,
			Mallocs:         m.Mallocs,
			Frees:           m.Frees,
			NumGC:           m.NumGC,
			PauseTotalMs:    float64(m.PauseTotalNs) / 1e6,
			GCCPUFraction:   m.GCCPUFraction,
		}
	}
	return st
}

// LineConn is a virtual connection: it serves protocol lines in process,
// through exactly the per-connection parse/dispatch/encode path (and
// metrics recording) a socket connection uses, minus the TCP round trip.
// It exists for embedders that want protocol semantics at function-call
// speed and for the allocation benchmarks that measure the serving path
// in isolation. A LineConn is owned by one goroutine, like a socket
// connection; open one per serving goroutine.
type LineConn struct {
	s    *Server
	cs   *connState
	cost *obs.QueryCost // non-nil when the slow-query log is enabled
}

// NewLineConn returns a virtual connection on the server. The server
// does not need to be Started.
func (s *Server) NewLineConn() *LineConn {
	lc := &LineConn{s: s}
	if !s.opts.DisableScratch {
		lc.cs = new(connState)
	}
	if s.slow != nil {
		lc.cost = new(obs.QueryCost)
	}
	return lc
}

// Serve executes one protocol line and returns the newline-terminated
// response line. The returned slice is reused by the next Serve call on
// this LineConn; callers that retain it must copy.
func (lc *LineConn) Serve(line []byte) []byte {
	t0 := time.Now()
	op, res := lc.s.dispatch(line, lc.cs, lc.cost)
	d := time.Since(t0)
	lc.s.met.record(op, d, res.ok)
	lc.s.recordSlow(op, line, d, lc.cost)
	if lc.cs != nil {
		lc.cs.out = appendResult(lc.cs.out[:0], &res, lc.s.dims)
		return lc.cs.out
	}
	return marshalLine(res.response(lc.s.dims))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.closing.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(marshalLine(map[string]any{"ok": false, "state": "draining"}))
		return
	}
	// A failed WAL means acknowledged writes may no longer be durable:
	// the server is up but should be rotated out, so health goes red.
	if s.walFailed.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(marshalLine(map[string]any{"ok": false, "state": "wal_failed"}))
		return
	}
	body := map[string]any{"ok": true, "uptime_s": time.Since(s.start).Seconds()}
	// Replication position rides on health so an orchestrator (and the
	// CI smoke) can gate on lag with one probe. By default a disconnected
	// or lagging follower stays green: it serves reads from its
	// last-applied state and reconnects on its own — staleness is visible
	// in lag_windows, and whether to route around it is the balancer's
	// policy call. Options.MaxLagWindows opts into making that call here:
	// past the threshold (or while disconnected) the probe goes 503 so
	// stale reads are routed away.
	status := http.StatusOK
	s.replMu.Lock()
	foll := s.replFoll
	s.replMu.Unlock()
	switch replRole(s.role.Load()) {
	case roleLeader:
		body["role"] = "leader"
		body["repl_seq"] = s.hub.LastSeq()
		body["term"] = s.wal.Term()
	case roleFollower:
		st := foll.Status()
		body["role"] = "follower"
		body["repl_connected"] = st.Connected
		body["applied_seq"] = st.AppliedSeq
		body["lag_windows"] = st.LagWindows
		body["term"] = s.wal.Term()
		if max := s.opts.MaxLagWindows; max > 0 && (!st.Connected || st.LagWindows > uint64(max)) {
			body["ok"] = false
			body["state"] = "lagging"
			body["lag"] = st.LagWindows
			status = http.StatusServiceUnavailable
		}
	case roleFenced:
		body["role"] = "fenced"
		body["term"] = s.wal.Term()
	}
	if status != http.StatusOK {
		w.WriteHeader(status)
	}
	w.Write(marshalLine(body))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(marshalLine(s.Stats()))
}

// handleMetrics serves the Prometheus text exposition of the server's
// registry: per-command latency histograms, flush counters and stage
// timings, per-shard load series, epoch gauges (docs/observability.md
// has the catalog).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// flushSpanJSON is the /debug/flushtrace wire form of one obs.FlushSpan,
// with the stage array unrolled into named fields.
type flushSpanJSON struct {
	Seq           uint64 `json:"seq"`
	Layer         string `json:"layer"`
	StartUnixNano int64  `json:"start_unix_nano"`
	NetNs         int64  `json:"net_ns"`
	LogNs         int64  `json:"log_ns"`
	ReplayNs      int64  `json:"replay_ns"`
	ApplyNs       int64  `json:"apply_ns"`
	PublishNs     int64  `json:"publish_ns"`
	DrainNs       int64  `json:"drain_ns"`
	RawOps        int    `json:"raw_ops"`
	NettedOps     int    `json:"netted_ops"`
	Cancelled     int    `json:"cancelled"`
	Epoch         uint64 `json:"epoch"`
}

// handleFlushTrace serves the retained flush spans, oldest first, as a
// JSON array (empty array, never null, when nothing has flushed).
func (s *Server) handleFlushTrace(w http.ResponseWriter, r *http.Request) {
	spans := s.reg.FlushTrace().Snapshot()
	out := make([]flushSpanJSON, 0, len(spans))
	for _, sp := range spans {
		out = append(out, flushSpanJSON{
			Seq:           sp.Seq,
			Layer:         sp.Layer,
			StartUnixNano: sp.Start,
			NetNs:         sp.Stages[obs.StageNet],
			LogNs:         sp.Stages[obs.StageLog],
			ReplayNs:      sp.Stages[obs.StageReplay],
			ApplyNs:       sp.Stages[obs.StageApply],
			PublishNs:     sp.Stages[obs.StagePublish],
			DrainNs:       sp.Stages[obs.StageDrain],
			RawOps:        sp.RawOps,
			NettedOps:     sp.NettedOps,
			Cancelled:     sp.Cancelled,
			Epoch:         sp.Epoch,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(marshalLine(out))
}

// slowEntries returns the retained slow queries, newest first (empty,
// never nil, so the endpoint always serves a JSON array).
func (s *Server) slowEntries() []obs.SlowQuery {
	if sn := s.slow.Snapshot(); sn != nil {
		return sn
	}
	return []obs.SlowQuery{}
}

// handleSlowlog serves the slow-query ring as a JSON array (empty when
// the log is disabled or nothing has crossed the threshold).
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(marshalLine(s.slowEntries()))
}
