package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/geom"
)

// DefaultMaxLineBytes caps one request line when Options.MaxLineBytes is
// unset. Commands are tiny (a SET is under 100 bytes), so 1 MiB is a
// pure abuse guard, not a tuning knob.
const DefaultMaxLineBytes = 1 << 20

// MaxNearbyK caps NEARBY's k: the KNN heap allocates O(k) before
// searching, so the wire value must be bounded (a dashboard wanting
// "everything near q" this badly should use WITHIN).
const MaxNearbyK = 1 << 16

// Options tunes a Server. The zero value is usable.
type Options struct {
	// MaxBatch and FlushInterval tune the underlying Collection's
	// coalescing log: MaxBatch is the pending-op count that makes the
	// enqueuing connection flush synchronously, FlushInterval bounds how
	// long a SET can stay invisible to NEARBY/WITHIN under light write
	// traffic. Defaults: collection.DefaultMaxBatch, and 2ms when zero —
	// a server with no background flusher would leave a trickle of SETs
	// invisible indefinitely, which is never what a network caller wants.
	// Set FlushInterval negative to disable the background flusher (tests
	// that want to observe pre-flush state do).
	MaxBatch      int
	FlushInterval time.Duration
	// MaxLineBytes rejects request lines longer than this with a
	// too_large error (the line is discarded, the connection survives).
	// <= 0 selects DefaultMaxLineBytes.
	MaxLineBytes int
}

// DefaultFlushInterval is the background flush cadence used when
// Options.FlushInterval is zero.
const DefaultFlushInterval = 2 * time.Millisecond

func (o Options) withDefaults() Options {
	if o.MaxLineBytes <= 0 {
		o.MaxLineBytes = DefaultMaxLineBytes
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = DefaultFlushInterval
	} else if o.FlushInterval < 0 {
		o.FlushInterval = 0
	}
	return o
}

// Server serves the psid protocol over TCP (and probe endpoints over
// HTTP) on top of one Collection[string]. Create one with New, bind it
// with Start, stop it with Shutdown. All exported methods are safe for
// concurrent use.
type Server struct {
	opts  Options
	coll  *collection.Collection[string]
	dims  int
	met   metrics
	start time.Time

	ln     net.Listener
	httpLn net.Listener
	http   *http.Server

	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closing atomic.Bool
	wg      sync.WaitGroup // accept loop + one entry per live connection
}

// New wraps idx (which must start empty) in a Server. Like
// collection.New, the Server takes ownership of idx — the recommended
// serving stack is a Sharded over the per-workload index choice, so each
// netted flush fans out across shards in parallel while connections keep
// enqueueing.
func New(idx core.Index, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts: opts,
		dims: idx.Dims(),
		coll: collection.New[string](idx, collection.Options{
			MaxBatch:      opts.MaxBatch,
			FlushInterval: opts.FlushInterval,
		}),
		conns: make(map[net.Conn]struct{}),
	}
	return s
}

// Collection exposes the underlying Collection for in-process callers: a
// binary embedding a Server can serve local traffic at function-call
// speed and remote traffic over the socket against the same state.
func (s *Server) Collection() *collection.Collection[string] { return s.coll }

// Start binds the TCP command listener on addr and, when httpAddr is
// non-empty, the HTTP probe listener (GET /healthz, GET /stats). It
// returns once both listeners are bound — use Addr/HTTPAddr to discover
// ":0" ports — and serves in background goroutines until Shutdown.
func (s *Server) Start(addr, httpAddr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("psid: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.start = time.Now()
	if httpAddr != "" {
		hln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("psid: listen http %s: %w", httpAddr, err)
		}
		s.httpLn = hln
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", s.handleHealthz)
		mux.HandleFunc("/stats", s.handleStats)
		s.http = &http.Server{Handler: mux}
		go s.http.Serve(hln)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return nil
}

// Addr returns the bound command listener address (nil before Start).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// HTTPAddr returns the bound probe listener address (nil when disabled).
func (s *Server) HTTPAddr() net.Addr {
	if s.httpLn == nil {
		return nil
	}
	return s.httpLn.Addr()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			// Listener closed by Shutdown (or fatally broken): stop.
			return
		}
		// Register under the same lock Shutdown broadcasts deadlines
		// under: either this conn is registered before the broadcast and
		// gets its deadline, or the closing flag is already visible here
		// and the conn is refused — a conn can never slip between the
		// two and park in readLine unbounded.
		s.mu.Lock()
		if s.closing.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Shutdown drains and stops the server: it stops accepting, lets every
// in-flight command finish and write its response, closes the
// connections, stops the HTTP listener, and applies a final flush so no
// acknowledged SET is lost (Collection.Close). If ctx expires before the
// drain completes, remaining connections are closed forcibly; the final
// flush still runs. Shutdown returns ctx.Err in that case, else nil.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	// Unblock every reader parked on the next request line (the mutex
	// pairs with acceptLoop's registration, so a concurrently accepted
	// conn either sees closing or gets the deadline). Handlers in the
	// middle of a command are not interrupted: the deadline only fires
	// on their next read, after the response is written.
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	if s.http != nil {
		s.http.Shutdown(ctx)
	}
	s.coll.Close() // stops the background flusher and applies the final flush
	return err
}

// handleConn serves one client: read a line, dispatch, write the reply,
// in order, until the client disconnects or the server drains.
func (s *Server) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	for {
		line, tooLong, err := readLine(br, s.opts.MaxLineBytes)
		if err != nil {
			// Client disconnect, mid-line EOF, or the Shutdown read
			// deadline. A client that vanishes mid-batch leaves its
			// already-enqueued ops in the coalescing log — they commit at
			// the next flush like any acknowledged write.
			return
		}
		if s.closing.Load() {
			bw.Write(marshalLine(errResp(CodeShutdown, "server is shutting down")))
			bw.Flush()
			return
		}
		if tooLong {
			s.met.badLines.Add(1)
			bw.Write(marshalLine(errResp(CodeTooLarge, "line exceeds %d bytes", s.opts.MaxLineBytes)))
			if bw.Flush() != nil {
				return
			}
			continue
		}
		// Empty lines flow through dispatch and fail JSON parsing: the
		// protocol promises exactly one response per request line, so a
		// blank line gets its bad_request rather than silence.
		t0 := time.Now()
		op, resp := s.dispatch(line)
		s.met.record(op, time.Since(t0), resp.OK)
		bw.Write(marshalLine(resp))
		if bw.Flush() != nil {
			return
		}
	}
}

// readLine reads one \n-terminated line of at most max bytes. Oversized
// lines are discarded through their newline and reported as tooLong so
// the protocol stays line-synchronized. The trailing \n (and optional
// \r) are stripped.
func readLine(br *bufio.Reader, max int) (line []byte, tooLong bool, err error) {
	var buf []byte
	for {
		frag, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			buf = append(buf, frag...)
			if len(buf) > max {
				return nil, true, discardLine(br)
			}
			continue
		}
		if err != nil {
			return nil, false, err
		}
		if len(buf)+len(frag) > max+1 { // +1: the newline itself is free
			return nil, true, nil
		}
		buf = append(buf, frag...)
		return bytes.TrimRight(buf, "\r\n"), false, nil
	}
}

// discardLine consumes input through the next newline.
func discardLine(br *bufio.Reader) error {
	for {
		_, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			continue
		}
		return err
	}
}

// dispatch parses and executes one command line, returning the metrics
// slot (-1 for protocol-level rejects) and the response.
func (s *Server) dispatch(line []byte) (int, Response) {
	var req Request
	if err := json.Unmarshal(line, &req); err != nil {
		return -1, errResp(CodeBadRequest, "parse: %v", err)
	}
	op := strings.ToUpper(req.Op)
	idx := opIndex(op)
	if idx < 0 {
		return -1, errResp(CodeBadRequest, "unknown op %q", req.Op)
	}
	switch op {
	case OpSet:
		if req.ID == "" {
			return idx, errResp(CodeBadRequest, "SET: missing id")
		}
		p, err := point(req.P, s.dims)
		if err != nil {
			return idx, errResp(CodeBadRequest, "SET %q: %v", req.ID, err)
		}
		s.coll.Set(req.ID, p)
		return idx, Response{OK: true}
	case OpDel:
		if req.ID == "" {
			return idx, errResp(CodeBadRequest, "DEL: missing id")
		}
		s.coll.Remove(req.ID)
		return idx, Response{OK: true}
	case OpGet:
		if req.ID == "" {
			return idx, errResp(CodeBadRequest, "GET: missing id")
		}
		p, found := s.coll.Get(req.ID)
		resp := Response{OK: true, Found: found}
		if found {
			resp.P = coords(p, s.dims)
		}
		return idx, resp
	case OpNearby:
		p, err := point(req.P, s.dims)
		if err != nil {
			return idx, errResp(CodeBadRequest, "NEARBY: %v", err)
		}
		if req.K <= 0 {
			return idx, errResp(CodeBadRequest, "NEARBY: k must be positive, got %d", req.K)
		}
		// k comes off the wire and the KNN machinery allocates O(k)
		// up front; an uncapped value is a one-line remote OOM/panic.
		if req.K > MaxNearbyK {
			return idx, errResp(CodeBadRequest, "NEARBY: k %d exceeds the maximum %d", req.K, MaxNearbyK)
		}
		return idx, Response{OK: true, Hits: s.hits(s.coll.NearbyIDs(p, req.K))}
	case OpWithin:
		lo, err := point(req.Lo, s.dims)
		if err != nil {
			return idx, errResp(CodeBadRequest, "WITHIN lo: %v", err)
		}
		hi, err := point(req.Hi, s.dims)
		if err != nil {
			return idx, errResp(CodeBadRequest, "WITHIN hi: %v", err)
		}
		for d := 0; d < s.dims; d++ {
			if lo[d] > hi[d] {
				return idx, errResp(CodeBadRequest, "WITHIN: inverted box on dim %d (%d > %d)", d, lo[d], hi[d])
			}
		}
		return idx, Response{OK: true, Hits: s.hits(s.coll.WithinIDs(geom.BoxOf(lo, hi)))}
	case OpStats:
		st := s.Stats()
		return idx, Response{OK: true, Stats: &st}
	case OpFlush:
		return idx, Response{OK: true, Applied: s.coll.Flush()}
	}
	return -1, errResp(CodeBadRequest, "unknown op %q", req.Op) // unreachable
}

// hits converts resolved Collection entries to wire hits.
func (s *Server) hits(entries []collection.Entry[string]) []Hit {
	out := make([]Hit, len(entries))
	for i, e := range entries {
		out[i] = Hit{ID: e.ID, P: coords(e.Point, s.dims)}
	}
	return out
}

// Stats snapshots the serving and collection counters (the STATS command
// and HTTP /stats body). It does not flush: Objects counts committed
// objects, Pending the enqueued tail.
func (s *Server) Stats() StatsPayload {
	cs := s.coll.Stats()
	s.mu.Lock()
	conns := len(s.conns)
	s.mu.Unlock()
	return StatsPayload{
		Objects:   int(cs.Inserted) - int(cs.Removed),
		Pending:   cs.Pending,
		Flushes:   cs.Flushes,
		Inserted:  cs.Inserted,
		Moved:     cs.Moved,
		Removed:   cs.Removed,
		Cancelled: cs.Cancelled,
		Conns:     conns,
		UptimeS:   time.Since(s.start).Seconds(),
		BadLines:  s.met.badLines.Load(),
		Ops:       s.met.snapshot(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.closing.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(marshalLine(map[string]any{"ok": false, "state": "draining"}))
		return
	}
	w.Write(marshalLine(map[string]any{"ok": true, "uptime_s": time.Since(s.start).Seconds()}))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(marshalLine(s.Stats()))
}
