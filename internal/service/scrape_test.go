package service

import (
	"strings"
	"testing"
)

// TestMetricsDelta pins the scrape-diff arithmetic: counter deltas,
// the netting ratio, and the numerically ordered per-shard spread.
func TestMetricsDelta(t *testing.T) {
	before := map[string]float64{
		`psi_flush_total{layer="collection"}`:               2,
		`psi_flush_ops_raw_total{layer="collection"}`:       100,
		`psi_flush_ops_netted_total{layer="collection"}`:    80,
		`psi_flush_ops_cancelled_total{layer="collection"}`: 20,
		`psi_shard_ops_total{shard="0"}`:                    10,
		`psi_shard_ops_total{shard="2"}`:                    10,
		`psi_shard_ops_total{shard="10"}`:                   10,
	}
	after := map[string]float64{
		`psi_flush_total{layer="collection"}`:               7,
		`psi_flush_ops_raw_total{layer="collection"}`:       300,
		`psi_flush_ops_netted_total{layer="collection"}`:    230,
		`psi_flush_ops_cancelled_total{layer="collection"}`: 70,
		"psi_slow_queries_total":                            3,
		`psi_shard_ops_total{shard="0"}`:                    60,
		`psi_shard_ops_total{shard="2"}`:                    40,
		`psi_shard_ops_total{shard="10"}`:                   90,
	}
	d := MetricsDelta(before, after)
	if d.Flushes != 5 || d.RawOps != 200 || d.NettedOps != 150 || d.Cancelled != 50 {
		t.Fatalf("deltas = %+v", d)
	}
	if d.NettedRatio != 0.75 {
		t.Fatalf("netted ratio = %v, want 0.75", d.NettedRatio)
	}
	if d.SlowQueries != 3 {
		t.Fatalf("slow queries = %v (absent in before must count from 0)", d.SlowQueries)
	}
	// Numeric shard order (string order would put 10 before 2) and
	// min/max over the deltas.
	want := []float64{50, 30, 80}
	if len(d.ShardOps) != 3 {
		t.Fatalf("shard ops = %v", d.ShardOps)
	}
	for i, v := range want {
		if d.ShardOps[i] != v {
			t.Fatalf("shard ops = %v, want %v (numeric shard order)", d.ShardOps, want)
		}
	}
	if d.ShardOpsMin != 30 || d.ShardOpsMax != 80 {
		t.Fatalf("spread min=%v max=%v, want 30/80", d.ShardOpsMin, d.ShardOpsMax)
	}
}

// TestScrapeMetricsLive scrapes a running server's /metrics end to end —
// the exact path psiload -scrape uses — and diffs around real traffic.
func TestScrapeMetricsLive(t *testing.T) {
	s, _ := newObsStack(t, Options{})
	url := "http://" + s.HTTPAddr().String() + "/metrics"
	before, err := ScrapeMetrics(url)
	if err != nil {
		t.Fatal(err)
	}
	c := dialT(t, s)
	for i := 0; i < 8; i++ {
		if err := c.Set(string(rune('a'+i)), []int64{int64(i) * 100, int64(i) * 100}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	after, err := ScrapeMetrics(url)
	if err != nil {
		t.Fatal(err)
	}
	d := MetricsDelta(before, after)
	if d.Flushes < 1 || d.RawOps < 8 {
		t.Fatalf("server delta = %+v, want >= 1 flush and >= 8 raw ops", d)
	}
	if len(d.ShardOps) != 4 {
		t.Fatalf("shard spread = %v, want 4 shards", d.ShardOps)
	}
	var total float64
	for _, v := range d.ShardOps {
		total += v
	}
	if total < 8 {
		t.Fatalf("shard ops total = %v, want >= 8", total)
	}
	// The report section renders without panicking.
	var sb strings.Builder
	rep := &LoadReport{Server: d}
	rep.Format(&sb)
	if !strings.Contains(sb.String(), "server:") {
		t.Fatalf("report missing server section:\n%s", sb.String())
	}
}
