package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/collection"
	"repro/internal/geom"
	"repro/internal/obs"
)

// encodeCases covers every response shape the hot path renders: plain
// acks, errors (including strings needing JSON escaping), GET hit/miss,
// NEARBY/WITHIN hit lists (empty and multi), and FLUSH applied counts
// (zero is omitted by omitempty).
func encodeCases() []result {
	return []result{
		{ok: true},
		{ok: false, code: CodeBadRequest, err: `parse: quote " backslash \ and control` + "\n\t\x01 done`"},
		{ok: false, code: CodeTooLarge, err: "line exceeds 1024 bytes"},
		{ok: false, code: CodeBadRequest, err: "js line separators \u2028 and \u2029 escape like json.Marshal"},
		{ok: true, found: true, p: geom.Pt2(-7, 42), hasP: true},
		{ok: true, found: false},
		{ok: true, hasHits: true, entries: nil},
		{ok: true, hasHits: true, entries: []collection.Entry[string]{
			{ID: "veh-1", Point: geom.Pt2(3, 4)},
			{ID: `we"ird\id`, Point: geom.Pt2(-1, -2)},
			{ID: "üñïçødé", Point: geom.Pt2(0, 9)},
		}},
		{ok: true, hasApplied: true, applied: 0},
		{ok: true, hasApplied: true, applied: 123},
		{ok: false, code: CodeReadonly, err: "SET: read-only replica", leader: "10.0.0.7:7601"},
		{ok: false, code: CodeFenced, err: "SET: writes are fenced", leader: ""},
	}
}

// slowEncodeCases are the SLOWLOG response shapes: probe-command output
// (rendered through encoding/json like STATS), so they join the parity
// test but not the zero-alloc guard.
func slowEncodeCases() []result {
	return []result{
		{ok: true, hasSlow: true, slow: nil}, // empty slow log: omitted
		{ok: true, hasSlow: true, slow: []obs.SlowQuery{
			{Seq: 2, UnixNano: 1700000000000, DurNs: 5_000_000, Cmd: OpNearby,
				Args: `{"op":"NEARBY","p":[1,2],"k":10}`, Shards: 3, Candidates: 17, Epoch: 9},
			{Seq: 1, Cmd: OpWithin, Args: "trunc", Truncated: true},
		}},
	}
}

// TestEncodeMatchesJSON pins the hand-rolled encoder to what
// json.Marshal produces for the equivalent Response: byte-identical
// lines for strings without HTML-escaped characters, and semantically
// identical JSON otherwise (json.Marshal additionally escapes <, >, &,
// which the protocol never relied on).
func TestEncodeMatchesJSON(t *testing.T) {
	const dims = 2
	for i, res := range append(encodeCases(), slowEncodeCases()...) {
		got := appendResult(nil, &res, dims)
		want := marshalLine(res.response(dims))
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: encoder diverged\n got: %s\nwant: %s", i, got, want)
		}
	}
	// HTML-escaped characters: semantic equality.
	res := result{ok: false, code: CodeBadRequest, err: `html <&> chars`}
	var got, want Response
	if err := json.Unmarshal(appendResult(nil, &res, dims), &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(marshalLine(res.response(dims)), &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("html-escape case diverged: got %+v want %+v", got, want)
	}
}

// TestAppendRequestMatchesJSON pins the reuse-mode client's request
// encoder to json.Marshal of the same Request.
func TestAppendRequestMatchesJSON(t *testing.T) {
	cases := []Request{
		{Op: OpSet, ID: "veh-1", P: []int64{3, 4}},
		{Op: OpDel, ID: `q"\id`},
		{Op: OpGet, ID: "x"},
		{Op: OpNearby, P: []int64{-5, 7}, K: 10},
		{Op: OpWithin, Lo: []int64{0, 0}, Hi: []int64{9, 9}},
		{Op: OpStats},
		{Op: OpFlush},
		{Op: OpPromote},
		{Op: OpPromote, Addr: "127.0.0.1:7601"},
		{Op: OpFollow, Addr: `host"with\quotes:1`},
	}
	for i, req := range cases {
		got := appendRequest(nil, &req)
		want := marshalLine(req)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: request encoder diverged\n got: %s\nwant: %s", i, got, want)
		}
	}
}

// TestEncodeZeroAlloc is the allocation guard for the service encode
// path: rendering any steady-state response shape into a warm buffer
// allocates nothing.
func TestEncodeZeroAlloc(t *testing.T) {
	const dims = 2
	cases := encodeCases()
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		for i := range cases {
			buf = appendResult(buf[:0], &cases[i], dims)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm encode path allocates %.2f/op, want 0", allocs)
	}
}

// TestLineConnMatchesScratchModes drives identical command sequences
// through a scratch-reuse server and a DisableScratch (legacy
// json.Marshal) server via LineConn, asserting byte-identical response
// lines — the wire format must not depend on the encoding path.
func TestLineConnMatchesScratchModes(t *testing.T) {
	mk := func(disable bool) *LineConn {
		srv := New(newTestIndex(), Options{
			FlushInterval:  -1,
			DisableScratch: disable,
		})
		return srv.NewLineConn()
	}
	fast, legacy := mk(false), mk(true)
	lines := []string{
		`{"op":"SET","id":"a","p":[10,10]}`,
		`{"op":"SET","id":"b","p":[20,20]}`,
		`{"op":"SET","id":"we\"ird\\id","p":[30,30]}`,
		`{"op":"FLUSH"}`,
		`{"op":"GET","id":"a"}`,
		`{"op":"GET","id":"missing"}`,
		`{"op":"NEARBY","p":[0,0],"k":2}`,
		`{"op":"NEARBY","p":[0,0],"k":10}`,
		`{"op":"WITHIN","lo":[0,0],"hi":[25,25]}`,
		`{"op":"WITHIN","lo":[100,100],"hi":[200,200]}`,
		`{"op":"DEL","id":"a"}`,
		`{"op":"FLUSH"}`,
		`{"op":"NEARBY","p":[0,0],"k":1}`,
		`{"op":"nope"}`,
		`not json`,
		`{"op":"SET","id":"","p":[1,1]}`,
		`{"op":"NEARBY","p":[1],"k":3}`,
	}
	for i, line := range lines {
		got := append([]byte(nil), fast.Serve([]byte(line))...)
		want := legacy.Serve([]byte(line))
		if !bytes.Equal(got, want) {
			t.Errorf("line %d (%s):\n fast:   %s legacy: %s", i, line, got, want)
		}
	}
}

// TestClientReuse runs the full client API in reuse mode against a live
// server and cross-checks every answer against a fresh-buffer client on
// a second connection.
func TestClientReuse(t *testing.T) {
	srv := startServer(t, newTestIndex(), Options{})
	reuse := dialT(t, srv)
	plain := dialT(t, srv)
	reuse.SetReuse(true)

	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("veh-%d", i)
		if err := reuse.Set(id, []int64{int64(i * 10), int64(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reuse.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("veh-%d", i)
		gp, gok, err := reuse.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		wp, wok, err := plain.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		// Copy before the next reuse-mode call invalidates gp.
		gpCopy := append([]int64(nil), gp...)
		if gok != wok || !reflect.DeepEqual(gpCopy, wp) {
			t.Fatalf("GET %s: reuse (%v,%v) vs plain (%v,%v)", id, gpCopy, gok, wp, wok)
		}
	}
	for _, k := range []int{1, 5, 20, 50} {
		gh, err := reuse.Nearby([]int64{42, 42}, k)
		if err != nil {
			t.Fatal(err)
		}
		ghCopy := append([]Hit(nil), gh...)
		for i := range ghCopy {
			ghCopy[i].P = append([]int64(nil), ghCopy[i].P...)
		}
		wh, err := plain.Nearby([]int64{42, 42}, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(ghCopy) != len(wh) {
			t.Fatalf("NEARBY k=%d: reuse %d hits, plain %d", k, len(ghCopy), len(wh))
		}
		for i := range wh {
			if ghCopy[i].ID != wh[i].ID || !reflect.DeepEqual(ghCopy[i].P, wh[i].P) {
				t.Fatalf("NEARBY k=%d hit %d: reuse %+v plain %+v", k, i, ghCopy[i], wh[i])
			}
		}
	}
	gw, err := reuse.Within([]int64{0, 0}, []int64{1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	ww, err := plain.Within([]int64{0, 0}, []int64{1000, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(gw) != len(ww) {
		t.Fatalf("WITHIN: reuse %d hits, plain %d", len(gw), len(ww))
	}
}
