package service

// Durable serving: the wiring between the Collection's flush pipeline
// and the write-ahead log (internal/wal). With Options.WALDir set, the
// Server opens the WAL before taking traffic, replays the recovered
// state into the Collection, and installs the journal hook so every
// committed flush window hits disk before it is applied. Under
// -fsync always the dispatch path flushes before acknowledging SET/DEL,
// turning the protocol's {"ok":true} into a durability receipt; the
// flush lock makes concurrent writers' flushes pile up into one append
// + one fsync — group commit for free. docs/durability.md has the full
// contract; cmd/psid surfaces the knobs as -wal / -fsync /
// -snapshot-interval.

import (
	"errors"
	"fmt"
	"iter"
	"net"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/wal"
)

// WALRecovery summarizes what startup recovery salvaged from the WAL
// directory, reported once at boot (cmd/psid logs it) and forever after
// in /stats under "wal".
type WALRecovery struct {
	// Objects is the number of live objects loaded (snapshot folded
	// with the replayed log tail).
	Objects int `json:"recovered_objects"`
	// Records is the number of valid log records replayed.
	Records int `json:"replayed_records"`
	// TruncatedBytes is the size of the torn log tail cut off during
	// recovery — nonzero after a crash mid-append, which is expected
	// and harmless (nothing in the tail was ever acknowledged under
	// fsync=always).
	TruncatedBytes int64 `json:"truncated_bytes"`
}

// NewDurable is New with the WAL error surfaced: when Options.WALDir is
// set it opens (or creates) the log, loads the recovered state into the
// Collection, and arms the flush-commit journal before any connection
// can write. With WALDir unset it never fails and behaves exactly like
// New.
func NewDurable(idx core.Index, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if err := opts.validateRepl(); err != nil {
		return nil, err
	}
	copts := collection.Options{
		MaxBatch:       opts.MaxBatch,
		FlushInterval:  opts.FlushInterval,
		DisableScratch: opts.DisableScratch,
		Obs:            opts.Obs,
	}
	if r, ok := idx.(core.Replicator); ok && !opts.DisableSnapshot {
		copts.Snapshot = r.NewReplica
	}
	if opts.ReplicaOf != "" {
		// A follower's only writer is the replication applier, which
		// flushes each leader window itself: no background flusher, and a
		// batch trigger no real window can reach — any other flush would
		// split a window across two local sequences. (PROMOTE re-arms
		// both from Options; see Server.Promote.)
		copts.FlushInterval = 0
		copts.MaxBatch = 1 << 30
	}
	s := &Server{
		opts:  opts,
		dims:  idx.Dims(),
		coll:  collection.New[string](idx, copts),
		reg:   opts.Obs,
		conns: make(map[net.Conn]struct{}),
		fatal: make(chan error, 1),
	}
	s.role.Store(int32(opts.initialRole()))
	if opts.ReplicaOf != "" {
		s.leaderHint.Store(opts.ReplicaOf)
	}
	if opts.SlowLog > 0 {
		s.slow = obs.NewSlowLog(opts.SlowLogSize)
	}
	if opts.WALDir != "" {
		if err := s.openWAL(); err != nil {
			s.coll.Close()
			return nil, err
		}
	}
	s.registerMetrics(s.reg)
	return s, nil
}

// openWAL opens the log, replays the recovered state into the (empty)
// Collection, and installs the journal hook. Ordering matters: the
// replayed windows are already on disk, so the hook goes in only after
// the replay flush — re-journaling them would double the log on every
// restart.
func (s *Server) openWAL() error {
	opts := s.opts
	l, rec, err := wal.Open[string](opts.WALDir, wal.StringCodec{}, wal.Options{
		Fsync:    opts.WALFsync,
		Interval: opts.WALFsyncInterval,
		Obs:      opts.Obs,
		OnError:  s.walFail,
	})
	if err != nil {
		return fmt.Errorf("psid: wal: %w", err)
	}
	for id, p := range rec.Entries {
		s.coll.Set(id, p)
	}
	s.coll.Flush()
	s.wal = l
	s.recovered = WALRecovery{
		Objects:        len(rec.Entries),
		Records:        rec.Records,
		TruncatedBytes: rec.TruncatedBytes,
	}
	if s.roleIs(roleLeader) {
		// The hub's head starts at the recovered sequence, so a follower
		// already there resumes with an empty tail instead of a snapshot.
		// A standby (-repl plus -replica-of) starts follower-side; its
		// hub is built at promotion instead.
		s.hub = s.newHub()
	}
	s.coll.SetJournal(s.journalHook(l))
	s.durableAcks = opts.WALFsync == wal.FsyncAlways
	s.snapStop = make(chan struct{})
	s.snapWG.Add(1)
	go s.snapshotLoop(opts.WALSnapshotInterval)
	return nil
}

// walFail records the first WAL failure: the sticky flag flips the
// server unhealthy (healthz 503, durable acks refused), and the error
// lands on the Fatal channel for the binary's shutdown select. Safe
// from any goroutine, including the WAL's background fsync loop.
func (s *Server) walFail(err error) {
	s.walFailed.Store(true)
	select {
	case s.fatal <- err:
	default:
	}
}

// Fatal reports unrecoverable serving failures — today, the first WAL
// error (a failed journal append, background fsync, or snapshot). A
// server that cannot persist acknowledged writes should not keep
// accepting them as if it could: cmd/psid selects on this alongside
// SIGTERM and shuts down. The channel never closes and delivers at most
// one error.
func (s *Server) Fatal() <-chan error { return s.fatal }

// WALRecovered returns the boot-time recovery summary (zero when the
// server runs without a WAL).
func (s *Server) WALRecovered() WALRecovery { return s.recovered }

// snapshotLoop periodically folds the committed state into a fresh
// snapshot and truncates the log (wal.Log.WriteSnapshot), bounding
// restart replay time and disk use. Idle ticks — nothing appended since
// the last snapshot — are skipped, so a quiet server rewrites nothing.
func (s *Server) snapshotLoop(interval time.Duration) {
	defer s.snapWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if s.wal.AppendsSinceSnapshot() == 0 {
				continue
			}
			if err := s.SnapshotWAL(); err != nil && !errors.Is(err, wal.ErrClosed) {
				s.walFail(err)
			}
		case <-s.snapStop:
			return
		}
	}
}

// SnapshotWAL writes a full-state WAL snapshot now and truncates the
// log. The state is captured under the Collection's flush lock
// (Collection.Checkpoint), so it is exactly the fold of every journaled
// window — which also means no flush (and under fsync=always, no
// SET/DEL ack) can complete until the snapshot is on disk; the write
// stall grows with dataset size (docs/durability.md, "Snapshots and log
// truncation", covers sizing -snapshot-interval around it). Errors if
// the server runs without a WAL.
func (s *Server) SnapshotWAL() error {
	if s.wal == nil {
		return errors.New("psid: no write-ahead log configured")
	}
	var err error
	s.coll.Checkpoint(func(objects int, entries iter.Seq2[string, geom.Point]) {
		err = s.wal.WriteSnapshot(objects, entries)
	})
	return err
}

// commitDurable is the dispatch tail of SET/DEL under fsync=always: it
// flushes — journaling and fsyncing the window that includes this op —
// before the acknowledgment is written, and refuses the ack if the WAL
// has failed (the write may be in memory, but the durability contract
// can no longer be honored). Returns nil on the happy path so the
// caller's zero-alloc result flow is untouched; under the other
// policies (and without a WAL) it is a no-op.
func (s *Server) commitDurable() *result {
	if !s.durableAcks {
		return nil
	}
	s.coll.Flush()
	if s.walFailed.Load() {
		r := errResult(CodeUnavailable, "write-ahead log failed; refusing to acknowledge non-durable writes")
		return &r
	}
	return nil
}

// closeWAL is Shutdown's durability tail, after the Collection's final
// flush journaled the last window: stop the snapshot loop, fold the
// final state into a snapshot (truncating the log so the next boot
// replays nothing), and close the log. Once-guarded because Shutdown
// may run more than once.
func (s *Server) closeWAL() {
	if s.wal == nil {
		return
	}
	s.walOnce.Do(func() {
		close(s.snapStop)
		s.snapWG.Wait()
		if !s.walFailed.Load() && s.wal.AppendsSinceSnapshot() > 0 {
			if err := s.SnapshotWAL(); err != nil {
				s.walFail(err)
			}
		}
		if err := s.wal.Close(); err != nil {
			s.walFail(err)
		}
	})
}
