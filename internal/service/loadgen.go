package service

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// Load generation: drive a psid server with N concurrent client
// connections through a mover/query mix and measure client-observed
// latency and throughput. This is the serving-path analogue of the
// psibench experiments — the same numbers (p50/p99 per op, ops/sec)
// either printed by cmd/psiload with a CSV mirror, or folded into the
// psibench tables by -exp service.

// LoadOptions configures one load run. Zero fields take defaults.
type LoadOptions struct {
	Addr  string // psid command address (required)
	Conns int    // concurrent connections; default 8

	// Objects is the tracked-ID space, split evenly across connections
	// (each connection owns ids congruent to its index, so SETs never
	// race on one ID and the final position of every object is
	// deterministic per seed). Default 10_000.
	Objects int
	Dims    int   // point dimensionality; default 2
	Side    int64 // coordinate range [0, Side]; default 1e9

	// Duration and TotalOps are alternative stop conditions: run for a
	// wall-clock duration, or until TotalOps requests completed across
	// all connections (whichever is set; TotalOps wins if both).
	// Default: 5s.
	Duration time.Duration
	TotalOps int

	// SetFrac and NearbyFrac split the request mix; the remainder is
	// WITHIN. Leaving both zero selects the default 0.6/0.3 write-heavy
	// tracker mix; setting either makes both literal (so SetFrac 0 with
	// NearbyFrac 0.5 really issues no SETs). Negative values or a sum
	// above 1 are rejected.
	SetFrac, NearbyFrac float64
	// HopFrac is the SET move distance as a fraction of Side (bounded
	// random hops, like the fleet benchmark); default 0.01.
	HopFrac float64
	// BoxFrac is the WITHIN box half-extent as a fraction of Side;
	// default 0.005.
	BoxFrac float64
	K       int   // NEARBY k; default 10
	Seed    int64 // default 42

	// TrackFinal records the last acknowledged position of every object
	// this run SET, into LoadReport.Final. Each connection owns a
	// disjoint ID slice, so the map is exact, not racy. The
	// crash-recovery smoke uses it: run with -final, kill the server
	// without ceremony, restart, and VerifyFinal must find every
	// acknowledged write.
	TrackFinal bool

	// Followers routes the read side of the mix to replicas: SETs still
	// go to Addr (the leader — followers refuse writes), while each
	// connection sends its NEARBY/WITHIN queries to
	// Followers[conn % len(Followers)]. This is the replicated serving
	// shape psid -repl / -replica-of exists for: one writer, fanned-out
	// reads, each query seeing the replica's (bounded-lag) snapshot.
	// Empty keeps every op on Addr.
	Followers []string
}

func (o LoadOptions) withDefaults() (LoadOptions, error) {
	if o.Conns <= 0 {
		o.Conns = 8
	}
	if o.Objects <= 0 {
		o.Objects = 10_000
	}
	// Every connection needs at least one owned ID; extra connections
	// would otherwise sit idle and silently drop their TotalOps share.
	if o.Conns > o.Objects {
		o.Conns = o.Objects
	}
	if o.Dims == 0 {
		o.Dims = 2
	}
	if o.Side <= 0 {
		o.Side = 1_000_000_000
	}
	if o.Duration <= 0 && o.TotalOps <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.SetFrac == 0 && o.NearbyFrac == 0 {
		o.SetFrac, o.NearbyFrac = 0.6, 0.3
	}
	if o.SetFrac < 0 || o.NearbyFrac < 0 || o.SetFrac+o.NearbyFrac > 1 {
		return o, fmt.Errorf("psiload: bad mix: set=%v nearby=%v (each must be >= 0, sum <= 1)",
			o.SetFrac, o.NearbyFrac)
	}
	if o.HopFrac <= 0 {
		o.HopFrac = 0.01
	}
	if o.BoxFrac <= 0 {
		o.BoxFrac = 0.005
	}
	if o.K <= 0 {
		o.K = 10
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o, nil
}

// OpLoad is the client-observed record for one command type.
type OpLoad struct {
	Op        string
	Count     uint64
	Errors    uint64
	OpsPerSec float64
	Mean      time.Duration
	P50       time.Duration
	P99       time.Duration
}

// LoadReport aggregates a load run.
type LoadReport struct {
	Elapsed   time.Duration
	Conns     int
	Ops       uint64
	Errors    uint64
	OpsPerSec float64
	Total     OpLoad   // all ops merged
	PerOp     []OpLoad // SET, NEARBY, WITHIN (ops actually issued)
	// Server carries the server-side /metrics deltas when the caller
	// scraped around the run (psiload -scrape); nil otherwise.
	Server *ServerDelta
	// Final maps every SET object ID to its last acknowledged
	// coordinates (LoadOptions.TrackFinal; nil otherwise).
	Final map[string][]int64
}

// loadOps are the command classes the generator issues.
var loadOps = [...]string{OpSet, OpNearby, OpWithin}

// RunLoad drives the server at opts.Addr. It dials opts.Conns
// connections, issues the SET/NEARBY/WITHIN mix from one goroutine per
// connection (each timing every request round trip), and aggregates the
// per-op histograms into a report. The run is deterministic in Seed up
// to scheduling: connection i owns objects i, i+Conns, ... and replays
// its own PRNG stream.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if o.Addr == "" {
		return nil, fmt.Errorf("psiload: no server address")
	}
	clients := make([]*Client, o.Conns)
	queriers := make([]*Client, o.Conns) // where this conn's NEARBY/WITHIN go
	closeAll := func() {
		for i := range clients {
			if clients[i] != nil {
				clients[i].Close()
			}
			if queriers[i] != nil && queriers[i] != clients[i] {
				queriers[i].Close()
			}
		}
	}
	for i := range clients {
		c, err := Dial(o.Addr)
		if err != nil {
			closeAll()
			return nil, err
		}
		clients[i] = c
		queriers[i] = c
		if len(o.Followers) > 0 {
			q, err := Dial(o.Followers[i%len(o.Followers)])
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("psiload: follower %s: %w", o.Followers[i%len(o.Followers)], err)
			}
			queriers[i] = q
		}
	}
	defer closeAll()

	type connStats struct {
		lat   [len(loadOps)]obs.Hist
		errs  [len(loadOps)]uint64
		err   error
		final map[string][]int64
	}
	stats := make([]connStats, o.Conns)
	deadline := time.Time{}
	if o.TotalOps <= 0 {
		deadline = time.Now().Add(o.Duration)
	}
	var wg sync.WaitGroup
	begin := time.Now()
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c, qc *Client) {
			defer wg.Done()
			st := &stats[i]
			rng := rand.New(rand.NewSource(o.Seed + int64(i)))
			// This connection's slice of the ID space and its private
			// view of their positions (SETs are bounded hops from here,
			// NEARBY/WITHIN probe around here — an in-distribution mix).
			ids := make([]string, 0, o.Objects/o.Conns+1)
			pos := make([][]int64, 0, o.Objects/o.Conns+1)
			for id := i; id < o.Objects; id += o.Conns {
				p := make([]int64, o.Dims)
				for d := range p {
					p[d] = rng.Int63n(o.Side + 1)
				}
				ids = append(ids, fmt.Sprintf("obj-%07d", id))
				pos = append(pos, p)
			}
			if len(ids) == 0 {
				return
			}
			step := int64(o.HopFrac * float64(o.Side))
			if step < 1 {
				step = 1
			}
			half := int64(o.BoxFrac * float64(o.Side))
			if half < 1 {
				half = 1
			}
			quota := -1
			if o.TotalOps > 0 {
				quota = o.TotalOps / o.Conns
				if i < o.TotalOps%o.Conns {
					quota++
				}
			}
			for n := 0; quota < 0 || n < quota; n++ {
				if quota < 0 && time.Now().After(deadline) {
					return
				}
				j := rng.Intn(len(ids))
				r := rng.Float64()
				var op int
				var err error
				t0 := time.Now()
				switch {
				case r < o.SetFrac:
					op = 0
					p := pos[j]
					for d := range p {
						v := p[d] + rng.Int63n(2*step+1) - step
						if v < 0 {
							v = 0
						} else if v > o.Side {
							v = o.Side
						}
						p[d] = v
					}
					err = c.Set(ids[j], p)
					if err == nil && o.TrackFinal {
						if st.final == nil {
							st.final = make(map[string][]int64, len(ids))
						}
						cp := st.final[ids[j]]
						if cp == nil {
							cp = make([]int64, len(p))
							st.final[ids[j]] = cp
						}
						copy(cp, p) // p is mutated in place next hop
					}
				case r < o.SetFrac+o.NearbyFrac:
					op = 1
					_, err = qc.Nearby(pos[j], o.K)
				default:
					op = 2
					lo := make([]int64, o.Dims)
					hi := make([]int64, o.Dims)
					for d := range lo {
						lo[d] = max(0, pos[j][d]-half)
						hi[d] = min(o.Side, pos[j][d]+half)
					}
					_, err = qc.Within(lo, hi)
				}
				st.lat[op].Record(time.Since(t0))
				if err != nil {
					st.errs[op]++
					if _, proto := err.(*ServerError); !proto {
						st.err = err // transport error: this connection is done
						return
					}
				}
			}
		}(i, c, queriers[i])
	}
	wg.Wait()
	elapsed := time.Since(begin)

	var merged [len(loadOps)]obs.Hist
	var errs [len(loadOps)]uint64
	var firstErr error
	for i := range stats {
		for k := range loadOps {
			merged[k].Merge(&stats[i].lat[k])
			errs[k] += stats[i].errs[k]
		}
		if firstErr == nil && stats[i].err != nil {
			firstErr = fmt.Errorf("conn %d: %w", i, stats[i].err)
		}
	}
	rep := &LoadReport{Elapsed: elapsed, Conns: o.Conns}
	if o.TrackFinal {
		rep.Final = make(map[string][]int64)
		for i := range stats {
			for id, p := range stats[i].final {
				rep.Final[id] = p
			}
		}
	}
	var total obs.Hist
	for k, name := range loadOps {
		n := merged[k].Count()
		if n == 0 && errs[k] == 0 {
			continue
		}
		rep.PerOp = append(rep.PerOp, opLoad(name, &merged[k], errs[k], elapsed))
		total.Merge(&merged[k])
		rep.Ops += n
		rep.Errors += errs[k]
	}
	rep.OpsPerSec = float64(rep.Ops) / elapsed.Seconds()
	rep.Total = opLoad("total", &total, rep.Errors, elapsed)
	if rep.Ops == 0 && firstErr != nil {
		return nil, firstErr // nothing succeeded: surface the transport error
	}
	return rep, firstErr
}

// VerifyFinal dials addr and GETs every recorded object, requiring the
// exact acknowledged position. It is the read side of
// LoadOptions.TrackFinal: run a tracked load against a durable server,
// kill and restart it, then VerifyFinal proves no acknowledged write
// was lost (psiload -verify; the CI crash smoke is exactly this).
func VerifyFinal(addr string, final map[string][]int64) error {
	c, err := Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	var missing, wrong int
	var firstBad string
	for id, want := range final {
		got, found, err := c.Get(id)
		if err != nil {
			return fmt.Errorf("psiload: GET %s: %w", id, err)
		}
		bad := false
		if !found {
			missing++
			bad = true
		} else if len(got) != len(want) {
			wrong++
			bad = true
		} else {
			for d := range want {
				if got[d] != want[d] {
					wrong++
					bad = true
					break
				}
			}
		}
		if bad && firstBad == "" {
			firstBad = fmt.Sprintf("%s = %v (found=%t), want %v", id, got, found, want)
		}
	}
	if missing > 0 || wrong > 0 {
		return fmt.Errorf("psiload: %d of %d acknowledged writes lost (%d missing, %d wrong); first: %s",
			missing+wrong, len(final), missing, wrong, firstBad)
	}
	return nil
}

func opLoad(name string, h *obs.Hist, errs uint64, elapsed time.Duration) OpLoad {
	return OpLoad{
		Op:        name,
		Count:     h.Count(),
		Errors:    errs,
		OpsPerSec: float64(h.Count()) / elapsed.Seconds(),
		Mean:      h.Mean(),
		P50:       h.Quantile(0.50),
		P99:       h.Quantile(0.99),
	}
}

// Format pretty-prints the report.
func (r *LoadReport) Format(w io.Writer) {
	fmt.Fprintf(w, "psiload: %d conns, %d ops in %.2fs (%.0f ops/s, %d errors)\n",
		r.Conns, r.Ops, r.Elapsed.Seconds(), r.OpsPerSec, r.Errors)
	fmt.Fprintf(w, "%-8s %10s %10s %12s %10s %10s %10s\n",
		"op", "count", "errors", "ops/s", "mean", "p50", "p99")
	for _, o := range append(r.PerOp, r.Total) {
		fmt.Fprintf(w, "%-8s %10d %10d %12.0f %10s %10s %10s\n",
			o.Op, o.Count, o.Errors, o.OpsPerSec, o.Mean, o.P50, o.P99)
	}
	if r.Server != nil {
		r.Server.format(w)
	}
}

// WriteCSV emits the report as machine-readable rows, one per op class
// plus a "total" row — the serving path's measurement log, mirroring
// what psibench -csv does for the in-process experiments.
func (r *LoadReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"op", "count", "errors", "ops_per_sec", "mean_us", "p50_us", "p99_us"}); err != nil {
		return err
	}
	for _, o := range append(r.PerOp, r.Total) {
		if err := cw.Write([]string{
			o.Op,
			fmt.Sprintf("%d", o.Count),
			fmt.Sprintf("%d", o.Errors),
			fmt.Sprintf("%.1f", o.OpsPerSec),
			fmt.Sprintf("%.1f", float64(o.Mean)/1e3),
			fmt.Sprintf("%.1f", float64(o.P50)/1e3),
			fmt.Sprintf("%.1f", float64(o.P99)/1e3),
		}); err != nil {
			return err
		}
	}
	if r.Server != nil {
		rows := [][]string{
			{"server:flushes", fmt.Sprintf("%.0f", r.Server.Flushes)},
			{"server:raw_ops", fmt.Sprintf("%.0f", r.Server.RawOps)},
			{"server:netted_ops", fmt.Sprintf("%.0f", r.Server.NettedOps)},
			{"server:cancelled", fmt.Sprintf("%.0f", r.Server.Cancelled)},
			{"server:netted_ratio", fmt.Sprintf("%.3f", r.Server.NettedRatio)},
			{"server:slow_queries", fmt.Sprintf("%.0f", r.Server.SlowQueries)},
			{"server:shard_ops_min", fmt.Sprintf("%.0f", r.Server.ShardOpsMin)},
			{"server:shard_ops_max", fmt.Sprintf("%.0f", r.Server.ShardOpsMax)},
		}
		// Server rows reuse the op column and leave the latency columns
		// empty: one CSV, greppable by the "server:" prefix.
		for _, row := range rows {
			if err := cw.Write(append(row, "", "", "", "", "")); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
