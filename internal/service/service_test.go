package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/sfc"
	"repro/internal/shard"
	"repro/internal/spactree"
)

const testSide = int64(1000)

func testUniverse() geom.Box { return geom.UniverseBox(2, testSide) }

func newTestIndex() core.Index { return spactree.NewSPaC(sfc.Hilbert, 2, testUniverse()) }

func newTestSharded() core.Index {
	return shard.New(shard.Options{
		Dims:     2,
		Universe: testUniverse(),
		Shards:   4,
		Strategy: shard.HilbertRange,
		New:      func(dims int, u geom.Box) core.Index { return spactree.NewSPaC(sfc.Hilbert, dims, u) },
	})
}

// startServer runs a Server over idx and tears it down with the test.
// FlushInterval is disabled so visibility tests control flushes
// explicitly (queries only see FLUSHed state).
func startServer(t *testing.T, idx core.Index, opts Options) *Server {
	t.Helper()
	if opts.FlushInterval == 0 {
		opts.FlushInterval = -1
	}
	s := New(idx, opts)
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

func dialT(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCommandRoundTrip(t *testing.T) {
	s := startServer(t, newTestIndex(), Options{})
	c := dialT(t, s)

	if err := c.Set("a", []int64{10, 10}); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("b", []int64{20, 20}); err != nil {
		t.Fatal(err)
	}
	// GET is read-your-writes: visible before any flush.
	p, found, err := c.Get("a")
	if err != nil || !found || p[0] != 10 || p[1] != 10 {
		t.Fatalf("Get(a) = %v %v %v, want [10 10] true", p, found, err)
	}
	// Geometric queries only see flushed state.
	hits, err := c.Nearby([]int64{0, 0}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("Nearby before flush = %v, want empty", hits)
	}
	applied, err := c.Flush()
	if err != nil || applied != 2 {
		t.Fatalf("Flush = %d, %v, want 2 inserts", applied, err)
	}
	hits, err = c.Nearby([]int64{0, 0}, 1)
	if err != nil || len(hits) != 1 || hits[0].ID != "a" {
		t.Fatalf("Nearby = %v, %v, want [a]", hits, err)
	}
	hits, err = c.Within([]int64{0, 0}, []int64{100, 100})
	if err != nil || len(hits) != 2 {
		t.Fatalf("Within = %v, %v, want both objects", hits, err)
	}
	if err := c.Del("a"); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := c.Get("a"); found {
		t.Fatal("Get(a) after Del should miss (read-your-writes)")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops[OpSet].Count != 2 || st.Conns != 1 {
		t.Fatalf("stats = %+v, want 2 SETs on 1 conn", st)
	}
}

// raw sends one raw line and decodes the one-line reply.
func raw(t *testing.T, conn net.Conn, br *bufio.Reader, line string) Response {
	t.Helper()
	if _, err := conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	reply, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal([]byte(reply), &resp); err != nil {
		t.Fatalf("bad response line %q: %v", reply, err)
	}
	return resp
}

func TestMalformedAndInvalidCommands(t *testing.T) {
	s := startServer(t, newTestIndex(), Options{})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	cases := []struct {
		line string
		code string
	}{
		{`{not json`, CodeBadRequest},
		{`"a bare string"`, CodeBadRequest},
		{`{"op":"NUKE"}`, CodeBadRequest},
		{`{"op":"SET","p":[1,2]}`, CodeBadRequest},            // missing id
		{`{"op":"SET","id":"a","p":[1,2,3]}`, CodeBadRequest}, // 3 coords on a 2D server
		{`{"op":"SET","id":"a"}`, CodeBadRequest},             // no point
		{`{"op":"NEARBY","p":[1,2],"k":0}`, CodeBadRequest},
		{`{"op":"NEARBY","p":[1,2],"k":-3}`, CodeBadRequest},
		{`{"op":"NEARBY","p":[1,2],"k":4611686018427387904}`, CodeBadRequest}, // O(k) alloc guard
		{``, CodeBadRequest},                                                  // blank line still gets its one response
		{`{"op":"WITHIN","lo":[5,5],"hi":[1,9]}`, CodeBadRequest},             // inverted box
		{`{"op":"WITHIN","lo":[5],"hi":[9,9]}`, CodeBadRequest},
		{`{"op":"GET"}`, CodeBadRequest},
		{`{"op":"DEL"}`, CodeBadRequest},
	}
	for _, tc := range cases {
		resp := raw(t, conn, br, tc.line)
		if resp.OK || resp.Code != tc.code {
			t.Errorf("%s -> %+v, want code %s", tc.line, resp, tc.code)
		}
	}
	// The connection survives every reject, and lowercase ops work.
	if resp := raw(t, conn, br, `{"op":"set","id":"ok","p":[1,2]}`); !resp.OK {
		t.Fatalf("valid SET after rejects failed: %+v", resp)
	}
	if resp := raw(t, conn, br, `{"op":"get","id":"ok"}`); !resp.OK || !resp.Found {
		t.Fatalf("GET after rejects = %+v", resp)
	}
	if got := s.Stats().BadLines; got != 4 {
		t.Fatalf("BadLines = %d, want 4 (two parse failures + unknown op + blank line)", got)
	}
}

func TestOversizedLine(t *testing.T) {
	s := startServer(t, newTestIndex(), Options{MaxLineBytes: 256})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	// One giant line (bigger than the 64 KiB server read buffer, so the
	// accumulate-and-discard path runs, not just the single-slice path).
	big := `{"op":"SET","id":"` + strings.Repeat("x", 100<<10) + `","p":[1,2]}`
	resp := raw(t, conn, br, big)
	if resp.OK || resp.Code != CodeTooLarge {
		t.Fatalf("oversized line -> %+v, want %s", resp, CodeTooLarge)
	}
	// A line just over the limit that fits the read buffer.
	resp = raw(t, conn, br, `{"op":"SET","id":"`+strings.Repeat("y", 300)+`","p":[1,2]}`)
	if resp.OK || resp.Code != CodeTooLarge {
		t.Fatalf("slightly-oversized line -> %+v, want %s", resp, CodeTooLarge)
	}
	// The protocol resynchronizes at the newline: the next command works.
	if resp := raw(t, conn, br, `{"op":"SET","id":"a","p":[3,4]}`); !resp.OK {
		t.Fatalf("SET after oversized lines failed: %+v", resp)
	}
	if p, found, _ := dialT(t, s).Get("a"); !found || p[0] != 3 {
		t.Fatal("state diverged after oversized-line recovery")
	}
}

func TestClientDisconnectMidBatch(t *testing.T) {
	s := startServer(t, newTestIndex(), Options{MaxBatch: 1 << 20})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	// Enqueue acknowledged SETs, then vanish without flushing — and leave
	// a half-written line on the wire for good measure.
	for i := 0; i < 10; i++ {
		if resp := raw(t, conn, br, fmt.Sprintf(`{"op":"SET","id":"d%d","p":[%d,%d]}`, i, i, i)); !resp.OK {
			t.Fatalf("SET %d: %+v", i, resp)
		}
	}
	conn.Write([]byte(`{"op":"SET","id":"torn`)) // no newline, never completed
	conn.Close()

	// The acknowledged ops are in the coalescing log; any other client's
	// FLUSH commits them. The torn line must be dropped, not applied.
	c := dialT(t, s)
	waitCond(t, func() bool { st, err := c.Stats(); return err == nil && st.Conns == 1 })
	if applied, err := c.Flush(); err != nil || applied != 10 {
		t.Fatalf("Flush after disconnect = %d, %v, want the 10 acknowledged SETs", applied, err)
	}
	hits, err := c.Within([]int64{0, 0}, []int64{testSide, testSide})
	if err != nil || len(hits) != 10 {
		t.Fatalf("Within = %d hits, %v, want 10", len(hits), err)
	}
}

// waitCond polls for an asynchronous server-side transition (e.g. a
// closed connection being reaped).
func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentOracle is the end-to-end serving correctness test: many
// writer connections race SETs/DELs on disjoint ID slices while reader
// connections hammer NEARBY/WITHIN, with the identical op stream applied
// to a direct in-process Collection oracle. After a FLUSH barrier the
// server state must agree exactly with the oracle. Run under -race in CI.
func TestConcurrentOracle(t *testing.T) {
	s := startServer(t, newTestSharded(), Options{MaxBatch: 64})
	oracle := collection.New[string](spactree.NewSPaC(sfc.Hilbert, 2, testUniverse()), collection.Options{MaxBatch: 64})
	defer oracle.Close()

	const writers, readers, opsPerWriter, idsPerWriter = 8, 4, 400, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dialT(t, s)
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWriter; i++ {
				id := fmt.Sprintf("w%d-%d", w, rng.Intn(idsPerWriter))
				if rng.Float64() < 0.15 {
					if err := c.Del(id); err != nil {
						t.Error(err)
						return
					}
					oracle.Remove(id)
					continue
				}
				p := []int64{rng.Int63n(testSide + 1), rng.Int63n(testSide + 1)}
				if err := c.Set(id, p); err != nil {
					t.Error(err)
					return
				}
				oracle.Set(id, geom.Pt2(p[0], p[1]))
			}
		}(w)
	}
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			c := dialT(t, s)
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := []int64{rng.Int63n(testSide + 1), rng.Int63n(testSide + 1)}
				if i%2 == 0 {
					hits, err := c.Nearby(q, 10)
					if err != nil {
						t.Error(err)
						return
					}
					for _, h := range hits {
						if h.ID == "" || len(h.P) != 2 {
							t.Errorf("malformed hit %+v", h)
							return
						}
					}
				} else {
					lo := []int64{max(0, q[0]-50), max(0, q[1]-50)}
					hi := []int64{min(testSide, q[0]+50), min(testSide, q[1]+50)}
					hits, err := c.Within(lo, hi)
					if err != nil {
						t.Error(err)
						return
					}
					for _, h := range hits {
						if h.P[0] < lo[0] || h.P[0] > hi[0] || h.P[1] < lo[1] || h.P[1] > hi[1] {
							t.Errorf("hit %+v outside queried box [%v,%v]", h, lo, hi)
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	if t.Failed() {
		return
	}

	// Barrier both sides, then compare the full state.
	c := dialT(t, s)
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Validate(); err != nil {
		t.Fatal(err)
	}
	want := entriesKey(oracle.WithinIDs(testUniverse()))
	gotHits, err := c.Within([]int64{0, 0}, []int64{testSide, testSide})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(gotHits))
	for i, h := range gotHits {
		got[i] = fmt.Sprintf("%s@(%d,%d)", h.ID, h.P[0], h.P[1])
	}
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("server has %d objects, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("state mismatch at %d: server %s, oracle %s", i, got[i], want[i])
		}
	}
	// Spot-check GET against the oracle for every live and dead ID.
	for w := 0; w < writers; w++ {
		for i := 0; i < idsPerWriter; i++ {
			id := fmt.Sprintf("w%d-%d", w, i)
			wantP, wantLive := oracle.Get(id)
			p, found, err := c.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if found != wantLive {
				t.Fatalf("Get(%s): server found=%t, oracle %t", id, found, wantLive)
			}
			if found && (p[0] != wantP[0] || p[1] != wantP[1]) {
				t.Fatalf("Get(%s): server %v, oracle %v", id, p, wantP)
			}
		}
	}
}

func entriesKey(es []collection.Entry[string]) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = fmt.Sprintf("%s@(%d,%d)", e.ID, e.Point[0], e.Point[1])
	}
	sort.Strings(out)
	return out
}

func TestGracefulShutdownFlushesPending(t *testing.T) {
	s := New(newTestIndex(), Options{MaxBatch: 1 << 20, FlushInterval: -1})
	if err := s.Start("127.0.0.1:0", ""); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := c.Set(fmt.Sprintf("g%d", i), []int64{int64(i), int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// No flush happened yet (batch threshold not reached, no ticker).
	if got := s.Stats().Flushes; got != 0 {
		t.Fatalf("pre-shutdown flushes = %d, want 0", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	c.Close()
	// The final flush committed every acknowledged SET.
	coll := s.Collection()
	if n := coll.Len(); n != 25 {
		t.Fatalf("objects after shutdown = %d, want 25", n)
	}
	// The listener really is down.
	if _, err := Dial(s.Addr().String()); err == nil {
		t.Fatal("Dial after Shutdown should fail")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := New(newTestIndex(), Options{})
	if err := s.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	c := dialT(t, s)
	if err := c.Set("h", []int64{1, 2}); err != nil {
		t.Fatal(err)
	}

	base := "http://" + s.HTTPAddr().String()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("/healthz = %d %s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var st StatsPayload
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/stats body %s: %v", body, err)
	}
	if st.Ops[OpSet].Count != 1 {
		t.Fatalf("/stats = %+v, want 1 SET recorded", st)
	}
}

func TestStatsLatencyHistogram(t *testing.T) {
	var h obs.Hist
	for _, d := range []time.Duration{time.Microsecond, 2 * time.Microsecond, 100 * time.Microsecond} {
		h.Record(d)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.5); p50 < time.Microsecond || p50 > 8*time.Microsecond {
		t.Fatalf("p50 = %v, want on the order of the small observations", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 100*time.Microsecond {
		t.Fatalf("p99 = %v, want >= the largest observation's bucket", p99)
	}
	if m := h.Mean(); m < 30*time.Microsecond || m > 40*time.Microsecond {
		t.Fatalf("mean = %v, want ~34us", m)
	}
	var empty obs.Hist
	if empty.Quantile(0.99) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestRunLoad(t *testing.T) {
	s := startServer(t, newTestSharded(), Options{MaxBatch: 256})
	rep, err := RunLoad(LoadOptions{
		Addr:     s.Addr().String(),
		Conns:    4,
		Objects:  200,
		Side:     testSide,
		TotalOps: 2000,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 2000 || rep.Errors != 0 {
		t.Fatalf("report: %d ops, %d errors, want 2000/0", rep.Ops, rep.Errors)
	}
	if len(rep.PerOp) != 3 {
		t.Fatalf("per-op rows = %d, want SET/NEARBY/WITHIN", len(rep.PerOp))
	}
	if rep.Total.P99 < rep.Total.P50 || rep.Total.P50 <= 0 {
		t.Fatalf("quantiles inconsistent: p50=%v p99=%v", rep.Total.P50, rep.Total.P99)
	}
	var sb strings.Builder
	if err := rep.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	csvOut := sb.String()
	if !strings.Contains(csvOut, "op,count,errors,ops_per_sec") || !strings.Contains(csvOut, "total,") {
		t.Fatalf("CSV missing header or total row:\n%s", csvOut)
	}
	if lines := strings.Count(strings.TrimSpace(csvOut), "\n"); lines != 4 {
		t.Fatalf("CSV has %d rows, want header + 3 ops + total:\n%s", lines+1, csvOut)
	}
	// The load really reached the server.
	if st := s.Stats(); st.Ops[OpSet].Count == 0 || st.Ops[OpNearby].Count == 0 || st.Ops[OpWithin].Count == 0 {
		t.Fatalf("server saw no traffic: %+v", st.Ops)
	}
}

func TestRunLoadOptionHandling(t *testing.T) {
	// Invalid mixes are rejected before anything dials.
	for _, o := range []LoadOptions{
		{Addr: "never-dialed:1", SetFrac: 0.8, NearbyFrac: 0.4}, // sum > 1
		{Addr: "never-dialed:1", SetFrac: -0.1, NearbyFrac: 0.2},
		{Addr: "never-dialed:1", SetFrac: 0.2, NearbyFrac: -1},
	} {
		if _, err := RunLoad(o); err == nil {
			t.Fatalf("mix %v/%v accepted, want rejection", o.SetFrac, o.NearbyFrac)
		}
	}
	// An explicit zero fraction is literal, not "use the default".
	s := startServer(t, newTestIndex(), Options{MaxBatch: 64})
	rep, err := RunLoad(LoadOptions{
		Addr: s.Addr().String(), Conns: 2, Objects: 10, Side: testSide,
		TotalOps: 200, SetFrac: 0, NearbyFrac: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.PerOp {
		if o.Op != OpNearby {
			t.Fatalf("mix 0/1 issued %s ops: %+v", o.Op, rep.PerOp)
		}
	}
	// More connections than objects: clamped, and the full quota still
	// runs instead of idle connections silently dropping their share.
	rep, err = RunLoad(LoadOptions{
		Addr: s.Addr().String(), Conns: 8, Objects: 3, Side: testSide,
		TotalOps: 30, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conns != 3 || rep.Ops != 30 {
		t.Fatalf("conns=%d ops=%d, want the clamped 3 conns to run all 30 ops", rep.Conns, rep.Ops)
	}
}
