package service

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// latHist is a lock-free latency histogram with power-of-two nanosecond
// buckets: bucket i counts durations d with 2^i <= d < 2^(i+1) (bucket 0
// also takes d <= 1ns, the last bucket takes everything >= ~8.6s). Both
// the server's per-command counters and the load generator's client-side
// recorder use it: recording is two atomic adds, so many goroutines can
// record without contention, and quantiles are read off the bucket
// counts with power-of-two resolution — plenty for p50/p99 reporting.
type latHist struct {
	buckets [34]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64
}

// record adds one observation.
func (h *latHist) record(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	i := bits.Len64(uint64(ns)) - 1
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(uint64(ns))
}

// merge folds other into h (used to combine per-connection recorders).
func (h *latHist) merge(other *latHist) {
	for i := range h.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
	h.count.Add(other.count.Load())
	h.sumNs.Add(other.sumNs.Load())
}

// quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the q*count-th observation. Zero observations
// report zero.
func (h *latHist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total))) // nearest-rank
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			return time.Duration(uint64(1) << (i + 1))
		}
	}
	return time.Duration(uint64(1) << len(h.buckets))
}

// mean returns the exact mean latency (zero when empty).
func (h *latHist) mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// numOps is the number of protocol commands (metrics are a fixed array
// indexed by opIndex, so recording never allocates or locks).
const numOps = 7

// opOrder is the canonical command order for stats rendering.
var opOrder = [numOps]string{OpSet, OpDel, OpGet, OpNearby, OpWithin, OpStats, OpFlush}

// opIndex maps a canonical op name to its metrics slot (-1 if unknown).
func opIndex(op string) int {
	for i, name := range opOrder {
		if name == op {
			return i
		}
	}
	return -1
}

// opMetrics is one command's serving record.
type opMetrics struct {
	errs atomic.Uint64
	lat  latHist
}

// metrics is the server-wide counter set. Everything is atomic: handlers
// record without locks, snapshots are taken concurrently with traffic.
type metrics struct {
	ops      [numOps]opMetrics // indexed by opIndex
	badLines atomic.Uint64
}

// record logs one served command (op is an opIndex slot).
func (m *metrics) record(op int, d time.Duration, ok bool) {
	if op < 0 {
		m.badLines.Add(1)
		return
	}
	m.ops[op].lat.record(d)
	if !ok {
		m.ops[op].errs.Add(1)
	}
}

// snapshot renders the per-op map for StatsPayload, skipping ops that
// were never called.
func (m *metrics) snapshot() map[string]OpCounters {
	out := make(map[string]OpCounters, len(opOrder))
	for i, name := range opOrder {
		om := &m.ops[i]
		n := om.lat.count.Load()
		if n == 0 && om.errs.Load() == 0 {
			continue
		}
		out[name] = OpCounters{
			Count:  n,
			Errors: om.errs.Load(),
			MeanUs: float64(om.lat.mean()) / 1e3,
			P50Us:  float64(om.lat.quantile(0.50)) / 1e3,
			P99Us:  float64(om.lat.quantile(0.99)) / 1e3,
		}
	}
	return out
}
