package service

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// The per-command latency histogram lives in internal/obs (obs.Hist, the
// generalized form of the latency recorder this file used to define):
// recording is three atomic adds, so many connection goroutines record
// without contention, and quantiles are read off the power-of-two bucket
// counts — plenty for p50/p99 reporting. The same histograms are exposed
// on /metrics as psi_query_duration_ns series (see registerMetrics).

// numOps is the number of protocol commands (metrics are a fixed array
// indexed by opIndex, so recording never allocates or locks).
const numOps = 11

// opOrder is the canonical command order for stats rendering.
var opOrder = [numOps]string{OpSet, OpDel, OpGet, OpNearby, OpWithin, OpStats, OpFlush, OpSlowlog, OpPromote, OpDemote, OpFollow}

// opIndex maps a canonical op name to its metrics slot (-1 if unknown).
func opIndex(op string) int {
	for i, name := range opOrder {
		if name == op {
			return i
		}
	}
	return -1
}

// opMetrics is one command's serving record.
type opMetrics struct {
	errs atomic.Uint64
	lat  obs.Hist
}

// metrics is the server-wide counter set. Everything is atomic: handlers
// record without locks, snapshots are taken concurrently with traffic.
type metrics struct {
	ops      [numOps]opMetrics // indexed by opIndex
	badLines atomic.Uint64
}

// record logs one served command (op is an opIndex slot).
func (m *metrics) record(op int, d time.Duration, ok bool) {
	if op < 0 {
		m.badLines.Add(1)
		return
	}
	m.ops[op].lat.Record(d)
	if !ok {
		m.ops[op].errs.Add(1)
	}
}

// snapshot renders the per-op map for StatsPayload, skipping ops that
// were never called.
func (m *metrics) snapshot() map[string]OpCounters {
	out := make(map[string]OpCounters, len(opOrder))
	for i, name := range opOrder {
		om := &m.ops[i]
		n := om.lat.Count()
		if n == 0 && om.errs.Load() == 0 {
			continue
		}
		out[name] = OpCounters{
			Count:  n,
			Errors: om.errs.Load(),
			MeanUs: float64(om.lat.Mean()) / 1e3,
			P50Us:  float64(om.lat.Quantile(0.50)) / 1e3,
			P99Us:  float64(om.lat.Quantile(0.99)) / 1e3,
		}
	}
	return out
}

// registerMetrics exposes the server's serving counters on reg: one
// psi_query_duration_ns histogram series per command (op label), the
// per-command error counters, protocol rejects, and the connection
// gauge. The histograms are the very structs record writes — exposition
// reads the same atomics, nothing is copied on the serving path.
func (s *Server) registerMetrics(reg *obs.Registry) {
	for i, name := range opOrder {
		lbl := obs.Label{Key: "op", Value: name}
		reg.RegisterHistogram("psi_query_duration_ns",
			"Command serving latency in nanoseconds, per protocol op.",
			&s.met.ops[i].lat, lbl)
		om := &s.met.ops[i]
		reg.CounterFunc("psi_command_errors_total",
			"Commands that returned an error response, per protocol op.",
			om.errs.Load, lbl)
	}
	reg.CounterFunc("psi_bad_lines_total",
		"Protocol-level rejects (unparseable or oversized lines).",
		s.met.badLines.Load)
	reg.GaugeFunc("psi_conns",
		"Currently open client connections.",
		func() float64 {
			s.mu.Lock()
			n := len(s.conns)
			s.mu.Unlock()
			return float64(n)
		})
	if s.slow != nil {
		reg.CounterFunc("psi_slow_queries_total",
			"Commands slower than the -slowlog threshold.",
			s.slow.Total)
	}
	// Failover series are registered by the Server, not by the
	// Leader/Follower incarnations: PROMOTE and FOLLOW replace those at
	// runtime, and a registry panics on duplicate registration.
	reg.GaugeFunc("psi_repl_role",
		"Replication role: 0 none, 1 leader, 2 follower, 3 fenced.",
		func() float64 { return float64(s.role.Load()) })
	reg.GaugeFunc("psi_repl_term",
		"Leader term this server has adopted (journaled in its WAL snapshot).",
		func() float64 {
			if s.wal == nil {
				return 0
			}
			return float64(s.wal.Term())
		})
	reg.CounterFunc("psi_repl_role_changes_total",
		"Role transitions this process (promotions, demotions, deposals, re-points).",
		s.roleChanges.Load)
}
