package service

// Failover state-machine tests: PROMOTE/DEMOTE/FOLLOW transitions on
// in-process Servers, including every invalid transition, double
// promotion, promotion of a disconnected follower, and a full
// leader-loss handover with term fencing. The cross-process chaos
// version (kill -9 mid-churn) is TestChaosPromote in cmd/psid.

import (
	"strings"
	"testing"
	"time"
)

// startStandby runs a follower of leader that also carries a standby
// listen address for PROMOTE to bind.
func startStandby(t *testing.T, dir string, leader *Server, id string) *Server {
	t.Helper()
	return startDurable(t, dir, Options{
		ReplicaOf:  leader.ReplAddr().String(),
		ReplListen: "127.0.0.1:0",
		ReplID:     id,
	})
}

// roleOf snapshots the server's current role.
func roleOf(s *Server) replRole { return replRole(s.role.Load()) }

func TestFailoverInvalidTransitions(t *testing.T) {
	leader := startLeader(t, t.TempDir(), Options{})
	follower := startFollowerOf(t, t.TempDir(), leader, "f")
	waitConverged(t, leader, follower)
	plain := startDurable(t, t.TempDir(), Options{})

	cases := []struct {
		name string
		call func() error
		want string // error substring; the role must not change
	}{
		{"promote a leader", func() error { return leader.Promote("") }, "already the leader"},
		{"follow on a leader", func() error { return leader.Follow("127.0.0.1:1") }, "DEMOTE it first"},
		{"demote a follower", func() error { return follower.Demote("") }, "not the leader"},
		{"promote without a listen address", func() error { return follower.Promote("") }, "no listen address"},
		{"promote a non-replica", func() error { return plain.Promote("127.0.0.1:0") }, "not a replica"},
		{"demote a non-replica", func() error { return plain.Demote("") }, "not the leader"},
		{"follow on a non-replica", func() error { return plain.Follow("127.0.0.1:1") }, "not a replica"},
		{"promote on an unbindable address", func() error { return follower.Promote("256.0.0.1:bad") }, "listen"},
	}
	for _, tc := range cases {
		beforeL, beforeF, beforeP := roleOf(leader), roleOf(follower), roleOf(plain)
		err := tc.call()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
		if roleOf(leader) != beforeL || roleOf(follower) != beforeF || roleOf(plain) != beforeP {
			t.Fatalf("%s: a refused transition changed a role", tc.name)
		}
	}
	if n := leader.roleChanges.Load() + follower.roleChanges.Load() + plain.roleChanges.Load(); n != 0 {
		t.Fatalf("refused transitions bumped role_changes to %d", n)
	}
}

func TestFailoverDoublePromote(t *testing.T) {
	leader := startLeader(t, t.TempDir(), Options{})
	follower := startStandby(t, t.TempDir(), leader, "spare")
	waitConverged(t, leader, follower)

	if err := follower.Promote(""); err != nil {
		t.Fatalf("first promote: %v", err)
	}
	if got := roleOf(follower); got != roleLeader {
		t.Fatalf("after promote: role %v, want leader", got)
	}
	if term := follower.wal.Term(); term != 1 {
		t.Fatalf("after promote: term %d, want 1", term)
	}
	if err := follower.Promote(""); err == nil || !strings.Contains(err.Error(), "already the leader") {
		t.Fatalf("double promote: err = %v, want refusal", err)
	}
	if term := follower.wal.Term(); term != 1 {
		t.Fatalf("double promote bumped the term to %d", term)
	}
	if n := follower.roleChanges.Load(); n != 1 {
		t.Fatalf("role_changes = %d after one promotion, want 1", n)
	}
}

// TestFailoverPromoteDisconnected promotes a follower whose leader is
// long gone — the normal disaster shape: the promotion must not depend
// on any live session, only on the locally journaled state.
func TestFailoverPromoteDisconnected(t *testing.T) {
	leader := startLeader(t, t.TempDir(), Options{})
	lc := dialT(t, leader)
	for _, id := range []string{"a", "b", "c"} {
		if err := lc.Set(id, []int64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	follower := startFollowerOf(t, t.TempDir(), leader, "orphan")
	waitConverged(t, leader, follower)
	shutdownT(t, leader)

	if err := follower.Promote("127.0.0.1:0"); err != nil {
		t.Fatalf("promoting a disconnected follower: %v", err)
	}
	fc := dialT(t, follower)
	if err := fc.Set("post", []int64{9, 9}); err != nil {
		t.Fatalf("write to promoted leader: %v", err)
	}
	for _, id := range []string{"a", "b", "c", "post"} {
		if _, found, err := fc.Get(id); err != nil || !found {
			t.Fatalf("GET %s on promoted leader: found=%t err=%v", id, found, err)
		}
	}
	st := follower.Stats().Repl
	if st.Role != "leader" || st.Term != 1 || st.RoleChanges != 1 {
		t.Fatalf("promoted stats = %+v, want leader/term 1/1 change", st)
	}
}

// TestFailoverHandover is the full in-process failover: the leader is
// lost, a follower is promoted, the survivor is re-pointed, the stale
// leader is fenced on contact with the new timeline, and finally
// rejoins it as a follower.
func TestFailoverHandover(t *testing.T) {
	leader := startLeader(t, t.TempDir(), Options{})
	lc := dialT(t, leader)
	for _, id := range []string{"a", "b"} {
		if err := lc.Set(id, []int64{3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	f1 := startStandby(t, t.TempDir(), leader, "f1")
	f2 := startFollowerOf(t, t.TempDir(), leader, "f2")
	waitConverged(t, leader, f1)
	waitConverged(t, leader, f2)

	// Handover: promote f1, re-point f2 at it.
	if err := f1.Promote(""); err != nil {
		t.Fatal(err)
	}
	f1c := dialT(t, f1)
	if err := f1c.Set("n1", []int64{7, 7}); err != nil {
		t.Fatalf("write to promoted leader: %v", err)
	}
	if err := f2.Follow(f1.ReplAddr().String()); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, f1, f2)
	if st := f2.Stats().Repl; st.Term != 1 || st.Role != "follower" {
		t.Fatalf("re-pointed follower stats = %+v, want term 1 follower", st)
	}
	// The cross-term re-point bootstraps (timelines must not mix), and
	// the readonly refusal now points at the new leader.
	if st := f2.Stats().Repl.Follower; st.Bootstraps != 1 {
		t.Fatalf("f2 bootstraps = %d, want 1 (term boundary forces it)", st.Bootstraps)
	}
	if resp, err := dialT(t, f2).Do(Request{Op: OpSet, ID: "x", P: []int64{1, 1}}); err != nil {
		t.Fatal(err)
	} else if resp.Code != CodeReadonly || resp.Leader != f1.ReplAddr().String() {
		t.Fatalf("readonly refusal = %+v, want leader hint %s", resp, f1.ReplAddr())
	}

	// The stale leader survived. The moment a higher-term follower dials
	// it, it must fence itself and refuse writes with CodeFenced.
	if err := f2.Follow(leader.ReplAddr().String()); err != nil {
		t.Fatal(err)
	}
	waitFenced(t, leader)
	resp, err := lc.Do(Request{Op: OpSet, ID: "split", P: []int64{6, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeFenced {
		t.Fatalf("write on a deposed leader = %+v, want %s", resp, CodeFenced)
	}
	if st := leader.Stats().Repl; st.Role != "fenced" {
		t.Fatalf("deposed leader role = %s, want fenced", st.Role)
	}
	// Repair the detour and fold the old leader into the new timeline.
	if err := f2.Follow(f1.ReplAddr().String()); err != nil {
		t.Fatal(err)
	}
	if err := leader.Follow(f1.ReplAddr().String()); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, f1, leader)
	waitConverged(t, f1, f2)
	olc := dialT(t, leader)
	if _, found, err := olc.Get("n1"); err != nil || !found {
		t.Fatalf("post-promotion write missing on the rejoined ex-leader: found=%t err=%v", found, err)
	}
	if _, found, _ := olc.Get("split"); found {
		t.Fatal("fenced write leaked into the rejoined ex-leader")
	}
	if resp, err := olc.Do(Request{Op: OpSet, ID: "y", P: []int64{1, 1}}); err != nil {
		t.Fatal(err)
	} else if resp.Code != CodeReadonly || resp.Leader != f1.ReplAddr().String() {
		t.Fatalf("rejoined ex-leader refusal = %+v, want readonly with leader hint", resp)
	}
	if st := leader.Stats().Repl; st.Term != 1 || st.RoleChanges != 2 {
		t.Fatalf("rejoined ex-leader stats = %+v, want term 1 after 2 changes (deposed, rejoined)", st)
	}
}

// TestFailoverDemote pins the operator-initiated path: DEMOTE fences
// without any wire contact, records the hint, and FOLLOW rejoins.
func TestFailoverDemote(t *testing.T) {
	leader := startLeader(t, t.TempDir(), Options{})
	lc := dialT(t, leader)
	if err := lc.Set("a", []int64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := leader.Demote("10.0.0.9:7601"); err != nil {
		t.Fatal(err)
	}
	resp, err := lc.Do(Request{Op: OpSet, ID: "b", P: []int64{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Code != CodeFenced || resp.Leader != "10.0.0.9:7601" {
		t.Fatalf("write on a demoted leader = %+v, want fenced with the hinted leader", resp)
	}
	// Reads still serve the frozen state.
	if _, found, err := lc.Get("a"); err != nil || !found {
		t.Fatalf("read on a demoted leader: found=%t err=%v", found, err)
	}
	if err := leader.Demote(""); err == nil {
		t.Fatal("double demote was accepted")
	}
	if err := leader.Promote(""); err == nil || !strings.Contains(err.Error(), "deposed") {
		t.Fatalf("promote on a fenced server: err = %v, want refusal", err)
	}
}

// waitFenced polls until s has fenced itself (the deposed callback runs
// on a replication connection goroutine, so it is asynchronous to the
// FOLLOW that triggers it).
func waitFenced(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !s.roleIs(roleFenced) {
		if time.Now().After(deadline) {
			t.Fatalf("server never fenced itself (role %v)", roleOf(s))
		}
		time.Sleep(2 * time.Millisecond)
	}
}
