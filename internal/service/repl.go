package service

// Replication wiring: how a Server becomes a leader (Options.ReplListen)
// or a read-only follower (Options.ReplicaOf) of the internal/repl
// log-shipping protocol. Both roles require the WAL — replication ships
// exactly the committed flush windows the WAL journals, in the same
// encoding, and a follower's resume position after a restart IS its
// recovered WAL sequence. docs/replication.md has the full contract;
// cmd/psid surfaces the knobs as -repl / -replica-of / -repl-id.
//
// Leader: the journal hook gains one step — after the WAL append, the
// committed window is published to the repl.Hub (still under the flush
// lock, so the hub head and the committed state can never disagree).
// Follower bootstraps read the state through Collection.Checkpoint with
// the hub sequence captured inside, the same lock-consistency trick.
//
// Follower: the repl.Follower session goroutine is the only writer.
// The background flusher is disabled and the batch trigger pushed out
// of reach, so flushes happen exactly when the applier calls them: one
// per received window, journaled under the LEADER's sequence
// (wal.Log.AppendWindowAt). Client SET/DEL/FLUSH are refused with
// CodeReadonly; GET/NEARBY/WITHIN serve the replicated state through
// the usual epoch-pinned snapshot path.

import (
	"errors"
	"fmt"
	"iter"
	"net"

	"repro/internal/geom"
	"repro/internal/repl"
	"repro/internal/wal"
)

// validateRepl rejects contradictory replication configurations before
// any resource is opened.
func (o Options) validateRepl() error {
	if o.ReplListen != "" && o.ReplicaOf != "" {
		return errors.New("psid: ReplListen and ReplicaOf are mutually exclusive (a server is a leader or a follower, not both)")
	}
	if (o.ReplListen != "" || o.ReplicaOf != "") && o.WALDir == "" {
		return errors.New("psid: replication requires a write-ahead log (set WALDir; replication ships and resumes from journaled windows)")
	}
	return nil
}

// readonly reports whether this server refuses client writes (it is a
// follower; the replication stream is the only writer).
func (s *Server) readonly() bool { return s.opts.ReplicaOf != "" }

// rejectReadonly is the dispatch guard for SET/DEL/FLUSH on a follower.
func rejectReadonly(op string) result {
	return errResultf(CodeReadonly, "%s: this server is a read-only replica; write to the leader", op)
}

// journalHook builds the role-appropriate durability hook installed on
// the Collection (see openWAL for the install-after-replay ordering).
func (s *Server) journalHook(l *wal.Log[string]) func(ops []wal.Op[string]) error {
	switch {
	case s.hub != nil: // leader: journal, then fan out
		return func(ops []wal.Op[string]) error {
			if err := l.AppendWindow(ops); err != nil {
				s.walFail(err)
				return err
			}
			// Still under the flush lock: the hub head advances in lockstep
			// with the WAL, so a concurrent Checkpoint sees both or neither.
			s.hub.Publish(l.LastSeq(), ops)
			return nil
		}
	case s.readonly(): // follower: journal under the leader's sequence
		return func(ops []wal.Op[string]) error {
			// replSkipJournal/replPendingSeq are plain fields: the hook runs
			// synchronously inside the flush that the replication applier
			// (the only writer) itself invoked.
			if s.replSkipJournal {
				return nil
			}
			if err := l.AppendWindowAt(s.replPendingSeq, ops); err != nil {
				s.walFail(err)
				return err
			}
			return nil
		}
	default:
		return func(ops []wal.Op[string]) error {
			if err := l.AppendWindow(ops); err != nil {
				s.walFail(err)
				return err
			}
			return nil
		}
	}
}

// startRepl binds the replication role during Start, after openWAL has
// recovered state: the leader listener starts accepting followers, or
// the follower starts dialing its leader.
func (s *Server) startRepl(logf func(format string, args ...any)) error {
	switch {
	case s.opts.ReplListen != "":
		ln, err := net.Listen("tcp", s.opts.ReplListen)
		if err != nil {
			return fmt.Errorf("psid: listen repl %s: %w", s.opts.ReplListen, err)
		}
		s.replLead = repl.NewLeader(repl.LeaderOptions[string]{
			Codec:    wal.StringCodec{},
			Hub:      s.hub,
			Snapshot: s.replSnapshot,
			Obs:      s.reg,
			Logf:     logf,
		})
		s.replLead.Serve(ln)
	case s.readonly():
		s.replFoll = repl.NewFollower[string](replApplier{s}, repl.FollowerOptions[string]{
			Addr:  s.opts.ReplicaOf,
			ID:    s.opts.ReplID,
			Codec: wal.StringCodec{},
			Obs:   s.reg,
			Logf:  logf,
		})
		s.replFoll.Start()
	}
	return nil
}

// stopRepl is Shutdown's replication tail, run before the Collection's
// final flush: the follower must stop first so no apply (and no journal
// append under a leader sequence) is in flight when the WAL folds its
// final snapshot.
func (s *Server) stopRepl() {
	if s.replFoll != nil {
		s.replFoll.Stop()
	}
	if s.replLead != nil {
		s.replLead.Close()
	}
}

// ReplAddr returns the bound replication listener address (nil unless
// this server is a leader that has Started).
func (s *Server) ReplAddr() net.Addr {
	if s.replLead == nil {
		return nil
	}
	return s.replLead.Addr()
}

// replSnapshot is the leader's bootstrap capture: the full committed
// state as Set ops, plus the hub sequence it folds. Checkpoint holds
// the flush lock, and the hub only advances under that lock (the
// journal hook), so reading the hub head inside the callback pins an
// exactly-consistent (state, seq) pair.
func (s *Server) replSnapshot() (uint64, []wal.Op[string], error) {
	var seq uint64
	var entries []wal.Op[string]
	s.coll.Checkpoint(func(objects int, it iter.Seq2[string, geom.Point]) {
		seq = s.hub.LastSeq()
		entries = make([]wal.Op[string], 0, objects)
		for id, p := range it {
			entries = append(entries, wal.Op[string]{ID: id, P: p})
		}
	})
	return seq, entries, nil
}

// replApplier adapts the Server to repl.Applier: the follower session
// goroutine drives the Collection's flush commit with the leader's
// windows, journaling each under the leader's sequence so the WAL's
// recovered sequence doubles as the replication resume point.
type replApplier struct{ s *Server }

// AppliedSeq is the follower's durable position: the last leader window
// journaled locally (which recovery restores after a crash, making the
// resume handshake exact across restarts).
func (a replApplier) AppliedSeq() uint64 { return a.s.wal.LastSeq() }

// ApplyWindow commits one leader window: enqueue the netted ops, flush
// (journal under seq + apply + publish epoch), and verify the journal
// landed. The repl.Follower guarantees seq == AppliedSeq()+1.
func (a replApplier) ApplyWindow(seq uint64, ops []wal.Op[string]) error {
	s := a.s
	if s.walFailed.Load() {
		return errors.New("local wal failed; refusing to advance the replicated state")
	}
	if len(ops) == 0 {
		// Nothing to flush, but the position must still advance durably or
		// the resume handshake would re-request this window forever.
		if err := s.wal.AppendWindowAt(seq, nil); err != nil {
			s.walFail(err)
			return err
		}
		return nil
	}
	s.replPendingSeq = seq
	for _, op := range ops {
		if op.Del {
			s.coll.Remove(op.ID)
		} else {
			s.coll.Set(op.ID, op.P)
		}
	}
	s.coll.Flush()
	// The journal hook's error is counted, not returned, by Flush; the
	// sequence check catches it exactly (the append either moved LastSeq
	// to seq or failed).
	if got := s.wal.LastSeq(); got != seq {
		return fmt.Errorf("window %d did not journal (wal at %d)", seq, got)
	}
	return nil
}

// Bootstrap replaces the full local state with the leader's snapshot:
// remove everything the snapshot lacks, set everything it has, commit
// as one un-journaled flush, then persist the new baseline as a WAL
// snapshot at the leader's sequence — which may regress below the local
// one (a rebuilt or wiped leader), all the way to zero.
func (a replApplier) Bootstrap(seq uint64, entries []wal.Op[string]) error {
	s := a.s
	if s.walFailed.Load() {
		return errors.New("local wal failed; refusing to bootstrap")
	}
	keep := make(map[string]geom.Point, len(entries))
	for _, e := range entries {
		keep[e.ID] = e.P
	}
	var stale []string
	s.coll.Checkpoint(func(objects int, it iter.Seq2[string, geom.Point]) {
		for id := range it {
			if _, ok := keep[id]; !ok {
				stale = append(stale, id)
			}
		}
	})
	for _, id := range stale {
		s.coll.Remove(id)
	}
	for _, e := range entries {
		s.coll.Set(e.ID, e.P)
	}
	// The snapshot below persists this state wholesale; journaling the
	// diff too would append windows at a stale (possibly higher) sequence.
	s.replSkipJournal = true
	s.coll.Flush()
	s.replSkipJournal = false
	err := s.wal.WriteSnapshotAt(seq, len(keep), func(yield func(string, geom.Point) bool) {
		for id, p := range keep {
			if !yield(id, p) {
				return
			}
		}
	})
	if err != nil {
		s.walFail(err)
		return err
	}
	return nil
}

// ReplPayload is the replication block of /stats: the role plus the
// role-specific counters.
type ReplPayload struct {
	// Role is "leader" or "follower".
	Role     string               `json:"role"`
	Leader   *repl.LeaderStats    `json:"leader,omitempty"`
	Follower *repl.FollowerStatus `json:"follower,omitempty"`
}

// replStats snapshots the replication block (nil when the server
// replicates nothing).
func (s *Server) replStats() *ReplPayload {
	switch {
	case s.replLead != nil:
		st := s.replLead.Stats()
		return &ReplPayload{Role: "leader", Leader: &st}
	case s.replFoll != nil:
		st := s.replFoll.Status()
		return &ReplPayload{Role: "follower", Follower: &st}
	}
	return nil
}
