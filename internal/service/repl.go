package service

// Replication wiring: how a Server becomes a leader (Options.ReplListen)
// or a read-only follower (Options.ReplicaOf) of the internal/repl
// log-shipping protocol, and how those roles change at runtime — the
// PROMOTE/DEMOTE/FOLLOW admin commands and the term-fencing contract
// around them. Both roles require the WAL — replication ships exactly
// the committed flush windows the WAL journals, in the same encoding,
// and a follower's resume position after a restart IS its recovered WAL
// sequence. docs/replication.md has the full contract; cmd/psid
// surfaces the knobs as -repl / -replica-of / -repl-id.
//
// Leader: the journal hook gains one step — after the WAL append, the
// committed window is published to the repl.Hub (still under the flush
// lock, so the hub head and the committed state can never disagree).
// Follower bootstraps read the state through Collection.Checkpoint with
// the hub sequence captured inside, the same lock-consistency trick.
//
// Follower: the repl.Follower session goroutine is the only writer.
// The background flusher is disabled and the batch trigger pushed out
// of reach, so flushes happen exactly when the applier calls them: one
// per received window, journaled under the LEADER's sequence
// (wal.Log.AppendWindowAt). Client SET/DEL/FLUSH are refused with
// CodeReadonly; GET/NEARBY/WITHIN serve the replicated state through
// the usual epoch-pinned snapshot path.
//
// Roles are a tiny state machine, driven by operators (and tested as a
// table in repl_failover_test.go):
//
//	none ───────────────────────── fixed for the process's life
//	follower ──PROMOTE──▶ leader         (term bumps, journaled)
//	follower ──FOLLOW────▶ follower      (re-pointed at a new leader)
//	leader ──DEMOTE──────▶ fenced        (operator-initiated)
//	leader ──(deposed)───▶ fenced        (saw a higher term on the wire)
//	fenced ──FOLLOW──────▶ follower      (rejoins the promoted timeline)
//
// Fencing: every role transition that creates a new writable timeline
// (PROMOTE) bumps the monotonic leader term, which rides in every
// replication handshake and window frame. A deposed leader refuses
// writes with CodeFenced — accepting one could fork acknowledged
// history — and followers sever streams from lower-term leaders before
// applying anything (internal/repl has the wire-level checks).

import (
	"errors"
	"fmt"
	"iter"
	"net"

	"repro/internal/geom"
	"repro/internal/repl"
	"repro/internal/wal"
)

// replRole is the server's replication role, stored in Server.role.
// The numeric values are the psi_repl_role gauge's encoding and must
// not be reordered.
type replRole int32

const (
	// roleNone: no replication configured; reads and writes serve
	// locally and the role never changes.
	roleNone replRole = iota
	// roleLeader: accepts writes, journals them, fans committed windows
	// out to followers.
	roleLeader
	// roleFollower: read-only; the replication applier is the only
	// writer.
	roleFollower
	// roleFenced: an ex-leader deposed by a higher term (or DEMOTE).
	// Reads serve the frozen state; writes are refused with CodeFenced
	// until FOLLOW rejoins it to the promoted timeline.
	roleFenced
)

func (r replRole) String() string {
	switch r {
	case roleLeader:
		return "leader"
	case roleFollower:
		return "follower"
	case roleFenced:
		return "fenced"
	}
	return "none"
}

// validateRepl rejects contradictory replication configurations before
// any resource is opened. ReplListen plus ReplicaOf is NOT one of them:
// that combination is a hot standby — start as a follower, with the
// listen address PROMOTE will bind.
func (o Options) validateRepl() error {
	if (o.ReplListen != "" || o.ReplicaOf != "") && o.WALDir == "" {
		return errors.New("psid: replication requires a write-ahead log (set WALDir; replication ships and resumes from journaled windows)")
	}
	return nil
}

// initialRole derives the boot-time role from the options (NewDurable
// stores it before any goroutine runs).
func (o Options) initialRole() replRole {
	switch {
	case o.ReplicaOf != "":
		return roleFollower
	case o.ReplListen != "":
		return roleLeader
	}
	return roleNone
}

// roleIs reports whether the server currently holds r.
func (s *Server) roleIs(r replRole) bool { return replRole(s.role.Load()) == r }

// leaderHintAddr returns the last-known leader address ("" when there
// is no hint — a deposed leader that only ever saw a term, never an
// address).
func (s *Server) leaderHintAddr() string {
	if v := s.leaderHint.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// rejectWrite is the dispatch guard for SET/DEL/FLUSH: nil when this
// server accepts writes, else the readonly/fenced error (carrying the
// leader hint) to return instead.
func (s *Server) rejectWrite(op string) *result {
	switch replRole(s.role.Load()) {
	case roleFollower:
		r := errResultf(CodeReadonly, "%s: this server is a read-only replica; write to the leader", op)
		r.leader = s.leaderHintAddr()
		return &r
	case roleFenced:
		r := errResultf(CodeFenced, "%s: this server was deposed by a higher-term leader; writes are fenced (FOLLOW the new leader to rejoin)", op)
		r.leader = s.leaderHintAddr()
		return &r
	}
	return nil
}

// journalHook builds the durability hook installed on the Collection
// (see openWAL for the install-after-replay ordering). One closure
// serves every role — PROMOTE and FOLLOW flip the role at runtime, and
// the hook re-reads it per flush: a follower journals under the
// leader's sequence, a leader journals then fans out, everything else
// just journals. The hub read is safe lockless: it is written before
// the leader role is stored, and only read after the role is observed.
func (s *Server) journalHook(l *wal.Log[string]) func(ops []wal.Op[string]) error {
	return func(ops []wal.Op[string]) error {
		// replSkipJournal/replPendingSeq are plain fields: the hook runs
		// synchronously inside the flush that the replication applier
		// (the only writer while a follower) itself invoked.
		if s.replSkipJournal {
			return nil
		}
		if s.roleIs(roleFollower) {
			if err := l.AppendWindowAt(s.replPendingSeq, ops); err != nil {
				s.walFail(err)
				return err
			}
			return nil
		}
		if err := l.AppendWindow(ops); err != nil {
			s.walFail(err)
			return err
		}
		if s.roleIs(roleLeader) {
			// Still under the flush lock: the hub head advances in lockstep
			// with the WAL, so a concurrent Checkpoint sees both or neither.
			s.hub.Publish(l.LastSeq(), ops)
		}
		return nil
	}
}

// newHub builds the leader's catch-up ring with its head at the WAL's
// recovered sequence, so a follower already there resumes with an empty
// tail instead of a snapshot.
func (s *Server) newHub() *repl.Hub[string] {
	return repl.NewHub[string](wal.StringCodec{}, s.wal.LastSeq(),
		s.opts.ReplRetainWindows, s.opts.ReplRetainBytes)
}

// newLeader builds the leader endpoint over the current hub. reg is the
// metric registry for the first incarnation only: a promote-created
// leader passes nil, because the registry panics on duplicate series
// and the boot-time incarnation (if any) already owns them.
func (s *Server) newLeader(withObs bool) *repl.Leader[string] {
	opts := repl.LeaderOptions[string]{
		Codec:     wal.StringCodec{},
		Hub:       s.hub,
		Snapshot:  s.replSnapshot,
		Term:      s.wal.Term,
		OnDeposed: s.deposed,
		Logf:      s.opts.Logf,
	}
	if withObs {
		opts.Obs = s.reg
	}
	return repl.NewLeader(opts)
}

// newFollower builds the follower session loop against addr (same Obs
// rule as newLeader).
func (s *Server) newFollower(addr string, withObs bool) *repl.Follower[string] {
	opts := repl.FollowerOptions[string]{
		Addr:  addr,
		ID:    s.opts.ReplID,
		Codec: wal.StringCodec{},
		Logf:  s.opts.Logf,
	}
	if withObs {
		opts.Obs = s.reg
	}
	return repl.NewFollower[string](replApplier{s}, opts)
}

// startRepl binds the boot-time replication role during Start, after
// openWAL has recovered state: the leader listener starts accepting
// followers, or the follower starts dialing its leader.
func (s *Server) startRepl(logf func(format string, args ...any)) error {
	switch replRole(s.role.Load()) {
	case roleLeader:
		ln, err := net.Listen("tcp", s.opts.ReplListen)
		if err != nil {
			return fmt.Errorf("psid: listen repl %s: %w", s.opts.ReplListen, err)
		}
		s.replLead = s.newLeader(true)
		s.replLead.Serve(ln)
	case roleFollower:
		s.replFoll = s.newFollower(s.opts.ReplicaOf, true)
		s.replFoll.Start()
	}
	return nil
}

// Promote flips a running follower into the replication leader, in
// place: stop the session against the old leader, bump and journal the
// leader term (the WAL snapshot is the durability of the promotion),
// seed the catch-up hub from the recovered sequence, start accepting
// followers on addr (or Options.ReplListen when addr is empty), and
// re-arm the Collection's leader-style flush triggers. On return the
// server accepts writes; acknowledged windows from the follower life
// are all present — they were applied and journaled before the old
// session stopped.
//
// Errors leave the server's role untouched, with one documented
// exception: a failed term snapshot aborts the promotion after the
// follower session has stopped, but that failure also marks the WAL
// failed, which is already fatal for the process (see Server.Fatal).
func (s *Server) Promote(addr string) error {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	switch replRole(s.role.Load()) {
	case roleLeader:
		return errors.New("already the leader (double promote?)")
	case roleFenced:
		return errors.New("this server was deposed; FOLLOW the current leader instead")
	case roleNone:
		return errors.New("not a replica (start with -replica-of, optionally plus -repl as the standby listen address)")
	}
	if addr == "" {
		addr = s.opts.ReplListen
	}
	if addr == "" {
		return errors.New("no listen address (pass addr, or start with -repl)")
	}
	// Bind before any state changes so an unusable address aborts cleanly.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", addr, err)
	}
	// Stop the old session: after Stop returns no apply is in flight,
	// and the WAL's last sequence is the new timeline's base.
	s.replFoll.Stop()
	s.replFoll = nil
	// The term bump is what fences the old leader; the snapshot is what
	// makes it survive a crash (term rides in the snapshot header).
	s.wal.SetTerm(s.wal.Term() + 1)
	if err := s.SnapshotWAL(); err != nil {
		ln.Close()
		s.walFail(err)
		return fmt.Errorf("journaling term %d: %w", s.wal.Term(), err)
	}
	s.hub = s.newHub()
	lead := s.newLeader(false)
	lead.Serve(ln)
	s.replLead = lead
	// Back to leader-style flushing: client-triggered batches and the
	// background cadence (both were parked while the applier was the
	// only writer).
	s.coll.SetMaxBatch(s.opts.MaxBatch)
	s.coll.StartFlusher(s.opts.FlushInterval)
	s.leaderHint.Store("")
	s.role.Store(int32(roleLeader))
	s.roleChanges.Add(1)
	if s.opts.Logf != nil {
		s.opts.Logf("psid: promoted to leader, term %d, repl listener %s", s.wal.Term(), ln.Addr())
	}
	return nil
}

// Demote fences a running leader: writes are refused with CodeFenced
// from the next command on. The replication listener stays up so
// still-attached followers drain what was already committed and then
// idle; FOLLOW converts this server into a follower of the promoted
// node. addr, when non-empty, is recorded as the leader hint returned
// with fenced errors.
func (s *Server) Demote(addr string) error {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if !s.roleIs(roleLeader) {
		return errors.New("not the leader")
	}
	if addr != "" {
		s.leaderHint.Store(addr)
	}
	s.role.Store(int32(roleFenced))
	s.roleChanges.Add(1)
	if s.opts.Logf != nil {
		s.opts.Logf("psid: demoted at term %d; writes fenced", s.wal.Term())
	}
	return nil
}

// deposed is the repl.Leader's OnDeposed callback: a follower's
// handshake carried a higher term, so another node has been promoted
// and accepting writes here could fork acknowledged history. It runs on
// a replication connection goroutine, so it must not block, take
// replMu, or call back into the Leader (Close waits on that very
// goroutine) — it only CASes the role, which the dispatch path reads on
// the next write.
func (s *Server) deposed(term uint64) {
	if s.role.CompareAndSwap(int32(roleLeader), int32(roleFenced)) {
		s.roleChanges.Add(1)
		if s.opts.Logf != nil {
			s.opts.Logf("psid: deposed by leader term %d (local term %d); writes fenced", term, s.wal.Term())
		}
	}
}

// Follow re-points this server's replication at addr. On a follower it
// severs the current session and redials (the handshake resumes, or
// bootstraps across a term boundary). On a fenced ex-leader it shuts
// the leader machinery and joins the promoted timeline as a follower —
// the first session's snapshot bootstrap is what discards any
// unreplicated tail the old timeline had and adopts the new term. On an
// active leader it errors: DEMOTE first, so stepping a leader down is
// always an explicit, logged decision.
func (s *Server) Follow(addr string) error {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	switch replRole(s.role.Load()) {
	case roleFollower:
		s.replFoll.SetAddr(addr)
		s.leaderHint.Store(addr)
		if s.opts.Logf != nil {
			s.opts.Logf("psid: re-pointed at leader %s", addr)
		}
		return nil
	case roleLeader:
		return errors.New("this server is the leader; DEMOTE it first")
	case roleNone:
		return errors.New("not a replica (start with -replica-of)")
	}
	// fenced → follower.
	if s.replLead != nil {
		s.replLead.Close()
		s.replLead = nil
	}
	// Park the leader-style flush triggers again: from here the
	// replication applier is the only writer.
	s.coll.StopFlusher()
	s.coll.SetMaxBatch(1 << 30)
	f := s.newFollower(addr, false)
	s.replFoll = f
	s.leaderHint.Store(addr)
	// Role first: the applier's flushes must see roleFollower in the
	// journal hook before the first window can arrive.
	s.role.Store(int32(roleFollower))
	s.roleChanges.Add(1)
	f.Start()
	if s.opts.Logf != nil {
		s.opts.Logf("psid: rejoining as follower of %s (local term %d)", addr, s.wal.Term())
	}
	return nil
}

// stopRepl is Shutdown's replication tail, run before the Collection's
// final flush: the follower must stop first so no apply (and no journal
// append under a leader sequence) is in flight when the WAL folds its
// final snapshot.
func (s *Server) stopRepl() {
	s.replMu.Lock()
	f, l := s.replFoll, s.replLead
	s.replMu.Unlock()
	if f != nil {
		f.Stop()
	}
	if l != nil {
		l.Close()
	}
}

// ReplAddr returns the bound replication listener address (nil unless
// this server is — or, fenced, was — a leader).
func (s *Server) ReplAddr() net.Addr {
	s.replMu.Lock()
	l := s.replLead
	s.replMu.Unlock()
	if l == nil {
		return nil
	}
	return l.Addr()
}

// replSnapshot is the leader's bootstrap capture: the full committed
// state as Set ops, plus the hub sequence it folds. Checkpoint holds
// the flush lock, and the hub only advances under that lock (the
// journal hook), so reading the hub head inside the callback pins an
// exactly-consistent (state, seq) pair.
func (s *Server) replSnapshot() (uint64, []wal.Op[string], error) {
	var seq uint64
	var entries []wal.Op[string]
	s.coll.Checkpoint(func(objects int, it iter.Seq2[string, geom.Point]) {
		seq = s.hub.LastSeq()
		entries = make([]wal.Op[string], 0, objects)
		for id, p := range it {
			entries = append(entries, wal.Op[string]{ID: id, P: p})
		}
	})
	return seq, entries, nil
}

// replApplier adapts the Server to repl.Applier: the follower session
// goroutine drives the Collection's flush commit with the leader's
// windows, journaling each under the leader's sequence so the WAL's
// recovered sequence doubles as the replication resume point.
type replApplier struct{ s *Server }

// AppliedSeq is the follower's durable position: the last leader window
// journaled locally (which recovery restores after a crash, making the
// resume handshake exact across restarts).
func (a replApplier) AppliedSeq() uint64 { return a.s.wal.LastSeq() }

// Term is the highest leader term this replica has adopted — recovered
// from the WAL snapshot, advanced only by Bootstrap (or a local
// Promote). The Follower sends it in every handshake so stale leaders
// are refused.
func (a replApplier) Term() uint64 { return a.s.wal.Term() }

// ApplyWindow commits one leader window: enqueue the netted ops, flush
// (journal under seq + apply + publish epoch), and verify the journal
// landed. The repl.Follower guarantees seq == AppliedSeq()+1.
func (a replApplier) ApplyWindow(seq uint64, ops []wal.Op[string]) error {
	s := a.s
	if s.walFailed.Load() {
		return errors.New("local wal failed; refusing to advance the replicated state")
	}
	if len(ops) == 0 {
		// Nothing to flush, but the position must still advance durably or
		// the resume handshake would re-request this window forever.
		if err := s.wal.AppendWindowAt(seq, nil); err != nil {
			s.walFail(err)
			return err
		}
		return nil
	}
	s.replPendingSeq = seq
	for _, op := range ops {
		if op.Del {
			s.coll.Remove(op.ID)
		} else {
			s.coll.Set(op.ID, op.P)
		}
	}
	s.coll.Flush()
	// The journal hook's error is counted, not returned, by Flush; the
	// sequence check catches it exactly (the append either moved LastSeq
	// to seq or failed).
	if got := s.wal.LastSeq(); got != seq {
		return fmt.Errorf("window %d did not journal (wal at %d)", seq, got)
	}
	return nil
}

// Bootstrap replaces the full local state with the leader's snapshot:
// remove everything the snapshot lacks, set everything it has, commit
// as one un-journaled flush, then persist the new baseline — and the
// leader term it belongs to — as a WAL snapshot at the leader's
// sequence, which may regress below the local one (a rebuilt or wiped
// leader), all the way to zero. Adopting the term here, atomically with
// the state it governs, is the follower's only term transition: after
// this snapshot lands, a restart recovers both together and stale
// pre-promotion leaders are refused from the first handshake.
func (a replApplier) Bootstrap(seq, term uint64, entries []wal.Op[string]) error {
	s := a.s
	if s.walFailed.Load() {
		return errors.New("local wal failed; refusing to bootstrap")
	}
	keep := make(map[string]geom.Point, len(entries))
	for _, e := range entries {
		keep[e.ID] = e.P
	}
	var stale []string
	s.coll.Checkpoint(func(objects int, it iter.Seq2[string, geom.Point]) {
		for id := range it {
			if _, ok := keep[id]; !ok {
				stale = append(stale, id)
			}
		}
	})
	for _, id := range stale {
		s.coll.Remove(id)
	}
	for _, e := range entries {
		s.coll.Set(e.ID, e.P)
	}
	// The snapshot below persists this state wholesale; journaling the
	// diff too would append windows at a stale (possibly higher) sequence.
	s.replSkipJournal = true
	s.coll.Flush()
	s.replSkipJournal = false
	s.wal.SetTerm(term)
	err := s.wal.WriteSnapshotAt(seq, len(keep), func(yield func(string, geom.Point) bool) {
		for id, p := range keep {
			if !yield(id, p) {
				return
			}
		}
	})
	if err != nil {
		s.walFail(err)
		return err
	}
	return nil
}

// ReplPayload is the replication block of /stats: the role, the adopted
// leader term, and the role-specific counters.
type ReplPayload struct {
	// Role is "leader", "follower", or "fenced" (an ex-leader deposed by
	// a higher term, refusing writes).
	Role string `json:"role"`
	// Term is the leader term this server has adopted (bumped by its own
	// promotion, or carried by the bootstrap that joined it to a
	// promoted timeline).
	Term uint64 `json:"term"`
	// RoleChanges counts role transitions this process: promotions,
	// demotions, deposals, fenced→follower rejoins.
	RoleChanges uint64               `json:"role_changes"`
	Leader      *repl.LeaderStats    `json:"leader,omitempty"`
	Follower    *repl.FollowerStatus `json:"follower,omitempty"`
}

// replStats snapshots the replication block (nil when the server
// replicates nothing).
func (s *Server) replStats() *ReplPayload {
	role := replRole(s.role.Load())
	if role == roleNone {
		return nil
	}
	s.replMu.Lock()
	lead, foll := s.replLead, s.replFoll
	s.replMu.Unlock()
	p := &ReplPayload{
		Role:        role.String(),
		Term:        s.wal.Term(),
		RoleChanges: s.roleChanges.Load(),
	}
	switch {
	case foll != nil:
		st := foll.Status()
		p.Follower = &st
	case lead != nil:
		st := lead.Stats()
		p.Leader = &st
	}
	return p
}
