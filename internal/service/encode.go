package service

import (
	"fmt"
	"strconv"

	"repro/internal/collection"
	"repro/internal/geom"
	"repro/internal/obs"
)

// This file is the allocation-free response encoder. The serving hot path
// (SET/GET/NEARBY/WITHIN acks) renders straight into a per-connection
// byte buffer with append-style helpers instead of reflective
// json.Marshal — one fewer allocation *per served line*, which under load
// was the largest single GC contributor in the whole stack. The output is
// byte-compatible JSON with what json.Marshal produced for the same
// Response (field order and omitempty behavior match; the only spec-level
// difference is that json.Marshal additionally escapes <, >, & for HTML
// embedding, which the protocol never relied on). TestEncodeMatchesJSON
// pins the equivalence.

// result is one dispatched command's outcome, in pre-wire form: hits stay
// as resolved collection entries (aliasing the connection's scratch, valid
// until the next dispatch on that connection) and points stay as
// geom.Point, so nothing is allocated between the Collection and the
// socket. response() converts to the public Response when the legacy
// (allocating) path is requested.
type result struct {
	ok         bool
	code       string
	err        string
	leader     string // leader hint on readonly/fenced errors
	found      bool
	p          geom.Point
	hasP       bool
	hasHits    bool
	entries    []collection.Entry[string]
	applied    int
	hasApplied bool
	stats      *StatsPayload
	hasSlow    bool
	slow       []obs.SlowQuery
}

// errResult builds an error result without formatting overhead for the
// common fixed-message cases; formatted variants use errResultf.
func errResult(code, msg string) result {
	return result{ok: false, code: code, err: msg}
}

// errResultf is errResult with fmt.Sprintf formatting (error paths only,
// so the formatting allocation is irrelevant).
func errResultf(code, format string, args ...any) result {
	return result{ok: false, code: code, err: fmt.Sprintf(format, args...)}
}

// response converts a result to the public wire struct (the legacy
// json.Marshal path and the tests use it; the hot path never does).
func (r *result) response(dims int) Response {
	resp := Response{OK: r.ok, Code: r.code, Err: r.err, Leader: r.leader, Found: r.found, Stats: r.stats}
	if r.hasSlow {
		resp.Slow = r.slow
	}
	if r.hasApplied {
		resp.Applied = r.applied
	}
	if r.hasP {
		resp.P = coords(r.p, dims)
	}
	if r.hasHits {
		hits := make([]Hit, len(r.entries))
		for i, e := range r.entries {
			hits[i] = Hit{ID: e.ID, P: coords(e.Point, dims)}
		}
		resp.Hits = hits
	}
	return resp
}

// appendResult renders r as one newline-terminated JSON response line into
// buf. It allocates only when buf must grow.
func appendResult(buf []byte, r *result, dims int) []byte {
	if r.ok {
		buf = append(buf, `{"ok":true`...)
	} else {
		buf = append(buf, `{"ok":false`...)
	}
	if r.code != "" {
		buf = append(buf, `,"code":`...)
		buf = appendJSONString(buf, r.code)
	}
	if r.err != "" {
		buf = append(buf, `,"err":`...)
		buf = appendJSONString(buf, r.err)
	}
	if r.leader != "" {
		buf = append(buf, `,"leader":`...)
		buf = appendJSONString(buf, r.leader)
	}
	if r.found {
		buf = append(buf, `,"found":true`...)
	}
	if r.hasP {
		buf = append(buf, `,"p":`...)
		buf = appendCoords(buf, r.p, dims)
	}
	if r.hasHits && len(r.entries) > 0 { // omitempty: an empty hit list is omitted
		buf = append(buf, `,"hits":[`...)
		for i, e := range r.entries {
			if i > 0 {
				buf = append(buf, ',')
			}
			buf = append(buf, `{"id":`...)
			buf = appendJSONString(buf, e.ID)
			buf = append(buf, `,"p":`...)
			buf = appendCoords(buf, e.Point, dims)
			buf = append(buf, '}')
		}
		buf = append(buf, ']')
	}
	if r.hasApplied && r.applied != 0 { // omitempty: FLUSH of nothing omits "applied"
		buf = append(buf, `,"applied":`...)
		buf = strconv.AppendInt(buf, int64(r.applied), 10)
	}
	if r.stats != nil {
		buf = append(buf, `,"stats":`...)
		buf = append(buf, marshalStats(r.stats)...)
	}
	if r.hasSlow && len(r.slow) > 0 { // omitempty: an empty slow log is omitted
		buf = append(buf, `,"slow":`...)
		buf = append(buf, marshalSlow(r.slow)...)
	}
	return append(buf, '}', '\n')
}

// marshalStats renders the STATS body through encoding/json — STATS is a
// probe command, not a hot path, and the payload is deeply structured.
func marshalStats(st *StatsPayload) []byte {
	b := marshalLine(st)
	return b[:len(b)-1] // strip marshalLine's newline; it nests here
}

// marshalSlow renders the SLOWLOG body through encoding/json (a probe
// command, like STATS).
func marshalSlow(slow []obs.SlowQuery) []byte {
	b := marshalLine(slow)
	return b[:len(b)-1] // strip marshalLine's newline; it nests here
}

// appendCoords renders the first dims coordinates of p as a JSON array.
func appendCoords(buf []byte, p geom.Point, dims int) []byte {
	return appendInts(buf, p[:dims])
}

// appendRequest renders req as one newline-terminated JSON request line,
// matching json.Marshal's field order and omitempty behavior for Request.
// The reuse-mode Client encodes with it instead of reflective marshalling.
func appendRequest(buf []byte, req *Request) []byte {
	buf = append(buf, `{"op":`...)
	buf = appendJSONString(buf, req.Op)
	if req.ID != "" {
		buf = append(buf, `,"id":`...)
		buf = appendJSONString(buf, req.ID)
	}
	if req.Addr != "" {
		buf = append(buf, `,"addr":`...)
		buf = appendJSONString(buf, req.Addr)
	}
	if len(req.P) > 0 {
		buf = append(buf, `,"p":`...)
		buf = appendInts(buf, req.P)
	}
	if len(req.Lo) > 0 {
		buf = append(buf, `,"lo":`...)
		buf = appendInts(buf, req.Lo)
	}
	if len(req.Hi) > 0 {
		buf = append(buf, `,"hi":`...)
		buf = appendInts(buf, req.Hi)
	}
	if req.K != 0 {
		buf = append(buf, `,"k":`...)
		buf = strconv.AppendInt(buf, int64(req.K), 10)
	}
	return append(buf, '}', '\n')
}

// appendInts renders xs as a JSON array of integers.
func appendInts(buf []byte, xs []int64) []byte {
	buf = append(buf, '[')
	for i, x := range xs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, x, 10)
	}
	return append(buf, ']')
}

const hexDigits = "0123456789abcdef"

// appendJSONString renders s as a JSON string: quote, backslash, control
// characters and the JS line separators U+2028/U+2029 are escaped exactly
// as encoding/json escapes them; everything else (including non-ASCII
// UTF-8) passes through verbatim, which is valid JSON.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			// U+2028/U+2029 (E2 80 A8 / E2 80 A9): escaped for parity
			// with json.Marshal, which guards against raw JS embedding.
			if c == 0xe2 && i+2 < len(s) && s[i+1] == 0x80 && s[i+2]&^1 == 0xa8 {
				buf = append(buf, s[start:i]...)
				buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[8+s[i+2]&1])
				i += 2
				start = i + 1
			}
			continue
		}
		buf = append(buf, s[start:i]...)
		switch c {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}
