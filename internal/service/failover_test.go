package service

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

// The process-spawning chaos run itself is exercised by the CI
// failover smoke (psiload -mix failover) and cmd/psid's
// TestChaosPromote; these tests pin the measurement math and the
// report formats.

func TestFailoverQuantiles(t *testing.T) {
	win := func(ns ...int) []time.Duration {
		out := make([]time.Duration, len(ns))
		for i, n := range ns {
			out[i] = time.Duration(n) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{nil, 0.5, 0},
		{win(10), 0.5, 10 * time.Millisecond},
		{win(10), 0.99, 10 * time.Millisecond},
		{win(10, 20), 0.5, 10 * time.Millisecond},
		{win(10, 20), 0.99, 20 * time.Millisecond},
		{win(10, 20, 30, 40, 50), 0.5, 30 * time.Millisecond},
		{win(10, 20, 30, 40, 50), 0.99, 50 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := quantileDur(tc.sorted, tc.q); got != tc.want {
			t.Errorf("quantileDur(%v, %v) = %v, want %v", tc.sorted, tc.q, got, tc.want)
		}
	}
}

func TestFailoverReportCSV(t *testing.T) {
	rep := &FailoverReport{
		Nodes: 3, Handovers: 2, Writers: 4, Readers: 2,
		Elapsed:   3 * time.Second,
		FinalTerm: 2, Verified: 123,
		WriteOps: 1000, WriteErrs: 40, ReadOps: 2000, ReadErrs: 0,
		WriteWindows: []time.Duration{80 * time.Millisecond, 120 * time.Millisecond},
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("report CSV does not parse back: %v", err)
	}
	byKey := map[string]string{}
	for _, row := range rows[1:] {
		byKey[row[0]+"/"+row[1]] = row[2]
	}
	checks := map[string]string{
		"write_unavail_ms/count": "2",
		"write_unavail_ms/p50":   "80.00",
		"write_unavail_ms/p99":   "120.00",
		"write_unavail_ms/max":   "120.00",
		"read_unavail_ms/count":  "0",
		"read_unavail_ms/p50":    "0.00",
		"failover/handovers":     "2",
		"failover/final_term":    "2",
		"failover/verified":      "123",
		"write/ops":              "1000",
		"write/errors":           "40",
	}
	for key, want := range checks {
		if got := byKey[key]; got != want {
			t.Errorf("CSV row %s = %q, want %q", key, got, want)
		}
	}
	// No max row for an empty window set.
	if _, ok := byKey["read_unavail_ms/max"]; ok {
		t.Error("CSV emitted a max row for zero read windows")
	}

	var text bytes.Buffer
	rep.Format(&text)
	for _, want := range []string{
		"3 nodes, 2 handovers (final term 2)",
		"verified 123 acknowledged writes",
		"write unavailability: 2 windows",
		"p50=80.0ms",
		"read  unavailability: none (2000 ops, 0 errors)",
	} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("report text missing %q:\n%s", want, text.String())
		}
	}
}

func TestFailoverWindowRecord(t *testing.T) {
	var st churnStats
	var win time.Time
	st.record(true, &win)  // success outside a window: nothing opens
	st.record(false, &win) // first error opens the window
	if win.IsZero() {
		t.Fatal("error did not open a window")
	}
	st.record(false, &win) // repeat errors extend, not re-open
	opened := win
	st.record(false, &win)
	if win != opened {
		t.Fatal("repeat error re-opened the window")
	}
	st.record(true, &win) // first success closes it
	if !win.IsZero() || len(st.windows) != 1 {
		t.Fatalf("window did not close exactly once: start=%v windows=%v", win, st.windows)
	}
	st.record(true, &win)
	if len(st.windows) != 1 {
		t.Fatal("success outside a window recorded a spurious window")
	}
	if st.ops != 6 || st.errs != 3 {
		t.Fatalf("tally ops=%d errs=%d, want 6/3", st.ops, st.errs)
	}
}

func TestFailoverOptionValidation(t *testing.T) {
	if _, err := RunFailover(FailoverOptions{BaseDir: t.TempDir()}); err == nil {
		t.Fatal("missing psid binary path was accepted")
	}
	if _, err := RunFailover(FailoverOptions{PsidBin: "psid"}); err == nil {
		t.Fatal("missing scratch dir was accepted")
	}
	if _, err := RunFailover(FailoverOptions{PsidBin: "psid", BaseDir: t.TempDir(), Nodes: 1}); err == nil {
		t.Fatal("a 1-node cluster was accepted")
	}
}
