// Package service implements psid, the network serving layer over
// psi.Collection: a concurrent geospatial server that exposes the full
// moving-object API — SET/DEL/GET/NEARBY/WITHIN/STATS/FLUSH/SLOWLOG,
// plus the PROMOTE/DEMOTE/FOLLOW failover admin commands —
// over a newline-delimited JSON command protocol on TCP, plus HTTP
// probe endpoints for dashboards: /healthz, /stats, /metrics
// (Prometheus text exposition), /debug/flushtrace and /debug/slowlog
// (see docs/observability.md).
//
// The paper's stack ends at the process boundary: indexes (§3, §4) are
// batch-synchronous, the Store/Sharded/Collection layers make them safe
// for in-process concurrency, and this package is the front door that
// turns the library into a system. The design follows the shape of
// real-world moving-object services (Tile38 and friends): one goroutine
// per connection feeding an ID-keyed coalescing log, so that N clients
// streaming SETs become the paper's parallel BatchDiff at every flush —
// socket concurrency is converted into exactly the batch parallelism the
// indexes are built for.
//
// Concurrency and consistency: every connection handler calls straight
// into one shared Collection, so the service inherits its visibility
// contract — mutations become visible to NEARBY/WITHIN atomically at the
// flush that applies them (MaxBatch, FlushInterval, or an explicit FLUSH
// command), while GET is read-your-writes through the pending overlay.
// A FLUSH issued by any client is a barrier for all of them.
//
// The wire protocol (one JSON object per line, one response line per
// request line, in order) is documented command by command in
// docs/protocol.md; this file defines the wire types.
package service

import (
	"encoding/json"
	"fmt"

	"repro/internal/geom"
	"repro/internal/obs"
)

// Command names. Dispatch is case-insensitive; these are the canonical
// uppercase spellings used in docs and STATS keys.
const (
	OpSet    = "SET"    // {"op":"SET","id":...,"p":[x,y]}       → {"ok":true}
	OpDel    = "DEL"    // {"op":"DEL","id":...}                 → {"ok":true}
	OpGet    = "GET"    // {"op":"GET","id":...}                 → {"ok":true,"found":true,"p":[x,y]}
	OpNearby = "NEARBY" // {"op":"NEARBY","p":[x,y],"k":10}      → {"ok":true,"hits":[...]}
	OpWithin = "WITHIN" // {"op":"WITHIN","lo":[..],"hi":[..]}   → {"ok":true,"hits":[...]}
	OpStats  = "STATS"  // {"op":"STATS"}                        → {"ok":true,"stats":{...}}
	OpFlush  = "FLUSH"  // {"op":"FLUSH"}                        → {"ok":true,"applied":n}
	// OpSlowlog returns the retained slow-query entries, newest first
	// (requires the server to run with a slow-query threshold; see
	// Options.SlowLog). Errors with bad_request when the log is disabled.
	OpSlowlog = "SLOWLOG" // {"op":"SLOWLOG"}                     → {"ok":true,"slow":[...]}
	// OpPromote flips a running follower into the replication leader, in
	// place: the session against the old leader stops, the leader term is
	// bumped and journaled, a replication listener starts (on "addr", or
	// the -repl address the process was started with), and client writes
	// are accepted from the next command on. docs/replication.md
	// ("Failover") has the full contract.
	OpPromote = "PROMOTE" // {"op":"PROMOTE","addr":":7601"}       → {"ok":true}
	// OpDemote fences a running leader: writes are refused with "fenced"
	// from the next command on (the replication listener stays up so
	// still-attached followers drain). "addr", when present, is recorded
	// as the new leader hint returned with fenced errors.
	OpDemote = "DEMOTE" // {"op":"DEMOTE","addr":"host:port"}    → {"ok":true}
	// OpFollow re-points a follower at a new leader address at runtime
	// (severing the current session), or converts a fenced ex-leader into
	// a follower of the promoted node. Errors on an active leader —
	// DEMOTE it first.
	OpFollow = "FOLLOW" // {"op":"FOLLOW","addr":"host:port"}    → {"ok":true}
)

// Error codes carried in Response.Code when OK is false.
const (
	// CodeBadRequest covers malformed JSON, unknown ops, and invalid
	// arguments (missing id, wrong point dimensionality, k <= 0, an
	// inverted WITHIN box). The connection stays usable.
	CodeBadRequest = "bad_request"
	// CodeTooLarge means the request line exceeded the server's line
	// limit. The oversized line is discarded to its newline and the
	// connection stays usable.
	CodeTooLarge = "too_large"
	// CodeShutdown means the server is draining and no longer accepts
	// commands on this connection.
	CodeShutdown = "shutdown"
	// CodeUnavailable means the server cannot honor the command's
	// contract right now — today, a SET/DEL under -fsync always after
	// the write-ahead log has failed: the op may be in memory, but the
	// durability receipt the ack stands for cannot be issued. The
	// server also turns its health probe red (see /healthz); clients
	// should fail over rather than retry.
	CodeUnavailable = "unavailable"
	// CodeReadonly means the command mutates state but this server is a
	// read-only replica (started with -replica-of, or re-pointed with
	// FOLLOW): the replication stream from the leader is its only writer.
	// Send SET/DEL/FLUSH to the leader — the response's "leader" field
	// carries its address when known; GET/NEARBY/WITHIN are served here
	// from the replicated state. The connection stays usable.
	CodeReadonly = "readonly"
	// CodeFenced means this server was the leader but has been deposed: a
	// higher leader term exists (it saw a follower carrying one, or an
	// operator sent DEMOTE), so accepting a write here could fork the
	// replicated timeline. Writes are refused until an operator re-points
	// it with FOLLOW; the "leader" field carries the new leader's address
	// when known. Reads still serve the (frozen) local state.
	CodeFenced = "fenced"
)

// Request is one command line. Unused fields are omitted per op; see the
// Op* constants and docs/protocol.md for which fields each op reads.
type Request struct {
	Op string `json:"op"`
	ID string `json:"id,omitempty"`
	// Addr is the host:port argument of PROMOTE (optional listen
	// override), DEMOTE (optional new-leader hint) and FOLLOW (required:
	// the leader to dial).
	Addr string `json:"addr,omitempty"`
	// P is a point: exactly Dims coordinates (2 or 3, fixed per server).
	P []int64 `json:"p,omitempty"`
	// Lo/Hi are the inclusive corners of a WITHIN box, Dims coordinates
	// each with Lo[d] <= Hi[d].
	Lo []int64 `json:"lo,omitempty"`
	Hi []int64 `json:"hi,omitempty"`
	K  int     `json:"k,omitempty"`
}

// Hit is one resolved query result: an object and its indexed position.
type Hit struct {
	ID string  `json:"id"`
	P  []int64 `json:"p"`
}

// Response is one reply line. OK is always present; every other field is
// op-specific and omitted when empty — in particular a GET miss is
// {"ok":true} with "found" omitted, and a FLUSH that applied nothing
// omits "applied".
type Response struct {
	OK   bool   `json:"ok"`
	Code string `json:"code,omitempty"` // error code, set when !OK
	Err  string `json:"err,omitempty"`  // human-readable error, set when !OK
	// Leader is the last-known leader address, set on readonly and fenced
	// errors so a client can redirect its writes without a topology
	// lookup. Empty when the server has no hint (a deposed leader that
	// only saw a higher term, never an address).
	Leader string  `json:"leader,omitempty"`
	Found  bool    `json:"found,omitempty"`
	P      []int64 `json:"p,omitempty"`
	Hits   []Hit   `json:"hits,omitempty"`
	// Applied is the number of index mutations (inserts + deletes) a
	// FLUSH committed.
	Applied int           `json:"applied,omitempty"`
	Stats   *StatsPayload `json:"stats,omitempty"`
	// Slow is the SLOWLOG response body: retained slow-query entries,
	// newest first.
	Slow []obs.SlowQuery `json:"slow,omitempty"`
}

// errResp builds an error response.
func errResp(code, format string, args ...any) Response {
	return Response{OK: false, Code: code, Err: fmt.Sprintf(format, args...)}
}

// AsError converts an error response into a *ServerError (nil when OK).
func (r Response) AsError() error {
	if r.OK {
		return nil
	}
	return &ServerError{Code: r.Code, Msg: r.Err}
}

// ServerError is an error the server reported on the wire.
type ServerError struct {
	Code string
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("psid: %s: %s", e.Code, e.Msg) }

// StatsPayload is the STATS response body, also served as JSON at the
// HTTP /stats endpoint. Collection counters are defined in
// internal/collection (Stats); per-op latency quantiles come from the
// server's lock-free histograms and are estimates with power-of-two
// bucket resolution.
type StatsPayload struct {
	Objects int `json:"objects"` // live tracked objects (after a flush)
	Pending int `json:"pending"` // enqueued ops not yet flushed
	// Epoch, Versions and RetireLag describe the snapshot-read state
	// (ARCHITECTURE.md "Epochs & snapshot reads"): the currently
	// published epoch (advances once per committed window; 0 when the
	// server runs the locked read path), the live state versions (2 when
	// snapshotting, 1 locked), and the published epochs whose displaced
	// version has not yet drained (0 when quiescent, 1 mid-flush).
	Epoch     uint64 `json:"epoch"`
	Versions  int    `json:"versions"`
	RetireLag uint64 `json:"retire_lag"`
	Flushes   uint64 `json:"flushes"`
	Inserted  uint64 `json:"inserted"`
	Moved     uint64 `json:"moved"`
	Removed   uint64 `json:"removed"`
	// Cancelled counts ops superseded in-window by the Collection's
	// last-write-wins netting — the coalescing win of batching SETs.
	Cancelled uint64  `json:"cancelled"`
	Conns     int     `json:"conns"`    // currently open client connections
	UptimeS   float64 `json:"uptime_s"` // seconds since Start
	// BadLines counts protocol-level rejects (unparseable or oversized
	// lines) that never reached a command handler.
	BadLines uint64 `json:"bad_lines"`
	// Ops maps canonical command names to their serving counters.
	Ops map[string]OpCounters `json:"ops"`
	// GC carries runtime allocation/GC counters when the server runs
	// with EnablePprof (psid -pprof); omitted otherwise — reading them
	// briefly stops the world, so they are opt-in like the profile
	// endpoints.
	GC *GCStats `json:"gc,omitempty"`
	// WAL carries the durability counters when the server runs with a
	// write-ahead log (psid -wal); omitted otherwise.
	WAL *WALStats `json:"wal,omitempty"`
	// Repl carries the replication role and counters when the server
	// runs as a leader (psid -repl) or follower (psid -replica-of);
	// omitted otherwise.
	Repl *ReplPayload `json:"repl,omitempty"`
}

// WALStats is the durability block of /stats, present when the server
// runs with Options.WALDir. Counter semantics follow wal.Stats; the
// recovery fields are the boot-time summary and never change while the
// process lives.
type WALStats struct {
	Policy string `json:"policy"` // fsync policy: always / 100ms / never
	// DurableAcks reports whether SET/DEL acknowledgments imply
	// on-disk durability (true only under fsync=always).
	DurableAcks bool `json:"durable_acks"`
	// Failed is the sticky WAL-failure flag: once true, durable acks
	// are refused and /healthz serves 503.
	Failed        bool   `json:"failed"`
	Seq           uint64 `json:"seq"`            // last journaled window
	SnapshotSeq   uint64 `json:"snapshot_seq"`   // window the snapshot covers
	LogBytes      int64  `json:"log_bytes"`      // current wal.log size
	Appends       uint64 `json:"appends"`        // windows journaled this process
	AppendedBytes uint64 `json:"appended_bytes"` // record bytes written this process
	Fsyncs        uint64 `json:"fsyncs"`
	Snapshots     uint64 `json:"snapshots"`
	Errors        uint64 `json:"errors"` // WAL-level write/sync/snapshot failures
	// JournalErrors counts flush windows the Collection committed in
	// memory but could not confirm durable (should track Errors).
	JournalErrors uint64      `json:"journal_errors"`
	Recovery      WALRecovery `json:"recovery"`
}

// GCStats is the runtime memory/GC snapshot served in /stats under
// -pprof: enough to watch steady-state allocation pressure (mallocs per
// served op should stay flat on a warm server) without pulling a full
// heap profile.
type GCStats struct {
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	Mallocs         uint64  `json:"mallocs"`
	Frees           uint64  `json:"frees"`
	NumGC           uint32  `json:"num_gc"`
	PauseTotalMs    float64 `json:"pause_total_ms"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction"`
}

// OpCounters is the per-command serving record.
type OpCounters struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P99Us  float64 `json:"p99_us"`
}

// coords flattens the first dims coordinates of p for the wire.
func coords(p geom.Point, dims int) []int64 {
	out := make([]int64, dims)
	copy(out, p[:dims])
	return out
}

// point parses exactly dims wire coordinates into a geom.Point (unused
// slots zero, the library-wide convention that makes point equality value
// equality).
func point(cs []int64, dims int) (geom.Point, error) {
	if len(cs) != dims {
		return geom.Point{}, fmt.Errorf("want %d coordinates, got %d", dims, len(cs))
	}
	var p geom.Point
	copy(p[:], cs)
	return p, nil
}

// marshalLine renders v as one newline-terminated JSON line.
func marshalLine(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// Wire types marshal by construction; a failure is a programming
		// error surfaced as a protocol error line rather than a panic.
		b, _ = json.Marshal(errResp(CodeBadRequest, "marshal: %v", err))
	}
	return append(b, '\n')
}
