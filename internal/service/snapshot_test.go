package service

import (
	"testing"

	"repro/internal/core"
)

// The service layer enables epoch-pinned snapshot reads automatically
// when the configured index can replicate itself (core.Replicator), and
// reports the epoch counters over the wire in STATS.

func newReplicableIndex() core.Index {
	return core.WithReplica(newTestIndex(), newTestIndex)
}

// TestSnapshotAutoEnabled: a Replicator index puts the Collection on the
// snapshot path — STATS reports two resident versions, the epoch advances
// with every non-empty flush, and queries observe flushed state as usual.
func TestSnapshotAutoEnabled(t *testing.T) {
	s := startServer(t, newReplicableIndex(), Options{})
	c := dialT(t, s)

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Versions != 2 || st.Epoch != 0 {
		t.Fatalf("initial stats = versions %d epoch %d, want 2 versions at epoch 0", st.Versions, st.Epoch)
	}
	if err := c.Set("a", []int64{10, 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || st.Versions != 2 || st.RetireLag != 0 {
		t.Fatalf("stats after flush = %+v, want epoch 1, 2 versions, lag 0", st)
	}
	hits, err := c.Nearby([]int64{0, 0}, 1)
	if err != nil || len(hits) != 1 || hits[0].ID != "a" {
		t.Fatalf("Nearby on snapshot path = %v, %v, want [a]", hits, err)
	}
}

// TestSnapshotDisableOption: DisableSnapshot forces the classic locked
// path even for a Replicator index — one version, epoch pinned at 0.
func TestSnapshotDisableOption(t *testing.T) {
	s := startServer(t, newReplicableIndex(), Options{DisableSnapshot: true})
	c := dialT(t, s)
	if err := c.Set("a", []int64{10, 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Versions != 1 || st.Epoch != 0 {
		t.Fatalf("locked stats = versions %d epoch %d, want 1 version at epoch 0", st.Versions, st.Epoch)
	}
}

// TestSnapshotRequiresReplicator: an index that cannot replicate itself
// silently stays on the locked path rather than failing construction.
func TestSnapshotRequiresReplicator(t *testing.T) {
	s := startServer(t, newTestIndex(), Options{})
	c := dialT(t, s)
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Versions != 1 || st.Epoch != 0 {
		t.Fatalf("non-Replicator stats = versions %d epoch %d, want locked shape", st.Versions, st.Epoch)
	}
}
