package service

// In-process replication tests: a real leader Server and follower
// Servers wired through the TCP repl protocol, asserting role
// enforcement, convergence, snapshot bootstrap, and restart resume.
// The cross-process versions (kill -9, partitions) live in cmd/psid.

import (
	"fmt"
	"iter"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/wal"
)

// startLeader runs a durable Server with a replication listener on an
// ephemeral port. fsync=always makes every SET its own committed
// window, so tests control the sequence count exactly.
func startLeader(t *testing.T, dir string, opts Options) *Server {
	t.Helper()
	opts.ReplListen = "127.0.0.1:0"
	if opts.WALFsync == 0 {
		opts.WALFsync = wal.FsyncAlways
	}
	return startDurable(t, dir, opts)
}

// startFollowerOf runs a durable Server replicating from leader.
func startFollowerOf(t *testing.T, dir string, leader *Server, id string) *Server {
	t.Helper()
	return startDurable(t, dir, Options{
		ReplicaOf: leader.ReplAddr().String(),
		ReplID:    id,
	})
}

// waitConverged polls until the follower's applied sequence reaches the
// leader's replication head (and its lag drains to zero). The applied
// sequence advances at the journal step of the window's flush — a
// moment before the apply publishes — so a Checkpoint barrier at the
// end waits out any in-flight flush before callers inspect state.
func waitConverged(t *testing.T, leader, follower *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		want := leader.Stats().Repl.Leader.LastSeq
		st := follower.Stats().Repl.Follower
		if st.AppliedSeq == want && st.LagWindows == 0 {
			follower.coll.Checkpoint(func(int, iter.Seq2[string, geom.Point]) {})
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: leader at %d, follower %+v", want, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestReplValidation(t *testing.T) {
	if _, err := NewDurable(newTestIndex(), Options{ReplListen: "127.0.0.1:0"}); err == nil {
		t.Fatal("leader without a WAL was accepted")
	}
	if _, err := NewDurable(newTestIndex(), Options{ReplicaOf: "127.0.0.1:1"}); err == nil {
		t.Fatal("follower without a WAL was accepted")
	}
	// ReplListen plus ReplicaOf is a hot standby, not a contradiction:
	// the server starts follower-side and ReplListen is the address
	// PROMOTE binds.
	s, err := NewDurable(newTestIndex(), Options{
		WALDir: t.TempDir(), ReplListen: "127.0.0.1:0", ReplicaOf: "127.0.0.1:1",
	})
	if err != nil {
		t.Fatalf("standby (ReplListen plus ReplicaOf) rejected: %v", err)
	}
	if got := replRole(s.role.Load()); got != roleFollower {
		t.Fatalf("standby starts as %v, want follower", got)
	}
	shutdownT(t, s)
}

func TestReplReadonlyFollower(t *testing.T) {
	leader := startLeader(t, t.TempDir(), Options{})
	lc := dialT(t, leader)
	if err := lc.Set("a", []int64{5, 5}); err != nil {
		t.Fatal(err)
	}

	follower := startFollowerOf(t, t.TempDir(), leader, "ro")
	waitConverged(t, leader, follower)
	fc := dialT(t, follower)

	for _, req := range []Request{
		{Op: OpSet, ID: "x", P: []int64{1, 1}},
		{Op: OpDel, ID: "a"},
		{Op: OpFlush},
	} {
		resp, err := fc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK || resp.Code != CodeReadonly {
			t.Fatalf("%s on a follower: got ok=%t code=%q, want the %s error",
				req.Op, resp.OK, resp.Code, CodeReadonly)
		}
	}
	// Reads still serve the replicated state.
	p, found, err := fc.Get("a")
	if err != nil || !found || p[0] != 5 || p[1] != 5 {
		t.Fatalf("GET a on follower = %v found=%t err=%v, want [5 5]", p, found, err)
	}
	if hits, err := fc.Nearby([]int64{0, 0}, 1); err != nil || len(hits) != 1 || hits[0].ID != "a" {
		t.Fatalf("NEARBY on follower = %v, %v", hits, err)
	}
	// And the refused SET never leaked into follower state.
	if _, found, _ := fc.Get("x"); found {
		t.Fatal("refused SET is visible on the follower")
	}
}

func TestReplConvergence(t *testing.T) {
	leader := startLeader(t, t.TempDir(), Options{})
	f1 := startFollowerOf(t, t.TempDir(), leader, "f1")
	f2 := startFollowerOf(t, t.TempDir(), leader, "f2")
	lc := dialT(t, leader)

	const n = 40
	for i := 0; i < n; i++ {
		if err := lc.Set(fmt.Sprintf("o%02d", i), []int64{int64(i), int64(i * 2)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 4 {
		if err := lc.Del(fmt.Sprintf("o%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, leader, f1)
	waitConverged(t, leader, f2)

	for _, f := range []*Server{f1, f2} {
		fc := dialT(t, f)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("o%02d", i)
			p, found, err := fc.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if i%4 == 0 {
				if found {
					t.Fatalf("%s: deleted %s still present on follower", f.opts.ReplID, id)
				}
				continue
			}
			if !found || p[0] != int64(i) || p[1] != int64(i*2) {
				t.Fatalf("%s: GET %s = %v found=%t, want [%d %d]", f.opts.ReplID, id, p, found, i, i*2)
			}
		}
		if st := f.Stats(); st.Objects != n-n/4 {
			t.Fatalf("%s: %d objects, want %d", f.opts.ReplID, st.Objects, n-n/4)
		}
	}

	// The leader tracks both followers by identity, fully acked.
	ls := leader.Stats().Repl.Leader
	if len(ls.Followers) != 2 || ls.Connected != 2 {
		t.Fatalf("leader follower view: %+v", ls)
	}
	for _, fi := range ls.Followers {
		if fi.LagWindows != 0 || fi.AckedSeq != ls.LastSeq {
			t.Fatalf("follower %s not fully acked: %+v (leader at %d)", fi.ID, fi, ls.LastSeq)
		}
	}
}

// TestReplSnapshotBootstrap forces the snapshot path: the leader
// retains almost no tail, so a follower arriving after the history is
// evicted must bootstrap — and then ride the live tail.
func TestReplSnapshotBootstrap(t *testing.T) {
	leader := startLeader(t, t.TempDir(), Options{ReplRetainWindows: 2})
	lc := dialT(t, leader)
	for i := 0; i < 30; i++ {
		if err := lc.Set(fmt.Sprintf("pre%02d", i), []int64{int64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}

	follower := startFollowerOf(t, t.TempDir(), leader, "late")
	waitConverged(t, leader, follower)
	if st := follower.Stats().Repl.Follower; st.Bootstraps != 1 {
		t.Fatalf("follower bootstraps = %d, want exactly 1", st.Bootstraps)
	}
	if st := follower.Stats(); st.Objects != 30 {
		t.Fatalf("bootstrapped %d objects, want 30", st.Objects)
	}

	// Post-bootstrap traffic arrives as tail windows, not more snapshots.
	if err := lc.Set("live", []int64{7, 7}); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, leader, follower)
	st := follower.Stats().Repl.Follower
	if st.Bootstraps != 1 || st.Duplicates != 0 {
		t.Fatalf("after live tail: %+v, want 1 bootstrap and 0 duplicates", st)
	}
	if p, found, _ := dialT(t, follower).Get("live"); !found || p[0] != 7 {
		t.Fatalf("live write missing on follower: %v %t", p, found)
	}
}

// TestReplFollowerRestartResume pins the resume contract: a follower
// restarted over its own WAL directory rejoins at its recovered
// sequence and catches up incrementally — no re-bootstrap, no window
// applied twice.
func TestReplFollowerRestartResume(t *testing.T) {
	leader := startLeader(t, t.TempDir(), Options{})
	lc := dialT(t, leader)
	fdir := t.TempDir()

	follower := startFollowerOf(t, fdir, leader, "resume")
	for i := 0; i < 10; i++ {
		if err := lc.Set(fmt.Sprintf("a%02d", i), []int64{int64(i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, leader, follower)
	shutdownT(t, follower)

	// The leader keeps committing while the follower is down.
	for i := 0; i < 10; i++ {
		if err := lc.Set(fmt.Sprintf("b%02d", i), []int64{int64(i), 2}); err != nil {
			t.Fatal(err)
		}
	}

	follower = startFollowerOf(t, fdir, leader, "resume")
	waitConverged(t, leader, follower)
	// The windows counter increments just after the apply that advances
	// AppliedSeq, so give the final bump a moment before asserting.
	deadline := time.Now().Add(5 * time.Second)
	for follower.Stats().Repl.Follower.Windows != 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := follower.Stats().Repl.Follower
	if st.Bootstraps != 0 || st.Duplicates != 0 {
		t.Fatalf("restart resumed with %d bootstraps / %d duplicates, want 0/0", st.Bootstraps, st.Duplicates)
	}
	// Exactly the missed tail was applied this session.
	if st.Windows != 10 {
		t.Fatalf("restart applied %d windows, want the 10 missed", st.Windows)
	}
	if s := follower.Stats(); s.Objects != 20 {
		t.Fatalf("follower has %d objects after resume, want 20", s.Objects)
	}
}
