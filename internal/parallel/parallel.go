// Package parallel implements the fork-join substrate underneath every
// index in Ψ-Lib/Go. It mirrors the binary-forking model the paper analyses
// (§2.1): Do forks two tasks, For runs a parallel loop (simulated by
// logarithmic forking in theory; implemented with a dynamic chunk queue
// here), Scan is a two-pass parallel prefix sum, Sieve is the stable
// parallel counting sort the paper adopts from the Pkd-tree work [43], and
// Sort is a parallel sample sort in the spirit of IPS4o [9].
//
// All primitives degrade gracefully to sequential execution below a grain
// size, so the library has sensible single-core behavior (the paper's
// 1-thread baselines in Fig. 7).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the sequential cutoff used when callers pass grain <= 0:
// ranges smaller than this run inline rather than being forked.
const DefaultGrain = 1024

// maxProcs returns the current parallelism budget.
func maxProcs() int { return runtime.GOMAXPROCS(0) }

// Do runs a and b as parallel tasks (the binary fork of the model in §2.1)
// and returns when both finish. a runs on the calling goroutine.
func Do(a, b func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b()
	}()
	a()
	wg.Wait()
}

// DoIf forks only when cond is true (the standard granularity-control
// pattern: recursion runs sequentially below its grain).
func DoIf(cond bool, a, b func()) {
	if cond && maxProcs() > 1 {
		Do(a, b)
	} else {
		a()
		b()
	}
}

// Do4 runs four tasks in parallel (used by 2^D-way tree recursions).
func Do4(fns ...func()) {
	ForEach(len(fns), 1, func(i int) { fns[i]() })
}

// For runs f(i) for every i in [0, n) in parallel with the given grain
// (grain <= 0 selects DefaultGrain). Iterations are distributed dynamically
// in chunks so skewed per-iteration costs still balance — this stands in
// for the randomized work-stealing scheduler assumed by the paper.
func For(n, grain int, f func(i int)) {
	Blocks(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// ForEach is For with grain 1: every iteration may run on its own worker.
// Use it for small loops whose bodies are themselves large (e.g. one
// recursive subtree per bucket).
func ForEach(n, grain int, f func(i int)) {
	if grain < 1 {
		grain = 1
	}
	forBlocks(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// Blocks partitions [0, n) into contiguous chunks of roughly grain
// iterations and runs f(lo, hi) on each chunk in parallel. It is the
// blocked form of For for loop bodies that want to amortize per-chunk setup
// (histograms, local buffers).
func Blocks(n, grain int, f func(lo, hi int)) {
	if grain <= 0 {
		grain = DefaultGrain
	}
	forBlocks(n, grain, f)
}

func forBlocks(n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := maxProcs()
	if n <= grain || p == 1 {
		f(0, n)
		return
	}
	nchunks := (n + grain - 1) / grain
	workers := p
	if workers > nchunks {
		workers = nchunks
	}
	// Dynamic scheduling: workers pull chunk indices from an atomic
	// counter, which balances skewed workloads (Varden-style clustering
	// makes static splits badly unbalanced).
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				f(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// NumBlocks returns the number of chunks Blocks would use for (n, grain);
// callers that need per-chunk scratch space size it with this.
func NumBlocks(n, grain int) int {
	if grain <= 0 {
		grain = DefaultGrain
	}
	if n <= 0 {
		return 0
	}
	return (n + grain - 1) / grain
}

// Reduce combines f(i) over [0, n) with op, seeded by id. op must be
// associative; it need not be commutative, because the reduction follows
// the block structure and blocks are combined in index order.
func Reduce[T any](n, grain int, id T, f func(i int) T, op func(a, b T) T) T {
	if grain <= 0 {
		grain = DefaultGrain
	}
	nb := NumBlocks(n, grain)
	if nb <= 1 {
		acc := id
		for i := 0; i < n; i++ {
			acc = op(acc, f(i))
		}
		return acc
	}
	partial := make([]T, nb)
	Blocks(n, grain, func(lo, hi int) {
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, f(i))
		}
		partial[lo/grain] = acc
	})
	acc := id
	for _, v := range partial {
		acc = op(acc, v)
	}
	return acc
}

// Scan computes the exclusive prefix sum of a in place and returns the
// total. Two-pass blocked algorithm: per-block sums, sequential scan over
// block sums, per-block local scan with offset.
func Scan(a []int) int {
	n := len(a)
	const grain = 4096
	nb := NumBlocks(n, grain)
	if nb <= 1 {
		sum := 0
		for i := 0; i < n; i++ {
			a[i], sum = sum, sum+a[i]
		}
		return sum
	}
	sums := make([]int, nb)
	Blocks(n, grain, func(lo, hi int) {
		s := 0
		for i := lo; i < hi; i++ {
			s += a[i]
		}
		sums[lo/grain] = s
	})
	total := 0
	for i := range sums {
		sums[i], total = total, total+sums[i]
	}
	Blocks(n, grain, func(lo, hi int) {
		s := sums[lo/grain]
		for i := lo; i < hi; i++ {
			a[i], s = s, s+a[i]
		}
	})
	return total
}
