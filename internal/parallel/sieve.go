package parallel

// Sieve is the paper's Sieve(P, T) primitive (borrowed from the Pkd-tree
// work [43], §3.1): it stably reorders src into dst so that all elements of
// the same bucket become contiguous, and returns the bucket offsets
// (offsets[i] is the start of bucket i in dst; offsets[buckets] == len(src)).
//
// It is a stable parallel counting sort: per-block histograms, a
// column-major prefix sum over the (block x bucket) count matrix, and a
// parallel scatter. Stability is what lets the orth-tree and kd-tree
// builders recurse on slices of a single reordered array with no extra
// copies, which is the source of their I/O efficiency.
//
// src and dst must have equal length and must not alias. bucketOf must
// return a value in [0, buckets).
func Sieve[T any](src, dst []T, buckets int, bucketOf func(T) int) []int {
	return SieveWith(nil, src, dst, buckets, bucketOf)
}

// SieveScratch holds the internal buffers of one sieve invocation so
// steady-state callers (the sharded batch partitioner, most prominently)
// can re-run Sieve every flush without allocating. The zero value is
// ready; buffers grow to the high-water mark and are then reused.
//
// Ownership: the offsets slice returned by SieveWith aliases the scratch
// and is valid only until the next SieveWith call with the same scratch.
// A scratch must not be shared by concurrent sieves.
type SieveScratch struct {
	offsets []int
	ids     []uint16
	counts  []int
}

// grab returns scratch slices of the requested lengths, reusing capacity.
func (sc *SieveScratch) grab(nOffsets, nIDs, nCounts int) (offsets []int, ids []uint16, counts []int) {
	if cap(sc.offsets) < nOffsets {
		sc.offsets = make([]int, nOffsets)
	}
	sc.offsets = sc.offsets[:nOffsets]
	clear(sc.offsets)
	if cap(sc.ids) < nIDs {
		sc.ids = make([]uint16, nIDs)
	}
	sc.ids = sc.ids[:nIDs]
	if cap(sc.counts) < nCounts {
		sc.counts = make([]int, nCounts)
	}
	sc.counts = sc.counts[:nCounts]
	clear(sc.counts)
	return sc.offsets, sc.ids, sc.counts
}

// SieveWith is Sieve with caller-provided scratch buffers. A nil scratch
// allocates fresh buffers (equivalent to Sieve).
func SieveWith[T any](sc *SieveScratch, src, dst []T, buckets int, bucketOf func(T) int) []int {
	if sc == nil {
		sc = new(SieveScratch)
	}
	n := len(src)
	if n == 0 {
		offsets, _, _ := sc.grab(buckets+1, 0, 0)
		return offsets
	}
	// Choose a block size that keeps the count matrix small but gives
	// every worker several blocks for load balance.
	grain := sieveGrain(n, buckets)
	nb := NumBlocks(n, grain)

	if nb == 1 {
		// Sequential fast path: counts doubles as the running positions.
		offsets, ids, pos := sc.grab(buckets+1, n, buckets)
		counts := offsets[:buckets]
		for i, v := range src {
			b := bucketOf(v)
			ids[i] = uint16(b)
			counts[b]++
		}
		sum := 0
		for b := 0; b < buckets; b++ {
			c := counts[b]
			offsets[b] = sum
			pos[b] = sum
			sum += c
		}
		offsets[buckets] = sum
		for i, v := range src {
			b := ids[i]
			dst[pos[b]] = v
			pos[b]++
		}
		return offsets
	}

	// counts is row-major: counts[block*buckets+bucket].
	offsets, ids, counts := sc.grab(buckets+1, n, nb*buckets)
	Blocks(n, grain, func(lo, hi int) {
		row := counts[(lo/grain)*buckets : (lo/grain+1)*buckets]
		for i := lo; i < hi; i++ {
			b := bucketOf(src[i])
			ids[i] = uint16(b)
			row[b]++
		}
	})

	// Column-major exclusive scan: for bucket k, blocks in order. This
	// assigns every (block, bucket) cell its start position in dst and
	// fills the global bucket offsets.
	sum := 0
	for b := 0; b < buckets; b++ {
		offsets[b] = sum
		for blk := 0; blk < nb; blk++ {
			c := counts[blk*buckets+b]
			counts[blk*buckets+b] = sum
			sum += c
		}
	}
	offsets[buckets] = sum

	Blocks(n, grain, func(lo, hi int) {
		row := counts[(lo/grain)*buckets : (lo/grain+1)*buckets]
		for i := lo; i < hi; i++ {
			b := ids[i]
			dst[row[b]] = src[i]
			row[b]++
		}
	})
	return offsets
}

// sieveGrain picks the sieve block size: large enough that the per-block
// histogram (buckets ints) is amortized, small enough for load balance.
func sieveGrain(n, buckets int) int {
	g := n / (maxProcs() * 8)
	if g < 4*buckets {
		g = 4 * buckets
	}
	if g < 1024 {
		g = 1024
	}
	return g
}

// MaxSieveBuckets is the largest bucket count Sieve supports (bucket ids
// are staged in uint16 scratch).
const MaxSieveBuckets = 1 << 16
