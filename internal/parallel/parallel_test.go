package parallel

import (
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDo(t *testing.T) {
	var a, b atomic.Bool
	Do(func() { a.Store(true) }, func() { b.Store(true) })
	if !a.Load() || !b.Load() {
		t.Fatal("Do did not run both tasks")
	}
}

func TestDoIfSequential(t *testing.T) {
	order := []int{}
	DoIf(false, func() { order = append(order, 1) }, func() { order = append(order, 2) })
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("sequential DoIf order = %v", order)
	}
}

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000, 10000, 100003} {
		hits := make([]atomic.Int32, n)
		For(n, 128, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, hits[i].Load())
			}
		}
	}
}

func TestBlocksPartition(t *testing.T) {
	n := 54321
	var total atomic.Int64
	Blocks(n, 1000, func(lo, hi int) {
		if lo >= hi || hi > n {
			t.Errorf("bad block [%d,%d)", lo, hi)
		}
		total.Add(int64(hi - lo))
	})
	if total.Load() != int64(n) {
		t.Fatalf("blocks covered %d of %d", total.Load(), n)
	}
}

func TestReduce(t *testing.T) {
	n := 100000
	got := Reduce(n, 1000, 0, func(i int) int { return i }, func(a, b int) int { return a + b })
	want := n * (n - 1) / 2
	if got != want {
		t.Fatalf("Reduce = %d, want %d", got, want)
	}
	// Non-commutative but associative op (string-ish concat via slices)
	// must combine blocks in index order.
	cat := Reduce(10, 3, []int{}, func(i int) []int { return []int{i} },
		func(a, b []int) []int { return append(append([]int{}, a...), b...) })
	for i, v := range cat {
		if v != i {
			t.Fatalf("Reduce order broken: %v", cat)
		}
	}
}

func TestScan(t *testing.T) {
	for _, n := range []int{0, 1, 5, 4096, 4097, 100000} {
		a := make([]int, n)
		want := make([]int, n)
		sum := 0
		for i := range a {
			a[i] = i%7 + 1
			want[i] = sum
			sum += a[i]
		}
		if got := Scan(a); got != sum {
			t.Fatalf("n=%d: Scan total = %d, want %d", n, got, sum)
		}
		for i := range a {
			if a[i] != want[i] {
				t.Fatalf("n=%d: a[%d] = %d, want %d", n, i, a[i], want[i])
			}
		}
	}
}

func TestSieveStable(t *testing.T) {
	type elem struct{ bucket, seq int }
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 100, 5000, 200000} {
		for _, buckets := range []int{1, 2, 16, 64} {
			src := make([]elem, n)
			for i := range src {
				src[i] = elem{bucket: rng.Intn(buckets), seq: i}
			}
			dst := make([]elem, n)
			off := Sieve(src, dst, buckets, func(e elem) int { return e.bucket })
			if len(off) != buckets+1 || off[buckets] != n {
				t.Fatalf("bad offsets %v", off)
			}
			// Each segment holds exactly its bucket, in original order.
			lastSeq := make([]int, buckets)
			for b := range lastSeq {
				lastSeq[b] = -1
			}
			for b := 0; b < buckets; b++ {
				if off[b] > off[b+1] {
					t.Fatalf("offsets not monotone: %v", off)
				}
				for _, e := range dst[off[b]:off[b+1]] {
					if e.bucket != b {
						t.Fatalf("bucket %d segment contains element of bucket %d", b, e.bucket)
					}
					if e.seq <= lastSeq[b] {
						t.Fatalf("sieve not stable in bucket %d", b)
					}
					lastSeq[b] = e.seq
				}
			}
		}
	}
}

func TestSieveSkewed(t *testing.T) {
	// All elements in one bucket — degenerate histogram.
	n := 50000
	src := make([]int, n)
	for i := range src {
		src[i] = i
	}
	dst := make([]int, n)
	off := Sieve(src, dst, 8, func(int) int { return 5 })
	if off[5] != 0 || off[6] != n {
		t.Fatalf("skewed offsets wrong: %v", off)
	}
	for i := range dst {
		if dst[i] != i {
			t.Fatal("skewed sieve lost stability")
		}
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func TestSortMatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 100, seqSortThreshold - 1, seqSortThreshold, 100000, 300001} {
		a := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(1 << 20)
		}
		want := slices.Clone(a)
		slices.Sort(want)
		Sort(a, cmpInt)
		if !slices.Equal(a, want) {
			t.Fatalf("n=%d: parallel sort mismatch", n)
		}
	}
}

func TestSortAdversarial(t *testing.T) {
	// Sorted, reverse-sorted, constant, and two-value inputs.
	n := 100000
	mk := func(f func(i int) int) []int {
		a := make([]int, n)
		for i := range a {
			a[i] = f(i)
		}
		return a
	}
	inputs := map[string][]int{
		"sorted":   mk(func(i int) int { return i }),
		"reverse":  mk(func(i int) int { return n - i }),
		"constant": mk(func(i int) int { return 42 }),
		"twoval":   mk(func(i int) int { return i & 1 }),
		"sawtooth": mk(func(i int) int { return i % 37 }),
	}
	for name, a := range inputs {
		want := slices.Clone(a)
		slices.Sort(want)
		Sort(a, cmpInt)
		if !slices.Equal(a, want) {
			t.Fatalf("%s: parallel sort mismatch", name)
		}
	}
}

func TestSortQuick(t *testing.T) {
	f := func(a []int16) bool {
		b := make([]int, len(a))
		for i, v := range a {
			b[i] = int(v)
		}
		want := slices.Clone(b)
		slices.Sort(want)
		Sort(b, cmpInt)
		return slices.Equal(b, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortInts(t *testing.T) {
	a := []int64{5, -1, 3, 3, 0}
	SortInts(a)
	if !slices.IsSorted(a) {
		t.Fatalf("SortInts = %v", a)
	}
}

func TestNumBlocks(t *testing.T) {
	if NumBlocks(0, 10) != 0 || NumBlocks(10, 10) != 1 || NumBlocks(11, 10) != 2 {
		t.Fatal("NumBlocks arithmetic wrong")
	}
}
