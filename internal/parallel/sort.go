package parallel

import (
	"slices"
	"sort"
)

// seqSortThreshold is the size below which Sort falls back to the stdlib
// pattern-defeating quicksort.
const seqSortThreshold = 1 << 13

// Sort sorts a in parallel with a sample sort (the same family as the
// super-scalar samplesort [9] used by the paper's HybridSort): sample,
// pick pivots, classify every element to a bucket with a branch-light
// binary search, Sieve-scatter into bucket order, then sort buckets in
// parallel. The sort is not stable.
func Sort[T any](a []T, cmp func(x, y T) int) {
	n := len(a)
	if n < seqSortThreshold || maxProcs() == 1 {
		slices.SortFunc(a, cmp)
		return
	}
	nbuckets := maxProcs() * 4
	if nbuckets > 256 {
		nbuckets = 256
	}
	// Oversample for balanced pivots.
	const oversample = 16
	sampleSize := nbuckets * oversample
	samples := make([]T, sampleSize)
	stride := n / sampleSize
	for i := 0; i < sampleSize; i++ {
		samples[i] = a[i*stride]
	}
	slices.SortFunc(samples, cmp)
	pivots := make([]T, nbuckets-1)
	for i := range pivots {
		pivots[i] = samples[(i+1)*oversample]
	}
	// If the sample is all-equal the input is massively duplicated;
	// classification would put everything in one bucket and recurse
	// uselessly, so just sort sequentially.
	if cmp(pivots[0], pivots[len(pivots)-1]) == 0 {
		slices.SortFunc(a, cmp)
		return
	}

	buf := make([]T, n)
	offsets := Sieve(a, buf, nbuckets, func(v T) int {
		// upper-bound binary search: bucket i receives values in
		// (pivot[i-1], pivot[i]].
		lo, hi := 0, len(pivots)
		for lo < hi {
			mid := (lo + hi) / 2
			if cmp(v, pivots[mid]) <= 0 {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	})
	ForEach(nbuckets, 1, func(b int) {
		seg := buf[offsets[b]:offsets[b+1]]
		slices.SortFunc(seg, cmp)
		copy(a[offsets[b]:offsets[b+1]], seg)
	})
}

// SortedCheck reports whether a is sorted under cmp. Test/validation helper.
func SortedCheck[T any](a []T, cmp func(x, y T) int) bool {
	return slices.IsSortedFunc(a, cmp)
}

// SortInts sorts an int64 slice in parallel. Convenience wrapper used by
// workload generators (Sweepline sorts by the first coordinate).
func SortInts(a []int64) {
	Sort(a, func(x, y int64) int {
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	})
}

// SearchInts is re-exported sort.Search specialised for int ranges; several
// indexes binary-search batch boundaries with it.
func SearchInts(n int, f func(int) bool) int { return sort.Search(n, f) }
