package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// Churn benchmarks the read path PR 6 refactored: reader tail latency
// while a Collection is under continuous flush churn. A writer goroutine
// commits back-to-back full-population windows (every object moves from
// position set A to set B and back, so each flush is a maximal
// delete+insert diff against the index), while reader goroutines stream
// 10-NN-and-resolve queries and record per-query wall time. The same
// workload runs twice:
//
//	locked   — the pre-PR-6 read path: queries take the Collection read
//	           lock and wait out any in-flight BatchDiff;
//	snapshot — the epoch-pinned path: queries pin the published
//	           index/fwd/rev version and never wait behind a flush.
//
// The interesting column is rd-p99-us: under churn the locked reader's
// tail is the flush duration, the snapshot reader's tail is a query.
// mut-kops/s confirms the writer kept flushing at full rate in both
// modes (snapshot mode applies every window to both twins, buying the
// wait-free tail with ~2x apply work — the table shows what that costs).
//
// Quantiles are time-weighted (each sample weighted by its own duration)
// to correct for coordinated omission: a reader blocked behind a flush
// issues fewer samples exactly when latency is worst, so count-weighted
// quantiles would hide the stall the experiment exists to expose.
func Churn(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	n := cfg.N
	side := workload.Uniform.Side(2)
	ptsA := workload.GenUniform(n, 2, side, cfg.Seed)
	ptsB := workload.GenUniform(n, 2, side, cfg.Seed+777)
	queries := workload.GenUniform(max(cfg.KNNQ, 1), 2, side, cfg.Seed+778)
	readers := min(4, runtime.NumCPU())
	windows := 4 * cfg.Reps

	fmt.Fprintf(cfg.Out, "Churn — reader latency under flush churn, n=%d objects, %d readers, %d full-move windows\n",
		n, readers, windows)
	fmt.Fprintf(cfg.Out, "(Collection[int] over SPaC-H; rd-p99 is the column PR 6 targets; '*' marks are not meaningful here)\n")

	tb := newTable("churn: reader tail latency vs flush path",
		"rd-p50-us", "rd-p99-us", "rd-kops/s", "mut-kops/s").
		setUnits("us", "us", "kops/s", "kops/s")
	for _, mode := range []string{"locked", "snapshot"} {
		mk := func() core.Index { return mkIndex("SPaC-H", 2, side) }
		opts := collection.Options{MaxBatch: n + 1} // only explicit Flush commits
		if mode == "snapshot" {
			opts.Snapshot = mk
		}
		p50, p99, rdKops, mutKops := runChurn(mk(), opts, ptsA, ptsB, queries, readers, windows)
		tb.add(mode, p50, p99, rdKops, mutKops)
	}
	tb.write(cfg.Out)
}

// runChurn preloads every object at its A position, then runs the churn
// window loop against readers and reports the merged reader latency
// quantiles (µs), reader throughput, and writer mutation throughput
// (kops/s, counting each Set of a window).
func runChurn(idx core.Index, opts collection.Options,
	ptsA, ptsB []geom.Point, queries []geom.Point, readers, windows int) (p50us, p99us, rdKops, mutKops float64) {
	c := collection.New[int](idx, opts)
	defer c.Close()
	for id, p := range ptsA {
		c.Set(id, p)
	}
	c.Flush()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	lats := make([][]float64, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var dst []collection.Entry[int]
			samples := lats[r][:0]
			for i := r; ; i++ {
				select {
				case <-stop:
					lats[r] = samples
					return
				default:
				}
				start := time.Now()
				dst = c.NearbyIDsAppend(queries[i%len(queries)], 10, dst[:0])
				samples = append(samples, float64(time.Since(start).Nanoseconds())/1e3)
			}
		}(r)
	}

	// 50% duty cycle: after each enqueue+flush window the writer idles for
	// as long as the window took. Continuous back-to-back flushing would
	// measure pure CPU contention (on few cores the readers barely get
	// scheduled at all, in either mode); churn with idle gaps is both the
	// realistic serving shape and the one where the read-path difference
	// is visible — clean-air samples fill the low quantiles and the flush
	// stalls surface at p99. Mutation throughput is reported over active
	// window time only.
	wall := time.Now()
	var active time.Duration
	for w := 0; w < windows; w++ {
		pts := ptsB
		if w%2 == 1 {
			pts = ptsA
		}
		start := time.Now()
		for id, p := range pts {
			c.Set(id, p)
		}
		c.Flush()
		d := time.Since(start)
		active += d
		time.Sleep(d)
	}
	wallS := time.Since(wall).Seconds()
	close(stop)
	wg.Wait()

	var all []float64
	for _, s := range lats {
		all = append(all, s...)
	}
	sort.Float64s(all)
	// Time-weighted quantile: the latency below which the readers spent
	// fraction f of their busy time (see the coordinated-omission note on
	// Churn). With every sample equally fast this matches the plain
	// count-weighted quantile.
	var total float64
	for _, v := range all {
		total += v
	}
	q := func(f float64) float64 {
		if len(all) == 0 {
			return nan
		}
		var cum float64
		for _, v := range all {
			cum += v
			if cum >= f*total {
				return v
			}
		}
		return all[len(all)-1]
	}
	mut := float64(windows * len(ptsA))
	return q(0.50), q(0.99), float64(len(all)) / wallS / 1e3, mut / active.Seconds() / 1e3
}
