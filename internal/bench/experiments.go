package bench

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"
)

// batchRatios are Fig. 3's incremental batch sizes as fractions of n.
var batchRatios = []float64{0.10, 0.01, 0.001, 0.0001}

// Fig3 regenerates the paper's main 2D table: for each synthetic
// distribution and index — build time; the query suite after building
// half the data; incremental insertion at four batch ratios with the
// query suite at the 50% point of the smallest ratio; and the symmetric
// incremental deletion columns.
func Fig3(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	cache := newCache()
	fmt.Fprintf(cfg.Out, "Fig. 3 — synthetic 2D, n=%d (paper: 1e9), times in seconds\n", cfg.N)
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		runFig3Dist(cfg, cache, dist, 2, indexNames2D)
	}
}

// runFig3Dist emits the three sub-tables (static, incremental insert,
// incremental delete) for one distribution. Shared with Fig9 (3D).
func runFig3Dist(cfg Config, cache *dataCache, dist workload.Dist, dims int, names []string) {
	pts := cache.points(dist, cfg.N, dims, cfg.Seed)
	side := dist.Side(dims)
	qs := makeQueries(cfg, dist, dims)
	smallest := batchRatios[len(batchRatios)-1]

	static := newTable(fmt.Sprintf("%s/%dD static: build(100%%) + queries on 50%% tree", dist, dims),
		"build", "10NN-InD", "10NN-OOD", "rangeCnt", "rangeList")
	ins := newTable(fmt.Sprintf("%s/%dD incremental insert (total) + queries at 50%%", dist, dims),
		"ins-10%", "ins-1%", "ins-0.1%", "ins-0.01%", "10NN-InD", "10NN-OOD", "rangeCnt", "rangeList")
	del := newTable(fmt.Sprintf("%s/%dD incremental delete (total) + queries at 50%%", dist, dims),
		"del-10%", "del-1%", "del-0.1%", "del-0.01%", "10NN-InD", "10NN-OOD", "rangeCnt", "rangeList")

	for _, name := range names {
		// Static: build on full n; query a tree of n/2 (paper §5.1.3
		// setting 1).
		var buildT float64
		if name == "Boost-R" {
			buildT = nan // sequential point-insert loop; paper omits it
		} else {
			idx := mkIndex(name, dims, side)
			buildT = timeOp(cfg.Reps, nil, func() { idx.Build(pts) })
		}
		half := mkIndex(name, dims, side)
		half.Build(pts[:cfg.N/2])
		qInD, qOOD, qCnt, qLst := queryPhases(half, qs, cfg.Reps)
		static.add(name, buildT, qInD, qOOD, qCnt, qLst)

		if name == "Boost-R" {
			// Boost-R only supports point updates; the paper reports its
			// queries after one-by-one incremental updates.
			idx := mkIndex(name, dims, side)
			idx.Build(pts[:cfg.N/2])
			i0, i1, i2, i3 := queryPhases(idx, qs, cfg.Reps)
			ins.add(name, nan, nan, nan, nan, i0, i1, i2, i3)
			del.add(name, nan, nan, nan, nan, i0, i1, i2, i3)
			continue
		}

		insT := make([]float64, len(batchRatios))
		var insQ [4]float64
		for i, ratio := range batchRatios {
			b := batchOf(cfg.N, ratio)
			idx := mkIndex(name, dims, side)
			var qsp *querySet
			if ratio == smallest {
				qsp = &qs
			}
			t, q := incrementalInsert(idx, pts, b, qsp, cfg.Reps)
			insT[i] = t
			if qsp != nil {
				insQ = q
			}
		}
		ins.add(name, insT[0], insT[1], insT[2], insT[3], insQ[0], insQ[1], insQ[2], insQ[3])

		delT := make([]float64, len(batchRatios))
		var delQ [4]float64
		for i, ratio := range batchRatios {
			b := batchOf(cfg.N, ratio)
			idx := mkIndex(name, dims, side)
			idx.Build(pts)
			var qsp *querySet
			if ratio == smallest {
				qsp = &qs
			}
			t, q := incrementalDelete(idx, pts, b, qsp, cfg.Reps)
			delT[i] = t
			if qsp != nil {
				delQ = q
			}
		}
		del.add(name, delT[0], delT[1], delT[2], delT[3], delQ[0], delQ[1], delQ[2], delQ[3])
	}
	static.write(cfg.Out)
	ins.write(cfg.Out)
	del.write(cfg.Out)
}

func batchOf(n int, ratio float64) int {
	b := int(float64(n) * ratio)
	if b < 1 {
		b = 1
	}
	return b
}

// Fig4 regenerates the kNN-vs-k study: k ∈ {1, 10, 100}, InD and OOD, on
// trees built by incremental insertion (paper: 500M points, 0.01%
// batches; ratio configurable via the scaled n).
func Fig4(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	cache := newCache()
	fmt.Fprintf(cfg.Out, "Fig. 4 — kNN vs k after incremental insertion, n=%d\n", cfg.N)
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		pts := cache.points(dist, cfg.N, 2, cfg.Seed)
		side := dist.Side(2)
		qs := makeQueries(cfg, dist, 2)
		tb := newTable(fmt.Sprintf("%s: 10^%d kNN queries", dist, digits(cfg.KNNQ)),
			"k1-InD", "k10-InD", "k100-InD", "k1-OOD", "k10-OOD", "k100-OOD")
		for _, name := range indexNames2D {
			idx := mkIndex(name, 2, side)
			if name == "Boost-R" {
				idx.BatchInsert(pts) // one-by-one internally
			} else {
				incrementalInsert(idx, pts, batchOf(cfg.N, 0.001), nil, cfg.Reps)
			}
			var vals []float64
			for _, queries := range [][]geom.Point{qs.ind, qs.ood} {
				for _, k := range []int{1, 10, 100} {
					q := queries
					vals = append(vals, timeOp(cfg.Reps, nil, func() { core.ParallelKNN(idx, q, k) }))
				}
			}
			tb.add(name, vals[0], vals[1], vals[2], vals[3], vals[4], vals[5])
		}
		tb.write(cfg.Out)
	}
}

func digits(n int) int {
	d := 0
	for n > 0 {
		d++
		n /= 10
	}
	return d
}

// Fig5 regenerates range-report time vs output size: boxes sized for
// output fractions from ~1e-5 n to ~1e-2 n.
func Fig5(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	cache := newCache()
	fracs := []float64{1e-5, 1e-4, 1e-3, 1e-2}
	fmt.Fprintf(cfg.Out, "Fig. 5 — range-list time vs output size, n=%d\n", cfg.N)
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		pts := cache.points(dist, cfg.N, 2, cfg.Seed)
		side := dist.Side(2)
		cols := make([]string, len(fracs))
		boxSets := make([][]geom.Box, len(fracs))
		for i, f := range fracs {
			boxSets[i] = workload.RangeQueries(cfg.RangeQ, 2, side, f, cfg.Seed)
			cols[i] = fmt.Sprintf("out~%.0e", f*float64(cfg.N))
		}
		tb := newTable(fmt.Sprintf("%s: %d range-list queries per column", dist, cfg.RangeQ), cols...)
		for _, name := range indexNames2D {
			idx := mkIndex(name, 2, side)
			if name == "Boost-R" {
				idx.BatchInsert(pts)
			} else {
				incrementalInsert(idx, pts, batchOf(cfg.N, 0.001), nil, cfg.Reps)
			}
			vals := make([]float64, len(fracs))
			for i := range fracs {
				boxes := boxSets[i]
				vals[i] = timeOp(cfg.Reps, nil, func() { core.ParallelRangeList(idx, boxes) })
			}
			tb.add(name, vals...)
		}
		tb.write(cfg.Out)
	}
}

// Fig6 regenerates the real-world table on the Cosmo (3D) and OSM (2D)
// stand-ins: build, incremental insert/delete at 0.01%, 10NN and
// range-list after build.
func Fig6(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	cache := newCache()
	fmt.Fprintf(cfg.Out, "Fig. 6 — real-world stand-ins (synthetic substitutes, see internal/workload), n=%d\n", cfg.N)
	for _, setup := range []struct {
		dist workload.Dist
		dims int
	}{{workload.Cosmo, 3}, {workload.OSM, 2}} {
		pts := cache.points(setup.dist, cfg.N, setup.dims, cfg.Seed)
		side := setup.dist.Side(setup.dims)
		qs := makeQueries(cfg, setup.dist, setup.dims)
		tb := newTable(fmt.Sprintf("%s (%dD)", setup.dist, setup.dims),
			"build", "insert", "delete", "10NN", "rangeList")
		names := indexNames2D
		if setup.dims == 3 {
			names = []string{"P-Orth", "Zd-Tree", "SPaC-H", "SPaC-Z", "CPAM-H", "CPAM-Z", "Boost-R", "Pkd-Tree"}
		}
		for _, name := range names {
			if name == "Boost-R" {
				idx := mkIndex(name, setup.dims, side)
				idx.Build(pts)
				qInD, _, _, qLst := queryPhases(idx, qs, cfg.Reps)
				tb.add(name, nan, nan, nan, qInD, qLst)
				continue
			}
			idx := mkIndex(name, setup.dims, side)
			buildT := timeOp(cfg.Reps, nil, func() { idx.Build(pts) })
			b := batchOf(cfg.N, 0.0001)
			insIdx := mkIndex(name, setup.dims, side)
			insT, _ := incrementalInsert(insIdx, pts, b, nil, cfg.Reps)
			delIdx := mkIndex(name, setup.dims, side)
			delIdx.Build(pts)
			delT, _ := incrementalDelete(delIdx, pts, b, nil, cfg.Reps)
			qInD, _, _, qLst := queryPhases(idx, qs, cfg.Reps)
			tb.add(name, buildT, insT, delT, qInD, qLst)
		}
		tb.write(cfg.Out)
	}
}

// Fig7 regenerates the scalability study: build / single batch insert /
// single batch delete across thread counts, reported as speedup over the
// 1-thread SPaC-H time (the paper's normalization).
func Fig7(cfg Config) {
	cfg = cfg.withDefaults()
	cache := newCache()
	maxP := runtime.NumCPU()
	threads := []int{1}
	for p := 2; p <= maxP; p *= 2 {
		threads = append(threads, p)
	}
	if threads[len(threads)-1] != maxP {
		threads = append(threads, maxP)
	}
	fmt.Fprintf(cfg.Out, "Fig. 7 — scalability, n=%d, threads %v (speedup vs 1-thread SPaC-H; higher is better)\n",
		cfg.N, threads)
	batch := batchOf(cfg.N, 0.01)
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		pts := cache.points(dist, cfg.N, 2, cfg.Seed)
		extra := workload.Generate(dist, batch, 2, dist.Side(2), cfg.Seed+999)
		side := dist.Side(2)
		for _, phase := range []string{"build", "insert", "delete"} {
			cols := make([]string, len(threads))
			for i, p := range threads {
				cols[i] = fmt.Sprintf("p=%d", p)
			}
			tb := newTable(fmt.Sprintf("%s %s speedup", dist, phase), cols...)
			for i := range tb.units {
				tb.units[i] = "x"
			}
			// Baseline: SPaC-H at 1 thread.
			base := measurePhase(cfg, "SPaC-H", phase, pts, extra, side, 1)
			for _, name := range parallelIndexes {
				vals := make([]float64, len(threads))
				for i, p := range threads {
					t := measurePhase(cfg, name, phase, pts, extra, side, p)
					vals[i] = base / t
				}
				tb.add(name, vals...)
			}
			tb.write(cfg.Out)
		}
	}
}

// measurePhase times one phase of Fig. 7 at the given thread count.
func measurePhase(cfg Config, name, phase string, pts, extra []geom.Point, side int64, p int) float64 {
	restore := setThreads(p)
	defer restore()
	switch phase {
	case "build":
		idx := mkIndex(name, 2, side)
		return timeOp(cfg.Reps, nil, func() { idx.Build(pts) })
	case "insert":
		var idx core.Index
		return timeOp(cfg.Reps,
			func() { idx = mkIndex(name, 2, side); idx.Build(pts) },
			func() { idx.BatchInsert(extra) })
	default: // delete
		var idx core.Index
		del := pts[:len(extra)]
		return timeOp(cfg.Reps,
			func() { idx = mkIndex(name, 2, side); idx.Build(pts) },
			func() { idx.BatchDelete(del) })
	}
}

// fig8Indexes extends the parallel set with the Log-tree and BHL-tree —
// the paper places those two on Fig. 8 using numbers *estimated* from the
// Pkd-tree paper; here they are implemented and measured.
var fig8Indexes = append(append([]string{}, parallelIndexes...), "Log-Tree", "BHL-Tree")

// Fig8 summarizes the update/query trade-off (the paper's scatter plot):
// geometric means of the update columns and of the query columns of a
// Fig. 3-style run, reported as relative throughput (higher is better).
func Fig8(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	cache := newCache()
	fmt.Fprintf(cfg.Out, "Fig. 8 — update vs query performance (geometric means, throughput relative to best; 1.0 = best)\n")
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		pts := cache.points(dist, cfg.N, 2, cfg.Seed)
		side := dist.Side(2)
		qs := makeQueries(cfg, dist, 2)
		type pt struct {
			name          string
			update, query float64
		}
		var res []pt
		for _, name := range fig8Indexes {
			idx := mkIndex(name, 2, side)
			buildT := timeOnce(func() { idx.Build(pts) })
			b := batchOf(cfg.N, 0.001)
			insIdx := mkIndex(name, 2, side)
			insT, _ := incrementalInsert(insIdx, pts, b, nil, cfg.Reps)
			delIdx := mkIndex(name, 2, side)
			delIdx.Build(pts)
			delT, _ := incrementalDelete(delIdx, pts, b, nil, cfg.Reps)
			qInD, qOOD, qCnt, qLst := queryPhases(idx, qs, cfg.Reps)
			res = append(res, pt{
				name:   name,
				update: geoMean([]float64{buildT, insT, delT}),
				query:  geoMean([]float64{qInD, qOOD, qCnt, qLst}),
			})
		}
		bestU, bestQ := res[0].update, res[0].query
		for _, r := range res {
			if r.update < bestU {
				bestU = r.update
			}
			if r.query < bestQ {
				bestQ = r.query
			}
		}
		tb := newTable(fmt.Sprintf("%s: relative throughput (update, query)", dist), "update", "query").
			setUnits("x", "x")
		for _, r := range res {
			tb.add(r.name, bestU/r.update, bestQ/r.query)
		}
		// For Fig. 8 higher is better; table marks minima, so note it.
		fmt.Fprintf(cfg.Out, "(columns are throughput ratios in (0,1]; 1.0 = best; '*' marks are not meaningful here)\n")
		tb.write(cfg.Out)
	}
}

// Fig9 regenerates the 3D synthetic table (§E) for the reduced index set
// the paper reports there.
func Fig9(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	cache := newCache()
	fmt.Fprintf(cfg.Out, "Fig. 9 — synthetic 3D, n=%d, coords [0,1e6] (§E)\n", cfg.N)
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		runFig3Dist(cfg, cache, dist, 3, indexNames3D)
	}
}

// Fig10 regenerates the single-batch update study (§D): one batch
// insertion / deletion of varying size against a full-size tree.
func Fig10(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	cache := newCache()
	ratios := []float64{0.0001, 0.001, 0.01, 0.1, 1.0}
	fmt.Fprintf(cfg.Out, "Fig. 10 — single batch updates on a tree of n=%d (§D)\n", cfg.N)
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		pts := cache.points(dist, cfg.N, 2, cfg.Seed)
		side := dist.Side(2)
		cols := make([]string, 0, 2*len(ratios))
		for _, r := range ratios {
			cols = append(cols, fmt.Sprintf("ins-%g", r))
		}
		for _, r := range ratios {
			cols = append(cols, fmt.Sprintf("del-%g", r))
		}
		tb := newTable(fmt.Sprintf("%s single-batch", dist), cols...)
		for _, name := range parallelIndexes {
			vals := make([]float64, 0, len(cols))
			for _, r := range ratios {
				batch := workload.Generate(dist, batchOf(cfg.N, r), 2, side, cfg.Seed+1234)
				var idx core.Index
				vals = append(vals, timeOp(cfg.Reps,
					func() { idx = mkIndex(name, 2, side); idx.Build(pts) },
					func() { idx.BatchInsert(batch) }))
			}
			for _, r := range ratios {
				del := pts[:batchOf(cfg.N, r)]
				var idx core.Index
				vals = append(vals, timeOp(cfg.Reps,
					func() { idx = mkIndex(name, 2, side); idx.Build(pts) },
					func() { idx.BatchDelete(del) }))
			}
			tb.add(name, vals...)
		}
		tb.write(cfg.Out)
	}
}
