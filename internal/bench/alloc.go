package bench

import (
	"context"
	"fmt"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/workload"

	psi "repro"
)

// Alloc measures steady-state allocations per operation on the serving
// hot path (-exp alloc) — the machine-readable counterpart of the
// zero-allocation work: each layer's scratch reuse is compared against
// the same layer with its own recycling disabled (the per-layer
// DisableScratch options, preserved exactly for this measurement). The
// "before" columns are an in-tree baseline — same code, same workload,
// that layer's recycling off. They isolate per-layer wins: the shared
// geom heap pool stays on for the serving rows (its own contribution is
// the "KNN k=10" row, where SetHeapPooling toggles it), so the serving
// before/after deltas understate the total recycling win slightly.
//
// Rows cover the full psid path from socket to batch apply:
//
//   - Store flush windows (single-kind and netted-mixed) over a warm
//     SPaC-H — the internal/store double-buffering;
//   - Collection move windows — ID netting, diff buffers and the
//     reverse-multimap freelist;
//   - Sharded move diffs — the sieve partitioner scratch;
//   - KNN with a reused dst — the pooled geom.KNNHeap
//     (before = pooling off);
//   - the psid serving path, both as an in-process line
//     (parse → dispatch → encode, server side only) and as a full
//     loopback TCP round trip (client encode/decode included on both
//     sides, which is why its floor is higher).
//
// The after columns are what CI's AllocsPerRun guards pin at zero for
// the guarded layers.
func Alloc(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	side := workload.Uniform.Side(2)
	universe := geom.UniverseBox(2, side)
	pts := workload.Generate(workload.Uniform, cfg.N, 2, side, cfg.Seed)

	window := 1024
	if window > cfg.N/4 && cfg.N >= 8 {
		window = cfg.N / 4
	}
	iters := 50 * cfg.Reps
	// Two disjoint batches objects shuttle between (plus query points).
	batchA := workload.GenUniform(window, 2, side, cfg.Seed+101)
	batchB := workload.GenUniform(window, 2, side, cfg.Seed+102)
	queries := workload.GenUniform(256, 2, side, cfg.Seed+103)

	fmt.Fprintf(cfg.Out, "Alloc — steady-state allocations per op/window, window=%d, iters=%d\n", window, iters)
	fmt.Fprintf(cfg.Out, "(before = scratch reuse disabled, i.e. the allocate-per-window behavior; after = default)\n")
	tb := newTable("alloc: scratch reuse before/after",
		"before", "after", "before-B", "after-B", "after-ns").
		setUnits("allocs/op", "allocs/op", "B/op", "B/op", "ns/op")

	var cleanups []func()
	cleanup := func(f func()) { cleanups = append(cleanups, f) }
	measure := func(label string, mk func(reuse bool) func()) {
		bAllocs, bBytes, _ := allocsPerOp(iters, mk(false))
		aAllocs, aBytes, aNs := allocsPerOp(iters, mk(true))
		tb.add(label, bAllocs, aAllocs, bBytes, aBytes, aNs)
		for _, f := range cleanups {
			f()
		}
		cleanups = nil
	}

	// The paired rows isolate each serving layer over a null inner index
	// (its batch ops cost nothing, so the row is purely the layer's own
	// machinery — what the AllocsPerRun guards pin at zero), then show
	// the same window over a real SPaC-H stack for end-to-end context
	// (tree update allocations — node churn, encode-and-sort — dominate
	// there and are untouched by this work).

	// Store: one op = a window of inserts flushed, then the matching
	// delete window flushed — both single-kind netting paths.
	storeWindow := func(inner func() core.Index) func(reuse bool) func() {
		return func(reuse bool) func() {
			st := store.New(inner(), store.Options{MaxBatch: 4 * window, DisableScratch: !reuse})
			return func() {
				st.BatchInsert(batchA)
				st.Flush()
				st.BatchDelete(batchA)
				st.Flush()
			}
		}
	}
	measure("Store.Flush warm window", storeWindow(func() core.Index { return core.NewNull(2) }))
	measure("Store+SPaC-H ins+del", storeWindow(func() core.Index {
		idx := psi.NewSPaCH(2, universe)
		idx.Build(pts)
		return idx
	}))

	// Mixed window: interleaved insert/delete pairs of the same points
	// net to nothing — the order-aware matching pass with its maps.
	measure("Store.Flush netted-mix", func(reuse bool) func() {
		idx := psi.NewSPaCH(2, universe)
		idx.Build(pts)
		st := store.New(idx, store.Options{MaxBatch: 4 * window, DisableScratch: !reuse})
		return func() {
			for _, p := range batchA {
				st.Insert(p)
				st.Delete(p)
			}
			st.Flush()
		}
	})

	// Collection: one op = every tracked object moves once, flushed as
	// one netted window (the fleet-serving steady state).
	collWindow := func(inner func() core.Index) func(reuse bool) func() {
		return func(reuse bool) func() {
			coll := collection.New[int](inner(), collection.Options{MaxBatch: 4 * window, DisableScratch: !reuse})
			for i, p := range batchA {
				coll.Set(i, p)
			}
			coll.Flush()
			cur := batchA
			next := batchB
			return func() {
				for i, p := range next {
					coll.Set(i, p)
				}
				coll.Flush()
				cur, next = next, cur
			}
		}
	}
	measure("Collection move-window", collWindow(func() core.Index { return core.NewNull(2) }))
	measure("Collection+SPaC-H moves", collWindow(func() core.Index { return psi.NewSPaCH(2, universe) }))

	// Sharded: one op = a move diff (delete one batch, insert the other)
	// partitioned by shard and applied concurrently.
	shardMove := func(inner func(dims int, u geom.Box) core.Index, build bool) func(reuse bool) func() {
		return func(reuse bool) func() {
			sh := shard.New(shard.Options{
				Dims: 2, Universe: universe, Strategy: shard.HilbertRange,
				New:            inner,
				DisableScratch: !reuse,
			})
			if build {
				sh.Build(pts)
			}
			sh.BatchInsert(batchA)
			cur := batchA
			next := batchB
			return func() {
				sh.BatchDiff(next, cur)
				cur, next = next, cur
			}
		}
	}
	measure("Sharded.BatchDiff move", shardMove(func(dims int, u geom.Box) core.Index { return core.NewNull(dims) }, false))
	measure("Sharded+SPaC-H moves", shardMove(func(dims int, u geom.Box) core.Index { return psi.NewSPaCH(dims, u) }, true))

	// Query path: KNN with a reused dst; before = the heap pool off, so
	// every query allocates its KNNHeap (the pre-pooling behavior).
	measure("KNN k=10 (SPaC-H)", func(reuse bool) func() {
		idx := psi.NewSPaCH(2, universe)
		idx.Build(pts)
		dst := make([]geom.Point, 0, 16)
		qi := 0
		return func() {
			geom.SetHeapPooling(reuse)
			dst = idx.KNN(queries[qi%len(queries)], 10, dst[:0])
			qi++
			geom.SetHeapPooling(true)
		}
	})

	// The serving path without the socket: parse one NEARBY line,
	// dispatch through the Collection, encode the response — exactly a
	// connection goroutine's per-line work.
	measure("psid serve NEARBY(10)", func(reuse bool) func() {
		srv := service.New(psi.NewSPaCH(2, universe), service.Options{
			FlushInterval:  -1,
			DisableScratch: !reuse,
		})
		lc := srv.NewLineConn()
		set := srv.NewLineConn()
		line := []byte(`{"op":"NEARBY","p":[500000,500000],"k":10}`)
		for i, p := range pts[:min(len(pts), 4096)] {
			set.Serve(fmt.Appendf(nil, `{"op":"SET","id":"o%d","p":[%d,%d]}`, i, p[0], p[1]))
		}
		set.Serve([]byte(`{"op":"FLUSH"}`))
		return func() { lc.Serve(line) }
	})

	// Full loopback round trip: client-side encode/decode allocations
	// are included on both rows, so the floor is the client's, not the
	// server's.
	measure("psid NEARBY round trip", func(reuse bool) func() {
		srv := service.New(psi.NewSPaCH(2, universe), service.Options{
			FlushInterval:  -1,
			DisableScratch: !reuse,
		})
		if err := srv.Start("127.0.0.1:0", ""); err != nil {
			fmt.Fprintf(cfg.Out, "alloc: %v\n", err)
			return func() {}
		}
		cleanup(func() {
			srv.Shutdown(context.Background())
		})
		cl, err := service.Dial(srv.Addr().String())
		if err != nil {
			fmt.Fprintf(cfg.Out, "alloc: %v\n", err)
			return func() {}
		}
		cleanup(func() { cl.Close() })
		cl.SetReuse(reuse)
		for i, p := range pts[:min(len(pts), 4096)] {
			cl.Set(fmt.Sprintf("o%d", i), []int64{p[0], p[1]})
		}
		cl.Flush()
		q := []int64{500000, 500000}
		return func() {
			if _, err := cl.Nearby(q, 10); err != nil {
				panic(err)
			}
		}
	})

	tb.write(cfg.Out)
}
