package bench

import (
	"fmt"
	"os"
	"time"

	"repro/internal/collection"
	"repro/internal/geom"
	"repro/internal/wal"
	"repro/internal/workload"
)

// WAL benchmarks the cost of the flush-commit journal PR 8 added: the
// same full-move window workload as the churn experiment (every object
// hops between two position sets, so each flush is a maximal netted
// window) committed under each durability configuration:
//
//	off     — no WAL: the pre-PR-8 Collection, the zero-cost baseline
//	never   — journal every window, leave syncing to the kernel
//	100ms   — journal every window, fsync on a 100ms timer
//	always  — fsync inside every flush: acknowledged == on disk
//
// win-us is the mean wall time of one committed window (Flush, which
// under a WAL includes encode + write + policy fsync) — the durability
// tax per window. log-KB/win is the journal bytes appended per window.
// recover-ms is the time a fresh Open takes to reload the final state
// (snapshot-free worst case: pure log replay). The off row's WAL
// columns are zero by construction.
func WAL(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	n := cfg.N
	side := workload.Uniform.Side(2)
	ptsA := workload.GenUniform(n, 2, side, cfg.Seed)
	ptsB := workload.GenUniform(n, 2, side, cfg.Seed+777)
	windows := 4 * cfg.Reps
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("obj-%07d", i)
	}

	fmt.Fprintf(cfg.Out, "WAL — flush-commit overhead per fsync policy, n=%d objects, %d full-move windows\n", n, windows)
	fmt.Fprintf(cfg.Out, "(Collection[string] over SPaC-H journaling to a temp dir; docs/durability.md has the per-policy guarantee)\n")

	tb := newTable("wal: flush-commit cost vs durability policy",
		"win-us", "mut-kops/s", "log-KB/win", "recover-ms").
		setUnits("us", "kops/s", "KB", "ms")
	for _, row := range []struct {
		name   string
		policy wal.FsyncPolicy
		on     bool
	}{
		{"off", 0, false},
		{"never", wal.FsyncNever, true},
		{"100ms", wal.FsyncInterval, true},
		{"always", wal.FsyncAlways, true},
	} {
		winUs, mutKops, kbPerWin, recoverMs := runWAL(row.on, row.policy, side, ids, ptsA, ptsB, windows)
		tb.add(row.name, winUs, mutKops, kbPerWin, recoverMs)
	}
	tb.write(cfg.Out)
}

// runWAL commits the window loop under one policy and returns the mean
// per-window Flush wall time (µs), total mutation throughput (kops/s),
// journal bytes per window (KB), and the cold-recovery replay time (ms).
func runWAL(on bool, policy wal.FsyncPolicy, side int64, ids []string, ptsA, ptsB []geom.Point, windows int) (winUs, mutKops, kbPerWin, recoverMs float64) {
	c := collection.New[string](mkIndex("SPaC-H", 2, side), collection.Options{MaxBatch: len(ids) + 1})
	var dir string
	if on {
		var err error
		dir, err = os.MkdirTemp("", "psibench-wal-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		l, _, err := wal.Open[string](dir, wal.StringCodec{}, wal.Options{Fsync: policy, Interval: 100 * time.Millisecond})
		if err != nil {
			panic(err)
		}
		defer l.Close()
		c.SetJournal(l.AppendWindow)
		defer func() {
			// Cold recovery: close the generation and time a fresh Open
			// replaying the whole log (no snapshot was ever taken).
			c.Close()
			if err := l.Close(); err != nil {
				panic(err)
			}
			st := l.Stats()
			kbPerWin = float64(st.AppendedBytes) / float64(st.Appends) / 1024
			t0 := time.Now()
			l2, rec, err := wal.Open[string](dir, wal.StringCodec{}, wal.Options{Fsync: wal.FsyncNever})
			if err != nil {
				panic(err)
			}
			recoverMs = float64(time.Since(t0).Microseconds()) / 1e3
			if len(rec.Entries) != len(ids) {
				panic(fmt.Sprintf("wal bench: recovered %d objects, want %d", len(rec.Entries), len(ids)))
			}
			l2.Close()
		}()
	}
	defer c.Close()

	// Preload at A and commit (journaled like any window when on).
	for i, id := range ids {
		c.Set(id, ptsA[i])
	}
	c.Flush()

	var flushTotal time.Duration
	begin := time.Now()
	cur, next := ptsA, ptsB
	for w := 0; w < windows; w++ {
		for i, id := range ids {
			c.Set(id, next[i])
		}
		t0 := time.Now()
		c.Flush()
		flushTotal += time.Since(t0)
		cur, next = next, cur
	}
	elapsed := time.Since(begin)
	winUs = float64(flushTotal.Microseconds()) / float64(windows)
	mutKops = float64(windows*len(ids)) / elapsed.Seconds() / 1e3
	return winUs, mutKops, kbPerWin, recoverMs
}
