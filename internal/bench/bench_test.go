package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The harness smoke tests run every experiment at a tiny scale: they
// verify the runners execute end to end, print every expected table, and
// never emit negative or absent timings for supported operations.

func tinyConfig(buf *bytes.Buffer) Config {
	return Config{N: 4000, KNNQ: 50, RangeQ: 10, Reps: 1, Seed: 1, Out: buf}
}

func TestFig3Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig3(tinyConfig(&buf))
	out := buf.String()
	for _, want := range []string{
		"uniform/2D static", "sweepline/2D incremental insert", "varden/2D incremental delete",
		"P-Orth", "SPaC-H", "CPAM-Z", "Boost-R", "Pkd-Tree",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig3 output missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "NaN") {
		t.Fatal("raw NaN leaked into Fig3 output (should render as N/A)")
	}
}

func TestFig4Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig4(tinyConfig(&buf))
	for _, want := range []string{"k1-InD", "k100-OOD", "varden"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Fig4 output missing %q", want)
		}
	}
}

func TestFig5Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig5(tinyConfig(&buf))
	if !strings.Contains(buf.String(), "range-list time vs output size") {
		t.Fatal("Fig5 header missing")
	}
}

func TestFig6Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig6(tinyConfig(&buf))
	out := buf.String()
	for _, want := range []string{"cosmo (3D)", "osm (2D)", "insert", "delete"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig6 output missing %q", want)
		}
	}
}

func TestFig7Smoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	Fig7(cfg)
	out := buf.String()
	for _, want := range []string{"p=1", "build speedup", "insert speedup", "delete speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig7 output missing %q", want)
		}
	}
}

func TestFig8Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig8(tinyConfig(&buf))
	if !strings.Contains(buf.String(), "update vs query performance") {
		t.Fatal("Fig8 header missing")
	}
}

func TestFig9Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig9(tinyConfig(&buf))
	out := buf.String()
	if !strings.Contains(out, "uniform/3D static") || !strings.Contains(out, "SPaC-H") {
		t.Fatalf("Fig9 output incomplete:\n%s", out)
	}
	if strings.Contains(out, "Boost-R") {
		t.Fatal("Fig9 should use the reduced 3D index set")
	}
}

func TestFig10Smoke(t *testing.T) {
	var buf bytes.Buffer
	Fig10(tinyConfig(&buf))
	out := buf.String()
	for _, want := range []string{"ins-0.0001", "del-1", "single batch updates"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig10 output missing %q", want)
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	var buf bytes.Buffer
	Ablations(tinyConfig(&buf))
	out := buf.String()
	for _, want := range []string{"lambda=3", "phi=40", "SPaC(part)", "hybrid", "plain"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Ablations output missing %q", want)
		}
	}
}

func TestConcurrentSmoke(t *testing.T) {
	var buf bytes.Buffer
	Concurrent(tinyConfig(&buf))
	out := buf.String()
	for _, want := range []string{
		"Store mixed workload", "throughput by index", "coalescing ablation",
		"SPaC-H", "Pkd-Tree", "batch=1", "batch=4096", "mut-Mops/s",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Concurrent output missing %q\n%s", want, out)
		}
	}
}

func TestChurnSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.N = 2000
	Churn(cfg)
	out := buf.String()
	for _, want := range []string{
		"reader latency under flush churn", "reader tail latency vs flush path",
		"locked", "snapshot", "rd-p50-us", "rd-p99-us", "mut-kops/s",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Churn output missing %q\n%s", want, out)
		}
	}
}

func TestServiceSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.N = 2000
	Service(cfg)
	out := buf.String()
	for _, want := range []string{
		"psid over loopback TCP", "SPaC-H", "Sharded", "kops/s", "p99-us",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Service output missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "service: ") {
		t.Fatalf("Service run reported an error:\n%s", out)
	}
}

func TestAllocSmoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.N = 2000
	StartJSON("alloc", cfg)
	Alloc(cfg)
	var jsonBuf bytes.Buffer
	if err := WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"scratch reuse before/after", "Store.Flush warm window",
		"Collection move-window", "Sharded.BatchDiff move",
		"psid serve NEARBY(10)", "psid NEARBY round trip",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Alloc output missing %q\n%s", want, out)
		}
	}
	var doc JSONDoc
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil {
		t.Fatalf("psibench JSON does not parse: %v", err)
	}
	if doc.Schema != "psibench/v1" || doc.Experiment != "alloc" || len(doc.Results) == 0 {
		t.Fatalf("JSON doc malformed: %+v", doc)
	}
	// The headline wins must hold even at smoke scale: the isolated warm
	// Store flush drops to (near) zero, and the serving round trip halves.
	val := func(index, column string) float64 {
		for _, r := range doc.Results {
			if r.Index == index && r.Column == column {
				return r.Value
			}
		}
		t.Fatalf("JSON missing cell %s/%s", index, column)
		return 0
	}
	if before, after := val("Store.Flush warm window", "before"), val("Store.Flush warm window", "after"); after > before/2 {
		t.Fatalf("warm Store flush allocs: before %.2f after %.2f (want >= 50%% reduction)", before, after)
	}
	if before, after := val("psid NEARBY round trip", "before"), val("psid NEARBY round trip", "after"); after > before/2 {
		t.Fatalf("NEARBY round trip allocs: before %.2f after %.2f (want >= 50%% reduction)", before, after)
	}
}

func TestGeoMean(t *testing.T) {
	if g := geoMean([]float64{1, 4}); g != 2 {
		t.Fatalf("geoMean = %v", g)
	}
	if g := geoMean(nil); !isNaN(g) {
		t.Fatal("geoMean of empty should be NaN")
	}
}

func TestTableMarksFastest(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable("t", "a")
	tb.add("x", 2.0)
	tb.add("y", 1.0)
	tb.add("z", nan)
	tb.write(&buf)
	out := buf.String()
	if !strings.Contains(out, "1.0000*") {
		t.Fatalf("fastest not marked:\n%s", out)
	}
	if !strings.Contains(out, "N/A") {
		t.Fatal("NaN not rendered as N/A")
	}
}

func TestCSVMirror(t *testing.T) {
	var csvBuf, out bytes.Buffer
	if err := SetCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	tb := newTable("csv-demo", "colA", "colB")
	tb.add("idx1", 1.5, nan)
	tb.add("idx2", 0.25, 3.0)
	tb.write(&out)
	SetCSV(nil)
	got := csvBuf.String()
	for _, want := range []string{"table,index,column,value,unit", "csv-demo,idx1,colA,1.5,s", "csv-demo,idx2,colB,3,s"} {
		if !strings.Contains(got, want) {
			t.Fatalf("CSV missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "colB,NaN") {
		t.Fatal("NaN cell leaked into CSV")
	}
}
