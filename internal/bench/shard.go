package bench

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"

	psi "repro"
)

// Shard benchmarks the sharding fan-out layer (-exp shard): for uniform
// and Varden-clustered data, sweep shard count × partitioning strategy
// over several child index families and compare against the unsharded
// baseline on bulk build, one 10% and one 1% BatchDiff (a "move" batch:
// fresh inserts plus deletes of resident points), and the query suite.
//
// The two partitioners are the literature's two shapes: "G" rows are the
// classic *static* uniform grid (equal-area slabs, Options.Static), "H"
// rows are Hilbert-curve ranges with Build-time equi-depth rebalancing.
// On skewed (Varden) data the static grid piles points into few shards —
// the balance column goes toward S — while SFC ranges stay near 1.
//
// What to expect: on multi-core machines the per-shard sub-batches apply
// concurrently, so BatchDiff scales with min(S, cores) on top of each
// index's internal parallelism. Even on one core, sharding pays off for
// the indexes whose update cost grows with tree size — BHL-Tree rebuilds
// only the shards a batch touches instead of the whole tree, and the
// sequential Boost-R works on S shallower trees.
func Shard(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	cache := newCache()

	counts := []int{2, 4, 8}
	if p := runtime.NumCPU(); p > 8 {
		counts = append(counts, p)
	}
	strategies := []psi.ShardStrategy{psi.ShardGrid, psi.ShardHilbert}

	// Children: the paper's fastest batch-parallel index, the full-rebuild
	// baseline (sharding localizes its rebuilds), and the sequential
	// R-tree (sharding is its only route to batch concurrency). Boost-R
	// runs at n/10 — its point-at-a-time build dominates otherwise.
	children := []struct {
		name string
		n    int
	}{
		{"SPaC-H", cfg.N},
		{"BHL-Tree", cfg.N},
		{"Boost-R", cfg.N / 10},
	}

	fmt.Fprintf(cfg.Out, "Shard — space-partitioned fan-out layer, n=%d, %d cores\n", cfg.N, runtime.NumCPU())
	fmt.Fprintf(cfg.Out, "(seconds except balance = max shard load / ideal, 1.0 is perfect; S=1 row is the unsharded baseline)\n")
	for _, dist := range []workload.Dist{workload.Uniform, workload.Varden} {
		for _, child := range children {
			n := child.n
			if n < 1000 {
				n = 1000
			}
			pts := cache.points(dist, n, 2, cfg.Seed)
			side := dist.Side(2)
			universe := geom.UniverseBox(2, side)
			qcfg := cfg
			qcfg.N = n
			qcfg.KNNQ = 0 // rescale to n/100
			qcfg = qcfg.withDefaults()
			qs := makeQueries(qcfg, dist, 2)
			fresh10 := workload.Generate(dist, batchOf(n, 0.1), 2, side, cfg.Seed+321)
			fresh1 := workload.Generate(dist, batchOf(n, 0.01), 2, side, cfg.Seed+654)

			tb := newTable(fmt.Sprintf("%s: sharding over %s (n=%d)", dist, child.name, n),
				"build", "diff-10%", "diff-1%", "10NN-InD", "rangeCnt", "rangeList", "balance")
			mkBase := func() core.Index { return psi.ByName(child.name, 2, universe) }
			shardRow(cfg, tb, child.name, mkBase, pts, fresh10, fresh1, qs)
			for _, s := range counts {
				for _, strat := range strategies {
					s, strat := s, strat
					mk := func() core.Index {
						return psi.NewShardedOpts(psi.ShardedOptions{
							Dims:     2,
							Universe: universe,
							Shards:   s,
							Strategy: strat,
							Static:   strat == psi.ShardGrid,
							New: func(dims int, u geom.Box) core.Index {
								return psi.ByName(child.name, dims, u)
							},
						})
					}
					shardRow(cfg, tb, fmt.Sprintf("S=%d %s", s, strat), mk, pts, fresh10, fresh1, qs)
				}
			}
			tb.write(cfg.Out)
		}
	}
}

// shardRow times one table row: build, the two move diffs, and the query
// suite on the post-10%-diff tree, plus the shard load balance.
func shardRow(cfg Config, tb *table, label string, mk func() core.Index,
	pts, fresh10, fresh1 []geom.Point, qs querySet) {
	var idx core.Index
	buildT := timeOp(cfg.Reps,
		func() { idx = mk() },
		func() { idx.Build(pts) })
	diff10 := timeOp(cfg.Reps,
		func() { idx = mk(); idx.Build(pts) },
		func() { idx.BatchDiff(fresh10, pts[:len(fresh10)]) })
	balance := shardBalance(idx)
	qInD, _, qCnt, qLst := queryPhases(idx, qs, cfg.Reps)
	diff1 := timeOp(cfg.Reps,
		func() { idx = mk(); idx.Build(pts) },
		func() { idx.BatchDiff(fresh1, pts[:len(fresh1)]) })
	tb.add(label, buildT, diff10, diff1, qInD, qCnt, qLst, balance)
}

// shardBalance returns max shard load over the ideal equal split (1.0 is
// perfect balance), or NaN for unsharded indexes.
func shardBalance(idx core.Index) float64 {
	s, ok := idx.(*psi.Sharded)
	if !ok {
		return nan
	}
	sizes := s.ShardSizes(nil)
	total, maxSz := 0, 0
	for _, sz := range sizes {
		total += sz
		if sz > maxSz {
			maxSz = sz
		}
	}
	if total == 0 {
		return nan
	}
	return float64(maxSz) * float64(len(sizes)) / float64(total)
}
