package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/service"
	"repro/internal/workload"

	psi "repro"
)

// Service benchmarks the network serving layer (-exp service): an
// in-process psid server on a loopback socket, driven by the psiload
// generator — N concurrent client connections issuing the default
// SET/NEARBY/WITHIN mover/query mix, cfg.N requests in total. Rows
// compare the Collection serving stacks (unsharded SPaC-H vs the
// recommended Sharded SPaC-H); columns are client-observed end-to-end
// numbers: total throughput in kops/s and p50/p99 request latency in
// microseconds.
//
// What to expect: unlike the in-process experiments, every request pays
// a socket round trip, so the columns measure the serving path — JSON
// framing, the goroutine-per-connection fan-in, and how well the
// Collection's coalescing turns concurrent SETs into the paper's
// parallel BatchDiff while queries keep being answered. The gap between
// the stacks is the shard fan-out win under that mix; both rows should
// sit far above what one mutation per index batch could serve.
func Service(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	conns := 2 * runtime.GOMAXPROCS(0)
	objects := cfg.N / 10
	if objects < 100 {
		objects = 100
	}
	side := workload.Uniform.Side(2)
	universe := geom.UniverseBox(2, side)
	stacks := []struct {
		name string
		mk   func() core.Index
	}{
		{"SPaC-H", func() core.Index { return psi.NewSPaCH(2, universe) }},
		{"Sharded", func() core.Index { return psi.NewSharded(psi.NewSPaCH, 2, universe, 0) }},
	}

	fmt.Fprintf(cfg.Out, "Service — psid over loopback TCP, %d conns, %d objects, %d requests, %d cores\n",
		conns, objects, cfg.N, runtime.NumCPU())
	fmt.Fprintf(cfg.Out, "(kops/s higher is better, latency lower; '*' marks the column minimum and is only meaningful for latency)\n")
	tb := newTable("serving: Collection over unsharded vs sharded SPaC-H",
		"kops/s", "p50-us", "p99-us", "set-p99-us", "qry-p99-us").
		setUnits("kops/s", "us", "us", "us", "us")
	for _, st := range stacks {
		srv := service.New(st.mk(), service.Options{MaxBatch: 4096})
		if err := srv.Start("127.0.0.1:0", ""); err != nil {
			fmt.Fprintf(cfg.Out, "service: %v\n", err)
			return
		}
		rep, err := service.RunLoad(service.LoadOptions{
			Addr:     srv.Addr().String(),
			Conns:    conns,
			Objects:  objects,
			Side:     side,
			TotalOps: cfg.N,
			Seed:     cfg.Seed,
		})
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		srv.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			fmt.Fprintf(cfg.Out, "service: %v\n", err)
			return
		}
		var setP99, qryP99 float64 = nan, nan
		for _, o := range rep.PerOp {
			switch o.Op {
			case service.OpSet:
				setP99 = float64(o.P99) / 1e3
			case service.OpNearby:
				qryP99 = float64(o.P99) / 1e3
			}
		}
		tb.add(st.name,
			rep.OpsPerSec/1e3,
			float64(rep.Total.P50)/1e3,
			float64(rep.Total.P99)/1e3,
			setP99,
			qryP99,
		)
	}
	tb.write(cfg.Out)
}
