package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/orthtree"
	"repro/internal/sfc"
	"repro/internal/spactree"
	"repro/internal/workload"
)

// Ablations benchmarks the paper's design choices:
//
//	(a) P-Orth skeleton depth λ (how many tree levels one sieve round
//	    builds; the paper fixes λ=3 in 2D, §C);
//	(b) SPaC leaf wrap φ (paper: 40, §C);
//	(c) partial vs total leaf order (SPaC vs CPAM) under small-batch
//	    insertion — the paper's headline relaxation — including how many
//	    leaves actually go unsorted;
//	(d) HybridSort vs precompute-then-sort construction (SPaC vs CPAM
//	    build on identical data, §4.1).
func Ablations(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	cache := newCache()
	fmt.Fprintf(cfg.Out, "Ablations — n=%d\n", cfg.N)
	ablationLambda(cfg, cache)
	ablationLeafWrap(cfg, cache)
	ablationLeafOrder(cfg, cache)
	ablationHybridSort(cfg, cache)
}

// ablationLambda sweeps the P-Orth skeleton depth.
func ablationLambda(cfg Config, cache *dataCache) {
	pts := cache.points(workload.Uniform, cfg.N, 2, cfg.Seed)
	side := workload.Uniform.Side(2)
	tb := newTable("(a) P-Orth skeleton depth λ (2D uniform)", "build", "ins-0.1%")
	for lam := 1; lam <= 4; lam++ {
		opts := core.DefaultOptions(2, geom.UniverseBox(2, side))
		opts.SkeletonLevels = lam
		idx := orthtree.New(opts)
		buildT := timeOp(cfg.Reps, nil, func() { idx.Build(pts) })
		inc := orthtree.New(opts)
		insT, _ := incrementalInsert(inc, pts, batchOf(cfg.N, 0.001), nil, cfg.Reps)
		tb.add(fmt.Sprintf("lambda=%d", lam), buildT, insT)
	}
	tb.write(cfg.Out)
}

// ablationLeafWrap sweeps the SPaC leaf wrap φ.
func ablationLeafWrap(cfg Config, cache *dataCache) {
	pts := cache.points(workload.Uniform, cfg.N, 2, cfg.Seed)
	side := workload.Uniform.Side(2)
	qs := makeQueries(cfg, workload.Uniform, 2)
	tb := newTable("(b) SPaC-H leaf wrap φ (2D uniform)", "build", "ins-0.1%", "10NN-InD")
	for _, phi := range []int{16, 40, 128} {
		opts := core.DefaultOptions(2, geom.UniverseBox(2, side))
		opts.LeafWrap = phi
		opts.Alpha = 0.2
		idx := spactree.New(sfc.Hilbert, spactree.PartialOrder, opts)
		buildT := timeOp(cfg.Reps, nil, func() { idx.Build(pts) })
		inc := spactree.New(sfc.Hilbert, spactree.PartialOrder, opts)
		insT, _ := incrementalInsert(inc, pts, batchOf(cfg.N, 0.001), nil, cfg.Reps)
		qT := timeOp(cfg.Reps, nil, func() { core.ParallelKNN(idx, qs.ind, 10) })
		tb.add(fmt.Sprintf("phi=%d", phi), buildT, insT, qT)
	}
	tb.write(cfg.Out)
}

// ablationLeafOrder is the paper's core claim in isolation: identical
// trees except for the in-leaf order relaxation, driven by small batches.
func ablationLeafOrder(cfg Config, cache *dataCache) {
	pts := cache.points(workload.Uniform, cfg.N, 2, cfg.Seed)
	side := workload.Uniform.Side(2)
	qs := makeQueries(cfg, workload.Uniform, 2)
	tb := newTable("(c) partial vs total leaf order (2D uniform, 0.01% batches)",
		"ins-total", "10NN-InD", "unsortedLeaf%")
	for _, mode := range []spactree.Mode{spactree.PartialOrder, spactree.TotalOrder} {
		tr := spactree.New(sfc.Hilbert, mode, spacOpts(side))
		insT, _ := incrementalInsert(tr, pts, batchOf(cfg.N, 0.0001), nil, cfg.Reps)
		qT := timeOp(cfg.Reps, nil, func() { core.ParallelKNN(tr, qs.ind, 10) })
		leaves, unsorted := tr.LeafStats()
		frac := 0.0
		if leaves > 0 {
			frac = 100 * float64(unsorted) / float64(leaves)
		}
		label := "SPaC(part)"
		if mode == spactree.TotalOrder {
			label = "CPAM(tot)"
		}
		tb.add(label, insT, qT, frac)
	}
	tb.write(cfg.Out)
}

// ablationHybridSort isolates construction: HybridSort (codes on first
// touch, ⟨code,id⟩ pairs) vs the plain precompute-and-sort-pairs build.
func ablationHybridSort(cfg Config, cache *dataCache) {
	tb := newTable("(d) HybridSort vs plain construction (build seconds)",
		"uniform", "varden")
	for _, mode := range []spactree.Mode{spactree.PartialOrder, spactree.TotalOrder} {
		label := "hybrid"
		if mode == spactree.TotalOrder {
			label = "plain"
		}
		var vals []float64
		for _, dist := range []workload.Dist{workload.Uniform, workload.Varden} {
			pts := cache.points(dist, cfg.N, 2, cfg.Seed)
			tr := spactree.New(sfc.Hilbert, mode, spacOpts(dist.Side(2)))
			vals = append(vals, timeOp(cfg.Reps, nil, func() { tr.Build(pts) }))
		}
		tb.add(label, vals...)
	}
	tb.write(cfg.Out)
}

func spacOpts(side int64) core.Options {
	opts := core.DefaultOptions(2, geom.UniverseBox(2, side))
	opts.LeafWrap = 40
	opts.Alpha = 0.2
	return opts
}
