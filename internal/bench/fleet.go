package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"

	psi "repro"
)

// Fleet benchmarks the moving-object serving layer (-exp fleet): N
// tracked objects churn through Collection.Set from several mover
// goroutines — each Set nets to one del+ins BatchDiff pair at the next
// flush — while query clients resolve NearbyIDs ("nearest vehicles") and
// WithinIDs ("vehicles in area") concurrently. One table per move
// distance (as a fraction of the universe side: short hops keep updates
// spatially local, teleports scatter them), each comparing an unsharded
// SPaC-H against a Sharded SPaC-H under the same Collection front-end.
//
// What to expect: every flush is one BatchDiff of ~MaxBatch netted
// moves, so the table measures how well each stack turns the paper's
// parallel batch updates into identity-churn throughput. Sharding pays
// most for local moves (a flush touches few shards and they apply
// concurrently) and least for teleports (every flush scatters across all
// shards). Columns are throughput in million ops/second (higher is
// better; the '*' minimum markers are not meaningful here).
func Fleet(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	const movers, clients = 4, 4
	side := workload.Uniform.Side(2)
	universe := geom.UniverseBox(2, side)
	start := workload.GenUniform(cfg.N, 2, side, cfg.Seed)
	boxes := workload.RangeQueries(max(cfg.RangeQ, 1), 2, side, 1e-3, cfg.Seed+779)
	queries := workload.GenUniform(max(cfg.KNNQ, 1), 2, side, cfg.Seed+778)

	stacks := []struct {
		name string
		mk   func() core.Index
	}{
		{"SPaC-H", func() core.Index { return psi.NewSPaCH(2, universe) }},
		{"Sharded", func() core.Index { return psi.NewSharded(psi.NewSPaCH, 2, universe, 0) }},
	}
	dists := []struct {
		name string
		frac float64 // move distance as a fraction of the universe side; 1 = teleport
	}{
		{"hop 0.1%", 0.001},
		{"hop 1%", 0.01},
		{"teleport", 1},
	}

	fmt.Fprintf(cfg.Out, "Fleet — Collection moving-object churn, %d objects, %d movers + %d clients, %d cores\n",
		cfg.N, movers, clients, runtime.NumCPU())
	fmt.Fprintf(cfg.Out, "(columns are Mops/s; higher is better; '*' marks are not meaningful here)\n")
	for _, d := range dists {
		tb := newTable(fmt.Sprintf("move distance %s: Collection over unsharded vs sharded SPaC-H", d.name),
			"set-Mops/s", "qry-Mops/s").
			setUnits("Mops/s", "Mops/s")
		for _, st := range stacks {
			set, qry := runFleetWorkload(st.mk, start, queries, boxes, d.frac, movers, clients, cfg.Seed)
			tb.add(st.name, set, qry)
		}
		tb.write(cfg.Out)
	}
}

// runFleetWorkload loads the fleet into a fresh Collection, then runs
// len(start) Set-churn moves split across the mover goroutines (each
// mover owns an interleaved slice of the IDs and tracks its own
// positions, so moves are bounded hops without reading back) while the
// clients alternate 10-NN NearbyIDs and WithinIDs until the movers
// finish. Returns Set and query throughput in Mops/s over the shared
// wall-clock window.
func runFleetWorkload(mk func() core.Index, start, queries []geom.Point, boxes []geom.Box,
	frac float64, movers, clients int, seed int64) (setMops, qryMops float64) {
	c := collection.New[int32](mk(), collection.Options{MaxBatch: 4096})
	defer c.Close()
	for id, p := range start {
		c.Set(int32(id), p)
	}
	c.Flush()

	side := workload.Uniform.Side(2)
	step := int64(frac * float64(side))
	nMoves := len(start)
	var wgM, wgQ sync.WaitGroup
	var queriesDone atomic.Int64
	stop := make(chan struct{})
	begin := time.Now()
	for m := 0; m < movers; m++ {
		wgM.Add(1)
		go func(m int) {
			defer wgM.Done()
			rng := rand.New(rand.NewSource(seed + int64(m)))
			// This mover's slice of the fleet and its private view of
			// their positions.
			ids := make([]int32, 0, len(start)/movers+1)
			pos := make([]geom.Point, 0, cap(ids))
			for id := m; id < len(start); id += movers {
				ids = append(ids, int32(id))
				pos = append(pos, start[id])
			}
			for i := m; i < nMoves; i += movers {
				j := rng.Intn(len(ids))
				p := pos[j]
				if step >= side {
					p = geom.Pt2(rng.Int63n(side+1), rng.Int63n(side+1))
				} else {
					for d := 0; d < 2; d++ {
						v := p[d] + rng.Int63n(2*step+1) - step
						if v < 0 {
							v = 0
						} else if v > side {
							v = side
						}
						p[d] = v
					}
				}
				pos[j] = p
				c.Set(ids[j], p)
			}
		}(m)
	}
	for r := 0; r < clients; r++ {
		wgQ.Add(1)
		go func(r int) {
			defer wgQ.Done()
			for i := r; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					c.NearbyIDs(queries[i%len(queries)], 10)
				} else {
					c.WithinIDs(boxes[i%len(boxes)])
				}
				queriesDone.Add(1)
			}
		}(r)
	}
	wgM.Wait()
	c.Flush() // all moves visible
	elapsed := time.Since(begin).Seconds()
	close(stop)
	wgQ.Wait()
	return float64(nMoves) / elapsed / 1e6, float64(queriesDone.Load()) / elapsed / 1e6
}
