// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§5, §D, §E): Fig. 3 (main 2D
// table), Fig. 4 (kNN vs k), Fig. 5 (range report vs output size), Fig. 6
// (real-world stand-ins), Fig. 7 (scalability), Fig. 8 (update/query
// trade-off), Fig. 9 (3D table), Fig. 10 (single-batch updates), plus the
// ablations of the paper's design choices (§C tuning and the SPaC
// leaf-order relaxation — see ARCHITECTURE.md for the layer-by-layer
// mapping) and one experiment per serving layer this library adds
// (concurrent, shard, fleet, service).
//
// The harness follows the paper's protocol: one warm-up run, then the
// mean of Reps timed runs (§5 "We report numbers as the average of 3 runs
// after a warm-up run"), with dataset sizes scaled by a single -n flag so
// the same code runs on the paper's 112-core machine or a laptop.
package bench

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/workload"

	psi "repro"
)

// Config scales the experiments. Zero fields take defaults.
type Config struct {
	N       int   // dataset size (paper: 1e9; default here: 1e5 for tests, set 1e6+ in psibench)
	KNNQ    int   // number of kNN queries (paper: 1e7)
	RangeQ  int   // number of range queries (paper: 5e4)
	Reps    int   // timed repetitions after one warm-up
	Seed    int64 // workload seed
	Threads int   // GOMAXPROCS for the run; 0 = leave as is
	Out     io.Writer
}

func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 100_000
	}
	if c.KNNQ == 0 {
		c.KNNQ = c.N / 100
	}
	if c.RangeQ == 0 {
		c.RangeQ = 100
	}
	if c.Reps == 0 {
		c.Reps = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// indexNames2D is the paper's table order for 2D experiments.
var indexNames2D = []string{
	"P-Orth", "Zd-Tree", "SPaC-H", "SPaC-Z", "CPAM-H", "CPAM-Z", "Boost-R", "Pkd-Tree",
}

// indexNames3D is the reduced set of Fig. 9.
var indexNames3D = []string{"P-Orth", "SPaC-H", "Pkd-Tree"}

// parallelIndexes excludes the sequential Boost R-tree (no batch ops).
var parallelIndexes = []string{
	"P-Orth", "Zd-Tree", "SPaC-H", "SPaC-Z", "CPAM-H", "CPAM-Z", "Pkd-Tree",
}

// timeOp runs f once for warm-up on fresh state via setup, then averages
// Reps timed runs. setup is untimed and must return the state f consumes.
func timeOp(reps int, setup func(), f func()) float64 {
	if setup != nil {
		setup()
	}
	f() // warm-up
	var total time.Duration
	for r := 0; r < reps; r++ {
		if setup != nil {
			setup()
		}
		start := time.Now()
		f()
		total += time.Since(start)
	}
	return total.Seconds() / float64(reps)
}

// timeOnce times a single execution (for operations too expensive or too
// stateful to repeat, e.g. full incremental runs).
func timeOnce(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// dataCache memoizes generated workloads across experiments in a run.
type dataCache struct {
	pts map[string][]geom.Point
}

func newCache() *dataCache { return &dataCache{pts: map[string][]geom.Point{}} }

func (dc *dataCache) points(d workload.Dist, n, dims int, seed int64) []geom.Point {
	key := fmt.Sprintf("%s/%d/%d/%d", d, n, dims, seed)
	if pts, ok := dc.pts[key]; ok {
		return pts
	}
	pts := workload.Generate(d, n, dims, d.Side(dims), seed)
	dc.pts[key] = pts
	return pts
}

// table accumulates rows and pretty-prints with the per-column fastest
// entry marked '*' (the paper bolds it).
type table struct {
	title   string
	columns []string
	units   []string // per-column measurement unit; "s" unless setUnits overrides
	rows    []tableRow
}

type tableRow struct {
	label string
	vals  []float64
}

func newTable(title string, columns ...string) *table {
	units := make([]string, len(columns))
	for i := range units {
		units[i] = "s"
	}
	return &table{title: title, columns: columns, units: units}
}

// setUnits overrides the per-column units recorded in the CSV/JSON sinks
// (one per column; the experiment tables that report throughput, latency
// quantiles, or allocation counts use it so machine-readable output is
// self-describing).
func (tb *table) setUnits(units ...string) *table {
	copy(tb.units, units)
	return tb
}

func (tb *table) add(label string, vals ...float64) {
	tb.rows = append(tb.rows, tableRow{label: label, vals: vals})
}

// write renders the table. NaN cells print as "N/A" (the paper uses N/A
// for unsupported operations, e.g. Boost-R batch updates). Tables are
// also mirrored to the CSV and JSON sinks when configured.
func (tb *table) write(w io.Writer) {
	tb.emitCSV()
	tb.emitJSON()
	fmt.Fprintf(w, "\n== %s ==\n", tb.title)
	fmt.Fprintf(w, "%-10s", "index")
	for _, c := range tb.columns {
		fmt.Fprintf(w, " %12s", c)
	}
	fmt.Fprintln(w)
	best := make([]float64, len(tb.columns))
	for i := range best {
		best[i] = -1
		for _, r := range tb.rows {
			if i < len(r.vals) && !isNaN(r.vals[i]) && (best[i] < 0 || r.vals[i] < best[i]) {
				best[i] = r.vals[i]
			}
		}
	}
	for _, r := range tb.rows {
		fmt.Fprintf(w, "%-10s", r.label)
		for i, v := range r.vals {
			switch {
			case isNaN(v):
				fmt.Fprintf(w, " %12s", "N/A")
			case v == best[i]:
				fmt.Fprintf(w, " %11.4f*", v)
			default:
				fmt.Fprintf(w, " %12.4f", v)
			}
		}
		fmt.Fprintln(w)
	}
}

func isNaN(v float64) bool { return v != v }

var nan = func() float64 {
	var z float64
	return z / z
}()

// querySet bundles the standard query suite for a (dist, dims) pair.
type querySet struct {
	ind, ood []geom.Point
	boxes    []geom.Box
}

func makeQueries(cfg Config, d workload.Dist, dims int) querySet {
	side := d.Side(dims)
	return querySet{
		ind: workload.InDQueries(d, cfg.KNNQ, dims, side, cfg.Seed),
		ood: workload.OODQueries(d, cfg.KNNQ, dims, side, cfg.Seed),
		// ~0.1% of the universe volume: the paper's "relatively large
		// range query" column scaled to n.
		boxes: workload.RangeQueries(cfg.RangeQ, dims, side, 1e-3, cfg.Seed),
	}
}

// queryPhases times the four standard query columns on a built index:
// 10-NN InD, 10-NN OOD, range-count, range-list. Queries run in parallel
// over the query set, matching §5.1 ("Different queries run in parallel").
func queryPhases(idx core.Index, qs querySet, reps int) (ind, ood, cnt, lst float64) {
	ind = timeOp(reps, nil, func() { core.ParallelKNN(idx, qs.ind, 10) })
	ood = timeOp(reps, nil, func() { core.ParallelKNN(idx, qs.ood, 10) })
	cnt = timeOp(reps, nil, func() { core.ParallelRangeCount(idx, qs.boxes) })
	lst = timeOp(reps, nil, func() { core.ParallelRangeList(idx, qs.boxes) })
	return
}

// mkIndex builds a fresh index by table name for the given dims.
func mkIndex(name string, dims int, side int64) core.Index {
	return psi.ByName(name, dims, geom.UniverseBox(dims, side))
}

// incrementalInsert builds the index from empty with n/b batches of size b
// and returns total seconds; if qs != nil it times the query suite when
// half the batches are in (the paper's "query after 50% of batches").
func incrementalInsert(idx core.Index, pts []geom.Point, batch int, qs *querySet, reps int) (total float64, q [4]float64) {
	n := len(pts)
	half := n / 2
	queried := qs == nil
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		total += timeOnce(func() { idx.BatchInsert(pts[lo:hi]) })
		if !queried && hi >= half {
			q[0], q[1], q[2], q[3] = queryPhases(idx, *qs, reps)
			queried = true
		}
	}
	return
}

// incrementalDelete starts from a full tree and deletes in batches.
func incrementalDelete(idx core.Index, pts []geom.Point, batch int, qs *querySet, reps int) (total float64, q [4]float64) {
	n := len(pts)
	half := n / 2
	queried := qs == nil
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		total += timeOnce(func() { idx.BatchDelete(pts[lo:hi]) })
		if !queried && hi >= half {
			q[0], q[1], q[2], q[3] = queryPhases(idx, *qs, reps)
			queried = true
		}
	}
	return
}

// geoMean returns the geometric mean of positive values.
func geoMean(vals []float64) float64 {
	prod := 1.0
	n := 0
	for _, v := range vals {
		if v > 0 && !isNaN(v) {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return nan
	}
	return math.Pow(prod, 1/float64(n))
}

// setThreads applies cfg.Threads and returns a restore func.
func setThreads(p int) func() {
	if p <= 0 {
		return func() {}
	}
	old := runtime.GOMAXPROCS(p)
	return func() { runtime.GOMAXPROCS(old) }
}

// memDelta is the allocation cost of a measured region: total heap
// allocations and bytes, from runtime.MemStats deltas. Counters are
// process-wide, so concurrent experiment phases attribute helper-
// goroutine allocations to the region too — which is exactly what a
// GC-pressure measurement wants.
type memDelta struct {
	allocs uint64
	bytes  uint64
}

// measureMem runs f and returns its allocation cost alongside anything f
// computes itself. A GC cycle runs first so the deltas are not polluted
// by garbage from previous phases.
func measureMem(f func()) memDelta {
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return memDelta{allocs: m1.Mallocs - m0.Mallocs, bytes: m1.TotalAlloc - m0.TotalAlloc}
}

// allocsPerOp measures the steady-state allocation and time cost of f:
// one untimed warm-up call (pools fill, buffers grow to their high-water
// mark), then iters measured calls on a single P so no concurrent
// bookkeeping pollutes the counters. Returns allocations/op, bytes/op
// and ns/op.
func allocsPerOp(iters int, f func()) (allocs, bytes, ns float64) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f()
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(iters)
	return float64(m1.Mallocs-m0.Mallocs) / n,
		float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		float64(elapsed.Nanoseconds()) / n
}
