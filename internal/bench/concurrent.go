package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/store"
	"repro/internal/workload"
)

// Concurrent benchmarks the serving scenario no paper figure covers: many
// goroutines mutating and querying one index at once through the
// batch-coalescing psi.Store front-end. Two tables:
//
//	(a) mixed-workload throughput per index — W writer goroutines stream
//	    single-point inserts/deletes while R readers run 10-NN and range
//	    counts, all against one Store;
//	(b) the coalescing ablation — the same workload on SPaC-H while
//	    sweeping the flush threshold from 1 (every mutation is its own
//	    batch, i.e. plain lock-per-op) upward, showing how coalescing
//	    amortizes the paper's parallel batch-update machinery across
//	    callers.
//
// Columns are throughput in million ops/second (higher is better; the
// table's '*' minimum markers are not meaningful here).
func Concurrent(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	cache := newCache()
	const writers, readers = 4, 4
	pts := cache.points(workload.Uniform, cfg.N, 2, cfg.Seed)
	side := workload.Uniform.Side(2)
	nMut := cfg.N / 4
	if nMut < 1 {
		nMut = 1
	}
	fresh := workload.GenUniform(nMut, 2, side, cfg.Seed+777)
	// Readers cycle these sets, so neither may be empty (KNNQ defaults to
	// N/100, which is 0 for tiny N).
	queries := workload.GenUniform(max(cfg.KNNQ, 1), 2, side, cfg.Seed+778)
	boxes := workload.RangeQueries(max(cfg.RangeQ, 1), 2, side, 1e-3, cfg.Seed+779)

	fmt.Fprintf(cfg.Out, "Concurrent — Store mixed workload, n=%d, %d writers + %d readers, %d ins + %d del\n",
		cfg.N, writers, readers, nMut, nMut)
	fmt.Fprintf(cfg.Out, "(columns are Mops/s; higher is better; '*' marks are not meaningful here)\n")

	tb := newTable(fmt.Sprintf("(a) throughput by index (MaxBatch=%d)", store.DefaultMaxBatch),
		"mut-Mops/s", "qry-Mops/s", "allocs/mut", "KB/mut").
		setUnits("Mops/s", "Mops/s", "allocs/op", "KB/op")
	for _, name := range parallelIndexes {
		idx := mkIndex(name, 2, side)
		idx.Build(pts)
		var mut, qry float64
		// Allocation pressure of the whole mixed workload (readers
		// included — they share the process), amortized per mutation.
		md := measureMem(func() {
			mut, qry = runStoreWorkload(idx, pts[:nMut], fresh, queries, boxes,
				writers, readers, store.Options{})
		})
		totalMut := float64(2 * nMut)
		tb.add(name, mut, qry, float64(md.allocs)/totalMut, float64(md.bytes)/totalMut/1024)
	}
	tb.write(cfg.Out)

	tb = newTable("(b) coalescing ablation (SPaC-H): flush threshold sweep",
		"mut-Mops/s", "qry-Mops/s").
		setUnits("Mops/s", "Mops/s")
	for _, maxBatch := range []int{1, 16, 256, 4096, 65536} {
		idx := mkIndex("SPaC-H", 2, side)
		idx.Build(pts)
		mut, qry := runStoreWorkload(idx, pts[:nMut], fresh, queries, boxes,
			writers, readers, store.Options{MaxBatch: maxBatch})
		tb.add(fmt.Sprintf("batch=%d", maxBatch), mut, qry)
	}
	tb.write(cfg.Out)
}

// runStoreWorkload wraps idx in a Store and runs the mixed workload: each
// writer streams an interleaved shard of single-point inserts (from fresh)
// and deletes (from doomed); readers alternate 10-NN and range-count
// queries until the writers finish. Returns mutation and query throughput
// in million ops/second over the shared wall-clock window.
func runStoreWorkload(idx core.Index, doomed, fresh []geom.Point,
	queries []geom.Point, boxes []geom.Box,
	writers, readers int, opts store.Options) (mutMops, qryMops float64) {
	s := store.New(idx, opts)
	var wgW, wgQ sync.WaitGroup
	var queriesDone atomic.Int64
	stop := make(chan struct{})
	start := time.Now()
	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			for i := w; i < len(fresh); i += writers {
				s.Insert(fresh[i])
				if i < len(doomed) {
					s.Delete(doomed[i])
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wgQ.Add(1)
		go func(r int) {
			defer wgQ.Done()
			for i := r; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					s.KNN(queries[i%len(queries)], 10, nil)
				} else {
					s.RangeCount(boxes[i%len(boxes)])
				}
				queriesDone.Add(1)
			}
		}(r)
	}
	wgW.Wait()
	s.Close() // final flush: all mutations applied
	elapsed := time.Since(start).Seconds()
	close(stop)
	wgQ.Wait()
	totalMut := float64(len(fresh) + len(doomed))
	return totalMut / elapsed / 1e6, float64(queriesDone.Load()) / elapsed / 1e6
}
