package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"time"
)

// JSON capture: psibench -json writes one machine-readable results
// document per run, so the repo can accumulate a BENCH_*.json perf
// trajectory that future changes are compared against (the allocs/op and
// kops/s columns in particular — see the README's Performance section).
// Every table cell becomes one result record carrying its unit; the
// document header pins the configuration so two runs are only compared
// like for like.

// JSONResult is one measured cell of an experiment table.
type JSONResult struct {
	Table  string  `json:"table"`
	Index  string  `json:"index"`
	Column string  `json:"column"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
}

// JSONConfig pins the knobs a run was measured under.
type JSONConfig struct {
	N       int   `json:"n"`
	KNNQ    int   `json:"knnq"`
	RangeQ  int   `json:"rangeq"`
	Reps    int   `json:"reps"`
	Seed    int64 `json:"seed"`
	Threads int   `json:"threads"`
}

// JSONDoc is the full psibench -json document.
type JSONDoc struct {
	Schema      string       `json:"schema"` // "psibench/v1"
	CreatedUnix int64        `json:"created_unix"`
	Experiment  string       `json:"experiment"`
	GoVersion   string       `json:"go_version"`
	Cores       int          `json:"cores"`
	Config      JSONConfig   `json:"config"`
	Results     []JSONResult `json:"results"`
}

var jsonSink struct {
	mu  sync.Mutex
	doc *JSONDoc
}

// StartJSON begins capturing all subsequently written tables into a
// results document for the given experiment id. Finish with WriteJSON.
func StartJSON(experiment string, cfg Config) {
	cfg = cfg.withDefaults()
	jsonSink.mu.Lock()
	defer jsonSink.mu.Unlock()
	jsonSink.doc = &JSONDoc{
		Schema:      "psibench/v1",
		CreatedUnix: time.Now().Unix(),
		Experiment:  experiment,
		GoVersion:   runtime.Version(),
		Cores:       runtime.NumCPU(),
		Config: JSONConfig{
			N: cfg.N, KNNQ: cfg.KNNQ, RangeQ: cfg.RangeQ,
			Reps: cfg.Reps, Seed: cfg.Seed, Threads: cfg.Threads,
		},
		Results: []JSONResult{},
	}
}

// WriteJSON renders the captured document to w and stops capturing. It
// is an error-free no-op when StartJSON was never called.
func WriteJSON(w io.Writer) error {
	jsonSink.mu.Lock()
	doc := jsonSink.doc
	jsonSink.doc = nil
	jsonSink.mu.Unlock()
	if doc == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// emitJSON mirrors one rendered table into the JSON sink, if capturing.
func (tb *table) emitJSON() {
	jsonSink.mu.Lock()
	defer jsonSink.mu.Unlock()
	if jsonSink.doc == nil {
		return
	}
	for _, r := range tb.rows {
		for i, v := range r.vals {
			if isNaN(v) || i >= len(tb.columns) {
				continue
			}
			jsonSink.doc.Results = append(jsonSink.doc.Results, JSONResult{
				Table: tb.title, Index: r.label, Column: tb.columns[i],
				Value: v, Unit: tb.units[i],
			})
		}
	}
}
