package bench

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/workload"
)

// Obs exercises the cross-layer observability subsystem end to end and
// prints what it sees: a Sharded stack wrapped in a Collection runs a
// mover workload with a live obs.Registry attached, then the experiment
// reads the registry back — flush-pipeline spans aggregated per layer
// (where does a flush window's wall time go: netting, standby replay,
// index apply, publish, drain?) and the per-shard load spread (how evenly
// did the Hilbert-range partitioning distribute batch ops, query visits,
// and KNN expansions?). The per-shard table is read through the
// Prometheus text exposition itself (WritePrometheus → ParseText), so the
// experiment doubles as an end-to-end check of the scrape path psiload
// -scrape uses.
//
// The interesting columns: apply-us dominating net-us confirms the index
// is the cost center (netting is cheap bookkeeping); publish-us and
// drain-us near zero confirm epoch publication is not a serving hazard;
// cancel-% is the coalescing win of the window (full-move windows net
// nothing, mixed mover traffic nets plenty); and a tight min/max spread
// in the shard table is the load-balance claim of the sharding layer,
// measured rather than asserted.
func Obs(cfg Config) {
	cfg = cfg.withDefaults()
	defer setThreads(cfg.Threads)()
	n := cfg.N
	side := workload.Uniform.Side(2)
	universe := geom.UniverseBox(2, side)
	ptsA := workload.GenUniform(n, 2, side, cfg.Seed)
	ptsB := workload.GenUniform(n, 2, side, cfg.Seed+777)
	queries := workload.GenUniform(max(cfg.KNNQ, 1), 2, side, cfg.Seed+778)
	windows := 2 * cfg.Reps

	reg := obs.New()
	mk := func(dims int, u geom.Box) core.Index { return mkIndex("SPaC-H", dims, side) }
	sh := shard.New(shard.Options{
		Dims:     2,
		Universe: universe,
		Shards:   0, // one per core
		Strategy: shard.HilbertRange,
		New:      mk,
		Obs:      reg,
	})
	c := collection.New[int](sh, collection.Options{
		MaxBatch: 2*n + 1, // holds a full window plus its re-SETs; only explicit Flush commits
		Snapshot: func() core.Index { return sh.NewReplica() },
		Obs:      reg,
	})
	defer c.Close()

	fmt.Fprintf(cfg.Out, "Obs — observability readout under a mover workload, n=%d objects, %d full-move windows, %d queries/window\n",
		n, windows, len(queries))
	fmt.Fprintf(cfg.Out, "(Collection[int] over Sharded(SPaC-H), snapshot reads, live obs.Registry; '*' marks are not meaningful here)\n")

	// Mover workload: alternate every object between its A and B position
	// (a maximal flush window), with a query burst between windows so the
	// per-shard query counters see traffic too.
	for id, p := range ptsA {
		c.Set(id, p)
	}
	c.Flush()
	var dst []collection.Entry[int]
	for w := 0; w < windows; w++ {
		pts := ptsB
		if w%2 == 1 {
			pts = ptsA
		}
		for id, p := range pts {
			c.Set(id, p)
		}
		// Half-moved re-SETs: the second half of the window overwrites the
		// first half's pending op for even IDs, so netting has something
		// to cancel and the cancel-% column is non-trivial.
		for id := 0; id < len(pts); id += 2 {
			c.Set(id, pts[id])
		}
		c.Flush()
		for _, q := range queries {
			dst = c.NearbyIDsAppend(q, 10, dst[:0])
		}
	}

	// Flush-pipeline spans, aggregated per layer from the registry's
	// trace ring (the same data /debug/flushtrace serves).
	spans := reg.FlushTrace().Snapshot()
	byLayer := map[string][]obs.FlushSpan{}
	var layers []string
	for _, sp := range spans {
		if _, ok := byLayer[sp.Layer]; !ok {
			layers = append(layers, sp.Layer)
		}
		byLayer[sp.Layer] = append(byLayer[sp.Layer], sp)
	}
	sort.Strings(layers)
	tb := newTable("obs: flush-pipeline stage timings by layer (means over retained spans)",
		"net-us", "replay-us", "apply-us", "publish-us", "drain-us", "raw/win", "net/win", "cancel-%").
		setUnits("us", "us", "us", "us", "us", "ops", "ops", "%")
	for _, layer := range layers {
		sp := byLayer[layer]
		var stages [obs.NumStages]float64
		var raw, netted, cancelled float64
		for _, s := range sp {
			for i := 0; i < obs.NumStages; i++ {
				stages[i] += float64(s.Stages[i])
			}
			raw += float64(s.RawOps)
			netted += float64(s.NettedOps)
			cancelled += float64(s.Cancelled)
		}
		k := float64(len(sp))
		cancelPct := 0.0
		if raw > 0 {
			cancelPct = 100 * cancelled / raw
		}
		tb.add(layer,
			stages[obs.StageNet]/k/1e3,
			stages[obs.StageReplay]/k/1e3,
			stages[obs.StageApply]/k/1e3,
			stages[obs.StagePublish]/k/1e3,
			stages[obs.StageDrain]/k/1e3,
			raw/k, netted/k, cancelPct)
	}
	tb.write(cfg.Out)

	// Per-shard load spread, read back through the exposition format —
	// the same bytes a Prometheus scrape of psid /metrics would see.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		fmt.Fprintf(cfg.Out, "obs: exposition failed: %v\n", err)
		return
	}
	samples, err := obs.ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		fmt.Fprintf(cfg.Out, "obs: parsing exposition: %v\n", err)
		return
	}
	lt := newTable("obs: per-shard load spread (via /metrics exposition)",
		"shards", "min", "mean", "max").
		setUnits("count", "ops", "ops", "ops")
	for _, m := range []struct{ label, name string }{
		{"ops", "psi_shard_ops_total"},
		{"queries", "psi_shard_queries_total"},
		{"knn-exp", "psi_shard_knn_expansions_total"},
	} {
		var vals []float64
		for key, v := range samples {
			if strings.HasPrefix(key, m.name+`{shard="`) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			continue
		}
		lo, hi, sum := vals[0], vals[0], 0.0
		for _, v := range vals {
			lo, hi, sum = min(lo, v), max(hi, v), sum+v
		}
		lt.add(m.label, float64(len(vals)), lo, sum/float64(len(vals)), hi)
	}
	lt.write(cfg.Out)
	fmt.Fprintf(cfg.Out, "\nobs: %d spans retained, %d exposition samples, %.0f flush windows (collection layer)\n",
		len(spans), len(samples), samples[`psi_flush_total{layer="collection"}`])
}
