package bench

import (
	"encoding/csv"
	"io"
	"strconv"
	"sync"
)

// CSV capture: the paper's artifact saves every measurement to logs for
// its plotting scripts (§F.7); psibench -csv does the same in one
// machine-readable file. Rows are (experiment table, index, column,
// value, unit) — unit is "s" for timing cells; throughput, latency and
// allocation tables carry their own units (Mops/s, us, allocs/op, B/op).
// N/A cells are skipped.

var csvSink struct {
	mu sync.Mutex
	w  *csv.Writer
}

// SetCSV directs all subsequently written tables to also emit CSV rows.
// Pass nil to stop. The header row is written immediately.
func SetCSV(w io.Writer) error {
	csvSink.mu.Lock()
	defer csvSink.mu.Unlock()
	if w == nil {
		if csvSink.w != nil {
			csvSink.w.Flush()
		}
		csvSink.w = nil
		return nil
	}
	csvSink.w = csv.NewWriter(w)
	return csvSink.w.Write([]string{"table", "index", "column", "value", "unit"})
}

// FlushCSV flushes pending CSV output and reports any write error the
// buffered writer swallowed along the way (call and check before process
// exit — a full disk or closed pipe surfaces here, not at Write time).
func FlushCSV() error {
	csvSink.mu.Lock()
	defer csvSink.mu.Unlock()
	if csvSink.w == nil {
		return nil
	}
	csvSink.w.Flush()
	return csvSink.w.Error()
}

// emitCSV mirrors one rendered table into the CSV sink, if set.
func (tb *table) emitCSV() {
	csvSink.mu.Lock()
	defer csvSink.mu.Unlock()
	if csvSink.w == nil {
		return
	}
	for _, r := range tb.rows {
		for i, v := range r.vals {
			if isNaN(v) || i >= len(tb.columns) {
				continue
			}
			_ = csvSink.w.Write([]string{
				tb.title, r.label, tb.columns[i],
				strconv.FormatFloat(v, 'g', 6, 64),
				tb.units[i],
			})
		}
	}
}
