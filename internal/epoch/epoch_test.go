package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPublishAndCounters(t *testing.T) {
	var m Manager[int]
	a := NewVersion(1)
	b := NewVersion(2)
	m.Init(a)
	if m.Epoch() != 0 || m.RetireLag() != 0 {
		t.Fatalf("fresh manager: epoch %d lag %d, want 0 0", m.Epoch(), m.RetireLag())
	}
	if got := m.Pin(); got != a || got.Data != 1 {
		t.Fatalf("Pin returned %+v, want the initial version", got)
	} else {
		m.Unpin(got)
	}

	prev := m.Publish(b)
	if prev != a {
		t.Fatalf("Publish displaced %+v, want the initial version", prev)
	}
	if m.Epoch() != 1 || b.Epoch() != 1 {
		t.Fatalf("after publish: manager epoch %d, version epoch %d, want 1 1", m.Epoch(), b.Epoch())
	}
	if m.RetireLag() != 1 {
		t.Fatalf("before drain: lag %d, want 1", m.RetireLag())
	}
	m.WaitDrained(prev)
	if m.RetireLag() != 0 {
		t.Fatalf("after drain: lag %d, want 0", m.RetireLag())
	}
	if got := m.Pin(); got != b {
		t.Fatalf("Pin returned %+v after publish, want the new version", got)
	} else {
		m.Unpin(got)
	}
}

func TestWaitDrainedBlocksOnPinnedReader(t *testing.T) {
	var m Manager[int]
	a, b := NewVersion(1), NewVersion(2)
	m.Init(a)
	pinned := m.Pin()
	prev := m.Publish(b)

	drained := make(chan struct{})
	go func() {
		m.WaitDrained(prev)
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("WaitDrained returned while a reader still pinned the version")
	default:
	}
	m.Unpin(pinned)
	<-drained
}

// TestLeftRightDiscipline is the classic left-right torn-read check, run
// under -race in CI: the writer mutates only the drained standby and
// writes a matched pair of values; readers pin and must always observe
// the pair intact. A missing drain or a broken Pin recheck shows up both
// as a pair mismatch and as a data race.
func TestLeftRightDiscipline(t *testing.T) {
	type pair struct{ x, y uint64 }
	var m Manager[*pair]
	standby := NewVersion(&pair{})
	m.Init(NewVersion(&pair{}))

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				v := m.Pin()
				if x, y := v.Data.x, v.Data.y; x != y {
					stop.Store(true)
					t.Errorf("torn read: x=%d y=%d", x, y)
				}
				m.Unpin(v)
			}
		}()
	}
	for i := uint64(1); i <= 2000 && !stop.Load(); i++ {
		standby.Data.x = i
		standby.Data.y = i
		prev := m.Publish(standby)
		m.WaitDrained(prev)
		standby = prev
	}
	stop.Store(true)
	wg.Wait()
	if lag := m.RetireLag(); lag != 0 {
		t.Fatalf("quiescent lag %d, want 0", lag)
	}
}
