// Package epoch implements the left-right version manager behind the
// library's snapshot reads: a writer publishes immutable versions of some
// state through an atomic pointer, readers pin the current version with a
// per-version reference count, and the writer reclaims a retired version
// for reuse only after every reader that could hold it has left. The
// protocol gives readers wait-freedom against writers — a query never
// blocks behind a flush, no matter how large the commit window — while the
// writer pays one bounded wait (for stragglers still inside the retired
// version) per publish.
//
// The intended shape is double-buffering: a layer keeps exactly two
// Versions and ping-pongs between them. Each flush catches the standby up
// with the previously committed window, applies the new window, publishes
// the standby, waits for the old current to drain, and keeps it as the
// next standby. Both Version structs live for the lifetime of the layer,
// so steady-state publishing allocates nothing — the property the
// Store/Collection zero-alloc guards pin. Parallel Batch-Dynamic kd-Trees
// (Yesantharao et al.) is the license for this design: batch diff-apply
// on the paper's structures is cheap enough that applying every window
// twice costs less than stalling all readers once.
//
// Memory model: Publish is an atomic pointer store and Pin an atomic load,
// so everything the writer did to a version's data before Publish is
// visible to a reader that pins it. After WaitDrained(v) returns, no
// reader holds v and the writer may mutate v.Data freely until the next
// Publish(v).
package epoch

import (
	"runtime"
	"sync/atomic"
)

// Version is one publishable state of T plus its reader reference count.
// The writer owns Data exclusively from WaitDrained until the next
// Publish; readers own it shared from Pin to Unpin.
type Version[T any] struct {
	Data  T
	epoch uint64
	refs  atomic.Int64
}

// NewVersion wraps data in an unpublished Version.
func NewVersion[T any](data T) *Version[T] { return &Version[T]{Data: data} }

// Epoch returns the epoch number at which this version was last
// published (0 for the initial version).
func (v *Version[T]) Epoch() uint64 { return v.epoch }

// Manager publishes Versions and tracks the epoch counters. The zero
// value is not usable: call Init with the initial version first. Pin,
// Unpin, Epoch, RetireLag and Current are safe for any number of
// goroutines; Publish and WaitDrained must be serialized by the caller
// (layers hold their flush mutex across both).
type Manager[T any] struct {
	cur       atomic.Pointer[Version[T]]
	published atomic.Uint64
	drained   atomic.Uint64
}

// Init installs the initial version at epoch 0. It must be called exactly
// once, before any other method.
func (m *Manager[T]) Init(v *Version[T]) { m.cur.Store(v) }

// Pin returns the current version with its reference count held. The
// caller must Unpin the same version when done. The recheck loop closes
// the race with a concurrent Publish: a reader that loads v but
// increments its count after the writer already swapped v out simply
// retries on the new current, so WaitDrained never misses a reader.
func (m *Manager[T]) Pin() *Version[T] {
	for {
		v := m.cur.Load()
		v.refs.Add(1)
		if m.cur.Load() == v {
			return v
		}
		v.refs.Add(-1)
	}
}

// Unpin releases a version returned by Pin.
func (m *Manager[T]) Unpin(v *Version[T]) { v.refs.Add(-1) }

// Current returns the current version without pinning it. Callers may
// only touch its Data if they otherwise exclude Publish (the layers'
// flush mutexes do); it exists for stats and tests.
func (m *Manager[T]) Current() *Version[T] { return m.cur.Load() }

// Publish makes next the current version under a new epoch number and
// returns the displaced version, which the caller retires with
// WaitDrained before reusing its Data.
func (m *Manager[T]) Publish(next *Version[T]) *Version[T] {
	next.epoch = m.published.Add(1)
	prev := m.cur.Load()
	m.cur.Store(next)
	return prev
}

// WaitDrained blocks until no reader holds v, then records the retirement.
// New readers cannot arrive (v is no longer current), so the wait is
// bounded by the in-flight queries at the moment of Publish. The spin
// yields the processor each round: readers hold pins only across a single
// index query, so the common case drains in a handful of iterations.
func (m *Manager[T]) WaitDrained(v *Version[T]) {
	for v.refs.Load() != 0 {
		runtime.Gosched()
	}
	m.drained.Add(1)
}

// Epoch returns the number of versions published so far — the epoch
// number of the current version (0 before the first Publish).
func (m *Manager[T]) Epoch() uint64 { return m.published.Load() }

// RetireLag returns the number of published epochs whose displaced
// version has not yet drained: 0 when quiescent, 1 while a flush is
// waiting out readers of the version it just replaced.
func (m *Manager[T]) RetireLag() uint64 { return m.published.Load() - m.drained.Load() }
