package spactree

import (
	"fmt"

	"repro/internal/geom"
)

// Validate checks every invariant of the SPaC/CPAM tree:
//
//  1. BST order on (code, point): left subtree <= pivot <= right subtree;
//     inside leaves the order is relaxed iff the sorted flag is false
//     (and in TotalOrder mode the flag must always be true);
//  2. an honest sorted flag (flagged leaves really are sorted);
//  3. BB[α] weight balance at every interior node;
//  4. leaf wrapping: leaves hold at most LeafWrap entries, interiors hold
//     more than LeafWrap points;
//  5. exact sizes and tight bounding boxes.
func (t *Tree) Validate() error {
	_, _, _, err := t.validate(t.root)
	return err
}

// validate returns (size, minEntry, maxEntry, err).
func (t *Tree) validate(nd *node) (int, Entry, Entry, error) {
	var zero Entry
	if nd == nil {
		return 0, zero, zero, nil
	}
	dims := t.opts.Dims
	if nd.isLeaf() {
		if len(nd.ents) == 0 {
			return 0, zero, zero, fmt.Errorf("empty leaf present")
		}
		if nd.size != len(nd.ents) {
			return 0, zero, zero, fmt.Errorf("leaf size %d with %d entries", nd.size, len(nd.ents))
		}
		if len(nd.ents) > t.opts.LeafWrap {
			return 0, zero, zero, fmt.Errorf("leaf exceeds wrap: %d > %d", len(nd.ents), t.opts.LeafWrap)
		}
		if t.mode == TotalOrder && !nd.sorted {
			return 0, zero, zero, fmt.Errorf("CPAM leaf marked unsorted")
		}
		bbox := geom.EmptyBox(dims)
		mn, mx := nd.ents[0], nd.ents[0]
		for i, e := range nd.ents {
			if e.Code != t.encode(e.P).Code {
				return 0, zero, zero, fmt.Errorf("entry code stale for %v", e.P)
			}
			if nd.sorted && i > 0 && cmpEntry(nd.ents[i-1], e) > 0 {
				return 0, zero, zero, fmt.Errorf("leaf flagged sorted but is not")
			}
			if cmpEntry(e, mn) < 0 {
				mn = e
			}
			if cmpEntry(e, mx) > 0 {
				mx = e
			}
			bbox = bbox.Extend(e.P, dims)
		}
		if bbox != nd.bbox {
			return 0, zero, zero, fmt.Errorf("leaf bbox stale: %v vs %v", nd.bbox, bbox)
		}
		return nd.size, mn, mx, nil
	}
	ls, lmn, lmx, err := t.validate(nd.left)
	if err != nil {
		return 0, zero, zero, err
	}
	rs, rmn, rmx, err := t.validate(nd.right)
	if err != nil {
		return 0, zero, zero, err
	}
	if ls > 0 && cmpEntry(lmx, nd.pivot) > 0 {
		return 0, zero, zero, fmt.Errorf("left max %v exceeds pivot %v", lmx, nd.pivot)
	}
	if rs > 0 && cmpEntry(rmn, nd.pivot) < 0 {
		return 0, zero, zero, fmt.Errorf("right min %v below pivot %v", rmn, nd.pivot)
	}
	if nd.size != ls+rs+1 {
		return 0, zero, zero, fmt.Errorf("interior size %d, children+pivot %d", nd.size, ls+rs+1)
	}
	if nd.size <= t.opts.LeafWrap {
		return 0, zero, zero, fmt.Errorf("interior of size %d should be a leaf (wrap %d)", nd.size, t.opts.LeafWrap)
	}
	if !t.likeWeights(weight(nd.left), weight(nd.right)) {
		return 0, zero, zero, fmt.Errorf("weight balance violated: |L|=%d |R|=%d alpha=%.2f",
			sizeOf(nd.left), sizeOf(nd.right), t.opts.Alpha)
	}
	if got := t.interiorBBox(nd.left, nd.pivot, nd.right); got != nd.bbox {
		return 0, zero, zero, fmt.Errorf("interior bbox stale")
	}
	mn, mx := nd.pivot, nd.pivot
	if ls > 0 && cmpEntry(lmn, mn) < 0 {
		mn = lmn
	}
	if rs > 0 && cmpEntry(rmx, mx) > 0 {
		mx = rmx
	}
	return nd.size, mn, mx, nil
}
