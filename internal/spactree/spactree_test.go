package spactree

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sfc"
	"repro/internal/workload"
)

const testSide = int64(1 << 20)

func universe() geom.Box { return geom.UniverseBox(2, testSide) }

// allVariants returns the four paper configurations.
func allVariants() []*Tree {
	return []*Tree{
		NewSPaC(sfc.Hilbert, 2, universe()),
		NewSPaC(sfc.Morton, 2, universe()),
		NewCPAM(sfc.Hilbert, 2, universe()),
		NewCPAM(sfc.Morton, 2, universe()),
	}
}

func validateOrFail(t *testing.T, tr *Tree) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("%s: %v", tr.Name(), err)
	}
}

func TestNames(t *testing.T) {
	want := []string{"SPaC-H", "SPaC-Z", "CPAM-H", "CPAM-Z"}
	for i, tr := range allVariants() {
		if tr.Name() != want[i] {
			t.Fatalf("name %q, want %q", tr.Name(), want[i])
		}
	}
}

func TestEmptyTree(t *testing.T) {
	for _, tr := range allVariants() {
		if tr.Size() != 0 || len(tr.KNN(geom.Pt2(0, 0), 3, nil)) != 0 || tr.RangeCount(universe()) != 0 {
			t.Fatalf("%s: empty tree misbehaves", tr.Name())
		}
		tr.BatchDelete([]geom.Point{geom.Pt2(1, 1)})
		validateOrFail(t, tr)
	}
}

func TestPrecisionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic: 3D universe exceeding 21-bit precision")
		}
	}()
	NewSPaC(sfc.Hilbert, 3, geom.UniverseBox(3, 1<<22))
}

func TestBuildMatchesBruteForce(t *testing.T) {
	for _, tr := range allVariants() {
		for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
			for _, n := range []int{0, 1, 40, 41, 1000, 20000} {
				pts := workload.Generate(dist, n, 2, testSide, 7)
				tr.Build(pts)
				validateOrFail(t, tr)
				ref := core.NewBruteForce(2)
				ref.Build(pts)
				queries := workload.GenUniform(20, 2, testSide, 9)
				boxes := workload.RangeQueries(10, 2, testSide, 0.01, 11)
				if err := core.VerifyQueries(tr, ref, queries, []int{1, 10}, boxes); err != nil {
					t.Fatalf("%s %s n=%d: %v", tr.Name(), dist, n, err)
				}
			}
		}
	}
}

func TestBuild3D(t *testing.T) {
	side := workload.DefaultSide3D
	for _, curve := range []sfc.Curve{sfc.Morton, sfc.Hilbert} {
		tr := NewSPaC(curve, 3, geom.UniverseBox(3, side))
		pts := workload.GenVarden(8000, 3, side, 3)
		tr.Build(pts)
		validateOrFail(t, tr)
		ref := core.NewBruteForce(3)
		ref.Build(pts)
		if err := core.VerifyQueries(tr, ref,
			workload.GenUniform(15, 3, side, 5), []int{1, 10},
			workload.RangeQueries(8, 3, side, 0.05, 6)); err != nil {
			t.Fatalf("%v: %v", curve, err)
		}
	}
}

func TestHybridAndPlainBuildSameContents(t *testing.T) {
	// SPaC (HybridSort) and CPAM (plain) construction must produce trees
	// with identical contents and identical perfectly-balanced shape.
	pts := workload.GenVarden(15000, 2, testSide, 13)
	a := NewSPaC(sfc.Hilbert, 2, universe())
	b := NewCPAM(sfc.Hilbert, 2, universe())
	a.Build(pts)
	b.Build(pts)
	ea, _ := collectOrdered(a.root, nil, true)
	eb, _ := collectOrdered(b.root, nil, true)
	if len(ea) != len(eb) {
		t.Fatalf("sizes differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if cmpEntry(ea[i], eb[i]) != 0 {
			t.Fatalf("entry %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
	if a.Height() != b.Height() {
		t.Fatalf("heights differ: %d vs %d", a.Height(), b.Height())
	}
}

func TestInsertMatchesBruteForce(t *testing.T) {
	for _, tr := range allVariants() {
		pts := workload.GenVarden(20000, 2, testSide, 17)
		ref := core.NewBruteForce(2)
		tr.Build(pts[:5000])
		ref.Build(pts[:5000])
		for lo := 5000; lo < 20000; lo += 3000 {
			hi := lo + 3000
			tr.BatchInsert(pts[lo:hi])
			ref.BatchInsert(pts[lo:hi])
			validateOrFail(t, tr)
		}
		if err := core.VerifyQueries(tr, ref,
			workload.GenUniform(20, 2, testSide, 19), []int{1, 10},
			workload.RangeQueries(10, 2, testSide, 0.02, 23)); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
	}
}

func TestDeleteMatchesBruteForce(t *testing.T) {
	for _, tr := range allVariants() {
		pts := workload.GenUniform(20000, 2, testSide, 29)
		ref := core.NewBruteForce(2)
		tr.Build(pts)
		ref.Build(pts)
		rng := rand.New(rand.NewSource(31))
		for round := 0; round < 3; round++ {
			cur := ref.Points()
			batch := make([]geom.Point, 4000)
			for i := range batch {
				batch[i] = cur[rng.Intn(len(cur))]
			}
			tr.BatchDelete(batch)
			ref.BatchDelete(batch)
			validateOrFail(t, tr)
			if tr.Size() != ref.Size() {
				t.Fatalf("%s round %d: size %d want %d", tr.Name(), round, tr.Size(), ref.Size())
			}
		}
		if err := core.VerifyQueries(tr, ref,
			workload.GenUniform(20, 2, testSide, 37), []int{1, 10},
			workload.RangeQueries(10, 2, testSide, 0.02, 41)); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
	}
}

func TestSkewedInsertKeepsBalance(t *testing.T) {
	// Sweepline batches all land at the right edge of the code space:
	// the join-based rebalancing must hold BB[alpha] (validated) and keep
	// the height logarithmic.
	pts := workload.GenSweepline(40000, 2, testSide, 43)
	tr := NewSPaC(sfc.Hilbert, 2, universe())
	tr.Build(pts[:5000])
	for lo := 5000; lo < 40000; lo += 2500 {
		tr.BatchInsert(pts[lo : lo+2500])
		validateOrFail(t, tr)
	}
	if h := tr.Height(); h > 24 {
		t.Fatalf("height %d after skewed inserts", h)
	}
}

func TestUnsortedLeavesAppearAndQueriesStillWork(t *testing.T) {
	// The partial-order relaxation must actually kick in: after small
	// batch inserts a SPaC tree should carry unsorted leaves, while CPAM
	// never does. Queries must agree with brute force regardless.
	spac := NewSPaC(sfc.Hilbert, 2, universe())
	cpam := NewCPAM(sfc.Hilbert, 2, universe())
	ref := core.NewBruteForce(2)
	pts := workload.GenUniform(30000, 2, testSide, 47)
	spac.Build(pts[:20000])
	cpam.Build(pts[:20000])
	ref.Build(pts[:20000])
	for lo := 20000; lo < 30000; lo += 200 {
		spac.BatchInsert(pts[lo : lo+200])
		cpam.BatchInsert(pts[lo : lo+200])
		ref.BatchInsert(pts[lo : lo+200])
	}
	if _, unsorted := spac.LeafStats(); unsorted == 0 {
		t.Fatal("SPaC tree has no unsorted leaves after small batches — relaxation not exercised")
	}
	if _, unsorted := cpam.LeafStats(); unsorted != 0 {
		t.Fatal("CPAM tree has unsorted leaves")
	}
	validateOrFail(t, spac)
	validateOrFail(t, cpam)
	queries := workload.GenUniform(25, 2, testSide, 53)
	boxes := workload.RangeQueries(10, 2, testSide, 0.01, 59)
	for _, tr := range []*Tree{spac, cpam} {
		if err := core.VerifyQueries(tr, ref, queries, []int{1, 10}, boxes); err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Duplicate entries straddle pivots; the split-run path must delete
	// exactly the requested number of copies.
	for _, tr := range allVariants() {
		p := geom.Pt2(123, 456)
		pts := make([]geom.Point, 500)
		for i := range pts {
			pts[i] = p
		}
		tr.Build(pts)
		validateOrFail(t, tr)
		if tr.Size() != 500 {
			t.Fatalf("%s: size %d", tr.Name(), tr.Size())
		}
		tr.BatchDelete(pts[:123])
		validateOrFail(t, tr)
		if tr.Size() != 377 {
			t.Fatalf("%s: size %d after deleting 123 copies", tr.Name(), tr.Size())
		}
		if got := tr.RangeCount(geom.BoxOf(p, p)); got != 377 {
			t.Fatalf("%s: RangeCount %d", tr.Name(), got)
		}
		// Deleting more copies than remain empties the point entirely.
		tr.BatchDelete(make500(p))
		if tr.Size() != 0 {
			t.Fatalf("%s: size %d after over-delete", tr.Name(), tr.Size())
		}
	}
}

func make500(p geom.Point) []geom.Point {
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = p
	}
	return pts
}

func TestDuplicatesMixedWithSpread(t *testing.T) {
	tr := NewSPaC(sfc.Morton, 2, universe())
	ref := core.NewBruteForce(2)
	pts := workload.GenUniform(5000, 2, testSide, 61)
	dup := geom.Pt2(7777, 7777)
	for i := 0; i < 300; i++ {
		pts = append(pts, dup)
	}
	tr.Build(pts)
	ref.Build(pts)
	validateOrFail(t, tr)
	// Delete half the duplicates plus a slice of spread points.
	batch := append(make([]geom.Point, 0, 1150), pts[:1000]...)
	for i := 0; i < 150; i++ {
		batch = append(batch, dup)
	}
	tr.BatchDelete(batch)
	ref.BatchDelete(batch)
	validateOrFail(t, tr)
	if err := core.VerifyQueries(tr, ref,
		[]geom.Point{dup, geom.Pt2(0, 0)}, []int{1, 200},
		[]geom.Box{geom.BoxOf(dup, dup), universe()}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeBatchIntoSmallTree(t *testing.T) {
	// Exercises the §C heuristic's expose path: batch much larger than
	// the leaf it lands in.
	tr := NewSPaC(sfc.Hilbert, 2, universe())
	tr.Build(workload.GenUniform(50, 2, testSide, 67))
	big := workload.GenUniform(20000, 2, testSide, 71)
	tr.BatchInsert(big)
	validateOrFail(t, tr)
	if tr.Size() != 20050 {
		t.Fatalf("size %d", tr.Size())
	}
}

func TestFullDeleteEmptiesTree(t *testing.T) {
	for _, tr := range allVariants() {
		pts := workload.GenVarden(5000, 2, testSide, 73)
		tr.Build(pts)
		tr.BatchDelete(pts)
		if tr.Size() != 0 {
			t.Fatalf("%s: size %d after deleting all", tr.Name(), tr.Size())
		}
		validateOrFail(t, tr)
	}
}

func TestRandomizedOperationFuzz(t *testing.T) {
	// Random interleavings with invariant validation every step — the
	// join/rotation machinery's stress test.
	for _, mode := range []Mode{PartialOrder, TotalOrder} {
		opts := core.DefaultOptions(2, universe())
		opts.LeafWrap = 40
		opts.Alpha = 0.2
		tr := New(sfc.Hilbert, mode, opts)
		ref := core.NewBruteForce(2)
		rng := rand.New(rand.NewSource(79))
		pool := workload.GenVarden(30000, 2, testSide, 83)
		used := 0
		for step := 0; step < 40; step++ {
			if rng.Intn(2) == 0 && used < len(pool) {
				n := rng.Intn(1500)
				if used+n > len(pool) {
					n = len(pool) - used
				}
				tr.BatchInsert(pool[used : used+n])
				ref.BatchInsert(pool[used : used+n])
				used += n
			} else if ref.Size() > 0 {
				cur := ref.Points()
				n := rng.Intn(len(cur)/2 + 1)
				batch := make([]geom.Point, n)
				for i := range batch {
					batch[i] = cur[rng.Intn(len(cur))]
				}
				tr.BatchDelete(batch)
				ref.BatchDelete(batch)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("mode %d step %d: %v", mode, step, err)
			}
			if tr.Size() != ref.Size() {
				t.Fatalf("mode %d step %d: size %d want %d", mode, step, tr.Size(), ref.Size())
			}
		}
		if err := core.VerifyQueries(tr, ref,
			workload.GenUniform(15, 2, testSide, 89), []int{1, 10},
			workload.RangeQueries(8, 2, testSide, 0.02, 97)); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
	}
}

func TestSingleEntryOperations(t *testing.T) {
	tr := NewSPaC(sfc.Hilbert, 2, universe())
	p := geom.Pt2(5, 5)
	tr.BatchInsert([]geom.Point{p})
	if tr.Size() != 1 {
		t.Fatal("size after single insert")
	}
	if nn := tr.KNN(geom.Pt2(0, 0), 1, nil); len(nn) != 1 || nn[0] != p {
		t.Fatalf("KNN = %v", nn)
	}
	tr.BatchDelete([]geom.Point{p})
	if tr.Size() != 0 {
		t.Fatal("size after single delete")
	}
}
