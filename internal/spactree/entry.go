// Package spactree implements the Spatial PaC-tree (SPaC-tree) family —
// the paper's second contribution (§4) — together with the CPAM/PaC-tree
// baseline [23] it is measured against.
//
// Both are join-based weight-balanced binary search trees over
// space-filling-curve codes with block-wrapped leaves and bounding-box
// augmentation (i.e. parallel R-trees). They differ in exactly the two
// design points the paper isolates:
//
//   - Construction. SPaC mode uses HybridSort (Alg. 3): codes are computed
//     when a point is first touched by the sort, and only ⟨code, id⟩ pairs
//     move through the sort, with coordinates gathered into leaves at the
//     end. CPAM mode is the "plain adaptation": precompute ⟨code, point⟩
//     pairs, sort the full pairs, build.
//
//   - Leaf order. SPaC mode relaxes the total order inside leaves (Alg. 4):
//     batch inserts append to leaves and mark them unsorted; the order is
//     restored lazily, only when a join must expose or redistribute the
//     leaf. CPAM mode maintains fully sorted leaves on every update.
//
// Spatial queries never read the in-leaf order — a leaf is scanned wholesale
// either way — which is the observation that makes the relaxation free for
// queries and 2-6x cheaper for updates (§5.1.2).
package spactree

import (
	"repro/internal/geom"
	"repro/internal/sfc"
)

// Entry is a stored element: a point and its curve code. The tree's total
// order is (Code, then point lexicographically), so duplicate codes — and
// even duplicate points — have well-defined positions.
type Entry struct {
	Code uint64
	P    geom.Point
}

// cmpEntry orders entries by code, breaking ties by point coordinates.
func cmpEntry(a, b Entry) int {
	switch {
	case a.Code < b.Code:
		return -1
	case a.Code > b.Code:
		return 1
	}
	for d := 0; d < geom.MaxDims; d++ {
		switch {
		case a.P[d] < b.P[d]:
			return -1
		case a.P[d] > b.P[d]:
			return 1
		}
	}
	return 0
}

// encode computes the entry for a point under the tree's curve.
func (t *Tree) encode(p geom.Point) Entry {
	return Entry{Code: sfc.Encode(t.curve, p, t.opts.Dims), P: p}
}
